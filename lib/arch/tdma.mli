(** Contention-free TDMA reservation along a path.

    In the Æthereal discipline a flit entering hop 1 in slot [t]
    traverses hop [i] in slot [t + i - 1] (mod table size), so a
    connection's reservation is fully described by its *starting*
    slots: start [t] claims slot [t + i] on the [i]-th link of the path
    (0-based).  This module finds, reserves and releases such aligned
    slot sets and computes the worst-case latency bound used by the
    analytic verification step. *)

val start_is_free : tables:Slot_table.t array -> start:int -> bool
(** Can a connection claim starting slot [start] on every hop? *)

val free_starts : tables:Slot_table.t array -> int list
(** All feasible starting slots, increasing.  The [tables] array holds
    the slot tables of the path's links in travel order and must be
    non-empty; all tables must have equal size. *)

val free_start_mask : tables:Slot_table.t array -> Bitmask.t
(** Same set as {!free_starts}, as a fresh mask: the intersection of
    every hop's free-slot mask rotated by its hop number.  Group-shared
    reservation intersects these across members without building
    intermediate lists. *)

val choose_spread : slots:int -> candidates:int list -> count:int -> int list option
(** Pick [count] of the [candidates] (starting-slot indices in a
    revolution of [slots]) spread as evenly as feasibility allows, to
    minimise the worst-case waiting gap; [None] when there are fewer
    candidates than [count].  Exposed so that group-shared reservations
    can run the same policy on an *intersection* of free starts. *)

val find_aligned : tables:Slot_table.t array -> count:int -> int list option
(** [count] starting slots chosen to minimise the worst-case waiting
    gap (slots are spread as evenly as feasibility allows), or [None]
    when fewer than [count] feasible starts exist. *)

val reserve : tables:Slot_table.t array -> owner:int -> starts:int list -> unit
(** Claim [start + hop] on every hop for every start.
    @raise Invalid_argument if any needed slot is taken (callers must
    use starts from [find_aligned] on unchanged tables). *)

val release : tables:Slot_table.t array -> owner:int -> unit
(** Free every slot owned by [owner] on every hop. *)

val max_start_gap : slots:int -> starts:int list -> int
(** Largest cyclic distance from an arbitrary arrival instant to the
    next reserved starting slot, in slots.  For a single start this is
    the full revolution.  @raise Invalid_argument on an empty list. *)

val worst_case_latency_ns :
  config:Noc_config.t -> starts:int list -> hops:int -> Noc_util.Units.latency
(** Worst-case end-to-end latency bound of a reserved connection:
    (max waiting gap + path length) slot durations. *)
