(** Graphs over integer-labelled nodes [0 .. n-1].

    A thin, allocation-conscious adjacency structure used for both the
    undirected switching graph (paper §4) and the directed NoC link
    graph.  Edges carry an integer payload (an edge id), so that
    algorithms can look up per-edge state (residual bandwidth, slot
    tables) stored elsewhere. *)

type t

val create : directed:bool -> nodes:int -> t
(** A graph with [nodes] isolated vertices. *)

val directed : t -> bool

val node_count : t -> int

val edge_count : t -> int
(** Number of [add_edge] calls (an undirected edge counts once). *)

val add_edge : t -> ?id:int -> int -> int -> int
(** [add_edge g u v] adds an edge (and its reverse arc when the graph
    is undirected) and returns its edge id.  When [id] is omitted, ids
    are assigned consecutively from 0.  Self loops are allowed;
    parallel edges get distinct ids. *)

val succ : t -> int -> (int * int) list
(** [succ g u] lists [(v, edge_id)] of outgoing arcs, in insertion
    order. *)

val iter_succ : t -> int -> (int -> int -> unit) -> unit
(** [iter_succ g u f] applies [f v edge_id] over outgoing arcs without
    building a list. *)

val degree : t -> int -> int
(** Out-degree. *)

val mem_edge : t -> int -> int -> bool
(** Is there an arc from [u] to [v]? *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> int -> 'a) -> 'a
(** [fold_edges g ~init ~f] folds [f acc u v edge_id] over arcs as
    inserted; an undirected edge is visited once, in the orientation it
    was added. *)
