test/test_util.ml: Alcotest Array Float List Noc_util Printf QCheck QCheck_alcotest String
