lib/core/design_flow.ml: Compound Format List Mapping Noc_arch Noc_traffic Reconfig Refine Switching Verify
