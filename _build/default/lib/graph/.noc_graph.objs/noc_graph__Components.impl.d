lib/graph/components.ml: Array Intgraph List Stack
