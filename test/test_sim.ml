(* Tests for Noc_sim: the slot-accurate TDMA simulator must agree with
   the analytic guarantees of the reservation. *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Sim = Noc_sim.Simulator

let uc ~id ~cores flows = U.create ~id ~name:(Printf.sprintf "u%d" id) ~cores flows

let mk_route ?(service = Route.Gt) ~id ~bw ~links ~starts () =
  {
    Route.flow_id = id;
    use_case = 0;
    src_core = 0;
    dst_core = 1;
    src_switch = 0;
    dst_switch = 1;
    bandwidth = bw;
    service;
    links;
    slot_starts = starts;
  }


let test_single_connection_delivers_contract () =
  (* 62.5 MB/s = exactly one slot of the default config *)
  let r = mk_route ~id:0 ~bw:62.5 ~links:[ 0 ] ~starts:[ 0 ] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ r ] ~duration_slots:3200 in
  (match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool) "delivered ~ offered" true
      (c.Sim.delivered_mbps >= 62.5 *. 0.98);
    Alcotest.(check bool) "latency bounded" true (c.Sim.max_latency_ns <= c.Sim.bound_ns +. res.Sim.slot_ns);
    Alcotest.(check bool) "backlog bounded" true (c.Sim.final_backlog_bytes < 100.0)
  | _ -> Alcotest.fail "one connection expected");
  Alcotest.(check int) "no collisions" 0 res.Sim.collisions;
  Alcotest.(check bool) "within contract" true (Sim.within_contract res)

let test_overbooked_connection_builds_backlog () =
  (* offering 200 MB/s on a single reserved slot (62.5) must backlog *)
  let r = mk_route ~id:0 ~bw:200.0 ~links:[ 0 ] ~starts:[ 0 ] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ r ] ~duration_slots:3200 in
  match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool) "undelivered" true (c.Sim.delivered_mbps < 70.0);
    Alcotest.(check bool) "backlog grows" true (c.Sim.final_backlog_bytes > 1000.0);
    Alcotest.(check bool) "contract violated" false (Sim.within_contract res)
  | _ -> Alcotest.fail "one connection expected"

let test_collision_detected () =
  (* two connections claiming the same (link, slot) *)
  let a = mk_route ~id:0 ~bw:10.0 ~links:[ 0 ] ~starts:[ 3 ] () in
  let b = mk_route ~id:1 ~bw:10.0 ~links:[ 0 ] ~starts:[ 3 ] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ a; b ] ~duration_slots:64 in
  Alcotest.(check bool) "collision found" true (res.Sim.collisions > 0);
  Alcotest.(check bool) "contract violated" false (Sim.within_contract res)

let test_shifted_slots_no_collision () =
  (* Aethereal shift: second hop uses start+1, so a connection starting
     at 0 on link0/link1 and one starting at 0 on link1 only collide if
     the shifted slot matches. start 1 on link1 collides with hop-2 slot
     of the first connection. *)
  let a = mk_route ~id:0 ~bw:10.0 ~links:[ 0; 1 ] ~starts:[ 0 ] () in
  let b = mk_route ~id:1 ~bw:10.0 ~links:[ 1 ] ~starts:[ 1 ] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ a; b ] ~duration_slots:64 in
  Alcotest.(check bool) "collision on shifted slot" true (res.Sim.collisions > 0);
  let c = mk_route ~id:2 ~bw:10.0 ~links:[ 1 ] ~starts:[ 2 ] () in
  let res2 = Sim.simulate ~config:Config.default ~routes:[ a; c ] ~duration_slots:64 in
  Alcotest.(check int) "clear of the shift" 0 res2.Sim.collisions

let test_same_switch_route_low_latency () =
  let r = mk_route ~id:0 ~bw:100.0 ~links:[] ~starts:[] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ r ] ~duration_slots:320 in
  match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool) "delivers" true (c.Sim.delivered_mbps >= 98.0);
    Alcotest.(check bool) "latency ~ one slot" true (c.Sim.max_latency_ns <= 2.0 *. res.Sim.slot_ns)
  | _ -> Alcotest.fail "one connection expected"

let test_more_starts_lower_latency () =
  let one = mk_route ~id:0 ~bw:50.0 ~links:[ 0 ] ~starts:[ 0 ] () in
  let four = mk_route ~id:1 ~bw:50.0 ~links:[ 1 ] ~starts:[ 0; 8; 16; 24 ] () in
  let res =
    Sim.simulate ~config:Config.default ~routes:[ one; four ] ~duration_slots:3200
  in
  match res.Sim.conns with
  | [ a; b ] ->
    Alcotest.(check bool) "spread slots cut worst latency" true
      (b.Sim.max_latency_ns < a.Sim.max_latency_ns)
  | _ -> Alcotest.fail "two connections expected"

let test_rejects_bad_duration () =
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Simulator.simulate: non-positive duration") (fun () ->
      ignore (Sim.simulate ~config:Config.default ~routes:[] ~duration_slots:0))

(* End-to-end: every use-case configuration produced by the mapper
   honours its contracts in simulation. *)
let test_mapped_design_simulates_within_contract () =
  let ucs =
    [
      uc ~id:0 ~cores:6
        [
          Flow.v ~src:0 ~dst:1 400.0;
          Flow.v ~src:2 ~dst:3 ~latency_ns:300.0 20.0;
          Flow.v ~src:4 ~dst:5 125.0;
          Flow.v ~src:1 ~dst:4 60.0;
        ];
      uc ~id:1 ~cores:6 [ Flow.v ~src:0 ~dst:5 300.0; Flow.v ~src:3 ~dst:2 90.0 ];
    ]
  in
  let config = { Config.default with nis_per_switch = 2 } in
  match Mapping.map_design ~config ~groups:[ [ 0 ]; [ 1 ] ] ucs with
  | Error f -> Alcotest.fail (Format.asprintf "%a" Mapping.pp_failure f)
  | Ok m ->
    List.iter
      (fun u ->
        let routes = Mapping.routes_of_use_case m u.U.id in
        let res = Sim.simulate ~config ~routes ~duration_slots:6400 in
        Alcotest.(check int) (Printf.sprintf "uc %d no collisions" u.U.id) 0 res.Sim.collisions;
        Alcotest.(check bool)
          (Printf.sprintf "uc %d within contract" u.U.id)
          true (Sim.within_contract res))
      ucs

(* --- bursty sources ---------------------------------------------------------- *)

let test_bursty_gt_still_delivers_mean () =
  (* 125 MB/s mean arriving in bursts (duty 25 %): the 2-slot GT
     reservation still drains the mean rate; backlog stays bounded. *)
  let r = mk_route ~id:0 ~bw:125.0 ~links:[ 0 ] ~starts:[ 0; 16 ] () in
  let res =
    Sim.simulate_sources
      ~sources:[ (0, Sim.On_off { period_slots = 64; duty = 0.25 }) ]
      ~config:Config.default ~routes:[ r ] ~duration_slots:6400
  in
  match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool) "mean delivered" true (c.Sim.delivered_mbps >= 125.0 *. 0.95);
    (* bounded by one burst cycle's worth of traffic *)
    let cycle_bytes = 125.0 /. 1000.0 *. res.Sim.slot_ns *. 64.0 in
    Alcotest.(check bool) "backlog bounded by a burst" true
      (c.Sim.max_backlog_bytes <= cycle_bytes +. 64.0)
  | _ -> Alcotest.fail "one connection expected"

let test_bursty_worse_latency_than_fluid () =
  let r = mk_route ~id:0 ~bw:62.5 ~links:[ 0 ] ~starts:[ 0 ] () in
  let fluid = Sim.simulate ~config:Config.default ~routes:[ r ] ~duration_slots:6400 in
  let bursty =
    Sim.simulate_sources
      ~sources:[ (0, Sim.On_off { period_slots = 128; duty = 0.125 }) ]
      ~config:Config.default ~routes:[ r ] ~duration_slots:6400
  in
  match (fluid.Sim.conns, bursty.Sim.conns) with
  | [ f ], [ b ] ->
    Alcotest.(check bool) "bursts queue behind the schedule" true
      (b.Sim.max_latency_ns > f.Sim.max_latency_ns);
    Alcotest.(check bool) "mean rate still served" true
      (b.Sim.delivered_mbps >= 62.5 *. 0.95)
  | _ -> Alcotest.fail "one connection each expected"

let test_bursty_mean_preserved () =
  (* total arrivals over full cycles equal the fluid amount *)
  let r = mk_route ~id:0 ~bw:40.0 ~links:[ 0 ] ~starts:(List.init 32 (fun i -> i)) () in
  let res =
    Sim.simulate_sources
      ~sources:[ (0, Sim.On_off { period_slots = 32; duty = 0.5 }) ]
      ~config:Config.default ~routes:[ r ] ~duration_slots:3200
  in
  match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool) "delivered equals mean" true
      (Float.abs (c.Sim.delivered_mbps -. 40.0) < 2.0)
  | _ -> Alcotest.fail "one connection expected"

let test_bursty_rejects_bad_params () =
  let r = mk_route ~id:0 ~bw:10.0 ~links:[ 0 ] ~starts:[ 0 ] () in
  let bad source =
    try
      ignore
        (Sim.simulate_sources ~sources:[ (0, source) ] ~config:Config.default ~routes:[ r ]
           ~duration_slots:10);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero period" true (bad (Sim.On_off { period_slots = 0; duty = 0.5 }));
  Alcotest.(check bool) "bad duty" true (bad (Sim.On_off { period_slots = 8; duty = 1.5 }))

let test_bursty_latency_within_service_curve_bound () =
  (* Network-calculus cross-validation: measured bursty latency must
     stay within the LR delay bound computed from the reservation and
     the source's token-bucket burstiness. *)
  let starts = [ 0; 16 ] in
  let bw = 100.0 in
  let r = mk_route ~id:0 ~bw ~links:[ 0; 1 ] ~starts () in
  let period_slots = 64 in
  let duty = 0.25 in
  let res =
    Sim.simulate_sources
      ~sources:[ (0, Sim.On_off { period_slots; duty }) ]
      ~config:Config.default ~routes:[ r ] ~duration_slots:12800
  in
  let sc = Noc_arch.Service_curve.of_reservation ~config:Config.default ~starts ~hops:2 in
  let period_ns = float_of_int period_slots *. res.Sim.slot_ns in
  let sigma = Noc_arch.Service_curve.on_off_burstiness ~mean_mbps:bw ~period_ns ~duty in
  let bound = Noc_arch.Service_curve.delay_bound_ns sc ~burst_bytes:sigma ~rate_mbps:bw in
  match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool)
      (Printf.sprintf "measured %.0f ns <= bound %.0f ns" c.Sim.max_latency_ns bound)
      true
      (c.Sim.max_latency_ns <= bound +. res.Sim.slot_ns)
  | _ -> Alcotest.fail "one connection expected"

let test_bursty_backlog_within_service_curve_bound () =
  let starts = [ 0; 8; 16; 24 ] in
  let bw = 200.0 in
  let r = mk_route ~id:0 ~bw ~links:[ 0 ] ~starts () in
  let period_slots = 32 in
  let duty = 0.5 in
  let res =
    Sim.simulate_sources
      ~sources:[ (0, Sim.On_off { period_slots; duty }) ]
      ~config:Config.default ~routes:[ r ] ~duration_slots:6400
  in
  let sc = Noc_arch.Service_curve.of_reservation ~config:Config.default ~starts ~hops:1 in
  let period_ns = float_of_int period_slots *. res.Sim.slot_ns in
  let sigma = Noc_arch.Service_curve.on_off_burstiness ~mean_mbps:bw ~period_ns ~duty in
  let bound = Noc_arch.Service_curve.backlog_bound_bytes sc ~burst_bytes:sigma ~rate_mbps:bw in
  match res.Sim.conns with
  | [ c ] ->
    (* one slot arrival of slack on the discrete boundary *)
    let slack = bw /. 1000.0 *. res.Sim.slot_ns in
    Alcotest.(check bool)
      (Printf.sprintf "peak %.0f B <= bound %.0f B" c.Sim.max_backlog_bytes bound)
      true
      (c.Sim.max_backlog_bytes <= bound +. slack)
  | _ -> Alcotest.fail "one connection expected"

(* --- trace replay ------------------------------------------------------------ *)

module Trace = Noc_sim.Trace

let test_trace_cbr_shape () =
  let t = Trace.cbr ~rate_mbps:100.0 ~packet_bytes:64.0 ~duration_ns:6400.0 in
  Alcotest.(check bool) "valid" true (Trace.validate t = Ok ());
  (* 100 MB/s = 0.1 B/ns; 64 B every 640 ns over 6400 ns = 10 packets *)
  Alcotest.(check int) "packet count" 10 (List.length t);
  Alcotest.(check (float 1.0)) "mean rate" 100.0 (Trace.mean_rate_mbps t ~duration_ns:6400.0)

let test_trace_video_gop_shape () =
  let rng = Noc_util.Rng.create ~seed:5 in
  let t =
    Trace.video_gop ~rng ~mean_mbps:200.0 ~frame_period_ns:1000.0 ~gop_length:6
      ~i_frame_ratio:4.0 ~duration_ns:60000.0
  in
  Alcotest.(check bool) "valid" true (Trace.validate t = Ok ());
  Alcotest.(check int) "60 frames" 60 (List.length t);
  (* mean within jitter of the target *)
  let mean = Trace.mean_rate_mbps t ~duration_ns:60000.0 in
  Alcotest.(check bool) (Printf.sprintf "mean %.1f near 200" mean) true
    (Float.abs (mean -. 200.0) < 20.0);
  (* I frames are markedly larger than P frames *)
  let sizes = List.map (fun e -> e.Trace.bytes) t in
  let imax = List.fold_left Float.max 0.0 sizes in
  let pmin = List.fold_left Float.min infinity sizes in
  Alcotest.(check bool) "I >> P" true (imax > 3.0 *. pmin)

let test_trace_validate_rejects () =
  let bad = [ { Trace.at_ns = 10.0; bytes = 1.0 }; { Trace.at_ns = 5.0; bytes = 1.0 } ] in
  Alcotest.(check bool) "out of order" true (Result.is_error (Trace.validate bad));
  let bad2 = [ { Trace.at_ns = 1.0; bytes = 0.0 } ] in
  Alcotest.(check bool) "zero bytes" true (Result.is_error (Trace.validate bad2))

let test_trace_replay_through_gt () =
  (* CBR trace at exactly the granted rate: delivered matches, latency
     within the analytic bound. *)
  let r = mk_route ~id:0 ~bw:62.5 ~links:[ 0 ] ~starts:[ 0 ] () in
  let duration = 6400 in
  let horizon = float_of_int duration *. 8.0 in
  let trace = Trace.cbr ~rate_mbps:62.5 ~packet_bytes:16.0 ~duration_ns:horizon in
  let res =
    Sim.simulate_sources ~sources:[ (0, Sim.Replay trace) ] ~config:Config.default
      ~routes:[ r ] ~duration_slots:duration
  in
  match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool) "delivered ~ offered" true (c.Sim.delivered_mbps >= 62.5 *. 0.95);
    Alcotest.(check bool) "latency bounded" true
      (c.Sim.max_latency_ns <= c.Sim.bound_ns +. (2.0 *. res.Sim.slot_ns))
  | _ -> Alcotest.fail "one connection expected"

let test_trace_replay_video_over_provisioned_gt () =
  (* video GOP trace with mean 100 MB/s on a 187.5 MB/s reservation:
     bursts drain; everything is delivered. *)
  let rng = Noc_util.Rng.create ~seed:9 in
  let r = mk_route ~id:0 ~bw:100.0 ~links:[ 0 ] ~starts:[ 0; 11; 22 ] () in
  let duration = 12800 in
  let horizon = float_of_int duration *. 8.0 in
  let trace =
    Trace.video_gop ~rng ~mean_mbps:100.0 ~frame_period_ns:2000.0 ~gop_length:8
      ~i_frame_ratio:5.0 ~duration_ns:(horizon *. 0.9)
  in
  let res =
    Sim.simulate_sources ~sources:[ (0, Sim.Replay trace) ] ~config:Config.default
      ~routes:[ r ] ~duration_slots:duration
  in
  match res.Sim.conns with
  | [ c ] ->
    let offered = Trace.total_bytes trace in
    Alcotest.(check bool) "virtually all delivered" true
      (c.Sim.final_backlog_bytes < 0.02 *. offered)
  | _ -> Alcotest.fail "one connection expected"

let test_trace_replay_rejects_invalid () =
  let r = mk_route ~id:0 ~bw:10.0 ~links:[ 0 ] ~starts:[ 0 ] () in
  let bad = [ { Trace.at_ns = 10.0; bytes = 1.0 }; { Trace.at_ns = 5.0; bytes = 1.0 } ] in
  Alcotest.(check bool) "invalid trace rejected" true
    (try
       ignore
         (Sim.simulate_sources ~sources:[ (0, Sim.Replay bad) ] ~config:Config.default
            ~routes:[ r ] ~duration_slots:8);
       false
     with Invalid_argument _ -> true)

(* --- best effort ----------------------------------------------------------- *)

let test_be_gets_idle_network () =
  (* With no GT traffic at all, a modest BE stream sails through. *)
  let be = mk_route ~service:Route.Be ~id:0 ~bw:100.0 ~links:[ 0; 1 ] ~starts:[] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ be ] ~duration_slots:3200 in
  match res.Sim.conns with
  | [ c ] ->
    Alcotest.(check bool) "BE delivers on idle NoC" true (c.Sim.delivered_mbps >= 95.0);
    Alcotest.(check bool) "bound is infinity" true (c.Sim.bound_ns = infinity);
    Alcotest.(check bool) "contract trivially holds" true (Sim.within_contract res)
  | _ -> Alcotest.fail "one connection expected"

let test_be_starved_by_saturated_gt () =
  (* GT owning every slot on the shared link leaves BE nothing. *)
  let gt =
    mk_route ~id:0 ~bw:2000.0 ~links:[ 0 ] ~starts:(List.init 32 (fun i -> i)) ()
  in
  let be = mk_route ~service:Route.Be ~id:1 ~bw:50.0 ~links:[ 0 ] ~starts:[] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ gt; be ] ~duration_slots:640 in
  (match List.find_opt (fun c -> c.Sim.service = Route.Be) res.Sim.conns with
  | Some c ->
    Alcotest.(check (float 1e-9)) "BE fully starved" 0.0 c.Sim.delivered_mbps;
    Alcotest.(check bool) "BE backlog grows" true (c.Sim.final_backlog_bytes > 0.0)
  | None -> Alcotest.fail "BE connection missing");
  (* ...while the GT contract is untouched. *)
  Alcotest.(check bool) "GT unaffected" true (Sim.within_contract res)

let test_be_shares_leftover_fairly () =
  (* Two identical BE streams on one otherwise idle link split the
     capacity roughly evenly (round-robin arbitration). *)
  let a = mk_route ~service:Route.Be ~id:0 ~bw:2000.0 ~links:[ 0 ] ~starts:[] () in
  let b = mk_route ~service:Route.Be ~id:1 ~bw:2000.0 ~links:[ 0 ] ~starts:[] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ a; b ] ~duration_slots:3200 in
  match res.Sim.conns with
  | [ ca; cb ] ->
    let total = ca.Sim.delivered_mbps +. cb.Sim.delivered_mbps in
    Alcotest.(check bool) "link fully used" true (total >= 2000.0 *. 0.95);
    Alcotest.(check bool) "fair split" true
      (Float.abs (ca.Sim.delivered_mbps -. cb.Sim.delivered_mbps) < 0.1 *. total)
  | _ -> Alcotest.fail "two connections expected"

let test_be_throughput_is_complement_of_gt () =
  (* GT takes 8 of 32 slots; BE can get at most 24/32 of the link. *)
  let gt = mk_route ~id:0 ~bw:500.0 ~links:[ 0 ] ~starts:[ 0; 4; 8; 12; 16; 20; 24; 28 ] () in
  let be = mk_route ~service:Route.Be ~id:1 ~bw:2000.0 ~links:[ 0 ] ~starts:[] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ gt; be ] ~duration_slots:6400 in
  (match List.find_opt (fun c -> c.Sim.service = Route.Be) res.Sim.conns with
  | Some c ->
    let leftover = 2000.0 *. 24.0 /. 32.0 in
    Alcotest.(check bool) "BE close to leftover" true
      (c.Sim.delivered_mbps >= leftover *. 0.95 && c.Sim.delivered_mbps <= leftover *. 1.01)
  | None -> Alcotest.fail "BE connection missing");
  Alcotest.(check bool) "GT in contract" true (Sim.within_contract res)

let test_be_multihop_latency_grows () =
  let short = mk_route ~service:Route.Be ~id:0 ~bw:10.0 ~links:[ 0 ] ~starts:[] () in
  let long = mk_route ~service:Route.Be ~id:1 ~bw:10.0 ~links:[ 1; 2; 3; 4 ] ~starts:[] () in
  let res = Sim.simulate ~config:Config.default ~routes:[ short; long ] ~duration_slots:3200 in
  match res.Sim.conns with
  | [ s; l ] ->
    Alcotest.(check bool) "longer path, more latency" true
      (l.Sim.mean_latency_ns > s.Sim.mean_latency_ns)
  | _ -> Alcotest.fail "two connections expected"

let test_backlog_within_buffer_bound () =
  (* The analytic NI buffer size must cover the simulator's measured
     peak source backlog, for a flow offered exactly at contract. *)
  let routes =
    [
      mk_route ~id:0 ~bw:62.5 ~links:[ 0 ] ~starts:[ 0 ] ();
      mk_route ~id:1 ~bw:125.0 ~links:[ 1 ] ~starts:[ 5; 21 ] ();
      mk_route ~id:2 ~bw:250.0 ~links:[ 2 ] ~starts:[ 1; 9 ; 17; 25 ] ();
    ]
  in
  let res = Sim.simulate ~config:Config.default ~routes ~duration_slots:6400 in
  List.iter2
    (fun r c ->
      let bound =
        Noc_arch.Ni_buffer.required_bytes ~config:Config.default
          ~starts:r.Route.slot_starts ~bw:r.Route.bandwidth
      in
      Alcotest.(check bool)
        (Printf.sprintf "conn %d: peak %.1f <= bound %.1f" c.Sim.flow_id
           c.Sim.max_backlog_bytes bound)
        true
        (c.Sim.max_backlog_bytes <= bound +. 1e-6))
    routes res.Sim.conns

(* --- core equivalence -------------------------------------------------------- *)

(* Byte identity, not tolerance: Marshal distinguishes every float bit
   pattern (0.0 vs -0.0, NaN payloads), which [=] and [Float.equal] do
   not. *)
let bytes_of_result (r : Sim.result) = Marshal.to_string r []

let check_cores_identical ~sources ~routes ~duration_slots name =
  let run core =
    Sim.simulate_with ~core ~sources ~config:Config.default ~routes ~duration_slots
  in
  Alcotest.(check bool) name true
    (String.equal (bytes_of_result (run `Event)) (bytes_of_result (run `Reference)))

let test_cores_agree_all_idle () =
  (* An empty replay trace never injects: no slot mutates state over
     the whole horizon, so the event core may execute almost nothing. *)
  let r = mk_route ~id:0 ~bw:62.5 ~links:[ 0 ] ~starts:[ 0 ] () in
  check_cores_identical ~sources:[ (0, Sim.Replay []) ] ~routes:[ r ]
    ~duration_slots:5000 "all-idle horizon"

let test_cores_agree_replay_past_horizon () =
  (* Every trace event lands after the simulated window: the injection
     slot the event core schedules must not leak into the horizon. *)
  let r = mk_route ~id:0 ~bw:62.5 ~links:[ 0 ] ~starts:[ 0 ] () in
  let trace = [ { Trace.at_ns = 1e9; bytes = 64.0 } ] in
  check_cores_identical ~sources:[ (0, Sim.Replay trace) ] ~routes:[ r ]
    ~duration_slots:100 "replay beyond horizon";
  let res =
    Sim.simulate_sources ~sources:[ (0, Sim.Replay trace) ] ~config:Config.default
      ~routes:[ r ] ~duration_slots:100
  in
  match res.Sim.conns with
  | [ c ] -> Alcotest.(check (float 1e-9)) "nothing delivered" 0.0 c.Sim.delivered_mbps
  | _ -> Alcotest.fail "one connection expected"

let test_cores_agree_wheel_wrap () =
  (* Burst period longer than the slot table and duration many times
     both: phase edges must survive wheel revolutions via the one-shot
     heap, not the periodic ring. *)
  let a = mk_route ~id:0 ~bw:125.0 ~links:[ 0 ] ~starts:[ 0; 16 ] () in
  let b = mk_route ~service:Route.Be ~id:1 ~bw:300.0 ~links:[ 0; 1 ] ~starts:[] () in
  check_cores_identical
    ~sources:[ (0, Sim.On_off { period_slots = 48; duty = 0.25 }) ]
    ~routes:[ a; b ] ~duration_slots:3200 "wrap past the period"

let test_cores_agree_mixed_traffic () =
  (* All four source shapes at once, sharing links, so GT service, BE
     arbitration and replay injection interleave in every slot class. *)
  let gt_fluid = mk_route ~id:0 ~bw:100.0 ~links:[ 0; 1 ] ~starts:[ 0; 8 ] () in
  let gt_burst = mk_route ~id:1 ~bw:125.0 ~links:[ 1 ] ~starts:[ 4; 20 ] () in
  let gt_replay = mk_route ~id:2 ~bw:62.5 ~links:[ 2 ] ~starts:[ 2 ] () in
  let local = mk_route ~id:3 ~bw:50.0 ~links:[] ~starts:[] () in
  let be = mk_route ~service:Route.Be ~id:4 ~bw:400.0 ~links:[ 0; 2 ] ~starts:[] () in
  let trace = Trace.cbr ~rate_mbps:80.0 ~packet_bytes:48.0 ~duration_ns:20000.0 in
  check_cores_identical
    ~sources:
      [
        (1, Sim.On_off { period_slots = 64; duty = 0.125 });
        (2, Sim.Replay trace);
      ]
    ~routes:[ gt_fluid; gt_burst; gt_replay; local; be ]
    ~duration_slots:6400 "mixed GT/BE/replay"

let test_rejects_unknown_flow_source () =
  (* A typo'd flow id used to be silently ignored (the source list was
     consulted with assoc_opt); now it is rejected up front. *)
  let r = mk_route ~id:0 ~bw:10.0 ~links:[ 0 ] ~starts:[ 0 ] () in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Simulator: source for unknown flow id 7") (fun () ->
      ignore
        (Sim.simulate_sources ~sources:[ (7, Sim.Fluid) ] ~config:Config.default
           ~routes:[ r ] ~duration_slots:8))

let prop_cores_byte_identical =
  QCheck.Test.make ~name:"event core byte-identical to reference tick loop" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Noc_util.Rng.create ~seed in
      let n = Noc_util.Rng.int_in rng 1 5 in
      let duration = Noc_util.Rng.int_in rng 1 400 in
      let routes_and_sources =
        List.init n (fun id ->
            let gt = Noc_util.Rng.chance rng 0.7 in
            let hops = Noc_util.Rng.int_in rng 0 3 in
            (* overlapping links across routes exercise GT/BE contention
               and round-robin arbitration *)
            let links = List.init hops (fun h -> ((id * 4) + h) mod 5) in
            (* a GT route over links needs at least one reserved start
               (the analytic latency bound is undefined otherwise) *)
            let k = Noc_util.Rng.int_in rng (if gt && hops > 0 then 1 else 0) 4 in
            let starts = Noc_util.Rng.sample_without_replacement rng k 32 in
            let bw = Noc_util.Rng.float_in rng 5.0 400.0 in
            let service = if gt then Route.Gt else Route.Be in
            let r = mk_route ~service ~id ~bw ~links ~starts:(if gt then starts else []) () in
            let source =
              match Noc_util.Rng.int rng 3 with
              | 0 -> Sim.Fluid
              | 1 ->
                Sim.On_off
                  {
                    period_slots = Noc_util.Rng.int_in rng 1 100;
                    duty = Noc_util.Rng.float_in rng 0.05 1.0;
                  }
              | _ ->
                let rate = Noc_util.Rng.float_in rng 10.0 200.0 in
                let pkt = Noc_util.Rng.float_in rng 8.0 128.0 in
                let horizon = Noc_util.Rng.float_in rng 100.0 5000.0 in
                Sim.Replay (Trace.cbr ~rate_mbps:rate ~packet_bytes:pkt ~duration_ns:horizon)
            in
            (r, (id, source)))
      in
      let routes = List.map fst routes_and_sources in
      let sources = List.map snd routes_and_sources in
      let run core =
        Sim.simulate_with ~core ~sources ~config:Config.default ~routes
          ~duration_slots:duration
      in
      String.equal (bytes_of_result (run `Event)) (bytes_of_result (run `Reference)))

let prop_backlog_bound_holds =
  QCheck.Test.make ~name:"NI buffer bound covers simulated peak backlog" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 31))
    (fun (k, first) ->
      (* k evenly spread starts; bandwidth exactly the granted rate *)
      let starts = List.init k (fun i -> (first + (i * 32 / k)) mod 32) |> List.sort_uniq compare in
      let bw = float_of_int (List.length starts) *. 62.5 in
      let r = mk_route ~id:0 ~bw ~links:[ 0 ] ~starts () in
      let res = Sim.simulate ~config:Config.default ~routes:[ r ] ~duration_slots:3200 in
      let bound =
        Noc_arch.Ni_buffer.required_bytes ~config:Config.default ~starts ~bw
      in
      match res.Sim.conns with
      | [ c ] -> c.Sim.max_backlog_bytes <= bound +. 1e-6
      | _ -> false)

let prop_random_designs_simulate_cleanly =
  QCheck.Test.make ~name:"mapped configurations honour contracts in simulation" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      let params =
        { Noc_benchkit.Synthetic.spread_params with cores = 8; flows_lo = 6; flows_hi = 14 }
      in
      let ucs = Noc_benchkit.Synthetic.generate ~seed ~params ~use_cases:2 in
      match Mapping.map_design ~groups:[ [ 0 ]; [ 1 ] ] ucs with
      | Error _ -> false
      | Ok m ->
        List.for_all
          (fun u ->
            let routes = Mapping.routes_of_use_case m u.U.id in
            let res = Sim.simulate ~config:m.Mapping.config ~routes ~duration_slots:3200 in
            Sim.within_contract res)
          ucs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cores_byte_identical;
      prop_backlog_bound_holds;
      prop_random_designs_simulate_cleanly;
    ]

let () =
  Alcotest.run "noc_sim"
    [
      ( "simulator",
        [
          Alcotest.test_case "delivers contract" `Quick test_single_connection_delivers_contract;
          Alcotest.test_case "overbooked backlog" `Quick test_overbooked_connection_builds_backlog;
          Alcotest.test_case "collision detected" `Quick test_collision_detected;
          Alcotest.test_case "shifted slots" `Quick test_shifted_slots_no_collision;
          Alcotest.test_case "same-switch latency" `Quick test_same_switch_route_low_latency;
          Alcotest.test_case "spread starts latency" `Quick test_more_starts_lower_latency;
          Alcotest.test_case "rejects bad duration" `Quick test_rejects_bad_duration;
          Alcotest.test_case "mapped design in contract" `Quick test_mapped_design_simulates_within_contract;
        ] );
      ( "best_effort",
        [
          Alcotest.test_case "idle network" `Quick test_be_gets_idle_network;
          Alcotest.test_case "starved by saturated GT" `Quick test_be_starved_by_saturated_gt;
          Alcotest.test_case "fair sharing" `Quick test_be_shares_leftover_fairly;
          Alcotest.test_case "complement of GT" `Quick test_be_throughput_is_complement_of_gt;
          Alcotest.test_case "multihop latency" `Quick test_be_multihop_latency_grows;
        ] );
      ( "bursty",
        [
          Alcotest.test_case "GT drains bursts" `Quick test_bursty_gt_still_delivers_mean;
          Alcotest.test_case "bursts queue" `Quick test_bursty_worse_latency_than_fluid;
          Alcotest.test_case "mean preserved" `Quick test_bursty_mean_preserved;
          Alcotest.test_case "bad params rejected" `Quick test_bursty_rejects_bad_params;
          Alcotest.test_case "latency within LR bound" `Quick test_bursty_latency_within_service_curve_bound;
          Alcotest.test_case "backlog within LR bound" `Quick test_bursty_backlog_within_service_curve_bound;
        ] );
      ( "trace",
        [
          Alcotest.test_case "cbr shape" `Quick test_trace_cbr_shape;
          Alcotest.test_case "video GOP shape" `Quick test_trace_video_gop_shape;
          Alcotest.test_case "validate rejects" `Quick test_trace_validate_rejects;
          Alcotest.test_case "replay through GT" `Quick test_trace_replay_through_gt;
          Alcotest.test_case "video over provisioned GT" `Quick test_trace_replay_video_over_provisioned_gt;
          Alcotest.test_case "replay rejects invalid" `Quick test_trace_replay_rejects_invalid;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "all-idle horizon" `Quick test_cores_agree_all_idle;
          Alcotest.test_case "replay past horizon" `Quick test_cores_agree_replay_past_horizon;
          Alcotest.test_case "wheel wrap" `Quick test_cores_agree_wheel_wrap;
          Alcotest.test_case "mixed traffic" `Quick test_cores_agree_mixed_traffic;
          Alcotest.test_case "unknown flow id rejected" `Quick test_rejects_unknown_flow_source;
        ] );
      ( "buffer_bounds",
        [ Alcotest.test_case "backlog within NI buffer bound" `Quick test_backlog_within_buffer_bound ] );
      ("properties", qcheck_cases);
    ]
