(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper's evaluation
   (Sec 6) with this implementation and prints them next to the paper's
   expected shapes — the reproduction artefact recorded in
   EXPERIMENTS.md.

   Part 2 is a Bechamel performance suite with one measurement per
   figure, timing the core computation that the figure exercises (the
   paper reports "less than few minutes on a Linux workstation" for all
   benchmarks; these measurements document where this implementation
   stands). *)

module Config = Noc_arch.Noc_config
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs
module E = Noc_benchkit.Experiments

open Bechamel
open Toolkit

(* The mapping cache would let every iteration after the first replay
   the previous result, turning the timings into cache-lookup
   measurements.  Disable it for the whole process; only the two
   cache benchmarks below re-enable it around their own workload. *)
let () = Noc_core.Mapping_cache.set_enabled false

(* One representative workload per figure; sizes kept moderate so the
   whole suite completes in seconds per test. *)

let must_map ucs =
  match DF.run (DF.spec_of_use_cases ~name:"bench" ucs) with
  | Ok d -> d
  | Error e -> failwith e

let bench_fig6a =
  let ucs = SD.d1 () in
  Test.make ~name:"fig6a:design-D1" (Staged.stage (fun () -> ignore (must_map ucs)))

let bench_fig6b =
  let ucs = Syn.generate ~seed:200 ~params:Syn.spread_params ~use_cases:5 in
  Test.make ~name:"fig6b:design-Sp5-ours-vs-wc"
    (Staged.stage (fun () ->
         ignore (must_map ucs);
         ignore (WC.map_design ucs)))

let bench_fig6c =
  let ucs =
    Syn.generate_family ~seed:300 ~params:Syn.bottleneck_params ~use_cases:5 ~similarity:0.4
  in
  Test.make ~name:"fig6c:design-Bot5-ours-vs-wc"
    (Staged.stage (fun () ->
         ignore (must_map ucs);
         ignore (WC.map_design ucs)))

let bench_s62 =
  let ucs = Syn.generate ~seed:200 ~params:Syn.spread_params ~use_cases:40 in
  Test.make ~name:"s62:design-Sp40-ours" (Staged.stage (fun () -> ignore (must_map ucs)))

let bench_fig7a =
  let ucs = SD.d1 () in
  let groups = List.mapi (fun i _ -> [ i ]) ucs in
  Test.make ~name:"fig7a:pareto-point-500MHz"
    (Staged.stage (fun () ->
         ignore
           (Noc_power.Pareto.sweep ~frequencies:[ 500.0 ] ~config:Config.default ~groups ucs)))

let bench_fig7b =
  let ucs = SD.d1 () in
  let design = (must_map ucs).DF.mapping in
  let first = List.hd ucs in
  Test.make ~name:"fig7b:min-freq-search"
    (Staged.stage (fun () ->
         ignore (Noc_power.Min_freq.for_use_case_on_design ~design first)))

let bench_fig7c =
  let base = Syn.generate ~seed:777 ~params:Syn.spread_params ~use_cases:10 in
  let all, _ = Noc_core.Compound.generate base ~parallel:[ [ 0; 1 ] ] in
  let groups = List.mapi (fun i _ -> [ i ]) all in
  Test.make ~name:"fig7c:compound-mode-design"
    (Staged.stage (fun () -> ignore (Mapping.map_design ~groups all)))

(* The sweep-engine measurements behind the PR 3 acceptance criterion:
   the fig7a frequency grid through Design_space.explore (warm starts
   on), and the chunked ascending min-frequency scan.  Compare runs at
   --jobs 1 vs --jobs N and with --cold to isolate pool vs warm-start
   gains. *)
let cold = Array.exists (( = ) "--cold") Sys.argv

let bench_sweep_pareto_grid =
  let ucs = SD.d1 () in
  let groups = List.mapi (fun i _ -> [ i ]) ucs in
  let axes =
    { Noc_power.Design_space.default_axes with
      Noc_power.Design_space.frequencies = Noc_power.Pareto.default_frequencies;
      Noc_power.Design_space.slot_counts = [ Config.default.Config.slots ] }
  in
  Test.make ~name:"sweep:pareto-grid"
    (Staged.stage (fun () ->
         ignore
           (Noc_power.Design_space.explore ~axes ~warm:(not cold) ~config:Config.default ~groups
              ucs)))

(* The static-analyzer pruning measurement: a D2 frequency-scaling
   sweep whose low-frequency points are provably infeasible.  With
   pruning the feasibility certificate refutes those growth searches
   outright; without it the engine attempts every mesh size of each
   doomed point.  The sweep points are identical either way (see the
   pruning tests in test_analysis.ml) — only the wall clock moves. *)
let lint_sweep ~prune () =
  let ucs = SD.d2 () in
  let groups = List.mapi (fun i _ -> [ i ]) ucs in
  let config = { Config.default with Config.nis_per_switch = 4 } in
  let axes =
    { Noc_power.Design_space.frequencies = [ 50.0; 250.0; 500.0 ];
      slot_counts = [ 16; 32 ];
      topologies = [ Noc_arch.Mesh.Mesh ] }
  in
  ignore (Noc_power.Design_space.explore ~axes ~warm:(not cold) ~prune ~config ~groups ucs)

let bench_sweep_lint_pruned =
  Test.make ~name:"sweep:lint-pruned" (Staged.stage (lint_sweep ~prune:true))

let bench_sweep_lint_noprune =
  Test.make ~name:"sweep:lint-noprune" (Staged.stage (lint_sweep ~prune:false))

(* The result-cache measurements behind this PR's acceptance criterion:
   the same D2 explore sweep, once with the cache cleared before every
   run (cold: every point pays for its growth search and fills the
   cache) and once against the already-filled cache (warm: every
   attempt replays a stored result).  The sweep's points are
   byte-identical in both modes (test_cache.ml); only the wall clock
   moves. *)
let with_cache f () =
  Noc_core.Mapping_cache.set_enabled true;
  Fun.protect ~finally:(fun () -> Noc_core.Mapping_cache.set_enabled false) f

let bench_sweep_explore_cache_cold =
  Test.make ~name:"sweep:explore-cache-cold"
    (Staged.stage
       (with_cache (fun () ->
            Noc_core.Mapping_cache.clear ();
            lint_sweep ~prune:true ())))

let bench_sweep_explore_cache_warm =
  Test.make ~name:"sweep:explore-cache-warm"
    (Staged.stage (with_cache (fun () -> lint_sweep ~prune:true ())))

let bench_sweep_min_freq =
  let ucs = SD.d1 () in
  let design = (must_map ucs).DF.mapping in
  Test.make ~name:"sweep:min-freq-parallel"
    (Staged.stage (fun () ->
         List.iter
           (fun u -> ignore (Noc_power.Min_freq.for_use_case_on_design ~design u))
           ucs))

(* The incremental-remapping measurements behind the PR 6 acceptance
   criterion: a 40-use-case Sp40 churn sequence of three single-use-case
   deltas (retune one use-case, retire one, ship one new one).
   `churn-full` re-runs the whole design flow per revision — the cost
   every spec change paid before Remap existed; `churn-incremental`
   re-routes only the dirty switching-graph component on the retained
   mesh and placement.  The process-wide cache stays disabled here, so
   the incremental row times the delta routing itself, not a cache
   lookup. *)
let churn_specs =
  let renumber ucs =
    List.mapi (fun i u -> Noc_traffic.Use_case.rename u ~id:i ~name:u.Noc_traffic.Use_case.name) ucs
  in
  let scale_uc k f (spec : DF.spec) =
    let open Noc_traffic in
    { spec with
      DF.use_cases =
        List.map
          (fun u ->
            if u.Use_case.id <> k then u
            else
              Use_case.create ~id:k ~name:u.Use_case.name ~cores:u.Use_case.cores
                (List.map
                   (fun fl ->
                     Flow.v
                       ?latency_ns:
                         (if fl.Flow.latency_ns = infinity then None
                          else Some fl.Flow.latency_ns)
                       ~service:fl.Flow.service ~src:fl.Flow.src ~dst:fl.Flow.dst
                       (f *. fl.Flow.bandwidth))
                   u.Use_case.flows))
          spec.DF.use_cases }
  in
  let remove_uc k (spec : DF.spec) =
    { spec with
      DF.use_cases =
        renumber (List.filter (fun u -> u.Noc_traffic.Use_case.id <> k) spec.DF.use_cases) }
  in
  let add_uc (spec : DF.spec) =
    let fresh = List.hd (Syn.generate ~seed:4242 ~params:Syn.spread_params ~use_cases:1) in
    let n = List.length spec.DF.use_cases in
    { spec with
      DF.use_cases =
        spec.DF.use_cases
        @ [ Noc_traffic.Use_case.rename fresh ~id:n ~name:"churn-added" ] }
  in
  let spec0 =
    DF.spec_of_use_cases ~name:"sp40"
      (Syn.generate ~seed:200 ~params:Syn.spread_params ~use_cases:40)
  in
  let s1 = scale_uc 7 0.9 spec0 in
  let s2 = remove_uc 13 s1 in
  let s3 = add_uc s2 in
  (spec0, [ s1; s2; s3 ])

let bench_remap_incremental =
  let spec0, deltas = churn_specs in
  let d0 = match DF.run spec0 with Ok d -> d | Error e -> failwith e in
  Test.make ~name:"remap:churn-incremental"
    (Staged.stage (fun () ->
         ignore
           (List.fold_left
              (fun old spec ->
                match Noc_core.Remap.remap ~old spec with
                | Ok o -> o.Noc_core.Remap.design
                | Error e -> failwith e)
              d0 deltas)))

let bench_remap_full =
  let _, deltas = churn_specs in
  Test.make ~name:"remap:churn-full"
    (Staged.stage (fun () ->
         List.iter
           (fun spec ->
             match DF.run spec with Ok _ -> () | Error e -> failwith e)
           deltas))

(* The observability rows behind this PR's acceptance criterion: the
   same D1 design once with tracing off (the disabled instrumentation
   is a single atomic load per span site) and once fully traced (the
   buffers are reset each iteration so they do not grow across runs),
   plus the guard check itself in isolation.  Compare the first two
   rows across PRs: they should stay within noise of each other. *)
let bench_obs =
  let ucs = SD.d1 () in
  Test.make_grouped ~name:"obs"
    [
      Test.make ~name:"design-D1-untraced" (Staged.stage (fun () -> ignore (must_map ucs)));
      Test.make ~name:"design-D1-traced"
        (Staged.stage (fun () ->
             Noc_obs.Tracer.set_enabled true;
             Fun.protect
               ~finally:(fun () ->
                 Noc_obs.Tracer.set_enabled false;
                 Noc_obs.Tracer.reset ())
               (fun () -> ignore (must_map ucs))));
      Test.make ~name:"span-disabled-guard"
        (Staged.stage (fun () ->
             for _ = 1 to 1000 do
               Noc_obs.Tracer.with_span "bench:noop" (fun () -> ())
             done));
    ]

let bench_substrate =
  (* not a paper figure: the simulator and RTL backend, for context *)
  let ucs = SD.example1_use_cases in
  let d = must_map ucs in
  let routes = Mapping.routes_of_use_case d.DF.mapping 0 in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"simulate-3200-slots"
        (Staged.stage (fun () ->
             ignore
               (Noc_sim.Simulator.simulate ~config:Config.default ~routes ~duration_slots:3200)));
      Test.make ~name:"emit-vhdl"
        (Staged.stage (fun () ->
             ignore (Noc_rtl.Netlist.generate ~design_name:"bench" d.DF.mapping)));
    ]

(* Long-horizon bursty workload: every connection bursts 8 slots out
   of every 256, so ~95 % of the 32000 slots are idle for the event
   calendar to jump over (the reservations' slack drains each burst
   shortly after its OFF edge).  The -reference row pins the tick
   loop's cost on the same input; their ratio is the headline speedup
   of the event core (the results themselves are byte-identical). *)
let bench_substrate_bursty =
  let ucs = SD.example1_use_cases in
  let d = must_map ucs in
  let routes = Mapping.routes_of_use_case d.DF.mapping 0 in
  let sources =
    List.map
      (fun r ->
        ( r.Noc_arch.Route.flow_id,
          Noc_sim.Simulator.On_off { period_slots = 256; duty = 0.03125 } ))
      routes
  in
  let run core () =
    ignore
      (Noc_sim.Simulator.simulate_with ~core ~sources ~config:Config.default ~routes
         ~duration_slots:32000)
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"simulate-bursty-32000-slots" (Staged.stage (run `Event));
      Test.make ~name:"simulate-bursty-32000-slots-reference" (Staged.stage (run `Reference));
    ]

(* The certification rows behind the PR 9 acceptance criterion: the
   independent certificate checker vs the engine-side analytic Verify
   on the same finished Sp40 design.  Certify re-derives the slot
   claims, bounds and budgets from scratch on its own code path, so
   this pair documents what the extra trust costs — both rows audit
   only; neither designs anything. *)
let bench_certify =
  let ucs = Syn.generate ~seed:200 ~params:Syn.spread_params ~use_cases:40 in
  let d = must_map ucs in
  Test.make_grouped ~name:"certify"
    [
      Test.make ~name:"sp40"
        (Staged.stage (fun () ->
             let cert = Noc_analysis.Certify.certify ~name:"sp40" d.DF.mapping d.DF.all_use_cases in
             if not (Noc_analysis.Certify.clean cert) then failwith "sp40 must certify clean"));
      Test.make ~name:"verify-sp40"
        (Staged.stage (fun () ->
             (* Sp40 trips Verify's best-effort deadlock pass (a known
                property of this design, reported but tolerated), so
                only the check count is pinned here, not ok-ness. *)
             let report = Noc_core.Verify.verify d.DF.mapping d.DF.all_use_cases in
             if report.Noc_core.Verify.checks = 0 then failwith "verify ran no checks"));
    ]

let suite =
  Test.make_grouped ~name:"nocmap"
    [
      bench_fig6a; bench_fig6b; bench_fig6c; bench_s62; bench_fig7a; bench_fig7b; bench_fig7c;
      bench_sweep_pareto_grid; bench_sweep_lint_pruned; bench_sweep_lint_noprune;
      bench_sweep_explore_cache_cold; bench_sweep_explore_cache_warm;
      bench_sweep_min_freq; bench_remap_incremental; bench_remap_full; bench_certify; bench_obs;
      bench_substrate; bench_substrate_bursty;
    ]

(* Per-benchmark mean ns, sorted by name — the stable shape behind both
   the printed table and the machine-readable JSON trajectory. *)
let measure_suite () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.8) ~kde:(Some 10) () in
  (* Prime the result cache so the warm measurement is warm from its
     first iteration, whatever order the tests run in (the cold test
     clears it before every run, so priming cannot help it). *)
  with_cache (fun () -> lint_sweep ~prune:true ()) ();
  let raw = Benchmark.all cfg [ instance ] suite in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.sort compare !rows

let pretty_ns est =
  if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
  else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
  else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
  else Printf.sprintf "%.0f ns" est

let run_perf_suite () =
  let rows = measure_suite () in
  let table = Noc_util.Ascii_table.create ~header:[ "benchmark"; "time per run" ] in
  List.iter
    (fun (name, est) -> Noc_util.Ascii_table.add_row table [ name; pretty_ns est ])
    rows;
  print_endline "Performance (Bechamel, monotonic clock):";
  Noc_util.Ascii_table.print ~align:Noc_util.Ascii_table.Left table

(* --json: run only the perf suite and write BENCH_nocmap.json, one
   stable key per benchmark, so successive PRs can diff performance. *)
let bench_json_file = "BENCH_nocmap.json"

(* The disk tier measured across processes, which the in-process suite
   cannot do (its counters all live and die with this process): run the
   D2 explore twice in nocmap subprocesses against one --cache-dir.
   The first run fills the store, the second replays it; the warm
   run's disk hits come from the STATS files the subprocesses persist
   at exit.  The store is versioned by each binary's own build
   fingerprint — not this bench harness's — so the counters are summed
   over every version found in the directory. *)
let nocmap_exe () =
  let candidates =
    [ Filename.concat (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "nocmap.exe"));
      Filename.concat "_build" (Filename.concat "default" (Filename.concat "bin" "nocmap.exe"))
    ]
  in
  List.find_opt Sys.file_exists candidates

let disk_tier_rows () =
  match nocmap_exe () with
  | None ->
    prerr_endline "disk-tier bench skipped: nocmap.exe not found next to the bench binary";
    []
  | Some exe -> (
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "nocmap-bench-disk-%d" (Unix.getpid ()))
    in
    let run () =
      let cmd =
        Printf.sprintf "%s explore d2 --cache-dir %s >/dev/null 2>&1" (Filename.quote exe)
          (Filename.quote dir)
      in
      let t0 = Noc_obs.Clock.wall () in
      let rc = Sys.command cmd in
      (rc, (Noc_obs.Clock.wall () -. t0) *. 1e9)
    in
    let rc_cold, cold_ns = run () in
    let rc_warm, warm_ns = run () in
    let persisted_disk_hits =
      let module RC = Noc_util.Result_cache in
      List.fold_left
        (fun acc (version, _, _) ->
          match RC.read_persisted_stats ~dir ~version with
          | Some s -> acc + s.RC.disk_hits
          | None -> acc)
        0 (RC.disk_summary ~dir)
    in
    (try Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) |> ignore
     with Sys_error _ -> ());
    if rc_cold <> 0 || rc_warm <> 0 then begin
      prerr_endline "disk-tier bench skipped: the subprocess explore failed";
      []
    end
    else
      [ ("cache:disk-cold", cold_ns);
        ("cache:disk-warm", warm_ns);
        ("cache:disk-warm-hits", float_of_int persisted_disk_hits)
      ])

(* The serve daemon measured end to end, over real sockets and real
   processes: a nocmap subprocess serves, nocmap client subprocesses
   drive it (the handshake pins the build fingerprint to the
   executable, so the server and its load driver must be the same
   binary — this bench harness merely orchestrates and parses the
   [client bench] JSON line).  Two regimes bracket the daemon's value:
   the warm-cache coalesced throughput of 8 concurrent connections
   re-requesting one D2 problem, against the naive cold throughput of a
   cache-disabled server solving every request from scratch. *)
let serve_rows () =
  match nocmap_exe () with
  | None ->
    prerr_endline "serve bench skipped: nocmap.exe not found next to the bench binary";
    []
  | Some exe -> (
    let sock =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "nocmap-bench-serve-%d.sock" (Unix.getpid ()))
    in
    let start_server extra_flags =
      let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let argv =
        Array.of_list ([ exe; "serve"; "--socket"; sock ] @ extra_flags)
      in
      let pid = Unix.create_process exe argv null null null in
      Unix.close null;
      (* Wait until the daemon answers a ping (or give up). *)
      let ping =
        Printf.sprintf "%s client ping --socket %s >/dev/null 2>&1" (Filename.quote exe)
          (Filename.quote sock)
      in
      let rec up tries =
        if tries = 0 then false
        else if Sys.command ping = 0 then true
        else begin
          Unix.sleepf 0.05;
          up (tries - 1)
        end
      in
      if up 100 then Some pid
      else begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        None
      end
    in
    let stop_server pid =
      ignore
        (Sys.command
           (Printf.sprintf "%s client shutdown --socket %s >/dev/null 2>&1"
              (Filename.quote exe) (Filename.quote sock)));
      ignore (Unix.waitpid [] pid)
    in
    let client_bench ~connections ~repeat =
      let cmd =
        Printf.sprintf
          "%s client bench d2 --socket %s --op explore --connections %d --repeat %d 2>/dev/null"
          (Filename.quote exe) (Filename.quote sock) connections repeat
      in
      let ic = Unix.open_process_in cmd in
      let rec last_json acc =
        match input_line ic with
        | line -> last_json (if String.length line > 0 && line.[0] = '{' then Some line else acc)
        | exception End_of_file -> acc
      in
      let line = last_json None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some line -> (
        match Noc_export.Json.parse line with
        | Ok stats ->
          let field name =
            Option.bind (Noc_export.Json.member name stats) Noc_export.Json.to_float
          in
          Some (field "throughput_rps", field "p50_ms", field "p99_ms")
        | Error _ -> None)
      | _ -> None
    in
    let with_server flags k =
      match start_server flags with
      | None ->
        prerr_endline "serve bench skipped: the daemon did not come up";
        None
      | Some pid ->
        let r = k () in
        stop_server pid;
        r
    in
    let warm =
      with_server [ "--linger-ms"; "5" ] (fun () ->
          (* Prime the cache, then measure coalesced warm throughput. *)
          ignore (client_bench ~connections:1 ~repeat:1);
          client_bench ~connections:8 ~repeat:5)
    in
    let cold =
      with_server [ "--no-cache" ] (fun () -> client_bench ~connections:1 ~repeat:3)
    in
    let rows = ref [] in
    let add name v = match v with Some v -> rows := (name, v) :: !rows | None -> () in
    (match warm with
    | Some (rps, p50, p99) ->
      add "serve:req-per-sec" rps;
      add "serve:p50-latency-ns" (Option.map (fun ms -> ms *. 1e6) p50);
      add "serve:p99-latency-ns" (Option.map (fun ms -> ms *. 1e6) p99)
    | None -> ());
    (match cold with
    | Some (rps, _, _) -> add "serve:req-per-sec-nocache-cold" rps
    | None -> ());
    List.rev !rows)

let write_json rows =
  (* Counters from the cache benchmarks (the rest of the suite runs
     with the cache disabled), recorded next to the timings so the
     trajectory shows hit rates as well as speedups. *)
  let s = Noc_core.Mapping_cache.stats () in
  let counters =
    let open Noc_util.Result_cache in
    [
      ("cache:memory-hits", float_of_int s.memory_hits);
      ("cache:disk-hits", float_of_int s.disk_hits);
      ("cache:misses", float_of_int s.misses);
      ("cache:stores", float_of_int s.stores);
      ("cache:evictions", float_of_int s.evictions);
    ]
  in
  (* The unified observability registry, accumulated over the whole
     suite: attempt/prune/pool-steal counts alongside the timings, so
     the trajectory shows how much work the measured runs actually did.
     Nonzero counters only — a counter at zero is just a registered
     name. *)
  let obs_rows =
    let snap = Noc_obs.Metrics.snapshot () in
    List.filter_map
      (fun (n, v) -> if v = 0 then None else Some ("obs:" ^ n, float_of_int v))
      snap.Noc_obs.Metrics.counters
  in
  let rows = rows @ counters @ obs_rows @ disk_tier_rows () @ serve_rows () in
  Out_channel.with_open_text bench_json_file (fun oc ->
      output_string oc "{\n";
      List.iteri
        (fun i (name, est) ->
          Printf.fprintf oc "  %S: %.1f%s\n" name est
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "}\n");
  Printf.printf "wrote %s (%d entries, mean ns per run + cache counters)\n" bench_json_file
    (List.length rows)

let print_worked_examples () =
  (* Fig 2 / Fig 5 sanity rows: the worked examples design and verify. *)
  print_endline "Fig 2 / Fig 5 worked examples";
  let row name ucs =
    match DF.run (DF.spec_of_use_cases ~name ucs) with
    | Ok d ->
      Printf.printf "  %-18s -> %d switches, verified=%b\n" name (DF.switch_count d)
        (DF.verified d)
    | Error _ -> Printf.printf "  %-18s -> FAILED\n" name
  in
  row "fig2-viper"
    [ SD.viper_fragment_1;
      Noc_traffic.Use_case.rename SD.viper_fragment_2 ~id:1 ~name:"viper-uc2" ];
  row "fig5-example1" SD.example1_use_cases;
  print_newline ()

let parse_jobs () =
  let n = Array.length Sys.argv in
  let rec scan i =
    if i >= n then ()
    else if Sys.argv.(i) = "--jobs" && i + 1 < n then
      Noc_util.Domain_pool.set_default_jobs (int_of_string Sys.argv.(i + 1))
    else scan (i + 1)
  in
  scan 1

let () =
  parse_jobs ();
  if Array.exists (( = ) "--json") Sys.argv then write_json (measure_suite ())
  else begin
    print_endline "=== Reproduction of the paper's evaluation (Sec 6) ===";
    print_newline ();
    print_worked_examples ();
    E.print_all ();
    print_endline "=== Ablations (design-choice sweeps) ===";
    print_newline ();
    Noc_benchkit.Ablations.print_all ();
    print_endline "=== Performance suite ===";
    print_newline ();
    run_perf_suite ()
  end
