lib/rtl/vhdl.ml: Buffer List Printf String
