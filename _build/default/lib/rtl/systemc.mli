(** SystemC generation for a completed design.

    Phase 4 of the paper's flow emits "SystemC & RTL VHDL"; {!Netlist}
    covers the VHDL side, this module the SystemC side: behavioural
    switch and NI modules, the per-use-case slot tables as constant
    arrays, and a structural top level binding one switch per mesh node
    and one NI per core.  [check] is a lint for the constructs this
    generator emits, strong enough to catch generator bugs. *)

val switch_module : config:Noc_arch.Noc_config.t -> string
(** SC_MODULE(noc_switch) with the five compass ports and the slot
    counter process. *)

val ni_module : config:Noc_arch.Noc_config.t -> string

val slot_tables : design_name:string -> Noc_core.Mapping.t -> string
(** Per-use-case slot-table constants (the state rewritten at use-case
    switching time). *)

val top_module : design_name:string -> Noc_core.Mapping.t -> string
(** The structural top level with signal members and constructor
    bindings. *)

val generate : design_name:string -> Noc_core.Mapping.t -> string
(** The full compilation unit. *)

type issue = {
  line : int;
  message : string;
}

val check : string -> (unit, issue list) result
(** Lint: balanced braces/parentheses, every instantiated module has an
    SC_MODULE definition, every port binding refers to a declared
    signal or port, no duplicate instance member names. *)

val stats : string -> (string * int) list
(** Inventory: modules, instances, signals, bindings. *)
