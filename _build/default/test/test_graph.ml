(* Tests for Noc_graph: priority queue, adjacency graphs, DFS
   components, Dijkstra, union-find. *)

module Pq = Noc_graph.Priority_queue
module G = Noc_graph.Intgraph
module Components = Noc_graph.Components
module Sp = Noc_graph.Shortest_path
module Uf = Noc_graph.Union_find
module Rng = Noc_util.Rng

(* --- priority queue --------------------------------------------------- *)

let test_pq_empty () =
  let q = Pq.create () in
  Alcotest.(check bool) "empty" true (Pq.is_empty q);
  Alcotest.(check bool) "pop none" true (Pq.pop_min q = None)

let test_pq_ordering () =
  let q = Pq.create () in
  List.iter (fun p -> Pq.push q ~priority:p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.init 5 (fun _ -> match Pq.pop_min q with Some (p, _) -> p | None -> nan) in
  Alcotest.(check (list (float 0.0))) "ascending" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] order

let test_pq_peek () =
  let q = Pq.create () in
  Pq.push q ~priority:2.0 "b";
  Pq.push q ~priority:1.0 "a";
  (match Pq.peek_min q with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "peek priority" 1.0 p;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected element");
  Alcotest.(check int) "peek does not pop" 2 (Pq.length q)

let test_pq_duplicates () =
  let q = Pq.create () in
  Pq.push q ~priority:1.0 "x";
  Pq.push q ~priority:1.0 "y";
  Alcotest.(check int) "both kept" 2 (Pq.length q)

let test_pq_clear () =
  let q = Pq.create () in
  Pq.push q ~priority:1.0 0;
  Pq.clear q;
  Alcotest.(check bool) "cleared" true (Pq.is_empty q)

let prop_pq_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list (float_bound_exclusive 1000.0))
    (fun xs ->
      let q = Pq.create () in
      List.iter (fun x -> Pq.push q ~priority:x x) xs;
      let rec drain acc =
        match Pq.pop_min q with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* --- intgraph ---------------------------------------------------------- *)

let test_graph_basic () =
  let g = G.create ~directed:true ~nodes:3 in
  let e0 = G.add_edge g 0 1 in
  let e1 = G.add_edge g 1 2 in
  Alcotest.(check int) "first id" 0 e0;
  Alcotest.(check int) "second id" 1 e1;
  Alcotest.(check int) "nodes" 3 (G.node_count g);
  Alcotest.(check int) "edges" 2 (G.edge_count g);
  Alcotest.(check (list (pair int int))) "succ 0" [ (1, 0) ] (G.succ g 0);
  Alcotest.(check bool) "mem" true (G.mem_edge g 0 1);
  Alcotest.(check bool) "directed: no reverse" false (G.mem_edge g 1 0)

let test_graph_undirected_reverse () =
  let g = G.create ~directed:false ~nodes:2 in
  ignore (G.add_edge g 0 1);
  Alcotest.(check bool) "forward" true (G.mem_edge g 0 1);
  Alcotest.(check bool) "backward" true (G.mem_edge g 1 0);
  Alcotest.(check int) "one logical edge" 1 (G.edge_count g)

let test_graph_parallel_edges () =
  let g = G.create ~directed:true ~nodes:2 in
  let a = G.add_edge g 0 1 in
  let b = G.add_edge g 0 1 in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "degree" 2 (G.degree g 0)

let test_graph_out_of_range () =
  let g = G.create ~directed:true ~nodes:2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Intgraph: node out of range") (fun () ->
      ignore (G.add_edge g 0 5))

let test_graph_fold_edges () =
  let g = G.create ~directed:true ~nodes:3 in
  ignore (G.add_edge g 0 1);
  ignore (G.add_edge g 1 2);
  let collected = G.fold_edges g ~init:[] ~f:(fun acc u v id -> (u, v, id) :: acc) in
  Alcotest.(check (list (triple int int int))) "insertion order" [ (1, 2, 1); (0, 1, 0) ] collected

(* --- components -------------------------------------------------------- *)

let test_components_isolated () =
  let g = G.create ~directed:false ~nodes:3 in
  Alcotest.(check (list (list int))) "three singletons" [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (Components.connected_components g)

let test_components_chain () =
  let g = G.create ~directed:false ~nodes:4 in
  ignore (G.add_edge g 0 1);
  ignore (G.add_edge g 1 2);
  Alcotest.(check (list (list int))) "chain + isolated" [ [ 0; 1; 2 ]; [ 3 ] ]
    (Components.connected_components g)

let test_components_rejects_directed () =
  let g = G.create ~directed:true ~nodes:2 in
  Alcotest.check_raises "directed"
    (Invalid_argument "Components.connected_components: directed graph") (fun () ->
      ignore (Components.connected_components g))

let test_component_ids () =
  let g = G.create ~directed:false ~nodes:4 in
  ignore (G.add_edge g 2 3);
  let ids = Components.component_ids g in
  Alcotest.(check bool) "2,3 same" true (ids.(2) = ids.(3));
  Alcotest.(check bool) "0,1 differ" true (ids.(0) <> ids.(1))

let test_reachable_directed () =
  let g = G.create ~directed:true ~nodes:3 in
  ignore (G.add_edge g 0 1);
  (* 2 is unreachable from 0; 1 cannot reach back *)
  Alcotest.(check (list int)) "from 0" [ 0; 1 ] (Components.reachable g 0);
  Alcotest.(check (list int)) "from 1" [ 1 ] (Components.reachable g 1)

let test_is_connected () =
  let g = G.create ~directed:false ~nodes:2 in
  Alcotest.(check bool) "disconnected" false (Components.is_connected g);
  ignore (G.add_edge g 0 1);
  Alcotest.(check bool) "connected" true (Components.is_connected g)

(* Random graph: DFS components must agree with union-find. *)
let prop_components_match_union_find =
  QCheck.Test.make ~name:"DFS components = union-find groups" ~count:100
    QCheck.(pair small_int (list (pair (int_bound 19) (int_bound 19))))
    (fun (_, edges) ->
      let n = 20 in
      let g = G.create ~directed:false ~nodes:n in
      let uf = Uf.create n in
      List.iter
        (fun (u, v) ->
          if u <> v then begin
            ignore (G.add_edge g u v);
            Uf.union uf u v
          end)
        edges;
      Components.connected_components g = Uf.groups uf)

(* --- dijkstra ----------------------------------------------------------- *)

let unit_cost ~edge:_ ~src:_ ~dst:_ = Some 1.0

let line_graph n =
  let g = G.create ~directed:true ~nodes:n in
  for i = 0 to n - 2 do
    ignore (G.add_edge g i (i + 1))
  done;
  g

let test_dijkstra_line () =
  let g = line_graph 5 in
  match Sp.dijkstra g ~cost:unit_cost ~source:0 ~target:4 with
  | Some p ->
    Alcotest.(check (float 1e-9)) "cost 4" 4.0 p.Sp.cost;
    Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3; 4 ] p.Sp.nodes;
    Alcotest.(check (list int)) "edges" [ 0; 1; 2; 3 ] p.Sp.edges
  | None -> Alcotest.fail "path expected"

let test_dijkstra_unreachable () =
  let g = line_graph 3 in
  Alcotest.(check bool) "no reverse path" true
    (Sp.dijkstra g ~cost:unit_cost ~source:2 ~target:0 = None)

let test_dijkstra_source_is_target () =
  let g = line_graph 2 in
  match Sp.dijkstra g ~cost:unit_cost ~source:0 ~target:0 with
  | Some p ->
    Alcotest.(check (float 0.0)) "zero cost" 0.0 p.Sp.cost;
    Alcotest.(check (list int)) "trivial" [ 0 ] p.Sp.nodes
  | None -> Alcotest.fail "trivial path expected"

let test_dijkstra_prefers_cheap_detour () =
  (* 0->1 expensive direct, 0->2->1 cheap. *)
  let g = G.create ~directed:true ~nodes:3 in
  let direct = G.add_edge g 0 1 in
  ignore (G.add_edge g 0 2);
  ignore (G.add_edge g 2 1);
  let cost ~edge ~src:_ ~dst:_ = if edge = direct then Some 10.0 else Some 1.0 in
  match Sp.dijkstra g ~cost ~source:0 ~target:1 with
  | Some p ->
    Alcotest.(check (float 1e-9)) "detour cost" 2.0 p.Sp.cost;
    Alcotest.(check (list int)) "via 2" [ 0; 2; 1 ] p.Sp.nodes
  | None -> Alcotest.fail "path expected"

let test_dijkstra_respects_unusable_edges () =
  let g = line_graph 3 in
  let cost ~edge ~src:_ ~dst:_ = if edge = 1 then None else Some 1.0 in
  Alcotest.(check bool) "blocked" true (Sp.dijkstra g ~cost ~source:0 ~target:2 = None)

let test_dijkstra_negative_cost_rejected () =
  let g = line_graph 2 in
  Alcotest.check_raises "negative" (Invalid_argument "Shortest_path: negative cost") (fun () ->
      ignore
        (Sp.dijkstra g ~cost:(fun ~edge:_ ~src:_ ~dst:_ -> Some (-1.0)) ~source:0 ~target:1))

let test_dijkstra_all_distances () =
  let g = line_graph 4 in
  let dist, parent = Sp.dijkstra_all g ~cost:unit_cost ~source:0 in
  Alcotest.(check (array (float 1e-9))) "distances" [| 0.0; 1.0; 2.0; 3.0 |] dist;
  Alcotest.(check int) "source parent" (-1) parent.(0)

let test_hop_path_equals_unit_dijkstra () =
  let g = G.create ~directed:true ~nodes:4 in
  ignore (G.add_edge g 0 1);
  ignore (G.add_edge g 1 3);
  ignore (G.add_edge g 0 2);
  ignore (G.add_edge g 2 3);
  match Sp.hop_path g ~source:0 ~target:3 with
  | Some p -> Alcotest.(check (float 1e-9)) "2 hops" 2.0 p.Sp.cost
  | None -> Alcotest.fail "path expected"

(* Random DAG-ish graphs: dijkstra with unit costs = BFS distance. *)
let prop_dijkstra_unit_equals_bfs =
  QCheck.Test.make ~name:"unit-cost dijkstra = BFS" ~count:100
    QCheck.(list (pair (int_bound 14) (int_bound 14)))
    (fun edges ->
      let n = 15 in
      let g = G.create ~directed:true ~nodes:n in
      List.iter (fun (u, v) -> if u <> v then ignore (G.add_edge g u v)) edges;
      (* BFS from 0 *)
      let dist = Array.make n max_int in
      dist.(0) <- 0;
      let q = Queue.create () in
      Queue.push 0 q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        G.iter_succ g u (fun v _ ->
            if dist.(v) = max_int then begin
              dist.(v) <- dist.(u) + 1;
              Queue.push v q
            end)
      done;
      let ddist, _ = Sp.dijkstra_all g ~cost:unit_cost ~source:0 in
      let ok = ref true in
      for v = 0 to n - 1 do
        let bfs = if dist.(v) = max_int then infinity else float_of_int dist.(v) in
        if bfs <> ddist.(v) then ok := false
      done;
      !ok)

(* --- union-find --------------------------------------------------------- *)

let test_uf_basics () =
  let uf = Uf.create 4 in
  Alcotest.(check int) "initial count" 4 (Uf.count uf);
  Uf.union uf 0 1;
  Alcotest.(check bool) "same" true (Uf.same uf 0 1);
  Alcotest.(check bool) "not same" false (Uf.same uf 0 2);
  Alcotest.(check int) "count after union" 3 (Uf.count uf)

let test_uf_union_idempotent () =
  let uf = Uf.create 3 in
  Uf.union uf 0 1;
  Uf.union uf 0 1;
  Alcotest.(check int) "count stable" 2 (Uf.count uf)

let test_uf_groups () =
  let uf = Uf.create 5 in
  Uf.union uf 0 4;
  Uf.union uf 1 2;
  Alcotest.(check (list (list int))) "groups" [ [ 0; 4 ]; [ 1; 2 ]; [ 3 ] ] (Uf.groups uf)

let test_uf_transitivity () =
  let uf = Uf.create 4 in
  Uf.union uf 0 1;
  Uf.union uf 1 2;
  Alcotest.(check bool) "0~2" true (Uf.same uf 0 2)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pq_sorts; prop_components_match_union_find; prop_dijkstra_unit_equals_bfs ]

let () =
  Alcotest.run "noc_graph"
    [
      ( "priority_queue",
        [
          Alcotest.test_case "empty" `Quick test_pq_empty;
          Alcotest.test_case "ordering" `Quick test_pq_ordering;
          Alcotest.test_case "peek" `Quick test_pq_peek;
          Alcotest.test_case "duplicates" `Quick test_pq_duplicates;
          Alcotest.test_case "clear" `Quick test_pq_clear;
        ] );
      ( "intgraph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "undirected reverse" `Quick test_graph_undirected_reverse;
          Alcotest.test_case "parallel edges" `Quick test_graph_parallel_edges;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "fold edges" `Quick test_graph_fold_edges;
        ] );
      ( "components",
        [
          Alcotest.test_case "isolated" `Quick test_components_isolated;
          Alcotest.test_case "chain" `Quick test_components_chain;
          Alcotest.test_case "rejects directed" `Quick test_components_rejects_directed;
          Alcotest.test_case "component ids" `Quick test_component_ids;
          Alcotest.test_case "reachable directed" `Quick test_reachable_directed;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "line graph" `Quick test_dijkstra_line;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "source=target" `Quick test_dijkstra_source_is_target;
          Alcotest.test_case "cheap detour" `Quick test_dijkstra_prefers_cheap_detour;
          Alcotest.test_case "unusable edges" `Quick test_dijkstra_respects_unusable_edges;
          Alcotest.test_case "negative cost rejected" `Quick test_dijkstra_negative_cost_rejected;
          Alcotest.test_case "single-source distances" `Quick test_dijkstra_all_distances;
          Alcotest.test_case "hop path" `Quick test_hop_path_equals_unit_dijkstra;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basics" `Quick test_uf_basics;
          Alcotest.test_case "idempotent union" `Quick test_uf_union_idempotent;
          Alcotest.test_case "groups" `Quick test_uf_groups;
          Alcotest.test_case "transitivity" `Quick test_uf_transitivity;
        ] );
      ("properties", qcheck_cases);
    ]
