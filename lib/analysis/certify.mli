(** Proof-carrying designs: an engine-independent certificate checker.

    The paper's central claim is that one NoC configuration serves
    every use-case with guaranteed throughput.  Until now that claim
    was vouched for by the same code that produced the design
    ({!Noc_core.Verify} shares {!Noc_arch.Tdma} and the routing
    helpers with the mapping engines).  This module is the
    independent auditor: it takes a finished design — built in this
    process or decoded from a {!Noc_core.Mapping_codec} dump of
    unknown provenance — and re-derives every guarantee from first
    principles, on a deliberately separate and simple code path:

    - {b slot exclusivity}: the (link, slot) claims implied by each
      route's starting slots (start [t] claims slot [t+i] on the
      [i]-th link) collide neither within a use-case nor with the
      recorded slot tables, and every recorded reservation is claimed
      by a route of its own switching group;
    - {b reserved bandwidth}: each guaranteed flow's granted slots
      deliver at least its contracted bandwidth;
    - {b route well-formedness}: paths are connected, loop-free
      switch chains on the mesh that agree with the core placement;
    - {b NI bounds}: switch NI capacity, per-core NI link budgets
      (when constrained) and the per-core NI buffer words the slot
      tables imply;
    - {b static worst-case latency}: a per-flow bound computed by
      slot-table phase analysis — the worst launch-to-delivery
      distance over all TDMA arrival offsets — with no simulation,
      checked against the flow's constraint.

    None of {!Noc_arch.Tdma}, {!Noc_core.Path_select} or
    {!Noc_core.Verify} is reused, so bugs in the engines (or a
    tampered dump) cannot hide behind shared code.  The result is a
    certificate record — design digest, per-flow bounds, findings —
    carrying a signature over its canonical rendering, so a stored
    certificate is tamper-evident.

    Cross-validation (test/test_certify.ml): on hundreds of random
    specs the event-core simulator's observed per-flow latencies never
    exceed the static bounds (and some flow meets its bound exactly),
    and every engine-produced design certifies clean, byte-identically
    across engines. *)

type flow_bound = {
  use_case : int;
  flow_id : int;          (** the route's connection id *)
  src_core : int;
  dst_core : int;
  hops : int;
  granted_slots : int;    (** reserved starting slots *)
  bound_ns : float;       (** static worst-case latency ([infinity] for BE) *)
  required_ns : float;    (** the flow's constraint ([infinity] if none) *)
  slack_ns : float;       (** [required_ns -. bound_ns] *)
}

type finding = {
  check : string;   (** stable kebab-case check id, e.g. ["slot-owner"] *)
  use_case : int;   (** [-1] for design-global findings *)
  link : int;       (** link id for per-link findings, [-1] otherwise *)
  detail : string;
}

type t = {
  design : string;          (** design name the certificate speaks about *)
  digest : string option;   (** {!Noc_core.Mapping_codec.digest} of the design *)
  switches : int;
  use_cases : int;
  routes : int;
  checks : int;             (** individual checks executed *)
  findings : finding list;  (** empty iff the design certifies clean *)
  bounds : flow_bound list; (** per GT flow, in (use-case, flow) order *)
  ni_buffer_words : (int * int) list;
      (** [(core, words)] NI buffer provisioning the slot tables imply:
          per use-case source-side worst-service-gap buffers plus one
          reassembly payload per incoming connection, re-derived here
          (not via {!Noc_arch.Ni_buffer}), worst use-case per core *)
  signature : string;       (** MD5 over the canonical payload rendering *)
}

val certify : ?name:string -> Noc_core.Mapping.t -> Noc_traffic.Use_case.t list -> t
(** Certify a mapped design against the traffic it claims to serve.
    [use_cases] must be the full expanded list (base + compounds, see
    {!Noc_core.Design_flow.expand}); ids must equal list positions.
    The mapping may come from anywhere — the in-process engines or a
    decoded {!Noc_core.Mapping_codec} dump; nothing about how it was
    produced is trusted. *)

val clean : t -> bool

val static_bound_ns :
  config:Noc_arch.Noc_config.t -> slot_starts:int list -> hops:int -> float
(** The phase analysis by itself: worst over all arrival offsets [t]
    in one TDMA revolution of (wait from [t] to the next reserved
    start) + 1 launch slot + [hops] forwarding slots, as nanoseconds.
    [hops = 0] (same-switch) costs one slot; an empty start list with
    [hops > 0] is unbounded ([infinity]).  Agrees bit-for-bit with
    {!Noc_arch.Route.worst_case_latency_ns} on reserved connections —
    property-tested, since the two derivations share no code. *)

val signature_ok : t -> bool
(** Recompute the signature over the record's payload and compare. *)

val to_json : t -> Noc_export.Json.t
(** The full certificate record, signature included. *)

val to_diagnostics : t -> Diagnostic.t list
(** Findings as [certify-<check>] error diagnostics plus one
    [certify] info summary — the form [nocmap lint --deep] appends. *)

val render_text : t -> string

val exit_code : t -> int
(** 0 when clean, 2 otherwise — the [nocmap certify] convention
    (matching [nocmap lint]: exit = max severity, findings are
    errors). *)
