module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

type demand = {
  core : int;
  egress : bool;
  slots : int;
}

type group_cert = {
  group : int;
  cut : demand list;
  aggregate : int;
}

type impossibility = {
  group : int;
  src : int;
  dst : int;
  reason : string;
}

type t = {
  topology : Mesh.kind;
  slots : int;
  cap : int;
  cores : int;
  max_dim : int;
  impossible : impossibility list;
  group_certs : group_cert list;
}

(* Smallest per-link slot count a remote (>= 1 hop) reservation of this
   flow can occupy, or [None] when no count works.  Mirrors the mapper
   exactly: the bandwidth floor is [Config.slots_for_bandwidth] and the
   latency check is [Tdma.worst_case_latency_ns] with the best possible
   start spread — [k] starts in [S] slots leave a cyclic gap of at least
   ceil(S/k) (the gaps sum to S) — at the best possible hop count of 1.
   Both are lower bounds on what any actual route achieves, so a [None]
   here means every remote route fails in [Path_select]. *)
let eff_slots ~config bw lat =
  let s = config.Config.slots in
  let needed = max 1 (Config.slots_for_bandwidth config bw) in
  if needed > s then None
  else if lat = infinity then Some needed
  else
    let dur = Config.slot_duration_ns config in
    let rec try_k k =
      if k > s then None
      else
        let gap = (s + k - 1) / k in
        if float_of_int (gap + 1) *. dur <= lat then Some k else try_k (k + 1)
    in
    try_k needed

(* One merged directed reservation: group members share a single
   configuration, so [Path_select.route_shared] reserves each ordered
   pair once at the members' maximum bandwidth and minimum latency. *)
type dstat = {
  d_src : int;
  d_dst : int;
  d_bw : float;
  d_lat : float;
  d_k : int option;  (* remote per-link slots, None = remote infeasible *)
  d_coloc : bool;    (* survives NI-to-NI through one switch *)
}

let sum = List.fold_left ( + ) 0

(* Largest [b] elements of [l], summed. *)
let top_sum b l =
  let sorted = List.sort (fun a b -> compare b a) l in
  let rec take n = function
    | x :: rest when n > 0 -> x + take (n - 1) rest
    | _ -> 0
  in
  take b sorted

let certify_group ~config ~impossible gi members ucs =
  let dur = Config.slot_duration_ns config in
  let slots = config.Config.slots in
  let cap = config.Config.nis_per_switch in
  let cores = ucs.(0).Use_case.cores in
  (* Merged guaranteed traffic of the group: per ordered pair the
     maximum bandwidth and minimum latency across members. *)
  let merged = Hashtbl.create 64 in
  List.iter
    (fun id ->
      List.iter
        (fun f ->
          if Flow.is_guaranteed f then begin
            let key = (f.Flow.src, f.Flow.dst) in
            let bw, lat =
              Option.value (Hashtbl.find_opt merged key) ~default:(0.0, infinity)
            in
            Hashtbl.replace merged key
              (Float.max bw f.Flow.bandwidth, Float.min lat f.Flow.latency_ns)
          end)
        ucs.(id).Use_case.flows)
    members;
  let stats =
    Hashtbl.fold
      (fun (src, dst) (bw, lat) acc ->
        { d_src = src; d_dst = dst; d_bw = bw; d_lat = lat;
          d_k = eff_slots ~config bw lat; d_coloc = dur <= lat }
        :: acc)
      merged []
  in
  (* Globally impossible flows: no remote slot count works and the
     co-located fallback misses the latency bound too. *)
  let stats =
    List.filter
      (fun st ->
        if st.d_k = None && not st.d_coloc then begin
          let needed = max 1 (Config.slots_for_bandwidth config st.d_bw) in
          let why =
            if needed > slots then
              Printf.sprintf
                "bandwidth %.1f MB/s needs %d slots of a %d-slot table, and \
                 co-location misses latency %.0f ns (one slot lasts %.0f ns)"
                st.d_bw needed slots st.d_lat dur
            else
              Printf.sprintf
                "latency %.0f ns is under one slot duration (%.0f ns), which \
                 even two co-located cores cannot beat"
                st.d_lat dur
          in
          impossible :=
            { group = gi; src = st.d_src; dst = st.d_dst;
              reason = Printf.sprintf "flow %d -> %d can never be routed: %s"
                  st.d_src st.d_dst why }
            :: !impossible;
          false
        end
        else true)
      stats
  in
  (* Group directions by unordered core pair: co-location is one
     decision per pair. *)
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun st ->
      let key = (min st.d_src st.d_dst, max st.d_src st.d_dst) in
      let cur = Option.value (Hashtbl.find_opt pairs key) ~default:[] in
      Hashtbl.replace pairs key (st :: cur))
    stats;
  (* Forced co-locations (a direction that cannot go remote) union into
     components that must share one switch. *)
  let parent = Array.init cores Fun.id in
  let rec find x = if parent.(x) = x then x else begin
      let r = find parent.(x) in
      parent.(x) <- r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  let forced_edges = ref [] in
  Hashtbl.iter
    (fun (a, b) dirs ->
      let forced = List.exists (fun st -> st.d_k = None) dirs in
      let must_remote = List.exists (fun st -> not st.d_coloc) dirs in
      if forced then begin
        if must_remote then
          impossible :=
            { group = gi; src = a; dst = b;
              reason =
                Printf.sprintf
                  "cores %d and %d must share a switch (a flow between them \
                   cannot go remote) yet another flow between them cannot \
                   meet its latency through a shared switch" a b }
            :: !impossible
        else begin
          union a b;
          forced_edges := (a, b) :: !forced_edges
        end
      end)
    pairs;
  let comp_size = Array.make cores 0 in
  Array.iteri (fun c _ -> comp_size.(find c) <- comp_size.(find c) + 1) parent;
  List.iter
    (fun (a, b) ->
      let r = find a in
      if comp_size.(r) > cap then begin
        comp_size.(r) <- cap; (* report each oversized component once *)
        impossible :=
          { group = gi; src = a; dst = b;
            reason =
              Printf.sprintf
                "co-location closure around cores %d and %d spans more cores \
                 than one switch's %d NIs" a b cap }
          :: !impossible
      end)
    !forced_edges;
  (* Per-core directional slot demands.  A core keeps at most
     cap - |its forced component| optional partners on its own switch;
     everything else reserves its per-link slots on the core's switch
     egress (first link) / ingress (last link). *)
  let must_out = Array.make cores 0 and must_in = Array.make cores 0 in
  let opt_out = Array.make cores [] and opt_in = Array.make cores [] in
  Hashtbl.iter
    (fun (a, b) dirs ->
      if List.exists (fun st -> st.d_k = None) dirs then ()
        (* forced co-located (or already reported impossible): no slots *)
      else if find a = find b then begin
        (* transitively forced onto one switch *)
        if List.exists (fun st -> not st.d_coloc) dirs then
          impossible :=
            { group = gi; src = a; dst = b;
              reason =
                Printf.sprintf
                  "cores %d and %d are transitively forced onto one switch \
                   but a flow between them cannot meet its latency there" a b }
            :: !impossible
      end
      else begin
        let must = List.exists (fun st -> not st.d_coloc) dirs in
        let cost_out c =
          List.fold_left
            (fun acc st -> if st.d_src = c then acc + Option.get st.d_k else acc)
            0 dirs
        in
        let cost_in c =
          List.fold_left
            (fun acc st -> if st.d_dst = c then acc + Option.get st.d_k else acc)
            0 dirs
        in
        let add c d =
          if must then begin
            must_out.(c) <- must_out.(c) + cost_out c;
            must_in.(c) <- must_in.(c) + cost_in c
          end
          else begin
            opt_out.(c) <- cost_out c :: opt_out.(c);
            opt_in.(c) <- cost_in c :: opt_in.(c)
          end;
          ignore d
        in
        add a b;
        add b a
      end)
    pairs;
  let cut = ref [] in
  let total = ref 0 in
  for c = cores - 1 downto 0 do
    let budget = max 0 (cap - comp_size.(find c)) in
    let out = must_out.(c) + sum opt_out.(c) - top_sum budget opt_out.(c) in
    let inn = must_in.(c) + sum opt_in.(c) - top_sum budget opt_in.(c) in
    total := !total + out + inn;
    if inn > 0 then cut := { core = c; egress = false; slots = inn } :: !cut;
    if out > 0 then cut := { core = c; egress = true; slots = out } :: !cut
  done;
  { group = gi; cut = !cut; aggregate = (!total + 1) / 2 }

let certify ?(config = Config.default) ~groups use_cases =
  (match use_cases with
  | [] -> invalid_arg "Feasibility.certify: no use-cases"
  | _ -> ());
  let ucs = Array.of_list use_cases in
  let n = Array.length ucs in
  List.iter
    (List.iter (fun id ->
         if id < 0 || id >= n then
           invalid_arg "Feasibility.certify: group member out of range"))
    groups;
  let impossible = ref [] in
  let group_certs =
    List.mapi (fun gi members -> certify_group ~config ~impossible gi members ucs) groups
  in
  {
    topology = config.Config.topology;
    slots = config.Config.slots;
    cap = config.Config.nis_per_switch;
    cores = ucs.(0).Use_case.cores;
    max_dim = config.Config.max_mesh_dim;
    impossible = List.rev !impossible;
    group_certs;
  }

(* Most-connected switch (out-degree) and directed link count of the
   switch graph the mapper will route on.  Along the growth sequence
   both grow monotonically, so the admitted set is always an up-set of
   that order. *)
let graph_metrics mesh =
  let g = Mesh.graph mesh in
  let maxdeg = ref 0 in
  for v = 0 to Mesh.switch_count mesh - 1 do
    maxdeg := max !maxdeg (Noc_graph.Intgraph.degree g v)
  done;
  (!maxdeg, Mesh.link_count mesh)

let check_bounds t ~label ~switches ~maxdeg ~links =
  match t.impossible with
  | imp :: _ ->
    Some
      (Printf.sprintf "use-case group %d: %s (infeasible at every size)" imp.group imp.reason)
  | [] ->
    if switches * t.cap < t.cores then
      Some
        (Printf.sprintf "%s offers %d NIs but the SoC has %d cores" label
           (switches * t.cap) t.cores)
    else begin
      let check_group (g : group_cert) =
        let cut_violation =
          List.find_opt (fun (d : demand) -> d.slots > maxdeg * t.slots) g.cut
        in
        match cut_violation with
        | Some d ->
          Some
            (Printf.sprintf
               "group %d: core %d needs %d %s slots but a %s switch exposes \
                at most %d (degree %d x %d slots)"
               g.group d.core d.slots
               (if d.egress then "egress" else "ingress")
               label (maxdeg * t.slots) maxdeg t.slots)
        | None ->
          if g.aggregate > links * t.slots then
            Some
              (Printf.sprintf
                 "group %d: remote reservations need %d slots but a %s grid \
                  has %d (%d links x %d slots)"
                 g.group g.aggregate label (links * t.slots) links t.slots)
          else None
      in
      List.fold_left
        (fun acc g -> match acc with Some _ -> acc | None -> check_group g)
        None t.group_certs
    end

let violation t ~width ~height =
  let mesh = Mesh.create_kind ~kind:t.topology ~width ~height in
  let maxdeg, links = graph_metrics mesh in
  check_bounds t
    ~label:(Printf.sprintf "%dx%d" width height)
    ~switches:(width * height) ~maxdeg ~links

let admits t ~width ~height = violation t ~width ~height = None

let admits_mesh t mesh =
  (* Uses the actual switch graph, so express channels and other
     topology extensions are credited with their extra links. *)
  let maxdeg, links = graph_metrics mesh in
  check_bounds t
    ~label:(Format.asprintf "%a" Mesh.pp mesh)
    ~switches:(Mesh.switch_count mesh) ~maxdeg ~links
  = None

let explain t ~width ~height = violation t ~width ~height

let first_admitted t =
  List.find_opt
    (fun (w, h) -> admits t ~width:w ~height:h)
    (Mesh.growth_sequence ~max_dim:t.max_dim)

let pp ppf t =
  Format.fprintf ppf "@[<v>certificate: %d cores, %d NIs/switch, %d slots@ "
    t.cores t.cap t.slots;
  List.iter
    (fun i -> Format.fprintf ppf "impossible (group %d): %s@ " i.group i.reason)
    t.impossible;
  List.iter
    (fun (g : group_cert) ->
      Format.fprintf ppf "group %d: aggregate %d slots, %d core cut bounds@ " g.group
        g.aggregate (List.length g.cut))
    t.group_certs;
  (match first_admitted t with
  | Some (w, h) -> Format.fprintf ppf "first admitted size: %dx%d" w h
  | None -> Format.fprintf ppf "no admitted size up to %dx%d" t.max_dim t.max_dim);
  Format.fprintf ppf "@]"
