lib/traffic/use_case.ml: Array Float Flow Format Hashtbl List Noc_util Printf
