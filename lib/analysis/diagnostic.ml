type severity =
  | Info
  | Warning
  | Error

type t = {
  pass : string;
  severity : severity;
  line : int option;
  message : string;
}

let v ?line ~pass severity message = { pass; severity; line; message }

let vf ?line ~pass severity fmt =
  Printf.ksprintf (fun message -> v ?line ~pass severity message) fmt

let rank = function Info -> 0 | Warning -> 1 | Error -> 2

let severity_name = function Info -> "info" | Warning -> "warning" | Error -> "error"

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when rank s >= rank d.severity -> acc
      | _ -> Some d.severity)
    None diags

let exit_code diags =
  match max_severity diags with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Info | None -> 0

(* Source order first (unlocated diagnostics last), then most severe
   first, then stable by pass id and text. *)
let compare a b =
  let line = function None -> max_int | Some l -> l in
  match Stdlib.compare (line a.line) (line b.line) with
  | 0 -> (
    match Stdlib.compare (rank b.severity) (rank a.severity) with
    | 0 -> Stdlib.compare (a.pass, a.message) (b.pass, b.message)
    | c -> c)
  | c -> c

let pp ppf d =
  Format.fprintf ppf "%s[%s]%s: %s" (severity_name d.severity) d.pass
    (match d.line with Some l -> Printf.sprintf " line %d" l | None -> "")
    d.message

let to_json d =
  Noc_export.Json.Obj
    [
      ("severity", Noc_export.Json.String (severity_name d.severity));
      ("pass", Noc_export.Json.String d.pass);
      ("line", match d.line with Some l -> Noc_export.Json.Int l | None -> Noc_export.Json.Null);
      ("message", Noc_export.Json.String d.message);
    ]
