(** Minimal JSON emission helpers for the observability exporters.

    [Noc_obs] sits below every other library in the repo (so that
    [Noc_util.Domain_pool] and friends can be instrumented), which
    means it cannot use [Noc_export.Json]; this is the small
    escape-and-print subset the tracer and metrics exporters need. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars). *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes. *)

val float_repr : float -> string
(** Shortest round-trippable decimal form, never NaN/Infinity (those
    are clamped to 0 — JSON has no encoding for them). *)
