(* Serve-mode tests: the wire protocol's round-trips and handshake,
   the scheduler core's single-flight coalescing and explore-grid
   merging (pure, no sockets), and the live daemon end to end —
   byte-identical payloads under concurrency with exactly one
   underlying solve, admission control (queue and per-client caps),
   version-mismatch rejection, and graceful shutdown that drains
   in-flight work and flushes the persistent cache tier. *)

module P = Noc_serve.Protocol
module Service = Noc_serve.Service
module Server = Noc_serve.Server
module Client = Noc_serve.Client
module Payload = Noc_serve.Payload
module Metrics = Noc_obs.Metrics
module DF = Noc_core.Design_flow
module SD = Noc_benchkit.Soc_designs
module Spec_parser = Noc_core.Spec_parser
module Mapping_cache = Noc_core.Mapping_cache

let spec_text name ucs = Spec_parser.to_text (DF.spec_of_use_cases ~name ucs)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let d1_text = lazy (spec_text "d1" (SD.d1 ()))

let map_op ?(config = P.default_config) name text = P.Map { name; spec = text; config }

(* --- protocol ------------------------------------------------------------- *)

let sample_ops () =
  let text = Lazy.force d1_text in
  [
    P.Ping;
    P.Stats;
    P.Shutdown;
    map_op "d1" text;
    P.Explore
      {
        name = "d1";
        spec = text;
        config = P.default_config;
        frequencies = Some [ 250.0; 500.0 ];
        slot_counts = Some [ 16; 32 ];
        torus = true;
      };
    P.Explore
      {
        name = "d1";
        spec = text;
        config = { P.default_config with slots = 16 };
        frequencies = None;
        slot_counts = None;
        torus = false;
      };
    P.Lint { name = "d1"; spec = text; config = P.default_config; deep = true };
    P.Certify { name = "d1"; spec = text; config = P.default_config };
    P.Remap
      {
        from_name = "d1";
        from_spec = text;
        to_name = "d1b";
        to_spec = text;
        config = P.default_config;
      };
  ]

let test_request_roundtrip () =
  List.iteri
    (fun i op ->
      let line = P.encode_request { P.id = i; op } in
      match P.decode_request line with
      | Error msg -> Alcotest.failf "request %d did not decode: %s" i msg
      | Ok req ->
        Alcotest.(check int) "id survives" i req.P.id;
        Alcotest.(check string)
          (Printf.sprintf "op %d re-encodes identically" i)
          line
          (P.encode_request req))
    (sample_ops ())

let test_response_roundtrip () =
  let responses =
    [
      P.Result { id = 3; payload = "line one\nline two\n"; coalesced = true };
      P.Result { id = 0; payload = ""; coalesced = false };
      P.Failure { id = 9; code = P.Overloaded; message = "queue full"; retry_after_ms = Some 50 };
      P.Failure { id = -1; code = P.Bad_request; message = "no"; retry_after_ms = None };
    ]
  in
  List.iter
    (fun r ->
      let line = P.encode_response r in
      Alcotest.(check bool) "one line" true (String.index line '\n' = String.length line - 1);
      match P.decode_response line with
      | Error msg -> Alcotest.failf "response did not decode: %s" msg
      | Ok r' -> Alcotest.(check string) "re-encodes identically" line (P.encode_response r'))
    responses

let test_preescaped_encoding () =
  List.iter
    (fun (id, coalesced, payload) ->
      Alcotest.(check string) "preescaped == encode_response"
        (P.encode_response (P.Result { id; payload; coalesced }))
        (P.encode_result_preescaped ~id ~coalesced
           ~escaped_payload:(P.escape_payload payload)))
    [
      (0, false, "");
      (7, true, "line one\nline \"two\"\\\n");
      (42, true, Lazy.force d1_text);
      (3, false, "tab\thigh\x01low");
    ]

let test_error_codes () =
  List.iter
    (fun c ->
      match P.error_code_of_string (P.error_code_to_string c) with
      | Some c' -> Alcotest.(check bool) "code round-trips" true (c = c')
      | None -> Alcotest.fail "code did not round-trip")
    [
      P.Overloaded; P.Too_many_inflight; P.Shutting_down; P.Bad_request; P.Spec_error;
      P.Exec_error; P.Version_mismatch;
    ]

let test_handshake () =
  (match P.check_greeting (P.greeting ()) with
  | Ok build ->
    Alcotest.(check string) "greeting carries our build" (Noc_util.Build_info.fingerprint ()) build
  | Error msg -> Alcotest.failf "own greeting rejected: %s" msg);
  (match P.check_hello (P.hello ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "own hello rejected: %s" msg);
  (match P.check_hello (P.hello ~build:"deadbeef" ()) with
  | Ok () -> Alcotest.fail "foreign build accepted"
  | Error msg ->
    Alcotest.(check bool)
      "mismatch names both builds" true
      (contains_sub msg "does not match"));
  match P.hello_verdict (P.hello_ok ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "own hello_ok rejected: %s" msg

(* --- scheduler core (no sockets) ------------------------------------------ *)

let prepare_exn op =
  match Service.prepare op with
  | Ok job -> job
  | Error (_, msg) -> Alcotest.failf "prepare failed: %s" msg

let test_plan_coalesces () =
  let text = Lazy.force d1_text in
  let jobs = Array.init 8 (fun _ -> prepare_exn (map_op "d1" text)) in
  let plan = Service.plan jobs in
  Alcotest.(check int) "one unique job" 1 (Array.length plan.Service.unique);
  Alcotest.(check int) "seven coalesced" 7 plan.Service.coalesced;
  Array.iter (Alcotest.(check int) "all assigned to slot 0" 0) plan.Service.assign;
  (* A cosmetically different text posing the same named problem
     coalesces; a different config does not. *)
  let commented = text ^ "# a trailing comment\n" in
  let other_config = { P.default_config with slots = 16 } in
  let jobs' =
    [|
      prepare_exn (map_op "d1" text);
      prepare_exn (map_op "d1" commented);
      prepare_exn (map_op ~config:other_config "d1" text);
    |]
  in
  let plan' = Service.plan jobs' in
  Alcotest.(check int) "comment coalesces, config splits" 2 (Array.length plan'.Service.unique);
  Alcotest.(check int) "assign comment to first" plan'.Service.assign.(0)
    plan'.Service.assign.(1);
  (* Same problem under a different op never coalesces. *)
  let mixed =
    [|
      prepare_exn (map_op "d1" text);
      prepare_exn (P.Certify { name = "d1"; spec = text; config = P.default_config });
    |]
  in
  Alcotest.(check int) "map and certify stay distinct" 2
    (Array.length (Service.plan mixed).Service.unique)

let test_explore_merge () =
  let text = Lazy.force d1_text in
  let explore frequencies =
    prepare_exn
      (P.Explore
         {
           name = "d1";
           spec = text;
           config = P.default_config;
           frequencies = Some frequencies;
           slot_counts = Some [ 16; 32 ];
           torus = false;
         })
  in
  (* Grids [250;500] and [500;1000] overlap at 500 MHz only: 1 shared
     frequency x 2 slot counts x 1 topology = 2 shared points. *)
  let jobs = [| explore [ 250.0; 500.0 ]; explore [ 500.0; 1000.0 ] |] in
  Alcotest.(check int) "overlap of the two grids" 2 (Service.merge_explore_points jobs);
  Alcotest.(check int) "one grid shares nothing" 0
    (Service.merge_explore_points [| explore [ 250.0; 500.0 ] |]);
  (* Identical grids are fully shared - but identical jobs coalesce
     before merging, so this only matters for distinct keys. *)
  let torus_twin =
    prepare_exn
      (P.Explore
         {
           name = "d1";
           spec = text;
           config = P.default_config;
           frequencies = Some [ 250.0; 500.0 ];
           slot_counts = Some [ 16; 32 ];
           torus = true;
         })
  in
  Alcotest.(check int) "mesh half of a torus grid is shared" 4
    (Service.merge_explore_points [| explore [ 250.0; 500.0 ]; torus_twin |])

let test_prepare_rejects () =
  (match Service.prepare (map_op "bad" "cores nope\n") with
  | Error (P.Spec_error, _) -> ()
  | Error _ -> Alcotest.fail "wrong error code"
  | Ok _ -> Alcotest.fail "garbage spec accepted");
  match Service.prepare P.Ping with
  | Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "control op accepted as executable"

(* --- live daemon ----------------------------------------------------------- *)

let socket_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "nocmap-test-%d-%s.sock" (Unix.getpid ()) name)

let start_server cfg =
  let handle = Domain.spawn (fun () -> Server.run cfg) in
  (* Wait for the socket to accept connections. *)
  let rec wait tries =
    if tries = 0 then Alcotest.fail "server socket never came up"
    else
      match Client.connect ~socket:cfg.Server.socket_path () with
      | Ok c -> Client.close c
      | Error _ ->
        Unix.sleepf 0.05;
        wait (tries - 1)
  in
  wait 100;
  handle

let join_server handle =
  match Domain.join handle with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "server exited with: %s" msg

let request_exn conn op =
  match Client.request conn op with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request failed: %s" msg

let payload_exn = function
  | P.Result { payload; _ } -> payload
  | P.Failure { code; message; _ } ->
    Alcotest.failf "request failed: %s: %s" (P.error_code_to_string code) message

let test_single_flight () =
  let text = Lazy.force d1_text in
  let config = P.to_noc_config P.default_config in
  Mapping_cache.set_enabled true;
  Mapping_cache.clear ();
  Metrics.reset ();
  (* Baseline: the attempts one cold solve of this problem costs, and
     the exact payload it produces. *)
  let spec =
    match Spec_parser.parse ~name:"d1" text with
    | Ok s -> s
    | Error _ -> Alcotest.fail "baseline spec did not parse"
  in
  let expected =
    match DF.run ~config spec with
    | Ok d -> Payload.design d
    | Error msg -> Alcotest.failf "baseline run failed: %s" msg
  in
  let attempts = Metrics.counter "map.attempts" in
  let baseline_attempts = Metrics.counter_value attempts in
  Alcotest.(check bool) "cold solve attempts something" true (baseline_attempts > 0);
  (* Now serve the same problem to 6 concurrent clients from a cold
     cache: every payload must be byte-identical to the one-shot
     design, and the cost must be one solve - coalescing within a
     batch, the shared cache across batches. *)
  Mapping_cache.clear ();
  Metrics.reset ();
  let cfg =
    { (Server.default_config ~socket_path:(socket_path "flight")) with linger_ms = 150.0 }
  in
  let handle = start_server cfg in
  let clients =
    List.init 6 (fun _ ->
        Domain.spawn (fun () ->
            match Client.connect ~socket:cfg.Server.socket_path () with
            | Error msg -> Error msg
            | Ok conn ->
              let r = Client.request conn (map_op "d1" text) in
              Client.close conn;
              r))
  in
  let results = List.map Domain.join clients in
  List.iter
    (fun r ->
      match r with
      | Ok response ->
        Alcotest.(check string) "served payload == one-shot bytes" expected
          (payload_exn response)
      | Error msg -> Alcotest.failf "client failed: %s" msg)
    results;
  Alcotest.(check int) "exactly one underlying solve" baseline_attempts
    (Metrics.counter_value attempts);
  Alcotest.(check bool) "serve.requests counted" true
    (Metrics.counter_value (Metrics.counter "serve.requests") >= 6);
  Server.stop ();
  join_server handle

let test_backpressure_queue () =
  let text = Lazy.force d1_text in
  let cfg =
    {
      (Server.default_config ~socket_path:(socket_path "queue")) with
      max_queue = 1;
      linger_ms = 600.0;
      retry_after_ms = 75;
    }
  in
  let handle = start_server cfg in
  (* First request occupies the whole queue for the linger window;
     a second, from another client, must be shed - not stalled. *)
  let first =
    Domain.spawn (fun () ->
        match Client.connect ~socket:cfg.Server.socket_path () with
        | Error msg -> Error msg
        | Ok conn ->
          let r = Client.request conn (map_op "d1" text) in
          Client.close conn;
          r)
  in
  Unix.sleepf 0.2;
  (match Client.connect ~socket:cfg.Server.socket_path () with
  | Error msg -> Alcotest.failf "second client connect failed: %s" msg
  | Ok conn -> (
    match request_exn conn (map_op "d1" text) with
    | P.Failure { code = P.Overloaded; retry_after_ms; _ } ->
      Alcotest.(check (option int)) "retry-after hint" (Some 75) retry_after_ms;
      Client.close conn
    | P.Failure { code; _ } ->
      Alcotest.failf "expected overloaded, got %s" (P.error_code_to_string code)
    | P.Result _ -> Alcotest.fail "second request should have been shed"));
  (match Domain.join first with
  | Ok (P.Result _) -> ()
  | Ok (P.Failure { message; _ }) -> Alcotest.failf "first request failed: %s" message
  | Error msg -> Alcotest.failf "first client failed: %s" msg);
  Server.stop ();
  join_server handle

let test_backpressure_inflight () =
  let text = Lazy.force d1_text in
  let cfg =
    {
      (Server.default_config ~socket_path:(socket_path "inflight")) with
      max_inflight = 1;
      linger_ms = 600.0;
    }
  in
  let handle = start_server cfg in
  (match Client.connect ~socket:cfg.Server.socket_path () with
  | Error msg -> Alcotest.failf "connect failed: %s" msg
  | Ok conn ->
    (* Pipeline two requests without reading: the second exceeds the
       per-client cap and fails immediately; the first still completes. *)
    let id0 = Client.send conn (map_op "d1" text) in
    let id1 = Client.send conn (map_op "d1" text) in
    let r1 = Client.recv conn in
    let r0 = Client.recv conn in
    (match r1 with
    | Ok (P.Failure { id; code = P.Too_many_inflight; retry_after_ms; _ }) ->
      Alcotest.(check int) "shed response echoes the second id" id1 id;
      Alcotest.(check bool) "carries a retry hint" true (retry_after_ms <> None)
    | Ok _ -> Alcotest.fail "second pipelined request was not shed"
    | Error msg -> Alcotest.failf "recv failed: %s" msg);
    (match r0 with
    | Ok (P.Result { id; _ }) -> Alcotest.(check int) "first id completes" id0 id
    | Ok (P.Failure { message; _ }) -> Alcotest.failf "first request failed: %s" message
    | Error msg -> Alcotest.failf "recv failed: %s" msg);
    Client.close conn);
  Server.stop ();
  join_server handle

let test_version_mismatch () =
  let cfg = Server.default_config ~socket_path:(socket_path "vers") in
  let handle = start_server cfg in
  (match Client.connect ~build:"deadbeef" ~socket:cfg.Server.socket_path () with
  | Ok _ -> Alcotest.fail "mismatched build accepted"
  | Error msg ->
    Alcotest.(check bool) "rejection names the mismatch" true
      (contains_sub msg "does not match"));
  (* The server survives the rejection and still serves matched clients. *)
  (match Client.connect ~socket:cfg.Server.socket_path () with
  | Error msg -> Alcotest.failf "matched client rejected after mismatch: %s" msg
  | Ok conn ->
    (match request_exn conn P.Ping with
    | P.Result { payload; _ } -> Alcotest.(check string) "pong" "pong" payload
    | P.Failure _ -> Alcotest.fail "ping failed");
    Client.close conn);
  Server.stop ();
  join_server handle

let test_graceful_shutdown () =
  let text = Lazy.force d1_text in
  let dir = Filename.temp_file "nocmap-serve-cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Mapping_cache.set_enabled true;
  Mapping_cache.clear ();
  Mapping_cache.set_dir (Some dir);
  let cfg = Server.default_config ~socket_path:(socket_path "drain") in
  let handle = start_server cfg in
  (match Client.connect ~socket:cfg.Server.socket_path () with
  | Error msg -> Alcotest.failf "connect failed: %s" msg
  | Ok conn ->
    (* Admit work, then ask for shutdown on the same connection: the
       admitted request must still complete before the server exits. *)
    let id0 = Client.send conn (map_op "d1" text) in
    let id1 = Client.send conn P.Shutdown in
    let seen = ref [] in
    for _ = 1 to 2 do
      match Client.recv conn with
      | Ok r -> seen := r :: !seen
      | Error msg -> Alcotest.failf "recv failed: %s" msg
    done;
    let find id = List.find_opt (fun r -> P.response_id r = id) !seen in
    (match find id0 with
    | Some (P.Result { payload; _ }) ->
      Alcotest.(check bool) "drained payload is a design" true
        (contains_sub payload "\"design\"" || contains_sub payload "switches")
    | _ -> Alcotest.fail "admitted request was not drained");
    (match find id1 with
    | Some (P.Result { payload; _ }) -> Alcotest.(check string) "ack" "draining" payload
    | _ -> Alcotest.fail "shutdown not acknowledged");
    Client.close conn);
  join_server handle;
  (* The drain unlinked the socket and flushed the disk tier's STATS. *)
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists cfg.Server.socket_path);
  (match Client.connect ~socket:cfg.Server.socket_path () with
  | Ok _ -> Alcotest.fail "connected to a stopped server"
  | Error _ -> ());
  let version = Noc_util.Build_info.fingerprint () in
  (match Noc_util.Result_cache.read_persisted_stats ~dir ~version with
  | Some s -> Alcotest.(check bool) "flushed stats record stores" true (s.Noc_util.Result_cache.stores > 0)
  | None -> Alcotest.fail "no STATS flushed to the disk tier");
  Mapping_cache.set_dir None

let test_bad_requests () =
  let cfg = Server.default_config ~socket_path:(socket_path "bad") in
  let handle = start_server cfg in
  (match Client.connect ~socket:cfg.Server.socket_path () with
  | Error msg -> Alcotest.failf "connect failed: %s" msg
  | Ok conn ->
    (match request_exn conn (map_op "oops" "cores banana\n") with
    | P.Failure { code = P.Spec_error; _ } -> ()
    | P.Failure { code; _ } ->
      Alcotest.failf "expected spec-error, got %s" (P.error_code_to_string code)
    | P.Result _ -> Alcotest.fail "garbage spec mapped");
    (* An unmappable (but well-formed) problem is an exec error. *)
    (* A 16-core chain of link-saturating flows: the co-location
       closure exceeds one switch's NIs, so every mesh size is
       statically refuted and the map fails fast. *)
    let impossible =
      Buffer.create 256 |> fun b ->
      Buffer.add_string b "name impossible\ncores 16\nuse-case u\n";
      for i = 0 to 14 do
        Buffer.add_string b (Printf.sprintf "flow %d -> %d bw 1e9\n" i (i + 1))
      done;
      Buffer.contents b
    in
    (match request_exn conn (map_op "impossible" impossible) with
    | P.Failure { code = P.Exec_error; _ } -> ()
    | P.Failure { code; _ } ->
      Alcotest.failf "expected exec-error, got %s" (P.error_code_to_string code)
    | P.Result _ -> Alcotest.fail "impossible bandwidth mapped");
    Client.close conn);
  Server.stop ();
  join_server handle

let test_pool_gauges () =
  Metrics.reset ();
  let r = Noc_util.Domain_pool.map ~jobs:2 (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Alcotest.(check (list int)) "pool still maps" [ 1; 4; 9; 16; 25; 36; 49; 64 ] r;
  let gauge name = Metrics.gauge_value (Metrics.gauge name) in
  Alcotest.(check bool) "utilization recorded" true (gauge "pool.utilization" > 0.0);
  Alcotest.(check (float 0.0)) "no busy workers at rest" 0.0 (gauge "pool.busy_workers");
  Alcotest.(check (float 0.0)) "queue drained" 0.0 (gauge "pool.queue_depth");
  Alcotest.(check bool) "utilization <= 1" true (gauge "pool.utilization" <= 1.0)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "pre-escaped fan-out encoding" `Quick test_preescaped_encoding;
          Alcotest.test_case "error codes" `Quick test_error_codes;
          Alcotest.test_case "handshake" `Quick test_handshake;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "plan coalesces by canonical key" `Quick test_plan_coalesces;
          Alcotest.test_case "explore grids merge" `Quick test_explore_merge;
          Alcotest.test_case "prepare rejects garbage" `Quick test_prepare_rejects;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "single flight, byte-identical" `Quick test_single_flight;
          Alcotest.test_case "queue backpressure sheds" `Quick test_backpressure_queue;
          Alcotest.test_case "per-client inflight cap" `Quick test_backpressure_inflight;
          Alcotest.test_case "version mismatch rejected" `Quick test_version_mismatch;
          Alcotest.test_case "graceful shutdown drains and flushes" `Quick
            test_graceful_shutdown;
          Alcotest.test_case "bad requests fail structurally" `Quick test_bad_requests;
        ] );
      ( "pool",
        [ Alcotest.test_case "busy/utilization gauges" `Quick test_pool_gauges ] );
    ]
