lib/traffic/flow.mli: Format Noc_util
