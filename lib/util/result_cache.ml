module Metrics = Noc_obs.Metrics

(* Every instance also mirrors its counters into the process-wide
   metrics registry, so [nocmap obs stats], [--metrics] dumps and the
   bench snapshot see cache behaviour without holding the instance. *)
let m_memory_hits = Metrics.counter "cache.memory_hits"
let m_disk_hits = Metrics.counter "cache.disk_hits"
let m_misses = Metrics.counter "cache.misses"
let m_evictions = Metrics.counter "cache.evictions"
let m_stores = Metrics.counter "cache.stores"
let m_disk_errors = Metrics.counter "cache.disk_errors"

type stats = {
  memory_hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  stores : int;
  disk_errors : int;
}

let zero_stats =
  { memory_hits = 0; disk_hits = 0; misses = 0; evictions = 0; stores = 0; disk_errors = 0 }

let add_stats a b =
  {
    memory_hits = a.memory_hits + b.memory_hits;
    disk_hits = a.disk_hits + b.disk_hits;
    misses = a.misses + b.misses;
    evictions = a.evictions + b.evictions;
    stores = a.stores + b.stores;
    disk_errors = a.disk_errors + b.disk_errors;
  }

(* Memory tier: hash table plus an intrusive circular doubly-linked
   list through a sentinel; the node after the sentinel is the most
   recently used, the one before it the eviction victim. *)
type node = {
  key : string;
  value : string;
  mutable prev : node;
  mutable next : node;
}

type t = {
  version : string;
  cap : int;
  table : (string, node) Hashtbl.t;
  sentinel : node;
  mutable dir : string option;
  lock : Mutex.t;
  mutable memory_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stores : int;
  mutable disk_errors : int;
  (* Snapshot of the counters at the last [persist_stats], so repeated
     persists only add the delta. *)
  mutable persisted : stats;
}

let make_sentinel () =
  let rec s = { key = ""; value = ""; prev = s; next = s } in
  s

let create ?(capacity = 1024) ?dir ~version () =
  {
    version;
    cap = max 1 capacity;
    table = Hashtbl.create 64;
    sentinel = make_sentinel ();
    dir;
    lock = Mutex.create ();
    memory_hits = 0;
    disk_hits = 0;
    misses = 0;
    evictions = 0;
    stores = 0;
    disk_errors = 0;
    persisted = zero_stats;
  }

let version t = t.version
let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Hashtbl.length t.table)

let set_dir t d = locked t (fun () -> t.dir <- d)
let dir t = locked t (fun () -> t.dir)

let unlink_node n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front t n =
  n.next <- t.sentinel.next;
  n.prev <- t.sentinel;
  t.sentinel.next.prev <- n;
  t.sentinel.next <- n

(* Caller holds the lock. *)
let mem_insert t key value =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
    unlink_node old;
    Hashtbl.remove t.table key
  | None -> ());
  let n = { key; value; prev = t.sentinel; next = t.sentinel } in
  push_front t n;
  Hashtbl.replace t.table key n;
  if Hashtbl.length t.table > t.cap then begin
    let victim = t.sentinel.prev in
    unlink_node victim;
    Hashtbl.remove t.table victim.key;
    t.evictions <- t.evictions + 1;
    Metrics.incr m_evictions
  end

(* --- disk tier ---------------------------------------------------------- *)

let magic = "nocmap-cache 1"
let stats_file = "STATS"

let version_dir ~dir ~version = Filename.concat dir ("v-" ^ version)

(* Keys carry structure (digest plus a kind tag and mesh size); the
   file name is a fresh digest of the whole key, and the entry embeds
   the key itself so a (vanishingly unlikely) digest collision reads as
   corruption, not as a wrong answer. *)
let entry_file ~dir ~version key =
  Filename.concat (version_dir ~dir ~version) (Digest.to_hex (Digest.string key) ^ ".entry")

let mkdir_p path =
  let rec mk p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      mk (Filename.dirname p);
      try Sys.mkdir p 0o755 with Sys_error _ -> ()
    end
  in
  mk path

let render_entry ~version ~key payload =
  String.concat "\n"
    [ magic; version; key; Digest.to_hex (Digest.string payload); payload ]

(* [Some payload] only when every integrity check passes. *)
let parse_entry ~version ~key text =
  let split_line s =
    match String.index_opt s '\n' with
    | None -> None
    | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  let ( let* ) = Option.bind in
  let* l1, rest = split_line text in
  let* l2, rest = split_line rest in
  let* l3, rest = split_line rest in
  let* l4, payload = split_line rest in
  if
    String.equal l1 magic && String.equal l2 version && String.equal l3 key
    && String.equal l4 (Digest.to_hex (Digest.string payload))
  then Some payload
  else None

(* Atomic publish: write next to the destination, then rename.  A
   concurrent writer of the same key publishes a byte-identical entry,
   so whichever rename lands last is equally valid. *)
let atomic_write ~path text =
  mkdir_p (Filename.dirname path);
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:(Filename.dirname path) ~mode:[ Open_binary ]
      ".cache-write" ".tmp"
  in
  (try
     output_string oc text;
     close_out oc;
     Sys.rename tmp path
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

let disk_read t key =
  match t.dir with
  | None -> None
  | Some dir -> (
    let path = entry_file ~dir ~version:t.version key in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> None (* absent: a plain miss, not an error *)
    | text -> (
      match parse_entry ~version:t.version ~key text with
      | Some payload -> Some payload
      | None ->
        (* Corrupt or stale-format: drop it so it is rewritten. *)
        t.disk_errors <- t.disk_errors + 1;
        Metrics.incr m_disk_errors;
        (try Sys.remove path with Sys_error _ -> ());
        None))

let disk_write t key payload =
  match t.dir with
  | None -> ()
  | Some dir -> (
    try atomic_write ~path:(entry_file ~dir ~version:t.version key) (render_entry ~version:t.version ~key payload)
    with _ ->
      t.disk_errors <- t.disk_errors + 1;
      Metrics.incr m_disk_errors)

(* --- public operations -------------------------------------------------- *)

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
        unlink_node n;
        push_front t n;
        t.memory_hits <- t.memory_hits + 1;
        Metrics.incr m_memory_hits;
        Some n.value
      | None -> (
        match disk_read t key with
        | Some payload ->
          t.disk_hits <- t.disk_hits + 1;
          Metrics.incr m_disk_hits;
          mem_insert t key payload;
          Some payload
        | None ->
          t.misses <- t.misses + 1;
          Metrics.incr m_misses;
          None))

let add t key value =
  locked t (fun () ->
      mem_insert t key value;
      t.stores <- t.stores + 1;
      Metrics.incr m_stores;
      disk_write t key value)

let stats t =
  locked t (fun () ->
      {
        memory_hits = t.memory_hits;
        disk_hits = t.disk_hits;
        misses = t.misses;
        evictions = t.evictions;
        stores = t.stores;
        disk_errors = t.disk_errors;
      })

let is_entry name = Filename.check_suffix name ".entry"
let is_tmp name = String.length name >= 12 && String.sub name 0 12 = ".cache-write"

let remove_version_files vdir =
  let removed = ref 0 in
  (match Sys.readdir vdir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if is_entry name || is_tmp name || String.equal name stats_file then begin
          try
            Sys.remove (Filename.concat vdir name);
            incr removed
          with Sys_error _ -> ()
        end)
      names);
  !removed

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.sentinel.next <- t.sentinel;
      t.sentinel.prev <- t.sentinel;
      match t.dir with
      | None -> ()
      | Some dir -> ignore (remove_version_files (version_dir ~dir ~version:t.version)))

(* --- persisted statistics ---------------------------------------------- *)

let stats_to_text (s : stats) =
  Printf.sprintf "memory_hits %d\ndisk_hits %d\nmisses %d\nevictions %d\nstores %d\ndisk_errors %d\n"
    s.memory_hits s.disk_hits s.misses s.evictions s.stores s.disk_errors

let stats_of_text text =
  let get name =
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           match String.split_on_char ' ' line with
           | [ n; v ] when String.equal n name -> int_of_string_opt v
           | _ -> None)
  in
  match
    ( get "memory_hits", get "disk_hits", get "misses", get "evictions", get "stores",
      get "disk_errors" )
  with
  | Some memory_hits, Some disk_hits, Some misses, Some evictions, Some stores, Some disk_errors
    -> Some { memory_hits; disk_hits; misses; evictions; stores; disk_errors }
  | _ -> None

let read_persisted_stats ~dir ~version =
  let path = Filename.concat (version_dir ~dir ~version) stats_file in
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error _ -> None
  | text -> stats_of_text text

let persist_stats t =
  locked t (fun () ->
      match t.dir with
      | None -> ()
      | Some dir ->
        let now =
          {
            memory_hits = t.memory_hits;
            disk_hits = t.disk_hits;
            misses = t.misses;
            evictions = t.evictions;
            stores = t.stores;
            disk_errors = t.disk_errors;
          }
        in
        let delta =
          {
            memory_hits = now.memory_hits - t.persisted.memory_hits;
            disk_hits = now.disk_hits - t.persisted.disk_hits;
            misses = now.misses - t.persisted.misses;
            evictions = now.evictions - t.persisted.evictions;
            stores = now.stores - t.persisted.stores;
            disk_errors = now.disk_errors - t.persisted.disk_errors;
          }
        in
        let existing =
          Option.value (read_persisted_stats ~dir ~version:t.version) ~default:zero_stats
        in
        (try
           atomic_write
             ~path:(Filename.concat (version_dir ~dir ~version:t.version) stats_file)
             (stats_to_text (add_stats existing delta));
           t.persisted <- now
         with _ -> ()))

(* --- store-wide maintenance (CLI) --------------------------------------- *)

let versions_under dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           if
             String.length name > 2
             && String.sub name 0 2 = "v-"
             && Sys.is_directory (Filename.concat dir name)
           then Some (String.sub name 2 (String.length name - 2))
           else None)
    |> List.sort compare

let disk_summary ~dir =
  List.map
    (fun version ->
      let vdir = version_dir ~dir ~version in
      let entries = ref 0 and bytes = ref 0 in
      (match Sys.readdir vdir with
      | exception Sys_error _ -> ()
      | names ->
        Array.iter
          (fun name ->
            if is_entry name then begin
              incr entries;
              match In_channel.with_open_bin (Filename.concat vdir name) In_channel.length with
              | exception Sys_error _ -> ()
              | len -> bytes := !bytes + Int64.to_int len
            end)
          names);
      (version, !entries, !bytes))
    (versions_under dir)

let clear_disk ~dir =
  List.fold_left
    (fun removed version ->
      let vdir = version_dir ~dir ~version in
      let n = remove_version_files vdir in
      (try Sys.rmdir vdir with Sys_error _ -> ());
      removed + n)
    0 (versions_under dir)
