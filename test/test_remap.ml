(* The incremental remapper's correctness bar (PR 6): across random
   add/remove/modify churn sequences the Incremental engine and the
   naive Reference oracle produce byte-identical designs (via the
   canonical codec), with the cache on or off and with pruning on or
   off; clean groups survive a delta byte-for-byte; and the fallback
   chain (reused -> delta -> warm placement -> regrown) degrades
   deterministically. *)

module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module DF = Noc_core.Design_flow
module Remap = Noc_core.Remap
module Mapping = Noc_core.Mapping
module Codec = Noc_core.Mapping_codec
module MC = Noc_core.Mapping_cache
module Resources = Noc_core.Resources
module DS = Noc_power.Design_space
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs

let small_params = { Syn.spread_params with Syn.cores = 8; flows_lo = 3; flows_hi = 8 }

let encode_exn m =
  match Codec.encode m with Some b -> b | None -> failwith "mapping not encodable"

let with_cache enabled f =
  let prev = MC.enabled () in
  MC.set_enabled enabled;
  Fun.protect ~finally:(fun () -> MC.set_enabled prev) f

let must_run spec = match DF.run spec with Ok d -> d | Error e -> failwith e

(* --- spec churn operators ----------------------------------------------- *)

let renumber ucs = List.mapi (fun i u -> U.rename u ~id:i ~name:u.U.name) ucs

let scale_uc k factor (spec : DF.spec) =
  { spec with
    DF.use_cases =
      List.map
        (fun u ->
          if u.U.id <> k then u
          else
            U.create ~id:k ~name:u.U.name ~cores:u.U.cores
              (List.map
                 (fun fl ->
                   Flow.v
                     ?latency_ns:
                       (if fl.Flow.latency_ns = infinity then None else Some fl.Flow.latency_ns)
                     ~service:fl.Flow.service ~src:fl.Flow.src ~dst:fl.Flow.dst
                     (factor *. fl.Flow.bandwidth))
                 u.U.flows))
        spec.DF.use_cases }

let remove_uc k (spec : DF.spec) =
  let shift i = if i > k then i - 1 else i in
  { spec with
    DF.use_cases = renumber (List.filter (fun u -> u.U.id <> k) spec.DF.use_cases);
    parallel =
      List.filter_map
        (fun set ->
          let set = List.map shift (List.filter (fun i -> i <> k) set) in
          if List.length set >= 2 then Some set else None)
        spec.DF.parallel;
    smooth =
      List.filter_map
        (fun (a, b) -> if a = k || b = k then None else Some (shift a, shift b))
        spec.DF.smooth }

let add_uc ~seed (spec : DF.spec) =
  let fresh = List.hd (Syn.generate ~seed ~params:small_params ~use_cases:1) in
  let n = List.length spec.DF.use_cases in
  { spec with
    DF.use_cases = spec.DF.use_cases @ [ U.rename fresh ~id:n ~name:(Printf.sprintf "added-%d" seed) ] }

let add_smooth (a, b) (spec : DF.spec) =
  if a = b || List.mem (a, b) spec.DF.smooth || List.mem (b, a) spec.DF.smooth then spec
  else { spec with DF.smooth = spec.DF.smooth @ [ (a, b) ] }

let random_step rng spec =
  let n = List.length spec.DF.use_cases in
  match Random.State.int rng 5 with
  | 0 -> add_uc ~seed:(Random.State.int rng 1_000_000) spec
  | 1 when n > 1 -> remove_uc (Random.State.int rng n) spec
  | (2 | 3) when n > 0 ->
    scale_uc (Random.State.int rng n)
      [| 0.5; 0.8; 1.25 |].(Random.State.int rng 3)
      spec
  | _ when n >= 2 -> add_smooth (Random.State.int rng n, Random.State.int rng n) spec
  | _ -> spec

(* --- the 500-sequence byte-identity property ---------------------------- *)

let bytes_of = function
  | Ok (o : Remap.outcome) -> "ok:" ^ encode_exn o.Remap.design.DF.mapping
  | Error (_ : string) -> "error"

let path_tag (o : Remap.outcome) =
  match o.Remap.path with
  | Remap.Reused -> "reused"
  | Remap.Delta n -> Printf.sprintf "delta:%d" n
  | Remap.Warm_placement -> "warm"
  | Remap.Regrown -> "regrown"

(* Clean groups must survive the Reused/Delta paths byte-for-byte:
   identical reservation dumps and identical routes modulo the use-case
   renumbering. *)
let clean_retained ~(old : DF.t) (o : Remap.outcome) =
  match o.Remap.path with
  | Remap.Warm_placement | Remap.Regrown -> true
  | Remap.Reused | Remap.Delta _ ->
    let old_m = old.DF.mapping and new_m = o.Remap.design.DF.mapping in
    let anon routes = List.map (fun r -> { r with Route.use_case = -1 }) routes in
    List.for_all
      (fun (og, ng) ->
        List.for_all2
          (fun ouc nuc ->
            Resources.reservations old_m.Mapping.states.(ouc)
            = Resources.reservations new_m.Mapping.states.(nuc)
            && anon (Mapping.routes_of_use_case old_m ouc)
               = anon (Mapping.routes_of_use_case new_m nuc))
          og ng)
      o.Remap.delta.Remap.clean

let prop_churn_byte_identity =
  QCheck.Test.make
    ~name:"churn: incremental == reference bytes (cache on/off, prune on/off)" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n0 = 2 + Random.State.int rng 2 in
      let ucs =
        Syn.generate ~seed:(Random.State.int rng 1_000_000) ~params:small_params ~use_cases:n0
      in
      let spec0 = DF.spec_of_use_cases ~name:"churn" ucs in
      match DF.run spec0 with
      | Error _ -> QCheck.assume_fail ()
      | Ok d0 ->
        let steps = 1 + Random.State.int rng 2 in
        let rec go spec (inc, refd, nc, np) k =
          if k = 0 then true
          else begin
            let spec = random_step rng spec in
            let r_inc =
              with_cache true (fun () -> Remap.remap ~mode:Remap.Incremental ~old:inc spec)
            in
            let r_ref =
              with_cache false (fun () -> Remap.remap ~mode:Remap.Reference ~old:refd spec)
            in
            let r_nc =
              with_cache false (fun () -> Remap.remap ~mode:Remap.Incremental ~old:nc spec)
            in
            let r_np =
              with_cache false (fun () ->
                  Remap.remap ~mode:Remap.Incremental ~prune:false ~old:np spec)
            in
            let b = bytes_of r_inc in
            b = bytes_of r_ref && b = bytes_of r_nc && b = bytes_of r_np
            &&
            match (r_inc, r_ref, r_nc, r_np) with
            | Ok a, Ok b', Ok c, Ok d ->
              path_tag a = path_tag b'
              && path_tag a = path_tag c
              && path_tag a = path_tag d
              && clean_retained ~old:inc a
              && go spec (a.Remap.design, b'.Remap.design, c.Remap.design, d.Remap.design) (k - 1)
            | Error _, Error _, Error _, Error _ -> true
            | _ -> false
          end
        in
        go spec0 (d0, d0, d0, d0) steps)

(* --- unit coverage of the decision chain -------------------------------- *)

let spec3 ~seed = DF.spec_of_use_cases ~name:"unit" (Syn.generate ~seed ~params:small_params ~use_cases:3)

let remap_exn ?config ?mode ?prune ~old spec =
  match Remap.remap ?config ?mode ?prune ~old spec with
  | Ok o -> o
  | Error e -> Alcotest.failf "remap failed: %s" e

let test_modify_takes_delta_path () =
  let spec = spec3 ~seed:42 in
  let old = must_run spec in
  let churned = scale_uc 1 0.8 spec in
  let o = with_cache false (fun () -> remap_exn ~old churned) in
  Alcotest.(check string) "delta path" "delta:1" (path_tag o);
  Alcotest.(check bool) "verified" true (DF.verified o.Remap.design);
  Alcotest.(check int) "two clean groups" 2 (List.length o.Remap.delta.Remap.clean);
  Alcotest.(check int) "one removed group" 1 (List.length o.Remap.delta.Remap.removed);
  Alcotest.(check bool) "mesh retained" true
    (old.DF.mapping.Mapping.mesh = o.Remap.design.DF.mapping.Mapping.mesh);
  Alcotest.(check bool) "clean groups byte-retained" true (clean_retained ~old o)

let test_removal_takes_reused_path () =
  let spec = spec3 ~seed:42 in
  let old = must_run spec in
  let o = with_cache false (fun () -> remap_exn ~old (remove_uc 2 spec)) in
  Alcotest.(check string) "reused path" "reused" (path_tag o);
  Alcotest.(check bool) "verified" true (DF.verified o.Remap.design);
  Alcotest.(check int) "no dirty groups" 0 (List.length o.Remap.delta.Remap.dirty);
  Alcotest.(check bool) "mesh retained (never shrunk)" true
    (old.DF.mapping.Mapping.mesh = o.Remap.design.DF.mapping.Mapping.mesh)

let test_rename_only_is_clean () =
  let spec = spec3 ~seed:43 in
  let old = must_run spec in
  let renamed =
    { spec with
      DF.use_cases = List.map (fun u -> U.rename u ~id:u.U.id ~name:(u.U.name ^ "-v2")) spec.DF.use_cases }
  in
  let o = with_cache false (fun () -> remap_exn ~old renamed) in
  Alcotest.(check string) "names are not mapping inputs" "reused" (path_tag o);
  Alcotest.(check string) "same mapping bytes" (encode_exn old.DF.mapping)
    (encode_exn o.Remap.design.DF.mapping)

let test_config_change_falls_back () =
  let spec = spec3 ~seed:44 in
  let old = must_run spec in
  let config = { old.DF.mapping.Mapping.config with Config.freq_mhz = 400.0 } in
  let churned = scale_uc 0 1.25 spec in
  let inc = with_cache false (fun () -> Remap.remap ~config ~old churned) in
  let reference =
    with_cache false (fun () -> Remap.remap ~config ~mode:Remap.Reference ~old churned)
  in
  Alcotest.(check string) "modes agree under a config change" (bytes_of inc) (bytes_of reference);
  match inc with
  | Error e -> Alcotest.failf "remap failed: %s" e
  | Ok o ->
    Alcotest.(check bool) "retained tables are invalid under a new config" true
      (match o.Remap.path with Remap.Warm_placement | Remap.Regrown -> true | _ -> false)

let test_infeasible_delta_agrees () =
  (* With NI links constrained, a flow beyond the NI budget cannot be
     admitted anywhere — not even by co-locating its endpoints on one
     switch — so every fallback must reject it. *)
  let config = { Config.default with Config.constrain_ni_links = true } in
  let spec = spec3 ~seed:45 in
  let old = match DF.run ~config spec with Ok d -> d | Error e -> failwith e in
  let monster =
    { spec with
      DF.use_cases =
        spec.DF.use_cases
        @ [ U.create ~id:3 ~name:"monster" ~cores:8 [ Flow.v ~src:0 ~dst:1 1.0e9 ] ] }
  in
  let inc = with_cache false (fun () -> Remap.remap ~config ~old monster) in
  let reference =
    with_cache false (fun () -> Remap.remap ~config ~mode:Remap.Reference ~old monster)
  in
  Alcotest.(check bool) "incremental rejects" true (Result.is_error inc);
  Alcotest.(check bool) "reference rejects" true (Result.is_error reference)

let test_churn_driver () =
  let spec0 = spec3 ~seed:46 in
  let s1 = scale_uc 1 0.8 spec0 in
  let s2 = remove_uc 0 s1 in
  match with_cache false (fun () -> Remap.churn [ spec0; s1; s2 ]) with
  | Error e -> Alcotest.failf "churn failed: %s" e
  | Ok (d0, outcomes) ->
    Alcotest.(check int) "one outcome per later spec" 2 (List.length outcomes);
    Alcotest.(check string) "initial design matches a direct run"
      (encode_exn (must_run spec0).DF.mapping)
      (encode_exn d0.DF.mapping);
    (match outcomes with
    | [ o1; o2 ] ->
      Alcotest.(check string) "first step is a delta" "delta:1" (path_tag o1);
      Alcotest.(check string) "second step is a pure removal" "reused" (path_tag o2)
    | _ -> Alcotest.fail "unexpected outcome count")

let test_cache_memoizes_across_churn () =
  with_cache true (fun () ->
      MC.clear ();
      let spec = spec3 ~seed:47 in
      let old = must_run spec in
      let churned = scale_uc 2 0.5 spec in
      let first = remap_exn ~old churned in
      let before = (MC.stats ()).Noc_util.Result_cache.memory_hits in
      let second = remap_exn ~old churned in
      let after = (MC.stats ()).Noc_util.Result_cache.memory_hits in
      Alcotest.(check string) "replayed result is byte-identical"
        (encode_exn first.Remap.design.DF.mapping)
        (encode_exn second.Remap.design.DF.mapping);
      Alcotest.(check bool) "second churn step hits the sub-problem digest" true (after > before))

(* --- explore_seeded: sweeps over a spec family churn, not restart ------- *)

let test_explore_seeded_inherited () =
  let axes =
    { DS.frequencies = [ 500.0; 1000.0 ]; slot_counts = [ 32 ]; topologies = [ Noc_arch.Mesh.Mesh ] }
  in
  let ucs = Syn.generate ~seed:48 ~params:small_params ~use_cases:2 in
  let groups = List.mapi (fun i _ -> [ i ]) ucs in
  let config = Config.default in
  let _, seeds = DS.explore_seeded ~axes ~config ~groups ucs in
  let churned =
    List.map
      (fun u ->
        U.create ~id:u.U.id ~name:u.U.name ~cores:u.U.cores
          (List.map
             (fun fl ->
               Flow.v
                 ?latency_ns:(if fl.Flow.latency_ns = infinity then None else Some fl.Flow.latency_ns)
                 ~service:fl.Flow.service ~src:fl.Flow.src ~dst:fl.Flow.dst
                 (0.9 *. fl.Flow.bandwidth))
             u.U.flows))
      ucs
  in
  let inherited_points, _ =
    DS.explore_seeded ~axes ~inherited:seeds ~config ~groups churned
  in
  let cold_points = DS.explore ~axes ~config ~groups churned in
  let strip (p : DS.point) = { p with DS.start = DS.Cold } in
  Alcotest.(check bool) "inherited seeds never change the sweep's points" true
    (List.map strip inherited_points = List.map strip cold_points)

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  with_cache false (fun () ->
      Alcotest.run "remap"
        [
          ( "property",
            [ qcheck prop_churn_byte_identity ] );
          ( "paths",
            [
              Alcotest.test_case "modify -> delta" `Quick test_modify_takes_delta_path;
              Alcotest.test_case "remove -> reused" `Quick test_removal_takes_reused_path;
              Alcotest.test_case "rename -> reused" `Quick test_rename_only_is_clean;
              Alcotest.test_case "config change -> fallback" `Quick test_config_change_falls_back;
              Alcotest.test_case "infeasible delta agrees" `Quick test_infeasible_delta_agrees;
              Alcotest.test_case "churn driver" `Quick test_churn_driver;
              Alcotest.test_case "cache memoizes sub-problems" `Quick
                test_cache_memoizes_across_churn;
            ] );
          ( "design-space",
            [ Alcotest.test_case "inherited seeds" `Quick test_explore_seeded_inherited ] );
        ])
