lib/rtl/wellformed.mli:
