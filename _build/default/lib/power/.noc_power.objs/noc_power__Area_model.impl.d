lib/power/area_model.ml: Array Noc_arch Noc_core Noc_graph Printf
