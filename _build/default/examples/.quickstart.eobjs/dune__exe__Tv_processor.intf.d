examples/tv_processor.mli:
