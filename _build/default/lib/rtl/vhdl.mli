(** Minimal VHDL text construction.

    The backend emits structural VHDL-93; this module owns identifier
    hygiene and the boilerplate so that {!Netlist} reads like the
    design it describes. *)

val ident : string -> string
(** Sanitise into a legal VHDL basic identifier: alphanumerics and
    underscores, starting with a letter, no trailing/duplicate
    underscores. *)

val std_logic_vector : int -> string
(** e.g. [std_logic_vector(31 downto 0)]. *)

type port = {
  name : string;
  dir : [ `In | `Out ];
  ty : string;
}

val entity : name:string -> generics:(string * string * string) list -> ports:port list -> string
(** [entity ~name ~generics ~ports]: generics are (name, type,
    default). *)

val component_decl : name:string -> generics:(string * string * string) list -> ports:port list -> string

val instance :
  label:string ->
  component:string ->
  generic_map:(string * string) list ->
  port_map:(string * string) list ->
  string

val signal : name:string -> ty:string -> string

val comment : string -> string

val header : string -> string
(** Standard library/use clauses plus a banner comment. *)
