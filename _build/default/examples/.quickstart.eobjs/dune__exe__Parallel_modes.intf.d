examples/parallel_modes.mli:
