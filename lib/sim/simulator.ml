module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route
module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let m_runs = Metrics.counter "sim.runs"
let m_slots = Metrics.counter "sim.slots"
let m_collisions = Metrics.counter "sim.collisions"

type conn_stats = {
  flow_id : int;
  src_core : int;
  dst_core : int;
  service : Route.service;
  offered_mbps : float;
  delivered_mbps : float;
  mean_latency_ns : float;
  max_latency_ns : float;
  bound_ns : float;
  final_backlog_bytes : float;
  max_backlog_bytes : float;
}

type result = {
  duration_slots : int;
  slot_ns : float;
  collisions : int;
  conns : conn_stats list;
}

type source =
  | Fluid
  | On_off of {
      period_slots : int;
      duty : float;
    }
  | Replay of Trace.t

type chunk = {
  arrival_ns : float;
  mutable ready_ns : float;  (* earliest instant the next hop may move it *)
  mutable bytes : float;
}

type conn_state = {
  route : Route.t;
  starts : bool array;             (* GT: may we launch in this slot? *)
  hop_queues : chunk Queue.t array; (* queue i: waiting to traverse link i;
                                       a single queue for GT and same-switch *)
  mutable delivered_bytes : float;
  mutable backlog : float;
  mutable backlog_peak : float;
  mutable latency_sum : float;
  mutable latency_max : float;
  mutable latency_bytes : float;
}

(* Static collision check over guaranteed routes: rebuild (link, slot)
   ownership; the GT discipline must be contention-free. *)
let count_collisions ~slots routes =
  let owner = Hashtbl.create 256 in
  let collisions = ref 0 in
  List.iter
    (fun r ->
      if r.Route.service = Route.Gt then
        List.iter
          (fun start ->
            List.iteri
              (fun hop link ->
                let key = (link, (start + hop) mod slots) in
                match Hashtbl.find_opt owner key with
                | Some other when other <> r.Route.flow_id -> incr collisions
                | Some _ -> ()
                | None -> Hashtbl.add owner key r.Route.flow_id)
              r.Route.links)
          r.Route.slot_starts)
    routes;
  (!collisions, owner)

let take_from_queue ~budget ~now_ns ~transit_ns queue ~deliver st =
  (* Move up to [budget] ready bytes out of [queue]; [deliver] consumes
     them (recording latency), otherwise the caller re-enqueues them
     downstream, ready one slot later (a flit advances one hop per
     slot). *)
  let moved = ref [] in
  let budget = ref budget in
  let blocked = ref false in
  while (not !blocked) && !budget > 1e-12 && not (Queue.is_empty queue) do
    let chunk = Queue.peek queue in
    if chunk.ready_ns > now_ns +. 1e-9 then blocked := true
    else begin
      let take = Float.min chunk.bytes !budget in
      chunk.bytes <- chunk.bytes -. take;
      budget := !budget -. take;
      if deliver then begin
        st.delivered_bytes <- st.delivered_bytes +. take;
        st.backlog <- st.backlog -. take;
        let lat = now_ns +. transit_ns -. chunk.arrival_ns in
        st.latency_sum <- st.latency_sum +. (lat *. take);
        st.latency_bytes <- st.latency_bytes +. take;
        if lat > st.latency_max then st.latency_max <- lat
      end
      else
        moved :=
          { arrival_ns = chunk.arrival_ns; ready_ns = now_ns +. transit_ns; bytes = take }
          :: !moved;
      if chunk.bytes <= 1e-12 then ignore (Queue.pop queue)
    end
  done;
  List.rev !moved

let arrival_bytes ~source ~bw ~slot_ns ~t =
  match source with
  | Fluid -> bw /. 1000.0 *. slot_ns
  | Replay _ -> 0.0 (* replay arrivals are injected event by event *)
  | On_off { period_slots; duty } ->
    if period_slots <= 0 then invalid_arg "Simulator: non-positive burst period";
    if duty <= 0.0 || duty > 1.0 then invalid_arg "Simulator: duty must be in (0,1]";
    let on_slots = Float.max 1.0 (Float.round (duty *. float_of_int period_slots)) in
    let phase = t mod period_slots in
    if float_of_int phase < on_slots then
      (* the whole cycle's traffic arrives during the ON phase *)
      bw /. 1000.0 *. slot_ns *. (float_of_int period_slots /. on_slots)
    else 0.0

let simulate_sources ~sources ~config ~routes ~duration_slots =
  if duration_slots <= 0 then invalid_arg "Simulator.simulate: non-positive duration";
  let slots = config.Config.slots in
  let slot_ns = Config.slot_duration_ns config in
  let payload_bytes =
    float_of_int config.Config.slot_cycles *. float_of_int config.Config.link_width_bits /. 8.0
  in
  let collisions, gt_owner = count_collisions ~slots routes in
  let make_state r =
    let starts = Array.make slots false in
    if r.Route.service = Route.Gt then begin
      if r.Route.links = [] then Array.fill starts 0 slots true
      else List.iter (fun s -> starts.(s mod slots) <- true) r.Route.slot_starts
    end;
    let n_queues =
      match (r.Route.service, r.Route.links) with
      | Route.Gt, _ | _, [] -> 1
      | Route.Be, links -> List.length links
    in
    {
      route = r;
      starts;
      hop_queues = Array.init n_queues (fun _ -> Queue.create ());
      delivered_bytes = 0.0;
      backlog = 0.0;
      backlog_peak = 0.0;
      latency_sum = 0.0;
      latency_max = 0.0;
      latency_bytes = 0.0;
    }
  in
  let states = List.map make_state routes in
  (* Pending replay events per connection, consumed in time order. *)
  let replays =
    List.filter_map
      (fun st ->
        match List.assoc_opt st.route.Route.flow_id sources with
        | Some (Replay trace) ->
          (match Trace.validate trace with
          | Ok () -> Some (st, ref trace)
          | Error msg -> invalid_arg ("Simulator: bad trace: " ^ msg))
        | _ -> None)
      states
  in
  let gt_states = List.filter (fun st -> st.route.Route.service = Route.Gt) states in
  let be_states = List.filter (fun st -> st.route.Route.service = Route.Be) states in
  (* Per link: the BE connections that traverse it (with their hop
     index), and a round-robin arbitration pointer. *)
  let be_by_link : (int, (conn_state * int) list ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun st ->
      List.iteri
        (fun hop link ->
          let entry =
            match Hashtbl.find_opt be_by_link link with
            | Some e -> e
            | None ->
              let e = (ref [], ref 0) in
              Hashtbl.add be_by_link link e;
              e
          in
          fst entry := (st, hop) :: !(fst entry))
        st.route.Route.links)
    be_states;
  Hashtbl.iter (fun _ (lst, _) -> lst := List.rev !lst) be_by_link;
  Metrics.incr m_runs;
  Metrics.incr ~by:duration_slots m_slots;
  Metrics.incr ~by:collisions m_collisions;
  let step t =
    let now_ns = float_of_int t *. slot_ns in
    let slot = t mod slots in
    (* Arrival of each connection's offered load (fluid or bursty). *)
    List.iter
      (fun st ->
        let source =
          Option.value (List.assoc_opt st.route.Route.flow_id sources) ~default:Fluid
        in
        let arriving = arrival_bytes ~source ~bw:st.route.Route.bandwidth ~slot_ns ~t in
        if arriving > 0.0 then begin
          Queue.push { arrival_ns = now_ns; ready_ns = now_ns; bytes = arriving } st.hop_queues.(0);
          st.backlog <- st.backlog +. arriving;
          if st.backlog > st.backlog_peak then st.backlog_peak <- st.backlog
        end)
      states;
    (* Replay traces: inject every event falling inside this slot. *)
    List.iter
      (fun (st, pending) ->
        let horizon = now_ns +. slot_ns in
        let rec drain () =
          match !pending with
          | e :: rest when e.Trace.at_ns < horizon ->
            pending := rest;
            Queue.push
              { arrival_ns = Float.max e.Trace.at_ns now_ns; ready_ns = now_ns; bytes = e.Trace.bytes }
              st.hop_queues.(0);
            st.backlog <- st.backlog +. e.Trace.bytes;
            if st.backlog > st.backlog_peak then st.backlog_peak <- st.backlog;
            drain ()
          | _ -> ()
        in
        drain ())
      replays;
    (* Guaranteed connections: a payload departs on each reserved start. *)
    List.iter
      (fun st ->
        if st.starts.(slot) then begin
          let transit_ns = slot_ns +. (float_of_int (Route.hops st.route) *. slot_ns) in
          ignore
            (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns st.hop_queues.(0)
               ~deliver:true st)
        end)
      gt_states;
    (* Same-switch best-effort: the local port forwards every slot. *)
    List.iter
      (fun st ->
        if st.route.Route.links = [] then
          ignore
            (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:slot_ns
               st.hop_queues.(0) ~deliver:true st))
      be_states;
    (* Best-effort over links: each link whose current slot is not
       GT-owned serves one BE connection (round robin). *)
    Hashtbl.iter
      (fun link (conns, rr) ->
        if not (Hashtbl.mem gt_owner (link, slot)) then begin
          let arr = Array.of_list !conns in
          let n = Array.length arr in
          let chosen = ref None in
          let i = ref 0 in
          while !chosen = None && !i < n do
            let idx = (!rr + !i) mod n in
            let st, hop = arr.(idx) in
            if not (Queue.is_empty st.hop_queues.(hop)) then chosen := Some (idx, st, hop);
            incr i
          done;
          match !chosen with
          | None -> ()
          | Some (idx, st, hop) ->
            rr := (idx + 1) mod n;
            let last = hop = Array.length st.hop_queues - 1 in
            if last then
              ignore
                (take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:slot_ns
                   st.hop_queues.(hop) ~deliver:true st)
            else begin
              let moved =
                take_from_queue ~budget:payload_bytes ~now_ns ~transit_ns:slot_ns
                  st.hop_queues.(hop) ~deliver:false st
              in
              List.iter (fun c -> Queue.push c st.hop_queues.(hop + 1)) moved
            end
        end)
      be_by_link
  in
  (* Traced runs report slot progress in a handful of chunk spans (one
     box each in the timeline) instead of one span per slot, which
     would swamp the trace on long horizons; untraced runs keep the
     plain loop. *)
  if Tracer.enabled () then begin
    let chunk = max 1 ((duration_slots + 7) / 8) in
    let t = ref 0 in
    while !t < duration_slots do
      let stop = min duration_slots (!t + chunk) in
      Tracer.with_span ~cat:"sim"
        ~args:[ ("from_slot", Tracer.Int !t); ("to_slot", Tracer.Int stop) ]
        "sim:slots"
        (fun () ->
          for u = !t to stop - 1 do
            step u
          done);
      t := stop
    done
  end
  else
    for t = 0 to duration_slots - 1 do
      step t
    done;
  let horizon_ns = float_of_int duration_slots *. slot_ns in
  let finish st =
    {
      flow_id = st.route.Route.flow_id;
      src_core = st.route.Route.src_core;
      dst_core = st.route.Route.dst_core;
      service = st.route.Route.service;
      offered_mbps = st.route.Route.bandwidth;
      delivered_mbps = st.delivered_bytes /. horizon_ns *. 1000.0;
      mean_latency_ns =
        (if st.latency_bytes > 0.0 then st.latency_sum /. st.latency_bytes else 0.0);
      max_latency_ns = st.latency_max;
      bound_ns = Route.worst_case_latency_ns ~config st.route;
      final_backlog_bytes = st.backlog;
      max_backlog_bytes = st.backlog_peak;
    }
  in
  { duration_slots; slot_ns; collisions; conns = List.map finish states }

let within_contract ?(tolerance = 0.02) r =
  r.collisions = 0
  && List.for_all
       (fun c ->
         c.service = Route.Be
         || (c.delivered_mbps >= c.offered_mbps *. (1.0 -. tolerance)
            (* one slot of boundary slack on the analytic bound *)
            && c.max_latency_ns <= c.bound_ns +. r.slot_ns +. 1e-6))
       r.conns

let pp_result ppf r =
  Format.fprintf ppf "@[<v>simulated %d slots, %d collisions@ " r.duration_slots r.collisions;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "conn %d (%d->%d%s): offered %.1f delivered %.1f MB/s, lat mean %.1f max %.1f%s@."
        c.flow_id c.src_core c.dst_core
        (match c.service with Route.Gt -> "" | Route.Be -> ", BE")
        c.offered_mbps c.delivered_mbps c.mean_latency_ns c.max_latency_ns
        (match c.service with
        | Route.Gt -> Printf.sprintf " (bound %.1f) ns" c.bound_ns
        | Route.Be -> " ns (no bound)"))
    r.conns;
  Format.fprintf ppf "@]"

let simulate ~config ~routes ~duration_slots =
  simulate_sources ~sources:[] ~config ~routes ~duration_slots
