(* Integration tests: the complete pipeline — design flow, analytic
   verification, slot-accurate simulation, VHDL generation, power
   analysis — on the paper's worked examples and configuration
   variants (XY routing, constrained NI links). *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Turn = Noc_arch.Turn_model
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Verify = Noc_core.Verify
module DF = Noc_core.Design_flow
module Sim = Noc_sim.Simulator
module SD = Noc_benchkit.Soc_designs

let full_pipeline ~config spec =
  match DF.run ~config spec with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check bool) "verified" true (DF.verified d);
    let m = d.DF.mapping in
    (* every use-case configuration simulates within contract *)
    List.iter
      (fun u ->
        let routes = Mapping.routes_of_use_case m u.U.id in
        let res = Sim.simulate ~config:m.Mapping.config ~routes ~duration_slots:3200 in
        Alcotest.(check bool)
          (Printf.sprintf "uc %d simulates in contract" u.U.id)
          true (Sim.within_contract res))
      d.DF.all_use_cases;
    (* the RTL lints clean *)
    let vhdl = Noc_rtl.Netlist.generate ~design_name:spec.DF.name m in
    Alcotest.(check bool) "vhdl well-formed" true (Noc_rtl.Wellformed.check vhdl = Ok ());
    (* power/area sane *)
    Alcotest.(check bool) "area positive" true (Noc_power.Area_model.noc_area m > 0.0);
    Alcotest.(check bool) "power positive" true
      ((Noc_power.Power_model.noc_power m).Noc_power.Power_model.total_mw > 0.0);
    d

let test_viper_pipeline () =
  let spec =
    {
      DF.name = "viper-fragment";
      use_cases =
        [ SD.viper_fragment_1; U.rename SD.viper_fragment_2 ~id:1 ~name:"viper-uc2" ];
      parallel = [];
      smooth = [ (0, 1) ];
    }
  in
  let config = { Config.default with nis_per_switch = 2 } in
  let d = full_pipeline ~config spec in
  Alcotest.(check (list (list int))) "single shared configuration" [ [ 0; 1 ] ] d.DF.groups

let test_example1_with_parallel_mode () =
  let spec =
    { DF.name = "example1"; use_cases = SD.example1_use_cases; parallel = [ [ 0; 1 ] ]; smooth = [] }
  in
  let config = { Config.default with nis_per_switch = 1 } in
  let d = full_pipeline ~config spec in
  (* the compound mode exists and sums the shared pair *)
  match d.DF.compounds with
  | [ c ] -> (
    match U.find_flow c.Noc_core.Compound.use_case ~src:2 ~dst:3 with
    | Some f -> Alcotest.(check (float 1e-9)) "100+42" 142.0 f.Flow.bandwidth
    | None -> Alcotest.fail "compound pair missing")
  | _ -> Alcotest.fail "one compound expected"

let test_xy_routing_variant () =
  let config = { Config.default with routing = Config.Xy; nis_per_switch = 1 } in
  let spec = DF.spec_of_use_cases ~name:"xy" SD.example1_use_cases in
  let d = full_pipeline ~config spec in
  let m = d.DF.mapping in
  (* every route is XY-legal, hence deadlock-free by construction *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "xy legal" true (Turn.xy_legal m.Mapping.mesh r))
    m.Mapping.routes

let test_torus_variant () =
  (* Torus topology (paper Sec 5: the methodology applies to any
     topology).  Min-cost routing on a small design tends to an acyclic
     CDG, so the full pipeline still verifies. *)
  let config = { Config.default with topology = Noc_arch.Mesh.Torus; nis_per_switch = 1 } in
  let spec = DF.spec_of_use_cases ~name:"torus" SD.example1_use_cases in
  let d = full_pipeline ~config spec in
  Alcotest.(check bool) "designed on a torus" true
    (Mesh.kind d.DF.mapping.Mapping.mesh = Noc_arch.Mesh.Torus)

let test_constrained_ni_variant () =
  let config = { Config.default with constrain_ni_links = true; nis_per_switch = 2 } in
  let spec = DF.spec_of_use_cases ~name:"ni" SD.example1_use_cases in
  ignore (full_pipeline ~config spec)

let test_constrained_ni_rejects_hot_core () =
  (* three 900 MB/s flows into one core exceed a 2000 MB/s NI link *)
  let ucs =
    [
      U.create ~id:0 ~name:"hot" ~cores:4
        [ Flow.v ~src:1 ~dst:0 900.0; Flow.v ~src:2 ~dst:0 900.0; Flow.v ~src:3 ~dst:0 900.0 ];
    ]
  in
  let config = { Config.default with constrain_ni_links = true; max_mesh_dim = 4 } in
  match Mapping.map_design ~config ~groups:[ [ 0 ] ] ucs with
  | Ok _ -> Alcotest.fail "NI budget should be exceeded"
  | Error f -> Alcotest.(check bool) "attempts recorded" true (f.Mapping.attempts <> [])

let test_unconstrained_ni_accepts_hot_core () =
  let ucs =
    [
      U.create ~id:0 ~name:"hot" ~cores:4
        [ Flow.v ~src:1 ~dst:0 900.0; Flow.v ~src:2 ~dst:0 900.0; Flow.v ~src:3 ~dst:0 900.0 ];
    ]
  in
  match Mapping.map_design ~groups:[ [ 0 ] ] ucs with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Format.asprintf "%a" Mapping.pp_failure f)

let test_multi_group_reconfiguration_differs () =
  (* Two independent use-cases may take different paths for the same
     pair (dynamic re-configuration); same group members must not. *)
  let ucs =
    [
      U.create ~id:0 ~name:"a" ~cores:4 [ Flow.v ~src:0 ~dst:1 400.0; Flow.v ~src:2 ~dst:3 700.0 ];
      U.create ~id:1 ~name:"b" ~cores:4 [ Flow.v ~src:0 ~dst:1 300.0 ];
    ]
  in
  let config = { Config.default with nis_per_switch = 1 } in
  match Mapping.map_design ~config ~groups:[ [ 0 ]; [ 1 ] ] ucs with
  | Error f -> Alcotest.fail (Format.asprintf "%a" Mapping.pp_failure f)
  | Ok m ->
    let r0 =
      List.find (fun r -> r.Noc_arch.Route.use_case = 0 && r.Noc_arch.Route.src_core = 0) m.Mapping.routes
    in
    let r1 =
      List.find (fun r -> r.Noc_arch.Route.use_case = 1 && r.Noc_arch.Route.src_core = 0) m.Mapping.routes
    in
    (* the shared mapping forces the same endpoints... *)
    Alcotest.(check int) "same src switch" r0.Noc_arch.Route.src_switch r1.Noc_arch.Route.src_switch;
    Alcotest.(check int) "same dst switch" r0.Noc_arch.Route.dst_switch r1.Noc_arch.Route.dst_switch

let test_d1_designs_and_verifies () =
  let spec = DF.spec_of_use_cases ~name:"D1" (SD.d1 ()) in
  match DF.run spec with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check bool) "verified" true (DF.verified d);
    Alcotest.(check bool) "compact NoC" true (DF.switch_count d <= 9)

let test_ours_never_larger_than_wc () =
  (* On the paper's designs the multi-use-case method never needs more
     switches than the WC baseline. *)
  List.iter
    (fun (name, ucs) ->
      let ours =
        match DF.run (DF.spec_of_use_cases ~name ucs) with
        | Ok d -> DF.switch_count d
        | Error _ -> max_int
      in
      match Noc_core.Worst_case.map_design ucs with
      | Ok wc ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: ours (%d) <= wc (%d)" name ours (Mapping.switch_count wc))
          true
          (ours <= Mapping.switch_count wc)
      | Error _ -> ())
    [ ("D1", SD.d1 ()); ("D3", SD.d3 ()) ]

let test_best_effort_pipeline () =
  (* GT + BE mix: the file transfer is best-effort; the design flow
     routes it with no reservation and the simulator serves it from
     leftover slots while the GT contracts hold. *)
  let ucs =
    [
      U.create ~id:0 ~name:"mixed" ~cores:5
        [
          Flow.v ~src:0 ~dst:1 400.0;
          Flow.v ~src:2 ~dst:3 ~latency_ns:400.0 30.0;
          Flow.v ~src:4 ~dst:0 ~service:Noc_traffic.Flow.Best_effort 80.0;
        ];
    ]
  in
  let config = { Config.default with nis_per_switch = 1 } in
  let d = full_pipeline ~config (DF.spec_of_use_cases ~name:"gt-be" ucs) in
  let m = d.DF.mapping in
  let be_routes =
    List.filter (fun r -> r.Noc_arch.Route.service = Noc_arch.Route.Be) m.Mapping.routes
  in
  Alcotest.(check int) "one BE route" 1 (List.length be_routes);
  List.iter
    (fun r ->
      Alcotest.(check (list int)) "BE holds no slots" [] r.Noc_arch.Route.slot_starts)
    be_routes;
  (* the BE stream actually moves data in simulation *)
  let res =
    Sim.simulate ~config:m.Mapping.config ~routes:(Mapping.routes_of_use_case m 0)
      ~duration_slots:6400
  in
  match
    List.find_opt (fun c -> c.Sim.service = Noc_arch.Route.Be) res.Sim.conns
  with
  | Some c -> Alcotest.(check bool) "BE delivered > 0" true (c.Sim.delivered_mbps > 1.0)
  | None -> Alcotest.fail "BE connection missing in simulation"

let test_be_does_not_consume_gt_capacity () =
  (* A BE flow must not shrink the slots available to later GT flows:
     mapping the same design with and without the BE flow yields the
     same GT reservations. *)
  let gt_flows = [ Flow.v ~src:0 ~dst:1 800.0; Flow.v ~src:2 ~dst:3 400.0 ] in
  let with_be =
    [ U.create ~id:0 ~name:"w" ~cores:4
        (gt_flows @ [ Flow.v ~src:1 ~dst:2 ~service:Noc_traffic.Flow.Best_effort 500.0 ]) ]
  in
  let without_be = [ U.create ~id:0 ~name:"wo" ~cores:4 gt_flows ] in
  let config = { Config.default with nis_per_switch = 1 } in
  match
    ( Mapping.map_design ~config ~groups:[ [ 0 ] ] with_be,
      Mapping.map_design ~config ~groups:[ [ 0 ] ] without_be )
  with
  | Ok a, Ok b ->
    let gt_slots m =
      List.filter_map
        (fun r ->
          if r.Noc_arch.Route.service = Noc_arch.Route.Gt then
            Some (r.Noc_arch.Route.src_core, r.Noc_arch.Route.dst_core,
                  List.length r.Noc_arch.Route.slot_starts)
          else None)
        m.Mapping.routes
      |> List.sort compare
    in
    Alcotest.(check bool) "same GT reservations" true (gt_slots a = gt_slots b)
  | _ -> Alcotest.fail "both designs must map"

let test_express_mesh_design () =
  (* Custom topology: a 4x1 line with an express channel between the
     ends.  map_on_mesh accepts any Mesh.t, so the flow runs unchanged
     and the large end-to-end flow takes the express link. *)
  let mesh = Mesh.with_express (Mesh.create ~width:4 ~height:1) ~express:[ (0, 3) ] in
  let ucs =
    [ U.create ~id:0 ~name:"line" ~cores:4
        [ Flow.v ~src:0 ~dst:3 800.0; Flow.v ~src:1 ~dst:2 400.0 ] ]
  in
  let config = { Config.default with nis_per_switch = 1 } in
  match Mapping.map_on_mesh ~config ~mesh ~groups:[ [ 0 ] ] ucs with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let report = Verify.verify m ucs in
    Alcotest.(check bool) "verified on express mesh" true (Verify.ok report);
    let big =
      List.find (fun r -> r.Noc_arch.Route.bandwidth > 500.0) m.Mapping.routes
    in
    Alcotest.(check bool) "big flow uses a short path" true
      (List.length big.Noc_arch.Route.links <= 1)

let test_mobile_phone_pipeline () =
  let ucs = SD.mobile_phone () in
  let spec =
    {
      DF.name = "mobile";
      use_cases = ucs;
      parallel = [ [ 0; 3 ] ] (* call + music *);
      smooth = [ (4, 0) ] (* standby -> call must be instant *);
    }
  in
  let config = { Config.default with nis_per_switch = 3 } in
  let d = full_pipeline ~config spec in
  (* the switching analysis covers every pair and smooth pairs are free *)
  let costs = DF.reconfiguration d in
  let n = List.length d.DF.all_use_cases in
  Alcotest.(check int) "pair count" (n * (n - 1) / 2) (List.length costs);
  List.iter
    (fun c ->
      if c.Noc_core.Reconfig.smooth then
        Alcotest.(check int) "smooth is free" 0 c.Noc_core.Reconfig.slot_writes)
    costs

let test_refined_design_full_pipeline () =
  let spec = DF.spec_of_use_cases ~name:"refined" SD.example1_use_cases in
  let config = { Config.default with nis_per_switch = 1 } in
  match DF.run ~config ~refine:true spec with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check bool) "verified after refinement" true (DF.verified d);
    match d.DF.refinement with
    | Some o ->
      Alcotest.(check bool) "refinement did not regress" true
        (o.Noc_core.Refine.final_cost <= o.Noc_core.Refine.initial_cost +. 1e-9)
    | None -> Alcotest.fail "refinement outcome missing"

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "viper fragment" `Quick test_viper_pipeline;
          Alcotest.test_case "example1 + parallel mode" `Quick test_example1_with_parallel_mode;
          Alcotest.test_case "XY routing" `Quick test_xy_routing_variant;
          Alcotest.test_case "torus topology" `Quick test_torus_variant;
          Alcotest.test_case "constrained NI links" `Quick test_constrained_ni_variant;
          Alcotest.test_case "NI budget rejects hot core" `Quick test_constrained_ni_rejects_hot_core;
          Alcotest.test_case "unconstrained accepts hot core" `Quick test_unconstrained_ni_accepts_hot_core;
          Alcotest.test_case "re-configuration across groups" `Quick test_multi_group_reconfiguration_differs;
          Alcotest.test_case "D1 designs and verifies" `Slow test_d1_designs_and_verifies;
          Alcotest.test_case "ours <= WC" `Slow test_ours_never_larger_than_wc;
          Alcotest.test_case "refined pipeline" `Quick test_refined_design_full_pipeline;
          Alcotest.test_case "GT+BE pipeline" `Quick test_best_effort_pipeline;
          Alcotest.test_case "BE leaves GT capacity" `Quick test_be_does_not_consume_gt_capacity;
          Alcotest.test_case "mobile phone SoC" `Quick test_mobile_phone_pipeline;
          Alcotest.test_case "express-channel mesh" `Quick test_express_mesh_design;
        ] );
    ]
