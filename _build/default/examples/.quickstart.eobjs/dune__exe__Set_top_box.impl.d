examples/set_top_box.ml: Float Format List Noc_arch Noc_core Noc_power Noc_rtl Noc_traffic Option String
