lib/benchkit/soc_designs.ml: Noc_core Noc_traffic Synthetic
