(** 2D grid switch topologies: mesh and torus.

    Switches sit on a [width] x [height] grid; every neighbouring pair
    is joined by two directed links (one per direction), because TDMA
    slot tables and residual bandwidth are per-direction resources.  A
    torus additionally wraps each row and column (when the dimension
    exceeds 2, so no parallel links arise).  Link ids are dense in
    [0 .. link_count-1] so per-use-case resource state can live in flat
    arrays indexed by link id.

    The paper evaluates on meshes; §5 notes the methodology "is
    applicable to any NoC topology", which the torus variant exercises.
    Caveat: XY routing on a torus is not deadlock-free without virtual
    channels (not modelled); the verification phase's channel-dependency
    check stays honest about that. *)

type kind =
  | Mesh
  | Torus

type t

val create : width:int -> height:int -> t
(** A mesh.  @raise Invalid_argument unless both dimensions are
    positive. *)

val create_kind : kind:kind -> width:int -> height:int -> t
(** A mesh or torus. *)

val with_express : t -> express:(int * int) list -> t
(** Add bidirectional express channels (long-range link pairs) between
    arbitrary switch pairs — a lightweight form of custom topology on
    top of the grid.  Min-cost routing exploits them; XY routing
    ignores them (they carry no compass direction); the RTL backend
    leaves them unconnected (documented limitation).
    @raise Invalid_argument on out-of-range, self-loop or already
    adjacent pairs. *)

val kind : t -> kind

val width : t -> int
val height : t -> int

val switch_count : t -> int

val link_count : t -> int
(** Number of directed switch-to-switch links. *)

val graph : t -> Noc_graph.Intgraph.t
(** The directed switch graph; edge ids are link ids. *)

val coord : t -> int -> int * int
(** [(x, y)] of a switch id. *)

val switch_at : t -> x:int -> y:int -> int
(** Switch id at a coordinate. *)

val link_endpoints : t -> int -> int * int
(** [(src_switch, dst_switch)] of a link id. *)

val link_between : t -> src:int -> dst:int -> int option
(** Directed link id between two adjacent switches, if any. *)

type direction =
  | East
  | West
  | North
  | South

val neighbor_toward : t -> int -> direction -> int option
(** The adjacent switch in a compass direction, honouring wraparound on
    a torus; [None] at a mesh boundary. *)

val manhattan : t -> int -> int -> int
(** Hop distance between two switches under minimal routing (wrap-aware
    on a torus). *)

val xy_route : t -> src:int -> dst:int -> int list
(** Dimension-ordered (X then Y) route as a list of link ids, taking
    the shorter way around on a torus; empty when [src = dst]. *)

val center : t -> int
(** A switch nearest the geometric centre (used to seed placement). *)

val growth_sequence : max_dim:int -> (int * int) list
(** Topology sizes tried by Algorithm 2's outer loop, from a single
    switch upward, alternating width/height growth:
    (1,1); (2,1); (2,2); (3,2); (3,3); ... up to (max_dim, max_dim). *)

val pp : Format.formatter -> t -> unit
