lib/core/refine.ml: Array Float Hashtbl List Mapping Noc_arch Noc_util
