(** Disjoint-set forest with path compression and union by rank.

    An alternative substrate for use-case grouping and a handy checker
    in property tests (component structure computed two independent
    ways must agree). *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
(** Merge the two sets. *)

val same : t -> int -> int -> bool
(** Do the two elements share a set? *)

val count : t -> int
(** Number of disjoint sets. *)

val groups : t -> int list list
(** The sets, each sorted, ordered by smallest member. *)
