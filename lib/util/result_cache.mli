(** Content-addressed result store: a bounded in-process LRU over an
    optional persistent on-disk tier.

    Keys are canonical digests of a problem instance; values are the
    serialised solution.  The memory tier memoizes within a process
    (sweeps and searches re-solving identical sub-problems); the disk
    tier, when a directory is attached, persists results across
    processes and CLI runs.

    Correctness contract:
    - the store never invents data: [find] only returns bytes a prior
      [add] stored under the same key, in a store created with the same
      [version];
    - disk entries carry the store version, the full key and a payload
      digest; a corrupted, truncated or version-mismatched file
      degrades to a miss (and is dropped), never an error;
    - disk writes go through a temp file and an atomic rename, so a
      crashed or concurrent writer can never leave a torn entry behind;
    - every operation is safe to call concurrently from
      {!Domain_pool} workers. *)

type stats = {
  memory_hits : int;
  disk_hits : int;   (** misses in memory served by the disk tier *)
  misses : int;      (** not found in either tier *)
  evictions : int;   (** LRU drops from the memory tier *)
  stores : int;      (** successful [add]s *)
  disk_errors : int; (** unreadable/corrupt/mismatched disk entries seen *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

type t

val create : ?capacity:int -> ?dir:string -> version:string -> unit -> t
(** A fresh store.  [capacity] bounds the memory tier (entry count,
    default 1024, clamped to at least 1).  [dir] attaches the disk
    tier; entries live under [dir/v-<version>/]. *)

val version : t -> string
val capacity : t -> int
val length : t -> int
(** Entries currently held by the memory tier. *)

val set_dir : t -> string option -> unit
(** Attach or detach the disk tier (the [--cache-dir] knob). *)

val dir : t -> string option

val find : t -> string -> string option
(** Memory first, then disk.  A disk hit is promoted into the memory
    tier. *)

val add : t -> string -> string -> unit
(** Store under [key] in both tiers (disk only when attached).  An
    existing entry is replaced.  Disk failures are swallowed: the
    memory tier always succeeds. *)

val stats : t -> stats
(** Counters since creation (this process only; see
    {!persist_stats}). *)

val clear : t -> unit
(** Empty the memory tier and delete this version's disk entries.
    Counters are kept. *)

val persist_stats : t -> unit
(** Fold the counters accumulated since the last persist into the
    version directory's [STATS] file (read-merge-rename; no-op without
    a disk tier).  Registered [at_exit] by callers that attach a
    directory, so [nocmap cache stats] can report cumulative traffic. *)

val read_persisted_stats : dir:string -> version:string -> stats option
(** The cumulative persisted counters of one version directory. *)

val disk_summary : dir:string -> (string * int * int) list
(** Per version under [dir]: (version, entry count, payload bytes),
    sorted by version.  Unreadable directories count as empty. *)

val clear_disk : dir:string -> int
(** Delete every version's entries and stats under [dir]; returns how
    many files were removed.  Only files matching the store layout are
    touched. *)
