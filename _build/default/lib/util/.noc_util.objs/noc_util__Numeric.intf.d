lib/util/numeric.mli:
