module Rng = Noc_util.Rng
module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh

type options = {
  iterations : int;
  initial_temp : float;
  cooling : float;
  seed : int;
}

let default_options = { iterations = 120; initial_temp = 0.1; cooling = 0.97; seed = 42 }

type outcome = {
  result : Mapping.t;
  initial_cost : float;
  final_cost : float;
  accepted : int;
  evaluated : int;
}

(* Propose a neighbouring placement: swap two cores, or move one core
   to a switch that still has a free NI. *)
let propose rng ~cap ~switches placement =
  let cores = Array.length placement in
  let next = Array.copy placement in
  let ni_used = Array.make switches 0 in
  Array.iter (fun s -> ni_used.(s) <- ni_used.(s) + 1) placement;
  let free = ref [] in
  for s = switches - 1 downto 0 do
    if ni_used.(s) < cap then free := s :: !free
  done;
  let do_move = !free <> [] && Rng.bool rng in
  if do_move then begin
    let core = Rng.int rng cores in
    next.(core) <- Rng.pick_list rng !free
  end
  else if cores >= 2 then begin
    let a = Rng.int rng cores in
    let b = (a + 1 + Rng.int rng (cores - 1)) mod cores in
    let tmp = next.(a) in
    next.(a) <- next.(b);
    next.(b) <- tmp
  end;
  next

type tabu_options = {
  tabu_iterations : int;
  tenure : int;
  candidates : int;
  tabu_seed : int;
}

let default_tabu_options = { tabu_iterations = 60; tenure = 8; candidates = 6; tabu_seed = 42 }

(* A move is identified by the cores it touched; the reverse move is
   tabu for [tenure] steps after it is taken. *)
let tabu ?(options = default_tabu_options) (initial : Mapping.t) use_cases =
  let rng = Rng.create ~seed:options.tabu_seed in
  let config = initial.Mapping.config in
  let mesh = initial.Mapping.mesh in
  let groups = initial.Mapping.groups in
  let cap = config.Config.nis_per_switch in
  let switches = Mesh.switch_count mesh in
  let evaluate placement =
    match Mapping.map_with_placement ~config ~mesh ~groups ~placement use_cases with
    | Ok t -> Some (t, Mapping.total_weighted_hops t)
    | Error _ -> None
  in
  let initial_cost = Mapping.total_weighted_hops initial in
  let current = ref (initial, initial_cost) in
  let best = ref (initial, initial_cost) in
  let tabu_until : (int, int) Hashtbl.t = Hashtbl.create 32 in
  (* key: core that moved; value: step until which moving it again is tabu *)
  let accepted = ref 0 in
  let evaluated = ref 0 in
  for step = 1 to options.tabu_iterations do
    let cur_t, _ = !current in
    (* Evaluate a small candidate neighbourhood; keep the best
       non-tabu feasible move (or a tabu one that beats the best). *)
    let best_move = ref None in
    for _ = 1 to options.candidates do
      let candidate = propose rng ~cap ~switches cur_t.Mapping.placement in
      (* cores whose switch changed *)
      let moved =
        let acc = ref [] in
        Array.iteri
          (fun core s -> if s <> cur_t.Mapping.placement.(core) then acc := core :: !acc)
          candidate;
        !acc
      in
      let is_tabu =
        List.exists
          (fun core ->
            match Hashtbl.find_opt tabu_until core with
            | Some until -> step <= until
            | None -> false)
          moved
      in
      match evaluate candidate with
      | None -> ()
      | Some (t, cost) ->
        incr evaluated;
        let aspirated = cost < snd !best in
        if (not is_tabu) || aspirated then begin
          match !best_move with
          | Some (_, _, c) when c <= cost -> ()
          | _ -> best_move := Some (t, moved, cost)
        end
    done;
    match !best_move with
    | None -> ()
    | Some (t, moved, cost) ->
      incr accepted;
      current := (t, cost);
      List.iter (fun core -> Hashtbl.replace tabu_until core (step + options.tenure)) moved;
      if cost < snd !best then best := (t, cost)
  done;
  let best_t, best_cost = !best in
  {
    result = best_t;
    initial_cost;
    final_cost = best_cost;
    accepted = !accepted;
    evaluated = !evaluated;
  }

let anneal ?(options = default_options) (initial : Mapping.t) use_cases =
  let rng = Rng.create ~seed:options.seed in
  let config = initial.Mapping.config in
  let mesh = initial.Mapping.mesh in
  let groups = initial.Mapping.groups in
  let cap = config.Config.nis_per_switch in
  let switches = Mesh.switch_count mesh in
  let evaluate placement =
    match Mapping.map_with_placement ~config ~mesh ~groups ~placement use_cases with
    | Ok t -> Some (t, Mapping.total_weighted_hops t)
    | Error _ -> None
  in
  let initial_cost = Mapping.total_weighted_hops initial in
  let current = ref (initial, initial_cost) in
  let best = ref (initial, initial_cost) in
  let temp = ref (options.initial_temp *. Float.max initial_cost 1.0) in
  let accepted = ref 0 in
  let evaluated = ref 0 in
  for _ = 1 to options.iterations do
    let cur_t, cur_cost = !current in
    let candidate = propose rng ~cap ~switches cur_t.Mapping.placement in
    (match evaluate candidate with
    | None -> ()
    | Some (t, cost) ->
      incr evaluated;
      let accept =
        cost <= cur_cost
        || Rng.chance rng (exp ((cur_cost -. cost) /. Float.max !temp 1e-9))
      in
      if accept then begin
        incr accepted;
        current := (t, cost);
        if cost < snd !best then best := (t, cost)
      end);
    temp := !temp *. options.cooling
  done;
  let best_t, best_cost = !best in
  {
    result = best_t;
    initial_cost;
    final_cost = best_cost;
    accepted = !accepted;
    evaluated = !evaluated;
  }
