(** Explicit packet traces for trace-driven simulation.

    Where the fluid and on/off sources model a rate, a trace pins down
    individual packet arrivals — either replayed from a file of a real
    workload or generated here with the shapes the paper's benchmarks
    describe (constant-bit-rate streams and MPEG-style video with
    large I frames and small P frames). *)

type event = {
  at_ns : float;   (** arrival instant *)
  bytes : float;   (** packet size *)
}

type t = event list
(** Events in non-decreasing time order. *)

val validate : t -> (unit, string) result
(** Sorted, non-negative times, positive sizes. *)

val total_bytes : t -> float

val mean_rate_mbps : t -> duration_ns:float -> float
(** Average rate over a window. *)

val cbr :
  rate_mbps:float -> packet_bytes:float -> duration_ns:float -> t
(** Constant bit rate: equal packets at a fixed period chosen so the
    rate matches.  @raise Invalid_argument on non-positive inputs. *)

val video_gop :
  rng:Noc_util.Rng.t ->
  mean_mbps:float ->
  frame_period_ns:float ->
  gop_length:int ->
  i_frame_ratio:float ->
  duration_ns:float ->
  t
(** MPEG-style group-of-pictures traffic: every [gop_length]-th frame
    is an I frame [i_frame_ratio] times larger than the P frames, sizes
    jittered +-10 %, and the long-run mean matches [mean_mbps].
    @raise Invalid_argument on non-positive parameters or
    [i_frame_ratio < 1]. *)
