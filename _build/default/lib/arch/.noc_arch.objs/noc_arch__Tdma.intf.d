lib/arch/tdma.mli: Noc_config Noc_util Slot_table
