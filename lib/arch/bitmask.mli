(** Fixed-size cyclic bitset over slot indices [0, slots).

    Backs the free-slot masks of {!Slot_table}: testing whether a
    connection can claim a starting slot on every hop of a path
    reduces to intersecting each hop's mask rotated by its hop number
    ({!inter_rotated}), which is O(1) per hop for slot-table sizes up
    to 62 (one native word) and O(slots) beyond. *)

type t

val create : slots:int -> full:bool -> t
(** All bits clear ([full:false]) or all set ([full:true]).
    @raise Invalid_argument unless [slots > 0]. *)

val slots : t -> int

val copy : t -> t

val mem : t -> int -> bool
(** @raise Invalid_argument when the index is outside [0, slots). *)

val set : t -> int -> unit

val clear : t -> int -> unit

val count : t -> int
(** Number of set bits. *)

val is_empty : t -> bool

val inter_rotated : into:t -> t -> shift:int -> unit
(** [inter_rotated ~into m ~shift] keeps in [into] only the bits [i]
    for which bit [(i + shift) mod slots] of [m] is set — the cyclic
    rotation matching a TDMA table seen [shift] hops downstream.
    [shift] may be any integer; it is taken modulo the size.
    @raise Invalid_argument when the two sizes differ. *)

val next_set_from : t -> int -> int option
(** Smallest set bit index [>= i], within [0, slots) — no cyclic wrap;
    callers wanting the wheel semantics probe again from 0.
    @raise Invalid_argument when [i] is negative. *)

val to_list : t -> int list
(** Set bit indices, increasing. *)

val pp : Format.formatter -> t -> unit
(** E.g. [1..11.] (set = [1], clear = [.]). *)
