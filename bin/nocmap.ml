(* nocmap: command-line driver for the multi-use-case NoC design flow.

   Subcommands:
     map          design a NoC for a benchmark and print the result
     experiments  regenerate the paper's figures
     generate     print a synthetic benchmark's traffic
     simulate     design, then simulate every use-case configuration *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Use_case = Noc_traffic.Use_case
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs
module Sim = Noc_sim.Simulator

open Cmdliner

(* --- benchmark selection ------------------------------------------------- *)

let load_benchmark ~name ~use_cases ~seed =
  match String.lowercase_ascii name with
  | "d1" -> Ok (SD.d1 ())
  | "d2" -> Ok (SD.d2 ())
  | "d3" -> Ok (SD.d3 ())
  | "d4" -> Ok (SD.d4 ())
  | "example1" -> Ok SD.example1_use_cases
  | "viper" ->
    Ok [ SD.viper_fragment_1; Use_case.rename SD.viper_fragment_2 ~id:1 ~name:"viper-uc2" ]
  | "mobile" -> Ok (SD.mobile_phone ())
  | "sp" -> Ok (Syn.generate ~seed ~params:Syn.spread_params ~use_cases)
  | "bot" -> Ok (Syn.generate ~seed ~params:Syn.bottleneck_params ~use_cases)
  | other ->
    Error
      (Printf.sprintf
         "unknown benchmark '%s' (expected d1|d2|d3|d4|example1|viper|mobile|sp|bot)" other)

(* --- common options -------------------------------------------------------- *)

let bench_arg =
  let doc = "Benchmark: d1, d2, d3, d4, example1, viper, mobile, sp (spread), bot (bottleneck)." in
  Arg.(value & pos 0 string "example1" & info [] ~docv:"BENCHMARK" ~doc)

let use_cases_arg =
  let doc = "Number of use-cases for synthetic benchmarks (sp/bot)." in
  Arg.(value & opt int 5 & info [ "use-cases"; "u" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed for synthetic benchmarks." in
  Arg.(value & opt int 200 & info [ "seed" ] ~docv:"SEED" ~doc)

let freq_arg =
  let doc = "NoC operating frequency, MHz." in
  Arg.(value & opt float 500.0 & info [ "freq"; "f" ] ~docv:"MHZ" ~doc)

let slots_arg =
  let doc = "TDMA slot-table size." in
  Arg.(value & opt int 32 & info [ "slots" ] ~docv:"SLOTS" ~doc)

let nis_arg =
  let doc = "Maximum NIs (cores) per switch." in
  Arg.(value & opt int 8 & info [ "nis-per-switch" ] ~docv:"N" ~doc)

let xy_arg =
  let doc = "Use dimension-ordered (XY) routing instead of min-cost path search." in
  Arg.(value & flag & info [ "xy" ] ~doc)

let refine_arg =
  let doc = "Run the simulated-annealing placement refinement after mapping." in
  Arg.(value & flag & info [ "refine" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the shared pool (mesh-size speculation, design-space sweeps, experiment \
     fan-out).  Defaults to the machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs = function
  | None -> ()
  | Some j ->
    if j < 1 then invalid_arg "--jobs must be >= 1";
    Noc_util.Domain_pool.set_default_jobs j

let cache_dir_arg =
  let doc =
    "Persist mapping results under $(docv): identical problems in later runs replay the stored \
     placement, routes and slot assignments instead of re-solving.  Entries are keyed by a \
     canonical problem digest and namespaced by the build fingerprint, so a rebuilt nocmap \
     never reads stale results."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc =
    "Disable the in-process mapping cache (and ignore $(b,--cache-dir)).  Results are identical \
     either way; this is the honest-timing / debugging escape hatch."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let apply_cache no_cache cache_dir =
  if no_cache then Noc_core.Mapping_cache.set_enabled false
  else Option.iter (fun d -> Noc_core.Mapping_cache.set_dir (Some d)) cache_dir

let sequential_arg =
  let doc =
    "Search mesh sizes strictly one at a time instead of speculatively evaluating a window of \
     sizes on separate domains (the result is identical either way)."
  in
  Arg.(value & flag & info [ "sequential" ] ~doc)

let wc_arg =
  let doc = "Design with the worst-case baseline method [25] instead of the multi-use-case method." in
  Arg.(value & flag & info [ "wc" ] ~doc)

let no_prune_arg =
  let doc =
    "Disable static feasibility pruning: attempt every mesh size of the growth sequence even \
     when a certificate proves it infeasible.  The designed NoC is identical either way."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let systemc_arg =
  let doc = "Write the generated SystemC model to $(docv)." in
  Arg.(value & opt (some string) None & info [ "systemc" ] ~docv:"FILE" ~doc)

let spec_arg =
  let doc = "Read the design from a spec file instead of a named benchmark (see Noc_core.Spec_parser for the format)." in
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)

let vhdl_arg =
  let doc = "Write the generated structural VHDL to $(docv)." in
  Arg.(value & opt (some string) None & info [ "vhdl" ] ~docv:"FILE" ~doc)

let make_config ~freq ~slots ~nis ~xy =
  {
    Config.default with
    freq_mhz = freq;
    slots;
    nis_per_switch = nis;
    routing = (if xy then Config.Xy else Config.Min_cost);
  }

(* --- map -------------------------------------------------------------------- *)

let print_design name mapping verified =
  Format.printf "design %s: mapped onto %a (%d switches in use)@." name Mesh.pp
    mapping.Mapping.mesh
    (Mapping.switches_in_use mapping);
  Format.printf "verification: %s@." (if verified then "OK" else "FAILED");
  Format.printf "area: %a, power: %.1f mW@." Noc_util.Units.pp_area
    (Noc_power.Area_model.noc_area mapping)
    (Noc_power.Power_model.noc_power mapping).Noc_power.Power_model.total_mw

let emit_vhdl path name mapping =
  match path with
  | None -> `Ok ()
  | Some file ->
    let text = Noc_rtl.Netlist.generate ~design_name:name mapping in
    (match Noc_rtl.Wellformed.check text with
    | Ok () ->
      Out_channel.with_open_text file (fun oc -> output_string oc text);
      Format.printf "VHDL written to %s (%d bytes, lint clean)@." file (String.length text);
      `Ok ()
    | Error issues ->
      `Error (false, Printf.sprintf "generated VHDL failed lint (%d issues)" (List.length issues)))

let emit_systemc path name mapping =
  match path with
  | None -> `Ok ()
  | Some file ->
    let text = Noc_rtl.Systemc.generate ~design_name:name mapping in
    (match Noc_rtl.Systemc.check text with
    | Ok () ->
      Out_channel.with_open_text file (fun oc -> output_string oc text);
      Format.printf "SystemC written to %s (%d bytes, lint clean)@." file (String.length text);
      `Ok ()
    | Error issues ->
      `Error
        (false, Printf.sprintf "generated SystemC failed lint (%d issues)" (List.length issues)))

let load_spec ~bench ~use_cases ~seed ~spec_file =
  match spec_file with
  | Some file -> (
    match Noc_core.Spec_parser.parse_file file with
    | Ok spec -> Ok spec
    | Error e -> Error (Format.asprintf "%s: %a" file Noc_core.Spec_parser.pp_error e))
  | None -> (
    match load_benchmark ~name:bench ~use_cases ~seed with
    | Ok ucs -> Ok (DF.spec_of_use_cases ~name:bench ucs)
    | Error msg -> Error msg)

let run_map bench use_cases seed freq slots nis xy refine sequential wc no_prune jobs vhdl
    systemc spec_file no_cache cache_dir =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  match load_spec ~bench ~use_cases ~seed ~spec_file with
  | Error msg -> `Error (false, msg)
  | Ok spec -> (
    let both vhdl_res m =
      match vhdl_res with `Ok () -> emit_systemc systemc spec.DF.name m | e -> e
    in
    let config = make_config ~freq ~slots ~nis ~xy in
    let parallel = not sequential in
    if wc then
      match WC.map_design ~config ~parallel spec.DF.use_cases with
      | Error failure -> `Error (false, Format.asprintf "%a" Mapping.pp_failure failure)
      | Ok m ->
        print_design (spec.DF.name ^ " (WC method)") m true;
        both (emit_vhdl vhdl spec.DF.name m) m
    else
      match DF.run ~config ~parallel ~prune:(not no_prune) ~refine spec with
      | Error msg -> `Error (false, msg)
      | Ok d ->
        print_design spec.DF.name d.DF.mapping (DF.verified d);
        both (emit_vhdl vhdl spec.DF.name d.DF.mapping) d.DF.mapping)

let map_cmd =
  let doc = "Design the smallest NoC satisfying every use-case of a benchmark." in
  Cmd.v
    (Cmd.info "map" ~doc)
    Term.(
      ret
        (const run_map $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
        $ xy_arg $ refine_arg $ sequential_arg $ wc_arg $ no_prune_arg $ jobs_arg $ vhdl_arg
        $ systemc_arg $ spec_arg $ no_cache_arg $ cache_dir_arg))

(* --- experiments -------------------------------------------------------------- *)

let experiments_arg =
  let doc = "Which experiment to run: all, fig6a, fig6b, fig6c, s62, fig7a, fig7b, fig7c, ablations." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let run_experiments which jobs no_cache cache_dir =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  let module E = Noc_benchkit.Experiments in
  match String.lowercase_ascii which with
  | "all" ->
    E.print_all ();
    Noc_benchkit.Ablations.print_all ();
    `Ok ()
  | "ablations" ->
    Noc_benchkit.Ablations.print_all ();
    `Ok ()
  | one -> (
    match E.print_one one with Ok () -> `Ok () | Error msg -> `Error (false, msg))

let experiments_cmd =
  let doc = "Regenerate the paper's evaluation figures (Fig 6a-c, Sec 6.2, Fig 7a-c)." in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(ret (const run_experiments $ experiments_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg))

(* --- generate ------------------------------------------------------------------- *)

let run_generate bench use_cases seed =
  match load_benchmark ~name:bench ~use_cases ~seed with
  | Error msg -> `Error (false, msg)
  | Ok ucs ->
    Format.printf "%a@.@." Noc_traffic.Traffic_stats.pp (Noc_traffic.Traffic_stats.compute ucs);
    List.iter
      (fun u ->
        Format.printf "%a@." Use_case.pp u;
        List.iter (fun f -> Format.printf "  %a@." Noc_traffic.Flow.pp f) u.Use_case.flows)
      ucs;
    `Ok ()

let generate_cmd =
  let doc = "Print the traffic description of a benchmark." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(ret (const run_generate $ bench_arg $ use_cases_arg $ seed_arg))

(* --- simulate ------------------------------------------------------------------- *)

let duration_arg =
  let doc = "Simulation length in TDMA slots." in
  Arg.(value & opt int 3200 & info [ "duration" ] ~docv:"SLOTS" ~doc)

let run_simulate bench use_cases seed freq slots nis xy duration spec_file no_cache cache_dir =
  apply_cache no_cache cache_dir;
  match load_spec ~bench ~use_cases ~seed ~spec_file with
  | Error msg -> `Error (false, msg)
  | Ok spec -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    match DF.run ~config spec with
    | Error msg -> `Error (false, msg)
    | Ok d ->
      let m = d.DF.mapping in
      Format.printf "%a@.@." DF.pp_summary d;
      List.iter
        (fun u ->
          let routes = Mapping.routes_of_use_case m u.Use_case.id in
          let res = Sim.simulate ~config ~routes ~duration_slots:duration in
          Format.printf "%s: %s (%d connections, %d collisions)@." u.Use_case.name
            (if Sim.within_contract res then "contracts met" else "CONTRACT VIOLATION")
            (List.length res.Sim.conns) res.Sim.collisions)
        d.DF.all_use_cases;
      `Ok ())

let simulate_cmd =
  let doc = "Design a NoC, then simulate every use-case configuration slot by slot." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      ret
        (const run_simulate $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg
       $ nis_arg $ xy_arg $ duration_arg $ spec_arg $ no_cache_arg $ cache_dir_arg))

(* --- export ------------------------------------------------------------------------ *)

let json_arg =
  let doc = "Write the design as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let dot_arg =
  let doc = "Write the topology/placement as Graphviz DOT to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let dot_uc_arg =
  let doc = "Write use-case $(docv)'s configuration heat map as DOT to FILE.dot." in
  Arg.(value & opt (some int) None & info [ "dot-use-case" ] ~docv:"UC" ~doc)

let run_export bench use_cases seed freq slots nis xy json dot dot_uc no_cache cache_dir =
  apply_cache no_cache cache_dir;
  match load_benchmark ~name:bench ~use_cases ~seed with
  | Error msg -> `Error (false, msg)
  | Ok ucs -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    match DF.run ~config (DF.spec_of_use_cases ~name:bench ucs) with
    | Error msg -> `Error (false, msg)
    | Ok d ->
      let write file text =
        Out_channel.with_open_text file (fun oc -> output_string oc text);
        Format.printf "wrote %s (%d bytes)@." file (String.length text)
      in
      (match json with
      | Some file -> write file (Noc_export.Design_export.design_to_string d)
      | None -> ());
      (match dot with
      | Some file -> write file (Noc_export.Dot.topology d.DF.mapping)
      | None -> ());
      (match dot_uc with
      | Some uc ->
        write
          (Printf.sprintf "%s_uc%d.dot" bench uc)
          (Noc_export.Dot.use_case d.DF.mapping ~use_case:uc)
      | None -> ());
      if json = None && dot = None && dot_uc = None then
        print_endline (Noc_export.Design_export.design_to_string d);
      `Ok ())

let export_cmd =
  let doc = "Design a NoC and export it as JSON and/or Graphviz DOT." in
  Cmd.v
    (Cmd.info "export" ~doc)
    Term.(
      ret
        (const run_export $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
       $ xy_arg $ json_arg $ dot_arg $ dot_uc_arg $ no_cache_arg $ cache_dir_arg))

(* --- explore ------------------------------------------------------------------------ *)

let torus_axis_arg =
  let doc = "Also explore torus grids." in
  Arg.(value & flag & info [ "torus" ] ~doc)

let cold_arg =
  let doc =
    "Disable placement-seeded warm starts: every sweep point runs the full growth search from \
     scratch.  Slower; the feasibility set and switch counts are identical either way."
  in
  Arg.(value & flag & info [ "cold" ] ~doc)

let explore_json_arg =
  let doc =
    "Write the sweep's points as JSON to $(docv) instead of printing the table.  The output is \
     deterministic, so two runs over the same benchmark can be compared byte for byte (the CI \
     cache-correctness check diffs a cold and a cache-warmed run this way)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let points_to_json points =
  let module J = Noc_export.Json in
  let point p =
    let open Noc_power.Design_space in
    J.Obj
      [
        ("topology", J.String (match p.topology with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus"));
        ("slots", J.Int p.slots);
        ("freq_mhz", J.Float p.freq_mhz);
        ("switches", (match p.switches with Some s -> J.Int s | None -> J.Null));
        ("area_mm2", (match p.area_mm2 with Some a -> J.Float a | None -> J.Null));
        ("power_mw", (match p.power_mw with Some w -> J.Float w | None -> J.Null));
        ("start", J.String (match p.start with Warm -> "warm" | Cold -> "cold"));
      ]
  in
  J.to_string ~indent:2 (J.Obj [ ("points", J.List (List.map point points)) ])

let run_explore bench use_cases seed torus cold no_prune jobs json no_cache cache_dir =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  match load_benchmark ~name:bench ~use_cases ~seed with
  | Error msg -> `Error (false, msg)
  | Ok ucs ->
    let groups = List.mapi (fun i _ -> [ i ]) ucs in
    let axes =
      let base = Noc_power.Design_space.default_axes in
      if torus then
        { base with Noc_power.Design_space.topologies = [ Mesh.Mesh; Mesh.Torus ] }
      else base
    in
    let points =
      Noc_power.Design_space.explore ~axes ~warm:(not cold) ~prune:(not no_prune)
        ~config:Config.default ~groups ucs
    in
    (match json with
    | Some file ->
      Out_channel.with_open_text file (fun oc -> output_string oc (points_to_json points));
      Format.printf "wrote %s (%d points)@." file (List.length points)
    | None -> Noc_power.Design_space.print points);
    `Ok ()

let explore_cmd =
  let doc = "Explore the (frequency x slot-table x topology) design space and mark the Pareto front." in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      ret
        (const run_explore $ bench_arg $ use_cases_arg $ seed_arg $ torus_axis_arg $ cold_arg
       $ no_prune_arg $ jobs_arg $ explore_json_arg $ no_cache_arg $ cache_dir_arg))

(* --- report ------------------------------------------------------------------------ *)

let run_report bench use_cases seed freq slots nis xy spec_file no_cache cache_dir =
  apply_cache no_cache cache_dir;
  match load_spec ~bench ~use_cases ~seed ~spec_file with
  | Error msg -> `Error (false, msg)
  | Ok spec -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    match DF.run ~config spec with
    | Error msg -> `Error (false, msg)
    | Ok d ->
      Noc_report.Design_report.print (Noc_report.Design_report.build d);
      `Ok ())

let report_cmd =
  let doc = "Design a NoC and print the full analytic report (guarantees, slacks, utilization, buffers, switching costs)." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(
      ret
        (const run_report $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
       $ xy_arg $ spec_arg $ no_cache_arg $ cache_dir_arg))

(* --- lint ------------------------------------------------------------------------ *)

let lint_json_arg =
  let doc = "Emit the diagnostics and the feasibility certificate as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

let deep_arg =
  let doc = "Also run the full design flow and the post-mapping design passes." in
  Arg.(value & flag & info [ "deep" ] ~doc)

let run_lint bench use_cases seed freq slots nis xy json deep jobs spec_file =
  apply_jobs jobs;
  let config = make_config ~freq ~slots ~nis ~xy in
  let doc_res =
    match spec_file with
    | Some file -> (
      match Noc_core.Spec_parser.doc_of_file file with
      | Ok doc -> Ok doc
      | Error e -> Error (Format.asprintf "%s: %a" file Noc_core.Spec_parser.pp_error e))
    | None -> (
      match load_benchmark ~name:bench ~use_cases ~seed with
      | Ok ucs ->
        let spec = DF.spec_of_use_cases ~name:bench ucs in
        Ok
          (Noc_core.Spec_parser.parse_doc ~name:spec.DF.name
             (Noc_core.Spec_parser.to_text spec))
      | Error msg -> Error msg)
  in
  match doc_res with
  | Error msg -> `Error (false, msg)
  | Ok doc ->
    let report = Noc_analysis.Analyzer.analyze_doc ~config ~deep doc in
    if json then print_endline (Noc_analysis.Analyzer.render_json report)
    else print_string (Noc_analysis.Analyzer.render_text report);
    (match Noc_analysis.Analyzer.exit_code report with 0 -> `Ok () | n -> exit n)

let lint_cmd =
  let doc =
    "Statically analyze a spec or benchmark: well-formedness passes, feasibility certificates, \
     and (with $(b,--deep)) the post-mapping design passes.  Exits 2 on errors, 1 on warnings, \
     0 when clean."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      ret
        (const run_lint $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
       $ xy_arg $ lint_json_arg $ deep_arg $ jobs_arg $ spec_arg))

(* --- cache ------------------------------------------------------------------------ *)

let cache_action_arg =
  let doc = "What to do: $(b,stats) reports the store's contents and cumulative counters; $(b,clear) deletes every entry under the directory." in
  Arg.(value & pos 0 (enum [ ("stats", `Stats); ("clear", `Clear) ]) `Stats & info [] ~docv:"ACTION" ~doc)

let run_cache action cache_dir =
  let module RC = Noc_util.Result_cache in
  match cache_dir with
  | None -> `Error (false, "nocmap cache requires --cache-dir")
  | Some dir -> (
    match action with
    | `Clear ->
      let removed = RC.clear_disk ~dir in
      Format.printf "removed %d files under %s@." removed dir;
      `Ok ()
    | `Stats ->
      let fingerprint = Noc_util.Build_info.fingerprint () in
      Format.printf "build: %s (current)@." (Noc_util.Build_info.describe ());
      (match RC.disk_summary ~dir with
      | [] -> Format.printf "store %s: empty@." dir
      | versions ->
        Format.printf "store %s:@." dir;
        List.iter
          (fun (version, entries, bytes) ->
            let marker = if String.equal version fingerprint then " (current build)" else "" in
            Format.printf "  v-%s: %d entries, %d bytes%s@." version entries bytes marker;
            match RC.read_persisted_stats ~dir ~version with
            | None -> ()
            | Some s ->
              Format.printf
                "    cumulative: %d memory hits, %d disk hits, %d misses, %d stores, %d \
                 evictions, %d disk errors@."
                s.RC.memory_hits s.RC.disk_hits s.RC.misses s.RC.stores s.RC.evictions
                s.RC.disk_errors)
          versions);
      `Ok ())

let cache_cmd =
  let doc =
    "Inspect or clear a persistent mapping cache directory (see $(b,--cache-dir) on the design \
     commands).  Entries from other builds are kept until $(b,clear) — they become reusable \
     again when that exact build runs."
  in
  Cmd.v (Cmd.info "cache" ~doc) Term.(ret (const run_cache $ cache_action_arg $ cache_dir_arg))

(* --- remap ----------------------------------------------------------------------- *)

let remap_from_arg =
  let doc = "The previous revision's spec file (the completed design to churn from)." in
  Arg.(required & opt (some string) None & info [ "from" ] ~docv:"OLD.spec" ~doc)

let remap_to_arg =
  let doc = "The new revision's spec file." in
  Arg.(required & opt (some string) None & info [ "to" ] ~docv:"NEW.spec" ~doc)

let reference_arg =
  let doc =
    "Use the naive reference remapper (no cache, every sub-problem computed directly).  The \
     result is byte-identical to the default incremental engine — this is the oracle the \
     correctness CI compares against."
  in
  Arg.(value & flag & info [ "reference" ] ~doc)

let remap_json_arg =
  let doc = "Write the remapped design as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let run_remap from_file to_file reference freq slots nis xy sequential no_prune jobs json
    no_cache cache_dir =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  let parse file =
    match Noc_core.Spec_parser.parse_file file with
    | Ok spec -> Ok spec
    | Error e -> Error (Format.asprintf "%s: %a" file Noc_core.Spec_parser.pp_error e)
  in
  match (parse from_file, parse to_file) with
  | Error msg, _ | _, Error msg -> `Error (false, msg)
  | Ok old_spec, Ok new_spec -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    let parallel = not sequential and prune = not no_prune in
    match DF.run ~config ~parallel ~prune old_spec with
    | Error msg -> `Error (false, msg)
    | Ok old_design -> (
      let mode = if reference then Noc_core.Remap.Reference else Noc_core.Remap.Incremental in
      match Noc_core.Remap.remap ~config ~mode ~parallel ~prune ~old:old_design new_spec with
      | Error msg -> `Error (false, msg)
      | Ok o ->
        let open Noc_core.Remap in
        Format.printf "remap %s -> %s: %s@." old_spec.DF.name new_spec.DF.name
          (match o.path with
          | Reused -> "reused (no routing ran)"
          | Delta n -> Printf.sprintf "delta (%d dirty group%s re-routed)" n (if n = 1 then "" else "s")
          | Warm_placement -> "warm placement (whole problem re-routed on the old mesh)"
          | Regrown -> "regrown (full growth search)");
        Format.printf "groups: %d clean, %d dirty, %d removed@." (List.length o.delta.clean)
          (List.length o.delta.dirty)
          (List.length o.delta.removed);
        print_design new_spec.DF.name o.design.DF.mapping (DF.verified o.design);
        (match Noc_core.Mapping_codec.digest o.design.DF.mapping with
        | Some d -> Format.printf "mapping digest: %s@." d
        | None -> ());
        (match json with
        | Some file ->
          Out_channel.with_open_text file (fun oc ->
              output_string oc (Noc_export.Design_export.design_to_string o.design));
          Format.printf "wrote %s@." file
        | None -> ());
        `Ok ()))

let remap_cmd =
  let doc =
    "Incrementally re-map a churned spec: re-route only the switching-graph components the \
     delta touches, keeping every unaffected group's configuration byte-identical to the \
     $(b,--from) design."
  in
  Cmd.v
    (Cmd.info "remap" ~doc)
    Term.(
      ret
        (const run_remap $ remap_from_arg $ remap_to_arg $ reference_arg $ freq_arg $ slots_arg
       $ nis_arg $ xy_arg $ sequential_arg $ no_prune_arg $ jobs_arg $ remap_json_arg
       $ no_cache_arg $ cache_dir_arg))

(* --- main ------------------------------------------------------------------------ *)

let () =
  let doc = "multi-use-case NoC mapping (Murali et al., DATE 2006)" in
  let info = Cmd.info "nocmap" ~version:(Noc_util.Build_info.describe ()) ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            map_cmd;
            experiments_cmd;
            generate_cmd;
            simulate_cmd;
            export_cmd;
            explore_cmd;
            report_cmd;
            lint_cmd;
            remap_cmd;
            cache_cmd;
          ]))
