module Config = Noc_arch.Noc_config
module Use_case = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Domain_pool = Noc_util.Domain_pool

let default_grid = List.init 80 (fun i -> 25.0 *. float_of_int (i + 1))

(* The grid is tried in increasing order; a binary search would be
   wrong because TDMA feasibility is not perfectly monotonic in
   frequency (slot granularity effects).  The parallel scan keeps those
   semantics: grid points are probed in ascending chunks of [jobs]
   levels, stopping at the first chunk containing a feasible one, so
   the answer is always the smallest feasible level and at most
   [jobs - 1] probes beyond the sequential scan are wasted. *)
let search ?jobs grid feasible =
  let jobs = Domain_pool.effective_jobs ?jobs () in
  let rec chunks = function
    | [] -> None
    | levels ->
      let rec split n = function
        | x :: rest when n > 0 ->
          let chunk, beyond = split (n - 1) rest in
          (x :: chunk, beyond)
        | l -> ([], l)
      in
      let chunk, beyond = split jobs levels in
      let verdicts = Domain_pool.map ~jobs feasible chunk in
      let rec first = function
        | f :: _, true :: _ -> Some f
        | _ :: fs, _ :: vs -> first (fs, vs)
        | _ -> None
      in
      (match first (chunk, verdicts) with Some f -> Some f | None -> chunks beyond)
  in
  chunks (List.sort compare grid)

(* A frequency whose certificate rejects the fixed mesh size cannot map
   there, so the probe can answer [false] without running the mapper.
   The certificate depends on the frequency (slot durations scale), so
   it is issued per probe. *)
let admitted ~cfg ~mesh ~groups use_cases =
  let cert = Noc_core.Feasibility.certify ~config:cfg ~groups use_cases in
  Noc_core.Feasibility.admits_mesh cert mesh

let for_use_case_on_design ?(grid = default_grid) ?jobs ?(prune = true) ~design use_case =
  let config = design.Mapping.config in
  let mesh = design.Mapping.mesh in
  let placement = design.Mapping.placement in
  let renamed = Use_case.rename use_case ~id:0 ~name:use_case.Use_case.name in
  let feasible f =
    f <= config.Config.freq_mhz +. 1e-9
    &&
    let cfg = Config.with_freq config f in
    ((not prune) || admitted ~cfg ~mesh ~groups:[ [ 0 ] ] [ renamed ])
    &&
    match
      Noc_core.Mapping_cache.with_placement ~config:cfg ~mesh ~groups:[ [ 0 ] ] ~placement
        [ renamed ]
    with
    | Ok _ -> true
    | Error _ -> false
  in
  search ?jobs grid feasible

let for_use_cases_on_mesh ?(grid = default_grid) ?jobs ?(prune = true) ~config ~mesh ~groups
    use_cases =
  let feasible f =
    let cfg = Config.with_freq config f in
    ((not prune) || admitted ~cfg ~mesh ~groups use_cases)
    &&
    match Noc_core.Mapping_cache.on_mesh ~config:cfg ~mesh ~groups use_cases with
    | Ok _ -> true
    | Error _ -> false
  in
  search ?jobs grid feasible
