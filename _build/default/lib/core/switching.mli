(** Switching graph and use-case grouping — phase 2 of the methodology
    (paper §4, Definition 1 and Algorithm 1).

    Vertices are use-cases; an undirected edge means the two use-cases
    need *smooth switching* between them and therefore must share one
    NoC configuration.  Use-cases reachable from each other in this
    graph are grouped; each group gets a single path/slot
    configuration, while distinct groups may be re-configured at
    switching time. *)

type t

val create : use_cases:int -> smooth:(int * int) list -> t
(** Switching graph over use-case ids [0 .. use_cases-1] with the
    user-supplied smooth-switching pairs (SUC input).
    @raise Invalid_argument on out-of-range or self-looping pairs. *)

val add_smooth : t -> int -> int -> unit
(** Add one smooth-switching requirement. *)

val add_compound : t -> Compound.t -> unit
(** Paper §4: use-cases in a compound mode automatically require
    smooth switching — link every member to the compound use-case. *)

val requires_smooth : t -> int -> int -> bool
(** Is there a direct smooth-switching edge between the two? *)

val groups : t -> int list list
(** Algorithm 1: repeated DFS grouping of mutually reachable vertices.
    Every use-case appears in exactly one group; isolated use-cases
    form singleton groups.  Groups are sorted by smallest member. *)

val group_of : t -> int array
(** [group_of t].(u) = index of [u]'s group in [groups t]. *)

val reconfigurable_switchings : t -> int
(** Number of unordered use-case pairs that belong to different groups,
    i.e. switchings at which the NoC may be re-configured. *)

val pp : Format.formatter -> t -> unit
