(* Tests for Noc_traffic: flows, use-cases, statistics. *)

module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Stats = Noc_traffic.Traffic_stats

let check_float = Alcotest.(check (float 1e-9))

(* --- flow -------------------------------------------------------------- *)

let test_flow_defaults () =
  let f = Flow.v ~src:0 ~dst:1 100.0 in
  check_float "bandwidth" 100.0 f.Flow.bandwidth;
  Alcotest.(check bool) "unconstrained latency" true (f.Flow.latency_ns = infinity);
  Alcotest.(check (pair int int)) "pair" (0, 1) (Flow.pair f)

let test_flow_validate_ok () =
  let f = Flow.v ~src:0 ~dst:1 ~latency_ns:100.0 50.0 in
  Alcotest.(check bool) "valid" true (Flow.validate ~cores:2 f = Ok ())

let test_flow_validate_rejections () =
  let bad name f = Alcotest.(check bool) name true (Result.is_error (Flow.validate ~cores:4 f)) in
  bad "src out of range" (Flow.v ~src:4 ~dst:1 1.0);
  bad "dst out of range" (Flow.v ~src:0 ~dst:(-1) 1.0);
  bad "self loop" (Flow.v ~src:2 ~dst:2 1.0);
  bad "zero bandwidth" (Flow.v ~src:0 ~dst:1 0.0);
  bad "negative latency" (Flow.v ~src:0 ~dst:1 ~latency_ns:(-5.0) 1.0)

let test_flow_sort_order () =
  let a = Flow.v ~src:0 ~dst:1 10.0 in
  let b = Flow.v ~src:0 ~dst:2 90.0 in
  let c = Flow.v ~src:1 ~dst:2 90.0 in
  let sorted = List.sort Flow.compare_bandwidth_desc [ a; b; c ] in
  Alcotest.(check (list (pair int int)))
    "descending bandwidth, pair tie-break"
    [ (0, 2); (1, 2); (0, 1) ]
    (List.map Flow.pair sorted)

let test_flow_best_effort_rules () =
  let be = Flow.v ~service:Flow.Best_effort ~src:0 ~dst:1 40.0 in
  Alcotest.(check bool) "BE valid" true (Flow.validate ~cores:2 be = Ok ());
  Alcotest.(check bool) "not guaranteed" false (Flow.is_guaranteed be);
  let be_lat = Flow.v ~service:Flow.Best_effort ~latency_ns:100.0 ~src:0 ~dst:1 40.0 in
  Alcotest.(check bool) "BE with latency rejected" true
    (Result.is_error (Flow.validate ~cores:2 be_lat))

let test_flow_sort_gt_before_be () =
  let gt = Flow.v ~src:0 ~dst:1 1.0 in
  let be = Flow.v ~service:Flow.Best_effort ~src:0 ~dst:2 999.0 in
  Alcotest.(check bool) "GT first even when smaller" true
    (Flow.compare_bandwidth_desc gt be < 0)

(* --- use case ----------------------------------------------------------- *)

let test_use_case_keeps_gt_and_be_distinct () =
  let u =
    U.create ~id:0 ~name:"u" ~cores:3
      [
        Flow.v ~src:0 ~dst:1 10.0;
        Flow.v ~service:Flow.Best_effort ~src:0 ~dst:1 20.0;
      ]
  in
  Alcotest.(check int) "two connections" 2 (U.flow_count u);
  Alcotest.(check int) "one guaranteed" 1 (List.length (U.guaranteed_flows u));
  Alcotest.(check int) "one best effort" 1 (List.length (U.best_effort_flows u));
  match U.find_flow u ~src:0 ~dst:1 with
  | Some f -> Alcotest.(check bool) "find prefers GT" true (Flow.is_guaranteed f)
  | None -> Alcotest.fail "flow missing"

let test_use_case_basics () =
  let u =
    U.create ~id:3 ~name:"u" ~cores:4 [ Flow.v ~src:0 ~dst:1 10.0; Flow.v ~src:1 ~dst:2 20.0 ]
  in
  Alcotest.(check int) "id" 3 u.U.id;
  Alcotest.(check int) "flows" 2 (U.flow_count u);
  check_float "total" 30.0 (U.total_bandwidth u);
  check_float "max" 20.0 (U.max_bandwidth u)

let test_use_case_merges_duplicate_pairs () =
  let u =
    U.create ~id:0 ~name:"u" ~cores:3
      [
        Flow.v ~src:0 ~dst:1 ~latency_ns:500.0 10.0;
        Flow.v ~src:0 ~dst:1 ~latency_ns:300.0 15.0;
      ]
  in
  Alcotest.(check int) "merged" 1 (U.flow_count u);
  match U.find_flow u ~src:0 ~dst:1 with
  | Some f ->
    check_float "bandwidths sum" 25.0 f.Flow.bandwidth;
    check_float "latency min" 300.0 f.Flow.latency_ns
  | None -> Alcotest.fail "merged flow missing"

let test_use_case_rejects_invalid_flow () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (U.create ~id:0 ~name:"u" ~cores:2 [ Flow.v ~src:0 ~dst:5 1.0 ]);
       false
     with Invalid_argument _ -> true)

let test_use_case_sorted_flows () =
  let u =
    U.create ~id:0 ~name:"u" ~cores:4
      [ Flow.v ~src:0 ~dst:1 5.0; Flow.v ~src:1 ~dst:2 50.0; Flow.v ~src:2 ~dst:3 20.0 ]
  in
  let bws = List.map (fun f -> f.Flow.bandwidth) (U.sorted_flows_desc u) in
  Alcotest.(check (list (float 0.0))) "descending" [ 50.0; 20.0; 5.0 ] bws

let test_use_case_core_degree () =
  let u =
    U.create ~id:0 ~name:"u" ~cores:4 [ Flow.v ~src:0 ~dst:1 1.0; Flow.v ~src:0 ~dst:2 1.0 ]
  in
  Alcotest.(check (array int)) "degrees" [| 2; 1; 1; 0 |] (U.core_degree u)

let test_use_case_communicating_cores () =
  let u = U.create ~id:0 ~name:"u" ~cores:5 [ Flow.v ~src:1 ~dst:3 1.0 ] in
  Alcotest.(check (list int)) "cores" [ 1; 3 ] (U.communicating_cores u)

let test_use_case_rename () =
  let u = U.create ~id:0 ~name:"a" ~cores:2 [ Flow.v ~src:0 ~dst:1 1.0 ] in
  let r = U.rename u ~id:7 ~name:"b" in
  Alcotest.(check int) "new id" 7 r.U.id;
  Alcotest.(check string) "new name" "b" r.U.name;
  Alcotest.(check int) "flows kept" 1 (U.flow_count r)

let test_use_case_empty_flows () =
  let u = U.create ~id:0 ~name:"idle" ~cores:3 [] in
  check_float "zero total" 0.0 (U.total_bandwidth u);
  check_float "zero max" 0.0 (U.max_bandwidth u);
  Alcotest.(check (list int)) "no communicating cores" [] (U.communicating_cores u)

let test_merge_keeps_classes_apart_under_sum () =
  (* summing duplicates happens within each class only *)
  let u =
    U.create ~id:0 ~name:"u" ~cores:3
      [
        Flow.v ~src:0 ~dst:1 10.0;
        Flow.v ~src:0 ~dst:1 15.0;
        Flow.v ~service:Flow.Best_effort ~src:0 ~dst:1 7.0;
        Flow.v ~service:Flow.Best_effort ~src:0 ~dst:1 3.0;
      ]
  in
  Alcotest.(check int) "two connections" 2 (U.flow_count u);
  (match U.guaranteed_flows u with
  | [ f ] -> Alcotest.(check (float 1e-9)) "GT sum" 25.0 f.Flow.bandwidth
  | _ -> Alcotest.fail "one GT flow expected");
  match U.best_effort_flows u with
  | [ f ] -> Alcotest.(check (float 1e-9)) "BE sum" 10.0 f.Flow.bandwidth
  | _ -> Alcotest.fail "one BE flow expected"

(* --- stats --------------------------------------------------------------- *)

let test_stats_compute () =
  let u1 =
    U.create ~id:0 ~name:"u1" ~cores:4
      [ Flow.v ~src:0 ~dst:1 ~latency_ns:100.0 10.0; Flow.v ~src:1 ~dst:2 30.0 ]
  in
  let u2 = U.create ~id:1 ~name:"u2" ~cores:4 [ Flow.v ~src:2 ~dst:3 100.0 ] in
  let s = Stats.compute [ u1; u2 ] in
  Alcotest.(check int) "use cases" 2 s.Stats.use_cases;
  Alcotest.(check int) "min flows" 1 s.Stats.min_flows;
  Alcotest.(check int) "max flows" 2 s.Stats.max_flows;
  check_float "mean flows" 1.5 s.Stats.mean_flows;
  check_float "total" 140.0 s.Stats.total_bandwidth;
  check_float "peak use case" 100.0 s.Stats.peak_use_case_bandwidth;
  check_float "max flow" 100.0 s.Stats.max_flow_bandwidth;
  Alcotest.(check int) "latency constrained" 1 s.Stats.latency_constrained_flows

let test_stats_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Traffic_stats.compute: no use-cases")
    (fun () -> ignore (Stats.compute []))

let test_stats_rejects_mismatched_cores () =
  let u1 = U.create ~id:0 ~name:"a" ~cores:2 [] in
  let u2 = U.create ~id:1 ~name:"b" ~cores:3 [] in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Traffic_stats.compute: use-cases disagree on core count") (fun () ->
      ignore (Stats.compute [ u1; u2 ]))

(* --- properties ----------------------------------------------------------- *)

let flow_gen =
  QCheck.Gen.(
    map3
      (fun src dst bw -> Flow.v ~src ~dst:(if dst = src then (dst + 1) mod 8 else dst) (1.0 +. bw))
      (int_bound 7) (int_bound 7) (float_bound_exclusive 500.0))

let prop_merge_preserves_total =
  QCheck.Test.make ~name:"pair-merge preserves total bandwidth" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) flow_gen))
    (fun flows ->
      let raw = List.fold_left (fun acc f -> acc +. f.Flow.bandwidth) 0.0 flows in
      let u = U.create ~id:0 ~name:"p" ~cores:8 flows in
      Float.abs (U.total_bandwidth u -. raw) < 1e-6)

let prop_merge_unique_pairs =
  QCheck.Test.make ~name:"use-case has at most one flow per pair" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) flow_gen))
    (fun flows ->
      let u = U.create ~id:0 ~name:"p" ~cores:8 flows in
      let pairs = List.map Flow.pair u.U.flows in
      List.length pairs = List.length (List.sort_uniq compare pairs))

let prop_sorted_desc =
  QCheck.Test.make ~name:"sorted_flows_desc is non-increasing" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) flow_gen))
    (fun flows ->
      let u = U.create ~id:0 ~name:"p" ~cores:8 flows in
      let rec mono = function
        | a :: (b :: _ as rest) -> a.Flow.bandwidth >= b.Flow.bandwidth && mono rest
        | _ -> true
      in
      mono (U.sorted_flows_desc u))

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_merge_preserves_total; prop_merge_unique_pairs; prop_sorted_desc ]

let () =
  Alcotest.run "noc_traffic"
    [
      ( "flow",
        [
          Alcotest.test_case "defaults" `Quick test_flow_defaults;
          Alcotest.test_case "validate ok" `Quick test_flow_validate_ok;
          Alcotest.test_case "validate rejections" `Quick test_flow_validate_rejections;
          Alcotest.test_case "sort order" `Quick test_flow_sort_order;
          Alcotest.test_case "best-effort rules" `Quick test_flow_best_effort_rules;
          Alcotest.test_case "GT sorts before BE" `Quick test_flow_sort_gt_before_be;
        ] );
      ( "use_case",
        [
          Alcotest.test_case "GT/BE kept distinct" `Quick test_use_case_keeps_gt_and_be_distinct;
          Alcotest.test_case "class-wise merging" `Quick test_merge_keeps_classes_apart_under_sum;
          Alcotest.test_case "basics" `Quick test_use_case_basics;
          Alcotest.test_case "merges duplicates" `Quick test_use_case_merges_duplicate_pairs;
          Alcotest.test_case "rejects invalid flow" `Quick test_use_case_rejects_invalid_flow;
          Alcotest.test_case "sorted flows" `Quick test_use_case_sorted_flows;
          Alcotest.test_case "core degree" `Quick test_use_case_core_degree;
          Alcotest.test_case "communicating cores" `Quick test_use_case_communicating_cores;
          Alcotest.test_case "rename" `Quick test_use_case_rename;
          Alcotest.test_case "empty flows" `Quick test_use_case_empty_flows;
        ] );
      ( "stats",
        [
          Alcotest.test_case "compute" `Quick test_stats_compute;
          Alcotest.test_case "rejects empty" `Quick test_stats_rejects_empty;
          Alcotest.test_case "rejects mismatch" `Quick test_stats_rejects_mismatched_cores;
        ] );
      ("properties", qcheck_cases);
    ]
