module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

(* Figure 2 cores: 0 input, 1 filter1, 2 filter2, 3 filter3, 4 mem1,
   5 mem2, 6 output.  The published fragment gives the bandwidth
   values; the exact wiring is reconstructed as a filter pipeline
   through the two memories. *)
let viper_fragment_1 =
  Use_case.create ~id:0 ~name:"viper-uc1" ~cores:7
    [
      Flow.v ~src:0 ~dst:1 100.0;
      Flow.v ~src:1 ~dst:4 150.0;
      Flow.v ~src:4 ~dst:2 50.0;
      Flow.v ~src:2 ~dst:5 200.0;
      Flow.v ~src:5 ~dst:3 50.0;
      Flow.v ~src:3 ~dst:6 100.0;
      Flow.v ~src:1 ~dst:3 50.0;
    ]

let viper_fragment_2 =
  Use_case.create ~id:1 ~name:"viper-uc2" ~cores:7
    [
      Flow.v ~src:0 ~dst:1 50.0;
      Flow.v ~src:1 ~dst:4 150.0;
      Flow.v ~src:4 ~dst:2 50.0;
      Flow.v ~src:2 ~dst:5 200.0;
      Flow.v ~src:5 ~dst:3 50.0;
      Flow.v ~src:3 ~dst:6 100.0;
      Flow.v ~src:0 ~dst:5 50.0;
      Flow.v ~src:2 ~dst:3 50.0;
    ]

(* Figure 5 / Example 1: cores 0..3 are C1..C4. *)
let example1_use_cases =
  [
    Use_case.create ~id:0 ~name:"example1-uc1" ~cores:4
      [ Flow.v ~src:2 ~dst:3 100.0; Flow.v ~src:0 ~dst:1 10.0; Flow.v ~src:1 ~dst:2 75.0 ];
    Use_case.create ~id:1 ~name:"example1-uc2" ~cores:4
      [ Flow.v ~src:2 ~dst:3 42.0; Flow.v ~src:0 ~dst:1 11.0; Flow.v ~src:0 ~dst:2 52.0 ];
  ]

(* Deterministic seeds; the designs differ in pattern and scale only.
   The set-top box moves whole video frames through one external
   memory, so its HD cluster is heavier than the streaming TV
   processor's. *)
let set_top_box_clusters =
  [
    { Synthetic.label = "hd-video"; weight = 0.15; bw_lo = 200.0; bw_hi = 400.0; latency_lo_ns = None; latency_hi_ns = None };
    { Synthetic.label = "sd-video"; weight = 0.25; bw_lo = 40.0; bw_hi = 90.0; latency_lo_ns = None; latency_hi_ns = None };
    { Synthetic.label = "audio"; weight = 0.35; bw_lo = 4.0; bw_hi = 10.0; latency_lo_ns = None; latency_hi_ns = None };
    { Synthetic.label = "control"; weight = 0.25; bw_lo = 0.5; bw_hi = 2.0; latency_lo_ns = Some 400.0; latency_hi_ns = Some 900.0 };
  ]

let set_top_box_params =
  {
    Synthetic.cores = 18;
    flows_lo = 50;
    flows_hi = 90;
    clusters = set_top_box_clusters;
    pattern = Synthetic.Bottleneck { hotspots = 1; fraction = 0.6 };
    activity_lo = 0.35;
    activity_hi = 1.0;
  }

let tv_processor_params =
  {
    Synthetic.cores = 24;
    flows_lo = 60;
    flows_hi = 100;
    clusters = Synthetic.default_clusters;
    pattern = Synthetic.Spread;
    activity_lo = 0.35;
    activity_hi = 1.0;
  }

(* D1/D2 are one set-top-box family (D2 = D1 "scaled to support more
   use-cases", so patterns stay similar); likewise D3/D4 for the TV
   processor, whose streaming use-cases differ more. *)
let d1 () = Synthetic.generate_family ~seed:101 ~params:set_top_box_params ~use_cases:4 ~similarity:0.75
let d2 () = Synthetic.generate_family ~seed:101 ~params:set_top_box_params ~use_cases:20 ~similarity:0.75
let d3 () = Synthetic.generate_family ~seed:103 ~params:tv_processor_params ~use_cases:8 ~similarity:0.3
let d4 () = Synthetic.generate_family ~seed:103 ~params:tv_processor_params ~use_cases:20 ~similarity:0.3

let all_designs () = [ ("D1", d1 ()); ("D2", d2 ()); ("D3", d3 ()); ("D4", d4 ()) ]

(* Cores: 0 memory, 1 apps cpu, 2 modem, 3 camera ISP, 4 display,
   5 audio, 6 crypto, 7 storage. *)
let mobile_phone () =
  let mem = 0 and cpu = 1 and modem = 2 and isp = 3 and disp = 4 and audio = 5 and crypto = 6 and disk = 7 in
  let uc id name flows = Use_case.create ~id ~name ~cores:8 flows in
  [
    uc 0 "voice-call"
      [
        Flow.v ~src:modem ~dst:audio ~latency_ns:600.0 2.0;
        Flow.v ~src:audio ~dst:modem ~latency_ns:600.0 2.0;
        Flow.v ~src:cpu ~dst:mem ~latency_ns:500.0 4.0;
        Flow.v ~src:modem ~dst:crypto 8.0;
        Flow.v ~src:crypto ~dst:modem 8.0;
      ];
    uc 1 "browsing"
      [
        Flow.v ~src:modem ~dst:mem 30.0;
        Flow.v ~src:mem ~dst:cpu 120.0;
        Flow.v ~src:cpu ~dst:mem 80.0;
        Flow.v ~src:mem ~dst:disp 140.0;
        Flow.v ~src:cpu ~dst:mem ~latency_ns:500.0 4.0;
      ];
    uc 2 "camera"
      [
        Flow.v ~src:isp ~dst:mem 320.0;
        Flow.v ~src:mem ~dst:disp 180.0;
        Flow.v ~src:mem ~dst:disk 90.0;
        Flow.v ~src:cpu ~dst:mem ~latency_ns:500.0 4.0;
      ];
    uc 3 "music"
      [
        Flow.v ~src:disk ~dst:mem ~service:Flow.Best_effort 12.0;
        Flow.v ~src:mem ~dst:audio ~latency_ns:900.0 3.0;
        Flow.v ~src:cpu ~dst:mem ~latency_ns:900.0 1.0;
      ];
    uc 4 "standby"
      [
        Flow.v ~src:modem ~dst:cpu ~latency_ns:900.0 0.5;
        Flow.v ~src:cpu ~dst:mem ~latency_ns:900.0 0.5;
      ];
  ]

let fig4_spec () =
  let params = { Synthetic.spread_params with flows_lo = 10; flows_hi = 20 } in
  let base = Synthetic.generate ~seed:4 ~params ~use_cases:8 in
  {
    Noc_core.Design_flow.name = "fig4";
    use_cases = base;
    parallel = [ [ 0; 1; 2 ]; [ 3; 4 ] ];
    smooth = [ (5, 6) ];
  }
