module J = Noc_export.Json
module Mesh = Noc_arch.Mesh

let design d = Noc_export.Design_export.design_to_string d

let points points =
  let point p =
    let open Noc_power.Design_space in
    J.Obj
      [
        ("topology", J.String (match p.topology with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus"));
        ("slots", J.Int p.slots);
        ("freq_mhz", J.Float p.freq_mhz);
        ("switches", (match p.switches with Some s -> J.Int s | None -> J.Null));
        ("area_mm2", (match p.area_mm2 with Some a -> J.Float a | None -> J.Null));
        ("power_mw", (match p.power_mw with Some w -> J.Float w | None -> J.Null));
        ("start", J.String (match p.start with Warm -> "warm" | Cold -> "cold"));
      ]
  in
  J.to_string ~indent:2 (J.Obj [ ("points", J.List (List.map point points)) ])

let lint report = Noc_analysis.Analyzer.render_json report ^ "\n"

let certificate cert =
  J.to_string ~indent:2 (Noc_analysis.Certify.to_json cert) ^ "\n"
