module Config = Noc_arch.Noc_config
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module Reconfig = Noc_core.Reconfig
module Refine = Noc_core.Refine
module DF = Noc_core.Design_flow
module Table = Noc_util.Ascii_table

type slot_row = {
  slots : int;
  ours_switches : int option;
  wc_switches : int option;
}

let sp10 () = Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:10

let singleton_groups ucs = List.mapi (fun i _ -> [ i ]) ucs

let switches_of = function Ok m -> Some (Mapping.switch_count m) | Error _ -> None

let slot_table_sweep ?(sizes = [ 8; 16; 32; 64 ]) () =
  let ucs = sp10 () in
  List.map
    (fun slots ->
      let config = { Config.default with slots } in
      {
        slots;
        ours_switches =
          switches_of (Mapping.map_design ~config ~groups:(singleton_groups ucs) ucs);
        wc_switches = switches_of (WC.map_design ~config ucs);
      })
    sizes

type grouping_row = {
  label : string;
  switches : int option;
  worst_reconfig_writes : int option;
}

let grouping_effect () =
  let ucs = Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:5 in
  let n = List.length ucs in
  let run label groups =
    match Mapping.map_design ~groups ucs with
    | Error _ -> { label; switches = None; worst_reconfig_writes = None }
    | Ok m ->
      {
        label;
        switches = Some (Mapping.switch_count m);
        worst_reconfig_writes =
          Option.map (fun c -> c.Reconfig.slot_writes) (Reconfig.worst m);
      }
  in
  [
    run "no groups (fully re-configurable)" (List.init n (fun i -> [ i ]));
    run "pairs share a configuration" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ];
    run "one group (never re-configured)" [ List.init n (fun i -> i) ];
  ]

type routing_row = {
  label : string;
  switches : int option;
  weighted_hops : float option;
}

let routing_effect () =
  (* Scarce slots (8 per table) make alignment and detours decisive:
     min-cost routing can steer around hot regions, XY cannot. *)
  let ucs = sp10 () in
  let run label routing =
    let config = { Config.default with routing; slots = 8 } in
    match Mapping.map_design ~config ~groups:(singleton_groups ucs) ucs with
    | Error _ -> { label; switches = None; weighted_hops = None }
    | Ok m ->
      {
        label;
        switches = Some (Mapping.switch_count m);
        weighted_hops = Some (Mapping.total_weighted_hops m);
      }
  in
  [ run "min-cost path selection" Config.Min_cost; run "XY routing" Config.Xy ]

type refinement_row = {
  label : string;
  weighted_hops : float option;
  switches : int option;
}

let refinement_effect () =
  let ucs = Soc_designs.d1 () in
  (* Spreading the cores out gives the refinement something to move. *)
  let config = { Config.default with nis_per_switch = 3 } in
  match Mapping.map_design ~config ~groups:(singleton_groups ucs) ucs with
  | Error _ ->
    [ { label = "greedy mapping failed"; weighted_hops = None; switches = None } ]
  | Ok m ->
    let row label hops =
      { label; weighted_hops = Some hops; switches = Some (Mapping.switch_count m) }
    in
    let sa = Refine.anneal m ucs in
    let tb = Refine.tabu m ucs in
    [
      row "greedy only" (Mapping.total_weighted_hops m);
      row "+ simulated annealing" sa.Refine.final_cost;
      row "+ tabu search" tb.Refine.final_cost;
    ]

(* --- rendering ---------------------------------------------------------- *)

let string_of_opt_int = function Some n -> string_of_int n | None -> "infeasible"

let print_slot_sweep (rows : slot_row list) =
  print_endline "Ablation: TDMA slot-table size (Sp-10)";
  let t = Table.create ~header:[ "slots"; "ours (switches)"; "WC (switches)" ] in
  List.iter
    (fun (r : slot_row) ->
      Table.add_row t
        [ string_of_int r.slots; string_of_opt_int r.ours_switches; string_of_opt_int r.wc_switches ])
    rows;
  Table.print t;
  print_newline ()

let print_grouping (rows : grouping_row list) =
  print_endline "Ablation: smooth-switching groups (Sp-5)";
  let t = Table.create ~header:[ "grouping"; "switches"; "worst switching (slot writes)" ] in
  List.iter
    (fun (r : grouping_row) ->
      Table.add_row t
        [
          r.label;
          string_of_opt_int r.switches;
          (match r.worst_reconfig_writes with Some w -> string_of_int w | None -> "-");
        ])
    rows;
  Table.print t;
  print_newline ()

let print_routing (rows : routing_row list) =
  print_endline "Ablation: path selection policy (Sp-10, 8-slot tables)";
  let t = Table.create ~header:[ "routing"; "switches"; "bandwidth-weighted hops" ] in
  List.iter
    (fun (r : routing_row) ->
      Table.add_row t
        [
          r.label;
          string_of_opt_int r.switches;
          (match r.weighted_hops with Some h -> Printf.sprintf "%.0f" h | None -> "-");
        ])
    rows;
  Table.print t;
  print_newline ()

let print_refinement (rows : refinement_row list) =
  print_endline "Ablation: placement refinement (D1, 3 NIs/switch)";
  let t = Table.create ~header:[ "refinement"; "bandwidth-weighted hops" ] in
  List.iter
    (fun (r : refinement_row) ->
      Table.add_row t
        [
          r.label;
          (match r.weighted_hops with Some h -> Printf.sprintf "%.0f" h | None -> "-");
        ])
    rows;
  Table.print t;
  print_newline ()

let print_all () =
  print_slot_sweep (slot_table_sweep ());
  print_grouping (grouping_effect ());
  print_routing (routing_effect ());
  print_refinement (refinement_effect ())
