(** Graphviz DOT views of a completed design.

    Two pictures a NoC designer actually looks at: the topology with
    the core placement, and one use-case's configuration with links
    coloured by slot utilization. *)

val topology : Noc_core.Mapping.t -> string
(** The switch grid with each switch labelled by the cores placed on
    it.  Renders with [dot -Tsvg] (uses [neato]-friendly positions). *)

val use_case : Noc_core.Mapping.t -> use_case:int -> string
(** One use-case's configuration: inter-switch links weighted and
    coloured by their TDMA slot utilization in that use-case, plus the
    connection list in the label.
    @raise Invalid_argument on an out-of-range use-case id. *)
