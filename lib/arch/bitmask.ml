(* Fixed-size cyclic bitset over [0, slots).  Bits live in 62-bit
   words so the sign bit of the native int is never touched; the
   common TDMA table sizes (<= 62 slots) fit one word, where cyclic
   rotate-and-intersect is three shifts and two ands. *)

let word_bits = 62

type t = { slots : int; words : int array }

let full_word width = (1 lsl width) - 1

let create ~slots ~full =
  if slots <= 0 then invalid_arg "Bitmask.create: need positive slot count";
  let n = (slots + word_bits - 1) / word_bits in
  let words = Array.make n 0 in
  if full then
    for i = 0 to n - 1 do
      words.(i) <- full_word (min word_bits (slots - (i * word_bits)))
    done;
  { slots; words }

let slots t = t.slots

let copy t = { t with words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.slots then invalid_arg "Bitmask: index out of range"

let mem t i =
  check_index t i;
  (t.words.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

let set t i =
  check_index t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits))

let clear t i =
  check_index t i;
  let w = i / word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod word_bits))

let count t =
  let total = ref 0 in
  Array.iter
    (fun w ->
      let w = ref w in
      while !w <> 0 do
        w := !w land (!w - 1);
        incr total
      done)
    t.words;
  !total

let is_empty t = Array.for_all (( = ) 0) t.words

(* [into := into intersect rot(t, shift)] where bit [i] of the rotation
   is bit [(i + shift) mod slots] of [t] — exactly the alignment of a
   TDMA slot table seen [shift] hops downstream. *)
let inter_rotated ~into t ~shift =
  if into.slots <> t.slots then invalid_arg "Bitmask.inter_rotated: size mismatch";
  let s = t.slots in
  let h = ((shift mod s) + s) mod s in
  if Array.length t.words = 1 then begin
    let m = t.words.(0) in
    let rot = if h = 0 then m else ((m lsr h) lor (m lsl (s - h))) land full_word s in
    into.words.(0) <- into.words.(0) land rot
  end
  else
    for i = 0 to s - 1 do
      if mem into i && not (mem t ((i + h) mod s)) then clear into i
    done

let next_set_from t i =
  if i < 0 then invalid_arg "Bitmask.next_set_from: negative index";
  if i >= t.slots then None
  else begin
    let found = ref None in
    let w = ref (i / word_bits) in
    let n = Array.length t.words in
    (* mask off the bits below [i] in its word, then scan whole words *)
    let bits = ref (t.words.(!w) land lnot ((1 lsl (i mod word_bits)) - 1)) in
    while !found = None && !w < n do
      if !bits <> 0 then begin
        (* index of the lowest set bit *)
        let b = !bits land -(!bits) in
        let rec log2 b acc = if b = 1 then acc else log2 (b lsr 1) (acc + 1) in
        found := Some ((!w * word_bits) + log2 b 0)
      end
      else begin
        incr w;
        if !w < n then bits := t.words.(!w)
      end
    done;
    !found
  end

let to_list t =
  let acc = ref [] in
  for i = t.slots - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let pp ppf t =
  for i = 0 to t.slots - 1 do
    Format.pp_print_char ppf (if mem t i then '1' else '.')
  done
