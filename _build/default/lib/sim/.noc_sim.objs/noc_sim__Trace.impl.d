lib/sim/trace.ml: List Noc_util
