let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let clamp_int ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let round_to ~digits x =
  let scale = 10.0 ** float_of_int digits in
  Float.round (x *. scale) /. scale

let percent ~part ~whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let approx_equal ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let linspace ~lo ~hi ~n =
  if n < 2 then invalid_arg "Numeric.linspace: need n >= 2";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  List.init n (fun i -> lo +. (float_of_int i *. step))
