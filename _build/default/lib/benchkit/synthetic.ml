module Rng = Noc_util.Rng
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

type cluster = {
  label : string;
  weight : float;
  bw_lo : Noc_util.Units.bandwidth;
  bw_hi : Noc_util.Units.bandwidth;
  latency_lo_ns : Noc_util.Units.latency option;
  latency_hi_ns : Noc_util.Units.latency option;
}

type pattern =
  | Spread
  | Bottleneck of {
      hotspots : int;
      fraction : float;
    }

type params = {
  cores : int;
  flows_lo : int;
  flows_hi : int;
  clusters : cluster list;
  pattern : pattern;
  activity_lo : float;
  activity_hi : float;
}

let default_clusters =
  [
    { label = "hd-video"; weight = 0.08; bw_lo = 150.0; bw_hi = 300.0; latency_lo_ns = None; latency_hi_ns = None };
    { label = "sd-video"; weight = 0.22; bw_lo = 30.0; bw_hi = 70.0; latency_lo_ns = None; latency_hi_ns = None };
    { label = "audio"; weight = 0.40; bw_lo = 2.0; bw_hi = 8.0; latency_lo_ns = None; latency_hi_ns = None };
    { label = "control"; weight = 0.30; bw_lo = 0.5; bw_hi = 2.0; latency_lo_ns = Some 400.0; latency_hi_ns = Some 900.0 };
  ]

let spread_params =
  {
    cores = 20;
    flows_lo = 60;
    flows_hi = 100;
    clusters = default_clusters;
    pattern = Spread;
    activity_lo = 0.35;
    activity_hi = 1.0;
  }

let bottleneck_params =
  {
    cores = 20;
    flows_lo = 60;
    flows_hi = 100;
    clusters = default_clusters;
    pattern = Bottleneck { hotspots = 1; fraction = 0.6 };
    activity_lo = 0.35;
    activity_hi = 1.0;
  }

let pick_cluster rng clusters =
  let total = List.fold_left (fun acc c -> acc +. c.weight) 0.0 clusters in
  let x = Rng.float rng total in
  let rec go acc = function
    | [] -> invalid_arg "Synthetic: no clusters"
    | [ c ] -> c
    | c :: rest -> if x < acc +. c.weight then c else go (acc +. c.weight) rest
  in
  go 0.0 clusters

let draw_flow rng params used =
  let cores = params.cores in
  (* Draw an unused ordered pair following the pattern. *)
  let rec pair tries =
    if tries > 500 then None
    else begin
      let s, d =
        match params.pattern with
        | Spread ->
          let s = Rng.int rng cores in
          let d = (s + 1 + Rng.int rng (cores - 1)) mod cores in
          (s, d)
        | Bottleneck { hotspots; fraction } ->
          if Rng.chance rng fraction then begin
            let hot = Rng.int rng (min hotspots cores) in
            let other = hotspots + Rng.int rng (max 1 (cores - hotspots)) in
            let other = min other (cores - 1) in
            (* Shared memory sees both reads (hot as source) and
               writes (hot as destination). *)
            if Rng.chance rng 0.5 then (other, hot) else (hot, other)
          end
          else begin
            let s = Rng.int rng cores in
            let d = (s + 1 + Rng.int rng (cores - 1)) mod cores in
            (s, d)
          end
      in
      if s = d || Hashtbl.mem used (s, d) then pair (tries + 1) else Some (s, d)
    end
  in
  match pair 0 with
  | None -> None
  | Some (s, d) ->
    Hashtbl.add used (s, d) ();
    let c = pick_cluster rng params.clusters in
    let bw = Rng.float_in rng c.bw_lo c.bw_hi in
    let latency_ns =
      match (c.latency_lo_ns, c.latency_hi_ns) with
      | Some lo, Some hi -> Some (Rng.float_in rng lo hi)
      | Some lo, None -> Some lo
      | None, Some hi -> Some hi
      | None, None -> None
    in
    Some (Flow.v ?latency_ns ~src:s ~dst:d bw)

let scale_flow factor f =
  Flow.v ~latency_ns:f.Flow.latency_ns ~service:f.Flow.service ~src:f.Flow.src ~dst:f.Flow.dst
    (f.Flow.bandwidth *. factor)

let draw_activity rng params =
  if params.activity_lo > params.activity_hi || params.activity_lo <= 0.0 then
    invalid_arg "Synthetic: bad activity range";
  Rng.float_in rng params.activity_lo params.activity_hi

let generate_one ~rng ~params ~id ~name =
  if params.cores < 2 then invalid_arg "Synthetic: need at least two cores";
  if params.flows_lo > params.flows_hi || params.flows_lo < 1 then
    invalid_arg "Synthetic: bad flow count range";
  let n = Rng.int_in rng params.flows_lo params.flows_hi in
  let activity = draw_activity rng params in
  let used = Hashtbl.create (2 * n) in
  let rec draw k acc =
    if k = 0 then acc
    else
      match draw_flow rng params used with
      | Some f -> draw (k - 1) (scale_flow activity f :: acc)
      | None -> acc (* pair space exhausted: accept a denser use-case *)
  in
  Use_case.create ~id ~name ~cores:params.cores (draw n [])

let generate ~seed ~params ~use_cases =
  if use_cases < 1 then invalid_arg "Synthetic.generate: need at least one use-case";
  let rng = Rng.create ~seed in
  List.init use_cases (fun i ->
      generate_one ~rng ~params ~id:i ~name:(Printf.sprintf "u%d" i))

let generate_family ~seed ~params ~use_cases ~similarity =
  if use_cases < 1 then invalid_arg "Synthetic.generate_family: need at least one use-case";
  if similarity < 0.0 || similarity > 1.0 then
    invalid_arg "Synthetic.generate_family: similarity must be in [0,1]";
  let rng = Rng.create ~seed in
  (* The shared base pattern is drawn at unit activity; every family
     member (including the first) then applies its own activity. *)
  let raw_params = { params with activity_lo = 1.0; activity_hi = 1.0 } in
  let base = generate_one ~rng ~params:raw_params ~id:0 ~name:"u0" in
  let member i =
    let activity = draw_activity rng params in
    let flows =
      if i = 0 then base.Use_case.flows
      else begin
        let kept =
          List.filter_map
            (fun f ->
              if Rng.chance rng similarity then
                Some (scale_flow (Rng.float_in rng 0.75 1.25) f)
              else None)
            base.Use_case.flows
        in
        let used = Hashtbl.create 64 in
        List.iter (fun f -> Hashtbl.add used (Flow.pair f) ()) kept;
        let target = Rng.int_in rng params.flows_lo params.flows_hi in
        let rec fresh k acc =
          if k <= 0 then acc
          else
            match draw_flow rng raw_params used with
            | Some f -> fresh (k - 1) (f :: acc)
            | None -> acc
        in
        fresh (target - List.length kept) kept
      end
    in
    Use_case.create ~id:i ~name:(Printf.sprintf "u%d" i) ~cores:params.cores
      (List.map (scale_flow activity) flows)
  in
  List.init use_cases member
