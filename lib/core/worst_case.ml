module Use_case = Noc_traffic.Use_case
module Flow = Noc_traffic.Flow

let synthetic use_cases =
  match use_cases with
  | [] -> invalid_arg "Worst_case.synthetic: no use-cases"
  | first :: _ ->
    let cores = first.Use_case.cores in
    List.iter
      (fun u ->
        if u.Use_case.cores <> cores then
          invalid_arg "Worst_case.synthetic: use-cases disagree on core count")
      use_cases;
    let tbl : (int * int, Flow.t) Hashtbl.t = Hashtbl.create 128 in
    List.iter
      (fun u ->
        List.iter
          (fun f ->
            let key = Flow.pair f in
            match Hashtbl.find_opt tbl key with
            | None -> Hashtbl.add tbl key f
            | Some g ->
              Hashtbl.replace tbl key
                (Flow.v ~src:f.Flow.src ~dst:f.Flow.dst
                   ~latency_ns:(Float.min f.Flow.latency_ns g.Flow.latency_ns)
                   (Float.max f.Flow.bandwidth g.Flow.bandwidth)))
          u.Use_case.flows)
      use_cases;
    let flows = Hashtbl.fold (fun _ f acc -> f :: acc) tbl [] in
    let flows = List.sort (fun a b -> compare (Flow.pair a) (Flow.pair b)) flows in
    Use_case.create ~id:0 ~name:"worst-case" ~cores flows

let map_design ?config ?parallel use_cases =
  let wc = synthetic use_cases in
  let cache = Mapping_cache.design_cache ?config ~groups:[ [ 0 ] ] [ wc ] in
  Mapping.map_design ?config ?parallel ?cache ~groups:[ [ 0 ] ] [ wc ]

let overspecification use_cases =
  let wc = synthetic use_cases in
  let peak =
    List.fold_left (fun acc u -> Float.max acc (Use_case.total_bandwidth u)) 0.0 use_cases
  in
  if peak = 0.0 then 1.0 else Use_case.total_bandwidth wc /. peak
