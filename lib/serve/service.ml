module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module DF = Noc_core.Design_flow
module DS = Noc_power.Design_space
module Spec_parser = Noc_core.Spec_parser
module Mapping_cache = Noc_core.Mapping_cache
module Metrics = Noc_obs.Metrics

let m_merged_points = Metrics.counter "serve.merged_points"

type kind =
  | Map_k of { spec : DF.spec; config : Config.t }
  | Explore_k of {
      all : Noc_traffic.Use_case.t list;
      groups : int list list;
      config : Config.t;
      axes : DS.axes;
    }
  | Lint_k of { doc : Spec_parser.doc; config : Config.t; deep : bool }
  | Certify_k of { spec : DF.spec; config : Config.t }
  | Remap_k of { old_spec : DF.spec; new_spec : DF.spec; config : Config.t }

type job = { key : string; kind : kind }

let key j = j.key

(* The canonical mapping-problem digest of a parsed spec under a
   config (names excluded — see Mapping_cache).  The payload, though,
   embeds design and use-case names, so the single-flight key combines
   this digest with a digest of the canonical spec text: requests
   coalesce when both the problem and its naming agree, never when two
   differently-named specs happen to pose the same problem. *)
let problem_digest ~config spec =
  let all, _compounds, groups = DF.expand spec in
  Mapping_cache.problem_digest ~config ~engine:Noc_core.Mapping.Indexed ~groups all

let text_digest parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* A config-only digest (an empty problem under [config]): folds every
   knob, IEEE-exact, without repeating Mapping_cache's field list. *)
let config_digest config =
  Mapping_cache.problem_digest ~config ~engine:Noc_core.Mapping.Indexed ~groups:[] []

let parse_spec ~name text =
  match Spec_parser.parse ~name text with
  | Ok spec -> Ok spec
  | Error e -> Error (Protocol.Spec_error, Format.asprintf "%a" Spec_parser.pp_error e)

let axes_of ~frequencies ~slot_counts ~torus =
  let base = DS.default_axes in
  {
    DS.frequencies = Option.value frequencies ~default:base.DS.frequencies;
    slot_counts = Option.value slot_counts ~default:base.DS.slot_counts;
    topologies = (if torus then [ Mesh.Mesh; Mesh.Torus ] else base.DS.topologies);
  }

let axes_token (axes : DS.axes) =
  Printf.sprintf "f[%s]s[%s]t[%s]"
    (String.concat "," (List.map (Printf.sprintf "%h") axes.DS.frequencies))
    (String.concat "," (List.map string_of_int axes.DS.slot_counts))
    (String.concat ","
       (List.map (function Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus") axes.DS.topologies))

let prepare (op : Protocol.op) =
  let ( let* ) = Result.bind in
  match op with
  | Protocol.Ping | Protocol.Stats | Protocol.Shutdown ->
    Error (Protocol.Bad_request, "not an executable operation")
  | Protocol.Map { name; spec; config } ->
    let config = Protocol.to_noc_config config in
    let* spec = parse_spec ~name spec in
    let key =
      "map|" ^ problem_digest ~config spec ^ "|" ^ text_digest [ Spec_parser.to_text spec ]
    in
    Ok { key; kind = Map_k { spec; config } }
  | Protocol.Certify { name; spec; config } ->
    let config = Protocol.to_noc_config config in
    let* spec = parse_spec ~name spec in
    let key =
      "certify|" ^ problem_digest ~config spec ^ "|" ^ text_digest [ Spec_parser.to_text spec ]
    in
    Ok { key; kind = Certify_k { spec; config } }
  | Protocol.Explore { name; spec; config; frequencies; slot_counts; torus } ->
    let config = Protocol.to_noc_config config in
    let* spec = parse_spec ~name spec in
    let axes = axes_of ~frequencies ~slot_counts ~torus in
    let all, _compounds, groups = DF.expand spec in
    let key =
      "explore|" ^ problem_digest ~config spec ^ "|"
      ^ text_digest [ Spec_parser.to_text spec ]
      ^ "|" ^ axes_token axes
    in
    Ok { key; kind = Explore_k { all; groups; config; axes } }
  | Protocol.Lint { name; spec; config; deep } ->
    let config = Protocol.to_noc_config config in
    let doc = Spec_parser.parse_doc ~name spec in
    (* Lint diagnostics carry source lines, so the key digests the raw
       text, not a canonical rendering. *)
    let key =
      Printf.sprintf "lint|%b|%s|%s" deep (config_digest config) (text_digest [ name; spec ])
    in
    Ok { key; kind = Lint_k { doc; config; deep } }
  | Protocol.Remap { from_name; from_spec; to_name; to_spec; config } ->
    let config = Protocol.to_noc_config config in
    let* old_spec = parse_spec ~name:from_name from_spec in
    let* new_spec = parse_spec ~name:to_name to_spec in
    let key =
      "remap|" ^ problem_digest ~config old_spec ^ "|" ^ problem_digest ~config new_spec ^ "|"
      ^ text_digest [ Spec_parser.to_text old_spec; Spec_parser.to_text new_spec ]
    in
    Ok { key; kind = Remap_k { old_spec; new_spec; config } }

(* Memoized [prepare]: under coalescing load the same op (byte-equal
   spec text and knobs) arrives over and over, and parsing plus
   canonically digesting a large spec per request was measured to
   dominate the warm-path service time — it scales per request where
   everything downstream scales per distinct key.  The memo key is a
   digest of the marshalled op (in-process only, so representation
   stability across builds is irrelevant); jobs are immutable, so
   sharing the prepared value is safe.  Bounded by wholesale reset —
   the working set of distinct ops is tiny. *)
let memo : (string, (job, Protocol.error_code * string) result) Hashtbl.t = Hashtbl.create 64
let memo_lock = Mutex.create ()
let memo_capacity = 512
let m_memo_hits = Metrics.counter "serve.prepare_memo_hits"

let prepare_cached op =
  let k = Digest.string (Marshal.to_string op []) in
  Mutex.lock memo_lock;
  match Hashtbl.find_opt memo k with
  | Some r ->
    Metrics.incr m_memo_hits;
    Mutex.unlock memo_lock;
    r
  | None ->
    Mutex.unlock memo_lock;
    let r = prepare op in
    Mutex.lock memo_lock;
    if Hashtbl.length memo >= memo_capacity then Hashtbl.reset memo;
    Hashtbl.replace memo k r;
    Mutex.unlock memo_lock;
    r

(* --- coalescing ---------------------------------------------------------- *)

type plan = { unique : job array; assign : int array; coalesced : int }

let plan jobs =
  let seen : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let unique = ref [] and n_unique = ref 0 in
  let assign =
    Array.map
      (fun j ->
        match Hashtbl.find_opt seen j.key with
        | Some slot -> slot
        | None ->
          let slot = !n_unique in
          Hashtbl.add seen j.key slot;
          unique := j :: !unique;
          incr n_unique;
          slot)
      jobs
  in
  {
    unique = Array.of_list (List.rev !unique);
    assign;
    coalesced = Array.length jobs - !n_unique;
  }

(* --- explore grid merging ------------------------------------------------ *)

(* A sweep point's identity is the problem digest with the point's
   frequency, slot count and topology folded into the config — exactly
   the digest keying its growth attempts in the shared cache. *)
type shared_point = {
  p_all : Noc_traffic.Use_case.t list;
  p_groups : int list list;
  p_config : Config.t;
  p_freq : float;
  p_slots : int;
  p_topology : Mesh.kind;
}

let explore_points jobs =
  (* (point digest -> first-seen shared_point, #distinct jobs listing it) *)
  let tbl : (string, shared_point * int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun j ->
      match j.kind with
      | Explore_k { all; groups; config; axes } ->
        List.iter
          (fun topology ->
            List.iter
              (fun slots ->
                List.iter
                  (fun freq ->
                    let pc =
                      { config with Config.freq_mhz = freq; slots; topology }
                    in
                    let digest =
                      Mapping_cache.problem_digest ~config:pc
                        ~engine:Noc_core.Mapping.Indexed ~groups all
                    in
                    match Hashtbl.find_opt tbl digest with
                    | Some (sp, count) -> Hashtbl.replace tbl digest (sp, count + 1)
                    | None ->
                      Hashtbl.add tbl digest
                        ( {
                            p_all = all;
                            p_groups = groups;
                            p_config = config;
                            p_freq = freq;
                            p_slots = slots;
                            p_topology = topology;
                          },
                          1 ))
                  axes.DS.frequencies)
              axes.DS.slot_counts)
          axes.DS.topologies
      | _ -> ())
    jobs;
  let shared = ref [] in
  Hashtbl.iter (fun _ (sp, count) -> if count >= 2 then shared := sp :: !shared) tbl;
  (* Deterministic order for the pre-warm fan-out. *)
  List.sort
    (fun a b ->
      compare
        (a.p_topology, a.p_slots, a.p_freq)
        (b.p_topology, b.p_slots, b.p_freq))
    !shared

let merge_explore_points jobs = List.length (explore_points jobs)

(* Solve one shared point cold: the growth attempts land in the shared
   Mapping_cache, so every explore job of the batch replays them as
   hits.  Results are byte-identical either way (the cache identity is
   pinned repo-wide); merging only removes duplicate work. *)
let prewarm_point sp =
  let axes =
    {
      DS.frequencies = [ sp.p_freq ];
      slot_counts = [ sp.p_slots ];
      topologies = [ sp.p_topology ];
    }
  in
  ignore
    (DS.explore ~axes ~warm:false ~config:sp.p_config ~groups:sp.p_groups sp.p_all)

(* --- execution ----------------------------------------------------------- *)

let execute j =
  match j.kind with
  | Map_k { spec; config } -> (
    match DF.run ~config spec with
    | Ok d -> Ok (Payload.design d)
    | Error msg -> Error msg)
  | Explore_k { all; groups; config; axes } ->
    Ok (Payload.points (DS.explore ~axes ~config ~groups all))
  | Lint_k { doc; config; deep } ->
    Ok (Payload.lint (Noc_analysis.Analyzer.analyze_doc ~config ~deep doc))
  | Certify_k { spec; config } -> (
    match DF.run ~config spec with
    | Ok d ->
      Ok
        (Payload.certificate
           (Noc_analysis.Certify.certify ~name:spec.DF.name d.DF.mapping d.DF.all_use_cases))
    | Error msg -> Error msg)
  | Remap_k { old_spec; new_spec; config } -> (
    match DF.run ~config old_spec with
    | Error msg -> Error msg
    | Ok old -> (
      match Noc_core.Remap.remap ~config ~old new_spec with
      | Ok o -> Ok (Payload.design o.Noc_core.Remap.design)
      | Error msg -> Error msg))

let safe_execute j =
  try execute j with e -> Error (Printf.sprintf "internal error: %s" (Printexc.to_string e))

let execute_batch ?jobs js =
  (* Sweep-point batching: overlapping explore grids contribute their
     shared points to one deduplicated pre-pass.  Pointless when the
     cache is off — nothing would carry the pre-solved results to the
     jobs. *)
  (if Mapping_cache.enabled () then
     match explore_points js with
     | [] -> ()
     | shared ->
       Metrics.incr ~by:(List.length shared) m_merged_points;
       ignore (Noc_util.Domain_pool.map ?jobs prewarm_point shared));
  Array.of_list (Noc_util.Domain_pool.map ?jobs safe_execute (Array.to_list js))
