type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 core step: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (u /. 9007199254740992.0)

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else float t 1.0 < p

let gaussian t ~mean ~stddev =
  (* Box-Muller; guard against log 0 by redrawing. *)
  let rec u1 () =
    let x = float t 1.0 in
    if x > 0.0 then x else u1 ()
  in
  let r = sqrt (-2.0 *. log (u1 ())) in
  let theta = 2.0 *. Float.pi *. float t 1.0 in
  mean +. (stddev *. r *. cos theta)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t xs = pick t (Array.of_list xs)

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Reservoir-free selection sampling (Knuth 3.4.2 S): O(n), ordered. *)
  let rec loop i chosen acc =
    if chosen = k then List.rev acc
    else if n - i = k - chosen then
      (* must take everything that remains *)
      loop (i + 1) (chosen + 1) (i :: acc)
    else if chance t (float_of_int (k - chosen) /. float_of_int (n - i)) then
      loop (i + 1) (chosen + 1) (i :: acc)
    else loop (i + 1) chosen acc
  in
  loop 0 0 []
