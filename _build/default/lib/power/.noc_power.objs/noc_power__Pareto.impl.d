lib/power/pareto.ml: Area_model List Noc_arch Noc_core Noc_util
