(** The full analytic report of a completed design.

    Everything the designer reads after the flow finishes: the NoC and
    its cost (switches, area, power), every connection's guarantee and
    its slack against the requirement, per-use-case link pressure, NI
    buffer budgets, the worst use-case switching, and the verification
    verdict — all derived analytically (no simulation). *)

type flow_line = {
  use_case : int;
  use_case_name : string;
  src : int;
  dst : int;
  service : Noc_arch.Route.service;
  bandwidth_mbps : float;       (** required (GT) / offered (BE) *)
  granted_mbps : float;         (** reserved slot bandwidth; 0 for BE *)
  hops : int;
  latency_bound_ns : float;     (** analytic worst case; infinity for BE *)
  latency_req_ns : float;       (** the constraint; infinity if none *)
  latency_slack_ns : float option;
      (** requirement minus bound, when a requirement exists *)
}

type use_case_line = {
  id : int;
  name : string;
  flows : int;
  total_mbps : float;
  mean_link_utilization : float;
  max_link_utilization : float;
}

type dvfs_section = {
  f_design_mhz : float;   (** largest per-use-case minimum frequency *)
  epochs : (string * float) list;  (** use-case name, minimum MHz *)
  savings_pct : float;    (** DVS/DFS saving vs always running at f_design *)
}

type t = {
  design_name : string;
  switches : int;
  mesh : string;                  (** rendered topology description *)
  area_mm2 : float;
  power_mw : float;
  groups : int list list;
  flow_lines : flow_line list;
  use_case_lines : use_case_line list;
  buffer_words_per_core : int array;
  buffer_words_total : int;
  worst_switching : Noc_core.Reconfig.cost option;
  dvfs : dvfs_section option;
  verified : bool;
  checks : int;
  metrics : (string * float) list;
      (** observability snapshot at build time: nonzero counters and
          gauges from the process-wide registry ([Noc_obs.Metrics]) —
          cache hits, prunes, pool steals of the run that produced the
          design.  Purely informational; exporters ignore it. *)
}

val build : ?dvfs:bool -> Noc_core.Design_flow.t -> t
(** Assemble the report from a completed flow.  [dvfs] (default true)
    additionally searches each use-case's minimum feasible frequency on
    the designed NoC and reports the DVS/DFS saving (paper §6.4). *)

val min_slack_ns : t -> float option
(** Tightest latency slack across all constrained connections — the
    design's critical margin.  [None] if no connection is latency
    constrained. *)

val print : t -> unit
(** Render as tables on stdout. *)
