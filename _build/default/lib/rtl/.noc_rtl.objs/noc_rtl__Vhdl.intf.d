lib/rtl/vhdl.mli:
