lib/core/mapping.ml: Array Float Format List Noc_arch Noc_graph Noc_traffic Path_select Printf Resources
