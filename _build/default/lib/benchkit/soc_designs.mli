(** Models of the paper's four SoC benchmarks and its worked examples.

    The real Viper2/TV-processor traffic tables are proprietary; these
    are parameterised synthetic stand-ins following the published
    structure (see DESIGN.md, "Substitutions"): D1/D2 are set-top boxes
    whose traffic converges on an external memory (bottleneck), D3/D4
    are streaming TV processors with distributed local memories
    (spread).  All are deterministic. *)

val viper_fragment_1 : Noc_traffic.Use_case.t
(** Figure 2(a): a 7-core filter pipeline fragment of the Viper2
    set-top box (bandwidths as published; topology reconstructed). *)

val viper_fragment_2 : Noc_traffic.Use_case.t
(** Figure 2(b): the second use-case of the same fragment. *)

val example1_use_cases : Noc_traffic.Use_case.t list
(** Figure 5 / Example 1: two 4-core use-cases whose largest flow is
    C3->C4 at 100 MB/s. *)

val d1 : unit -> Noc_traffic.Use_case.t list
(** Set-top box SoC with 4 use-cases (paper's D1, after [11]):
    18 cores, external-memory bottleneck. *)

val d2 : unit -> Noc_traffic.Use_case.t list
(** Set-top box SoC scaled to 20 use-cases (paper's D2). *)

val d3 : unit -> Noc_traffic.Use_case.t list
(** TV-processor SoC with 8 use-cases (paper's D3): 24 cores,
    streaming/spread traffic. *)

val d4 : unit -> Noc_traffic.Use_case.t list
(** TV-processor SoC scaled to 20 use-cases (paper's D4). *)

val all_designs : unit -> (string * Noc_traffic.Use_case.t list) list
(** [("D1", d1); ...] in paper order. *)

val mobile_phone : unit -> Noc_traffic.Use_case.t list
(** A smaller hand-written SoC outside the paper's benchmark set, used
    by the documentation and as an extra integration fixture: 8 cores
    (modem, apps CPU, memory, camera ISP, display, audio, crypto,
    storage) with five use-cases — call, browsing, camera, music
    (background-heavy, best-effort bulk), standby. *)

val fig4_spec : unit -> Noc_core.Design_flow.spec
(** A design-flow spec reproducing the switching-graph structure of
    Figure 4: eight base use-cases U1..U8 (here ids 0..7), parallel
    sets {U1,U2,U3} and {U4,U5}, and smooth switching between U6 and
    U7.  Algorithm 1 must find the four groups shown in the figure. *)
