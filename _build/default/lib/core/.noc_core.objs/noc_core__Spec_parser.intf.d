lib/core/spec_parser.mli: Design_flow Format
