module Metrics = Noc_obs.Metrics
module Clock = Noc_obs.Clock

type config = {
  socket_path : string;
  max_queue : int;
  max_inflight : int;
  linger_ms : float;
  retry_after_ms : int;
  jobs : int option;
  install_signals : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    max_queue = 64;
    max_inflight = 8;
    linger_ms = 0.;
    retry_after_ms = 50;
    jobs = None;
    install_signals = false;
  }

let m_requests = Metrics.counter "serve.requests"
let m_responses = Metrics.counter "serve.responses"
let m_coalesced = Metrics.counter "serve.coalesced"
let m_shed = Metrics.counter "serve.shed"
let m_batches = Metrics.counter "serve.batches"
let g_clients = Metrics.gauge "serve.clients"
let g_queue_depth = Metrics.gauge "serve.queue_depth"
let h_batch_size = Metrics.histogram "serve.batch_size"
let h_latency = Metrics.histogram "serve.latency_ns"

(* Set from signal handlers and other domains; polled by the loop. *)
let stop_flag = Atomic.make false
let stop () = Atomic.set stop_flag true

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;             (* bytes queued for the socket *)
  mutable out_pos : int;         (* prefix of [outbuf] already written *)
  mutable handshaken : bool;
  mutable inflight : int;        (* admitted, response not yet queued *)
  mutable reject_after_flush : bool;
}

let pending_out c = Buffer.length c.outbuf - c.out_pos

type pending = {
  p_client : client;
  p_id : int;
  p_job : Service.job;
  p_admitted : float;  (* Clock.wall seconds *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  clients : (Unix.file_descr, client) Hashtbl.t;
  queue : pending Queue.t;
  mutable draining : bool;
  mutable linger_deadline : float option;
}

let set_gauges t =
  Metrics.set g_clients (float_of_int (Hashtbl.length t.clients));
  Metrics.set g_queue_depth (float_of_int (Queue.length t.queue))

let send_to c text = Buffer.add_string c.outbuf text

let respond t c response =
  send_to c (Protocol.encode_response response);
  Metrics.incr m_responses;
  ignore t

let drop_client t c =
  (match Unix.close c.fd with () -> () | exception Unix.Unix_error _ -> ());
  Hashtbl.remove t.clients c.fd;
  set_gauges t

(* --- request admission --------------------------------------------------- *)

let fail ?retry_after_ms ~id code message =
  Protocol.Failure { id; code; message; retry_after_ms }

let stats_payload () = Metrics.render_json (Metrics.snapshot ())

let handle_request t c { Protocol.id; op } =
  Metrics.incr m_requests;
  match op with
  | Protocol.Ping -> respond t c (Protocol.Result { id; payload = "pong"; coalesced = false })
  | Protocol.Stats ->
    respond t c (Protocol.Result { id; payload = stats_payload (); coalesced = false })
  | Protocol.Shutdown ->
    t.draining <- true;
    respond t c (Protocol.Result { id; payload = "draining"; coalesced = false })
  | _ when t.draining ->
    Metrics.incr m_shed;
    respond t c (fail ~id Protocol.Shutting_down "server is draining")
  | _ when c.inflight >= t.cfg.max_inflight ->
    Metrics.incr m_shed;
    respond t c
      (fail ~retry_after_ms:t.cfg.retry_after_ms ~id Protocol.Too_many_inflight
         (Printf.sprintf "client already has %d requests in flight" c.inflight))
  | _ when Queue.length t.queue >= t.cfg.max_queue ->
    Metrics.incr m_shed;
    respond t c
      (fail ~retry_after_ms:t.cfg.retry_after_ms ~id Protocol.Overloaded
         (Printf.sprintf "queue full (%d pending)" t.cfg.max_queue))
  | _ -> (
    match Service.prepare_cached op with
    | Error (code, message) -> respond t c (fail ~id code message)
    | Ok job ->
      c.inflight <- c.inflight + 1;
      Queue.add { p_client = c; p_id = id; p_job = job; p_admitted = Clock.wall () } t.queue;
      if t.linger_deadline = None && t.cfg.linger_ms > 0. then
        t.linger_deadline <- Some (Clock.wall () +. (t.cfg.linger_ms /. 1000.));
      set_gauges t)

let handle_line t c line =
  if String.trim line = "" then ()
  else if not c.handshaken then begin
    match Protocol.check_hello line with
    | Ok () ->
      c.handshaken <- true;
      send_to c (Protocol.hello_ok ())
    | Error message ->
      send_to c (Protocol.hello_reject ~message);
      c.reject_after_flush <- true
  end
  else
    match Protocol.decode_request line with
    | Ok req -> handle_request t c req
    | Error message ->
      (* No id to echo; use -1 so the client can still correlate "my
         last write was garbage". *)
      respond t c (fail ~id:(-1) Protocol.Bad_request message)

(* --- socket plumbing ----------------------------------------------------- *)

let read_chunk = Bytes.create 65536

let drain_lines c =
  (* Split complete lines off the front of [inbuf]. *)
  let text = Buffer.contents c.inbuf in
  let lines = ref [] in
  let start = ref 0 in
  String.iteri (fun i ch -> if ch = '\n' then begin
      lines := String.sub text !start (i - !start) :: !lines;
      start := i + 1
    end) text;
  Buffer.clear c.inbuf;
  Buffer.add_substring c.inbuf text !start (String.length text - !start);
  List.rev !lines

let handle_readable t c =
  match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> drop_client t c
  | n ->
    Buffer.add_subbytes c.inbuf read_chunk 0 n;
    List.iter (handle_line t c) (drain_lines c)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> drop_client t c

let handle_writable t c =
  let len = pending_out c in
  if len > 0 then begin
    (* Copy out one bounded chunk, not the whole backlog: a fan-out of
       large payloads would otherwise re-copy the tail on every
       partial write. *)
    let chunk = Buffer.sub c.outbuf c.out_pos (min len 65536) in
    match Unix.write_substring c.fd chunk 0 (String.length chunk) with
    | n ->
      c.out_pos <- c.out_pos + n;
      if pending_out c = 0 then begin
        Buffer.clear c.outbuf;
        c.out_pos <- 0;
        if c.reject_after_flush then drop_client t c
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> drop_client t c
  end

let accept_clients t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Hashtbl.replace t.clients fd
        {
          fd;
          inbuf = Buffer.create 256;
          outbuf =
            (let b = Buffer.create 1024 in
             Buffer.add_string b (Protocol.greeting ());
             b);
          out_pos = 0;
          handshaken = false;
          inflight = 0;
          reject_after_flush = false;
        };
      go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ();
  set_gauges t

(* --- batch execution ----------------------------------------------------- *)

let execute_queue t =
  let batch = Array.of_seq (Queue.to_seq t.queue) in
  Queue.clear t.queue;
  t.linger_deadline <- None;
  if Array.length batch > 0 then begin
    Metrics.incr m_batches;
    Metrics.observe h_batch_size (float_of_int (Array.length batch));
    let jobs = Array.map (fun p -> p.p_job) batch in
    let plan = Service.plan jobs in
    Metrics.incr ~by:plan.Service.coalesced m_coalesced;
    let results = Service.execute_batch ?jobs:t.cfg.jobs plan.Service.unique in
    (* How many requesters share each unique slot: a slot with >1 is a
       coalesced computation and every fan-out is flagged. *)
    let sharers = Array.make (Array.length plan.Service.unique) 0 in
    Array.iter (fun slot -> sharers.(slot) <- sharers.(slot) + 1) plan.Service.assign;
    (* Escape each distinct payload once; the fan-out then only copies
       bytes (a coalesced design payload can be hundreds of KB). *)
    let escaped =
      Array.map
        (function Ok payload -> Protocol.escape_payload payload | Error _ -> "")
        results
    in
    Array.iteri
      (fun i p ->
        let slot = plan.Service.assign.(i) in
        p.p_client.inflight <- p.p_client.inflight - 1;
        Metrics.observe h_latency ((Clock.wall () -. p.p_admitted) *. 1e9);
        if Hashtbl.mem t.clients p.p_client.fd then
          match results.(slot) with
          | Ok _ ->
            send_to p.p_client
              (Protocol.encode_result_preescaped ~id:p.p_id
                 ~coalesced:(sharers.(slot) > 1) ~escaped_payload:escaped.(slot));
            Metrics.incr m_responses
          | Error message -> respond t p.p_client (fail ~id:p.p_id Protocol.Exec_error message))
      batch;
    set_gauges t
  end

(* --- the loop ------------------------------------------------------------ *)

let bind_socket path =
  (* Refuse to displace a live server; replace a stale socket file. *)
  let live =
    match Unix.socket PF_UNIX SOCK_STREAM 0 with
    | probe -> (
      Fun.protect
        ~finally:(fun () -> try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error _ -> false))
    | exception Unix.Unix_error _ -> false
  in
  if live then Error (Printf.sprintf "%s: a server is already listening" path)
  else begin
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    match Unix.socket PF_UNIX SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd -> (
      match
        Unix.bind fd (ADDR_UNIX path);
        Unix.listen fd 128;
        Unix.set_nonblock fd
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  end

let running = Atomic.make false

let run cfg =
  if Atomic.exchange running true then Error "a server is already running in this process"
  else begin
    Atomic.set stop_flag false;
    let finish r = Atomic.set running false; r in
    match bind_socket cfg.socket_path with
    | Error e -> finish (Error e)
    | Ok listen_fd ->
      (* A client vanishing mid-write must not kill the daemon. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
      if cfg.install_signals then begin
        let handler = Sys.Signal_handle (fun _ -> stop ()) in
        (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ())
      end;
      let t =
        {
          cfg;
          listen_fd;
          clients = Hashtbl.create 16;
          queue = Queue.create ();
          draining = false;
          linger_deadline = None;
        }
      in
      let listen_open = ref true in
      let close_listen () =
        if !listen_open then begin
          listen_open := false;
          (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
        end
      in
      let all_flushed () =
        Hashtbl.fold (fun _ c acc -> acc && pending_out c = 0) t.clients true
      in
      let rec loop () =
        if Atomic.get stop_flag then t.draining <- true;
        if t.draining then close_listen ();
        if t.draining && Queue.is_empty t.queue && all_flushed () then ()
        else begin
          let reads =
            (if !listen_open then [ t.listen_fd ] else [])
            @ Hashtbl.fold (fun fd _ acc -> fd :: acc) t.clients []
          in
          let writes =
            Hashtbl.fold (fun fd c acc -> if pending_out c > 0 then fd :: acc else acc) t.clients []
          in
          let timeout =
            match t.linger_deadline with
            | Some deadline when not (Queue.is_empty t.queue) ->
              Float.max 0.001 (deadline -. Clock.wall ())
            | _ -> if Queue.is_empty t.queue then 0.1 else 0.001
          in
          let readable, writable, _ =
            match Unix.select reads writes [] timeout with
            | r -> r
            | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              if fd = t.listen_fd then accept_clients t
              else
                match Hashtbl.find_opt t.clients fd with
                | Some c -> handle_readable t c
                | None -> ())
            readable;
          let linger_active =
            match t.linger_deadline with
            | Some deadline -> Clock.wall () < deadline
            | None -> false
          in
          if (not (Queue.is_empty t.queue)) && not linger_active then execute_queue t;
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.clients fd with
              | Some c -> handle_writable t c
              | None -> ())
            writable;
          (* A batch may have queued fresh output on fds select never
             reported writable; flush eagerly so responses do not wait
             for the next readiness round. *)
          Hashtbl.iter (fun _ c -> if pending_out c > 0 then handle_writable t c) t.clients;
          loop ()
        end
      in
      loop ();
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) t.clients;
      Hashtbl.reset t.clients;
      set_gauges t;
      close_listen ();
      (* Graceful shutdown folds this process's cache counters into the
         persistent tier before the socket disappears. *)
      Noc_core.Mapping_cache.flush ();
      finish (Ok ())
  end
