module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route

let format_version = 1

let magic = Printf.sprintf "nocmap-mapping %d" format_version

let fl x = Printf.sprintf "%h" x

let routing_token = function Config.Min_cost -> "min-cost" | Config.Xy -> "xy"
let kind_token = function Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus"

let config_line (c : Config.t) =
  Printf.sprintf "config %s %d %d %d %d %d %d %s %s %s %s" (fl c.Config.freq_mhz)
    c.Config.link_width_bits c.Config.slots c.Config.slot_cycles c.Config.nis_per_switch
    (if c.Config.constrain_ni_links then 1 else 0)
    c.Config.max_mesh_dim (routing_token c.Config.routing) (kind_token c.Config.topology)
    (fl c.Config.placement_hw_factor)
    (fl c.Config.placement_spread_factor)

let route_line (r : Route.t) =
  Printf.sprintf "route %d %d %d %d %d %d %s %s %d%s %d%s" r.Route.flow_id r.Route.use_case
    r.Route.src_core r.Route.dst_core r.Route.src_switch r.Route.dst_switch
    (fl r.Route.bandwidth)
    (match r.Route.service with Route.Gt -> "gt" | Route.Be -> "be")
    (List.length r.Route.links)
    (String.concat "" (List.map (Printf.sprintf " %d") r.Route.links))
    (List.length r.Route.slot_starts)
    (String.concat "" (List.map (Printf.sprintf " %d") r.Route.slot_starts))

let state_line s =
  let nis = Resources.ni_budget_snapshot s in
  let res = Resources.reservations s in
  Printf.sprintf "state %d %d%s %d%s" (Resources.use_case s) (Array.length nis)
    (String.concat "" (Array.to_list (Array.map (fun b -> " " ^ fl b) nis)))
    (List.length res)
    (String.concat "" (List.map (fun (l, sl, o) -> Printf.sprintf " %d %d %d" l sl o) res))

(* Only plain grids are representable: [with_express] adds links the
   (kind, width, height) triple cannot reconstruct. *)
let plain_grid mesh =
  Mesh.link_count mesh
  = Mesh.link_count
      (Mesh.create_kind ~kind:(Mesh.kind mesh) ~width:(Mesh.width mesh) ~height:(Mesh.height mesh))

let encode (m : Mapping.t) =
  let mesh = m.Mapping.mesh in
  if not (plain_grid mesh) then None
  else begin
    let b = Buffer.create 4096 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
    line "%s" magic;
    line "%s" (config_line m.Mapping.config);
    line "mesh %s %d %d %d" (kind_token (Mesh.kind mesh)) (Mesh.width mesh) (Mesh.height mesh)
      (Mesh.link_count mesh);
    line "placement %d%s"
      (Array.length m.Mapping.placement)
      (String.concat ""
         (Array.to_list (Array.map (Printf.sprintf " %d") m.Mapping.placement)));
    line "groups %d" (List.length m.Mapping.groups);
    List.iter
      (fun g ->
        line "group %d%s" (List.length g)
          (String.concat "" (List.map (Printf.sprintf " %d") g)))
      m.Mapping.groups;
    line "routes %d" (List.length m.Mapping.routes);
    List.iter (fun r -> line "%s" (route_line r)) m.Mapping.routes;
    line "states %d" (Array.length m.Mapping.states);
    Array.iter (fun s -> line "%s" (state_line s)) m.Mapping.states;
    line "end";
    Some (Buffer.contents b)
  end

let digest m = Option.map (fun bytes -> Digest.to_hex (Digest.string bytes)) (encode m)

(* --- decoding ----------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* A token cursor over one line. *)
type cursor = { tokens : string array; mutable pos : int; what : string }

let cursor_of_line ~what line =
  { tokens = Array.of_list (String.split_on_char ' ' line); pos = 0; what }

let next cur =
  if cur.pos >= Array.length cur.tokens then bad "%s: truncated line" cur.what
  else begin
    let t = cur.tokens.(cur.pos) in
    cur.pos <- cur.pos + 1;
    t
  end

let finished cur =
  if cur.pos <> Array.length cur.tokens then bad "%s: trailing tokens" cur.what

let int_tok cur =
  match int_of_string_opt (next cur) with
  | Some i -> i
  | None -> bad "%s: expected an integer" cur.what

let float_tok cur =
  match float_of_string_opt (next cur) with
  | Some f -> f
  | None -> bad "%s: expected a float" cur.what

let keyword cur w =
  let t = next cur in
  if not (String.equal t w) then bad "%s: expected '%s', got '%s'" cur.what w t

let counted cur f =
  let n = int_tok cur in
  if n < 0 then bad "%s: negative count" cur.what;
  List.init n (fun _ -> f cur)

let routing_of cur =
  match next cur with
  | "min-cost" -> Config.Min_cost
  | "xy" -> Config.Xy
  | t -> bad "%s: unknown routing '%s'" cur.what t

let kind_of cur =
  match next cur with
  | "mesh" -> Mesh.Mesh
  | "torus" -> Mesh.Torus
  | t -> bad "%s: unknown topology '%s'" cur.what t

type line_reader = { mutable lines : string list }

let read_line rd ~what =
  match rd.lines with
  | [] -> bad "%s: unexpected end of input" what
  | l :: rest ->
    rd.lines <- rest;
    cursor_of_line ~what l

let decode_config cur =
  keyword cur "config";
  let freq_mhz = float_tok cur in
  let link_width_bits = int_tok cur in
  let slots = int_tok cur in
  let slot_cycles = int_tok cur in
  let nis_per_switch = int_tok cur in
  let constrain_ni_links = int_tok cur <> 0 in
  let max_mesh_dim = int_tok cur in
  let routing = routing_of cur in
  let topology = kind_of cur in
  let placement_hw_factor = float_tok cur in
  let placement_spread_factor = float_tok cur in
  finished cur;
  {
    Config.freq_mhz;
    link_width_bits;
    slots;
    slot_cycles;
    nis_per_switch;
    constrain_ni_links;
    max_mesh_dim;
    routing;
    topology;
    placement_hw_factor;
    placement_spread_factor;
  }

let decode_route ~n_switch ~links cur =
  keyword cur "route";
  let flow_id = int_tok cur in
  let use_case = int_tok cur in
  let src_core = int_tok cur in
  let dst_core = int_tok cur in
  let src_switch = int_tok cur in
  let dst_switch = int_tok cur in
  let bandwidth = float_tok cur in
  let service =
    match next cur with
    | "gt" -> Route.Gt
    | "be" -> Route.Be
    | t -> bad "%s: unknown service '%s'" cur.what t
  in
  let route_links =
    counted cur (fun cur ->
        let l = int_tok cur in
        if l < 0 || l >= links then bad "%s: link %d out of range" cur.what l;
        l)
  in
  let slot_starts = counted cur int_tok in
  finished cur;
  if src_switch < 0 || src_switch >= n_switch || dst_switch < 0 || dst_switch >= n_switch then
    bad "%s: switch out of range" cur.what;
  {
    Route.flow_id;
    use_case;
    src_core;
    dst_core;
    src_switch;
    dst_switch;
    bandwidth;
    service;
    links = route_links;
    slot_starts;
  }

let decode_state ~config ~mesh cur =
  keyword cur "state";
  let use_case = int_tok cur in
  let ni_budget = Array.of_list (counted cur float_tok) in
  let reservations =
    counted cur (fun cur ->
        let l = int_tok cur in
        let s = int_tok cur in
        let o = int_tok cur in
        (l, s, o))
  in
  finished cur;
  match Resources.restore ~config ~mesh ~use_case ~ni_budget ~reservations with
  | state -> (use_case, state)
  | exception Invalid_argument m -> bad "%s: %s" cur.what m

let decode text =
  try
    let rd = { lines = String.split_on_char '\n' text } in
    let header = read_line rd ~what:"header" in
    let m = next header in
    if not (String.equal (m ^ " " ^ next header) magic) then bad "header: wrong magic/version";
    finished header;
    let config = decode_config (read_line rd ~what:"config") in
    (match Config.validate config with Ok () -> () | Error m -> bad "config: %s" m);
    let mesh =
      let cur = read_line rd ~what:"mesh" in
      keyword cur "mesh";
      let kind = kind_of cur in
      let width = int_tok cur in
      let height = int_tok cur in
      let links = int_tok cur in
      finished cur;
      if width <= 0 || height <= 0 then bad "mesh: non-positive dimension";
      let mesh = Mesh.create_kind ~kind ~width ~height in
      if Mesh.link_count mesh <> links then bad "mesh: link count mismatch";
      mesh
    in
    let n_switch = Mesh.switch_count mesh in
    let links = Mesh.link_count mesh in
    let placement =
      let cur = read_line rd ~what:"placement" in
      keyword cur "placement";
      let p =
        Array.of_list
          (counted cur (fun cur ->
               let s = int_tok cur in
               if s < -1 || s >= n_switch then bad "%s: switch %d out of range" cur.what s;
               s))
      in
      finished cur;
      p
    in
    let groups =
      let cur = read_line rd ~what:"groups" in
      keyword cur "groups";
      let n = int_tok cur in
      finished cur;
      if n < 0 then bad "groups: negative count";
      List.init n (fun _ ->
          let cur = read_line rd ~what:"group" in
          keyword cur "group";
          let g = counted cur int_tok in
          finished cur;
          g)
    in
    let routes =
      let cur = read_line rd ~what:"routes" in
      keyword cur "routes";
      let n = int_tok cur in
      finished cur;
      if n < 0 then bad "routes: negative count";
      List.init n (fun _ -> decode_route ~n_switch ~links (read_line rd ~what:"route"))
    in
    let states =
      let cur = read_line rd ~what:"states" in
      keyword cur "states";
      let n = int_tok cur in
      finished cur;
      if n < 0 then bad "states: negative count";
      let pairs = List.init n (fun _ -> decode_state ~config ~mesh (read_line rd ~what:"state")) in
      let arr = Array.of_list (List.map snd pairs) in
      List.iteri
        (fun i (uc, _) -> if uc <> i then bad "state: use-case ids out of order")
        pairs;
      arr
    in
    let fin = read_line rd ~what:"end" in
    keyword fin "end";
    finished fin;
    (match rd.lines with
    | [] | [ "" ] -> ()
    | _ -> bad "end: trailing lines");
    Ok { Mapping.config; mesh; placement; routes; states; groups }
  with Bad msg -> Error msg
