module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse { line; message })) fmt

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Mutable parse state: the spec is assembled use-case by use-case. *)
type state = {
  mutable name : string;
  mutable cores : int option;
  mutable order : string list;                    (* use-case names, reversed *)
  flows : (string, Flow.t list) Hashtbl.t;        (* per use-case, reversed *)
  mutable parallel : string list list;            (* reversed *)
  mutable smooth : (string * string) list;        (* reversed *)
  mutable current : string option;
}

let int_of ~line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: expected an integer, got '%s'" what s

let float_of ~line what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: expected a number, got '%s'" what s

let parse_flow ~line st rest =
  let uc =
    match st.current with
    | Some u -> u
    | None -> fail line "flow outside any use-case"
  in
  match rest with
  | src :: "->" :: dst :: "bw" :: bw :: opts ->
    let src = int_of ~line "flow source" src in
    let dst = int_of ~line "flow destination" dst in
    let bw = float_of ~line "bandwidth" bw in
    let rec options latency_ns service = function
      | [] -> (latency_ns, service)
      | "lat" :: v :: rest ->
        options (Some (float_of ~line "latency" v)) service rest
      | "be" :: rest -> options latency_ns Flow.Best_effort rest
      | tok :: _ -> fail line "unknown flow option '%s'" tok
    in
    let latency_ns, service = options None Flow.Guaranteed opts in
    let flow = Flow.v ?latency_ns ~service ~src ~dst bw in
    (match st.cores with
    | Some cores -> (
      match Flow.validate ~cores flow with
      | Ok () -> ()
      | Error msg -> fail line "%s" msg)
    | None -> fail line "declare 'cores N' before flows");
    let cur = Option.value (Hashtbl.find_opt st.flows uc) ~default:[] in
    Hashtbl.replace st.flows uc (flow :: cur)
  | _ -> fail line "expected: flow SRC -> DST bw MBPS [lat NS] [be]"

let uc_id ~line st name =
  let order = List.rev st.order in
  let rec find i = function
    | [] -> fail line "unknown use-case '%s'" name
    | u :: _ when u = name -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 order

let parse_line st line_no raw =
  match tokens (strip_comment raw) with
  | [] -> ()
  | "name" :: rest when rest <> [] -> st.name <- String.concat " " rest
  | [ "cores"; n ] ->
    let v = int_of ~line:line_no "cores" n in
    if v < 2 then fail line_no "a SoC needs at least two cores";
    if st.cores <> None then fail line_no "duplicate 'cores' directive";
    st.cores <- Some v
  | [ "use-case"; name ] ->
    if List.mem name st.order then fail line_no "duplicate use-case '%s'" name;
    st.order <- name :: st.order;
    Hashtbl.replace st.flows name [];
    st.current <- Some name
  | "flow" :: rest -> parse_flow ~line:line_no st rest
  | "parallel" :: names ->
    if List.length names < 2 then fail line_no "'parallel' needs at least two use-cases";
    List.iter (fun n -> ignore (uc_id ~line:line_no st n)) names;
    st.parallel <- names :: st.parallel
  | [ "smooth"; a; b ] ->
    ignore (uc_id ~line:line_no st a);
    ignore (uc_id ~line:line_no st b);
    st.smooth <- (a, b) :: st.smooth
  | tok :: _ -> fail line_no "unknown directive '%s'" tok

let parse ~name text =
  let st =
    {
      name;
      cores = None;
      order = [];
      flows = Hashtbl.create 8;
      parallel = [];
      smooth = [];
      current = None;
    }
  in
  try
    List.iteri (fun i raw -> parse_line st (i + 1) raw) (String.split_on_char '\n' text);
    let cores =
      match st.cores with Some c -> c | None -> fail 0 "missing 'cores' directive"
    in
    let order = List.rev st.order in
    if order = [] then fail 0 "no use-cases declared";
    let use_cases =
      List.mapi
        (fun id uc_name ->
          let flows = List.rev (Option.value (Hashtbl.find_opt st.flows uc_name) ~default:[]) in
          Use_case.create ~id ~name:uc_name ~cores flows)
        order
    in
    let id_of n = uc_id ~line:0 st n in
    Ok
      {
        Design_flow.name = st.name;
        use_cases;
        parallel = List.rev_map (List.map id_of) st.parallel;
        smooth = List.rev_map (fun (a, b) -> (id_of a, id_of b)) st.smooth;
      }
  with
  | Parse e -> Error e
  | Invalid_argument msg -> Error { line = 0; message = msg }

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text ->
    let name = Filename.remove_extension (Filename.basename path) in
    parse ~name text
  | exception Sys_error msg -> Error { line = 0; message = msg }

(* Shortest decimal form that parses back to the exact float: specs
   written by [to_text] must survive the round-trip bit-for-bit (six
   significant digits lose up to ~1e-3 of aggregate bandwidth over a
   large use-case). *)
let float_repr x =
  let six = Printf.sprintf "%.6g" x in
  if float_of_string six = x then six
  else
    let twelve = Printf.sprintf "%.12g" x in
    if float_of_string twelve = x then twelve else Printf.sprintf "%.17g" x

let to_text (spec : Design_flow.spec) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "name %s\n" spec.Design_flow.name);
  (match spec.Design_flow.use_cases with
  | [] -> ()
  | first :: _ -> Buffer.add_string buf (Printf.sprintf "cores %d\n" first.Use_case.cores));
  let name_of id = (List.nth spec.Design_flow.use_cases id).Use_case.name in
  List.iter
    (fun u ->
      Buffer.add_string buf (Printf.sprintf "\nuse-case %s\n" u.Use_case.name);
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "  flow %d -> %d bw %s%s%s\n" f.Flow.src f.Flow.dst
               (float_repr f.Flow.bandwidth)
               (if f.Flow.latency_ns <> infinity then " lat " ^ float_repr f.Flow.latency_ns
                else "")
               (if Flow.is_guaranteed f then "" else " be")))
        u.Use_case.flows)
    spec.Design_flow.use_cases;
  if spec.Design_flow.parallel <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun set ->
      Buffer.add_string buf
        (Printf.sprintf "parallel %s\n" (String.concat " " (List.map name_of set))))
    spec.Design_flow.parallel;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "smooth %s %s\n" (name_of a) (name_of b)))
    spec.Design_flow.smooth;
  Buffer.contents buf
