(** Analytic verification of a completed design — phase 4's
    "NoC performance verification" (paper §3).

    Guaranteed-throughput connections can be verified without
    simulation: the TDMA reservation directly implies the delivered
    bandwidth and a worst-case latency bound.  This module re-derives
    both from the final resource state and cross-checks every
    structural invariant of the mapping. *)

type violation = {
  use_case : int;
  src_core : int;
  dst_core : int;
  kind : string;    (** short category, e.g. "bandwidth", "latency" *)
  detail : string;
}

type report = {
  checks : int;          (** number of individual checks executed *)
  violations : violation list;
}

val ok : report -> bool

val verify : ?only:int list -> Mapping.t -> Noc_traffic.Use_case.t list -> report
(** [only] restricts the per-use-case checks (flow routing, bandwidth,
    latency, slot ownership, deadlock freedom) to the given use-case
    ids, and the smooth-group occupancy check to the selected members
    of each group; the global NI-capacity invariant always runs.  The
    incremental remapper ({!Remap}) uses this to verify only the
    freshly-routed components of a stitched design — a retained
    component's routes and slot tables are byte-identical to the old
    design's, so its check outcomes are inherited from the old report
    instead of re-executed.

    Checks, per use-case and flow: a route exists and is unique; the
    path is a connected switch chain matching the placement; reserved
    slots deliver at least the required bandwidth; the worst-case
    latency bound meets the constraint; the use-case's own slot tables
    actually own the reserved slots; the per-use-case channel
    dependency graph is deadlock-free; no switch hosts more cores than
    it has NIs; and use-cases within one smooth-switching group have
    identical slot-table occupancy (a shared configuration). *)

val pp_report : Format.formatter -> report -> unit
