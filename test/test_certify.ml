(* PR 9: the independent certificate checker.

   Certify re-derives every guarantee on a code path separate from the
   mapping engines, so these tests cross-validate the two derivations
   against each other: engine-produced designs certify clean (and
   byte-identically across engines), the event-core simulator's
   observed latencies never exceed the static bounds (with at least
   one flow meeting its bound exactly — the bound is tight, not just
   safe), the phase-analysis bound agrees bit-for-bit with the
   Tdma-side analytic bound, and a tampered codec dump is rejected
   with a pinpointed per-link finding. *)

module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module Codec = Noc_core.Mapping_codec
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Sim = Noc_sim.Simulator
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs
module C = Noc_analysis.Certify
module D = Noc_analysis.Diagnostic
module Json = Noc_export.Json

let small_params = { Syn.spread_params with Syn.cores = 8; flows_lo = 3; flows_hi = 8 }

let must_run spec = match DF.run spec with Ok d -> d | Error e -> failwith e

let encode_exn m =
  match Codec.encode m with Some b -> b | None -> failwith "mapping not encodable"

let qcheck t = QCheck_alcotest.to_alcotest t

(* --- the phase-analysis bound on its own -------------------------------- *)

let test_static_bound_edge_cases () =
  let config = Config.default in
  let slot_ns = Config.slot_duration_ns config in
  Alcotest.(check (float 0.0)) "same-switch costs one slot" slot_ns
    (C.static_bound_ns ~config ~slot_starts:[] ~hops:0);
  Alcotest.(check (float 0.0)) "same-switch ignores starts" slot_ns
    (C.static_bound_ns ~config ~slot_starts:[ 3; 7 ] ~hops:0);
  Alcotest.(check bool) "no reservation, links: unbounded" true
    (C.static_bound_ns ~config ~slot_starts:[] ~hops:2 = infinity);
  (* One start in a 32-slot revolution: the worst arrival just missed
     it and waits 31 slots, then 1 launch + hops forwarding slots. *)
  Alcotest.(check (float 0.0)) "single start"
    (float_of_int (31 + 1 + 2) *. slot_ns)
    (C.static_bound_ns ~config ~slot_starts:[ 5 ] ~hops:2);
  (* Every slot reserved: no waiting at all. *)
  Alcotest.(check (float 0.0)) "full table"
    (float_of_int (0 + 1 + 3) *. slot_ns)
    (C.static_bound_ns ~config ~slot_starts:(List.init config.Config.slots Fun.id) ~hops:3);
  (* Two starts splitting the revolution 12/20: worst wait is 19. *)
  Alcotest.(check (float 0.0)) "uneven pair"
    (float_of_int (19 + 1 + 1) *. slot_ns)
    (C.static_bound_ns ~config ~slot_starts:[ 0; 12 ] ~hops:1)

(* --- benchmarks certify clean ------------------------------------------- *)

let test_benchmarks_certify_clean () =
  List.iter
    (fun (name, ucs) ->
      let d = must_run (DF.spec_of_use_cases ~name ucs) in
      let cert = C.certify ~name d.DF.mapping d.DF.all_use_cases in
      Alcotest.(check bool) (name ^ " certifies clean") true (C.clean cert);
      Alcotest.(check int) (name ^ " exit code") 0 (C.exit_code cert);
      Alcotest.(check bool) (name ^ " signature verifies") true (C.signature_ok cert);
      Alcotest.(check bool) (name ^ " carries a digest") true (cert.C.digest <> None);
      Alcotest.(check bool) (name ^ " ran checks") true (cert.C.checks > 0);
      Alcotest.(check bool) (name ^ " has flow bounds") true (cert.C.bounds <> []))
    (SD.all_designs ())

let test_certificate_json_validates () =
  let d = must_run (DF.spec_of_use_cases ~name:"d1" (SD.d1 ())) in
  let cert = C.certify ~name:"d1" d.DF.mapping d.DF.all_use_cases in
  (match Json.validate (Json.to_string ~indent:2 (C.to_json cert)) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "certificate JSON invalid: %s" msg);
  (* The diagnostics view: one info summary, nothing else when clean. *)
  match C.to_diagnostics cert with
  | [ d0 ] ->
    Alcotest.(check string) "summary pass" "certify" d0.D.pass;
    Alcotest.(check bool) "summary is info" true (d0.D.severity = D.Info)
  | ds -> Alcotest.failf "expected exactly the summary diagnostic, got %d" (List.length ds)

let test_signature_detects_tampering () =
  let d = must_run (DF.spec_of_use_cases ~name:"d1" (SD.d1 ())) in
  let cert = C.certify ~name:"d1" d.DF.mapping d.DF.all_use_cases in
  Alcotest.(check bool) "intact" true (C.signature_ok cert);
  Alcotest.(check bool) "renamed design" false
    (C.signature_ok { cert with C.design = cert.C.design ^ "x" });
  Alcotest.(check bool) "check count altered" false
    (C.signature_ok { cert with C.checks = cert.C.checks + 1 });
  match cert.C.bounds with
  | [] -> Alcotest.fail "d1 must carry bounds"
  | b :: rest ->
    Alcotest.(check bool) "bound altered" false
      (C.signature_ok { cert with C.bounds = { b with C.bound_ns = b.C.bound_ns +. 1.0 } :: rest })

(* --- a tampered dump is rejected with a per-link finding ----------------- *)

(* Flip one recorded slot owner on the first state line that carries a
   reservation: "state uc nNI b.. nRes l s o ..." — the textual twin
   of the CI job's awk corruption. *)
let bump_last_owner line =
  let toks = Array.of_list (String.split_on_char ' ' line) in
  if Array.length toks < 4 || toks.(0) <> "state" then None
  else
    match int_of_string_opt toks.(2) with
    | None -> None
    | Some n_ni -> (
      let nres_idx = 3 + n_ni in
      if nres_idx >= Array.length toks then None
      else
        match int_of_string_opt toks.(nres_idx) with
        | Some nres when nres > 0 -> (
          let last = Array.length toks - 1 in
          match int_of_string_opt toks.(last) with
          | Some owner ->
            toks.(last) <- string_of_int (owner + 1);
            Some (String.concat " " (Array.to_list toks))
          | None -> None)
        | _ -> None)

let flip_first_owner text =
  let flipped = ref false in
  let lines =
    List.map
      (fun line ->
        if !flipped then line
        else
          match bump_last_owner line with
          | Some line' ->
            flipped := true;
            line'
          | None -> line)
      (String.split_on_char '\n' text)
  in
  if not !flipped then failwith "no state line with reservations to corrupt";
  String.concat "\n" lines

let test_corrupted_dump_rejected () =
  let d = must_run (DF.spec_of_use_cases ~name:"d1" (SD.d1 ())) in
  let clean_cert = C.certify ~name:"d1" d.DF.mapping d.DF.all_use_cases in
  Alcotest.(check bool) "uncorrupted baseline is clean" true (C.clean clean_cert);
  let bad = flip_first_owner (encode_exn d.DF.mapping) in
  match Codec.decode bad with
  | Error msg -> Alcotest.failf "corrupted dump must still decode, got: %s" msg
  | Ok m ->
    let cert = C.certify ~name:"tampered" m d.DF.all_use_cases in
    Alcotest.(check bool) "rejected" false (C.clean cert);
    Alcotest.(check int) "exit code 2" 2 (C.exit_code cert);
    Alcotest.(check bool) "signature still verifies" true (C.signature_ok cert);
    (* The finding pinpoints the corrupted link. *)
    Alcotest.(check bool) "a per-link slot-owner finding" true
      (List.exists
         (fun f -> f.C.check = "slot-owner" && f.C.link >= 0 && f.C.use_case >= 0)
         cert.C.findings);
    (* And it surfaces through the lint pipeline as an error. *)
    Alcotest.(check bool) "diagnostics carry the error" true
      (List.exists
         (fun (dg : D.t) -> dg.D.pass = "certify-slot-owner" && dg.D.severity = D.Error)
         (C.to_diagnostics cert))

(* --- simulator cross-validation ------------------------------------------ *)

(* Counted across the whole qcheck run and asserted afterwards: the
   bound must be achieved exactly by some flow somewhere, or it would
   merely be safe, not tight. *)
let equality_hits = ref 0

let prop_bounds_dominate_sim =
  QCheck.Test.make ~name:"certify bounds dominate event-core observed latencies" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, n_ucs) ->
      let spec =
        DF.spec_of_use_cases
          ~name:(Printf.sprintf "syn-%d" seed)
          (Syn.generate ~seed ~params:small_params ~use_cases:n_ucs)
      in
      let d = must_run spec in
      let cert = C.certify ~name:spec.DF.name d.DF.mapping d.DF.all_use_cases in
      if not (C.clean cert) then
        QCheck.Test.fail_reportf "seed %d: engine design did not certify (%d findings)" seed
          (List.length cert.C.findings);
      let config = d.DF.mapping.Mapping.config in
      let bound_of uc flow_id =
        match
          List.find_opt
            (fun (b : C.flow_bound) -> b.C.use_case = uc && b.C.flow_id = flow_id)
            cert.C.bounds
        with
        | Some b -> b.C.bound_ns
        | None -> QCheck.Test.fail_reportf "seed %d: no bound for uc %d flow %d" seed uc flow_id
      in
      List.iter
        (fun (u : U.t) ->
          let uc = u.U.id in
          let routes =
            List.filter (fun r -> r.Route.use_case = uc) d.DF.mapping.Mapping.routes
          in
          if routes <> [] then begin
            let res =
              Sim.simulate ~config ~routes ~duration_slots:(8 * config.Config.slots)
            in
            if res.Sim.collisions <> 0 then
              QCheck.Test.fail_reportf "seed %d uc %d: %d slot collisions" seed uc
                res.Sim.collisions;
            List.iter
              (fun (c : Sim.conn_stats) ->
                if c.Sim.service = Route.Gt && c.Sim.max_latency_ns > 0.0 then begin
                  let b = bound_of uc c.Sim.flow_id in
                  if c.Sim.max_latency_ns > b +. 1e-9 then
                    QCheck.Test.fail_reportf
                      "seed %d uc %d flow %d: observed %.17g ns exceeds static bound %.17g ns"
                      seed uc c.Sim.flow_id c.Sim.max_latency_ns b;
                  if Float.abs (c.Sim.max_latency_ns -. b) <= 1e-9 then incr equality_hits
                end)
              res.Sim.conns
          end)
        d.DF.all_use_cases;
      true)

let test_some_flow_meets_its_bound_exactly () =
  (* Runs after the qcheck property above (alcotest preserves order). *)
  Alcotest.(check bool)
    (Printf.sprintf "equality hits (%d) >= 1" !equality_hits)
    true (!equality_hits >= 1)

(* --- independent derivations agree --------------------------------------- *)

let prop_bound_agrees_with_tdma_side =
  QCheck.Test.make ~name:"static_bound_ns == Route.worst_case_latency_ns (GT)" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let spec =
        DF.spec_of_use_cases ~name:"agree"
          (Syn.generate ~seed ~params:small_params ~use_cases:2)
      in
      let d = must_run spec in
      let config = d.DF.mapping.Mapping.config in
      List.iter
        (fun (r : Route.t) ->
          if r.Route.service = Route.Gt then begin
            let mine =
              C.static_bound_ns ~config ~slot_starts:r.Route.slot_starts
                ~hops:(List.length r.Route.links)
            in
            let theirs = Route.worst_case_latency_ns ~config r in
            if compare mine theirs <> 0 then
              QCheck.Test.fail_reportf
                "seed %d flow %d: phase analysis %.17g ns != analytic %.17g ns" seed
                r.Route.flow_id mine theirs
          end)
        d.DF.mapping.Mapping.routes;
      true)

let prop_engines_certify_identically =
  QCheck.Test.make ~name:"reference-engine designs certify identically" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let spec =
        DF.spec_of_use_cases ~name:"engines"
          (Syn.generate ~seed ~params:small_params ~use_cases:2)
      in
      let all, _, groups = DF.expand spec in
      let map engine =
        match Mapping.map_design ~engine ~groups all with
        | Ok m -> m
        | Error _ -> QCheck.Test.fail_reportf "seed %d: engine failed to map" seed
      in
      let indexed = C.certify ~name:"engines" (map Mapping.Indexed) all in
      let reference = C.certify ~name:"engines" (map Mapping.Reference) all in
      if not (C.clean indexed) then QCheck.Test.fail_reportf "seed %d: indexed not clean" seed;
      String.equal
        (Json.to_string (C.to_json indexed))
        (Json.to_string (C.to_json reference)))

(* --- shape refutations ---------------------------------------------------- *)

let test_wrong_use_case_list_refuted () =
  let d = must_run (DF.spec_of_use_cases ~name:"d1" (SD.d1 ())) in
  (* Certifying against a truncated traffic description must fail the
     structural shape check, not crash. *)
  match d.DF.all_use_cases with
  | [] | [ _ ] -> Alcotest.fail "d1 has several use-cases"
  | _ :: rest_tail ->
    let truncated = List.filteri (fun i _ -> i < List.length rest_tail) d.DF.all_use_cases in
    let cert = C.certify ~name:"truncated" d.DF.mapping truncated in
    Alcotest.(check bool) "refuted" false (C.clean cert);
    Alcotest.(check bool) "shape finding" true
      (List.exists (fun f -> f.C.check = "shape") cert.C.findings);
    Alcotest.(check bool) "signature still verifies" true (C.signature_ok cert)

let () =
  Alcotest.run "noc_certify"
    [
      ( "bound",
        [
          Alcotest.test_case "phase-analysis edge cases" `Quick test_static_bound_edge_cases;
          qcheck prop_bound_agrees_with_tdma_side;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "benchmarks certify clean" `Slow test_benchmarks_certify_clean;
          Alcotest.test_case "JSON validates, diagnostics clean" `Quick
            test_certificate_json_validates;
          Alcotest.test_case "signature detects tampering" `Quick
            test_signature_detects_tampering;
          Alcotest.test_case "corrupted dump rejected per-link" `Quick
            test_corrupted_dump_rejected;
          Alcotest.test_case "wrong use-case list refuted" `Quick
            test_wrong_use_case_list_refuted;
        ] );
      ( "cross-validation",
        [
          qcheck prop_bounds_dominate_sim;
          Alcotest.test_case "some flow meets its bound exactly" `Quick
            test_some_flow_meets_its_bound_exactly;
          qcheck prop_engines_certify_identically;
        ] );
    ]
