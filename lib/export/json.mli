(** Minimal JSON construction and syntax checking.

    A small value type with a serializer (correct string escaping,
    locale-independent float printing) plus a strict syntax validator
    used by the tests and available to consumers of exported files.
    No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent > 0] pretty-prints with that step. *)

val escape : string -> string
(** JSON string escaping (quotes not included). *)

val validate : string -> (unit, string) result
(** Strict RFC-8259-style syntax check of a complete JSON document. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document into a value (same strict grammar
    as [validate]).  Numbers without a fraction or exponent that fit
    in [int] parse as [Int]; everything else numeric as [Float]. *)

val member : string -> t -> t option
(** [member k v] is field [k] of object [v]; [None] on non-objects. *)

val to_float : t -> float option
(** Numeric coercion: [Int] and [Float] only. *)
