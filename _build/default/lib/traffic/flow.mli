(** A traffic flow: one directed communication between two cores,
    annotated with its bandwidth and latency constraints (paper
    Definition 2).

    Aethereal-style NoCs serve two traffic classes (paper Sec 2):
    guaranteed-throughput (GT) connections get TDMA slot reservations
    that enforce their bandwidth/latency contract; best-effort (BE)
    streams ride on whatever slots are left and get no guarantees. *)

type service =
  | Guaranteed   (** reserved TDMA slots; contract enforced *)
  | Best_effort  (** leftover slots only; no contract *)

type t = {
  src : int;  (** source core id *)
  dst : int;  (** destination core id *)
  bandwidth : Noc_util.Units.bandwidth;
      (** maximum traffic rate (GT: reserved; BE: offered load), MB/s *)
  latency_ns : Noc_util.Units.latency;
      (** maximum packet delay; [infinity] when unconstrained *)
  service : service;
}

val v :
  ?latency_ns:Noc_util.Units.latency ->
  ?service:service ->
  src:int -> dst:int -> Noc_util.Units.bandwidth -> t
(** Flow constructor; latency defaults to unconstrained, service to
    [Guaranteed]. *)

val is_guaranteed : t -> bool

val pair : t -> int * int
(** The ordered [(src, dst)] pair. *)

val validate : cores:int -> t -> (unit, string) result
(** Endpoints in range, distinct, positive bandwidth, positive latency;
    a best-effort flow may not carry a latency constraint (there is no
    mechanism to honour it). *)

val compare_bandwidth_desc : t -> t -> int
(** Sort order of Algorithm 2 step 2: guaranteed flows before
    best-effort ones, then non-increasing bandwidth, with ties broken
    by (src, dst) for determinism. *)

val pp : Format.formatter -> t -> unit
