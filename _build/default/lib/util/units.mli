(** Physical units used throughout the NoC design flow.

    The paper works in MB/s (bandwidth), MHz (frequency), ns (latency),
    bits (link width) and mm² (area).  Keeping explicit conversion
    helpers in one module avoids the classic factor-of-8 and
    factor-of-1000 mistakes. *)

type bandwidth = float
(** Megabytes per second. *)

type frequency = float
(** Megahertz. *)

type latency = float
(** Nanoseconds. *)

type area = float
(** Square millimetres. *)

val link_capacity : freq_mhz:frequency -> width_bits:int -> bandwidth
(** [link_capacity ~freq_mhz ~width_bits] is the raw capacity of a link
    that moves one [width_bits]-bit word per cycle, in MB/s.
    500 MHz x 32 bit = 2000 MB/s (the paper's §6.2 operating point). *)

val cycle_ns : frequency -> latency
(** Duration of one clock cycle in ns. *)

val mbps_per_slot : capacity:bandwidth -> slots:int -> bandwidth
(** Bandwidth granted by one TDMA slot out of [slots]. *)

val slots_needed : bw:bandwidth -> capacity:bandwidth -> slots:int -> int
(** Number of TDMA slots needed to carry [bw] on a link of [capacity]
    divided into [slots] slots; at least 1 for a non-zero [bw]. *)

val pp_bandwidth : Format.formatter -> bandwidth -> unit
val pp_frequency : Format.formatter -> frequency -> unit
val pp_latency : Format.formatter -> latency -> unit
val pp_area : Format.formatter -> area -> unit
