(* CI smoke for the ablation sweeps: run the cheap sweeps end-to-end
   and fail loudly if any design point that should map stops mapping.
   The full tables remain in [bench/main.exe]; this binary is sized for
   a pull-request gate (a few seconds, deterministic). *)

module A = Noc_benchkit.Ablations

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let () =
  let slot_rows = A.slot_table_sweep ~sizes:[ 16; 32 ] () in
  if List.length slot_rows <> 2 then fail "slot_table_sweep returned %d rows" (List.length slot_rows);
  List.iter
    (fun r ->
      match (r.A.ours_switches, r.A.wc_switches) with
      | Some ours, Some wc ->
        if ours <= 0 || wc <= 0 then fail "non-positive switch count at %d slots" r.A.slots
      | _ -> fail "design failed to map at %d slots" r.A.slots)
    slot_rows;
  let routing_rows = A.routing_effect () in
  if not (List.exists (fun (r : A.routing_row) -> r.A.switches <> None) routing_rows) then
    fail "routing_effect: no routing mode mapped D1";
  let grouping_rows = A.grouping_effect () in
  if not (List.exists (fun (r : A.grouping_row) -> r.A.switches <> None) grouping_rows) then
    fail "grouping_effect: no grouping variant mapped Sp-5";
  Printf.printf "ablations smoke OK (%d slot rows, %d routing rows, %d grouping rows)\n"
    (List.length slot_rows) (List.length routing_rows) (List.length grouping_rows)
