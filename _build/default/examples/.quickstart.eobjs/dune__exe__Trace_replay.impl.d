examples/trace_replay.ml: Format List Noc_arch Noc_core Noc_sim Noc_traffic Noc_util
