lib/power/dvfs.ml: List
