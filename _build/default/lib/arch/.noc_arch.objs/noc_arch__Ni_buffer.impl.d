lib/arch/ni_buffer.ml: Array List Noc_config Route Tdma
