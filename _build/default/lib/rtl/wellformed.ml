type issue = {
  line : int;
  message : string;
}

let lines_of text = String.split_on_char '\n' text

let strip_comment line =
  match String.index_opt line '-' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '-' -> String.sub line 0 i
  | _ -> line

let lower = String.lowercase_ascii

let tokens line =
  (* Split on everything that is not an identifier character. *)
  let buf = Buffer.create 16 in
  let acc = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      acc := Buffer.contents buf :: !acc;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> flush ())
    line;
  flush ();
  List.rev !acc

let starts_with_kw kw toks = match toks with t :: _ -> lower t = kw | [] -> false

(* An instantiation line looks like "label : component_name". *)
let instance_of line =
  let line = strip_comment line in
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    let before = String.trim (String.sub line 0 i) in
    let after = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    (match (tokens before, tokens after) with
    | [ label ], comp :: rest
      when comp <> ""
           && (not (List.mem (lower comp) [ "in"; "out"; "natural"; "std_logic"; "integer"; "signal"; "unsigned" ]))
           && (rest = [] || List.for_all (fun t -> lower t <> "downto") (tokens after))
           && not (String.contains after '=') ->
      Some (label, comp)
    | _ -> None)

let scan text =
  let entities = ref [] in
  let packages = ref [] in
  let components = ref [] in
  let architectures = ref [] in
  let signals = ref [] in
  let instances = ref [] in
  let port_actuals = ref [] in
  let ends = ref 0 in
  let unit_starts = ref 0 in
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      let line = strip_comment raw in
      let toks = tokens line in
      let ltoks = List.map lower toks in
      (match ltoks with
      | "entity" :: name :: "is" :: _ ->
        incr unit_starts;
        entities := (name, line_no) :: !entities
      | "package" :: name :: "is" :: _ ->
        incr unit_starts;
        packages := (name, line_no) :: !packages
      | "architecture" :: name :: "of" :: parent :: _ ->
        incr unit_starts;
        architectures := ((name, parent), line_no) :: !architectures
      | "component" :: name :: _ -> components := (name, line_no) :: !components
      | "signal" :: name :: _ -> signals := (name, line_no) :: !signals
      | "end" :: _ -> incr ends
      | _ -> ());
      (if not (starts_with_kw "signal" ltoks) then
         match instance_of line with
         | Some (label, comp)
           when (not (List.mem (lower comp) [ "process"; "block"; "generate" ]))
                && String.length line > 0 ->
           instances := ((label, comp), line_no) :: !instances
         | _ -> ());
      (* Port-map actuals: "formal => actual" *)
      if String.length line > 2 then begin
        let rec find_arrows from =
          match String.index_from_opt line from '=' with
          | Some j when j + 1 < String.length line && line.[j + 1] = '>' ->
            let actual = String.sub line (j + 2) (String.length line - j - 2) in
            let actual = String.trim actual in
            let actual =
              match String.index_opt actual ',' with
              | Some k -> String.sub actual 0 k
              | None -> actual
            in
            (match tokens actual with
            | [ a ]
              when (not (String.contains actual '\''))
                   && lower a <> "open"
                   && (not (String.contains actual '('))
                   && (match a.[0] with '0' .. '9' -> false | _ -> true) ->
              port_actuals := (a, line_no) :: !port_actuals
            | _ -> ());
            find_arrows (j + 2)
          | Some j -> find_arrows (j + 1)
          | None -> ()
        in
        find_arrows 0
      end)
    (lines_of text);
  ( !entities,
    !packages,
    !components,
    !architectures,
    !signals,
    !instances,
    !port_actuals,
    !ends,
    !unit_starts )

let check text =
  let entities, packages, components, architectures, signals, instances, port_actuals, _, _ =
    scan text
  in
  let issues = ref [] in
  let add line message = issues := { line; message } :: !issues in
  (* Every architecture refers to a declared entity. *)
  List.iter
    (fun ((_, parent), line) ->
      if not (List.exists (fun (e, _) -> lower e = lower parent) entities) then
        add line (Printf.sprintf "architecture of undeclared entity '%s'" parent))
    architectures;
  (* Every entity has exactly one architecture here. *)
  List.iter
    (fun (e, line) ->
      let n =
        List.length (List.filter (fun ((_, p), _) -> lower p = lower e) architectures)
      in
      if n = 0 then add line (Printf.sprintf "entity '%s' has no architecture" e))
    entities;
  (* Instances reference declared components. *)
  List.iter
    (fun ((label, comp), line) ->
      if not (List.exists (fun (c, _) -> lower c = lower comp) components) then
        add line (Printf.sprintf "instance '%s' of undeclared component '%s'" label comp))
    instances;
  (* Duplicate instance labels. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun ((label, _), line) ->
      if Hashtbl.mem seen (lower label) then
        add line (Printf.sprintf "duplicate instance label '%s'" label)
      else Hashtbl.add seen (lower label) ())
    instances;
  (* Duplicate signal names. *)
  let seen_sig = Hashtbl.create 64 in
  List.iter
    (fun (s, line) ->
      if Hashtbl.mem seen_sig (lower s) then
        add line (Printf.sprintf "duplicate signal '%s'" s)
      else Hashtbl.add seen_sig (lower s) ())
    signals;
  (* Port-map actuals are declared signals or top-level ports. *)
  let known = Hashtbl.create 256 in
  List.iter (fun (s, _) -> Hashtbl.replace known (lower s) ()) signals;
  List.iter (fun s -> Hashtbl.replace known s ()) [ "clk"; "rst" ];
  List.iter
    (fun (a, line) ->
      if not (Hashtbl.mem known (lower a)) then
        add line (Printf.sprintf "port map actual '%s' is not a declared signal" a))
    port_actuals;
  if packages = [] && entities = [] then add 0 "no design units found";
  match List.rev !issues with [] -> Ok () | l -> Error l

let stats text =
  let entities, packages, components, architectures, signals, instances, _, _, _ = scan text in
  [
    ("entities", List.length entities);
    ("architectures", List.length architectures);
    ("packages", List.length packages);
    ("components", List.length components);
    ("signals", List.length signals);
    ("instances", List.length instances);
  ]
