lib/graph/shortest_path.ml: Array Intgraph Priority_queue
