lib/power/dvfs.mli: Noc_util
