module Sp = Noc_core.Spec_parser
module DF = Noc_core.Design_flow
module Feasibility = Noc_core.Feasibility
module Config = Noc_arch.Noc_config
module Json = Noc_export.Json
module D = Diagnostic

type report = {
  diagnostics : D.t list;
  certificate : Feasibility.t option;
}

let analyze_doc ?(config = Config.default) ?(deep = false) doc =
  let { Spec_lint.diagnostics; spec } = Spec_lint.check doc in
  match spec with
  | None -> { diagnostics; certificate = None }
  | Some spec ->
    let feas, certificate = Spec_lint.feasibility ~config ~doc spec in
    let design =
      if not deep then []
      else
        match DF.run ~config spec with
        | Ok d ->
          Design_lint.check d.DF.mapping d.DF.all_use_cases
          @ Certify.to_diagnostics
              (Certify.certify ~name:spec.DF.name d.DF.mapping d.DF.all_use_cases)
        | Error msg -> [ D.vf ~pass:"mapping" Error "%s" msg ]
    in
    {
      diagnostics = List.stable_sort D.compare (diagnostics @ feas) @ design;
      certificate;
    }

(* Programmatic specs go through the same located pipeline by rendering
   to text first: one code path, and the reported lines are valid for
   the rendered form. *)
let analyze_spec ?config ?deep spec =
  analyze_doc ?config ?deep (Sp.parse_doc ~name:spec.DF.name (Sp.to_text spec))

let exit_code report = D.exit_code report.diagnostics

let render_text report =
  let buf = Buffer.create 256 in
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "%a@." D.pp d))
    report.diagnostics;
  let count sev =
    List.length (List.filter (fun d -> d.D.severity = sev) report.diagnostics)
  in
  Buffer.add_string buf
    (Printf.sprintf "%d error(s), %d warning(s), %d info\n" (count D.Error)
       (count D.Warning) (count D.Info));
  Buffer.contents buf

let json_of_certificate (c : Feasibility.t) =
  Json.Obj
    [
      ("cores", Json.Int c.Feasibility.cores);
      ("nis_per_switch", Json.Int c.Feasibility.cap);
      ("slots", Json.Int c.Feasibility.slots);
      ("max_dim", Json.Int c.Feasibility.max_dim);
      ( "impossible",
        Json.List
          (List.map
             (fun (i : Feasibility.impossibility) ->
               Json.Obj
                 [
                   ("group", Json.Int i.Feasibility.group);
                   ("src", Json.Int i.Feasibility.src);
                   ("dst", Json.Int i.Feasibility.dst);
                   ("reason", Json.String i.Feasibility.reason);
                 ])
             c.Feasibility.impossible) );
      ( "groups",
        Json.List
          (List.map
             (fun (g : Feasibility.group_cert) ->
               Json.Obj
                 [
                   ("group", Json.Int g.Feasibility.group);
                   ("aggregate_slots", Json.Int g.Feasibility.aggregate);
                   ( "cut",
                     Json.List
                       (List.map
                          (fun (d : Feasibility.demand) ->
                            Json.Obj
                              [
                                ("core", Json.Int d.Feasibility.core);
                                ("egress", Json.Bool d.Feasibility.egress);
                                ("slots", Json.Int d.Feasibility.slots);
                              ])
                          g.Feasibility.cut) );
                 ])
             c.Feasibility.group_certs) );
      ( "first_admitted",
        match Feasibility.first_admitted c with
        | Some (w, h) -> Json.Obj [ ("width", Json.Int w); ("height", Json.Int h) ]
        | None -> Json.Null );
    ]

let render_json report =
  Json.to_string ~indent:2
    (Json.Obj
       [
         ("diagnostics", Json.List (List.map D.to_json report.diagnostics));
         ( "certificate",
           match report.certificate with
           | Some c -> json_of_certificate c
           | None -> Json.Null );
         ("exit_code", Json.Int (exit_code report));
       ])
