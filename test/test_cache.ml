(* The result cache's correctness bar: cached results are byte-identical
   to fresh ones (success and failure, with and without pruning, across
   the sweep layers), the codec round-trips Mapping.t exactly
   (including per-use-case slot state), and the disk tier degrades to a
   miss — never an error — on corruption or version mismatch. *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Codec = Noc_core.Mapping_codec
module MC = Noc_core.Mapping_cache
module Resources = Noc_core.Resources
module RC = Noc_util.Result_cache
module SD = Noc_benchkit.Soc_designs
module Syn = Noc_benchkit.Synthetic

let tmp_root =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "nocmap-test-cache-%d" (Random.self_init (); Random.int 1_000_000))
  in
  Sys.mkdir dir 0o755;
  dir

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Filename.concat tmp_root (string_of_int !n) in
    Sys.mkdir d 0o755;
    d

(* --- Result_cache: LRU, counters, disk tier ----------------------------- *)

let test_lru_eviction () =
  let c = RC.create ~capacity:2 ~version:"v" () in
  RC.add c "a" "1";
  RC.add c "b" "2";
  Alcotest.(check (option string)) "a present" (Some "1") (RC.find c "a");
  (* a is now most recent, so adding c evicts b *)
  RC.add c "c" "3";
  Alcotest.(check (option string)) "b evicted" None (RC.find c "b");
  Alcotest.(check (option string)) "a survives" (Some "1") (RC.find c "a");
  Alcotest.(check (option string)) "c present" (Some "3") (RC.find c "c");
  let s = RC.stats c in
  Alcotest.(check int) "one eviction" 1 s.RC.evictions;
  Alcotest.(check int) "three stores" 3 s.RC.stores;
  Alcotest.(check int) "one miss" 1 s.RC.misses;
  Alcotest.(check int) "three memory hits" 3 s.RC.memory_hits;
  Alcotest.(check int) "length tracks survivors" 2 (RC.length c)

let test_replace_and_clear () =
  let c = RC.create ~capacity:4 ~version:"v" () in
  RC.add c "k" "old";
  RC.add c "k" "new";
  Alcotest.(check (option string)) "replaced" (Some "new") (RC.find c "k");
  Alcotest.(check int) "no duplicate entry" 1 (RC.length c);
  RC.clear c;
  Alcotest.(check int) "cleared" 0 (RC.length c);
  Alcotest.(check (option string)) "miss after clear" None (RC.find c "k")

let test_disk_round_trip () =
  let dir = fresh_dir () in
  let payload = "line one\nline two \xff\x00 binary-ish" in
  let c1 = RC.create ~dir ~version:"build-A" () in
  RC.add c1 "problem:1" payload;
  (* a different process = a fresh instance over the same directory *)
  let c2 = RC.create ~dir ~version:"build-A" () in
  Alcotest.(check (option string)) "served from disk" (Some payload) (RC.find c2 "problem:1");
  Alcotest.(check int) "counted as disk hit" 1 (RC.stats c2).RC.disk_hits;
  (* promoted into memory: the second find is a memory hit *)
  ignore (RC.find c2 "problem:1");
  Alcotest.(check int) "promoted" 1 (RC.stats c2).RC.memory_hits;
  (* version mismatch never reads the other version's entries *)
  let c3 = RC.create ~dir ~version:"build-B" () in
  Alcotest.(check (option string)) "other version misses" None (RC.find c3 "problem:1")

let entry_files dir =
  let rec walk d =
    Array.to_list (Sys.readdir d)
    |> List.concat_map (fun name ->
           let p = Filename.concat d name in
           if Sys.is_directory p then walk p else [ p ])
  in
  walk dir

let test_no_tmp_leftovers () =
  let dir = fresh_dir () in
  let c = RC.create ~dir ~version:"v" () in
  for i = 0 to 19 do
    RC.add c (Printf.sprintf "k%d" i) (String.make 1000 'x')
  done;
  let leftovers =
    List.filter (fun p -> Filename.check_suffix p ".tmp") (entry_files dir)
  in
  Alcotest.(check int) "no temp files survive" 0 (List.length leftovers)

let corrupt_with f () =
  let dir = fresh_dir () in
  let c1 = RC.create ~dir ~version:"v" () in
  RC.add c1 "key" "the payload";
  let files =
    List.filter (fun p -> Filename.check_suffix p ".entry") (entry_files dir)
  in
  Alcotest.(check int) "one entry on disk" 1 (List.length files);
  List.iter f files;
  let c2 = RC.create ~dir ~version:"v" () in
  Alcotest.(check (option string)) "corruption degrades to miss" None (RC.find c2 "key");
  Alcotest.(check int) "counted as disk error" 1 (RC.stats c2).RC.disk_errors;
  (* the bad entry is dropped, so the next run doesn't re-parse it *)
  List.iter (fun p -> Alcotest.(check bool) "bad file removed" false (Sys.file_exists p)) files

let test_corrupt_truncated =
  corrupt_with (fun p ->
      let text = In_channel.with_open_bin p In_channel.input_all in
      Out_channel.with_open_bin p (fun oc ->
          output_string oc (String.sub text 0 (String.length text / 2))))

let test_corrupt_garbage =
  corrupt_with (fun p ->
      Out_channel.with_open_bin p (fun oc -> output_string oc "not a cache entry at all"))

let test_corrupt_payload_flip =
  corrupt_with (fun p ->
      let text = In_channel.with_open_bin p In_channel.input_all in
      let b = Bytes.of_string text in
      (* flip a byte near the end (inside the payload) *)
      let i = Bytes.length b - 2 in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      Out_channel.with_open_bin p (fun oc -> output_bytes oc b))

let test_persisted_stats () =
  let dir = fresh_dir () in
  let c = RC.create ~dir ~version:"v" () in
  RC.add c "a" "1";
  ignore (RC.find c "a");
  ignore (RC.find c "nope");
  RC.persist_stats c;
  RC.persist_stats c (* second persist must not double-count *);
  (match RC.read_persisted_stats ~dir ~version:"v" with
  | None -> Alcotest.fail "expected persisted stats"
  | Some s ->
    Alcotest.(check int) "persisted stores" 1 s.RC.stores;
    Alcotest.(check int) "persisted hits" 1 s.RC.memory_hits;
    Alcotest.(check int) "persisted misses" 1 s.RC.misses);
  ignore (RC.find c "a");
  RC.persist_stats c;
  match RC.read_persisted_stats ~dir ~version:"v" with
  | None -> Alcotest.fail "expected persisted stats"
  | Some s -> Alcotest.(check int) "delta merged" 2 s.RC.memory_hits

let test_disk_summary_and_clear () =
  let dir = fresh_dir () in
  let a = RC.create ~dir ~version:"A" () in
  let b = RC.create ~dir ~version:"B" () in
  RC.add a "k1" "11";
  RC.add a "k2" "22";
  RC.add b "k1" "33";
  (match RC.disk_summary ~dir with
  | [ ("A", 2, _); ("B", 1, _) ] -> ()
  | other ->
    Alcotest.failf "unexpected summary: %s"
      (String.concat ";" (List.map (fun (v, n, s) -> Printf.sprintf "%s/%d/%d" v n s) other)));
  let removed = RC.clear_disk ~dir in
  Alcotest.(check bool) "removed at least the three entries" true (removed >= 3);
  Alcotest.(check (list (triple string int int))) "summary empty" [] (RC.disk_summary ~dir)

(* --- Build_info ---------------------------------------------------------- *)

let test_build_info () =
  let module B = Noc_util.Build_info in
  Alcotest.(check bool) "version nonempty" true (String.length B.version > 0);
  Alcotest.(check bool) "fingerprint nonempty" true (String.length (B.fingerprint ()) > 0);
  Alcotest.(check bool) "fingerprint stable" true (String.equal (B.fingerprint ()) (B.fingerprint ()));
  let d = B.describe () in
  Alcotest.(check bool) "describe embeds version" true
    (String.length d > String.length B.version
    && String.sub d 0 (String.length B.version) = B.version)

(* --- Mapping codec ------------------------------------------------------- *)

let encode_exn m =
  match Codec.encode m with
  | Some text -> text
  | None -> Alcotest.fail "expected an encodable (express-free) mapping"

let map_exn ~groups ucs =
  match Mapping.map_design ~groups ucs with
  | Ok m -> m
  | Error f -> Alcotest.failf "mapping failed: %a" (fun ppf -> Mapping.pp_failure ppf) f

let state_dump (m : Mapping.t) =
  String.concat "|"
    (Array.to_list
       (Array.map
          (fun st ->
            Printf.sprintf "%d:%s:%s" (Resources.use_case st)
              (String.concat ","
                 (List.map (fun (l, s, o) -> Printf.sprintf "%d.%d.%d" l s o)
                    (Resources.reservations st)))
              (String.concat ","
                 (Array.to_list
                    (Array.map (Printf.sprintf "%h") (Resources.ni_budget_snapshot st)))))
          m.Mapping.states))

let check_round_trip name m =
  let text = encode_exn m in
  match Codec.decode text with
  | Error e -> Alcotest.failf "%s: decode failed: %s" name e
  | Ok m' ->
    Alcotest.(check string) (name ^ ": canonical re-encode") text (encode_exn m');
    Alcotest.(check string) (name ^ ": states restored exactly") (state_dump m) (state_dump m')

let test_codec_designs () =
  check_round_trip "example1" (map_exn ~groups:[ [ 0 ]; [ 1 ] ] SD.example1_use_cases);
  check_round_trip "d1"
    (let ucs = SD.d1 () in
     map_exn ~groups:(List.mapi (fun i _ -> [ i ]) ucs) ucs);
  (* a grouped (smooth-switching) design exercises shared configurations
     and passive-member slot reservations, which routes alone cannot
     reconstruct *)
  let ucs = SD.d2 () in
  check_round_trip "d2-grouped" (map_exn ~groups:[ List.mapi (fun i _ -> i) ucs ] ucs)

let test_codec_rejects () =
  let m = map_exn ~groups:[ [ 0 ]; [ 1 ] ] SD.example1_use_cases in
  let text = encode_exn m in
  let expect_error what t =
    match Codec.decode t with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: decode accepted corrupt input" what
  in
  expect_error "empty" "";
  expect_error "wrong magic" ("nocmap-mapping 999\n" ^ text);
  expect_error "truncated" (String.sub text 0 (String.length text / 2));
  expect_error "trailing garbage" (text ^ "extra\n");
  expect_error "token garbage"
    (String.concat "\n"
       (List.mapi
          (fun i l -> if i = 3 then l ^ " 17" else l)
          (String.split_on_char '\n' text)))

(* --- cached = fresh, property-tested over random specs ------------------- *)

let small_params = { Syn.spread_params with cores = 8; flows_lo = 3; flows_hi = 8 }

let design_bytes = function
  | Ok m -> "ok:" ^ encode_exn m
  | Error f -> Format.asprintf "failed:%a" Mapping.pp_failure f

let prop_cached_byte_identical =
  QCheck.Test.make ~name:"cached = fresh, byte for byte (cold and warm)" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ucs = Syn.generate ~seed ~params:small_params ~use_cases:2 in
      let groups = List.mapi (fun i _ -> [ i ]) ucs in
      let run ~cache () =
        design_bytes (Mapping.map_design ?cache ~groups ucs)
      in
      MC.set_enabled false;
      let fresh = run ~cache:None () in
      MC.set_enabled true;
      MC.clear ();
      let cache = MC.design_cache ~groups ucs in
      let cold = run ~cache () in
      let hits_before = (MC.stats ()).RC.memory_hits in
      let warm = run ~cache () in
      let hits_after = (MC.stats ()).RC.memory_hits in
      String.equal fresh cold && String.equal cold warm && hits_after > hits_before)

(* Refutations recorded by a pruned run are replayed under --no-prune
   without changing the designed NoC. *)
let prop_negative_cache_no_prune =
  QCheck.Test.make ~name:"refutation cache: pruned run then --no-prune, same design" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ucs = Syn.generate ~seed ~params:small_params ~use_cases:2 in
      let groups = List.mapi (fun i _ -> [ i ]) ucs in
      MC.set_enabled false;
      let baseline = design_bytes (Mapping.map_design ~prune:false ~groups ucs) in
      MC.set_enabled true;
      MC.clear ();
      let cache = MC.design_cache ~groups ucs in
      let pruned = design_bytes (Mapping.map_design ~prune:true ?cache ~groups ucs) in
      let noprune = design_bytes (Mapping.map_design ~prune:false ?cache ~groups ucs) in
      String.equal baseline pruned && String.equal baseline noprune)

(* The sweep layers above the cache: explore and the min-frequency
   search return the same answers with the cache cold, warm and off. *)
let small_axes =
  {
    Noc_power.Design_space.frequencies = [ 250.0; 500.0 ];
    slot_counts = [ 16; 32 ];
    topologies = [ Mesh.Mesh ];
  }

let point_key p =
  Noc_power.Design_space.(p.freq_mhz, p.slots, p.switches, p.start = Warm)

let test_explore_cache_identity () =
  let ucs = Syn.generate ~seed:4242 ~params:small_params ~use_cases:2 in
  let groups = List.mapi (fun i _ -> [ i ]) ucs in
  let run () =
    List.map point_key
      (Noc_power.Design_space.explore ~axes:small_axes ~config:Config.default ~groups ucs)
  in
  MC.set_enabled false;
  let off = run () in
  MC.set_enabled true;
  MC.clear ();
  let cold = run () in
  let warm = run () in
  Alcotest.(check bool) "explore: off = cold" true (off = cold);
  Alcotest.(check bool) "explore: cold = warm" true (cold = warm)

let test_min_freq_cache_identity () =
  let ucs = SD.d1 () in
  let groups = List.mapi (fun i _ -> [ i ]) ucs in
  let mesh = Mesh.create ~width:2 ~height:2 in
  let run () =
    Noc_power.Min_freq.for_use_cases_on_mesh ~config:Config.default ~mesh ~groups ucs
  in
  MC.set_enabled false;
  let off = run () in
  MC.set_enabled true;
  MC.clear ();
  let cold = run () in
  let warm = run () in
  Alcotest.(check (option (float 1e-9))) "min-freq: off = cold" off cold;
  Alcotest.(check (option (float 1e-9))) "min-freq: cold = warm" cold warm

(* The whole stack over a real directory: a second "process" (fresh
   memory tier) replays the first one's design from disk, and corrupted
   entries silently recompute. *)
let test_disk_tier_end_to_end () =
  let dir = fresh_dir () in
  let ucs = SD.example1_use_cases in
  let groups = List.mapi (fun i _ -> [ i ]) ucs in
  MC.set_enabled true;
  MC.clear ();
  MC.set_dir (Some dir);
  let first = design_bytes (Mapping.map_design ?cache:(MC.design_cache ~groups ucs) ~groups ucs) in
  (* drop the memory tier, keep the disk: simulates a new CLI run *)
  let before = (MC.stats ()).RC.disk_hits in
  MC.set_dir None;
  MC.clear ();
  MC.set_dir (Some dir);
  let second = design_bytes (Mapping.map_design ?cache:(MC.design_cache ~groups ucs) ~groups ucs) in
  Alcotest.(check string) "disk replay is byte-identical" first second;
  Alcotest.(check bool) "served from disk" true ((MC.stats ()).RC.disk_hits > before);
  (* corrupt every entry: results must still be correct *)
  List.iter
    (fun p ->
      if Filename.check_suffix p ".entry" then
        Out_channel.with_open_bin p (fun oc -> output_string oc "garbage"))
    (entry_files dir);
  MC.set_dir None;
  MC.clear ();
  MC.set_dir (Some dir);
  let third = design_bytes (Mapping.map_design ?cache:(MC.design_cache ~groups ucs) ~groups ucs) in
  Alcotest.(check string) "corrupt store recomputes the same design" first third;
  MC.set_dir None

let qcheck t = QCheck_alcotest.to_alcotest t

let () =
  (* default state for this binary: cache on, no disk tier *)
  MC.set_enabled true;
  Alcotest.run "cache"
    [
      ( "result_cache",
        [
          Alcotest.test_case "LRU eviction and counters" `Quick test_lru_eviction;
          Alcotest.test_case "replace and clear" `Quick test_replace_and_clear;
          Alcotest.test_case "disk round-trip across instances" `Quick test_disk_round_trip;
          Alcotest.test_case "atomic writes leave no temp files" `Quick test_no_tmp_leftovers;
          Alcotest.test_case "truncated entry = miss" `Quick test_corrupt_truncated;
          Alcotest.test_case "garbage entry = miss" `Quick test_corrupt_garbage;
          Alcotest.test_case "payload bit-flip = miss" `Quick test_corrupt_payload_flip;
          Alcotest.test_case "persisted stats merge" `Quick test_persisted_stats;
          Alcotest.test_case "disk summary and clear" `Quick test_disk_summary_and_clear;
        ] );
      ("build_info", [ Alcotest.test_case "version and fingerprint" `Quick test_build_info ]);
      ( "codec",
        [
          Alcotest.test_case "round-trips real designs" `Quick test_codec_designs;
          Alcotest.test_case "rejects corrupt input" `Quick test_codec_rejects;
        ] );
      ( "cached_equals_fresh",
        [
          qcheck prop_cached_byte_identical;
          qcheck prop_negative_cache_no_prune;
          Alcotest.test_case "explore identical off/cold/warm" `Quick test_explore_cache_identity;
          Alcotest.test_case "min-freq identical off/cold/warm" `Quick test_min_freq_cache_identity;
          Alcotest.test_case "disk tier end to end" `Quick test_disk_tier_end_to_end;
        ] );
    ]
