lib/arch/noc_config.ml: Format Mesh Noc_util
