(** Deterministic pseudo-random number generator.

    A splitmix64 generator: fast, high-quality for simulation purposes and —
    unlike [Stdlib.Random] — with a stable algorithm across OCaml releases,
    so that every benchmark in this repository is reproducible from its
    integer seed alone. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] draws from [t] to seed a new, statistically independent
    generator.  Useful to give each benchmark instance its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate by the Box-Muller transform. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    an empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [\[0, n)], in increasing order.  Requires [0 <= k <= n]. *)
