lib/power/design_space.mli: Noc_arch Noc_traffic Noc_util
