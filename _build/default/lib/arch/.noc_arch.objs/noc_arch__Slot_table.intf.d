lib/arch/slot_table.mli: Format
