(** Textual design-spec format.

    Lets a user describe a multi-use-case SoC in a plain file and run
    the whole flow from the command line ([nocmap map --spec FILE]).
    The format, line-oriented, [#] starts a comment:

    {v
    name set-top-box        # optional; defaults to the supplied name
    cores 7

    use-case video
      flow 0 -> 1 bw 100
      flow 1 -> 2 bw 75 lat 500       # latency bound in ns
      flow 2 -> 3 bw 40 be            # best-effort: no reservation

    use-case record
      flow 0 -> 4 bw 120

    parallel video record             # these may run concurrently
    smooth video record               # these need smooth switching
    v}

    Use-case names must be declared before they are referenced by
    [parallel]/[smooth]; ids are assigned in declaration order. *)

type error = {
  line : int;     (** 1-based line of the offending text *)
  message : string;
}

(** One parsed declaration.  [Bad] keeps the message of a line that
    failed tokenization or shape checks, so a document with syntax
    errors can still be analyzed as a whole. *)
type event =
  | Name of string
  | Cores of int
  | Use_case_decl of string
  | Flow_decl of Noc_traffic.Flow.t  (** attached to the enclosing use-case *)
  | Parallel of string list
  | Smooth of string * string
  | Bad of string

type doc = {
  doc_name : string;  (** fallback design name (e.g. the file name) *)
  events : (int * event) list;
      (** declarations with their 1-based source lines, in file order *)
}

val parse_doc : name:string -> string -> doc
(** Tokenize a spec into located declarations.  Never fails: lines
    that do not parse become [Bad] events.  Semantic checks (core
    counts, name resolution, flow validation) happen in {!resolve} —
    or leniently in the [Noc_analysis] lint passes, which is why the
    two stages are separate. *)

val resolve : doc -> (Design_flow.spec, error) result
(** Replay a document's events with the full semantic checks; the
    first offending declaration (or [Bad] line) aborts with its source
    line. *)

val parse : name:string -> string -> (Design_flow.spec, error) result
(** [resolve] of [parse_doc]: parse a complete spec document.  [name]
    is the fallback design name (e.g. the file name). *)

val parse_file : string -> (Design_flow.spec, error) result
(** Read and [parse] a file; I/O failures surface as an [error] on
    line 0. *)

val doc_of_file : string -> (doc, error) result
(** Read and [parse_doc] a file; only I/O failures are errors. *)

val to_text : Design_flow.spec -> string
(** Render a spec back into the textual format ([parse] of the result
    reproduces the spec — used by tests as a round-trip property). *)

val pp_error : Format.formatter -> error -> unit
