type service =
  | Gt
  | Be

type t = {
  flow_id : int;
  use_case : int;
  src_core : int;
  dst_core : int;
  src_switch : int;
  dst_switch : int;
  bandwidth : Noc_util.Units.bandwidth;
  service : service;
  links : int list;
  slot_starts : int list;
}

let hops t = List.length t.links

let uses_link t l = List.mem l t.links

let worst_case_latency_ns ~config t =
  match (t.service, t.links) with
  | Be, _ -> infinity
  | Gt, [] -> Noc_config.slot_duration_ns config
  | Gt, _ -> Tdma.worst_case_latency_ns ~config ~starts:t.slot_starts ~hops:(hops t)

let pp ppf t =
  Format.fprintf ppf "flow %d (uc %d%s): sw%d -> sw%d via [%s] slots [%s]" t.flow_id
    t.use_case
    (match t.service with Gt -> "" | Be -> ", BE")
    t.src_switch t.dst_switch
    (String.concat ";" (List.map string_of_int t.links))
    (String.concat ";" (List.map string_of_int t.slot_starts))
