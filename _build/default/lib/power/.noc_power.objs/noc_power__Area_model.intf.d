lib/power/area_model.mli: Noc_arch Noc_core Noc_util
