lib/benchkit/experiments.ml: Float List Noc_arch Noc_core Noc_power Noc_traffic Noc_util Printf Soc_designs Synthetic Sys
