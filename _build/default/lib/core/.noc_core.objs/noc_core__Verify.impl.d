lib/core/verify.ml: Array Format Hashtbl List Mapping Noc_arch Noc_traffic Option Printf Resources
