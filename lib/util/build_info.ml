let version = "1.1.0"

(* Size + 64 KiB head/tail samples instead of hashing the whole binary:
   relinking perturbs layout and embedded metadata throughout the file,
   so any rebuild changes the digest, while startup cost stays sub-ms
   even for large executables. *)
let sample_bytes = 65536

let computed =
  lazy
    (try
       let path = Sys.executable_name in
       In_channel.with_open_bin path (fun ic ->
           let len = In_channel.length ic in
           let read_at pos n =
             In_channel.seek ic pos;
             match In_channel.really_input_string ic n with
             | Some s -> s
             | None -> ""
           in
           let head = read_at 0L (min sample_bytes (Int64.to_int len)) in
           let tail_len = min sample_bytes (Int64.to_int len) in
           let tail = read_at (Int64.sub len (Int64.of_int tail_len)) tail_len in
           Digest.to_hex
             (Digest.string (Printf.sprintf "%Ld\n%s\n%s" len head tail)))
     with _ -> "unreadable-executable")

let fingerprint () = Lazy.force computed

let describe () = version ^ "+build." ^ fingerprint ()
