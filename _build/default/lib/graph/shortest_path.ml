type path = { nodes : int list; edges : int list; cost : float }

(* Dijkstra with lazy-deletion heap.  parent.(v) = (u, edge) used to
   reach v on the current best path. *)
let dijkstra_internal g ~cost ~source ~target =
  let n = Intgraph.node_count g in
  if source < 0 || source >= n then invalid_arg "Shortest_path: bad source";
  let dist = Array.make n infinity in
  let parent_node = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Priority_queue.create () in
  dist.(source) <- 0.0;
  Priority_queue.push heap ~priority:0.0 source;
  let stop = ref false in
  while (not !stop) && not (Priority_queue.is_empty heap) do
    match Priority_queue.pop_min heap with
    | None -> stop := true
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        (match target with Some t when t = u -> stop := true | _ -> ());
        if not !stop then
          Intgraph.iter_succ g u (fun v eid ->
              if not settled.(v) then
                match cost ~edge:eid ~src:u ~dst:v with
                | None -> ()
                | Some c ->
                  if c < 0.0 then invalid_arg "Shortest_path: negative cost";
                  let nd = d +. c in
                  if nd < dist.(v) then begin
                    dist.(v) <- nd;
                    parent_node.(v) <- u;
                    parent_edge.(v) <- eid;
                    Priority_queue.push heap ~priority:nd v
                  end)
      end
  done;
  (dist, parent_node, parent_edge)

let rebuild ~source ~target dist parent_node parent_edge =
  if dist.(target) = infinity then None
  else begin
    let rec walk v nodes edges =
      if v = source then (v :: nodes, edges)
      else walk parent_node.(v) (v :: nodes) (parent_edge.(v) :: edges)
    in
    let nodes, edges = walk target [] [] in
    Some { nodes; edges; cost = dist.(target) }
  end

let dijkstra g ~cost ~source ~target =
  let n = Intgraph.node_count g in
  if target < 0 || target >= n then invalid_arg "Shortest_path: bad target";
  let dist, pnode, pedge = dijkstra_internal g ~cost ~source ~target:(Some target) in
  rebuild ~source ~target dist pnode pedge

let dijkstra_all g ~cost ~source =
  let dist, _, pedge = dijkstra_internal g ~cost ~source ~target:None in
  (dist, pedge)

let hop_path g ~source ~target =
  dijkstra g ~cost:(fun ~edge:_ ~src:_ ~dst:_ -> Some 1.0) ~source ~target
