(* Tests for Noc_benchkit: synthetic generators (Sec 6.1), the SoC
   design models and the experiment harness plumbing. *)

module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs
module E = Noc_benchkit.Experiments
module DF = Noc_core.Design_flow

let small_params =
  { Syn.spread_params with cores = 10; flows_lo = 10; flows_hi = 25 }

(* --- synthetic generator --------------------------------------------------- *)

let test_generate_deterministic () =
  let a = Syn.generate ~seed:5 ~params:small_params ~use_cases:3 in
  let b = Syn.generate ~seed:5 ~params:small_params ~use_cases:3 in
  List.iter2
    (fun x y ->
      Alcotest.(check int) "same flow count" (U.flow_count x) (U.flow_count y);
      Alcotest.(check (float 1e-9)) "same totals" (U.total_bandwidth x) (U.total_bandwidth y))
    a b

let test_generate_seed_sensitivity () =
  let a = Syn.generate ~seed:5 ~params:small_params ~use_cases:1 in
  let b = Syn.generate ~seed:6 ~params:small_params ~use_cases:1 in
  Alcotest.(check bool) "different totals" true
    (U.total_bandwidth (List.hd a) <> U.total_bandwidth (List.hd b))

let test_generate_prefix_property () =
  (* The sequential PRNG makes shorter runs prefixes of longer ones. *)
  let five = Syn.generate ~seed:9 ~params:small_params ~use_cases:5 in
  let two = Syn.generate ~seed:9 ~params:small_params ~use_cases:2 in
  List.iteri
    (fun i u ->
      let v = List.nth five i in
      Alcotest.(check (float 1e-9)) "same" (U.total_bandwidth u) (U.total_bandwidth v))
    two

let test_generate_ids_positional () =
  let ucs = Syn.generate ~seed:1 ~params:small_params ~use_cases:4 in
  List.iteri (fun i u -> Alcotest.(check int) "positional id" i u.U.id) ucs

let test_generate_flow_counts_in_range () =
  let ucs = Syn.generate ~seed:2 ~params:small_params ~use_cases:10 in
  List.iter
    (fun u ->
      let n = U.flow_count u in
      Alcotest.(check bool) "within range" true
        (n >= small_params.Syn.flows_lo && n <= small_params.Syn.flows_hi))
    ucs

let test_generate_bandwidths_within_clusters () =
  let max_hi =
    List.fold_left (fun acc c -> Float.max acc c.Syn.bw_hi) 0.0 small_params.Syn.clusters
  in
  let min_lo =
    List.fold_left (fun acc c -> Float.min acc c.Syn.bw_lo) infinity small_params.Syn.clusters
  in
  let ucs = Syn.generate ~seed:3 ~params:small_params ~use_cases:5 in
  List.iter
    (fun u ->
      List.iter
        (fun f ->
          (* activity scales down to activity_lo, merges may sum pairs up *)
          Alcotest.(check bool) "within scaled cluster band" true
            (f.Flow.bandwidth >= min_lo *. small_params.Syn.activity_lo *. 0.99
            && f.Flow.bandwidth <= 3.0 *. max_hi))
        u.U.flows)
    ucs

let test_generate_latency_only_on_control () =
  let ucs = Syn.generate ~seed:4 ~params:small_params ~use_cases:5 in
  List.iter
    (fun u ->
      List.iter
        (fun f ->
          if f.Flow.latency_ns <> infinity then
            (* only the control cluster is latency-constrained: 400-900 ns *)
            Alcotest.(check bool) "control latency band" true
              (f.Flow.latency_ns >= 400.0 && f.Flow.latency_ns <= 900.0))
        u.U.flows)
    ucs

let test_bottleneck_concentration () =
  let params =
    {
      small_params with
      Syn.pattern = Syn.Bottleneck { hotspots = 1; fraction = 0.7 };
      flows_lo = 40;
      flows_hi = 60;
      cores = 12;
    }
  in
  let ucs = Syn.generate ~seed:11 ~params ~use_cases:4 in
  List.iter
    (fun u ->
      let touching =
        List.length (List.filter (fun f -> f.Flow.src = 0 || f.Flow.dst = 0) u.U.flows)
      in
      let frac = float_of_int touching /. float_of_int (U.flow_count u) in
      Alcotest.(check bool)
        (Printf.sprintf "hotspot share %.2f" frac)
        true (frac > 0.4))
    ucs

let test_spread_not_concentrated () =
  let ucs = Syn.generate ~seed:12 ~params:{ small_params with Syn.flows_lo = 40; flows_hi = 60 } ~use_cases:4 in
  List.iter
    (fun u ->
      let touching =
        List.length (List.filter (fun f -> f.Flow.src = 0 || f.Flow.dst = 0) u.U.flows)
      in
      let frac = float_of_int touching /. float_of_int (U.flow_count u) in
      Alcotest.(check bool) "no hotspot" true (frac < 0.5))
    ucs

let test_family_similarity () =
  let ucs = Syn.generate_family ~seed:13 ~params:small_params ~use_cases:4 ~similarity:0.9 in
  let pairs u = List.map Flow.pair u.U.flows |> List.sort_uniq compare in
  let base = pairs (List.hd ucs) in
  List.iter
    (fun u ->
      let shared = List.length (List.filter (fun p -> List.mem p base) (pairs u)) in
      let frac = float_of_int shared /. float_of_int (List.length base) in
      Alcotest.(check bool) "most base pairs kept" true (frac > 0.6))
    (List.tl ucs)

let test_family_zero_similarity_distinct () =
  let ucs = Syn.generate_family ~seed:14 ~params:small_params ~use_cases:2 ~similarity:0.0 in
  let pairs u = List.map Flow.pair u.U.flows |> List.sort_uniq compare in
  let base = pairs (List.hd ucs) in
  let derived = pairs (List.nth ucs 1) in
  let shared = List.length (List.filter (fun p -> List.mem p base) derived) in
  (* random overlap is possible but must be far from total *)
  Alcotest.(check bool) "mostly fresh" true
    (float_of_int shared /. float_of_int (List.length derived) < 0.7)

let test_generate_rejections () =
  let bad name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  bad "zero use-cases" (fun () -> Syn.generate ~seed:0 ~params:small_params ~use_cases:0);
  bad "one core" (fun () ->
      Syn.generate ~seed:0 ~params:{ small_params with Syn.cores = 1 } ~use_cases:1);
  bad "bad flow range" (fun () ->
      Syn.generate ~seed:0 ~params:{ small_params with Syn.flows_lo = 9; flows_hi = 2 } ~use_cases:1);
  bad "bad similarity" (fun () ->
      Syn.generate_family ~seed:0 ~params:small_params ~use_cases:2 ~similarity:1.5);
  bad "bad activity" (fun () ->
      Syn.generate ~seed:0 ~params:{ small_params with Syn.activity_lo = 0.0 } ~use_cases:1)

(* --- SoC designs ------------------------------------------------------------ *)

let test_viper_fragments_shape () =
  Alcotest.(check int) "uc1 has 7 flows" 7 (U.flow_count SD.viper_fragment_1);
  Alcotest.(check int) "uc2 has 8 flows" 8 (U.flow_count SD.viper_fragment_2);
  Alcotest.(check int) "7 cores" 7 SD.viper_fragment_1.U.cores;
  (* the published bandwidth multiset for use-case 1 *)
  let bws u = List.sort compare (List.map (fun f -> f.Flow.bandwidth) u.U.flows) in
  Alcotest.(check (list (float 1e-9))) "fig 2a values"
    [ 50.0; 50.0; 50.0; 100.0; 100.0; 150.0; 200.0 ]
    (bws SD.viper_fragment_1)

let test_example1_matches_paper () =
  match SD.example1_use_cases with
  | [ u1; u2 ] ->
    (* the largest flow across both use-cases is C3->C4 at 100 MB/s *)
    Alcotest.(check (float 1e-9)) "uc1 max" 100.0 (U.max_bandwidth u1);
    Alcotest.(check (float 1e-9)) "uc2 max" 52.0 (U.max_bandwidth u2);
    (match U.find_flow u1 ~src:2 ~dst:3 with
    | Some f -> Alcotest.(check (float 1e-9)) "C3->C4" 100.0 f.Flow.bandwidth
    | None -> Alcotest.fail "C3->C4 missing")
  | _ -> Alcotest.fail "two use-cases expected"

let test_designs_have_paper_scale () =
  let check_design name ucs expected_ucs =
    Alcotest.(check int) (name ^ " use-case count") expected_ucs (List.length ucs);
    List.iter
      (fun u ->
        let n = U.flow_count u in
        Alcotest.(check bool)
          (Printf.sprintf "%s flows 50-150 (%d)" name n)
          true
          (n >= 40 && n <= 150))
      ucs
  in
  check_design "D1" (SD.d1 ()) 4;
  check_design "D2" (SD.d2 ()) 20;
  check_design "D3" (SD.d3 ()) 8;
  check_design "D4" (SD.d4 ()) 20

let test_designs_deterministic () =
  let a = SD.d1 () and b = SD.d1 () in
  List.iter2
    (fun x y ->
      Alcotest.(check (float 1e-9)) "same totals" (U.total_bandwidth x) (U.total_bandwidth y))
    a b

let test_fig4_spec_groups () =
  match DF.run (SD.fig4_spec ()) with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check (list (list int))) "the four groups of Figure 4"
      [ [ 0; 1; 2; 8 ]; [ 3; 4; 9 ]; [ 5; 6 ]; [ 7 ] ]
      d.DF.groups

(* --- experiments plumbing ----------------------------------------------------- *)

let test_fig6_rows_small () =
  let rows = E.fig6b ~counts:[ 2 ] () in
  match rows with
  | [ r ] ->
    Alcotest.(check string) "label" "Sp-2" r.E.label;
    Alcotest.(check bool) "ours feasible" true (r.E.ours.E.switches <> None);
    (match r.E.ratio with
    | Some x -> Alcotest.(check bool) "ratio <= 1" true (x <= 1.0 +. 1e-9)
    | None -> Alcotest.fail "both methods should map at 2 use-cases")
  | _ -> Alcotest.fail "one row expected"

let test_ablation_slot_sweep_monotone () =
  let rows = Noc_benchkit.Ablations.slot_table_sweep ~sizes:[ 16; 32 ] () in
  match rows with
  | [ small; large ] ->
    (match (small.Noc_benchkit.Ablations.ours_switches, large.Noc_benchkit.Ablations.ours_switches) with
    | Some a, Some b -> Alcotest.(check bool) "finer slots never hurt" true (b <= a)
    | _ -> Alcotest.fail "both sizes should map")
  | _ -> Alcotest.fail "two rows expected"

let test_ablation_grouping_tradeoff () =
  let rows = Noc_benchkit.Ablations.grouping_effect () in
  Alcotest.(check int) "three groupings" 3 (List.length rows);
  let first = List.hd rows and last = List.nth rows 2 in
  (* fully re-configurable <= fully shared in NoC size; fully shared
     needs zero rewrites *)
  (match (first.Noc_benchkit.Ablations.switches, last.Noc_benchkit.Ablations.switches) with
  | Some a, Some b -> Alcotest.(check bool) "reconfigurability shrinks the NoC" true (a <= b)
  | _ -> Alcotest.fail "groupings should map");
  Alcotest.(check (option int)) "one group rewrites nothing" (Some 0)
    last.Noc_benchkit.Ablations.worst_reconfig_writes

let test_fig7c_monotone () =
  let rows = E.fig7c ~max_parallel:2 () in
  match rows with
  | [ one; two ] ->
    Alcotest.(check int) "labels" 1 one.E.parallel;
    (match (one.E.freq_mhz, two.E.freq_mhz) with
    | Some a, Some b -> Alcotest.(check bool) "more parallel, more MHz" true (b >= a)
    | _ -> Alcotest.fail "both parallelism levels must be feasible")
  | _ -> Alcotest.fail "two rows expected"

let () =
  Alcotest.run "noc_benchkit"
    [
      ( "synthetic",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generate_seed_sensitivity;
          Alcotest.test_case "prefix property" `Quick test_generate_prefix_property;
          Alcotest.test_case "positional ids" `Quick test_generate_ids_positional;
          Alcotest.test_case "flow counts" `Quick test_generate_flow_counts_in_range;
          Alcotest.test_case "cluster bandwidths" `Quick test_generate_bandwidths_within_clusters;
          Alcotest.test_case "control latency" `Quick test_generate_latency_only_on_control;
          Alcotest.test_case "bottleneck concentration" `Quick test_bottleneck_concentration;
          Alcotest.test_case "spread balance" `Quick test_spread_not_concentrated;
          Alcotest.test_case "family similarity" `Quick test_family_similarity;
          Alcotest.test_case "family zero similarity" `Quick test_family_zero_similarity_distinct;
          Alcotest.test_case "rejections" `Quick test_generate_rejections;
        ] );
      ( "soc_designs",
        [
          Alcotest.test_case "viper fragments" `Quick test_viper_fragments_shape;
          Alcotest.test_case "example 1" `Quick test_example1_matches_paper;
          Alcotest.test_case "paper scale" `Quick test_designs_have_paper_scale;
          Alcotest.test_case "deterministic" `Quick test_designs_deterministic;
          Alcotest.test_case "figure 4 spec" `Quick test_fig4_spec_groups;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig6 rows" `Quick test_fig6_rows_small;
          Alcotest.test_case "ablation: slot sweep" `Slow test_ablation_slot_sweep_monotone;
          Alcotest.test_case "ablation: grouping" `Slow test_ablation_grouping_tradeoff;
          Alcotest.test_case "fig7c monotone" `Slow test_fig7c_monotone;
        ] );
    ]
