(** Ablation studies over the methodology's design choices.

    The paper fixes several knobs (slot-table size, per-group
    configuration sharing, min-cost path selection, optional annealing);
    these sweeps quantify what each choice buys on the repository's
    deterministic benchmarks.  Printed by [bench/main.exe] and
    [bin/nocmap.exe experiments ablations]. *)

type slot_row = {
  slots : int;
  ours_switches : int option;
  wc_switches : int option;
}

val slot_table_sweep : ?sizes:int list -> unit -> slot_row list
(** Effect of the TDMA slot-table size (default sizes 8, 16, 32, 64) on
    the NoC size, for both methods, on the Sp-10 benchmark.  Small
    tables allocate bandwidth coarsely and align poorly; large tables
    cost switch area (see {!Noc_power.Area_model}). *)

type grouping_row = {
  label : string;
  switches : int option;
  worst_reconfig_writes : int option;
      (** slot writes of the costliest use-case switching *)
}

val grouping_effect : unit -> grouping_row list
(** Effect of the smooth-switching constraint set on the Sp-5
    benchmark: no groups (every switching re-configurable — the paper's
    best case), one big group (every use-case shares one configuration
    — no re-configuration ever, approaching the worst-case method), and
    pairwise groups in between.  Shows why identifying re-configurable
    switchings (Algorithm 1) is what makes the method scale. *)

type routing_row = {
  label : string;
  switches : int option;
  weighted_hops : float option;
}

val routing_effect : unit -> routing_row list
(** Min-cost path selection vs dimension-ordered (XY) routing on D1:
    XY is deadlock-free by construction but cannot route around
    congested regions. *)

type refinement_row = {
  label : string;
  weighted_hops : float option;
  switches : int option;
}

val refinement_effect : unit -> refinement_row list
(** Greedy mapping alone vs + simulated annealing vs + tabu search
    (paper §5's optional exploration step) on D1: bandwidth-weighted
    hop count, the power-oriented cost. *)

val print_all : unit -> unit
