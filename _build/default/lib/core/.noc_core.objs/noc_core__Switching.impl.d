lib/core/switching.ml: Array Compound Format List Noc_graph Noc_traffic String
