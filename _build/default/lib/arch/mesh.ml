type kind =
  | Mesh
  | Torus

type direction =
  | East
  | West
  | North
  | South

type t = {
  kind : kind;
  width : int;
  height : int;
  graph : Noc_graph.Intgraph.t;
  endpoints : (int * int) array; (* link id -> (src, dst) *)
  by_pair : (int * int, int) Hashtbl.t; (* (src, dst) -> link id *)
}

let switch_index ~width ~x ~y = (y * width) + x

let create_kind ~kind ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Mesh.create: non-positive dimension";
  let n = width * height in
  let g = Noc_graph.Intgraph.create ~directed:true ~nodes:n in
  let links = ref [] in
  let by_pair = Hashtbl.create (4 * n) in
  let add u v =
    let id = Noc_graph.Intgraph.add_edge g u v in
    links := (u, v) :: !links;
    Hashtbl.replace by_pair (u, v) id
  in
  let add_bidir u v =
    add u v;
    add v u
  in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let u = switch_index ~width ~x ~y in
      if x + 1 < width then add_bidir u (switch_index ~width ~x:(x + 1) ~y);
      if y + 1 < height then add_bidir u (switch_index ~width ~x ~y:(y + 1))
    done
  done;
  (* Torus wraparound: only on dimensions > 2, so the wrap link is not
     parallel to an existing neighbour link. *)
  if kind = Torus then begin
    if width > 2 then
      for y = 0 to height - 1 do
        add_bidir (switch_index ~width ~x:(width - 1) ~y) (switch_index ~width ~x:0 ~y)
      done;
    if height > 2 then
      for x = 0 to width - 1 do
        add_bidir (switch_index ~width ~x ~y:(height - 1)) (switch_index ~width ~x ~y:0)
      done
  end;
  { kind; width; height; graph = g; endpoints = Array.of_list (List.rev !links); by_pair }

let create ~width ~height = create_kind ~kind:Mesh ~width ~height

let with_express t ~express =
  let n = t.width * t.height in
  let g = Noc_graph.Intgraph.create ~directed:true ~nodes:n in
  let links = ref [] in
  let by_pair = Hashtbl.create (4 * n) in
  let add u v =
    let id = Noc_graph.Intgraph.add_edge g u v in
    links := (u, v) :: !links;
    Hashtbl.replace by_pair (u, v) id
  in
  (* replay the grid links in id order, then append the express pairs *)
  Array.iter (fun (u, v) -> add u v) t.endpoints;
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Mesh.with_express: switch out of range";
      if a = b then invalid_arg "Mesh.with_express: self loop";
      if Hashtbl.mem by_pair (a, b) || Hashtbl.mem by_pair (b, a) then
        invalid_arg "Mesh.with_express: pair already linked";
      add a b;
      add b a)
    express;
  { t with graph = g; endpoints = Array.of_list (List.rev !links); by_pair }

let kind t = t.kind
let width t = t.width
let height t = t.height
let switch_count t = t.width * t.height
let link_count t = Array.length t.endpoints
let graph t = t.graph

let coord t s =
  if s < 0 || s >= switch_count t then invalid_arg "Mesh.coord: bad switch";
  (s mod t.width, s / t.width)

let switch_at t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Mesh.switch_at: out of grid";
  switch_index ~width:t.width ~x ~y

let link_endpoints t id =
  if id < 0 || id >= link_count t then invalid_arg "Mesh.link_endpoints: bad link";
  t.endpoints.(id)

let link_between t ~src ~dst = Hashtbl.find_opt t.by_pair (src, dst)

let wraps t dim = t.kind = Torus && dim > 2

let neighbor_toward t s dir =
  let x, y = coord t s in
  let dx, dy = match dir with East -> (1, 0) | West -> (-1, 0) | North -> (0, -1) | South -> (0, 1) in
  let nx = x + dx and ny = y + dy in
  let wrap v dim = ((v mod dim) + dim) mod dim in
  if nx >= 0 && nx < t.width && ny >= 0 && ny < t.height then
    Some (switch_at t ~x:nx ~y:ny)
  else if (nx < 0 || nx >= t.width) && wraps t t.width then
    Some (switch_at t ~x:(wrap nx t.width) ~y)
  else if (ny < 0 || ny >= t.height) && wraps t t.height then
    Some (switch_at t ~x ~y:(wrap ny t.height))
  else None

(* Signed per-axis displacement under minimal routing: the shorter way
   around on a wrapping axis. *)
let axis_delta t ~from_v ~to_v ~dim =
  let d = to_v - from_v in
  if not (wraps t dim) then d
  else begin
    let fwd = ((d mod dim) + dim) mod dim in
    let bwd = fwd - dim in
    if fwd <= -bwd then fwd else bwd
  end

let manhattan t a b =
  let xa, ya = coord t a and xb, yb = coord t b in
  abs (axis_delta t ~from_v:xa ~to_v:xb ~dim:t.width)
  + abs (axis_delta t ~from_v:ya ~to_v:yb ~dim:t.height)

let xy_route t ~src ~dst =
  let xs, ys = coord t src and xd, yd = coord t dst in
  let wrap v dim = ((v mod dim) + dim) mod dim in
  let step_x = if axis_delta t ~from_v:xs ~to_v:xd ~dim:t.width >= 0 then 1 else -1 in
  let step_y = if axis_delta t ~from_v:ys ~to_v:yd ~dim:t.height >= 0 then 1 else -1 in
  let rec go x y acc =
    if x <> xd then begin
      let nx = wrap (x + step_x) t.width in
      let l = Option.get (link_between t ~src:(switch_at t ~x ~y) ~dst:(switch_at t ~x:nx ~y)) in
      go nx y (l :: acc)
    end
    else if y <> yd then begin
      let ny = wrap (y + step_y) t.height in
      let l = Option.get (link_between t ~src:(switch_at t ~x ~y) ~dst:(switch_at t ~x ~y:ny)) in
      go x ny (l :: acc)
    end
    else List.rev acc
  in
  go xs ys []

let center t = switch_at t ~x:((t.width - 1) / 2) ~y:((t.height - 1) / 2)

let growth_sequence ~max_dim =
  if max_dim <= 0 then invalid_arg "Mesh.growth_sequence";
  let rec go w h acc =
    if w > max_dim then List.rev acc
    else if w = h then go (w + 1) h ((w, h) :: acc)
    else go w (h + 1) ((w, h) :: acc)
  in
  go 1 1 []

let pp ppf t =
  Format.fprintf ppf "%dx%d %s (%d switches)" t.width t.height
    (match t.kind with Mesh -> "mesh" | Torus -> "torus")
    (switch_count t)
