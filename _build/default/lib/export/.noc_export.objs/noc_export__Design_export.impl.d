lib/export/design_export.ml: Array Json List Noc_arch Noc_core Noc_traffic
