(** Pre-mapping passes: spec well-formedness and static feasibility.

    {!check} walks a located document ({!Noc_core.Spec_parser.doc})
    leniently: every problem becomes a diagnostic instead of aborting,
    and a best-effort spec is still assembled from the valid
    declarations so the feasibility passes can run on a broken file.
    A spec that the strict parser accepts, maps and verifies produces
    no error-severity diagnostics (the lint-cleanliness property test).

    Well-formedness passes: [syntax], [cores], [missing-cores],
    [no-use-cases], [duplicate-use-case], [orphan-flow], [self-flow],
    [zero-bandwidth], [flow-range], [nonpositive-latency],
    [be-latency], [duplicate-flow], [unreachable-use-case],
    [parallel-arity], [dangling-ref], [forward-ref], [duplicate-ref],
    [self-smooth], [redundant-smooth].

    Feasibility passes ({!feasibility}): [infeasible-flow] (a flow no
    mesh of any size can carry, with its declaring line),
    [infeasible-design] (certificate rejects every size up to the
    growth cap), [certified-start] (info: where the pruned growth
    search begins), plus [config]/[compound] for inputs the certifier
    cannot accept. *)

type analysis = {
  diagnostics : Diagnostic.t list;  (** in source order *)
  spec : Noc_core.Design_flow.spec option;
      (** best-effort resolution; [None] when cores or use-cases are
          missing entirely *)
}

val check : Noc_core.Spec_parser.doc -> analysis

val feasibility :
  ?config:Noc_arch.Noc_config.t ->
  doc:Noc_core.Spec_parser.doc ->
  Noc_core.Design_flow.spec ->
  Diagnostic.t list * Noc_core.Feasibility.t option
(** Certify the spec (after compound generation and grouping, exactly
    as the mapper sees it) and render the certificate's verdicts as
    diagnostics; flow-level impossibilities point at the declaring
    spec line. *)

val flow_line : Noc_core.Spec_parser.doc -> src:int -> dst:int -> int option
(** First source line declaring a flow on this ordered pair. *)
