type 'a entry = { prio : float; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let fresh = Array.make ncap t.data.(0) in
    Array.blit t.data 0 fresh 0 t.size;
    t.data <- fresh
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).prio < t.data.(parent).prio then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.data.(l).prio < t.data.(!smallest).prio then smallest := l;
  if r < t.size && t.data.(r).prio < t.data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority value =
  let entry = { prio = priority; value } in
  if Array.length t.data = 0 then t.data <- Array.make 8 entry;
  grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop_min t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek_min t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let clear t = t.size <- 0
