lib/core/path_select.mli: Noc_arch Noc_traffic Noc_util Resources
