module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh

let f_max_mhz = 2600.0

(* Calibration (mm2, 130 nm class):
   - crossbar wiring/muxing grows with arity^2,
   - per-port buffering and the slot table grow linearly,
   - timing-driven sizing multiplies cell area as f approaches f_max
     (a 1/(1 - (f/fmax)^2)-style blow-up, capped by f < f_max). *)
let crossbar_mm2_per_port2 = 0.0022
let port_mm2 = 0.008
let slot_mm2 = 0.0009
let base_mm2 = 0.02

let timing_factor ~freq_mhz =
  let x = freq_mhz /. f_max_mhz in
  1.0 +. (0.9 *. (x ** 2.0) /. (1.0 -. (x ** 2.0) +. 0.35))

let switch_area ~config ~arity =
  if arity <= 0 then invalid_arg "Area_model.switch_area: arity must be positive";
  let f = config.Config.freq_mhz in
  if f > f_max_mhz then
    invalid_arg (Printf.sprintf "Area_model: %.0f MHz exceeds the %.0f MHz model limit" f f_max_mhz);
  let a = float_of_int arity in
  let logic =
    base_mm2
    +. (crossbar_mm2_per_port2 *. a *. a)
    +. (port_mm2 *. a)
    +. (slot_mm2 *. float_of_int config.Config.slots *. a)
  in
  logic *. timing_factor ~freq_mhz:f

let switch_arity (m : Noc_core.Mapping.t) s =
  let mesh = m.Noc_core.Mapping.mesh in
  let links = Noc_graph.Intgraph.degree (Mesh.graph mesh) s in
  let nis = Array.fold_left (fun acc sw -> if sw = s then acc + 1 else acc) 0 m.Noc_core.Mapping.placement in
  links + nis

let noc_area (m : Noc_core.Mapping.t) =
  let mesh = m.Noc_core.Mapping.mesh in
  let config = m.Noc_core.Mapping.config in
  let total = ref 0.0 in
  for s = 0 to Mesh.switch_count mesh - 1 do
    (* Every switch needs at least one port to exist in the layout. *)
    let arity = max 1 (switch_arity m s) in
    total := !total +. switch_area ~config ~arity
  done;
  !total
