lib/arch/service_curve.mli: Noc_config Noc_util Route
