(* Tests for Noc_arch: configuration, mesh topology, slot tables, TDMA
   alignment, routes, turn-model deadlock analysis. *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module St = Noc_arch.Slot_table
module Tdma = Noc_arch.Tdma
module Route = Noc_arch.Route
module Turn = Noc_arch.Turn_model

let check_float = Alcotest.(check (float 1e-9))

(* --- config ----------------------------------------------------------- *)

let test_config_default_valid () =
  Alcotest.(check bool) "default validates" true (Config.validate Config.default = Ok ())

let test_config_capacity () =
  check_float "paper operating point" 2000.0 (Config.link_capacity Config.default);
  check_float "slot bandwidth" (2000.0 /. 32.0) (Config.slot_bandwidth Config.default)

let test_config_slot_duration () =
  (* 4 cycles at 500 MHz = 8 ns *)
  check_float "slot duration" 8.0 (Config.slot_duration_ns Config.default)

let test_config_with_freq () =
  let c = Config.with_freq Config.default 1000.0 in
  check_float "doubled capacity" 4000.0 (Config.link_capacity c)

let test_config_slots_for_bandwidth () =
  Alcotest.(check int) "zero" 0 (Config.slots_for_bandwidth Config.default 0.0);
  Alcotest.(check int) "one slot" 1 (Config.slots_for_bandwidth Config.default 62.5);
  Alcotest.(check int) "full link" 32 (Config.slots_for_bandwidth Config.default 2000.0)

let test_config_rejections () =
  let bad check cfg = Alcotest.(check bool) check true (Result.is_error (Config.validate cfg)) in
  bad "freq" { Config.default with freq_mhz = 0.0 };
  bad "width" { Config.default with link_width_bits = 0 };
  bad "slots" { Config.default with slots = 0 };
  bad "slot cycles" { Config.default with slot_cycles = -1 };
  bad "nis" { Config.default with nis_per_switch = 0 };
  bad "mesh dim" { Config.default with max_mesh_dim = 0 };
  bad "hw factor" { Config.default with placement_hw_factor = 0.0 };
  bad "spread factor" { Config.default with placement_spread_factor = -1.0 }

(* --- mesh ------------------------------------------------------------- *)

let test_mesh_counts () =
  let m = Mesh.create ~width:3 ~height:2 in
  Alcotest.(check int) "switches" 6 (Mesh.switch_count m);
  (* directed links: 2*(w*(h-1) + h*(w-1)) = 2*(3*1 + 2*2) = 14 *)
  Alcotest.(check int) "links" 14 (Mesh.link_count m)

let test_mesh_1x1 () =
  let m = Mesh.create ~width:1 ~height:1 in
  Alcotest.(check int) "one switch" 1 (Mesh.switch_count m);
  Alcotest.(check int) "no links" 0 (Mesh.link_count m)

let test_mesh_coord_roundtrip () =
  let m = Mesh.create ~width:4 ~height:3 in
  for s = 0 to Mesh.switch_count m - 1 do
    let x, y = Mesh.coord m s in
    Alcotest.(check int) "roundtrip" s (Mesh.switch_at m ~x ~y)
  done

let test_mesh_link_endpoints_adjacent () =
  let m = Mesh.create ~width:3 ~height:3 in
  for l = 0 to Mesh.link_count m - 1 do
    let a, b = Mesh.link_endpoints m l in
    Alcotest.(check int) "adjacent" 1 (Mesh.manhattan m a b)
  done

let test_mesh_link_between () =
  let m = Mesh.create ~width:2 ~height:2 in
  let a = Mesh.switch_at m ~x:0 ~y:0 and b = Mesh.switch_at m ~x:1 ~y:0 in
  (match Mesh.link_between m ~src:a ~dst:b with
  | Some l -> Alcotest.(check (pair int int)) "endpoints" (a, b) (Mesh.link_endpoints m l)
  | None -> Alcotest.fail "adjacent link expected");
  let c = Mesh.switch_at m ~x:1 ~y:1 in
  Alcotest.(check bool) "diagonal has no link" true (Mesh.link_between m ~src:a ~dst:c = None)

let test_mesh_both_directions_distinct () =
  let m = Mesh.create ~width:2 ~height:1 in
  let f = Option.get (Mesh.link_between m ~src:0 ~dst:1) in
  let b = Option.get (Mesh.link_between m ~src:1 ~dst:0) in
  Alcotest.(check bool) "distinct ids" true (f <> b)

let test_mesh_xy_route () =
  let m = Mesh.create ~width:4 ~height:4 in
  let src = Mesh.switch_at m ~x:0 ~y:0 and dst = Mesh.switch_at m ~x:3 ~y:2 in
  let route = Mesh.xy_route m ~src ~dst in
  Alcotest.(check int) "manhattan length" 5 (List.length route);
  (* The route is a connected chain from src to dst. *)
  let final =
    List.fold_left
      (fun at l ->
        let a, b = Mesh.link_endpoints m l in
        Alcotest.(check int) "chain" at a;
        b)
      src route
  in
  Alcotest.(check int) "reaches dst" dst final

let test_mesh_xy_route_same_switch () =
  let m = Mesh.create ~width:2 ~height:2 in
  Alcotest.(check (list int)) "empty" [] (Mesh.xy_route m ~src:0 ~dst:0)

let test_mesh_growth_sequence () =
  let seq = Mesh.growth_sequence ~max_dim:3 in
  Alcotest.(check (list (pair int int))) "sequence" [ (1, 1); (2, 1); (2, 2); (3, 2); (3, 3) ] seq

let test_mesh_growth_monotone () =
  let seq = Mesh.growth_sequence ~max_dim:8 in
  let sizes = List.map (fun (w, h) -> w * h) seq in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly growing" true (increasing sizes)

let test_mesh_center () =
  let m = Mesh.create ~width:3 ~height:3 in
  Alcotest.(check int) "center of 3x3" (Mesh.switch_at m ~x:1 ~y:1) (Mesh.center m)

let test_mesh_rejects_bad_dims () =
  Alcotest.check_raises "zero width" (Invalid_argument "Mesh.create: non-positive dimension")
    (fun () -> ignore (Mesh.create ~width:0 ~height:2))

(* --- torus ------------------------------------------------------------- *)

let test_torus_link_count () =
  let t = Mesh.create_kind ~kind:Mesh.Torus ~width:4 ~height:3 in
  (* mesh links 2*(4*2 + 3*3) = 34, plus x-wrap 2*3 = 6, y-wrap 2*4 = 8 *)
  Alcotest.(check int) "wrap links added" 48 (Mesh.link_count t);
  Alcotest.(check bool) "is torus" true (Mesh.kind t = Mesh.Torus)

let test_torus_small_dims_no_parallel_links () =
  (* width 2 must not create a parallel wrap link *)
  let t = Mesh.create_kind ~kind:Mesh.Torus ~width:2 ~height:2 in
  let m = Mesh.create ~width:2 ~height:2 in
  Alcotest.(check int) "same as mesh" (Mesh.link_count m) (Mesh.link_count t)

let test_torus_wrap_neighbor () =
  let t = Mesh.create_kind ~kind:Mesh.Torus ~width:4 ~height:3 in
  let east_edge = Mesh.switch_at t ~x:3 ~y:1 in
  Alcotest.(check (option int)) "east wraps" (Some (Mesh.switch_at t ~x:0 ~y:1))
    (Mesh.neighbor_toward t east_edge Mesh.East);
  let m = Mesh.create ~width:4 ~height:3 in
  Alcotest.(check (option int)) "mesh boundary" None
    (Mesh.neighbor_toward m east_edge Mesh.East)

let test_torus_manhattan_shorter () =
  let t = Mesh.create_kind ~kind:Mesh.Torus ~width:6 ~height:1 in
  let a = Mesh.switch_at t ~x:0 ~y:0 and b = Mesh.switch_at t ~x:5 ~y:0 in
  Alcotest.(check int) "one wrap hop" 1 (Mesh.manhattan t a b);
  let m = Mesh.create ~width:6 ~height:1 in
  Alcotest.(check int) "mesh distance" 5 (Mesh.manhattan m a b)

let test_torus_xy_route_uses_wrap () =
  let t = Mesh.create_kind ~kind:Mesh.Torus ~width:6 ~height:6 in
  let src = Mesh.switch_at t ~x:0 ~y:0 and dst = Mesh.switch_at t ~x:5 ~y:5 in
  let route = Mesh.xy_route t ~src ~dst in
  (* shorter way around: 1 hop west-wrap + 1 hop north-wrap *)
  Alcotest.(check int) "wrap route length" 2 (List.length route);
  Alcotest.(check int) "matches manhattan" (Mesh.manhattan t src dst) (List.length route)

let test_torus_route_chain_valid () =
  let t = Mesh.create_kind ~kind:Mesh.Torus ~width:5 ~height:4 in
  for src = 0 to Mesh.switch_count t - 1 do
    for dst = 0 to Mesh.switch_count t - 1 do
      let route = Mesh.xy_route t ~src ~dst in
      let final =
        List.fold_left
          (fun at l ->
            let a, b = Mesh.link_endpoints t l in
            Alcotest.(check int) "chain" at a;
            b)
          src route
      in
      Alcotest.(check int) "reaches dst" dst final;
      Alcotest.(check int) "minimal" (Mesh.manhattan t src dst) (List.length route)
    done
  done

(* --- express channels --------------------------------------------------- *)

let test_express_adds_links () =
  let m = Mesh.create ~width:4 ~height:1 in
  let e = Mesh.with_express m ~express:[ (0, 3) ] in
  Alcotest.(check int) "two more directed links" (Mesh.link_count m + 2) (Mesh.link_count e);
  Alcotest.(check bool) "link exists" true (Mesh.link_between e ~src:0 ~dst:3 <> None);
  Alcotest.(check bool) "reverse too" true (Mesh.link_between e ~src:3 ~dst:0 <> None)

let test_express_preserves_grid_link_ids () =
  let m = Mesh.create ~width:3 ~height:3 in
  let e = Mesh.with_express m ~express:[ (0, 8) ] in
  for l = 0 to Mesh.link_count m - 1 do
    Alcotest.(check (pair int int)) "same endpoints" (Mesh.link_endpoints m l)
      (Mesh.link_endpoints e l)
  done

let test_express_shortens_min_cost_path () =
  let m = Mesh.create ~width:6 ~height:1 in
  let e = Mesh.with_express m ~express:[ (0, 5) ] in
  let cost ~edge:_ ~src:_ ~dst:_ = Some 1.0 in
  let hops g =
    match Noc_graph.Shortest_path.dijkstra (Mesh.graph g) ~cost ~source:0 ~target:5 with
    | Some p -> List.length p.Noc_graph.Shortest_path.edges
    | None -> max_int
  in
  Alcotest.(check int) "grid path" 5 (hops m);
  Alcotest.(check int) "express path" 1 (hops e)

let test_express_rejections () =
  let m = Mesh.create ~width:3 ~height:1 in
  let bad name express =
    Alcotest.(check bool) name true
      (try ignore (Mesh.with_express m ~express); false with Invalid_argument _ -> true)
  in
  bad "out of range" [ (0, 9) ];
  bad "self loop" [ (1, 1) ];
  bad "already adjacent" [ (0, 1) ]

(* --- slot table -------------------------------------------------------- *)

let test_slot_table_lifecycle () =
  let t = St.create ~slots:8 in
  Alcotest.(check int) "slots" 8 (St.slots t);
  Alcotest.(check int) "all free" 8 (St.free_count t);
  St.reserve t ~slot:3 ~owner:42;
  Alcotest.(check bool) "taken" false (St.is_free t 3);
  Alcotest.(check (option int)) "owner" (Some 42) (St.owner t 3);
  Alcotest.(check int) "used" 1 (St.used_count t);
  St.release t ~slot:3;
  Alcotest.(check int) "freed" 8 (St.free_count t)

let test_slot_table_modular_indexing () =
  let t = St.create ~slots:8 in
  St.reserve t ~slot:10 ~owner:1;
  (* 10 mod 8 = 2 *)
  Alcotest.(check bool) "slot 2 taken" false (St.is_free t 2);
  Alcotest.(check bool) "negative index wraps" false (St.is_free t (-6))

let test_slot_table_double_reserve_rejected () =
  let t = St.create ~slots:4 in
  St.reserve t ~slot:0 ~owner:1;
  Alcotest.check_raises "double" (Invalid_argument "Slot_table.reserve: slot already owned")
    (fun () -> St.reserve t ~slot:0 ~owner:2)

let test_slot_table_release_owner () =
  let t = St.create ~slots:8 in
  St.reserve t ~slot:0 ~owner:5;
  St.reserve t ~slot:1 ~owner:5;
  St.reserve t ~slot:2 ~owner:6;
  Alcotest.(check int) "freed two" 2 (St.release_owner t ~owner:5);
  Alcotest.(check int) "one left" 1 (St.used_count t)

let test_slot_table_free_slots_sorted () =
  let t = St.create ~slots:5 in
  St.reserve t ~slot:1 ~owner:0;
  St.reserve t ~slot:3 ~owner:0;
  Alcotest.(check (list int)) "free list" [ 0; 2; 4 ] (St.free_slots t)

let test_slot_table_copy_independent () =
  let t = St.create ~slots:4 in
  let c = St.copy t in
  St.reserve t ~slot:0 ~owner:1;
  Alcotest.(check bool) "copy untouched" true (St.is_free c 0)

let test_slot_table_utilization () =
  let t = St.create ~slots:4 in
  St.reserve t ~slot:0 ~owner:0;
  check_float "quarter" 0.25 (St.utilization t)

(* --- tdma --------------------------------------------------------------- *)

let tables n slots = Array.init n (fun _ -> St.create ~slots)

let test_tdma_free_starts_empty_path_tables () =
  let ts = tables 3 8 in
  Alcotest.(check (list int)) "all starts" [ 0; 1; 2; 3; 4; 5; 6; 7 ] (Tdma.free_starts ~tables:ts)

let test_tdma_alignment_shifts () =
  (* Reserving slot 0 on hop 0 and slot 1 on hop 1 with one start=0:
     occupancy must be shifted by one per hop. *)
  let ts = tables 3 8 in
  Tdma.reserve ~tables:ts ~owner:9 ~starts:[ 0 ];
  Alcotest.(check bool) "hop0 slot0" false (St.is_free ts.(0) 0);
  Alcotest.(check bool) "hop1 slot1" false (St.is_free ts.(1) 1);
  Alcotest.(check bool) "hop2 slot2" false (St.is_free ts.(2) 2);
  Alcotest.(check bool) "hop1 slot0 free" true (St.is_free ts.(1) 0)

let test_tdma_start_blocked_by_downstream () =
  let ts = tables 2 8 in
  (* block slot 1 on hop 1 => start 0 infeasible *)
  St.reserve ts.(1) ~slot:1 ~owner:1;
  Alcotest.(check bool) "start 0 blocked" false (Tdma.start_is_free ~tables:ts ~start:0);
  Alcotest.(check bool) "start 1 fine" true (Tdma.start_is_free ~tables:ts ~start:1)

let test_tdma_find_aligned_count () =
  let ts = tables 2 8 in
  match Tdma.find_aligned ~tables:ts ~count:3 with
  | Some starts ->
    Alcotest.(check int) "three starts" 3 (List.length starts);
    Alcotest.(check (list int)) "sorted distinct" (List.sort_uniq compare starts) starts
  | None -> Alcotest.fail "expected starts"

let test_tdma_find_aligned_insufficient () =
  let ts = tables 1 4 in
  for s = 0 to 2 do
    St.reserve ts.(0) ~slot:s ~owner:0
  done;
  Alcotest.(check bool) "only one free" true (Tdma.find_aligned ~tables:ts ~count:2 = None)

let test_tdma_choose_spread_minimises_gap () =
  (* With all 8 starts free, choosing 4 must leave a max gap of 2. *)
  match Tdma.choose_spread ~slots:8 ~candidates:[ 0; 1; 2; 3; 4; 5; 6; 7 ] ~count:4 with
  | Some starts -> Alcotest.(check int) "even spacing" 2 (Tdma.max_start_gap ~slots:8 ~starts)
  | None -> Alcotest.fail "expected spread"

let test_tdma_reserve_release_roundtrip () =
  let ts = tables 3 8 in
  Tdma.reserve ~tables:ts ~owner:5 ~starts:[ 0; 4 ];
  Alcotest.(check int) "hop0 used" 2 (St.used_count ts.(0));
  Tdma.release ~tables:ts ~owner:5;
  Array.iter (fun t -> Alcotest.(check int) "all free" 0 (St.used_count t)) ts

let test_tdma_max_start_gap_single () =
  Alcotest.(check int) "single start = full revolution" 8
    (Tdma.max_start_gap ~slots:8 ~starts:[ 3 ])

let test_tdma_max_start_gap_pair () =
  Alcotest.(check int) "gap wraps" 6 (Tdma.max_start_gap ~slots:8 ~starts:[ 0; 2 ])

let test_tdma_latency_bound () =
  (* default config: 8 ns slots; 1 start in 32 slots, 3 hops:
     (32 + 3) * 8 = 280 ns *)
  check_float "bound" 280.0
    (Tdma.worst_case_latency_ns ~config:Config.default ~starts:[ 0 ] ~hops:3)

let test_tdma_more_slots_lower_latency () =
  let one = Tdma.worst_case_latency_ns ~config:Config.default ~starts:[ 0 ] ~hops:2 in
  let two = Tdma.worst_case_latency_ns ~config:Config.default ~starts:[ 0; 16 ] ~hops:2 in
  Alcotest.(check bool) "two starts faster" true (two < one)

let test_tdma_mismatched_tables_rejected () =
  let ts = [| St.create ~slots:8; St.create ~slots:16 |] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Tdma: slot-table size mismatch") (fun () ->
      ignore (Tdma.free_starts ~tables:ts))

let prop_tdma_reserved_starts_were_free =
  QCheck.Test.make ~name:"find_aligned returns genuinely free starts" ~count:200
    QCheck.(pair (int_range 1 5) (list (int_bound 31)))
    (fun (hops, blocked) ->
      let ts = tables hops 32 in
      List.iteri
        (fun i s ->
          let hop = i mod hops in
          if St.is_free ts.(hop) s then St.reserve ts.(hop) ~slot:s ~owner:99)
        blocked;
      match Tdma.find_aligned ~tables:ts ~count:2 with
      | None -> true
      | Some starts -> List.for_all (fun s -> Tdma.start_is_free ~tables:ts ~start:s) starts)

(* --- NI buffer sizing ----------------------------------------------------- *)

module Ni_buffer = Noc_arch.Ni_buffer

let test_ni_buffer_single_slot () =
  (* one slot in a 32-slot revolution at 62.5 MB/s: gap = 32 slots of
     8 ns = 256 ns -> 16 bytes + 16 payload = 32 bytes = 8 words *)
  let bytes = Ni_buffer.required_bytes ~config:Config.default ~starts:[ 0 ] ~bw:62.5 in
  check_float "bytes" 32.0 bytes;
  Alcotest.(check int) "words" 8 (Ni_buffer.required_words ~config:Config.default ~starts:[ 0 ] ~bw:62.5)

let test_ni_buffer_spread_slots_need_less () =
  let one = Ni_buffer.required_bytes ~config:Config.default ~starts:[ 0 ] ~bw:62.5 in
  let four = Ni_buffer.required_bytes ~config:Config.default ~starts:[ 0; 8; 16; 24 ] ~bw:62.5 in
  Alcotest.(check bool) "even spread shrinks the buffer" true (four < one)

let test_ni_buffer_grows_with_bandwidth () =
  let slow = Ni_buffer.required_bytes ~config:Config.default ~starts:[ 0; 16 ] ~bw:50.0 in
  let fast = Ni_buffer.required_bytes ~config:Config.default ~starts:[ 0; 16 ] ~bw:100.0 in
  Alcotest.(check bool) "monotone in bw" true (fast > slow)

let test_ni_buffer_rejections () =
  Alcotest.(check bool) "no starts" true
    (try ignore (Ni_buffer.required_bytes ~config:Config.default ~starts:[] ~bw:1.0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad bw" true
    (try ignore (Ni_buffer.required_bytes ~config:Config.default ~starts:[ 0 ] ~bw:0.0); false
     with Invalid_argument _ -> true)

let test_ni_buffer_per_core_totals () =
  let r1 = (* core 0 -> core 1 over one link *)
    {
      Route.flow_id = 0; use_case = 0; src_core = 0; dst_core = 1; src_switch = 0;
      dst_switch = 1; bandwidth = 62.5; service = Route.Gt; links = [ 0 ]; slot_starts = [ 0 ];
    }
  in
  let totals = Ni_buffer.per_core_totals ~config:Config.default ~cores:3 [ r1 ] in
  Alcotest.(check bool) "source buffers dominate" true (totals.(0) > totals.(1));
  Alcotest.(check int) "uninvolved core" 0 totals.(2)

(* --- service curves --------------------------------------------------------- *)

module Sc = Noc_arch.Service_curve

let test_service_curve_of_reservation () =
  (* 2 evenly spread slots of 32: rho = 125 MB/s; gap 16, 3 hops:
     theta = 19 * 8 ns = 152 ns *)
  let sc = Sc.of_reservation ~config:Config.default ~starts:[ 0; 16 ] ~hops:3 in
  check_float "rate" 125.0 sc.Sc.rate_mbps;
  check_float "latency" 152.0 sc.Sc.latency_ns

let test_service_curve_delay_bound () =
  let sc = Sc.of_reservation ~config:Config.default ~starts:[ 0; 16 ] ~hops:3 in
  (* fluid input (sigma = 0): the LR latency itself *)
  check_float "fluid" 152.0 (Sc.delay_bound_ns sc ~burst_bytes:0.0 ~rate_mbps:100.0);
  (* 125 bytes of burst at rho = 125 MB/s adds 1000 ns *)
  check_float "bursty" (152.0 +. 1000.0)
    (Sc.delay_bound_ns sc ~burst_bytes:125.0 ~rate_mbps:100.0)

let test_service_curve_backlog_bound () =
  let sc = Sc.of_reservation ~config:Config.default ~starts:[ 0 ] ~hops:1 in
  let b = Sc.backlog_bound_bytes sc ~burst_bytes:100.0 ~rate_mbps:50.0 in
  (* theta = 33 slots * 8 ns = 264 ns; 50 MB/s = 0.05 B/ns -> 13.2 B *)
  check_float "bound" (100.0 +. (0.05 *. 264.0)) b

let test_service_curve_rejects_overload () =
  let sc = Sc.of_reservation ~config:Config.default ~starts:[ 0 ] ~hops:1 in
  Alcotest.(check bool) "rate above rho" true
    (try ignore (Sc.delay_bound_ns sc ~burst_bytes:0.0 ~rate_mbps:100.0); false
     with Invalid_argument _ -> true)

let test_service_curve_of_route () =
  let gt =
    { Route.flow_id = 0; use_case = 0; src_core = 0; dst_core = 1; src_switch = 0;
      dst_switch = 1; bandwidth = 62.5; service = Route.Gt; links = [ 0 ]; slot_starts = [ 0 ] }
  in
  let be = { gt with Route.service = Route.Be; slot_starts = [] } in
  let local = { gt with Route.links = []; slot_starts = [] } in
  Alcotest.(check bool) "gt has a curve" true (Sc.of_route ~config:Config.default gt <> None);
  Alcotest.(check bool) "be has none" true (Sc.of_route ~config:Config.default be = None);
  (match Sc.of_route ~config:Config.default local with
  | Some sc -> check_float "local rate = link capacity" 2000.0 sc.Sc.rate_mbps
  | None -> Alcotest.fail "local GT route should have a curve")

let test_on_off_burstiness () =
  (* 100 MB/s mean, 1000 ns period, duty 0.25: sigma = 0.1 * 1000 * 0.75 = 75 B *)
  check_float "sigma" 75.0 (Sc.on_off_burstiness ~mean_mbps:100.0 ~period_ns:1000.0 ~duty:0.25);
  check_float "duty 1 = fluid" 0.0 (Sc.on_off_burstiness ~mean_mbps:100.0 ~period_ns:1000.0 ~duty:1.0)

(* --- route / turn model ------------------------------------------------ *)

let mk_route ?(uc = 0) ~id ~links ~starts ~src ~dst () =
  {
    Route.flow_id = id;
    use_case = uc;
    src_core = 0;
    dst_core = 1;
    src_switch = src;
    dst_switch = dst;
    bandwidth = 100.0;
    service = Route.Gt;
    links;
    slot_starts = starts;
  }

let test_route_hops_and_latency () =
  let r = mk_route ~id:0 ~links:[ 0; 1 ] ~starts:[ 0 ] ~src:0 ~dst:2 () in
  Alcotest.(check int) "hops" 2 (Route.hops r);
  check_float "bound" ((32.0 +. 2.0) *. 8.0) (Route.worst_case_latency_ns ~config:Config.default r)

let test_route_same_switch_latency () =
  let r = mk_route ~id:0 ~links:[] ~starts:[] ~src:0 ~dst:0 () in
  check_float "one slot" 8.0 (Route.worst_case_latency_ns ~config:Config.default r)

let test_turn_xy_routes_deadlock_free () =
  let m = Mesh.create ~width:4 ~height:4 in
  let routes = ref [] in
  let id = ref 0 in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      if src <> dst then begin
        routes :=
          mk_route ~id:!id ~links:(Mesh.xy_route m ~src ~dst) ~starts:[ 0 ] ~src ~dst ()
          :: !routes;
        incr id
      end
    done
  done;
  Alcotest.(check bool) "XY all-pairs deadlock free" true
    (Turn.is_deadlock_free ~links:(Mesh.link_count m) ~routes:!routes)

let test_turn_detects_cycle () =
  (* Fabricate a cyclic channel dependency: l0->l1, l1->l2, l2->l0. *)
  let routes =
    [
      mk_route ~id:0 ~links:[ 0; 1 ] ~starts:[] ~src:0 ~dst:0 ();
      mk_route ~id:1 ~links:[ 1; 2 ] ~starts:[] ~src:0 ~dst:0 ();
      mk_route ~id:2 ~links:[ 2; 0 ] ~starts:[] ~src:0 ~dst:0 ();
    ]
  in
  Alcotest.(check bool) "cycle found" false (Turn.is_deadlock_free ~links:3 ~routes);
  match Turn.find_cycle ~links:3 ~routes with
  | Some cycle -> Alcotest.(check bool) "cycle non-trivial" true (List.length cycle >= 2)
  | None -> Alcotest.fail "expected a cycle"

let test_turn_dependencies_dedup () =
  let routes =
    [
      mk_route ~id:0 ~links:[ 0; 1 ] ~starts:[] ~src:0 ~dst:0 ();
      mk_route ~id:1 ~links:[ 0; 1 ] ~starts:[] ~src:0 ~dst:0 ();
    ]
  in
  Alcotest.(check int) "single dependency" 1 (List.length (Turn.dependencies ~routes))

let test_turn_xy_legality () =
  let m = Mesh.create ~width:3 ~height:3 in
  let xy = mk_route ~id:0 ~links:(Mesh.xy_route m ~src:0 ~dst:8) ~starts:[] ~src:0 ~dst:8 () in
  Alcotest.(check bool) "xy is legal" true (Turn.xy_legal m xy);
  (* A YX route (first south, then east) is illegal. *)
  let s0 = Mesh.switch_at m ~x:0 ~y:0 in
  let s1 = Mesh.switch_at m ~x:0 ~y:1 in
  let s2 = Mesh.switch_at m ~x:1 ~y:1 in
  let yx =
    mk_route ~id:1
      ~links:
        [
          Option.get (Mesh.link_between m ~src:s0 ~dst:s1);
          Option.get (Mesh.link_between m ~src:s1 ~dst:s2);
        ]
      ~starts:[] ~src:s0 ~dst:s2 ()
  in
  Alcotest.(check bool) "yx is illegal" false (Turn.xy_legal m yx)

(* --- bitmask: next_set_from edge cases (PR 8 primitive) ------------------ *)

module Bitmask = Noc_arch.Bitmask

let test_bitmask_next_set_from_empty () =
  let m = Bitmask.create ~slots:32 ~full:false in
  Alcotest.(check (option int)) "from 0" None (Bitmask.next_set_from m 0);
  Alcotest.(check (option int)) "from mid" None (Bitmask.next_set_from m 17);
  Alcotest.(check (option int)) "from last" None (Bitmask.next_set_from m 31)

let test_bitmask_next_set_from_no_wrap () =
  let m = Bitmask.create ~slots:32 ~full:false in
  Bitmask.set m 2;
  (* At or below the bit: found.  Above it: no cyclic wrap — the wheel
     idiom is an explicit second probe from 0. *)
  Alcotest.(check (option int)) "from 0" (Some 2) (Bitmask.next_set_from m 0);
  Alcotest.(check (option int)) "inclusive at the bit" (Some 2) (Bitmask.next_set_from m 2);
  Alcotest.(check (option int)) "no wrap past the bit" None (Bitmask.next_set_from m 3);
  Alcotest.(check (option int)) "wheel: probe again from 0" (Some 2)
    (match Bitmask.next_set_from m 3 with
    | Some _ as hit -> hit
    | None -> Bitmask.next_set_from m 0)

let test_bitmask_next_set_from_bounds () =
  let m = Bitmask.create ~slots:32 ~full:true in
  Alcotest.(check (option int)) "full mask returns the probe" (Some 13)
    (Bitmask.next_set_from m 13);
  Alcotest.(check (option int)) "last index" (Some 31) (Bitmask.next_set_from m 31);
  (* Probing at or past the size is simply empty, not an error... *)
  Alcotest.(check (option int)) "at size" None (Bitmask.next_set_from m 32);
  Alcotest.(check (option int)) "past size" None (Bitmask.next_set_from m 1000);
  (* ...but a negative index is a caller bug. *)
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Bitmask.next_set_from: negative index") (fun () ->
      ignore (Bitmask.next_set_from m (-1)))

let test_bitmask_next_set_from_multiword () =
  (* 100 slots spans multiple 62-bit words: the scan must cross word
     boundaries in both the set and the empty stretches. *)
  let m = Bitmask.create ~slots:100 ~full:false in
  Bitmask.set m 70;
  Bitmask.set m 99;
  Alcotest.(check (option int)) "cross into second word" (Some 70) (Bitmask.next_set_from m 0);
  Alcotest.(check (option int)) "from word boundary" (Some 70) (Bitmask.next_set_from m 62);
  Alcotest.(check (option int)) "between the bits" (Some 99) (Bitmask.next_set_from m 71);
  Alcotest.(check (option int)) "final bit" (Some 99) (Bitmask.next_set_from m 99);
  Bitmask.clear m 70;
  Bitmask.clear m 99;
  Alcotest.(check (option int)) "cleared again" None (Bitmask.next_set_from m 0)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_tdma_reserved_starts_were_free ]

let () =
  Alcotest.run "noc_arch"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_config_default_valid;
          Alcotest.test_case "capacity" `Quick test_config_capacity;
          Alcotest.test_case "slot duration" `Quick test_config_slot_duration;
          Alcotest.test_case "with_freq" `Quick test_config_with_freq;
          Alcotest.test_case "slots for bandwidth" `Quick test_config_slots_for_bandwidth;
          Alcotest.test_case "rejections" `Quick test_config_rejections;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "counts" `Quick test_mesh_counts;
          Alcotest.test_case "1x1" `Quick test_mesh_1x1;
          Alcotest.test_case "coord roundtrip" `Quick test_mesh_coord_roundtrip;
          Alcotest.test_case "links adjacent" `Quick test_mesh_link_endpoints_adjacent;
          Alcotest.test_case "link_between" `Quick test_mesh_link_between;
          Alcotest.test_case "directions distinct" `Quick test_mesh_both_directions_distinct;
          Alcotest.test_case "xy route" `Quick test_mesh_xy_route;
          Alcotest.test_case "xy route trivial" `Quick test_mesh_xy_route_same_switch;
          Alcotest.test_case "growth sequence" `Quick test_mesh_growth_sequence;
          Alcotest.test_case "growth monotone" `Quick test_mesh_growth_monotone;
          Alcotest.test_case "center" `Quick test_mesh_center;
          Alcotest.test_case "bad dims" `Quick test_mesh_rejects_bad_dims;
        ] );
      ( "torus",
        [
          Alcotest.test_case "link count" `Quick test_torus_link_count;
          Alcotest.test_case "no parallel links at dim 2" `Quick test_torus_small_dims_no_parallel_links;
          Alcotest.test_case "wrap neighbor" `Quick test_torus_wrap_neighbor;
          Alcotest.test_case "wrap-aware manhattan" `Quick test_torus_manhattan_shorter;
          Alcotest.test_case "xy route wraps" `Quick test_torus_xy_route_uses_wrap;
          Alcotest.test_case "all-pairs chains valid" `Quick test_torus_route_chain_valid;
        ] );
      ( "express",
        [
          Alcotest.test_case "adds links" `Quick test_express_adds_links;
          Alcotest.test_case "preserves grid ids" `Quick test_express_preserves_grid_link_ids;
          Alcotest.test_case "shortens paths" `Quick test_express_shortens_min_cost_path;
          Alcotest.test_case "rejections" `Quick test_express_rejections;
        ] );
      ( "slot_table",
        [
          Alcotest.test_case "lifecycle" `Quick test_slot_table_lifecycle;
          Alcotest.test_case "modular indexing" `Quick test_slot_table_modular_indexing;
          Alcotest.test_case "double reserve" `Quick test_slot_table_double_reserve_rejected;
          Alcotest.test_case "release owner" `Quick test_slot_table_release_owner;
          Alcotest.test_case "free slots sorted" `Quick test_slot_table_free_slots_sorted;
          Alcotest.test_case "copy independent" `Quick test_slot_table_copy_independent;
          Alcotest.test_case "utilization" `Quick test_slot_table_utilization;
        ] );
      ( "tdma",
        [
          Alcotest.test_case "free starts" `Quick test_tdma_free_starts_empty_path_tables;
          Alcotest.test_case "alignment shifts" `Quick test_tdma_alignment_shifts;
          Alcotest.test_case "blocked downstream" `Quick test_tdma_start_blocked_by_downstream;
          Alcotest.test_case "find aligned" `Quick test_tdma_find_aligned_count;
          Alcotest.test_case "insufficient" `Quick test_tdma_find_aligned_insufficient;
          Alcotest.test_case "spread minimises gap" `Quick test_tdma_choose_spread_minimises_gap;
          Alcotest.test_case "reserve/release" `Quick test_tdma_reserve_release_roundtrip;
          Alcotest.test_case "gap single" `Quick test_tdma_max_start_gap_single;
          Alcotest.test_case "gap pair" `Quick test_tdma_max_start_gap_pair;
          Alcotest.test_case "latency bound" `Quick test_tdma_latency_bound;
          Alcotest.test_case "more slots, lower latency" `Quick test_tdma_more_slots_lower_latency;
          Alcotest.test_case "mismatched tables" `Quick test_tdma_mismatched_tables_rejected;
        ] );
      ( "service_curve",
        [
          Alcotest.test_case "of reservation" `Quick test_service_curve_of_reservation;
          Alcotest.test_case "delay bound" `Quick test_service_curve_delay_bound;
          Alcotest.test_case "backlog bound" `Quick test_service_curve_backlog_bound;
          Alcotest.test_case "rejects overload" `Quick test_service_curve_rejects_overload;
          Alcotest.test_case "of route" `Quick test_service_curve_of_route;
          Alcotest.test_case "on/off burstiness" `Quick test_on_off_burstiness;
        ] );
      ( "ni_buffer",
        [
          Alcotest.test_case "single slot" `Quick test_ni_buffer_single_slot;
          Alcotest.test_case "spread slots" `Quick test_ni_buffer_spread_slots_need_less;
          Alcotest.test_case "monotone in bandwidth" `Quick test_ni_buffer_grows_with_bandwidth;
          Alcotest.test_case "rejections" `Quick test_ni_buffer_rejections;
          Alcotest.test_case "per-core totals" `Quick test_ni_buffer_per_core_totals;
        ] );
      ( "route_turns",
        [
          Alcotest.test_case "hops and latency" `Quick test_route_hops_and_latency;
          Alcotest.test_case "same-switch latency" `Quick test_route_same_switch_latency;
          Alcotest.test_case "xy deadlock free" `Quick test_turn_xy_routes_deadlock_free;
          Alcotest.test_case "detects cycle" `Quick test_turn_detects_cycle;
          Alcotest.test_case "dependency dedup" `Quick test_turn_dependencies_dedup;
          Alcotest.test_case "xy legality" `Quick test_turn_xy_legality;
        ] );
      ( "bitmask",
        [
          Alcotest.test_case "next_set_from empty" `Quick test_bitmask_next_set_from_empty;
          Alcotest.test_case "next_set_from no wrap" `Quick test_bitmask_next_set_from_no_wrap;
          Alcotest.test_case "next_set_from bounds" `Quick test_bitmask_next_set_from_bounds;
          Alcotest.test_case "next_set_from multiword" `Quick
            test_bitmask_next_set_from_multiword;
        ] );
      ("properties", qcheck_cases);
    ]
