lib/graph/shortest_path.mli: Intgraph
