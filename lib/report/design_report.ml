module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Ni_buffer = Noc_arch.Ni_buffer
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module DF = Noc_core.Design_flow
module Verify = Noc_core.Verify
module Reconfig = Noc_core.Reconfig
module Resources = Noc_core.Resources
module Table = Noc_util.Ascii_table

type flow_line = {
  use_case : int;
  use_case_name : string;
  src : int;
  dst : int;
  service : Route.service;
  bandwidth_mbps : float;
  granted_mbps : float;
  hops : int;
  latency_bound_ns : float;
  latency_req_ns : float;
  latency_slack_ns : float option;
}

type use_case_line = {
  id : int;
  name : string;
  flows : int;
  total_mbps : float;
  mean_link_utilization : float;
  max_link_utilization : float;
}

type dvfs_section = {
  f_design_mhz : float;
  epochs : (string * float) list;
  savings_pct : float;
}

type t = {
  design_name : string;
  switches : int;
  mesh : string;
  area_mm2 : float;
  power_mw : float;
  groups : int list list;
  flow_lines : flow_line list;
  use_case_lines : use_case_line list;
  buffer_words_per_core : int array;
  buffer_words_total : int;
  worst_switching : Reconfig.cost option;
  dvfs : dvfs_section option;
  verified : bool;
  checks : int;
  metrics : (string * float) list;
}

let flow_line ~config ~names (u : Use_case.t) (f : Flow.t) (r : Route.t) =
  let granted =
    if r.Route.service = Route.Be then 0.0
    else if r.Route.links = [] then Config.link_capacity config
    else float_of_int (List.length r.Route.slot_starts) *. Config.slot_bandwidth config
  in
  let bound = Route.worst_case_latency_ns ~config r in
  {
    use_case = u.Use_case.id;
    use_case_name = names u.Use_case.id;
    src = f.Flow.src;
    dst = f.Flow.dst;
    service = r.Route.service;
    bandwidth_mbps = f.Flow.bandwidth;
    granted_mbps = granted;
    hops = Route.hops r;
    latency_bound_ns = bound;
    latency_req_ns = f.Flow.latency_ns;
    latency_slack_ns =
      (if f.Flow.latency_ns = infinity then None else Some (f.Flow.latency_ns -. bound));
  }

let dvfs_of d =
  let m = d.DF.mapping in
  let epochs =
    List.map
      (fun u ->
        let f =
          Option.value
            (Noc_power.Min_freq.for_use_case_on_design ~design:m u)
            ~default:m.Mapping.config.Config.freq_mhz
        in
        (u.Use_case.name, f))
      d.DF.all_use_cases
  in
  let f_design = List.fold_left (fun acc (_, f) -> Float.max acc f) 0.0 epochs in
  if f_design <= 0.0 then None
  else
    Some
      {
        f_design_mhz = f_design;
        epochs;
        savings_pct =
          Noc_power.Dvfs.savings_percent ~f_design
            ~epochs:(List.map (fun (_, f) -> (f, 1.0)) epochs);
      }

let build ?(dvfs = true) (d : DF.t) =
  let m = d.DF.mapping in
  let config = m.Mapping.config in
  let names id = (List.nth d.DF.all_use_cases id).Use_case.name in
  let flow_lines =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun f ->
            let service = if Flow.is_guaranteed f then Route.Gt else Route.Be in
            let route =
              List.find_opt
                (fun r ->
                  r.Route.use_case = u.Use_case.id
                  && r.Route.src_core = f.Flow.src
                  && r.Route.dst_core = f.Flow.dst
                  && r.Route.service = service)
                m.Mapping.routes
            in
            Option.map (flow_line ~config ~names u f) route)
          u.Use_case.flows)
      d.DF.all_use_cases
  in
  let use_case_lines =
    List.map
      (fun u ->
        let state = m.Mapping.states.(u.Use_case.id) in
        {
          id = u.Use_case.id;
          name = u.Use_case.name;
          flows = Use_case.flow_count u;
          total_mbps = Use_case.total_bandwidth u;
          mean_link_utilization = Resources.mean_utilization state;
          max_link_utilization = Resources.max_utilization state;
        })
      d.DF.all_use_cases
  in
  (* NI buffers must hold the worst use-case per core: size each core's
     NI for the maximum over the use-case configurations. *)
  let cores = Array.length m.Mapping.placement in
  let buffer_words_per_core = Array.make cores 0 in
  List.iter
    (fun u ->
      let per_uc =
        Ni_buffer.per_core_totals ~config ~cores
          (Mapping.routes_of_use_case m u.Use_case.id)
      in
      Array.iteri (fun c w -> if w > buffer_words_per_core.(c) then buffer_words_per_core.(c) <- w) per_uc)
    d.DF.all_use_cases;
  {
    design_name = d.DF.spec.DF.name;
    switches = Mapping.switch_count m;
    mesh = Format.asprintf "%a" Mesh.pp m.Mapping.mesh;
    area_mm2 = Noc_power.Area_model.noc_area m;
    power_mw = (Noc_power.Power_model.noc_power m).Noc_power.Power_model.total_mw;
    groups = m.Mapping.groups;
    flow_lines;
    use_case_lines;
    buffer_words_per_core;
    buffer_words_total = Array.fold_left ( + ) 0 buffer_words_per_core;
    worst_switching = Reconfig.worst m;
    dvfs = (if dvfs then dvfs_of d else None);
    verified = DF.verified d;
    checks = d.DF.report.Verify.checks;
    metrics =
      (* Observability snapshot at report time: the nonzero counters
         (and all gauges) accumulated by the run that produced this
         design — cache behaviour, prunes, pool stealing.  The section
         describes the run, not the design, and the design exporters
         ignore it, so traced/untraced exports stay byte-identical. *)
      (let snap = Noc_obs.Metrics.snapshot () in
       List.filter_map
         (fun (n, v) -> if v = 0 then None else Some (n, float_of_int v))
         snap.Noc_obs.Metrics.counters
       @ snap.Noc_obs.Metrics.gauges);
  }

let min_slack_ns t =
  List.fold_left
    (fun acc line ->
      match (acc, line.latency_slack_ns) with
      | None, s -> s
      | Some a, Some s -> Some (Float.min a s)
      | Some a, None -> Some a)
    None t.flow_lines

let print t =
  Printf.printf "Design report: %s\n" t.design_name;
  Printf.printf "  NoC: %s, area %.3f mm2, power %.1f mW\n" t.mesh t.area_mm2 t.power_mw;
  Printf.printf "  verification: %s (%d checks)\n"
    (if t.verified then "OK" else "FAILED")
    t.checks;
  Printf.printf "  groups sharing one configuration: %s\n"
    (String.concat " | "
       (List.map (fun g -> "{" ^ String.concat "," (List.map string_of_int g) ^ "}") t.groups));
  (match t.worst_switching with
  | Some c ->
    Printf.printf "  worst use-case switching: uc %d <-> uc %d, %d slot writes, %.1f ns\n"
      c.Reconfig.from_uc c.Reconfig.to_uc c.Reconfig.slot_writes c.Reconfig.reconfiguration_ns
  | None -> ());
  (match t.dvfs with
  | Some s ->
    Printf.printf "  DVS/DFS: design point %.0f MHz, saving %.1f %% (%s)\n" s.f_design_mhz
      s.savings_pct
      (String.concat ", "
         (List.map (fun (n, f) -> Printf.sprintf "%s: %.0f MHz" n f) s.epochs))
  | None -> ());
  Printf.printf "  NI buffers: %d words total\n" t.buffer_words_total;
  if t.metrics <> [] then
    Printf.printf "  observability: %s\n"
      (String.concat ", "
         (List.map
            (fun (n, v) ->
              if Float.is_integer v then Printf.sprintf "%s=%.0f" n v
              else Printf.sprintf "%s=%g" n v)
            t.metrics));
  print_newline ();
  let uc_table =
    Table.create ~header:[ "use-case"; "flows"; "MB/s"; "mean util"; "max util" ]
  in
  List.iter
    (fun (l : use_case_line) ->
      Table.add_row uc_table
        [
          Printf.sprintf "%d:%s" l.id l.name;
          string_of_int l.flows;
          Printf.sprintf "%.0f" l.total_mbps;
          Printf.sprintf "%.2f" l.mean_link_utilization;
          Printf.sprintf "%.2f" l.max_link_utilization;
        ])
    t.use_case_lines;
  Table.print uc_table;
  print_newline ();
  let flow_table =
    Table.create
      ~header:[ "uc"; "flow"; "svc"; "req MB/s"; "granted"; "hops"; "bound ns"; "slack ns" ]
  in
  List.iter
    (fun (l : flow_line) ->
      Table.add_row flow_table
        [
          string_of_int l.use_case;
          Printf.sprintf "%d->%d" l.src l.dst;
          (match l.service with Route.Gt -> "GT" | Route.Be -> "BE");
          Printf.sprintf "%.1f" l.bandwidth_mbps;
          (match l.service with
          | Route.Gt -> Printf.sprintf "%.1f" l.granted_mbps
          | Route.Be -> "-");
          string_of_int l.hops;
          (if l.latency_bound_ns = infinity then "-" else Printf.sprintf "%.0f" l.latency_bound_ns);
          (match l.latency_slack_ns with Some s -> Printf.sprintf "%.0f" s | None -> "-");
        ])
    t.flow_lines;
  Table.print flow_table
