lib/export/design_export.mli: Json Noc_core
