(** Shortest paths with pluggable, state-dependent edge costs.

    The unified mapping algorithm (paper §5) routes every flow on the
    least-cost path where the cost of a link depends on the residual
    bandwidth and slot state of the use-case being routed.  Passing the
    cost as a function keeps this module independent of the NoC
    resource bookkeeping. *)

type path = {
  nodes : int list;  (** visited nodes, source first, destination last *)
  edges : int list;  (** edge ids along the path, in travel order *)
  cost : float;      (** total accumulated cost *)
}

val dijkstra :
  Intgraph.t ->
  cost:(edge:int -> src:int -> dst:int -> float option) ->
  source:int ->
  target:int ->
  path option
(** Least-cost path from [source] to [target].  [cost] returns [None]
    to declare an arc unusable (e.g. not enough residual bandwidth),
    otherwise a non-negative cost.  Returns [None] when the target is
    unreachable through usable arcs. *)

val dijkstra_all :
  Intgraph.t ->
  cost:(edge:int -> src:int -> dst:int -> float option) ->
  source:int ->
  float array * int array
(** Single-source variant.  Returns [(dist, parent_edge)], where
    [dist.(v)] is [infinity] for unreachable [v] and [parent_edge.(v)]
    is the edge id used to reach [v] ([-1] for the source and
    unreachable nodes). *)

val hop_path : Intgraph.t -> source:int -> target:int -> path option
(** Unweighted (BFS) shortest path: every usable arc costs 1. *)
