bench/main.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Noc_arch Noc_benchkit Noc_core Noc_power Noc_rtl Noc_sim Noc_traffic Noc_util Printf Staged Test Time Toolkit
