lib/arch/turn_model.ml: Array Hashtbl List Mesh Option Route
