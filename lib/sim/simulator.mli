(** Slot-accurate simulation of one NoC configuration.

    Substitute for the paper's SystemC/VHDL phase-4 simulation: the
    same contention-free TDMA discipline is executed slot by slot.
    Each guaranteed-throughput connection offers fluid traffic at its
    contracted bandwidth; a flit of one slot's payload departs whenever
    one of the connection's reserved starting slots comes around, and
    reaches the destination [hops] slots later.  The simulator
    independently rebuilds the (link, slot) occupancy from the routes
    ({!Noc_arch.Activation}) and reports any collision — a disagreement
    would mean the mapper's slot tables are wrong.

    Best-effort connections (paper Sec 2's second Aethereal traffic
    class) are forwarded hop by hop over slots the GT schedule leaves
    free, with per-link round-robin arbitration between BE streams;
    they get whatever is left and no latency bound.

    Two cores execute that semantics.  The [`Event] core (default)
    precomputes per-slot activation indexes and drives an
    {!Event_wheel} so it steps only slots in which traffic arrives or
    a queue can drain, jumping over idle ranges — the fast path for
    bursty and trace-driven workloads whose slots are mostly empty.
    The [`Reference] core is the pinned tick loop stepping every slot.
    Both run the same per-slot operations in the same order, so their
    results are byte-identical on every source mix (pinned by a QCheck
    property in [test_sim.ml] and a CI [cmp] job). *)

type conn_stats = {
  flow_id : int;
  src_core : int;
  dst_core : int;
  service : Noc_arch.Route.service;
  offered_mbps : float;     (** contracted (GT) or offered (BE) bandwidth *)
  delivered_mbps : float;   (** measured over the simulated window *)
  mean_latency_ns : float;  (** mean chunk latency (queueing + transit) *)
  max_latency_ns : float;
  bound_ns : float;         (** the analytic worst-case bound; [infinity] for BE *)
  final_backlog_bytes : float;  (** source queue left at the end *)
  max_backlog_bytes : float;
      (** peak queue occupancy — compare with
          {!Noc_arch.Ni_buffer.required_bytes} *)
}

type source =
  | Fluid
      (** constant-rate arrivals at the connection's bandwidth (default) *)
  | On_off of {
      period_slots : int;  (** burst cycle length *)
      duty : float;        (** fraction of the cycle that is ON, in (0, 1] *)
    }
      (** bursty arrivals: the mean rate stays the connection's
          bandwidth, but it arrives at [bandwidth/duty] during the ON
          phase and not at all during the OFF phase — video-frame-style
          traffic.  GT reservations smooth such bursts at the cost of
          NI buffering. *)
  | Replay of Trace.t
      (** replay an explicit packet trace (see {!Trace}); the
          connection's nominal bandwidth is ignored for arrivals *)

type result = {
  duration_slots : int;
  slot_ns : float;   (** slot duration used, for slack computations *)
  collisions : int;  (** (link, slot) claimed by two connections *)
  conns : conn_stats list;
}

type core =
  [ `Event     (** activation-indexed event-calendar core: skips idle
                   slots; the default *)
  | `Reference (** the pinned tick loop stepping every slot *) ]

val simulate_with :
  core:core ->
  sources:(int * source) list ->
  config:Noc_arch.Noc_config.t ->
  routes:Noc_arch.Route.t list ->
  duration_slots:int ->
  result
(** Simulate the routes of one use-case configuration for
    [duration_slots] slots on the selected core, with the arrival
    process of individual connections overridden by flow id
    (connections not named fall back to [Fluid]).  The source list is
    validated before the first slot runs.  Both cores return
    byte-identical results.
    @raise Invalid_argument when [duration_slots <= 0], a source names
    a flow id matching no route, an on/off shape is malformed
    ([period_slots <= 0] or [duty] outside (0, 1]), or a trace fails
    {!Trace.validate}. *)

val simulate :
  config:Noc_arch.Noc_config.t ->
  routes:Noc_arch.Route.t list ->
  duration_slots:int ->
  result
(** [simulate_with ~core:`Event ~sources:[]] — fluid sources on the
    event core. *)

val simulate_sources :
  sources:(int * source) list ->
  config:Noc_arch.Noc_config.t ->
  routes:Noc_arch.Route.t list ->
  duration_slots:int ->
  result
(** [simulate_with ~core:`Event] — source overrides on the event
    core. *)

val within_contract : ?tolerance:float -> result -> bool
(** True when every *guaranteed* connection delivered at least
    [(1 - tolerance) x offered] bandwidth (default tolerance 2 %),
    every measured GT latency is within its analytic bound plus one
    slot of boundary slack, and no collision occurred.  Best-effort
    connections carry no contract and are not checked. *)

val pp_result : Format.formatter -> result -> unit
