(** Connected components by depth-first search.

    This is the substrate of the paper's Algorithm 1 (use-case
    grouping): vertices of the switching graph reachable from each
    other must share one NoC configuration. *)

val connected_components : Intgraph.t -> int list list
(** Components of an undirected graph, each sorted increasingly; the
    list of components is sorted by its smallest member.  Repeated DFS
    from unvisited vertices, exactly as Algorithm 1 prescribes.
    @raise Invalid_argument on a directed graph. *)

val component_ids : Intgraph.t -> int array
(** [component_ids g].(v) is the index of [v]'s component in the list
    returned by [connected_components]. *)

val reachable : Intgraph.t -> int -> int list
(** Vertices reachable from a source (works on directed graphs too),
    sorted increasingly. *)

val is_connected : Intgraph.t -> bool
(** True iff the undirected graph has at most one component. *)
