bench/main.mli:
