module Config = Noc_arch.Noc_config
module Mapping = Noc_core.Mapping

type point = {
  freq_mhz : Noc_util.Units.frequency;
  switches : int option;
  area_mm2 : Noc_util.Units.area option;
}

let default_frequencies =
  [ 100.0; 125.0; 150.0; 175.0; 200.0; 250.0; 300.0; 350.0; 400.0; 500.0; 650.0; 800.0; 1000.0; 1250.0; 1500.0; 1750.0; 2000.0 ]

(* The frequency sweep is a one-row slice of the full design space, so
   it inherits the pool parallelism and placement-seeded warm starts of
   [Design_space.explore] for free. *)
let sweep ?(frequencies = default_frequencies) ?jobs ?warm ~config ~groups use_cases =
  let axes =
    {
      Design_space.frequencies;
      slot_counts = [ config.Config.slots ];
      topologies = [ config.Config.topology ];
    }
  in
  Design_space.explore ~axes ?jobs ?warm ~config ~groups use_cases
  |> List.map (fun p ->
         {
           freq_mhz = p.Design_space.freq_mhz;
           switches = p.Design_space.switches;
           area_mm2 = p.Design_space.area_mm2;
         })

let pareto_front points =
  let feasible =
    List.filter_map
      (fun p -> match p.area_mm2 with Some a -> Some (p, a) | None -> None)
      points
  in
  let dominated (p, a) =
    List.exists
      (fun (q, b) -> q.freq_mhz <= p.freq_mhz && b < a)
      feasible
  in
  List.filter_map (fun (p, a) -> if dominated (p, a) then None else Some p)
    (List.map (fun (p, a) -> (p, a)) feasible)
