(* TV-processor SoC (the paper's D3 class): streaming architecture with
   distributed local memories, compared against the worst-case design
   method, plus an area-frequency Pareto exploration (paper Sec 6.3).

   Run with: dune exec examples/tv_processor.exe *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module SD = Noc_benchkit.Soc_designs
module Pareto = Noc_power.Pareto
module Table = Noc_util.Ascii_table

let () =
  let use_cases = SD.d3 () in
  Format.printf "TV processor: %a@.@." Noc_traffic.Traffic_stats.pp
    (Noc_traffic.Traffic_stats.compute use_cases);

  (* Multi-use-case method vs the worst-case baseline of [25]. *)
  let ours =
    match DF.run (DF.spec_of_use_cases ~name:"tv" use_cases) with
    | Ok d -> Some d
    | Error _ -> None
  in
  let wc = match WC.map_design use_cases with Ok m -> Some m | Error _ -> None in
  (match (ours, wc) with
  | Some d, Some w ->
    let a = DF.switch_count d and b = Mapping.switch_count w in
    Format.printf
      "multi-use-case method: %d switches (%a)@.worst-case method:     %d switches (%a)@.normalized switch count: %.3f@.@."
      a Mesh.pp d.DF.mapping.Mapping.mesh b Mesh.pp w.Mapping.mesh
      (float_of_int a /. float_of_int b)
  | Some d, None ->
    Format.printf "multi-use-case method: %d switches; WC method: infeasible@.@."
      (DF.switch_count d)
  | None, _ -> Format.printf "design failed@.");

  (* Area-frequency trade-off (Figure 7a's experiment, on this design). *)
  let groups = List.mapi (fun i _ -> [ i ]) use_cases in
  let points =
    Pareto.sweep
      ~frequencies:[ 200.0; 300.0; 500.0; 800.0; 1200.0; 1600.0; 2000.0 ]
      ~config:Config.default ~groups use_cases
  in
  let t = Table.create ~header:[ "freq (MHz)"; "switches"; "area (mm2)" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" p.Pareto.freq_mhz;
          (match p.Pareto.switches with Some s -> string_of_int s | None -> "infeasible");
          (match p.Pareto.area_mm2 with Some a -> Printf.sprintf "%.3f" a | None -> "-");
        ])
    points;
  Format.printf "area-frequency trade-off:@.";
  Table.print t;
  let front = Pareto.pareto_front points in
  Format.printf "@.Pareto-optimal operating points: %s@."
    (String.concat ", "
       (List.map (fun p -> Printf.sprintf "%.0f MHz" p.Pareto.freq_mhz) front))
