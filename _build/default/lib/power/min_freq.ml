module Config = Noc_arch.Noc_config
module Use_case = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping

let default_grid = List.init 80 (fun i -> 25.0 *. float_of_int (i + 1))

(* The grid is tried in increasing order; a binary search would be
   wrong because TDMA feasibility is not perfectly monotonic in
   frequency (slot granularity effects), and the grids are tiny. *)
let search grid feasible =
  List.find_opt feasible (List.sort compare grid)

let for_use_case_on_design ?(grid = default_grid) ~design use_case =
  let config = design.Mapping.config in
  let mesh = design.Mapping.mesh in
  let placement = design.Mapping.placement in
  let renamed = Use_case.rename use_case ~id:0 ~name:use_case.Use_case.name in
  let feasible f =
    f <= config.Config.freq_mhz +. 1e-9
    &&
    let cfg = Config.with_freq config f in
    match Mapping.map_with_placement ~config:cfg ~mesh ~groups:[ [ 0 ] ] ~placement [ renamed ] with
    | Ok _ -> true
    | Error _ -> false
  in
  search grid feasible

let for_use_cases_on_mesh ?(grid = default_grid) ~config ~mesh ~groups use_cases =
  let feasible f =
    let cfg = Config.with_freq config f in
    match Mapping.map_on_mesh ~config:cfg ~mesh ~groups use_cases with
    | Ok _ -> true
    | Error _ -> false
  in
  search grid feasible
