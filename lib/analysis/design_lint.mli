(** Post-mapping design passes.

    Subsumes {!Noc_core.Verify}'s structural checks — every violation
    becomes an error diagnostic under a [verify-<kind>] pass id — and
    extends them: [placement-range] (error), [be-starvation] (warning:
    a best-effort route crossing a fully reserved link),
    [unused-switches] (info) and a [verify] info summary. *)

val check : Noc_core.Mapping.t -> Noc_traffic.Use_case.t list -> Diagnostic.t list
