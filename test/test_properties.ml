(* Cross-module property tests: invariants that tie the mapping engine,
   the resource model, verification, re-configuration analysis, export
   and the simulator together on randomly generated designs. *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Slot_table = Noc_arch.Slot_table
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Resources = Noc_core.Resources
module Reconfig = Noc_core.Reconfig
module DF = Noc_core.Design_flow
module Syn = Noc_benchkit.Synthetic

let gen_design seed =
  let params = { Syn.spread_params with cores = 10; flows_lo = 6; flows_hi = 16 } in
  let ucs = Syn.generate ~seed ~params ~use_cases:3 in
  match Mapping.map_design ~groups:[ [ 0 ]; [ 1 ]; [ 2 ] ] ucs with
  | Ok m -> Some (m, ucs)
  | Error _ -> None

let prop_slot_accounting_consistent =
  (* per use-case and link: used slots in the table = slots implied by
     that use-case's routes over the link *)
  QCheck.Test.make ~name:"slot tables = sum of route reservations" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      match gen_design seed with
      | None -> false
      | Some (m, ucs) ->
        let links = Mesh.link_count m.Mapping.mesh in
        List.for_all
          (fun u ->
            let uid = u.U.id in
            let implied = Array.make links 0 in
            List.iter
              (fun r ->
                List.iter
                  (fun _start -> List.iter (fun l -> implied.(l) <- implied.(l) + 1) r.Route.links)
                  r.Route.slot_starts)
              (Mapping.routes_of_use_case m uid);
            let ok = ref true in
            for l = 0 to links - 1 do
              let used = Slot_table.used_count (Resources.table m.Mapping.states.(uid) l) in
              if used <> implied.(l) then ok := false
            done;
            !ok)
          ucs)

let prop_slot_starts_in_range =
  QCheck.Test.make ~name:"every slot start lies in [0, slots)" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      match gen_design seed with
      | None -> false
      | Some (m, _) ->
        let slots = m.Mapping.config.Config.slots in
        List.for_all
          (fun r -> List.for_all (fun s -> s >= 0 && s < slots) r.Route.slot_starts)
          m.Mapping.routes)

let prop_mapping_deterministic =
  QCheck.Test.make ~name:"mapping is deterministic" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      match (gen_design seed, gen_design seed) with
      | Some (a, _), Some (b, _) ->
        a.Mapping.placement = b.Mapping.placement
        && List.length a.Mapping.routes = List.length b.Mapping.routes
        && Mapping.total_weighted_hops a = Mapping.total_weighted_hops b
      | None, None -> true
      | _ -> false)

let prop_reconfig_symmetric =
  QCheck.Test.make ~name:"switching cost is symmetric" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      match gen_design seed with
      | None -> false
      | Some (m, ucs) ->
        let n = List.length ucs in
        let ok = ref true in
        for a = 0 to n - 1 do
          for b = a + 1 to n - 1 do
            let ab = Reconfig.pair m ~from_uc:a ~to_uc:b in
            let ba = Reconfig.pair m ~from_uc:b ~to_uc:a in
            if
              ab.Reconfig.slot_writes <> ba.Reconfig.slot_writes
              || ab.Reconfig.paths_changed <> ba.Reconfig.paths_changed
            then ok := false
          done
        done;
        !ok)

let prop_export_json_valid_for_random_designs =
  QCheck.Test.make ~name:"exported JSON always validates" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let params = { Syn.spread_params with cores = 8; flows_lo = 4; flows_hi = 10 } in
      let ucs = Syn.generate ~seed ~params ~use_cases:2 in
      match DF.run (DF.spec_of_use_cases ~name:"prop" ucs) with
      | Error _ -> false
      | Ok d ->
        Noc_export.Json.validate (Noc_export.Design_export.design_to_string d) = Ok ())

let prop_buffer_totals_cover_every_route =
  QCheck.Test.make ~name:"NI buffer totals positive wherever traffic flows" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      match gen_design seed with
      | None -> false
      | Some (m, ucs) ->
        let config = m.Mapping.config in
        let cores = Array.length m.Mapping.placement in
        List.for_all
          (fun u ->
            let totals =
              Noc_arch.Ni_buffer.per_core_totals ~config ~cores
                (Mapping.routes_of_use_case m u.U.id)
            in
            List.for_all
              (fun f -> totals.(f.Flow.src) > 0 && totals.(f.Flow.dst) > 0)
              u.U.flows)
          ucs)

let prop_latency_bounds_respect_constraints =
  QCheck.Test.make ~name:"every GT bound within its constraint on mapped designs" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      match gen_design seed with
      | None -> false
      | Some (m, ucs) ->
        let config = m.Mapping.config in
        List.for_all
          (fun u ->
            List.for_all
              (fun f ->
                if not (Flow.is_guaranteed f) then true
                else
                  match
                    List.find_opt
                      (fun r ->
                        r.Route.use_case = u.U.id && r.Route.src_core = f.Flow.src
                        && r.Route.dst_core = f.Flow.dst && r.Route.service = Route.Gt)
                      m.Mapping.routes
                  with
                  | None -> false
                  | Some r -> Route.worst_case_latency_ns ~config r <= f.Flow.latency_ns +. 1e-9)
              u.U.flows)
          ucs)

(* bias variants both succeed and verify *)
let prop_bias_variants_verify =
  QCheck.Test.make ~name:"both placement biases give verified designs" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let params = { Syn.spread_params with cores = 8; flows_lo = 5; flows_hi = 12 } in
      let ucs = Syn.generate ~seed ~params ~use_cases:2 in
      let mesh = Mesh.create ~width:3 ~height:3 in
      let check bias =
        match Mapping.map_on_mesh ~bias ~config:Config.default ~mesh ~groups:[ [ 0 ]; [ 1 ] ] ucs with
        | Ok m -> Noc_core.Verify.ok (Noc_core.Verify.verify m ucs)
        | Error _ -> true (* infeasible at this fixed size is acceptable *)
      in
      check Mapping.Compact && check Mapping.Spread)

(* Slot-table mask/owner-array agreement: drive a random op sequence
   (reserve / release / release_owner) and require the incrementally
   maintained free mask and used counter to agree with the owner array
   — the source of truth — after every step.  Sizes straddle the
   one-word bitmask limit (62) to cover both representations. *)
let prop_slot_table_mask_agrees =
  QCheck.Test.make ~name:"slot table free mask/count = owner array" ~count:100
    QCheck.(pair (int_range 1 80) (small_list (pair small_nat (int_bound 5))))
    (fun (slots, ops) ->
      let t = Slot_table.create ~slots in
      let step (slot, op) =
        let slot = slot mod slots in
        match op with
        | 0 | 1 | 2 ->
          if Slot_table.is_free t slot then Slot_table.reserve t ~slot ~owner:(op + 1)
        | 3 -> Slot_table.release t ~slot
        | _ -> ignore (Slot_table.release_owner t ~owner:(op - 3))
      in
      List.for_all
        (fun op ->
          step op;
          let mask = Slot_table.free_mask t in
          let ok = ref (Noc_arch.Bitmask.slots mask = slots) in
          let naive_used = ref 0 in
          for i = 0 to slots - 1 do
            let free = Slot_table.owner t i = None in
            if free <> Slot_table.is_free t i then ok := false;
            if free <> Noc_arch.Bitmask.mem mask i then ok := false;
            if not free then incr naive_used
          done;
          !ok
          && Slot_table.used_count t = !naive_used
          && Slot_table.free_count t = slots - !naive_used
          && Slot_table.free_slots t
             = List.filter (Slot_table.is_free t) (List.init slots Fun.id))
        ops)

(* Domain pool: for any task list, the pooled map must equal the
   sequential map — same results in the same order — and when tasks
   raise, the pool must re-raise exactly what a left-to-right
   sequential run would (the lowest-index failure). *)
let prop_domain_pool_matches_sequential =
  QCheck.Test.make ~name:"Domain_pool.map = List.map (ordered, any jobs)" ~count:50
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_bound 40) small_int))
    (fun (jobs, xs) ->
      let f x = (x * 7919) lxor (x lsl 3) in
      Noc_util.Domain_pool.map ~jobs f xs = List.map f xs
      && Noc_util.Domain_pool.run ~jobs (List.map (fun x () -> f x) xs) = List.map f xs)

let prop_domain_pool_raises_like_sequential =
  QCheck.Test.make ~name:"Domain_pool.map re-raises the lowest-index failure" ~count:50
    QCheck.(triple (int_range 1 6) (int_range 1 40) (small_list small_nat))
    (fun (jobs, n, bad) ->
      let bad = List.map (fun b -> b mod n) bad in
      let xs = List.init n Fun.id in
      let f x = if List.mem x bad then failwith (Printf.sprintf "task %d" x) else x in
      let rec seq_map f = function
        | [] -> []
        | x :: tl ->
          let y = f x in
          y :: seq_map f tl
      in
      let outcome g = try Ok (g ()) with Failure m -> Error m in
      outcome (fun () -> Noc_util.Domain_pool.map ~jobs f xs)
      = outcome (fun () -> seq_map f xs))

(* Tasks that submit batches of their own (a sweep point running its
   mesh-size speculation) must degrade to inline runs on whichever
   domain executes them — including the submitter, which helps drain
   its own batch.  This deadlocked when only pool workers carried the
   inline flag. *)
let prop_domain_pool_nested_submission =
  QCheck.Test.make ~name:"nested Domain_pool submissions run inline" ~count:10
    QCheck.(pair (int_range 2 4) (int_range 1 12))
    (fun (jobs, n) ->
      let saved = Noc_util.Domain_pool.default_jobs () in
      Noc_util.Domain_pool.set_default_jobs jobs;
      Fun.protect ~finally:(fun () -> Noc_util.Domain_pool.set_default_jobs saved)
        (fun () ->
          Noc_util.Domain_pool.map
            (fun i -> Noc_util.Domain_pool.map (fun j -> i * j) (List.init 5 Fun.id))
            (List.init n Fun.id)
          = List.init n (fun i -> List.init 5 (fun j -> i * j))))

(* Warm-started exploration must agree with the cold full search on
   what is feasible and how many switches each point needs — the
   warm-start contract behind the --cold escape hatch. *)
let explore_ucs seed =
  let params = { Syn.spread_params with cores = 8; flows_lo = 4; flows_hi = 10 } in
  Syn.generate ~seed ~params ~use_cases:2

let small_axes =
  {
    Noc_power.Design_space.frequencies = [ 250.0; 500.0; 1000.0 ];
    slot_counts = [ 16; 32 ];
    topologies = [ Mesh.Mesh ];
  }

let prop_explore_warm_matches_cold =
  QCheck.Test.make ~name:"explore warm = cold (feasibility and switch counts)" ~count:5
    QCheck.(int_bound 10_000)
    (fun seed ->
      let ucs = explore_ucs seed in
      let groups = List.mapi (fun i _ -> [ i ]) ucs in
      let run warm =
        Noc_power.Design_space.explore ~axes:small_axes ~warm ~config:Config.default ~groups ucs
      in
      let key p =
        Noc_power.Design_space.
          (p.freq_mhz, p.slots, p.topology, p.switches)
      in
      List.map key (run true) = List.map key (run false))

(* The Pareto front is a property of the point set, not of its order:
   permuting the input must yield the same front (as a set) and
   pareto_flags must mark the same points. *)
let prop_pareto_invariant_under_permutation =
  QCheck.Test.make ~name:"pareto front invariant under permutation" ~count:10
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (seed, shuffle_seed) ->
      let ucs = explore_ucs seed in
      let groups = List.mapi (fun i _ -> [ i ]) ucs in
      let points =
        Noc_power.Design_space.explore ~axes:small_axes ~config:Config.default ~groups ucs
      in
      let shuffled =
        let st = Random.State.make [| shuffle_seed |] in
        let a = Array.of_list points in
        for i = Array.length a - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        Array.to_list a
      in
      let key p =
        Noc_power.Design_space.(p.freq_mhz, p.slots, p.topology, p.switches)
      in
      let front ps = List.sort compare (List.map key (Noc_power.Design_space.pareto ps)) in
      let flagged ps =
        let flags = Noc_power.Design_space.pareto_flags ps in
        List.sort compare
          (List.filteri (fun i _ -> flags.(i)) ps |> List.map key)
      in
      front points = front shuffled && flagged points = flagged shuffled
      && front points = flagged points)

(* Tdma.free_starts (rotate-and-AND over masks) vs brute force over
   start_is_free, on random partially filled paths. *)
let prop_free_starts_match_brute_force =
  QCheck.Test.make ~name:"Tdma.free_starts = brute-force start scan" ~count:100
    QCheck.(triple (int_range 1 70) (int_range 1 6) (small_list (pair small_nat small_nat)))
    (fun (slots, hops, reservations) ->
      let tables = Array.init hops (fun _ -> Slot_table.create ~slots) in
      List.iter
        (fun (hop, slot) ->
          let t = tables.(hop mod hops) in
          let slot = slot mod slots in
          if Slot_table.is_free t slot then Slot_table.reserve t ~slot ~owner:7)
        reservations;
      let brute =
        List.filter
          (fun start -> Noc_arch.Tdma.start_is_free ~tables ~start)
          (List.init slots Fun.id)
      in
      Noc_arch.Tdma.free_starts ~tables = brute
      && Noc_arch.Bitmask.to_list (Noc_arch.Tdma.free_start_mask ~tables) = brute)

let () =
  Alcotest.run "cross_module_properties"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_slot_accounting_consistent;
            prop_slot_starts_in_range;
            prop_mapping_deterministic;
            prop_reconfig_symmetric;
            prop_export_json_valid_for_random_designs;
            prop_buffer_totals_cover_every_route;
            prop_latency_bounds_respect_constraints;
            prop_bias_variants_verify;
            prop_domain_pool_matches_sequential;
            prop_domain_pool_raises_like_sequential;
            prop_domain_pool_nested_submission;
            prop_explore_warm_matches_cold;
            prop_pareto_invariant_under_permutation;
            prop_slot_table_mask_agrees;
            prop_free_starts_match_brute_force;
          ] );
    ]
