module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Mapping = Noc_core.Mapping

type breakdown = {
  switch_mw : float;
  traffic_mw : float;
  total_mw : float;
}

(* 130 nm class calibration: a 5-port switch clocked at 500 MHz burns
   a few mW idle; moving data costs on the order of pJ per byte-hop. *)
let switch_mw_per_port_at_500 = 0.9
let pj_per_byte_hop = 3.0

(* The busiest use-case dominates the design-point power; per use-case
   traffic is the bandwidth-weighted hop count of its routes. *)
let peak_traffic_mbyte_hops (m : Mapping.t) =
  let per_uc = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let cur = Option.value (Hashtbl.find_opt per_uc r.Route.use_case) ~default:0.0 in
      Hashtbl.replace per_uc r.Route.use_case
        (cur +. (r.Route.bandwidth *. float_of_int (Route.hops r))))
    m.Mapping.routes;
  Hashtbl.fold (fun _ v acc -> Float.max v acc) per_uc 0.0

let noc_power ?freq (m : Mapping.t) =
  let config = m.Mapping.config in
  let f_design = config.Config.freq_mhz in
  let f = Option.value freq ~default:f_design in
  let scale = Dvfs.power_ratio ~freq:f ~base:500.0 in
  let ports = ref 0 in
  for s = 0 to Mesh.switch_count m.Mapping.mesh - 1 do
    ports := !ports + max 1 (Area_model.switch_arity m s)
  done;
  let switch_mw = float_of_int !ports *. switch_mw_per_port_at_500 *. scale in
  (* MB/s x hops x pJ/(byte.hop) = uW; voltage scaling applies to the
     data-path energy as V^2 = f/500. *)
  let traffic_mw =
    peak_traffic_mbyte_hops m *. pj_per_byte_hop /. 1000.0 *. (f /. 500.0)
  in
  { switch_mw; traffic_mw; total_mw = switch_mw +. traffic_mw }

let with_dvfs ~design ~epochs =
  if epochs = [] then invalid_arg "Power_model.with_dvfs: no epochs";
  let total_w = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 epochs in
  List.fold_left
    (fun acc (f, w) -> acc +. (w /. total_w *. (noc_power ~freq:f design).total_mw))
    0.0 epochs
