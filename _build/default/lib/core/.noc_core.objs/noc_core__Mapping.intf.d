lib/core/mapping.mli: Format Noc_arch Noc_traffic Resources
