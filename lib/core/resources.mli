(** Per-use-case NoC resource state.

    The key idea of the paper (§5) versus the worst-case method [25]:
    *each use-case maintains separate data structures* for the
    available bandwidth and TDMA slots.  Capacity is accounted in slot
    units — the allocation granularity of an Æthereal-style NoC — so
    residual bandwidth is always [free slots x slot bandwidth] and the
    two books cannot diverge. *)

type t

val create : config:Noc_arch.Noc_config.t -> mesh:Noc_arch.Mesh.t -> use_case:int -> t
(** Fresh, empty state for one use-case on the given mesh. *)

val copy : t -> t
(** Independent deep copy: the tables and NI budgets share nothing
    with the original. *)

val use_case : t -> int
val mesh : t -> Noc_arch.Mesh.t
val config : t -> Noc_arch.Noc_config.t

val table : t -> int -> Noc_arch.Slot_table.t
(** Slot table of a link id. *)

val path_tables : t -> int list -> Noc_arch.Slot_table.t array
(** Tables along a path of link ids, in travel order. *)

val residual_bandwidth : t -> int -> Noc_util.Units.bandwidth
(** Free capacity of a link, MB/s. *)

val reserved_bandwidth : t -> int -> Noc_util.Units.bandwidth

val free_slots : t -> int -> int

val link_usable : t -> link:int -> needed_slots:int -> bool
(** Necessary per-link condition for routing a flow that needs
    [needed_slots] slots (alignment across the path is checked later by
    {!Noc_arch.Tdma.find_aligned}). *)

val utilization : t -> int -> float
(** Reserved fraction of one link. *)

val mean_utilization : t -> float
(** Mean utilization over all links (0 on a 1x1 mesh, which has none). *)

val max_utilization : t -> float

val ni_available : t -> core:int -> Noc_util.Units.bandwidth
(** Remaining NI link budget of a core ([infinity] when NI links are
    unconstrained). *)

val ni_reserve : t -> core:int -> bw:Noc_util.Units.bandwidth -> (unit, string) result
(** Budget the core's NI<->switch link (both directions tracked as one
    budget, matching one NI port pair per core).  Always succeeds when
    the configuration leaves NI links unconstrained. *)

val reservations : t -> (int * int * int) list
(** Every reserved slot as [(link, slot, owner)], in increasing
    (link, slot) order — a complete, canonical dump of the TDMA state,
    used by the mapping-result codec ({!Mapping_codec}). *)

val ni_budget_snapshot : t -> float array
(** Copy of the per-core remaining NI budgets (possibly shorter than
    the core count: entries are grown on demand by {!ni_reserve}). *)

val restore :
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  use_case:int ->
  ni_budget:float array ->
  reservations:(int * int * int) list ->
  t
(** Rebuild a state from a {!reservations} dump and a
    {!ni_budget_snapshot}: exactly inverts the pair, so a decoded
    cache entry is indistinguishable from the freshly computed state.
    @raise Invalid_argument on an out-of-range link or slot. *)

val pp : Format.formatter -> t -> unit
