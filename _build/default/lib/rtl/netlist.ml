module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Slot_table = Noc_arch.Slot_table
module Mapping = Noc_core.Mapping
module Resources = Noc_core.Resources

let data_ty config = Vhdl.std_logic_vector config.Config.link_width_bits

(* The switch has the five mesh ports: east, west, north, south, local
   (the local port aggregates the switch's NIs).  Unused directions are
   tied off / left open at instantiation. *)
let directions = [ "east"; "west"; "north"; "south"; "local" ]

let switch_ports config =
  let data = data_ty config in
  { Vhdl.name = "clk"; dir = `In; ty = "std_logic" }
  :: { Vhdl.name = "rst"; dir = `In; ty = "std_logic" }
  :: List.concat_map
       (fun d ->
         [
           { Vhdl.name = "din_" ^ d; dir = `In; ty = data };
           { Vhdl.name = "dout_" ^ d; dir = `Out; ty = data };
         ])
       directions

let switch_generics config =
  [
    ("SLOTS", "natural", string_of_int config.Config.slots);
    ("WIDTH", "natural", string_of_int config.Config.link_width_bits);
  ]

let switch_entity ~config =
  String.concat ""
    [
      Vhdl.comment "TDMA switch: the slot counter selects the crossbar configuration.";
      Vhdl.entity ~name:"noc_switch" ~generics:(switch_generics config)
        ~ports:(switch_ports config);
      "architecture behavioural of noc_switch is\n";
      "  signal slot_counter : natural range 0 to SLOTS - 1 := 0;\n";
      "begin\n";
      "  process (clk)\n";
      "  begin\n";
      "    if rising_edge(clk) then\n";
      "      if rst = '1' then\n";
      "        slot_counter <= 0;\n";
      "      elsif slot_counter = SLOTS - 1 then\n";
      "        slot_counter <= 0;\n";
      "      else\n";
      "        slot_counter <= slot_counter + 1;\n";
      "      end if;\n";
      "    end if;\n";
      "  end process;\n";
      "  -- contention-free forwarding: each output owned by at most one\n";
      "  -- input per slot (per the generated slot-table package)\n";
      "  dout_east <= din_west;\n";
      "  dout_west <= din_east;\n";
      "  dout_north <= din_south;\n";
      "  dout_south <= din_north;\n";
      "  dout_local <= din_local;\n";
      "end behavioural;\n";
    ]

let ni_entity ~config =
  String.concat ""
    [
      Vhdl.comment "Network interface: bridges a core to its switch's local port.";
      Vhdl.entity ~name:"noc_ni"
        ~generics:[ ("WIDTH", "natural", string_of_int config.Config.link_width_bits) ]
        ~ports:
          [
            { Vhdl.name = "clk"; dir = `In; ty = "std_logic" };
            { Vhdl.name = "rst"; dir = `In; ty = "std_logic" };
            { Vhdl.name = "core_in"; dir = `In; ty = data_ty config };
            { Vhdl.name = "core_out"; dir = `Out; ty = data_ty config };
            { Vhdl.name = "net_in"; dir = `In; ty = data_ty config };
            { Vhdl.name = "net_out"; dir = `Out; ty = data_ty config };
          ];
      "architecture behavioural of noc_ni is\n";
      "begin\n";
      "  core_out <= net_in;\n";
      "  net_out <= core_in;\n";
      "end behavioural;\n";
    ]

let slot_table_package ~design_name (m : Mapping.t) =
  let config = m.Mapping.config in
  let mesh = m.Mapping.mesh in
  let buf = Buffer.create 4096 in
  let links = Mesh.link_count mesh in
  Buffer.add_string buf (Printf.sprintf "package %s_config is\n" (Vhdl.ident design_name));
  Buffer.add_string buf (Printf.sprintf "  constant N_LINKS : natural := %d;\n" links);
  Buffer.add_string buf (Printf.sprintf "  constant N_SLOTS : natural := %d;\n" config.Config.slots);
  Buffer.add_string buf "  type slot_table_t is array (natural range <>) of integer;\n";
  Array.iteri
    (fun uc state ->
      Buffer.add_string buf
        (Printf.sprintf "  -- use-case %d: slot owner per (link, slot); -1 = free\n" uc);
      let entries = ref [] in
      for l = links - 1 downto 0 do
        let table = Resources.table state l in
        for s = config.Config.slots - 1 downto 0 do
          let v = match Slot_table.owner table s with Some o -> o | None -> -1 in
          entries := string_of_int v :: !entries
        done
      done;
      let body = if !entries = [] then "-1" else String.concat ", " !entries in
      let high = max 0 ((links * config.Config.slots) - 1) in
      Buffer.add_string buf
        (Printf.sprintf "  constant UC%d_SLOT_TABLE : slot_table_t(0 to %d) := (%s);\n" uc high
           body))
    m.Mapping.states;
  Buffer.add_string buf (Printf.sprintf "end package %s_config;\n" (Vhdl.ident design_name));
  Buffer.contents buf

(* Directed link leaving [s] toward a compass direction (wrap-aware on
   a torus). *)
let link_toward mesh s dir =
  match Mesh.neighbor_toward mesh s dir with
  | None -> None
  | Some n -> Mesh.link_between mesh ~src:s ~dst:n

let top_level ~design_name (m : Mapping.t) =
  let config = m.Mapping.config in
  let mesh = m.Mapping.mesh in
  let name = Vhdl.ident design_name in
  let data = data_ty config in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Vhdl.entity ~name:(name ^ "_top") ~generics:[]
       ~ports:
         [
           { Vhdl.name = "clk"; dir = `In; ty = "std_logic" };
           { Vhdl.name = "rst"; dir = `In; ty = "std_logic" };
         ]);
  Buffer.add_string buf (Printf.sprintf "architecture structural of %s_top is\n" name);
  Buffer.add_string buf
    (Vhdl.component_decl ~name:"noc_switch" ~generics:(switch_generics config)
       ~ports:(switch_ports config));
  Buffer.add_string buf
    (Vhdl.component_decl ~name:"noc_ni"
       ~generics:[ ("WIDTH", "natural", string_of_int config.Config.link_width_bits) ]
       ~ports:
         [
           { Vhdl.name = "clk"; dir = `In; ty = "std_logic" };
           { Vhdl.name = "rst"; dir = `In; ty = "std_logic" };
           { Vhdl.name = "core_in"; dir = `In; ty = data };
           { Vhdl.name = "core_out"; dir = `Out; ty = data };
           { Vhdl.name = "net_in"; dir = `In; ty = data };
           { Vhdl.name = "net_out"; dir = `Out; ty = data };
         ]);
  for l = 0 to Mesh.link_count mesh - 1 do
    Buffer.add_string buf (Vhdl.signal ~name:(Printf.sprintf "link_%d" l) ~ty:data)
  done;
  for s = 0 to Mesh.switch_count mesh - 1 do
    Buffer.add_string buf (Vhdl.signal ~name:(Printf.sprintf "local_in_%d" s) ~ty:data);
    Buffer.add_string buf (Vhdl.signal ~name:(Printf.sprintf "local_out_%d" s) ~ty:data)
  done;
  Array.iteri
    (fun core _ ->
      Buffer.add_string buf (Vhdl.signal ~name:(Printf.sprintf "core_out_%d" core) ~ty:data))
    m.Mapping.placement;
  Buffer.add_string buf "begin\n";
  for s = 0 to Mesh.switch_count mesh - 1 do
    let x, y = Mesh.coord mesh s in
    (* din_<dir> takes the incoming link (the reverse direction's
       outgoing link from the neighbour); dout_<dir> drives our own. *)
    let dir_map =
      [
        ("east", Mesh.East);
        ("west", Mesh.West);
        ("north", Mesh.North);
        ("south", Mesh.South);
      ]
    in
    let port_map =
      [ ("clk", "clk"); ("rst", "rst") ]
      @ List.concat_map
          (fun (d, dir) ->
            let outgoing = link_toward mesh s dir in
            let incoming =
              match Mesh.neighbor_toward mesh s dir with
              | None -> None
              | Some n -> Mesh.link_between mesh ~src:n ~dst:s
            in
            [
              ( "din_" ^ d,
                match incoming with
                | Some l -> Printf.sprintf "link_%d" l
                | None -> "(others => '0')" );
              ( "dout_" ^ d,
                match outgoing with Some l -> Printf.sprintf "link_%d" l | None -> "open" );
            ])
          dir_map
      @ [
          ("din_local", Printf.sprintf "local_in_%d" s);
          ("dout_local", Printf.sprintf "local_out_%d" s);
        ]
    in
    Buffer.add_string buf
      (Vhdl.comment (Printf.sprintf "switch %d at (%d,%d)" s x y));
    Buffer.add_string buf
      (Vhdl.instance
         ~label:(Printf.sprintf "sw_%d" s)
         ~component:"noc_switch"
         ~generic_map:
           [
             ("SLOTS", string_of_int config.Config.slots);
             ("WIDTH", string_of_int config.Config.link_width_bits);
           ]
         ~port_map)
  done;
  (* The concentrator multiplexing a switch's NIs onto its local port
     is abstracted: the first NI on a switch drives local_in, the
     others observe local_out only. *)
  let local_driven = Array.make (Mesh.switch_count mesh) false in
  Array.iteri
    (fun core sw ->
      let drives = not local_driven.(sw) in
      local_driven.(sw) <- true;
      Buffer.add_string buf (Vhdl.comment (Printf.sprintf "core %d on switch %d" core sw));
      Buffer.add_string buf
        (Vhdl.instance
           ~label:(Printf.sprintf "ni_%d" core)
           ~component:"noc_ni"
           ~generic_map:[ ("WIDTH", string_of_int config.Config.link_width_bits) ]
           ~port_map:
             [
               ("clk", "clk");
               ("rst", "rst");
               ("core_in", Printf.sprintf "core_out_%d" core);
               ("core_out", "open");
               ("net_in", Printf.sprintf "local_out_%d" sw);
               ("net_out", if drives then Printf.sprintf "local_in_%d" sw else "open");
             ]))
    m.Mapping.placement;
  (* Tie off local inputs of switches hosting no NI, and the core-side
     stimuli (the cores themselves live outside this netlist). *)
  Array.iteri
    (fun s driven ->
      if not driven then
        Buffer.add_string buf (Printf.sprintf "  local_in_%d <= (others => '0');\n" s))
    local_driven;
  Array.iteri
    (fun core _ ->
      Buffer.add_string buf (Printf.sprintf "  core_out_%d <= (others => '0');\n" core))
    m.Mapping.placement;
  Buffer.add_string buf "end structural;\n";
  Buffer.contents buf

let generate ~design_name (m : Mapping.t) =
  let config = m.Mapping.config in
  String.concat "\n"
    [
      Vhdl.header
        (Printf.sprintf "Generated NoC for design '%s': %s" design_name
           (Format.asprintf "%a" Mesh.pp m.Mapping.mesh));
      slot_table_package ~design_name m;
      switch_entity ~config;
      ni_entity ~config;
      top_level ~design_name m;
    ]
