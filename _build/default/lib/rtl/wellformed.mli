(** Structural well-formedness checks over generated VHDL text.

    Not a VHDL compiler — a lint for the constructs {!Netlist} emits,
    strong enough to catch generator bugs: unbalanced design units,
    instances of undeclared components, references to undeclared
    signals in port maps, duplicate instance labels and duplicate
    signal declarations. *)

type issue = {
  line : int;      (** 1-based line of the offending text, 0 if global *)
  message : string;
}

val check : string -> (unit, issue list) result
(** Empty issue list = well-formed (returned as [Ok ()]). *)

val stats : string -> (string * int) list
(** Quick inventory of the text: entities, architectures, components,
    instances, signals, packages — used by tests and the CLI to report
    what was generated. *)
