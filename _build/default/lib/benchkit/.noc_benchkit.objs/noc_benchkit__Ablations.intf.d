lib/benchkit/ablations.mli:
