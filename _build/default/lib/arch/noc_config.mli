(** Parameters of the NoC architecture being designed.

    The paper's §6.2 experiments fix 500 MHz and 32-bit links; other
    experiments sweep the frequency.  All mapping and verification code
    reads these knobs from one record so that sweeps only rebuild the
    configuration. *)

type routing =
  | Min_cost  (** least-cost path search (paper §5, following [20]) *)
  | Xy        (** dimension-ordered routing; deadlock-free by construction *)

type t = {
  freq_mhz : Noc_util.Units.frequency;  (** switch/link clock *)
  link_width_bits : int;                (** link word width *)
  slots : int;                          (** TDMA slot-table size *)
  slot_cycles : int;                    (** clock cycles per slot *)
  nis_per_switch : int;                 (** max cores attachable per switch *)
  constrain_ni_links : bool;            (** also budget the NI<->switch links *)
  max_mesh_dim : int;                   (** growth stops at this width/height *)
  routing : routing;
  topology : Mesh.kind;
      (** grid family used by the growth loop (mesh or torus) *)
  placement_hw_factor : float;
      (** fraction of a switch's aggregate link bandwidth that its
          cores' traffic may claim at placement time (bisection-style
          admission bound) *)
  placement_spread_factor : float;
      (** per-switch load may exceed the mesh-wide average load by at
          most this factor, forcing cores apart on larger meshes *)
}

val default : t
(** 500 MHz, 32-bit links, 32 slots of 4 cycles, 8 NIs per switch,
    unconstrained NI links, growth cap 20, min-cost routing. *)

val with_freq : t -> Noc_util.Units.frequency -> t
(** Same configuration at a different clock. *)

val link_capacity : t -> Noc_util.Units.bandwidth
(** Raw capacity of one link, MB/s. *)

val slot_bandwidth : t -> Noc_util.Units.bandwidth
(** Bandwidth granted by a single TDMA slot, MB/s. *)

val slot_duration_ns : t -> Noc_util.Units.latency
(** Wall-clock duration of one slot. *)

val slots_for_bandwidth : t -> Noc_util.Units.bandwidth -> int
(** Slots needed to carry the given bandwidth on one link; [0] for a
    zero bandwidth, at least [1] otherwise. *)

val validate : t -> (unit, string) result
(** Reject non-positive frequencies, widths, slot counts, etc. *)

val pp : Format.formatter -> t -> unit
