(** NoC power model.

    Dynamic power of the network at its design point, decomposed into
    switch idle/clocking power (proportional to switch count and
    frequency-squared under the DVS voltage model) and traffic power
    (energy per byte-hop moved).  Absolute numbers are indicative of a
    130 nm design; the evaluation only relies on ratios. *)

type breakdown = {
  switch_mw : float;   (** clock/idle power of the switches *)
  traffic_mw : float;  (** data movement power *)
  total_mw : float;
}

val noc_power :
  ?freq:Noc_util.Units.frequency -> Noc_core.Mapping.t -> breakdown
(** Power of a designed NoC when operated at [freq] (default: its
    design frequency), carrying the traffic of its busiest use-case.
    Voltage follows the conservative DVS model, so power scales with
    the square of frequency. *)

val with_dvfs :
  design:Noc_core.Mapping.t ->
  epochs:(Noc_util.Units.frequency * float) list ->
  float
(** Time-weighted average power (mW) when each use-case epoch runs at
    its own frequency. *)
