module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Tdma = Noc_arch.Tdma
module Route = Noc_arch.Route
module Flow = Noc_traffic.Flow
module Shortest_path = Noc_graph.Shortest_path

type request = {
  conn_id : int;
  flow : Flow.t;
  src_switch : int;
  dst_switch : int;
}

let hop_weight = 1.0
let util_weight = 4.0

(* Routing is the hottest code in the repo, so it carries counters
   only (striped atomic adds) — spans here would dominate the trace
   and the timestamp calls would perturb the measurement. *)
module Metrics = Noc_obs.Metrics

let m_shared = Metrics.counter "route.shared"
let m_be = Metrics.counter "route.be"
let m_detours = Metrics.counter "route.detours"
let m_failures = Metrics.counter "route.failures"

let needed_slots state bw = Config.slots_for_bandwidth (Resources.config state) bw

(* Link cost seen by a set of group members routing together: usable
   only if every member still has the needed slots free; congestion is
   the worst member's utilization, so shared paths avoid regions that
   are hot in any member.  [excluded] (indexed by link id) lets the
   caller blacklist links whose slot alignment defeated a previous
   attempt. *)
let member_cost ?excluded members ~needed =
  fun ~edge ~src:_ ~dst:_ ->
  if (match excluded with Some ex -> ex.(edge) | None -> false) then None
  else begin
    let usable =
      List.for_all
        (fun state -> Resources.link_usable state ~link:edge ~needed_slots:needed)
        members
    in
    if not usable then None
    else begin
      let congestion =
        List.fold_left
          (fun acc state -> Float.max acc (Resources.utilization state edge))
          0.0 members
      in
      Some (hop_weight +. (util_weight *. congestion))
    end
  end

let find_path ?excluded ~leader ~members ~needed ~src ~dst () =
  let mesh = Resources.mesh leader in
  let config = Resources.config leader in
  match config.Config.routing with
  | Config.Min_cost ->
    (match
       Shortest_path.dijkstra (Mesh.graph mesh)
         ~cost:(member_cost ?excluded members ~needed)
         ~source:src ~target:dst
     with
    | Some p -> Ok p.Shortest_path.edges
    | None -> Error "no feasible path (bandwidth/slots exhausted)")
  | Config.Xy ->
    let links = Mesh.xy_route mesh ~src ~dst in
    let ok =
      List.for_all
        (fun l ->
          List.for_all (fun st -> Resources.link_usable st ~link:l ~needed_slots:needed) members)
        links
    in
    if ok then Ok links else Error "XY path lacks capacity"

(* Feasible starting slots common to every member along the path:
   rotate-and-AND every member's per-hop free mask into one accumulator.
   [common_starts_reference] is the straightforward quadratic
   list-intersection formulation; the determinism regression test pins
   the fast path to it. *)
let common_starts members links =
  match members with
  | [] -> invalid_arg "Path_select: no members"
  | first :: _ ->
    let slots = (Resources.config first).Config.slots in
    let acc = Noc_arch.Bitmask.create ~slots ~full:true in
    List.iter
      (fun state ->
        List.iteri
          (fun hop l ->
            Noc_arch.Bitmask.inter_rotated ~into:acc
              (Noc_arch.Slot_table.free_mask (Resources.table state l))
              ~shift:hop)
          links)
      members;
    Noc_arch.Bitmask.to_list acc

let common_starts_reference members links =
  match members with
  | [] -> invalid_arg "Path_select: no members"
  | first :: rest ->
    let starts state =
      let tables = Resources.path_tables state links in
      let slots = (Resources.config state).Config.slots in
      let acc = ref [] in
      for start = slots - 1 downto 0 do
        if Tdma.start_is_free ~tables ~start then acc := start :: !acc
      done;
      !acc
    in
    List.fold_left
      (fun acc state ->
        let s = starts state in
        List.filter (fun x -> List.mem x s) acc)
      (starts first) rest

(* Smallest spread slot set (>= needed) meeting the latency bound, or
   the reason none does.  More slots shrink the worst waiting gap, so
   we escalate the count until the bound holds or candidates run out. *)
let pick_starts ~config ~candidates ~needed ~hops ~lat_req =
  let slots = config.Config.slots in
  let n_candidates = List.length candidates in
  let rec try_count k =
    if k > n_candidates then
      Error
        (Printf.sprintf "cannot meet latency %.0f ns (feasible starts %d, needed slots %d)"
           lat_req n_candidates needed)
    else
      match Tdma.choose_spread ~slots ~candidates ~count:k with
      | None -> Error "not enough free aligned slots"
      | Some starts ->
        let lat = Tdma.worst_case_latency_ns ~config ~starts ~hops in
        if lat <= lat_req then Ok starts else try_count (k + 1)
  in
  if n_candidates < needed then
    Error (Printf.sprintf "only %d aligned slots free, flow needs %d" n_candidates needed)
  else try_count needed

let check_ni members =
  List.fold_left
    (fun acc (state, req) ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        let bw = req.flow.Flow.bandwidth in
        if
          Resources.ni_available state ~core:req.flow.Flow.src >= bw
          && Resources.ni_available state ~core:req.flow.Flow.dst >= bw
        then Ok ()
        else Error "NI link budget exhausted")
    (Ok ()) members

let charge_ni members =
  List.iter
    (fun (state, req) ->
      let bw = req.flow.Flow.bandwidth in
      (match Resources.ni_reserve state ~core:req.flow.Flow.src ~bw with
      | Ok () -> ()
      | Error msg -> invalid_arg msg);
      match Resources.ni_reserve state ~core:req.flow.Flow.dst ~bw with
      | Ok () -> ()
      | Error msg -> invalid_arg msg)
    members

let make_route ?(service = Route.Gt) ~use_case req links starts =
  {
    Route.flow_id = req.conn_id;
    use_case;
    src_core = req.flow.Flow.src;
    dst_core = req.flow.Flow.dst;
    src_switch = req.src_switch;
    dst_switch = req.dst_switch;
    bandwidth = req.flow.Flow.bandwidth;
    service;
    links;
    slot_starts = starts;
  }

let count_result r =
  (match r with Error _ -> Metrics.incr m_failures | Ok _ -> ());
  r

let route_shared ?(passive = []) ?(use_masks = true) ~members () =
  Metrics.incr m_shared;
  match members with
  | [] -> invalid_arg "Path_select.route_shared: no members"
  | (first_state, first_req) :: _ ->
    count_result
    @@
    let src = first_req.src_switch and dst = first_req.dst_switch in
    List.iter
      (fun (_, r) ->
        if r.src_switch <> src || r.dst_switch <> dst then
          invalid_arg "Path_select.route_shared: mismatched switch pairs")
      members;
    let config = Resources.config first_state in
    (* Paper: path and slots are chosen for the member with the maximum
       bandwidth, then reserved identically in every member. *)
    let max_bw =
      List.fold_left (fun acc (_, r) -> Float.max acc r.flow.Flow.bandwidth) 0.0 members
    in
    let lat_req = List.fold_left (fun acc (_, r) -> Float.min acc r.flow.Flow.latency_ns) infinity members in
    let states = List.map fst members @ passive in
    let passive_members =
      (* Passive states mirror the reservation at the group maximum,
         owned by the leader's connection id. *)
      List.map
        (fun state ->
          (state, { first_req with flow = { first_req.flow with Flow.bandwidth = max_bw } }))
        passive
    in
    let finish links starts =
      match check_ni (members @ passive_members) with
      | Error msg -> Error msg
      | Ok () ->
        charge_ni (members @ passive_members);
        List.iter
          (fun (state, req) ->
            if links <> [] then
              Tdma.reserve
                ~tables:(Resources.path_tables state links)
                ~owner:req.conn_id ~starts)
          (members @ passive_members);
        Ok
          (List.map
             (fun (state, req) ->
               make_route ~use_case:(Resources.use_case state) req links starts)
             members)
    in
    if src = dst then
      (* NI-to-NI through one switch: one slot duration of latency. *)
      if Config.slot_duration_ns config <= lat_req then finish [] []
      else Error "latency bound tighter than one slot duration"
    else begin
      let needed = Config.slots_for_bandwidth config max_bw in
      if needed > config.Config.slots then
        Error
          (Printf.sprintf "flow bandwidth %.1f MB/s exceeds link capacity %.1f MB/s" max_bw
             (Config.link_capacity config))
      else begin
        (* When the least-cost path has no aligned slots, blacklist its
           scarcest link and search again: the path search itself is
           alignment-blind, so a handful of detour attempts recovers
           most of the feasible region. *)
        let max_retries = 12 in
        let scarcest links =
          let free_on l =
            List.fold_left
              (fun acc st -> min acc (Resources.free_slots st l))
              max_int states
          in
          match links with
          | [] -> None
          | l :: rest ->
            Some
              (List.fold_left (fun best l' -> if free_on l' < free_on best then l' else best) l rest)
        in
        let excluded =
          Array.make (Mesh.link_count (Resources.mesh first_state)) false
        in
        let rec attempt tries last_err =
          if tries > max_retries then Error last_err
          else
            match find_path ~excluded ~leader:first_state ~members:states ~needed ~src ~dst () with
            | Error e -> if tries = 0 then Error e else Error last_err
            | Ok links -> (
              let candidates =
                if use_masks then common_starts states links
                else common_starts_reference states links
              in
              match pick_starts ~config ~candidates ~needed ~hops:(List.length links) ~lat_req with
              | Ok starts -> finish links starts
              | Error e -> (
                match scarcest links with
                | None -> Error e
                | Some l ->
                  excluded.(l) <- true;
                  Metrics.incr m_detours;
                  attempt (tries + 1) e))
        in
        attempt 0 "no feasible path"
      end
    end

let route ~state req =
  Result.map (fun routes -> List.hd routes) (route_shared ~members:[ (state, req) ] ())

let route_be ~state req =
  if Flow.is_guaranteed req.flow then
    invalid_arg "Path_select.route_be: guaranteed flow";
  Metrics.incr m_be;
  count_result
  @@
  let src = req.src_switch and dst = req.dst_switch in
  let use_case = Resources.use_case state in
  if src = dst then Ok (make_route ~service:Route.Be ~use_case req [] [])
  else begin
    (* Any link with at least one free slot can carry BE traffic; the
       cost still steers BE paths away from GT-hot regions. *)
    match find_path ~leader:state ~members:[ state ] ~needed:0 ~src ~dst () with
    | Error _ as e -> e
    | Ok links -> Ok (make_route ~service:Route.Be ~use_case req links [])
  end

let distance_map ~state ~needed_slots ~source =
  let mesh = Resources.mesh state in
  let dist, _ =
    Shortest_path.dijkstra_all (Mesh.graph mesh)
      ~cost:(member_cost [ state ] ~needed:needed_slots)
      ~source
  in
  dist
