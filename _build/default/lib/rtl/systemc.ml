module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Slot_table = Noc_arch.Slot_table
module Mapping = Noc_core.Mapping
module Resources = Noc_core.Resources

let directions = [ "east"; "west"; "north"; "south"; "local" ]

let header design_name =
  String.concat "\n"
    [
      Printf.sprintf "// Generated SystemC model for design '%s'" design_name;
      "#include <systemc.h>";
      "";
      "";
    ]

let switch_module ~config =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "// TDMA switch: the slot counter selects the crossbar configuration.\n";
  Buffer.add_string buf "SC_MODULE(noc_switch) {\n";
  Buffer.add_string buf "  sc_in<bool> clk;\n";
  Buffer.add_string buf "  sc_in<bool> rst;\n";
  List.iter
    (fun d ->
      Buffer.add_string buf (Printf.sprintf "  sc_in<sc_uint<%d> > din_%s;\n" config.Config.link_width_bits d);
      Buffer.add_string buf (Printf.sprintf "  sc_out<sc_uint<%d> > dout_%s;\n" config.Config.link_width_bits d))
    directions;
  Buffer.add_string buf (Printf.sprintf "  static const int SLOTS = %d;\n" config.Config.slots);
  Buffer.add_string buf "  int slot_counter;\n";
  Buffer.add_string buf "\n  void tick() {\n";
  Buffer.add_string buf "    if (rst.read()) { slot_counter = 0; return; }\n";
  Buffer.add_string buf "    slot_counter = (slot_counter + 1) % SLOTS;\n";
  Buffer.add_string buf "    // contention-free forwarding per the generated slot tables\n";
  Buffer.add_string buf "    dout_east.write(din_west.read());\n";
  Buffer.add_string buf "    dout_west.write(din_east.read());\n";
  Buffer.add_string buf "    dout_north.write(din_south.read());\n";
  Buffer.add_string buf "    dout_south.write(din_north.read());\n";
  Buffer.add_string buf "    dout_local.write(din_local.read());\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "\n  SC_CTOR(noc_switch) : slot_counter(0) {\n";
  Buffer.add_string buf "    SC_METHOD(tick);\n";
  Buffer.add_string buf "    sensitive << clk.pos();\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "};\n\n";
  Buffer.contents buf

let ni_module ~config =
  let w = config.Config.link_width_bits in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "// Network interface: bridges a core to its switch's local port.\n";
  Buffer.add_string buf "SC_MODULE(noc_ni) {\n";
  Buffer.add_string buf "  sc_in<bool> clk;\n";
  Buffer.add_string buf "  sc_in<bool> rst;\n";
  Buffer.add_string buf (Printf.sprintf "  sc_in<sc_uint<%d> > core_in;\n" w);
  Buffer.add_string buf (Printf.sprintf "  sc_out<sc_uint<%d> > core_out;\n" w);
  Buffer.add_string buf (Printf.sprintf "  sc_in<sc_uint<%d> > net_in;\n" w);
  Buffer.add_string buf (Printf.sprintf "  sc_out<sc_uint<%d> > net_out;\n" w);
  Buffer.add_string buf "\n  void forward() {\n";
  Buffer.add_string buf "    core_out.write(net_in.read());\n";
  Buffer.add_string buf "    net_out.write(core_in.read());\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "\n  SC_CTOR(noc_ni) {\n";
  Buffer.add_string buf "    SC_METHOD(forward);\n";
  Buffer.add_string buf "    sensitive << clk.pos();\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "};\n\n";
  Buffer.contents buf

let ident = Vhdl.ident (* same hygiene rules serve C++ identifiers *)

let slot_tables ~design_name (m : Mapping.t) =
  let config = m.Mapping.config in
  let mesh = m.Mapping.mesh in
  let links = Mesh.link_count mesh in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "// slot owner per (link, slot); -1 = free; design %s\n" (ident design_name));
  Buffer.add_string buf (Printf.sprintf "static const int N_LINKS = %d;\n" links);
  Buffer.add_string buf (Printf.sprintf "static const int N_SLOTS = %d;\n" config.Config.slots);
  Array.iteri
    (fun uc state ->
      let entries = ref [] in
      for l = links - 1 downto 0 do
        let table = Resources.table state l in
        for s = config.Config.slots - 1 downto 0 do
          let v = match Slot_table.owner table s with Some o -> o | None -> -1 in
          entries := string_of_int v :: !entries
        done
      done;
      let body = if !entries = [] then "-1" else String.concat ", " !entries in
      Buffer.add_string buf
        (Printf.sprintf "static const int UC%d_SLOT_TABLE[%d] = {%s};\n" uc
           (max 1 (links * config.Config.slots))
           body))
    m.Mapping.states;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let top_module ~design_name (m : Mapping.t) =
  let config = m.Mapping.config in
  let mesh = m.Mapping.mesh in
  let w = config.Config.link_width_bits in
  let name = ident design_name in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "SC_MODULE(%s_top) {\n" name);
  Buffer.add_string buf "  sc_in<bool> clk;\n";
  Buffer.add_string buf "  sc_in<bool> rst;\n\n";
  (* signals *)
  for l = 0 to Mesh.link_count mesh - 1 do
    Buffer.add_string buf (Printf.sprintf "  sc_signal<sc_uint<%d> > link_%d;\n" w l)
  done;
  for s = 0 to Mesh.switch_count mesh - 1 do
    Buffer.add_string buf (Printf.sprintf "  sc_signal<sc_uint<%d> > local_in_%d;\n" w s);
    Buffer.add_string buf (Printf.sprintf "  sc_signal<sc_uint<%d> > local_out_%d;\n" w s)
  done;
  Array.iteri
    (fun core _ ->
      Buffer.add_string buf (Printf.sprintf "  sc_signal<sc_uint<%d> > core_out_%d;\n" w core);
      Buffer.add_string buf (Printf.sprintf "  sc_signal<sc_uint<%d> > core_sink_%d;\n" w core))
    m.Mapping.placement;
  (* tie-off signals for mesh-edge ports *)
  Buffer.add_string buf (Printf.sprintf "  sc_signal<sc_uint<%d> > zero_sig;\n" w);
  for s = 0 to Mesh.switch_count mesh - 1 do
    List.iter
      (fun d -> Buffer.add_string buf (Printf.sprintf "  sc_signal<sc_uint<%d> > open_%s_%d;\n" w d s))
      [ "east"; "west"; "north"; "south" ]
  done;
  Buffer.add_char buf '\n';
  (* members *)
  for s = 0 to Mesh.switch_count mesh - 1 do
    Buffer.add_string buf (Printf.sprintf "  noc_switch sw_%d;\n" s)
  done;
  Array.iteri
    (fun core _ -> Buffer.add_string buf (Printf.sprintf "  noc_ni ni_%d;\n" core))
    m.Mapping.placement;
  (* constructor with bindings *)
  Buffer.add_string buf (Printf.sprintf "\n  SC_CTOR(%s_top)" name);
  let inits = ref [] in
  for s = Mesh.switch_count mesh - 1 downto 0 do
    inits := Printf.sprintf "sw_%d(\"sw_%d\")" s s :: !inits
  done;
  for core = Array.length m.Mapping.placement - 1 downto 0 do
    inits := Printf.sprintf "ni_%d(\"ni_%d\")" core core :: !inits
  done;
  Buffer.add_string buf (" : " ^ String.concat ", " (List.rev !inits));
  Buffer.add_string buf " {\n";
  let dir_map =
    [ ("east", Mesh.East); ("west", Mesh.West); ("north", Mesh.North); ("south", Mesh.South) ]
  in
  for s = 0 to Mesh.switch_count mesh - 1 do
    Buffer.add_string buf (Printf.sprintf "    // switch %d\n" s);
    Buffer.add_string buf (Printf.sprintf "    sw_%d.clk(clk);\n" s);
    Buffer.add_string buf (Printf.sprintf "    sw_%d.rst(rst);\n" s);
    List.iter
      (fun (d, dir) ->
        let outgoing =
          match Mesh.neighbor_toward mesh s dir with
          | Some n -> Mesh.link_between mesh ~src:s ~dst:n
          | None -> None
        in
        let incoming =
          match Mesh.neighbor_toward mesh s dir with
          | Some n -> Mesh.link_between mesh ~src:n ~dst:s
          | None -> None
        in
        Buffer.add_string buf
          (Printf.sprintf "    sw_%d.din_%s(%s);\n" s d
             (match incoming with Some l -> Printf.sprintf "link_%d" l | None -> "zero_sig"));
        Buffer.add_string buf
          (Printf.sprintf "    sw_%d.dout_%s(%s);\n" s d
             (match outgoing with
             | Some l -> Printf.sprintf "link_%d" l
             | None -> Printf.sprintf "open_%s_%d" d s)))
      dir_map;
    Buffer.add_string buf (Printf.sprintf "    sw_%d.din_local(local_in_%d);\n" s s);
    Buffer.add_string buf (Printf.sprintf "    sw_%d.dout_local(local_out_%d);\n" s s)
  done;
  let local_driven = Array.make (Mesh.switch_count mesh) false in
  Array.iteri
    (fun core sw ->
      let drives = not local_driven.(sw) in
      local_driven.(sw) <- true;
      Buffer.add_string buf (Printf.sprintf "    // core %d on switch %d\n" core sw);
      Buffer.add_string buf (Printf.sprintf "    ni_%d.clk(clk);\n" core);
      Buffer.add_string buf (Printf.sprintf "    ni_%d.rst(rst);\n" core);
      Buffer.add_string buf (Printf.sprintf "    ni_%d.core_in(core_out_%d);\n" core core);
      Buffer.add_string buf (Printf.sprintf "    ni_%d.core_out(core_sink_%d);\n" core core);
      Buffer.add_string buf (Printf.sprintf "    ni_%d.net_in(local_out_%d);\n" core sw);
      Buffer.add_string buf
        (Printf.sprintf "    ni_%d.net_out(%s);\n" core
           (if drives then Printf.sprintf "local_in_%d" sw
            else Printf.sprintf "core_sink_%d" core)))
    m.Mapping.placement;
  Buffer.add_string buf "  }\n};\n";
  Buffer.contents buf

let generate ~design_name (m : Mapping.t) =
  String.concat ""
    [
      header design_name;
      slot_tables ~design_name m;
      switch_module ~config:m.Mapping.config;
      ni_module ~config:m.Mapping.config;
      top_module ~design_name m;
    ]

(* --- lint --------------------------------------------------------------- *)

type issue = {
  line : int;
  message : string;
}

let strip_comment line =
  match String.index_opt line '/' with
  | Some i when i + 1 < String.length line && line.[i + 1] = '/' -> String.sub line 0 i
  | _ -> line

let idents line =
  let buf = Buffer.create 16 in
  let acc = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      acc := Buffer.contents buf :: !acc;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> flush ())
    line;
  flush ();
  List.rev !acc

let scan text =
  let modules = ref [] in
  let members = ref [] in (* (module_type, member_name, line) *)
  let signals = ref [] in
  let ports = ref [] in
  let bindings = ref [] in (* (member, port, actual, line) *)
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      let line = strip_comment raw in
      let ts = idents line in
      (match ts with
      | "SC_MODULE" :: name :: _ -> modules := (name, line_no) :: !modules
      | "sc_signal" :: rest ->
        (* last identifier on the line is the signal name *)
        (match List.rev rest with
        | name :: _ when name <> "" -> signals := (name, line_no) :: !signals
        | _ -> ())
      | ("sc_in" | "sc_out") :: rest ->
        (match List.rev rest with
        | name :: _ -> ports := (name, line_no) :: !ports
        | _ -> ())
      | [ ty; member ] when ty <> "" && member <> "" && ty <> "int" && ty <> "return" ->
        (* member declaration like "noc_switch sw_0;" *)
        if String.length line > 0 && String.contains line ';' && not (String.contains line '(')
        then members := (ty, member, line_no) :: !members
      | _ -> ());
      (* binding: member.port(actual); *)
      match String.index_opt line '.' with
      | Some di when String.contains line '(' && String.contains line ')' ->
        let before = String.sub line 0 di in
        (match (idents before, String.index_opt line '(') with
        | [ member ], Some oi -> (
          let between = String.sub line (di + 1) (oi - di - 1) in
          let close = String.index_from line oi ')' in
          let actual = String.sub line (oi + 1) (close - oi - 1) in
          match (idents between, idents actual) with
          | [ port ], [ a ] -> bindings := (member, port, a, line_no) :: !bindings
          | _ -> ())
        | _ -> ())
      | _ -> ())
    (String.split_on_char '\n' text);
  (!modules, !members, !signals, !ports, !bindings)

let balanced text =
  let depth_brace = ref 0 and depth_paren = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '{' -> incr depth_brace
      | '}' -> decr depth_brace
      | '(' -> incr depth_paren
      | ')' -> decr depth_paren
      | _ -> ())
    text;
  (!depth_brace, !depth_paren)

let check text =
  let modules, members, signals, ports, bindings = scan text in
  let issues = ref [] in
  let add line message = issues := { line; message } :: !issues in
  let db, dp = balanced text in
  if db <> 0 then add 0 (Printf.sprintf "unbalanced braces (depth %d at end)" db);
  if dp <> 0 then add 0 (Printf.sprintf "unbalanced parentheses (depth %d at end)" dp);
  (* every member's type is a declared SC_MODULE *)
  List.iter
    (fun (ty, member, line) ->
      if
        (not (List.exists (fun (m, _) -> m = ty) modules))
        && ty <> "sc_signal" && ty <> "bool"
      then add line (Printf.sprintf "member '%s' has undeclared module type '%s'" member ty))
    members;
  (* duplicate members *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (_, member, line) ->
      if Hashtbl.mem seen member then add line (Printf.sprintf "duplicate member '%s'" member)
      else Hashtbl.add seen member ())
    members;
  (* binding actuals must be declared signals or top-level ports *)
  let known = Hashtbl.create 256 in
  List.iter (fun (s, _) -> Hashtbl.replace known s ()) signals;
  List.iter (fun (p, _) -> Hashtbl.replace known p ()) ports;
  List.iter
    (fun (_, _, actual, line) ->
      if not (Hashtbl.mem known actual) then
        add line (Printf.sprintf "binding actual '%s' is not a declared signal or port" actual))
    bindings;
  if modules = [] then add 0 "no SC_MODULE found";
  match List.rev !issues with [] -> Ok () | l -> Error l

let stats text =
  let modules, members, signals, _, bindings = scan text in
  [
    ("modules", List.length modules);
    ("instances", List.length members);
    ("signals", List.length signals);
    ("bindings", List.length bindings);
  ]
