(* Tests for Noc_power: DVS/DFS model, area model, power model,
   minimum-frequency search, Pareto sweep. *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Dvfs = Noc_power.Dvfs
module Area = Noc_power.Area_model
module Power = Noc_power.Power_model
module Min_freq = Noc_power.Min_freq
module Pareto = Noc_power.Pareto

let check_float = Alcotest.(check (float 1e-9))

let uc ~id ~cores flows = U.create ~id ~name:(Printf.sprintf "u%d" id) ~cores flows

let test_dvfs_voltage_ratio () =
  check_float "half freq" (sqrt 0.5) (Dvfs.voltage_ratio ~freq:250.0 ~base:500.0);
  check_float "same" 1.0 (Dvfs.voltage_ratio ~freq:500.0 ~base:500.0)

let test_dvfs_power_ratio () =
  check_float "P ~ f^2" 0.25 (Dvfs.power_ratio ~freq:250.0 ~base:500.0);
  check_float "identity" 1.0 (Dvfs.power_ratio ~freq:500.0 ~base:500.0)

let test_dvfs_savings_hand_computed () =
  check_float "37.5%" 0.375 (Dvfs.savings ~f_design:500.0 ~epochs:[ (250.0, 1.0); (500.0, 1.0) ])

let test_dvfs_savings_weighted () =
  check_float "weighted" (1.0 -. (1.75 /. 4.0))
    (Dvfs.savings ~f_design:500.0 ~epochs:[ (250.0, 3.0); (500.0, 1.0) ])

let test_dvfs_savings_zero_when_flat () =
  check_float "no scaling no savings" 0.0
    (Dvfs.savings ~f_design:500.0 ~epochs:[ (500.0, 1.0); (500.0, 2.0) ])

let test_dvfs_savings_rejections () =
  let bad name f =
    Alcotest.(check bool) name true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  bad "empty" (fun () -> Dvfs.savings ~f_design:500.0 ~epochs:[]);
  bad "zero weight" (fun () -> Dvfs.savings ~f_design:500.0 ~epochs:[ (100.0, 0.0) ]);
  bad "above design" (fun () -> Dvfs.savings ~f_design:500.0 ~epochs:[ (600.0, 1.0) ])

let test_dvfs_savings_percent () =
  check_float "percent form" 37.5
    (Dvfs.savings_percent ~f_design:500.0 ~epochs:[ (250.0, 1.0); (500.0, 1.0) ])

let prop_dvfs_savings_in_range =
  QCheck.Test.make ~name:"savings within [0,1)" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8)
              (pair (float_bound_exclusive 499.0) (float_bound_exclusive 10.0)))
    (fun epochs ->
      let epochs = List.map (fun (f, w) -> (1.0 +. Float.abs f, 0.1 +. Float.abs w)) epochs in
      let s = Dvfs.savings ~f_design:500.0 ~epochs in
      s >= 0.0 && s < 1.0)

let test_area_grows_with_arity () =
  let a4 = Area.switch_area ~config:Config.default ~arity:4 in
  let a8 = Area.switch_area ~config:Config.default ~arity:8 in
  Alcotest.(check bool) "more ports, more area" true (a8 > a4)

let test_area_grows_with_frequency () =
  let slow = Area.switch_area ~config:(Config.with_freq Config.default 200.0) ~arity:5 in
  let fast = Area.switch_area ~config:(Config.with_freq Config.default 2000.0) ~arity:5 in
  Alcotest.(check bool) "timing-driven inflation" true (fast > slow)

let test_area_calibration_ballpark () =
  let a = Area.switch_area ~config:Config.default ~arity:5 in
  Alcotest.(check bool) "0.05..0.8 mm2" true (a > 0.05 && a < 0.8)

let test_area_rejects_bad_inputs () =
  Alcotest.(check bool) "arity" true
    (try ignore (Area.switch_area ~config:Config.default ~arity:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "freq beyond model" true
    (try ignore (Area.switch_area ~config:(Config.with_freq Config.default 3000.0) ~arity:4); false
     with Invalid_argument _ -> true)

let small_design () =
  let ucs = [ uc ~id:0 ~cores:4 [ Flow.v ~src:0 ~dst:1 150.0; Flow.v ~src:2 ~dst:3 80.0 ] ] in
  let config = { Config.default with nis_per_switch = 1 } in
  match Mapping.map_design ~config ~groups:[ [ 0 ] ] ucs with
  | Ok m -> (m, ucs)
  | Error _ -> Alcotest.fail "small design must map"

let test_area_of_design_positive () =
  let m, _ = small_design () in
  Alcotest.(check bool) "positive total" true (Area.noc_area m > 0.0)

let test_switch_arity_counts_nis () =
  let m, _ = small_design () in
  let s0 = m.Mapping.placement.(0) in
  let links = Noc_graph.Intgraph.degree (Mesh.graph m.Mapping.mesh) s0 in
  Alcotest.(check int) "links + 1 NI" (links + 1) (Area.switch_arity m s0)

let test_power_positive_and_scales () =
  let m, _ = small_design () in
  let base = Power.noc_power m in
  let slow = Power.noc_power ~freq:250.0 m in
  Alcotest.(check bool) "positive" true (base.Power.total_mw > 0.0);
  Alcotest.(check bool) "scaling down saves" true (slow.Power.total_mw < base.Power.total_mw);
  check_float "f^2 on switch term" (base.Power.switch_mw /. 4.0) slow.Power.switch_mw

let test_power_with_dvfs_average () =
  let m, _ = small_design () in
  let flat = Power.with_dvfs ~design:m ~epochs:[ (500.0, 1.0) ] in
  let scaled = Power.with_dvfs ~design:m ~epochs:[ (250.0, 1.0); (500.0, 1.0) ] in
  Alcotest.(check bool) "dvfs average lower" true (scaled < flat)

let test_min_freq_grid_default () =
  Alcotest.(check int) "80 levels" 80 (List.length Min_freq.default_grid);
  Alcotest.(check (float 1e-9)) "first level" 25.0 (List.hd Min_freq.default_grid)

let test_min_freq_on_design_feasible_and_minimal () =
  let m, ucs = small_design () in
  match Min_freq.for_use_case_on_design ~design:m (List.hd ucs) with
  | None -> Alcotest.fail "expected a feasible frequency"
  | Some f ->
    Alcotest.(check bool) "below design point" true (f <= 500.0);
    let lower = List.filter (fun g -> g < f) Min_freq.default_grid in
    (match List.rev lower with
    | prev :: _ ->
      let found = Min_freq.for_use_case_on_design ~grid:[ prev ] ~design:m (List.hd ucs) in
      Alcotest.(check bool) "previous level infeasible" true (found = None)
    | [] -> ())

let test_min_freq_monotone_in_load () =
  let light = [ uc ~id:0 ~cores:4 [ Flow.v ~src:0 ~dst:1 100.0 ] ] in
  let heavy = [ uc ~id:0 ~cores:4 [ Flow.v ~src:0 ~dst:1 800.0 ] ] in
  let config = { Config.default with nis_per_switch = 1 } in
  let mesh = Mesh.create ~width:2 ~height:2 in
  let f ucs = Min_freq.for_use_cases_on_mesh ~config ~mesh ~groups:[ [ 0 ] ] ucs in
  match (f light, f heavy) with
  | Some a, Some b -> Alcotest.(check bool) "heavier needs more" true (b >= a)
  | _ -> Alcotest.fail "both should be feasible"

let test_min_freq_infeasible () =
  let ucs = [ uc ~id:0 ~cores:2 [ Flow.v ~src:0 ~dst:1 9000.0 ] ] in
  let config = { Config.default with nis_per_switch = 1 } in
  let mesh = Mesh.create ~width:2 ~height:1 in
  Alcotest.(check bool) "none" true
    (Min_freq.for_use_cases_on_mesh ~config ~mesh ~groups:[ [ 0 ] ] ucs = None)

let test_pareto_sweep_shape () =
  let ucs =
    [ uc ~id:0 ~cores:6
        [ Flow.v ~src:0 ~dst:1 700.0; Flow.v ~src:2 ~dst:3 500.0; Flow.v ~src:4 ~dst:5 300.0 ] ]
  in
  let config = { Config.default with nis_per_switch = 1 } in
  let points =
    Pareto.sweep ~frequencies:[ 200.0; 500.0; 1000.0; 2000.0 ] ~config ~groups:[ [ 0 ] ] ucs
  in
  Alcotest.(check int) "four points" 4 (List.length points);
  let switches = List.filter_map (fun p -> p.Pareto.switches) points in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "switch count non-increasing in f" true (non_increasing switches)

let test_pareto_front_filters_dominated () =
  let mk f s a = { Pareto.freq_mhz = f; switches = Some s; area_mm2 = Some a } in
  let points = [ mk 100.0 10 5.0; mk 200.0 4 2.0; mk 300.0 4 2.5 ] in
  let front = Pareto.pareto_front points in
  Alcotest.(check (list (float 1e-9))) "front freqs" [ 100.0; 200.0 ]
    (List.map (fun p -> p.Pareto.freq_mhz) front)

let test_pareto_front_drops_infeasible () =
  let points = [ { Pareto.freq_mhz = 100.0; switches = None; area_mm2 = None } ] in
  Alcotest.(check int) "empty front" 0 (List.length (Pareto.pareto_front points))

(* --- design space --------------------------------------------------------- *)

module Design_space = Noc_power.Design_space

let test_design_space_covers_axes () =
  let ucs = [ uc ~id:0 ~cores:4 [ Flow.v ~src:0 ~dst:1 100.0 ] ] in
  let axes =
    {
      Design_space.frequencies = [ 250.0; 500.0 ];
      slot_counts = [ 16; 32 ];
      topologies = [ Mesh.Mesh; Mesh.Torus ];
    }
  in
  let points = Design_space.explore ~axes ~config:Config.default ~groups:[ [ 0 ] ] ucs in
  Alcotest.(check int) "2x2x2 points" 8 (List.length points);
  List.iter
    (fun p -> Alcotest.(check bool) "feasible tiny design" true (p.Design_space.switches <> None))
    points

let test_design_space_pareto_nonempty_and_minimal () =
  let ucs = [ uc ~id:0 ~cores:4 [ Flow.v ~src:0 ~dst:1 100.0 ] ] in
  let points = Design_space.explore ~config:Config.default ~groups:[ [ 0 ] ] ucs in
  let front = Design_space.pareto points in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p != q then
            match (p.Design_space.area_mm2, p.Design_space.power_mw,
                   q.Design_space.area_mm2, q.Design_space.power_mw) with
            | Some pa, Some pp, Some qa, Some qp ->
              Alcotest.(check bool) "mutually non-dominated" false
                (pa <= qa && pp <= qp && (pa < qa || pp < qp))
            | _ -> ())
        front)
    front

let test_design_space_infeasible_points_kept () =
  let ucs = [ uc ~id:0 ~cores:2 [ Flow.v ~src:0 ~dst:1 9000.0 ] ] in
  let config = { Config.default with nis_per_switch = 1; max_mesh_dim = 2 } in
  let axes =
    { Design_space.frequencies = [ 500.0 ]; slot_counts = [ 32 ]; topologies = [ Mesh.Mesh ] }
  in
  let points = Design_space.explore ~axes ~config ~groups:[ [ 0 ] ] ucs in
  Alcotest.(check int) "one point" 1 (List.length points);
  Alcotest.(check bool) "infeasible" true ((List.hd points).Design_space.switches = None);
  Alcotest.(check int) "empty front" 0 (List.length (Design_space.pareto points))

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_dvfs_savings_in_range ]

let () =
  Alcotest.run "noc_power"
    [
      ( "dvfs",
        [
          Alcotest.test_case "voltage ratio" `Quick test_dvfs_voltage_ratio;
          Alcotest.test_case "power ratio" `Quick test_dvfs_power_ratio;
          Alcotest.test_case "savings hand computed" `Quick test_dvfs_savings_hand_computed;
          Alcotest.test_case "savings weighted" `Quick test_dvfs_savings_weighted;
          Alcotest.test_case "flat epochs" `Quick test_dvfs_savings_zero_when_flat;
          Alcotest.test_case "rejections" `Quick test_dvfs_savings_rejections;
          Alcotest.test_case "percent form" `Quick test_dvfs_savings_percent;
        ] );
      ( "area",
        [
          Alcotest.test_case "grows with arity" `Quick test_area_grows_with_arity;
          Alcotest.test_case "grows with frequency" `Quick test_area_grows_with_frequency;
          Alcotest.test_case "calibration ballpark" `Quick test_area_calibration_ballpark;
          Alcotest.test_case "rejects bad inputs" `Quick test_area_rejects_bad_inputs;
          Alcotest.test_case "design area positive" `Quick test_area_of_design_positive;
          Alcotest.test_case "arity counts NIs" `Quick test_switch_arity_counts_nis;
        ] );
      ( "power",
        [
          Alcotest.test_case "positive and scales" `Quick test_power_positive_and_scales;
          Alcotest.test_case "dvfs average" `Quick test_power_with_dvfs_average;
        ] );
      ( "min_freq",
        [
          Alcotest.test_case "default grid" `Quick test_min_freq_grid_default;
          Alcotest.test_case "feasible and minimal" `Quick test_min_freq_on_design_feasible_and_minimal;
          Alcotest.test_case "monotone in load" `Quick test_min_freq_monotone_in_load;
          Alcotest.test_case "infeasible" `Quick test_min_freq_infeasible;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "sweep shape" `Quick test_pareto_sweep_shape;
          Alcotest.test_case "front filters dominated" `Quick test_pareto_front_filters_dominated;
          Alcotest.test_case "front drops infeasible" `Quick test_pareto_front_drops_infeasible;
        ] );
      ( "design_space",
        [
          Alcotest.test_case "covers axes" `Quick test_design_space_covers_axes;
          Alcotest.test_case "pareto minimal" `Quick test_design_space_pareto_nonempty_and_minimal;
          Alcotest.test_case "infeasible kept" `Quick test_design_space_infeasible_points_kept;
        ] );
      ("properties", qcheck_cases);
    ]
