(** JSON export of a completed design.

    The dump is self-contained: configuration, topology, placement,
    per-use-case connections with their paths and slot reservations,
    groups, and the verification verdict — everything a downstream
    flow (floorplanning, documentation, visualisation) needs. *)

val mapping : Noc_core.Mapping.t -> Json.t
(** The mapping as a JSON value. *)

val design : Noc_core.Design_flow.t -> Json.t
(** The whole design-flow result (spec summary, compounds, groups,
    mapping, verification). *)

val design_to_string : ?indent:int -> Noc_core.Design_flow.t -> string
(** [to_string (design d)], default pretty-printed with indent 2. *)
