(* Per-slot activation index over one configuration's routes.

   The slot-accurate simulator used to rediscover, every slot, which
   GT connections may launch (a scan over every route's [starts]
   array) and which links the GT schedule leaves free (a full
   iteration over the per-link BE table).  Both questions are static
   properties of the routes: this module answers them once, up front,
   as arrays indexed by slot-table position.

   Indexes refer to positions in the route list given to [build], so
   callers keeping per-route state in a parallel array can translate
   in O(1).  The (link, slot) ownership map doubles as the static
   collision check: the GT discipline is contention-free, so two
   routes claiming the same (link, slot) is a mapper bug, counted and
   reported rather than silently resolved. *)

module R = Route

type t = {
  slots : int;
  collisions : int;
  owner : (int * int, int) Hashtbl.t; (* (link, slot) -> flow id of first claimant *)
  gt_at : int array array;    (* slot -> route positions with a reserved start there *)
  be_links : int array;       (* distinct links under BE routes, first-traversal order *)
  be_free_at : int array array; (* slot -> positions in [be_links] not GT-owned *)
}

let build ~slots routes =
  if slots <= 0 then invalid_arg "Activation.build: need positive slot count";
  (* GT ownership and collisions: first claimant keeps the slot, every
     further claim by a *different* flow counts as a collision. *)
  let owner = Hashtbl.create 256 in
  let collisions = ref 0 in
  List.iter
    (fun r ->
      if r.R.service = R.Gt then
        List.iter
          (fun start ->
            List.iteri
              (fun hop link ->
                let key = (link, (start + hop) mod slots) in
                match Hashtbl.find_opt owner key with
                | Some other when other <> r.R.flow_id -> incr collisions
                | Some _ -> ()
                | None -> Hashtbl.add owner key r.R.flow_id)
              r.R.links)
          r.R.slot_starts)
    routes;
  (* GT launch index: positions of GT routes with a reserved start in
     each slot, in route order.  A GT route with no links launches from
     the local port every slot. *)
  let gt_rev = Array.make slots [] in
  List.iteri
    (fun pos r ->
      if r.R.service = R.Gt then
        if r.R.links = [] then
          for s = 0 to slots - 1 do
            gt_rev.(s) <- pos :: gt_rev.(s)
          done
        else begin
          let seen = Array.make slots false in
          List.iter
            (fun start ->
              let s = ((start mod slots) + slots) mod slots in
              if not seen.(s) then begin
                seen.(s) <- true;
                gt_rev.(s) <- pos :: gt_rev.(s)
              end)
            r.R.slot_starts
        end)
    routes;
  let gt_at = Array.map (fun l -> Array.of_list (List.rev l)) gt_rev in
  (* BE link universe in first-traversal order (route order, then hop
     order), and for each slot the links the GT schedule leaves free. *)
  let seen_links = Hashtbl.create 64 in
  let links_rev = ref [] in
  List.iter
    (fun r ->
      if r.R.service = R.Be then
        List.iter
          (fun link ->
            if not (Hashtbl.mem seen_links link) then begin
              Hashtbl.add seen_links link ();
              links_rev := link :: !links_rev
            end)
          r.R.links)
    routes;
  let be_links = Array.of_list (List.rev !links_rev) in
  let be_free_at =
    Array.init slots (fun s ->
        let free = ref [] in
        for i = Array.length be_links - 1 downto 0 do
          if not (Hashtbl.mem owner (be_links.(i), s)) then free := i :: !free
        done;
        Array.of_list !free)
  in
  { slots; collisions = !collisions; owner; gt_at; be_links; be_free_at }

let slots t = t.slots
let collisions t = t.collisions
let gt_owned t ~link ~slot = Hashtbl.mem t.owner (link, slot)
let gt_starts_at t ~slot = t.gt_at.(slot)
let be_links t = t.be_links
let be_free_at t ~slot = t.be_free_at.(slot)

let gt_start_mask t ~pos =
  let mask = ref [] in
  for s = t.slots - 1 downto 0 do
    if Array.exists (( = ) pos) t.gt_at.(s) then mask := s :: !mask
  done;
  !mask

let link_free_mask t ~link =
  let mask = ref [] in
  for s = t.slots - 1 downto 0 do
    if not (Hashtbl.mem t.owner (link, s)) then mask := s :: !mask
  done;
  !mask
