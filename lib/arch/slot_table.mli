(** TDMA slot table of one directed link.

    Æthereal-style guaranteed-throughput NoCs divide link time into a
    fixed revolution of slots; a GT connection owns a subset of slots
    on every link of its path.  Owners are integer connection ids so
    the mapping engine can release a connection when backtracking. *)

type t

val create : slots:int -> t
(** All slots free.  @raise Invalid_argument unless [slots > 0]. *)

val slots : t -> int

val copy : t -> t

val is_free : t -> int -> bool
(** Slot indices are taken modulo the table size, so callers can pass
    [start + hop] directly. *)

val owner : t -> int -> int option

val reserve : t -> slot:int -> owner:int -> unit
(** @raise Invalid_argument if the slot is already owned. *)

val release : t -> slot:int -> unit
(** Releasing a free slot is a no-op. *)

val release_owner : t -> owner:int -> int
(** Free every slot held by [owner]; returns how many were freed. *)

val free_count : t -> int
(** O(1): the count is maintained incrementally, not recomputed. *)

val used_count : t -> int
(** O(1). *)

val free_mask : t -> Bitmask.t
(** The live free-slot mask (bit set = slot free), maintained
    incrementally by [reserve]/[release]/[release_owner].  This is a
    view, not a copy: callers must treat it as read-only and must not
    hold it across mutations they want to ignore. *)

val free_slots : t -> int list
(** Free slot indices, increasing. *)

val utilization : t -> float
(** Fraction of slots reserved, in [0, 1]. *)

val pp : Format.formatter -> t -> unit
(** Compact picture, e.g. [..3.3..1] (owner ids mod 10, [.] = free). *)
