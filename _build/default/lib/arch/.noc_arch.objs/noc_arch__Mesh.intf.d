lib/arch/mesh.mli: Format Noc_graph
