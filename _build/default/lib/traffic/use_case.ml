type t = {
  id : int;
  name : string;
  cores : int;
  flows : Flow.t list;
}

(* Merge duplicate ordered pairs: bandwidths add, latency constraints
   tighten to the minimum (same rule as compound-mode generation). *)
let merge_duplicates flows =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun f ->
      (* GT and BE flows between the same pair stay distinct: they are
         different hardware connections. *)
      let key = (Flow.pair f, f.Flow.service) in
      match Hashtbl.find_opt tbl key with
      | None ->
        Hashtbl.add tbl key f;
        order := key :: !order
      | Some g ->
        Hashtbl.replace tbl key
          (Flow.v ~src:f.Flow.src ~dst:f.Flow.dst ~service:f.Flow.service
             ~latency_ns:(Float.min f.Flow.latency_ns g.Flow.latency_ns)
             (f.Flow.bandwidth +. g.Flow.bandwidth)))
    flows;
  List.rev_map (Hashtbl.find tbl) !order

let create ~id ~name ~cores flows =
  List.iter
    (fun f ->
      match Flow.validate ~cores f with
      | Ok () -> ()
      | Error msg -> invalid_arg (Printf.sprintf "Use_case.create (%s): %s" name msg))
    flows;
  { id; name; cores; flows = merge_duplicates flows }

let rename t ~id ~name = { t with id; name }

let flow_count t = List.length t.flows

let total_bandwidth t = List.fold_left (fun acc f -> acc +. f.Flow.bandwidth) 0.0 t.flows

let max_bandwidth t = List.fold_left (fun acc f -> Float.max acc f.Flow.bandwidth) 0.0 t.flows

let find_flow t ~src ~dst =
  let matching = List.filter (fun f -> f.Flow.src = src && f.Flow.dst = dst) t.flows in
  match List.filter Flow.is_guaranteed matching with
  | gt :: _ -> Some gt
  | [] -> ( match matching with f :: _ -> Some f | [] -> None)

let guaranteed_flows t = List.filter Flow.is_guaranteed t.flows

let best_effort_flows t = List.filter (fun f -> not (Flow.is_guaranteed f)) t.flows

let sorted_flows_desc t = List.sort Flow.compare_bandwidth_desc t.flows

let core_degree t =
  let deg = Array.make t.cores 0 in
  List.iter
    (fun f ->
      deg.(f.Flow.src) <- deg.(f.Flow.src) + 1;
      deg.(f.Flow.dst) <- deg.(f.Flow.dst) + 1)
    t.flows;
  deg

let communicating_cores t =
  let deg = core_degree t in
  let acc = ref [] in
  for c = t.cores - 1 downto 0 do
    if deg.(c) > 0 then acc := c :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "@[<v>use-case %d (%s): %d cores, %d flows, %a total@]" t.id t.name
    t.cores (flow_count t) Noc_util.Units.pp_bandwidth (total_bandwidth t)
