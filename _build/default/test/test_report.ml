(* Tests for Noc_report: the analytic design report. *)

module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module DF = Noc_core.Design_flow
module R = Noc_report.Design_report
module SD = Noc_benchkit.Soc_designs

let design () =
  let config = { Config.default with nis_per_switch = 1 } in
  match
    DF.run ~config
      {
        DF.name = "report-sample";
        use_cases =
          [
            U.create ~id:0 ~name:"heavy" ~cores:4
              [
                Flow.v ~src:0 ~dst:1 400.0;
                Flow.v ~src:2 ~dst:3 ~latency_ns:400.0 30.0;
                Flow.v ~src:1 ~dst:2 ~service:Flow.Best_effort 50.0;
              ];
            U.create ~id:1 ~name:"light" ~cores:4 [ Flow.v ~src:3 ~dst:0 20.0 ];
          ];
        parallel = [];
        smooth = [];
      }
  with
  | Ok d -> d
  | Error e -> Alcotest.fail e

let test_report_covers_every_flow () =
  let d = design () in
  let r = R.build d in
  let expected =
    List.fold_left (fun acc u -> acc + U.flow_count u) 0 d.DF.all_use_cases
  in
  Alcotest.(check int) "one line per flow" expected (List.length r.R.flow_lines);
  Alcotest.(check int) "one line per use-case" (List.length d.DF.all_use_cases)
    (List.length r.R.use_case_lines);
  Alcotest.(check bool) "verified" true r.R.verified

let test_report_gt_granted_covers_requirement () =
  let d = design () in
  let r = R.build d in
  List.iter
    (fun (l : R.flow_line) ->
      if l.R.service = Route.Gt then
        Alcotest.(check bool)
          (Printf.sprintf "uc %d %d->%d granted >= required" l.R.use_case l.R.src l.R.dst)
          true
          (l.R.granted_mbps +. 1e-9 >= l.R.bandwidth_mbps))
    r.R.flow_lines

let test_report_slack_nonnegative_on_verified_design () =
  let d = design () in
  let r = R.build d in
  List.iter
    (fun (l : R.flow_line) ->
      match l.R.latency_slack_ns with
      | Some s -> Alcotest.(check bool) "slack >= 0" true (s >= -1e-9)
      | None -> ())
    r.R.flow_lines;
  match R.min_slack_ns r with
  | Some s -> Alcotest.(check bool) "min slack >= 0" true (s >= -1e-9)
  | None -> Alcotest.fail "a latency-constrained flow exists"

let test_report_be_lines_have_no_grant () =
  let d = design () in
  let r = R.build d in
  let be = List.filter (fun l -> l.R.service = Route.Be) r.R.flow_lines in
  Alcotest.(check int) "one BE line" 1 (List.length be);
  List.iter
    (fun (l : R.flow_line) ->
      Alcotest.(check (float 1e-9)) "no grant" 0.0 l.R.granted_mbps;
      Alcotest.(check bool) "no bound" true (l.R.latency_bound_ns = infinity))
    be

let test_report_buffers_positive () =
  let d = design () in
  let r = R.build d in
  Alcotest.(check bool) "total positive" true (r.R.buffer_words_total > 0);
  Alcotest.(check int) "per-core array sized" 4 (Array.length r.R.buffer_words_per_core)

let test_report_dvfs_section () =
  let d = design () in
  let with_dvfs = R.build d in
  (match with_dvfs.R.dvfs with
  | Some s ->
    Alcotest.(check bool) "design point positive" true (s.R.f_design_mhz > 0.0);
    Alcotest.(check int) "one epoch per use-case" (List.length d.DF.all_use_cases)
      (List.length s.R.epochs);
    Alcotest.(check bool) "saving within [0,100)" true
      (s.R.savings_pct >= 0.0 && s.R.savings_pct < 100.0);
    List.iter
      (fun (_, f) ->
        Alcotest.(check bool) "epoch below design point" true (f <= s.R.f_design_mhz +. 1e-9))
      s.R.epochs
  | None -> Alcotest.fail "dvfs expected by default");
  let without = R.build ~dvfs:false d in
  Alcotest.(check bool) "dvfs off" true (without.R.dvfs = None)

let test_report_mobile_phone () =
  match DF.run (DF.spec_of_use_cases ~name:"mobile" (SD.mobile_phone ())) with
  | Error e -> Alcotest.fail e
  | Ok d ->
    let r = R.build d in
    Alcotest.(check bool) "verified" true r.R.verified;
    Alcotest.(check bool) "has worst switching" true (r.R.worst_switching <> None);
    (* printing must not raise *)
    R.print r

let () =
  Alcotest.run "noc_report"
    [
      ( "design_report",
        [
          Alcotest.test_case "covers every flow" `Quick test_report_covers_every_flow;
          Alcotest.test_case "granted covers requirement" `Quick test_report_gt_granted_covers_requirement;
          Alcotest.test_case "slack non-negative" `Quick test_report_slack_nonnegative_on_verified_design;
          Alcotest.test_case "BE lines" `Quick test_report_be_lines_have_no_grant;
          Alcotest.test_case "buffers positive" `Quick test_report_buffers_positive;
          Alcotest.test_case "dvfs section" `Quick test_report_dvfs_section;
          Alcotest.test_case "mobile phone report" `Quick test_report_mobile_phone;
        ] );
    ]
