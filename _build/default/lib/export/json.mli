(** Minimal JSON construction and syntax checking.

    A small value type with a serializer (correct string escaping,
    locale-independent float printing) plus a strict syntax validator
    used by the tests and available to consumers of exported files.
    No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent > 0] pretty-prints with that step. *)

val escape : string -> string
(** JSON string escaping (quotes not included). *)

val validate : string -> (unit, string) result
(** Strict RFC-8259-style syntax check of a complete JSON document. *)
