lib/arch/turn_model.mli: Mesh Route
