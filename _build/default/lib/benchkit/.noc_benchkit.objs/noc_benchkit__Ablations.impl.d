lib/benchkit/ablations.ml: List Noc_arch Noc_core Noc_util Option Printf Soc_designs Synthetic
