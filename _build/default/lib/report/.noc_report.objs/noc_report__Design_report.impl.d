lib/report/design_report.ml: Array Float Format List Noc_arch Noc_core Noc_power Noc_traffic Noc_util Option Printf String
