lib/arch/noc_config.mli: Format Mesh Noc_util
