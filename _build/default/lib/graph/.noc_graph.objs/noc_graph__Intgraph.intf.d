lib/graph/intgraph.mli:
