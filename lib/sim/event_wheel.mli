(** Slot-granular event calendar: which simulated slot can hold work next?

    Backs the event-driven simulator core.  Demands are registered in
    three tiers — an *always* refcount for every-slot demands, a
    refcounted *timing wheel* over the TDMA period for demands pinned
    to slot-table positions (reserved GT starts, GT-free link slots),
    and a min-heap of one-shot absolute slots for aperiodic events
    (replay packet injections, on/off phase edges).  {!next_active}
    returns the earliest slot any tier covers, letting the core jump
    over idle ranges in O(1) per jump.

    The calendar may over-approximate (report a slot that holds no
    work — executing it is a no-op); it must never under-approximate. *)

type t

val create : period:int -> t
(** A calendar whose wheel revolves every [period] slots (the TDMA
    slot-table size).  @raise Invalid_argument unless [period > 0]. *)

val arm : t -> int list -> unit
(** Increment the arming refcount of each phase slot (each in
    [0, period)).  Recurring: the phases stay active every revolution
    until {!disarm}ed.  @raise Invalid_argument on a bad phase. *)

val disarm : t -> int list -> unit
(** Undo one {!arm} of the same phases.
    @raise Invalid_argument if a phase was not armed. *)

val arm_always : t -> unit
(** Register an every-slot demand (refcounted). *)

val disarm_always : t -> unit
(** @raise Invalid_argument when no every-slot demand is registered. *)

val schedule : t -> int -> unit
(** Register a one-shot demand at an absolute slot.  Duplicates are
    fine; stale entries are dropped lazily.
    @raise Invalid_argument on a negative slot. *)

val drop_until : t -> int -> unit
(** Discard one-shot entries at slots [<= slot] — call after executing
    a slot so consumed events do not re-trigger it. *)

val next_active : t -> from:int -> int option
(** Earliest slot [>= from] covered by any tier, or [None] when the
    calendar is completely idle.  [Some s] may exceed the caller's
    horizon; the caller stops there.
    @raise Invalid_argument on a negative [from]. *)
