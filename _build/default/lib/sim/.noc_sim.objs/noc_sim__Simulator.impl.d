lib/sim/simulator.ml: Array Float Format Hashtbl List Noc_arch Option Printf Queue Trace
