lib/arch/tdma.ml: Array List Noc_config Slot_table
