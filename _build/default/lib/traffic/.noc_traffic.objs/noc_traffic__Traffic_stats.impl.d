lib/traffic/traffic_stats.ml: Float Flow Format List Noc_util Use_case
