let ident s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
      | '_' | '-' | ' ' | '.' ->
        if Buffer.length buf > 0 && Buffer.nth buf (Buffer.length buf - 1) <> '_' then
          Buffer.add_char buf '_'
      | _ -> ())
    s;
  let s = Buffer.contents buf in
  let s = if s = "" then "u" else s in
  let s =
    match s.[0] with 'a' .. 'z' | 'A' .. 'Z' -> s | '0' .. '9' | _ -> "u_" ^ s
  in
  if s.[String.length s - 1] = '_' then String.sub s 0 (String.length s - 1) else s

let std_logic_vector width = Printf.sprintf "std_logic_vector(%d downto 0)" (width - 1)

type port = {
  name : string;
  dir : [ `In | `Out ];
  ty : string;
}

let dir_str = function `In -> "in" | `Out -> "out"

let generics_block generics =
  if generics = [] then ""
  else
    let lines =
      List.map (fun (n, ty, dflt) -> Printf.sprintf "    %s : %s := %s" n ty dflt) generics
    in
    Printf.sprintf "  generic (\n%s\n  );\n" (String.concat ";\n" lines)

let ports_block ports =
  if ports = [] then ""
  else
    let lines =
      List.map (fun p -> Printf.sprintf "    %s : %s %s" p.name (dir_str p.dir) p.ty) ports
    in
    Printf.sprintf "  port (\n%s\n  );\n" (String.concat ";\n" lines)

let entity ~name ~generics ~ports =
  Printf.sprintf "entity %s is\n%s%send %s;\n" name (generics_block generics)
    (ports_block ports) name

let component_decl ~name ~generics ~ports =
  Printf.sprintf "  component %s\n  %s  %send component;\n" name
    (String.concat "" (List.map (fun l -> l) [ generics_block generics ]))
    (ports_block ports)

let map_block keyword assoc =
  if assoc = [] then ""
  else
    let lines = List.map (fun (formal, actual) -> Printf.sprintf "      %s => %s" formal actual) assoc in
    Printf.sprintf "    %s (\n%s\n    )\n" keyword (String.concat ",\n" lines)

let instance ~label ~component ~generic_map ~port_map =
  let g = map_block "generic map" generic_map in
  let p = map_block "port map" port_map in
  Printf.sprintf "  %s : %s\n%s%s  ;\n" label component g p

let signal ~name ~ty = Printf.sprintf "  signal %s : %s;\n" name ty

let comment s = "-- " ^ s ^ "\n"

let header banner =
  String.concat ""
    [
      comment banner;
      "library ieee;\n";
      "use ieee.std_logic_1164.all;\n";
      "use ieee.numeric_std.all;\n";
      "\n";
    ]
