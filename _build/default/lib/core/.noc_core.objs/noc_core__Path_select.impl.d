lib/core/path_select.ml: Float List Noc_arch Noc_graph Noc_traffic Printf Resources Result
