examples/spec_and_report.mli:
