lib/traffic/use_case.mli: Flow Format Noc_util
