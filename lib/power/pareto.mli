(** Area-frequency trade-off exploration (paper §6.3, Fig 7a).

    For each candidate operating frequency the design flow is re-run;
    higher frequencies give each link more bandwidth, so fewer switches
    satisfy the constraints, but timing-driven sizing makes each switch
    bigger.  The resulting (frequency, area) curve is the designer's
    Pareto front. *)

type point = {
  freq_mhz : Noc_util.Units.frequency;
  switches : int option;   (** [None] when no mesh up to the cap maps *)
  area_mm2 : Noc_util.Units.area option;
}

val default_frequencies : Noc_util.Units.frequency list
(** The Fig 7a sweep: 100 MHz to 2 GHz. *)

val sweep :
  ?frequencies:Noc_util.Units.frequency list ->
  ?jobs:int ->
  ?warm:bool ->
  config:Noc_arch.Noc_config.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  point list
(** Run the design flow at every frequency (other configuration knobs
    taken from [config]) and record NoC size and total switch area.
    The sweep is a one-row slice of {!Design_space.explore}, so it runs
    on the shared domain pool ([jobs]) with placement-seeded warm
    starts ([warm], default [true]; [false] forces every point through
    the full growth search). *)

val pareto_front : point list -> point list
(** The non-dominated subset: points where no other point has both a
    lower-or-equal frequency and a strictly smaller area (infeasible
    points are dropped). *)
