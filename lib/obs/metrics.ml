let stripes = 8
let max_samples = 65536

type counter = { c_name : string; cells : int Atomic.t array }
type gauge = { g_name : string; cell : float Atomic.t }

type histogram = {
  h_name : string;
  h_lock : Mutex.t;
  mutable samples : float array;
  mutable stored : int;
  mutable seen : int;
  mutable total : float;
  mutable lo : float;
  mutable hi : float;
}

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}

(* The registry itself is touched only at instrument-creation time
   (module init of the instrumented libraries) and when snapshotting,
   so one mutex is plenty. *)
let lock = Mutex.create ()
let all_counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let all_gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let all_histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt all_counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; cells = Array.init stripes (fun _ -> Atomic.make 0) } in
        Hashtbl.replace all_counters name c;
        c)

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt all_gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; cell = Atomic.make 0.0 } in
        Hashtbl.replace all_gauges name g;
        g)

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt all_histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            h_lock = Mutex.create ();
            samples = [||];
            stored = 0;
            seen = 0;
            total = 0.0;
            lo = infinity;
            hi = neg_infinity;
          }
        in
        Hashtbl.replace all_histograms name h;
        h)

let incr ?(by = 1) c =
  let i = (Domain.self () :> int) land (stripes - 1) in
  ignore (Atomic.fetch_and_add c.cells.(i) by)

let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells

let set g v = Atomic.set g.cell v
let gauge_value g = Atomic.get g.cell

let observe h x =
  Mutex.lock h.h_lock;
  h.seen <- h.seen + 1;
  h.total <- h.total +. x;
  if x < h.lo then h.lo <- x;
  if x > h.hi then h.hi <- x;
  if h.stored < max_samples then begin
    if h.stored >= Array.length h.samples then begin
      let grown = Array.make (max 64 (2 * Array.length h.samples)) 0.0 in
      Array.blit h.samples 0 grown 0 h.stored;
      h.samples <- grown
    end;
    h.samples.(h.stored) <- x;
    h.stored <- h.stored + 1
  end;
  Mutex.unlock h.h_lock

(* Nearest-rank percentile over the retained samples: for q in (0,1],
   the ceil(q*n)-th smallest sample.  observe [1..100] gives p50 = 50,
   p90 = 90, p99 = 99. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let histogram_stats h =
  Mutex.lock h.h_lock;
  let stats =
    if h.seen = 0 then
      { count = 0; sum = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }
    else begin
      let sorted = Array.sub h.samples 0 h.stored in
      Array.sort compare sorted;
      {
        count = h.seen;
        sum = h.total;
        min = h.lo;
        max = h.hi;
        p50 = percentile sorted 0.50;
        p90 = percentile sorted 0.90;
        p99 = percentile sorted 0.99;
      }
    end
  in
  Mutex.unlock h.h_lock;
  stats

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  let counters, gauges, histograms =
    locked (fun () ->
        ( Hashtbl.fold (fun _ c acc -> c :: acc) all_counters [],
          Hashtbl.fold (fun _ g acc -> g :: acc) all_gauges [],
          Hashtbl.fold (fun _ h acc -> h :: acc) all_histograms [] ))
  in
  {
    counters = List.sort by_name (List.map (fun c -> (c.c_name, counter_value c)) counters);
    gauges = List.sort by_name (List.map (fun g -> (g.g_name, gauge_value g)) gauges);
    histograms =
      List.sort by_name (List.map (fun h -> (h.h_name, histogram_stats h)) histograms);
  }

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Array.iter (fun a -> Atomic.set a 0) c.cells) all_counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.cell 0.0) all_gauges;
      Hashtbl.iter
        (fun _ h ->
          Mutex.lock h.h_lock;
          h.stored <- 0;
          h.seen <- 0;
          h.total <- 0.0;
          h.lo <- infinity;
          h.hi <- neg_infinity;
          Mutex.unlock h.h_lock)
        all_histograms)

let render_text snap =
  let buf = Buffer.create 1024 in
  let widest entries = List.fold_left (fun w (n, _) -> max w (String.length n)) 0 entries in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    let w = widest snap.counters in
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %d\n" w n v))
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    let w = widest snap.gauges in
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %g\n" w n v))
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    let w = widest snap.histograms in
    List.iter
      (fun (n, s) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-*s count=%d sum=%g min=%g p50=%g p90=%g p99=%g max=%g\n" w n
             s.count s.sum s.min s.p50 s.p90 s.p99 s.max))
      snap.histograms
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "no metrics recorded\n";
  Buffer.contents buf

let render_json snap =
  let buf = Buffer.create 1024 in
  let obj members body =
    Buffer.add_string buf "  ";
    Buffer.add_string buf (Obs_json.quote members);
    Buffer.add_string buf ": {";
    body ();
    Buffer.add_string buf "\n  }"
  in
  let fields render entries =
    List.iteri
      (fun i (n, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf "\n    ";
        Buffer.add_string buf (Obs_json.quote n);
        Buffer.add_string buf ": ";
        render v)
      entries
  in
  Buffer.add_string buf "{\n";
  obj "counters" (fun () ->
      fields (fun v -> Buffer.add_string buf (string_of_int v)) snap.counters);
  Buffer.add_string buf ",\n";
  obj "gauges" (fun () ->
      fields (fun v -> Buffer.add_string buf (Obs_json.float_repr v)) snap.gauges);
  Buffer.add_string buf ",\n";
  obj "histograms" (fun () ->
      fields
        (fun (s : histogram_stats) ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s}"
               s.count (Obs_json.float_repr s.sum) (Obs_json.float_repr s.min)
               (Obs_json.float_repr s.max) (Obs_json.float_repr s.p50)
               (Obs_json.float_repr s.p90) (Obs_json.float_repr s.p99)))
        snap.histograms);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
