lib/benchkit/experiments.mli: Noc_power
