lib/traffic/flow.ml: Format Noc_util Printf
