(* Determinism regression: the indexed/bitset mapping engine (worklist
   heaps, pending index, rotate-and-AND slot intersection) and the
   parallel mesh-size search must produce byte-identical designs to the
   straightforward Reference formulation — the reproduction tables in
   EXPERIMENTS.md depend on it. *)

module Mapping = Noc_core.Mapping
module Route = Noc_arch.Route
module Mesh = Noc_arch.Mesh
module SD = Noc_benchkit.Soc_designs
module Syn = Noc_benchkit.Synthetic

let fingerprint (m : Mapping.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "mesh %dx%d\n" (Mesh.width m.Mapping.mesh) (Mesh.height m.Mapping.mesh));
  Array.iteri (fun core s -> Buffer.add_string b (Printf.sprintf "core %d @ %d\n" core s))
    m.Mapping.placement;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "route %d uc%d %d->%d sw %d->%d %.6f %s links [%s] starts [%s]\n"
           r.Route.flow_id r.Route.use_case r.Route.src_core r.Route.dst_core r.Route.src_switch
           r.Route.dst_switch r.Route.bandwidth
           (match r.Route.service with Route.Gt -> "gt" | Route.Be -> "be")
           (String.concat "," (List.map string_of_int r.Route.links))
           (String.concat "," (List.map string_of_int r.Route.slot_starts))))
    m.Mapping.routes;
  Buffer.contents b

let design ~engine ~parallel ~groups ucs =
  match Mapping.map_design ~engine ~parallel ~groups ucs with
  | Ok m -> fingerprint m
  | Error f -> Format.asprintf "FAILED: %a" Mapping.pp_failure f

let check_workload name ~groups ucs () =
  let reference = design ~engine:Mapping.Reference ~parallel:false ~groups ucs in
  Alcotest.(check string)
    (name ^ ": indexed sequential = reference")
    reference
    (design ~engine:Mapping.Indexed ~parallel:false ~groups ucs);
  Alcotest.(check string)
    (name ^ ": indexed parallel = reference")
    reference
    (design ~engine:Mapping.Indexed ~parallel:true ~groups ucs);
  Alcotest.(check string)
    (name ^ ": reference parallel = reference")
    reference
    (design ~engine:Mapping.Reference ~parallel:true ~groups ucs)

let singleton_groups ucs = List.mapi (fun i _ -> [ i ]) ucs

let d1_case () =
  let ucs = SD.d1 () in
  check_workload "D1" ~groups:(singleton_groups ucs) ucs ()

let synthetic_case ~seed () =
  let ucs = Syn.generate ~seed ~params:Syn.spread_params ~use_cases:5 in
  check_workload (Printf.sprintf "Sp5 seed %d" seed) ~groups:(singleton_groups ucs) ucs ()

(* Shared groups exercise the group-shared reservation (active/passive
   members, mask intersection across several states). *)
let grouped_case () =
  let ucs = Syn.generate ~seed:300 ~params:Syn.bottleneck_params ~use_cases:5 in
  check_workload "Bot5 grouped" ~groups:[ [ 0; 1 ]; [ 2; 3; 4 ] ] ucs ()

let () =
  Alcotest.run "determinism"
    [
      ( "indexed engine vs reference",
        [
          Alcotest.test_case "D1" `Quick d1_case;
          Alcotest.test_case "Sp5 seed 200" `Quick (synthetic_case ~seed:200);
          Alcotest.test_case "Sp5 seed 4242" `Quick (synthetic_case ~seed:4242);
          Alcotest.test_case "Bot5 shared groups" `Quick grouped_case;
        ] );
    ]
