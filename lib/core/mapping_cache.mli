(** Process-wide content-addressed cache of mapping results.

    A single {!Noc_util.Result_cache} instance, versioned by the
    executable's build fingerprint ({!Noc_util.Build_info}), memoizes
    the expensive unit of the whole tool — one mapping attempt of one
    problem on one mesh — across the design flow, the design-space
    sweep, the minimum-frequency search and separate CLI runs (when a
    cache directory is attached).

    The key is a canonical digest of the exact problem: every
    {!Noc_arch.Noc_config} knob, the engine, the smooth-switching
    groups and each use-case's flows (src, dst, hex-exact bandwidth and
    latency, service class) in order.  Use-case and flow {e names} are
    excluded — renaming traffic does not change the mapping problem.
    Successes are stored through {!Mapping_codec} (byte-exact
    round-trip); failures are stored as their message, per mesh size,
    so a size that cannot map is never re-attempted; feasibility
    refutations (PR 4's certificates) are stored separately so even a
    [--no-prune] run skips sizes a pruned run already proved
    infeasible.

    Policy: the in-memory tier is on by default ([--no-cache] turns it
    off); the disk tier only exists once {!set_dir} is called
    ([--cache-dir]).  Mappings on meshes with express channels are not
    representable by the codec and silently bypass the cache. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Turn the cache off ([false]) or back on for the whole process.
    When off, every wrapper below calls straight through and
    {!design_cache} returns [None]. *)

val set_dir : string option -> unit
(** Attach ([Some dir]) or detach the persistent tier.  Attaching
    registers an [at_exit] hook that folds this process's counters into
    the store's [STATS] file. *)

val dir : unit -> string option

val stats : unit -> Noc_util.Result_cache.stats
(** Counters accumulated by this process. *)

val flush : unit -> unit
(** Fold this process's counters into the persistent tier's [STATS]
    file {e now} (no-op without {!set_dir}).  The same fold runs
    [at_exit]; the serve daemon calls this during graceful shutdown so
    the disk tier is consistent before the socket closes. *)

val clear : unit -> unit
(** Drop the memory tier and this build's disk entries. *)

val problem_digest :
  config:Noc_arch.Noc_config.t ->
  engine:Mapping.engine ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  string
(** The canonical problem digest (hex); exposed for tests. *)

val design_cache :
  ?config:Noc_arch.Noc_config.t ->
  ?engine:Mapping.engine ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  Mapping.attempt_cache option
(** Hooks for {!Mapping.map_design}'s growth loop over this problem,
    or [None] when the cache is disabled.  Defaults mirror
    [map_design]'s ({!Noc_arch.Noc_config.default}, [Indexed]). *)

val attempt :
  ?engine:Mapping.engine ->
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  (Mapping.t, string) result
(** Cached {!Mapping.map_attempt}.  Shares entries with
    {!design_cache}'s growth loop when [mesh] is a plain grid of the
    configured topology — the design-space sweep's warm-started size
    retries hit what the first growth search stored. *)

val on_mesh :
  ?bias:Mapping.placement_bias ->
  ?engine:Mapping.engine ->
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  (Mapping.t, string) result
(** Cached {!Mapping.map_on_mesh} (keyed by bias as well). *)

val with_placement :
  ?engine:Mapping.engine ->
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  groups:int list list ->
  placement:int array ->
  Noc_traffic.Use_case.t list ->
  (Mapping.t, string) result
(** Cached {!Mapping.map_with_placement} (keyed by the placement). *)
