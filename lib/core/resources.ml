module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Slot_table = Noc_arch.Slot_table

type t = {
  use_case : int;
  config : Config.t;
  mesh : Mesh.t;
  tables : Slot_table.t array;           (* per link id *)
  mutable ni_budget : float array;       (* per core, remaining NI bandwidth *)
}

let create ~config ~mesh ~use_case =
  let links = Mesh.link_count mesh in
  {
    use_case;
    config;
    mesh;
    tables = Array.init links (fun _ -> Slot_table.create ~slots:config.Config.slots);
    (* The core count is unknown here, so the NI budget array starts
       empty and [ni_reserve] grows it on demand. *)
    ni_budget = [||];
  }

let copy t =
  { t with tables = Array.map Slot_table.copy t.tables; ni_budget = Array.copy t.ni_budget }

let use_case t = t.use_case
let mesh t = t.mesh
let config t = t.config

let table t l = t.tables.(l)

let path_tables t links = Array.of_list (List.map (table t) links)

let free_slots t l = Slot_table.free_count t.tables.(l)

let residual_bandwidth t l =
  float_of_int (free_slots t l) *. Config.slot_bandwidth t.config

let reserved_bandwidth t l =
  float_of_int (Slot_table.used_count t.tables.(l)) *. Config.slot_bandwidth t.config

let link_usable t ~link ~needed_slots = free_slots t link >= needed_slots

let utilization t l = Slot_table.utilization t.tables.(l)

let mean_utilization t =
  let n = Array.length t.tables in
  if n = 0 then 0.0
  else Array.fold_left (fun acc tab -> acc +. Slot_table.utilization tab) 0.0 t.tables /. float_of_int n

let max_utilization t =
  Array.fold_left (fun acc tab -> Float.max acc (Slot_table.utilization tab)) 0.0 t.tables

let ni_available t ~core =
  if not t.config.Config.constrain_ni_links then infinity
  else if Array.length t.ni_budget > core then t.ni_budget.(core)
  else Config.link_capacity t.config

let ni_reserve t ~core ~bw =
  if not t.config.Config.constrain_ni_links then Ok ()
  else begin
    if Array.length t.ni_budget <= core then begin
      (* Grow on demand; fresh entries start with a full link budget. *)
      let fresh = Array.make (core + 1) (Config.link_capacity t.config) in
      Array.blit t.ni_budget 0 fresh 0 (Array.length t.ni_budget);
      t.ni_budget <- fresh
    end;
    let budget = t.ni_budget in
    if budget.(core) >= bw then begin
      budget.(core) <- budget.(core) -. bw;
      Ok ()
    end
    else
      Error
        (Printf.sprintf "NI link of core %d exhausted (%.1f MB/s left, %.1f needed)" core
           budget.(core) bw)
  end

let reservations t =
  let acc = ref [] in
  for l = Array.length t.tables - 1 downto 0 do
    let tab = t.tables.(l) in
    for s = Slot_table.slots tab - 1 downto 0 do
      match Slot_table.owner tab s with
      | Some owner -> acc := (l, s, owner) :: !acc
      | None -> ()
    done
  done;
  !acc

let ni_budget_snapshot t = Array.copy t.ni_budget

let restore ~config ~mesh ~use_case ~ni_budget ~reservations =
  let t = create ~config ~mesh ~use_case in
  let links = Array.length t.tables in
  List.iter
    (fun (l, s, owner) ->
      if l < 0 || l >= links then invalid_arg "Resources.restore: link out of range";
      if s < 0 || s >= config.Config.slots then invalid_arg "Resources.restore: slot out of range";
      Slot_table.reserve t.tables.(l) ~slot:s ~owner)
    reservations;
  t.ni_budget <- Array.copy ni_budget;
  t

let pp ppf t =
  Format.fprintf ppf "uc %d on %a: mean util %.2f, max util %.2f" t.use_case Mesh.pp t.mesh
    (mean_utilization t) (max_utilization t)
