type bandwidth = float
type frequency = float
type latency = float
type area = float

let link_capacity ~freq_mhz ~width_bits =
  (* MHz * bytes = 1e6 bytes/s = MB/s (decimal MB, as the paper uses). *)
  freq_mhz *. (float_of_int width_bits /. 8.0)

let cycle_ns freq_mhz = 1000.0 /. freq_mhz

let mbps_per_slot ~capacity ~slots = capacity /. float_of_int slots

let slots_needed ~bw ~capacity ~slots =
  if bw <= 0.0 then 0
  else
    let per_slot = mbps_per_slot ~capacity ~slots in
    int_of_float (ceil (bw /. per_slot))

let pp_bandwidth ppf bw = Format.fprintf ppf "%.1f MB/s" bw
let pp_frequency ppf f = Format.fprintf ppf "%.0f MHz" f
let pp_latency ppf l = Format.fprintf ppf "%.1f ns" l
let pp_area ppf a = Format.fprintf ppf "%.3f mm2" a
