module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse { line; message })) fmt

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* Parsing is split in two: [parse_doc] keeps every declaration with
   its 1-based source line and never aborts (unparseable lines become
   [Bad] events), so the lint passes can diagnose a broken spec as a
   whole; [resolve] replays the events in order with the original
   semantic checks, so [parse] still reports the first error exactly
   where the one-pass parser did. *)

type event =
  | Name of string
  | Cores of int
  | Use_case_decl of string
  | Flow_decl of Flow.t
  | Parallel of string list
  | Smooth of string * string
  | Bad of string

type doc = {
  doc_name : string;  (** fallback design name (e.g. the file name) *)
  events : (int * event) list;
}

let syntax line fmt = Printf.ksprintf (fun message -> (line, Bad message)) fmt

let int_of ~line what s k =
  match int_of_string_opt s with
  | Some v -> k v
  | None -> syntax line "%s: expected an integer, got '%s'" what s

let parse_flow ~line rest =
  match rest with
  | src :: "->" :: dst :: "bw" :: bw :: opts ->
    int_of ~line "flow source" src (fun src ->
        int_of ~line "flow destination" dst (fun dst ->
            match float_of_string_opt bw with
            | None -> syntax line "bandwidth: expected a number, got '%s'" bw
            | Some bw ->
              let rec options latency_ns service = function
                | [] -> (line, Flow_decl (Flow.v ?latency_ns ~service ~src ~dst bw))
                | "lat" :: v :: rest -> (
                  match float_of_string_opt v with
                  | Some v -> options (Some v) service rest
                  | None -> syntax line "latency: expected a number, got '%s'" v)
                | "be" :: rest -> options latency_ns Flow.Best_effort rest
                | tok :: _ -> syntax line "unknown flow option '%s'" tok
              in
              options None Flow.Guaranteed opts))
  | _ -> syntax line "expected: flow SRC -> DST bw MBPS [lat NS] [be]"

let parse_doc ~name text =
  let events = ref [] in
  let push ev = events := ev :: !events in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      match tokens (strip_comment raw) with
      | [] -> ()
      | "name" :: rest when rest <> [] -> push (line, Name (String.concat " " rest))
      | [ "cores"; n ] -> push (int_of ~line "cores" n (fun v -> (line, Cores v)))
      | [ "use-case"; name ] -> push (line, Use_case_decl name)
      | "flow" :: rest -> push (parse_flow ~line rest)
      | "parallel" :: names -> push (line, Parallel names)
      | [ "smooth"; a; b ] -> push (line, Smooth (a, b))
      | tok :: _ -> push (syntax line "unknown directive '%s'" tok))
    (String.split_on_char '\n' text);
  { doc_name = name; events = List.rev !events }

(* Mutable resolution state: the spec is assembled use-case by
   use-case, exactly as the original one-pass parser did. *)
type state = {
  mutable name : string;
  mutable cores : int option;
  mutable order : string list;                    (* use-case names, reversed *)
  flows : (string, Flow.t list) Hashtbl.t;        (* per use-case, reversed *)
  mutable parallel : string list list;            (* reversed *)
  mutable smooth : (string * string) list;        (* reversed *)
  mutable current : string option;
}

let uc_id ~line st name =
  let order = List.rev st.order in
  let rec find i = function
    | [] -> fail line "unknown use-case '%s'" name
    | u :: _ when u = name -> i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 order

let resolve_event st (line, ev) =
  match ev with
  | Bad message -> raise (Parse { line; message })
  | Name n -> st.name <- n
  | Cores v ->
    if v < 2 then fail line "a SoC needs at least two cores";
    if st.cores <> None then fail line "duplicate 'cores' directive";
    st.cores <- Some v
  | Use_case_decl name ->
    if List.mem name st.order then fail line "duplicate use-case '%s'" name;
    st.order <- name :: st.order;
    Hashtbl.replace st.flows name [];
    st.current <- Some name
  | Flow_decl flow ->
    let uc =
      match st.current with
      | Some u -> u
      | None -> fail line "flow outside any use-case"
    in
    (match st.cores with
    | Some cores -> (
      match Flow.validate ~cores flow with
      | Ok () -> ()
      | Error msg -> fail line "%s" msg)
    | None -> fail line "declare 'cores N' before flows");
    let cur = Option.value (Hashtbl.find_opt st.flows uc) ~default:[] in
    Hashtbl.replace st.flows uc (flow :: cur)
  | Parallel names ->
    if List.length names < 2 then fail line "'parallel' needs at least two use-cases";
    List.iter (fun n -> ignore (uc_id ~line st n)) names;
    st.parallel <- names :: st.parallel
  | Smooth (a, b) ->
    ignore (uc_id ~line st a);
    ignore (uc_id ~line st b);
    st.smooth <- (a, b) :: st.smooth

let resolve doc =
  let st =
    {
      name = doc.doc_name;
      cores = None;
      order = [];
      flows = Hashtbl.create 8;
      parallel = [];
      smooth = [];
      current = None;
    }
  in
  try
    List.iter (resolve_event st) doc.events;
    let cores =
      match st.cores with Some c -> c | None -> fail 0 "missing 'cores' directive"
    in
    let order = List.rev st.order in
    if order = [] then fail 0 "no use-cases declared";
    let use_cases =
      List.mapi
        (fun id uc_name ->
          let flows = List.rev (Option.value (Hashtbl.find_opt st.flows uc_name) ~default:[]) in
          Use_case.create ~id ~name:uc_name ~cores flows)
        order
    in
    let id_of n = uc_id ~line:0 st n in
    Ok
      {
        Design_flow.name = st.name;
        use_cases;
        parallel = List.rev_map (List.map id_of) st.parallel;
        smooth = List.rev_map (fun (a, b) -> (id_of a, id_of b)) st.smooth;
      }
  with
  | Parse e -> Error e
  | Invalid_argument msg -> Error { line = 0; message = msg }

let parse ~name text = resolve (parse_doc ~name text)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text ->
    let name = Filename.remove_extension (Filename.basename path) in
    parse ~name text
  | exception Sys_error msg -> Error { line = 0; message = msg }

let doc_of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text ->
    let name = Filename.remove_extension (Filename.basename path) in
    Ok (parse_doc ~name text)
  | exception Sys_error msg -> Error { line = 0; message = msg }

(* Shortest decimal form that parses back to the exact float: specs
   written by [to_text] must survive the round-trip bit-for-bit (six
   significant digits lose up to ~1e-3 of aggregate bandwidth over a
   large use-case). *)
let float_repr x =
  let six = Printf.sprintf "%.6g" x in
  if float_of_string six = x then six
  else
    let twelve = Printf.sprintf "%.12g" x in
    if float_of_string twelve = x then twelve else Printf.sprintf "%.17g" x

let to_text (spec : Design_flow.spec) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "name %s\n" spec.Design_flow.name);
  (match spec.Design_flow.use_cases with
  | [] -> ()
  | first :: _ -> Buffer.add_string buf (Printf.sprintf "cores %d\n" first.Use_case.cores));
  let name_of id = (List.nth spec.Design_flow.use_cases id).Use_case.name in
  List.iter
    (fun u ->
      Buffer.add_string buf (Printf.sprintf "\nuse-case %s\n" u.Use_case.name);
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "  flow %d -> %d bw %s%s%s\n" f.Flow.src f.Flow.dst
               (float_repr f.Flow.bandwidth)
               (if f.Flow.latency_ns <> infinity then " lat " ^ float_repr f.Flow.latency_ns
                else "")
               (if Flow.is_guaranteed f then "" else " be")))
        u.Use_case.flows)
    spec.Design_flow.use_cases;
  if spec.Design_flow.parallel <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun set ->
      Buffer.add_string buf
        (Printf.sprintf "parallel %s\n" (String.concat " " (List.map name_of set))))
    spec.Design_flow.parallel;
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "smooth %s %s\n" (name_of a) (name_of b)))
    spec.Design_flow.smooth;
  Buffer.contents buf
