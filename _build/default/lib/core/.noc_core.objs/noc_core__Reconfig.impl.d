lib/core/reconfig.ml: Array Format Hashtbl List Mapping Noc_arch Noc_util
