lib/rtl/netlist.mli: Noc_arch Noc_core
