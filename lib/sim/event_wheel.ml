(* Slot-granular event calendar for the event-driven simulator core.

   Three tiers, from cheapest to most general:

   - an *always* refcount for demands active in every slot (fluid
     sources, backlogged same-switch connections): while positive the
     next active slot is simply the next slot;
   - a *timing wheel* over the TDMA period for demands tied to fixed
     slot-table positions (a backlogged GT connection's reserved
     starts, a backlogged link's GT-free slots).  Each phase slot
     carries an arming refcount; a bitmask over the period makes
     "next armed phase at or after p" one or two word scans;
   - a *pending-horizon heap* of one-shot absolute slots for events
     that do not repeat with the period (replay packet injections,
     on/off phase edges).

   The calendar over-approximates: a slot it reports may turn out to
   hold no work (e.g. a link armed for a queue that has since
   drained), and executing such a slot is a harmless no-op.  The
   correctness obligation is one-sided — every slot in which the
   reference tick loop would mutate state must be covered by an arm,
   a schedule, or the always tier. *)

module Bitmask = Noc_arch.Bitmask

type t = {
  period : int;
  armed : int array;          (* per-phase arming refcount *)
  ring : Bitmask.t;           (* bit set <=> armed.(phase) > 0 *)
  mutable always : int;       (* every-slot demands *)
  mutable heap : int array;   (* binary min-heap of absolute slots *)
  mutable heap_len : int;
}

let create ~period =
  if period <= 0 then invalid_arg "Event_wheel.create: need positive period";
  {
    period;
    armed = Array.make period 0;
    ring = Bitmask.create ~slots:period ~full:false;
    always = 0;
    heap = Array.make 16 0;
    heap_len = 0;
  }

let arm t phases =
  List.iter
    (fun p ->
      if p < 0 || p >= t.period then invalid_arg "Event_wheel.arm: phase out of range";
      t.armed.(p) <- t.armed.(p) + 1;
      if t.armed.(p) = 1 then Bitmask.set t.ring p)
    phases

let disarm t phases =
  List.iter
    (fun p ->
      if p < 0 || p >= t.period then invalid_arg "Event_wheel.disarm: phase out of range";
      if t.armed.(p) = 0 then invalid_arg "Event_wheel.disarm: phase not armed";
      t.armed.(p) <- t.armed.(p) - 1;
      if t.armed.(p) = 0 then Bitmask.clear t.ring p)
    phases

let arm_always t = t.always <- t.always + 1

let disarm_always t =
  if t.always = 0 then invalid_arg "Event_wheel.disarm_always: not armed";
  t.always <- t.always - 1

(* --- one-shot heap ----------------------------------------------------- *)

let swap h i j =
  let v = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- v

let schedule t slot =
  if slot < 0 then invalid_arg "Event_wheel.schedule: negative slot";
  if t.heap_len = Array.length t.heap then begin
    let bigger = Array.make (2 * t.heap_len) 0 in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  t.heap.(t.heap_len) <- slot;
  let i = ref t.heap_len in
  t.heap_len <- t.heap_len + 1;
  while !i > 0 && t.heap.((!i - 1) / 2) > t.heap.(!i) do
    swap t.heap ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

let heap_pop t =
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.heap_len && t.heap.(l) < t.heap.(!smallest) then smallest := l;
    if r < t.heap_len && t.heap.(r) < t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap t.heap !i !smallest;
      i := !smallest
    end
  done

let drop_until t slot =
  while t.heap_len > 0 && t.heap.(0) <= slot do
    heap_pop t
  done

(* --- next-active query -------------------------------------------------- *)

let ring_next t ~from =
  if Bitmask.is_empty t.ring then None
  else begin
    let phase = from mod t.period in
    match Bitmask.next_set_from t.ring phase with
    | Some p -> Some (from + (p - phase))
    | None -> (
      match Bitmask.next_set_from t.ring 0 with
      | Some p -> Some (from + (t.period - phase) + p)
      | None -> None)
  end

let next_active t ~from =
  if from < 0 then invalid_arg "Event_wheel.next_active: negative slot";
  if t.always > 0 then Some from
  else begin
    let ring = ring_next t ~from in
    (* stale heap entries (already executed) are dropped lazily *)
    drop_until t (from - 1);
    let heap = if t.heap_len > 0 then Some t.heap.(0) else None in
    match (ring, heap) with
    | None, None -> None
    | Some a, None | None, Some a -> Some a
    | Some a, Some b -> Some (min a b)
  end
