module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module Mesh = Noc_arch.Mesh
module Config = Noc_arch.Noc_config
module Use_case = Noc_traffic.Use_case
module Table = Noc_util.Ascii_table

type method_result = {
  switches : int option;
  mesh : (int * int) option;
  seconds : float;
  cpu_seconds : float;
}

type comparison_row = {
  label : string;
  ours : method_result;
  wc : method_result;
  ratio : float option;
}

(* Wall and CPU attribution both come from the unified observability
   clock.  CPU time is summed across every domain of the process, so
   under the pool it over-reports elapsed time by up to the worker
   count.  Both are kept — wall is what the user waits for, CPU is
   what the machine burns. *)
let timed = Noc_obs.Clock.timed

(* Per-spec preparation hoisted out of the timed mapping runs: compound
   generation, switching-group computation and the WC baseline's
   synthetic worst-case use-case are all computed once per spec, so the
   timing columns compare the two *mapping* methods, and sweep layers
   never redo phase-1/2 work per design point. *)
type prepared = {
  all : Use_case.t list;        (* base + compound use-cases *)
  groups : int list list;       (* Algorithm 1 grouping *)
  wc : Use_case.t;              (* the WC method's synthetic use-case *)
}

let prepare use_cases =
  let all, compounds = Noc_core.Compound.generate use_cases ~parallel:[] in
  let switching = Noc_core.Switching.create ~use_cases:(List.length all) ~smooth:[] in
  List.iter (Noc_core.Switching.add_compound switching) compounds;
  { all; groups = Noc_core.Switching.groups switching; wc = WC.synthetic use_cases }

let method_result_of = function
  | Ok m, seconds, cpu_seconds ->
    let mesh = m.Mapping.mesh in
    {
      switches = Some (Mapping.switch_count m);
      mesh = Some (Mesh.width mesh, Mesh.height mesh);
      seconds;
      cpu_seconds;
    }
  | Error _, seconds, cpu_seconds -> { switches = None; mesh = None; seconds; cpu_seconds }

let compare_methods ~label use_cases =
  let p = prepare use_cases in
  let ours =
    method_result_of
      (timed (fun () ->
           Mapping.map_design
             ?cache:(Noc_core.Mapping_cache.design_cache ~groups:p.groups p.all)
             ~groups:p.groups p.all))
  in
  let wc =
    method_result_of
      (timed (fun () ->
           Mapping.map_design
             ?cache:(Noc_core.Mapping_cache.design_cache ~groups:[ [ 0 ] ] [ p.wc ])
             ~groups:[ [ 0 ] ] [ p.wc ]))
  in
  let ratio =
    match (ours.switches, wc.switches) with
    | Some a, Some b when b > 0 -> Some (float_of_int a /. float_of_int b)
    | _ -> None
  in
  { label; ours; wc; ratio }

(* The per-point bodies of every figure are independent designs, so
   they fan out on the shared domain pool. *)
let pool_map f xs = Noc_util.Domain_pool.map f xs

let fig6a () =
  pool_map (fun (name, ucs) -> compare_methods ~label:name ucs) (Soc_designs.all_designs ())

let default_counts = [ 2; 5; 10; 15; 20 ]

let fig6b ?(counts = default_counts) () =
  pool_map
    (fun u ->
      let ucs = Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:u in
      compare_methods ~label:(Printf.sprintf "Sp-%d" u) ucs)
    counts

(* Bot use-cases share the hotspot structure, so their patterns are
   more alike across use-cases than Sp's (paper §6.2 attributes WC's
   worse Sp results to exactly this difference in variation). *)
let bot_benchmark ~seed ~use_cases =
  Synthetic.generate_family ~seed ~params:Synthetic.bottleneck_params ~use_cases ~similarity:0.4

let fig6c ?(counts = default_counts) () =
  pool_map
    (fun u ->
      let ucs = bot_benchmark ~seed:300 ~use_cases:u in
      compare_methods ~label:(Printf.sprintf "Bot-%d" u) ucs)
    counts

let forty_use_cases () =
  pool_map
    (fun (label, ucs) -> compare_methods ~label ucs)
    [
      ("Sp-40", Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:40);
      ("Bot-40", bot_benchmark ~seed:300 ~use_cases:40);
    ]

let fig7a ?frequencies () =
  let use_cases = Soc_designs.d1 () in
  let groups = List.mapi (fun i _ -> [ i ]) use_cases in
  Noc_power.Pareto.sweep ?frequencies ~config:Config.default ~groups use_cases

type fig7b_row = {
  design : string;
  f_design : float;
  use_case_freqs : float list;
  savings_pct : float option;
}

let fig7b_for ~design_name use_cases =
  match DF.run (DF.spec_of_use_cases ~name:design_name use_cases) with
  | Error _ -> { design = design_name; f_design = 0.0; use_case_freqs = []; savings_pct = None }
  | Ok d ->
    let m = d.DF.mapping in
    let freqs =
      List.map
        (fun u ->
          match Noc_power.Min_freq.for_use_case_on_design ~design:m u with
          | Some f -> f
          | None -> m.Mapping.config.Config.freq_mhz)
        d.DF.all_use_cases
    in
    (* The busiest use-case pins the frequency the design must sustain;
       DVS scales the others down during their epochs. *)
    let f_design = List.fold_left Float.max 0.0 freqs in
    let epochs = List.map (fun f -> (f, 1.0)) freqs in
    let savings =
      if f_design > 0.0 then Some (Noc_power.Dvfs.savings_percent ~f_design ~epochs) else None
    in
    { design = design_name; f_design; use_case_freqs = freqs; savings_pct = savings }

let fig7b () =
  pool_map (fun (name, ucs) -> fig7b_for ~design_name:name ucs) (Soc_designs.all_designs ())

type fig7c_row = {
  parallel : int;
  freq_mhz : float option;
}

let fig7c ?(max_parallel = 4) () =
  let n_base = 10 in
  let use_cases =
    Synthetic.generate ~seed:777 ~params:Synthetic.spread_params ~use_cases:n_base
  in
  (* Disjoint chunks of k use-cases running in parallel. *)
  let sets k =
    let rec chunks from acc =
      if from + k > n_base then List.rev acc
      else chunks (from + k) (List.init k (fun j -> from + j) :: acc)
    in
    if k = 1 then [] else chunks 0 []
  in
  let with_compounds k =
    Noc_core.Compound.generate use_cases ~parallel:(sets k) |> fst
  in
  (* Size the mesh once, for the most demanding parallelism, then ask
     what clock each parallelism level needs on that same NoC — the
     trade-off plot the paper gives the designer. *)
  (* Compound generation for every parallelism level is hoisted out of
     the per-point search: each set is built once, then the per-level
     minimum-frequency searches fan out on the pool. *)
  let compound_sets = List.init max_parallel (fun i -> (i + 1, with_compounds (i + 1))) in
  let groups_of ucs = List.mapi (fun i _ -> [ i ]) ucs in
  let all_max = snd (List.nth compound_sets (max_parallel - 1)) in
  match
    Mapping.map_design ~config:Config.default
      ?cache:
        (Noc_core.Mapping_cache.design_cache ~config:Config.default
           ~groups:(groups_of all_max) all_max)
      ~groups:(groups_of all_max) all_max
  with
  | Error _ -> List.init max_parallel (fun i -> { parallel = i + 1; freq_mhz = None })
  | Ok sized ->
    let mesh = sized.Mapping.mesh in
    pool_map
      (fun (k, all) ->
        let freq =
          Noc_power.Min_freq.for_use_cases_on_mesh ~config:Config.default ~mesh
            ~groups:(groups_of all) all
        in
        { parallel = k; freq_mhz = freq })
      compound_sets

type stats_row = {
  family : string;
  seeds : int;
  mean_ratio : float;
  stddev_ratio : float;
  wc_failures : int;
}

let fig6_statistics ?(seeds = [ 11; 22; 33; 44; 55 ]) ?(use_cases = 10) () =
  let run family gen =
    let per_seed = pool_map (fun seed -> (compare_methods ~label:family (gen ~seed)).ratio) seeds in
    let ratios = List.filter_map Fun.id per_seed in
    {
      family;
      seeds = List.length seeds;
      mean_ratio = Noc_util.Numeric.mean ratios;
      stddev_ratio = Noc_util.Numeric.stddev ratios;
      wc_failures = List.length per_seed - List.length ratios;
    }
  in
  [
    run "Sp" (fun ~seed -> Synthetic.generate ~seed ~params:Synthetic.spread_params ~use_cases);
    run "Bot" (fun ~seed ->
        Synthetic.generate_family ~seed ~params:Synthetic.bottleneck_params ~use_cases
          ~similarity:0.4);
  ]

type scalability_row = {
  n_use_cases : int;
  ours_seconds : float;
  ours_switches : int option;
}

(* Deliberately sequential: each row's wall clock is the quantity being
   reported, so the rows must not share the machine with each other. *)
let scalability ?(counts = [ 5; 10; 20; 40; 80 ]) () =
  List.map
    (fun n ->
      let ucs = Synthetic.generate ~seed:200 ~params:Synthetic.spread_params ~use_cases:n in
      let result, seconds, _cpu =
        timed (fun () -> DF.run (DF.spec_of_use_cases ~name:"scale" ucs))
      in
      {
        n_use_cases = n;
        ours_seconds = seconds;
        ours_switches = (match result with Ok d -> Some (DF.switch_count d) | Error _ -> None);
      })
    counts

(* --- rendering ------------------------------------------------------- *)

let string_of_switches = function Some n -> string_of_int n | None -> "infeasible"

let string_of_mesh = function Some (w, h) -> Printf.sprintf "%dx%d" w h | None -> "-"

let print_comparison ~title ~paper_note rows =
  print_endline title;
  print_endline paper_note;
  let t =
    Table.create
      ~header:[ "benchmark"; "ours (mesh)"; "WC (mesh)"; "ratio ours/WC"; "wall (s)"; "cpu (s)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.label;
          Printf.sprintf "%s (%s)" (string_of_switches r.ours.switches) (string_of_mesh r.ours.mesh);
          Printf.sprintf "%s (%s)" (string_of_switches r.wc.switches) (string_of_mesh r.wc.mesh);
          (match r.ratio with Some x -> Printf.sprintf "%.3f" x | None -> "-");
          Printf.sprintf "%.2f" (r.ours.seconds +. r.wc.seconds);
          Printf.sprintf "%.2f" (r.ours.cpu_seconds +. r.wc.cpu_seconds);
        ])
    rows;
  Table.print t;
  print_newline ()

let print_fig7a points =
  print_endline "Fig 7(a): area-frequency trade-off for D1";
  print_endline "paper shape: large area below ~350 MHz, very small above 1.5 GHz";
  let t = Table.create ~header:[ "freq (MHz)"; "switches"; "area (mm2)" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" p.Noc_power.Pareto.freq_mhz;
          string_of_switches p.Noc_power.Pareto.switches;
          (match p.Noc_power.Pareto.area_mm2 with
          | Some a -> Printf.sprintf "%.3f" a
          | None -> "-");
        ])
    points;
  Table.print t;
  print_newline ()

let print_fig7b rows =
  print_endline "Fig 7(b): DVS/DFS power savings";
  print_endline "paper: average 54 % across the SoC designs";
  let t = Table.create ~header:[ "design"; "f_design (MHz)"; "savings (%)" ] in
  let savings = ref [] in
  List.iter
    (fun r ->
      (match r.savings_pct with Some s -> savings := s :: !savings | None -> ());
      Table.add_row t
        [
          r.design;
          Printf.sprintf "%.0f" r.f_design;
          (match r.savings_pct with Some s -> Printf.sprintf "%.1f" s | None -> "-");
        ])
    rows;
  Table.print t;
  if !savings <> [] then
    Printf.printf "average savings: %.1f %%\n" (Noc_util.Numeric.mean !savings);
  print_newline ()

let print_fig7c rows =
  print_endline "Fig 7(c): NoC frequency vs number of parallel use-cases (20-core, 10-use-case Sp)";
  print_endline "paper shape: frequency grows roughly linearly with the parallelism";
  let t = Table.create ~header:[ "parallel use-cases"; "required freq (MHz)" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.parallel;
          (match r.freq_mhz with Some f -> Printf.sprintf "%.0f" f | None -> "infeasible");
        ])
    rows;
  Table.print t;
  print_newline ()

let print_fig6a () =
  print_comparison ~title:"Fig 6(a): normalized switch count, SoC designs D1-D4"
    ~paper_note:"paper shape: WC reasonable on D1/D2, far larger on D3/D4"
    (fig6a ())

let print_fig6b () =
  print_comparison ~title:"Fig 6(b): Sp benchmarks, 2-20 use-cases"
    ~paper_note:"paper shape: ratio <= 0.25 and falling with the use-case count"
    (fig6b ())

let print_fig6c () =
  print_comparison ~title:"Fig 6(c): Bot benchmarks, 2-20 use-cases"
    ~paper_note:"paper shape: ratio falls with the use-case count; Sp lower than Bot"
    (fig6c ())

let print_s62 () =
  print_comparison ~title:"Sec 6.2: 40 use-cases"
    ~paper_note:"paper: ours maps onto 2x2; WC fails even on a 20x20 mesh"
    (forty_use_cases ())

let print_one name =
  (* One span per figure: a traced `nocmap experiments` run shows the
     per-figure wall/CPU split directly in the timeline. *)
  let spanned thunk =
    Ok (Noc_obs.Tracer.with_span ~cat:"experiment" ("experiment:" ^ name) thunk)
  in
  match name with
  | "fig6a" -> spanned print_fig6a
  | "fig6b" -> spanned print_fig6b
  | "fig6c" -> spanned print_fig6c
  | "s62" -> spanned print_s62
  | "fig7a" -> spanned (fun () -> print_fig7a (fig7a ()))
  | "fig7b" -> spanned (fun () -> print_fig7b (fig7b ()))
  | "fig7c" -> spanned (fun () -> print_fig7c (fig7c ()))
  | other -> Error (Printf.sprintf "unknown experiment '%s'" other)

let print_statistics rows =
  print_endline "Seed robustness: ours/WC ratio at 10 use-cases over 5 seeds";
  let t = Table.create ~header:[ "family"; "seeds"; "mean ratio"; "stddev"; "WC failures" ] in
  List.iter
    (fun (r : stats_row) ->
      Table.add_row t
        [
          r.family;
          string_of_int r.seeds;
          Printf.sprintf "%.3f" r.mean_ratio;
          Printf.sprintf "%.3f" r.stddev_ratio;
          string_of_int r.wc_failures;
        ])
    rows;
  Table.print t;
  print_newline ()

let print_scalability rows =
  print_endline "Scalability: design-flow runtime vs use-case count (Sp family)";
  print_endline "paper: \"less than few minutes\" and \"scalable to a large number of use-cases\"";
  let t = Table.create ~header:[ "use-cases"; "switches"; "runtime (s)" ] in
  List.iter
    (fun (r : scalability_row) ->
      Table.add_row t
        [
          string_of_int r.n_use_cases;
          (match r.ours_switches with Some s -> string_of_int s | None -> "infeasible");
          Printf.sprintf "%.2f" r.ours_seconds;
        ])
    rows;
  Table.print t;
  print_newline ()

let print_all () =
  print_fig6a ();
  print_fig6b ();
  print_fig6c ();
  print_s62 ();
  print_fig7a (fig7a ());
  print_fig7b (fig7b ());
  print_fig7c (fig7c ());
  print_statistics (fig6_statistics ());
  print_scalability (scalability ())
