(* nocmap: command-line driver for the multi-use-case NoC design flow.

   Subcommands:
     map          design a NoC for a benchmark and print the result
     experiments  regenerate the paper's figures
     generate     print a synthetic benchmark's traffic
     simulate     design, then simulate every use-case configuration *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Use_case = Noc_traffic.Use_case
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs
module Sim = Noc_sim.Simulator

open Cmdliner

(* --- benchmark selection ------------------------------------------------- *)

let load_benchmark ~name ~use_cases ~seed =
  match String.lowercase_ascii name with
  | "d1" -> Ok (SD.d1 ())
  | "d2" -> Ok (SD.d2 ())
  | "d3" -> Ok (SD.d3 ())
  | "d4" -> Ok (SD.d4 ())
  | "example1" -> Ok SD.example1_use_cases
  | "viper" ->
    Ok [ SD.viper_fragment_1; Use_case.rename SD.viper_fragment_2 ~id:1 ~name:"viper-uc2" ]
  | "mobile" -> Ok (SD.mobile_phone ())
  | "sp" -> Ok (Syn.generate ~seed ~params:Syn.spread_params ~use_cases)
  | "bot" -> Ok (Syn.generate ~seed ~params:Syn.bottleneck_params ~use_cases)
  | other ->
    Error
      (Printf.sprintf
         "unknown benchmark '%s' (expected d1|d2|d3|d4|example1|viper|mobile|sp|bot)" other)

(* --- common options -------------------------------------------------------- *)

let bench_arg =
  let doc = "Benchmark: d1, d2, d3, d4, example1, viper, mobile, sp (spread), bot (bottleneck)." in
  Arg.(value & pos 0 string "example1" & info [] ~docv:"BENCHMARK" ~doc)

let use_cases_arg =
  let doc = "Number of use-cases for synthetic benchmarks (sp/bot)." in
  Arg.(value & opt int 5 & info [ "use-cases"; "u" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed for synthetic benchmarks." in
  Arg.(value & opt int 200 & info [ "seed" ] ~docv:"SEED" ~doc)

let freq_arg =
  let doc = "NoC operating frequency, MHz." in
  Arg.(value & opt float 500.0 & info [ "freq"; "f" ] ~docv:"MHZ" ~doc)

let slots_arg =
  let doc = "TDMA slot-table size." in
  Arg.(value & opt int 32 & info [ "slots" ] ~docv:"SLOTS" ~doc)

let nis_arg =
  let doc = "Maximum NIs (cores) per switch." in
  Arg.(value & opt int 8 & info [ "nis-per-switch" ] ~docv:"N" ~doc)

let xy_arg =
  let doc = "Use dimension-ordered (XY) routing instead of min-cost path search." in
  Arg.(value & flag & info [ "xy" ] ~doc)

let refine_arg =
  let doc = "Run the simulated-annealing placement refinement after mapping." in
  Arg.(value & flag & info [ "refine" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the shared pool (mesh-size speculation, design-space sweeps, experiment \
     fan-out).  Defaults to the machine's recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs = function
  | None -> ()
  | Some j ->
    if j < 1 then invalid_arg "--jobs must be >= 1";
    Noc_util.Domain_pool.set_default_jobs j

let cache_dir_arg =
  let doc =
    "Persist mapping results under $(docv): identical problems in later runs replay the stored \
     placement, routes and slot assignments instead of re-solving.  Entries are keyed by a \
     canonical problem digest and namespaced by the build fingerprint, so a rebuilt nocmap \
     never reads stale results."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc =
    "Disable the in-process mapping cache (and ignore $(b,--cache-dir)).  Results are identical \
     either way; this is the honest-timing / debugging escape hatch."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let apply_cache no_cache cache_dir =
  if no_cache then Noc_core.Mapping_cache.set_enabled false
  else Option.iter (fun d -> Noc_core.Mapping_cache.set_dir (Some d)) cache_dir

(* --- observability -------------------------------------------------------- *)

module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let trace_arg =
  let doc =
    "Record a span trace of this run and write it to $(docv) as Chrome trace_event JSON \
     (load it at ui.perfetto.dev or chrome://tracing).  Tracing is passive: the designed \
     NoC and every export are byte-identical to an untraced run."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the process-wide metrics registry (counters, gauges, span histograms) to $(docv) \
     as JSON when the command exits."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Files are written from [at_exit] so a command that [exit]s early (lint's
   diagnostic exit codes, a cmdliner error path) still flushes what it saw. *)
let apply_obs trace metrics =
  if trace <> None then Tracer.set_enabled true;
  if trace <> None || metrics <> None then
    at_exit (fun () ->
        (match trace with
        | Some file ->
          Tracer.write_file file (Tracer.export_chrome ());
          Printf.eprintf "trace: %d spans written to %s\n%!"
            (List.length (Tracer.events ()))
            file
        | None -> ());
        match metrics with
        | Some file ->
          Tracer.write_file file (Metrics.render_json (Metrics.snapshot ()));
          Printf.eprintf "metrics: snapshot written to %s\n%!" file
        | None -> ())

let sequential_arg =
  let doc =
    "Search mesh sizes strictly one at a time instead of speculatively evaluating a window of \
     sizes on separate domains (the result is identical either way)."
  in
  Arg.(value & flag & info [ "sequential" ] ~doc)

let wc_arg =
  let doc = "Design with the worst-case baseline method [25] instead of the multi-use-case method." in
  Arg.(value & flag & info [ "wc" ] ~doc)

let no_prune_arg =
  let doc =
    "Disable static feasibility pruning: attempt every mesh size of the growth sequence even \
     when a certificate proves it infeasible.  The designed NoC is identical either way."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let systemc_arg =
  let doc = "Write the generated SystemC model to $(docv)." in
  Arg.(value & opt (some string) None & info [ "systemc" ] ~docv:"FILE" ~doc)

let spec_arg =
  let doc = "Read the design from a spec file instead of a named benchmark (see Noc_core.Spec_parser for the format)." in
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)

let vhdl_arg =
  let doc = "Write the generated structural VHDL to $(docv)." in
  Arg.(value & opt (some string) None & info [ "vhdl" ] ~docv:"FILE" ~doc)

let make_config ~freq ~slots ~nis ~xy =
  {
    Config.default with
    freq_mhz = freq;
    slots;
    nis_per_switch = nis;
    routing = (if xy then Config.Xy else Config.Min_cost);
  }

(* --- map -------------------------------------------------------------------- *)

let print_design name mapping verified =
  Format.printf "design %s: mapped onto %a (%d switches in use)@." name Mesh.pp
    mapping.Mapping.mesh
    (Mapping.switches_in_use mapping);
  Format.printf "verification: %s@." (if verified then "OK" else "FAILED");
  Format.printf "area: %a, power: %.1f mW@." Noc_util.Units.pp_area
    (Noc_power.Area_model.noc_area mapping)
    (Noc_power.Power_model.noc_power mapping).Noc_power.Power_model.total_mw

let emit_vhdl path name mapping =
  match path with
  | None -> `Ok ()
  | Some file ->
    let text = Noc_rtl.Netlist.generate ~design_name:name mapping in
    (match Noc_rtl.Wellformed.check text with
    | Ok () ->
      Out_channel.with_open_text file (fun oc -> output_string oc text);
      Format.printf "VHDL written to %s (%d bytes, lint clean)@." file (String.length text);
      `Ok ()
    | Error issues ->
      `Error (false, Printf.sprintf "generated VHDL failed lint (%d issues)" (List.length issues)))

let emit_systemc path name mapping =
  match path with
  | None -> `Ok ()
  | Some file ->
    let text = Noc_rtl.Systemc.generate ~design_name:name mapping in
    (match Noc_rtl.Systemc.check text with
    | Ok () ->
      Out_channel.with_open_text file (fun oc -> output_string oc text);
      Format.printf "SystemC written to %s (%d bytes, lint clean)@." file (String.length text);
      `Ok ()
    | Error issues ->
      `Error
        (false, Printf.sprintf "generated SystemC failed lint (%d issues)" (List.length issues)))

let dump_arg =
  let doc =
    "Write the designed mapping as a canonical Mapping_codec dump to $(docv) — the format \
     $(b,nocmap certify --from) audits."
  in
  Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)

let certify_flag_arg =
  let doc =
    "Run the independent certificate checker (Noc_analysis.Certify) on the finished design as a \
     final flow phase; any finding fails the command."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let emit_dump path mapping =
  match path with
  | None -> `Ok ()
  | Some file ->
    (match Noc_core.Mapping_codec.encode mapping with
    | Some text ->
      Out_channel.with_open_text file (fun oc -> output_string oc text);
      Format.printf "mapping dump written to %s (%d bytes)@." file (String.length text);
      `Ok ()
    | None -> `Error (false, "this mapping cannot be encoded (mesh carries express channels)"))

let map_json_arg =
  let doc =
    "Write the designed NoC as JSON to $(docv) — the exact bytes a $(b,nocmap serve) daemon \
     returns for the same map request, so the two can be compared with $(b,cmp)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let certify_design name (d : DF.t) =
  let module C = Noc_analysis.Certify in
  let cert = C.certify ~name d.DF.mapping d.DF.all_use_cases in
  print_string (C.render_text cert);
  if C.clean cert then Ok ()
  else
    Error
      (Printf.sprintf "certificate rejected (%d findings)"
         (List.length cert.C.findings))

let load_spec ~bench ~use_cases ~seed ~spec_file =
  match spec_file with
  | Some file -> (
    match Noc_core.Spec_parser.parse_file file with
    | Ok spec -> Ok spec
    | Error e -> Error (Format.asprintf "%s: %a" file Noc_core.Spec_parser.pp_error e))
  | None -> (
    match load_benchmark ~name:bench ~use_cases ~seed with
    | Ok ucs -> Ok (DF.spec_of_use_cases ~name:bench ucs)
    | Error msg -> Error msg)

let run_map bench use_cases seed freq slots nis xy refine sequential wc no_prune jobs vhdl
    systemc dump certify json spec_file no_cache cache_dir trace metrics =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  match load_spec ~bench ~use_cases ~seed ~spec_file with
  | Error msg -> `Error (false, msg)
  | Ok spec -> (
    let emits m =
      match emit_vhdl vhdl spec.DF.name m with
      | `Ok () -> (
        match emit_systemc systemc spec.DF.name m with `Ok () -> emit_dump dump m | e -> e)
      | e -> e
    in
    let config = make_config ~freq ~slots ~nis ~xy in
    let parallel = not sequential in
    if wc then
      if certify then `Error (false, "--certify applies to the multi-use-case flow, not --wc")
      else if json <> None then
        `Error (false, "--json applies to the multi-use-case flow, not --wc")
      else
        match WC.map_design ~config ~parallel spec.DF.use_cases with
        | Error failure -> `Error (false, Format.asprintf "%a" Mapping.pp_failure failure)
        | Ok m ->
          print_design (spec.DF.name ^ " (WC method)") m true;
          emits m
    else
      let post = if certify then Some (certify_design spec.DF.name) else None in
      match DF.run ~config ~parallel ~prune:(not no_prune) ~refine ?post spec with
      | Error msg -> `Error (false, msg)
      | Ok d ->
        print_design spec.DF.name d.DF.mapping (DF.verified d);
        (match json with
        | Some file ->
          Out_channel.with_open_text file (fun oc ->
              output_string oc (Noc_serve.Payload.design d));
          Format.printf "wrote %s@." file
        | None -> ());
        emits d.DF.mapping)

let map_cmd =
  let doc = "Design the smallest NoC satisfying every use-case of a benchmark." in
  Cmd.v
    (Cmd.info "map" ~doc)
    Term.(
      ret
        (const run_map $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
        $ xy_arg $ refine_arg $ sequential_arg $ wc_arg $ no_prune_arg $ jobs_arg $ vhdl_arg
        $ systemc_arg $ dump_arg $ certify_flag_arg $ map_json_arg $ spec_arg $ no_cache_arg
        $ cache_dir_arg $ trace_arg $ metrics_arg))

(* --- experiments -------------------------------------------------------------- *)

let experiments_arg =
  let doc = "Which experiment to run: all, fig6a, fig6b, fig6c, s62, fig7a, fig7b, fig7c, ablations." in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let run_experiments which jobs no_cache cache_dir trace metrics =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  let module E = Noc_benchkit.Experiments in
  match String.lowercase_ascii which with
  | "all" ->
    E.print_all ();
    Noc_benchkit.Ablations.print_all ();
    `Ok ()
  | "ablations" ->
    Noc_benchkit.Ablations.print_all ();
    `Ok ()
  | one -> (
    match E.print_one one with Ok () -> `Ok () | Error msg -> `Error (false, msg))

let experiments_cmd =
  let doc = "Regenerate the paper's evaluation figures (Fig 6a-c, Sec 6.2, Fig 7a-c)." in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      ret
        (const run_experiments $ experiments_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg
       $ trace_arg $ metrics_arg))

(* --- generate ------------------------------------------------------------------- *)

let run_generate bench use_cases seed =
  match load_benchmark ~name:bench ~use_cases ~seed with
  | Error msg -> `Error (false, msg)
  | Ok ucs ->
    Format.printf "%a@.@." Noc_traffic.Traffic_stats.pp (Noc_traffic.Traffic_stats.compute ucs);
    List.iter
      (fun u ->
        Format.printf "%a@." Use_case.pp u;
        List.iter (fun f -> Format.printf "  %a@." Noc_traffic.Flow.pp f) u.Use_case.flows)
      ucs;
    `Ok ()

let generate_cmd =
  let doc = "Print the traffic description of a benchmark." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(ret (const run_generate $ bench_arg $ use_cases_arg $ seed_arg))

(* --- simulate ------------------------------------------------------------------- *)

let duration_arg =
  let doc = "Simulation length in TDMA slots." in
  Arg.(value & opt int 3200 & info [ "duration" ] ~docv:"SLOTS" ~doc)

let reference_sim_arg =
  let doc =
    "Run the pinned reference tick-loop simulator core instead of the default event-driven \
     core.  Results are byte-identical; only speed differs."
  in
  Arg.(value & flag & info [ "reference-sim" ] ~doc)

let sim_json_arg =
  let doc =
    "Write the per-use-case simulation results as JSON to $(docv).  The file records results \
     only, never which core produced them, so runs with and without $(b,--reference-sim) can \
     be compared byte for byte."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

(* %.17g round-trips every finite double, so byte-equal files <=>
   byte-equal results; JSON has no Infinity, hence the quoted "inf"
   for the BE latency bound. *)
let write_sim_json path results =
  let num x = if Float.is_finite x then Printf.sprintf "%.17g" x else "\"inf\"" in
  let conn (c : Sim.conn_stats) =
    Printf.sprintf
      "{\"flow_id\":%d,\"service\":\"%s\",\"offered_mbps\":%s,\"delivered_mbps\":%s,\
       \"mean_latency_ns\":%s,\"max_latency_ns\":%s,\"bound_ns\":%s,\
       \"final_backlog_bytes\":%s,\"max_backlog_bytes\":%s}"
      c.Sim.flow_id
      (match c.Sim.service with Noc_arch.Route.Gt -> "gt" | Noc_arch.Route.Be -> "be")
      (num c.Sim.offered_mbps) (num c.Sim.delivered_mbps) (num c.Sim.mean_latency_ns)
      (num c.Sim.max_latency_ns) (num c.Sim.bound_ns) (num c.Sim.final_backlog_bytes)
      (num c.Sim.max_backlog_bytes)
  in
  let one (name, (res : Sim.result)) =
    Printf.sprintf
      "  {\"use_case\":\"%s\",\"duration_slots\":%d,\"slot_ns\":%s,\"collisions\":%d,\
       \"conns\":[%s]}"
      name res.Sim.duration_slots (num res.Sim.slot_ns) res.Sim.collisions
      (String.concat "," (List.map conn res.Sim.conns))
  in
  let oc = open_out path in
  Printf.fprintf oc "[\n%s\n]\n" (String.concat ",\n" (List.map one results));
  close_out oc

let run_simulate bench use_cases seed freq slots nis xy duration reference_sim sim_json
    spec_file no_cache cache_dir trace metrics =
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  match load_spec ~bench ~use_cases ~seed ~spec_file with
  | Error msg -> `Error (false, msg)
  | Ok spec -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    match DF.run ~config spec with
    | Error msg -> `Error (false, msg)
    | Ok d ->
      let m = d.DF.mapping in
      let core = if reference_sim then `Reference else `Event in
      Format.printf "%a@.@." DF.pp_summary d;
      let results =
        List.map
          (fun u ->
            let routes = Mapping.routes_of_use_case m u.Use_case.id in
            let res =
              Tracer.with_span ~cat:"sim"
                ~args:[ ("use_case", Tracer.Str u.Use_case.name) ]
                "simulate:use_case"
                (fun () ->
                  Sim.simulate_with ~core ~sources:[] ~config ~routes ~duration_slots:duration)
            in
            Format.printf "%s: %s (%d connections, %d collisions)@." u.Use_case.name
              (if Sim.within_contract res then "contracts met" else "CONTRACT VIOLATION")
              (List.length res.Sim.conns) res.Sim.collisions;
            (u.Use_case.name, res))
          d.DF.all_use_cases
      in
      Option.iter (fun path -> write_sim_json path results) sim_json;
      `Ok ())

let simulate_cmd =
  let doc = "Design a NoC, then simulate every use-case configuration slot by slot." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      ret
        (const run_simulate $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg
       $ nis_arg $ xy_arg $ duration_arg $ reference_sim_arg $ sim_json_arg $ spec_arg
       $ no_cache_arg $ cache_dir_arg $ trace_arg $ metrics_arg))

(* --- export ------------------------------------------------------------------------ *)

let json_arg =
  let doc = "Write the design as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let dot_arg =
  let doc = "Write the topology/placement as Graphviz DOT to $(docv)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let dot_uc_arg =
  let doc = "Write use-case $(docv)'s configuration heat map as DOT to FILE.dot." in
  Arg.(value & opt (some int) None & info [ "dot-use-case" ] ~docv:"UC" ~doc)

let run_export bench use_cases seed freq slots nis xy json dot dot_uc no_cache cache_dir trace
    metrics =
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  match load_benchmark ~name:bench ~use_cases ~seed with
  | Error msg -> `Error (false, msg)
  | Ok ucs -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    match DF.run ~config (DF.spec_of_use_cases ~name:bench ucs) with
    | Error msg -> `Error (false, msg)
    | Ok d ->
      let write file text =
        Out_channel.with_open_text file (fun oc -> output_string oc text);
        Format.printf "wrote %s (%d bytes)@." file (String.length text)
      in
      (match json with
      | Some file -> write file (Noc_export.Design_export.design_to_string d)
      | None -> ());
      (match dot with
      | Some file -> write file (Noc_export.Dot.topology d.DF.mapping)
      | None -> ());
      (match dot_uc with
      | Some uc ->
        write
          (Printf.sprintf "%s_uc%d.dot" bench uc)
          (Noc_export.Dot.use_case d.DF.mapping ~use_case:uc)
      | None -> ());
      if json = None && dot = None && dot_uc = None then
        print_endline (Noc_export.Design_export.design_to_string d);
      `Ok ())

let export_cmd =
  let doc = "Design a NoC and export it as JSON and/or Graphviz DOT." in
  Cmd.v
    (Cmd.info "export" ~doc)
    Term.(
      ret
        (const run_export $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
       $ xy_arg $ json_arg $ dot_arg $ dot_uc_arg $ no_cache_arg $ cache_dir_arg $ trace_arg
       $ metrics_arg))

(* --- explore ------------------------------------------------------------------------ *)

let torus_axis_arg =
  let doc = "Also explore torus grids." in
  Arg.(value & flag & info [ "torus" ] ~doc)

let cold_arg =
  let doc =
    "Disable placement-seeded warm starts: every sweep point runs the full growth search from \
     scratch.  Slower; the feasibility set and switch counts are identical either way."
  in
  Arg.(value & flag & info [ "cold" ] ~doc)

let explore_json_arg =
  let doc =
    "Write the sweep's points as JSON to $(docv) instead of printing the table.  The output is \
     deterministic, so two runs over the same benchmark can be compared byte for byte (the CI \
     cache-correctness check diffs a cold and a cache-warmed run this way)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

(* The rendering lives in [Noc_serve.Payload] so a served explore
   response and this file are byte-identical by construction. *)
let points_to_json = Noc_serve.Payload.points

let run_explore bench use_cases seed torus cold no_prune jobs json spec_file no_cache cache_dir
    trace metrics =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  let problem =
    match spec_file with
    | Some _ -> (
      (* A spec file may declare compound use-cases and flow groups; expand
         it the same way the design flow does so the sweep sees them. *)
      match load_spec ~bench ~use_cases ~seed ~spec_file with
      | Ok spec ->
        let all, _compounds, groups = DF.expand spec in
        Ok (all, groups)
      | Error msg -> Error msg)
    | None -> (
      match load_benchmark ~name:bench ~use_cases ~seed with
      | Ok ucs -> Ok (ucs, List.mapi (fun i _ -> [ i ]) ucs)
      | Error msg -> Error msg)
  in
  match problem with
  | Error msg -> `Error (false, msg)
  | Ok (ucs, groups) ->
    let axes =
      let base = Noc_power.Design_space.default_axes in
      if torus then
        { base with Noc_power.Design_space.topologies = [ Mesh.Mesh; Mesh.Torus ] }
      else base
    in
    let points =
      Noc_power.Design_space.explore ~axes ~warm:(not cold) ~prune:(not no_prune)
        ~config:Config.default ~groups ucs
    in
    (match json with
    | Some file ->
      Out_channel.with_open_text file (fun oc -> output_string oc (points_to_json points));
      Format.printf "wrote %s (%d points)@." file (List.length points)
    | None -> Noc_power.Design_space.print points);
    `Ok ()

let explore_cmd =
  let doc = "Explore the (frequency x slot-table x topology) design space and mark the Pareto front." in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      ret
        (const run_explore $ bench_arg $ use_cases_arg $ seed_arg $ torus_axis_arg $ cold_arg
       $ no_prune_arg $ jobs_arg $ explore_json_arg $ spec_arg $ no_cache_arg $ cache_dir_arg
       $ trace_arg $ metrics_arg))

(* --- report ------------------------------------------------------------------------ *)

let run_report bench use_cases seed freq slots nis xy spec_file no_cache cache_dir trace metrics =
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  match load_spec ~bench ~use_cases ~seed ~spec_file with
  | Error msg -> `Error (false, msg)
  | Ok spec -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    match DF.run ~config spec with
    | Error msg -> `Error (false, msg)
    | Ok d ->
      Noc_report.Design_report.print (Noc_report.Design_report.build d);
      `Ok ())

let report_cmd =
  let doc = "Design a NoC and print the full analytic report (guarantees, slacks, utilization, buffers, switching costs)." in
  Cmd.v
    (Cmd.info "report" ~doc)
    Term.(
      ret
        (const run_report $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
       $ xy_arg $ spec_arg $ no_cache_arg $ cache_dir_arg $ trace_arg $ metrics_arg))

(* --- lint ------------------------------------------------------------------------ *)

let lint_json_arg =
  let doc = "Emit the diagnostics and the feasibility certificate as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

let deep_arg =
  let doc = "Also run the full design flow and the post-mapping design passes." in
  Arg.(value & flag & info [ "deep" ] ~doc)

let run_lint bench use_cases seed freq slots nis xy json deep jobs spec_file trace metrics =
  apply_jobs jobs;
  apply_obs trace metrics;
  let config = make_config ~freq ~slots ~nis ~xy in
  let doc_res =
    match spec_file with
    | Some file -> (
      match Noc_core.Spec_parser.doc_of_file file with
      | Ok doc -> Ok doc
      | Error e -> Error (Format.asprintf "%s: %a" file Noc_core.Spec_parser.pp_error e))
    | None -> (
      match load_benchmark ~name:bench ~use_cases ~seed with
      | Ok ucs ->
        let spec = DF.spec_of_use_cases ~name:bench ucs in
        Ok
          (Noc_core.Spec_parser.parse_doc ~name:spec.DF.name
             (Noc_core.Spec_parser.to_text spec))
      | Error msg -> Error msg)
  in
  match doc_res with
  | Error msg -> `Error (false, msg)
  | Ok doc ->
    let report = Noc_analysis.Analyzer.analyze_doc ~config ~deep doc in
    if json then print_endline (Noc_analysis.Analyzer.render_json report)
    else print_string (Noc_analysis.Analyzer.render_text report);
    (match Noc_analysis.Analyzer.exit_code report with 0 -> `Ok () | n -> exit n)

let lint_cmd =
  let doc =
    "Statically analyze a spec or benchmark: well-formedness passes, feasibility certificates, \
     and (with $(b,--deep)) the post-mapping design passes.  Exits 2 on errors, 1 on warnings, \
     0 when clean."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      ret
        (const run_lint $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg
       $ xy_arg $ lint_json_arg $ deep_arg $ jobs_arg $ spec_arg $ trace_arg $ metrics_arg))

(* --- certify --------------------------------------------------------------------- *)

let certify_json_arg =
  let doc = "Emit the full signed certificate record as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

let certify_from_arg =
  let doc =
    "Audit a Mapping_codec dump (see $(b,map --dump)) instead of designing in-process.  The \
     dump's own recorded configuration is certified; the spec or benchmark still supplies the \
     traffic the design claims to serve."
  in
  Arg.(value & opt (some string) None & info [ "from" ] ~docv:"DUMP" ~doc)

let run_certify bench use_cases seed freq slots nis xy json from jobs spec_file no_cache
    cache_dir trace metrics =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  match load_spec ~bench ~use_cases ~seed ~spec_file with
  | Error msg -> `Error (false, msg)
  | Ok spec -> (
    let module C = Noc_analysis.Certify in
    let finish cert =
      if json then print_endline (Noc_export.Json.to_string ~indent:2 (C.to_json cert))
      else print_string (C.render_text cert);
      match C.exit_code cert with 0 -> `Ok () | n -> exit n
    in
    match from with
    | Some file -> (
      let text =
        try Ok (In_channel.with_open_bin file In_channel.input_all)
        with Sys_error msg -> Error msg
      in
      match text with
      | Error msg -> `Error (false, msg)
      | Ok text -> (
        match Noc_core.Mapping_codec.decode text with
        | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
        | Ok mapping ->
          let all, _, _ = DF.expand spec in
          finish (C.certify ~name:spec.DF.name mapping all)))
    | None -> (
      let config = make_config ~freq ~slots ~nis ~xy in
      match DF.run ~config spec with
      | Error msg -> `Error (false, msg)
      | Ok d -> finish (C.certify ~name:spec.DF.name d.DF.mapping d.DF.all_use_cases)))

let certify_cmd =
  let doc =
    "Independently certify a mapped design: re-derive slot exclusivity, reserved bandwidth, \
     route well-formedness, NI bounds and static worst-case latency bounds on a code path \
     separate from the mapping engines, and emit a signed certificate.  Exits 2 on any finding, \
     0 when clean."
  in
  Cmd.v
    (Cmd.info "certify" ~doc)
    Term.(
      ret
        (const run_certify $ bench_arg $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg
       $ nis_arg $ xy_arg $ certify_json_arg $ certify_from_arg $ jobs_arg $ spec_arg
       $ no_cache_arg $ cache_dir_arg $ trace_arg $ metrics_arg))

(* --- cache ------------------------------------------------------------------------ *)

let cache_action_arg =
  let doc = "What to do: $(b,stats) reports the store's contents and cumulative counters; $(b,clear) deletes every entry under the directory." in
  Arg.(value & pos 0 (enum [ ("stats", `Stats); ("clear", `Clear) ]) `Stats & info [] ~docv:"ACTION" ~doc)

let run_cache action cache_dir =
  let module RC = Noc_util.Result_cache in
  match cache_dir with
  | None -> `Error (false, "nocmap cache requires --cache-dir")
  | Some dir -> (
    match action with
    | `Clear ->
      let removed = RC.clear_disk ~dir in
      Format.printf "removed %d files under %s@." removed dir;
      `Ok ()
    | `Stats ->
      let fingerprint = Noc_util.Build_info.fingerprint () in
      Format.printf "build: %s (current)@." (Noc_util.Build_info.describe ());
      let totals = ref RC.zero_stats in
      (match RC.disk_summary ~dir with
      | [] -> Format.printf "store %s: empty@." dir
      | versions ->
        Format.printf "store %s:@." dir;
        List.iter
          (fun (version, entries, bytes) ->
            let marker = if String.equal version fingerprint then " (current build)" else "" in
            Format.printf "  v-%s: %d entries, %d bytes%s@." version entries bytes marker;
            match RC.read_persisted_stats ~dir ~version with
            | None -> ()
            | Some s ->
              totals := RC.add_stats !totals s;
              Format.printf
                "    cumulative: %d memory hits, %d disk hits, %d misses, %d stores, %d \
                 evictions, %d disk errors@."
                s.RC.memory_hits s.RC.disk_hits s.RC.misses s.RC.stores s.RC.evictions
                s.RC.disk_errors)
          versions);
      (* Replay the cross-build totals into the unified metrics registry and
         render them through it, so this report and `nocmap obs stats` speak
         the same counter names. *)
      let s = !totals in
      List.iter
        (fun (name, v) -> if v > 0 then Metrics.incr ~by:v (Metrics.counter name))
        [
          ("cache.memory_hits", s.RC.memory_hits);
          ("cache.disk_hits", s.RC.disk_hits);
          ("cache.misses", s.RC.misses);
          ("cache.stores", s.RC.stores);
          ("cache.evictions", s.RC.evictions);
          ("cache.disk_errors", s.RC.disk_errors);
        ];
      Format.printf "unified registry view (all versions):@.";
      print_string (Metrics.render_text (Metrics.snapshot ()));
      `Ok ())

let cache_cmd =
  let doc =
    "Inspect or clear a persistent mapping cache directory (see $(b,--cache-dir) on the design \
     commands).  Entries from other builds are kept until $(b,clear) — they become reusable \
     again when that exact build runs."
  in
  Cmd.v (Cmd.info "cache" ~doc) Term.(ret (const run_cache $ cache_action_arg $ cache_dir_arg))

(* --- remap ----------------------------------------------------------------------- *)

let remap_from_arg =
  let doc = "The previous revision's spec file (the completed design to churn from)." in
  Arg.(required & opt (some string) None & info [ "from" ] ~docv:"OLD.spec" ~doc)

let remap_to_arg =
  let doc = "The new revision's spec file." in
  Arg.(required & opt (some string) None & info [ "to" ] ~docv:"NEW.spec" ~doc)

let reference_arg =
  let doc =
    "Use the naive reference remapper (no cache, every sub-problem computed directly).  The \
     result is byte-identical to the default incremental engine — this is the oracle the \
     correctness CI compares against."
  in
  Arg.(value & flag & info [ "reference" ] ~doc)

let remap_json_arg =
  let doc = "Write the remapped design as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let run_remap from_file to_file reference freq slots nis xy sequential no_prune jobs json dump
    certify no_cache cache_dir trace metrics =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  let parse file =
    match Noc_core.Spec_parser.parse_file file with
    | Ok spec -> Ok spec
    | Error e -> Error (Format.asprintf "%s: %a" file Noc_core.Spec_parser.pp_error e)
  in
  match (parse from_file, parse to_file) with
  | Error msg, _ | _, Error msg -> `Error (false, msg)
  | Ok old_spec, Ok new_spec -> (
    let config = make_config ~freq ~slots ~nis ~xy in
    let parallel = not sequential and prune = not no_prune in
    match DF.run ~config ~parallel ~prune old_spec with
    | Error msg -> `Error (false, msg)
    | Ok old_design -> (
      let mode = if reference then Noc_core.Remap.Reference else Noc_core.Remap.Incremental in
      match Noc_core.Remap.remap ~config ~mode ~parallel ~prune ~old:old_design new_spec with
      | Error msg -> `Error (false, msg)
      | Ok o ->
        let open Noc_core.Remap in
        Format.printf "remap %s -> %s: %s@." old_spec.DF.name new_spec.DF.name
          (match o.path with
          | Reused -> "reused (no routing ran)"
          | Delta n -> Printf.sprintf "delta (%d dirty group%s re-routed)" n (if n = 1 then "" else "s")
          | Warm_placement -> "warm placement (whole problem re-routed on the old mesh)"
          | Regrown -> "regrown (full growth search)");
        Format.printf "groups: %d clean, %d dirty, %d removed@." (List.length o.delta.clean)
          (List.length o.delta.dirty)
          (List.length o.delta.removed);
        print_design new_spec.DF.name o.design.DF.mapping (DF.verified o.design);
        (match Noc_core.Mapping_codec.digest o.design.DF.mapping with
        | Some d -> Format.printf "mapping digest: %s@." d
        | None -> ());
        (match json with
        | Some file ->
          Out_channel.with_open_text file (fun oc ->
              output_string oc (Noc_export.Design_export.design_to_string o.design));
          Format.printf "wrote %s@." file
        | None -> ());
        match emit_dump dump o.design.DF.mapping with
        | `Ok () ->
          (* Certify the stitched design as a whole — not just the dirty
             groups the remapper re-routed. *)
          if certify then
            match certify_design new_spec.DF.name o.design with
            | Ok () -> `Ok ()
            | Error msg -> `Error (false, msg)
          else `Ok ()
        | e -> e))

let remap_cmd =
  let doc =
    "Incrementally re-map a churned spec: re-route only the switching-graph components the \
     delta touches, keeping every unaffected group's configuration byte-identical to the \
     $(b,--from) design."
  in
  Cmd.v
    (Cmd.info "remap" ~doc)
    Term.(
      ret
        (const run_remap $ remap_from_arg $ remap_to_arg $ reference_arg $ freq_arg $ slots_arg
       $ nis_arg $ xy_arg $ sequential_arg $ no_prune_arg $ jobs_arg $ remap_json_arg
       $ dump_arg $ certify_flag_arg $ no_cache_arg $ cache_dir_arg $ trace_arg $ metrics_arg))

(* --- serve / client -------------------------------------------------------------- *)

module Protocol = Noc_serve.Protocol
module Server = Noc_serve.Server
module Client = Noc_serve.Client

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let max_queue_arg =
  let doc =
    "Pending-request cap across all clients; requests beyond it are shed with an \
     $(i,overloaded) failure carrying $(b,retry_after_ms)."
  in
  Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)

let max_inflight_arg =
  let doc = "Per-client cap on queued requests; beyond it requests fail with $(i,too-many-inflight)." in
  Arg.(value & opt int 8 & info [ "max-inflight" ] ~docv:"N" ~doc)

let linger_ms_arg =
  let doc =
    "Hold a non-empty batch open this long before executing, so concurrent clients' requests \
     coalesce into one batch.  0 executes as soon as the sockets are drained (requests \
     arriving while a batch computes still form the next batch naturally)."
  in
  Arg.(value & opt float 0.0 & info [ "linger-ms" ] ~docv:"MS" ~doc)

let retry_after_ms_arg =
  let doc = "Backoff hint attached to load-shed failures." in
  Arg.(value & opt int 50 & info [ "retry-after-ms" ] ~docv:"MS" ~doc)

let run_serve socket max_queue max_inflight linger_ms retry_after_ms jobs no_cache cache_dir
    trace metrics =
  apply_jobs jobs;
  apply_cache no_cache cache_dir;
  apply_obs trace metrics;
  let cfg =
    {
      Server.socket_path = socket;
      max_queue;
      max_inflight;
      linger_ms;
      retry_after_ms;
      jobs = None;
      install_signals = true;
    }
  in
  Format.printf "nocmap serve: listening on %s (build %s)@." socket
    (Noc_util.Build_info.fingerprint ());
  Format.print_flush ();
  match Server.run cfg with
  | Ok () ->
    Format.printf "nocmap serve: drained and stopped@.";
    `Ok ()
  | Error msg -> `Error (false, msg)

let serve_cmd =
  let doc =
    "Serve mapping requests over a Unix-domain socket: line-delimited JSON requests \
     ($(i,map), $(i,explore), $(i,lint), $(i,certify), $(i,remap)) from concurrent clients, \
     scheduled in batches onto the shared domain pool with single-flight coalescing of \
     identical problems, merged explore grids, and admission control.  Responses are \
     byte-identical to the one-shot CLI's outputs.  SIGTERM (or a $(i,shutdown) request) \
     drains in-flight work, flushes the persistent cache tier and exits cleanly."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run_serve $ socket_arg $ max_queue_arg $ max_inflight_arg $ linger_ms_arg
       $ retry_after_ms_arg $ jobs_arg $ no_cache_arg $ cache_dir_arg $ trace_arg $ metrics_arg))

(* The client ships spec text, never a file path: a benchmark name
   becomes its canonical [Spec_parser.to_text] rendering (which the
   one-shot commands' spec path also parses), and [--spec FILE] ships
   the raw bytes with [parse_file]'s fallback name — so the daemon
   sees the exact problem the equivalent one-shot invocation sees and
   responses compare byte for byte. *)
let client_spec_text ~bench ~use_cases ~seed ~spec_file =
  match spec_file with
  | Some file -> (
    try Ok (Filename.remove_extension (Filename.basename file),
            In_channel.with_open_bin file In_channel.input_all)
    with Sys_error msg -> Error msg)
  | None -> (
    match load_benchmark ~name:bench ~use_cases ~seed with
    | Ok ucs ->
      let spec = DF.spec_of_use_cases ~name:bench ucs in
      Ok (spec.DF.name, Noc_core.Spec_parser.to_text spec)
    | Error msg -> Error msg)

let client_action_arg =
  let doc =
    "What to ask the daemon: $(b,ping), $(b,map), $(b,explore), $(b,lint), $(b,certify), \
     $(b,remap), $(b,stats), $(b,shutdown), or $(b,bench) (the multi-connection load driver)."
  in
  Arg.(
    value
    & pos 0
        (enum
           [
             ("ping", `Ping); ("map", `Map); ("explore", `Explore); ("lint", `Lint);
             ("certify", `Certify); ("remap", `Remap); ("stats", `Stats);
             ("shutdown", `Shutdown); ("bench", `Bench);
           ])
        `Ping
    & info [] ~docv:"ACTION" ~doc)

let client_bench_arg =
  let doc = "Benchmark for map/explore/lint/certify/bench (ignored with --spec)." in
  Arg.(value & pos 1 string "example1" & info [] ~docv:"BENCHMARK" ~doc)

let client_out_arg =
  let doc = "Write the response payload to $(docv) instead of stdout (exact bytes, cmp-able)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let client_from_arg =
  let doc = "Old-revision spec file (remap only)." in
  Arg.(value & opt (some string) None & info [ "from" ] ~docv:"OLD.spec" ~doc)

let client_to_arg =
  let doc = "New-revision spec file (remap only)." in
  Arg.(value & opt (some string) None & info [ "to" ] ~docv:"NEW.spec" ~doc)

let connections_arg =
  let doc = "Concurrent connections for $(b,bench)." in
  Arg.(value & opt int 8 & info [ "connections" ] ~docv:"N" ~doc)

let repeat_arg =
  let doc = "Rounds per connection for $(b,bench)." in
  Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"N" ~doc)

let bench_op_arg =
  let doc = "Operation the $(b,bench) load driver issues." in
  Arg.(
    value
    & opt (enum [ ("map", `Map); ("explore", `Explore); ("lint", `Lint); ("certify", `Certify) ])
        `Map
    & info [ "op" ] ~docv:"OP" ~doc)

let run_client action socket bench use_cases seed freq slots nis xy deep torus from_file to_file
    out connections repeat bench_op spec_file =
  let config = { Protocol.freq_mhz = freq; slots; nis_per_switch = nis; xy } in
  let spec_op kind =
    match client_spec_text ~bench ~use_cases ~seed ~spec_file with
    | Error msg -> Error msg
    | Ok (name, spec) -> (
      match kind with
      | `Map -> Ok (Protocol.Map { name; spec; config })
      | `Explore ->
        Ok (Protocol.Explore { name; spec; config; frequencies = None; slot_counts = None; torus })
      | `Lint -> Ok (Protocol.Lint { name; spec; config; deep })
      | `Certify -> Ok (Protocol.Certify { name; spec; config }))
  in
  let op =
    match action with
    | `Ping -> Ok Protocol.Ping
    | `Stats -> Ok Protocol.Stats
    | `Shutdown -> Ok Protocol.Shutdown
    | (`Map | `Explore | `Lint | `Certify) as kind -> spec_op kind
    | `Remap -> (
      match (from_file, to_file) with
      | Some f, Some t -> (
        let read file =
          try Ok (Filename.remove_extension (Filename.basename file),
                  In_channel.with_open_bin file In_channel.input_all)
          with Sys_error msg -> Error msg
        in
        match (read f, read t) with
        | Ok (from_name, from_spec), Ok (to_name, to_spec) ->
          Ok (Protocol.Remap { from_name; from_spec; to_name; to_spec; config })
        | Error msg, _ | _, Error msg -> Error msg)
      | _ -> Error "client remap requires --from and --to")
    | `Bench -> spec_op bench_op
  in
  match op with
  | Error msg -> `Error (false, msg)
  | Ok op -> (
    match action with
    | `Bench -> (
      match Client.drive ~socket ~connections ~repeat [ op ] with
      | Ok stats ->
        print_endline (Client.stats_to_json stats);
        `Ok ()
      | Error msg -> `Error (false, msg))
    | _ -> (
      match Client.connect ~socket () with
      | Error msg -> `Error (false, msg)
      | Ok conn -> (
        let finish r =
          Client.close conn;
          r
        in
        match Client.request conn op with
        | Error msg -> finish (`Error (false, msg))
        | Ok (Protocol.Failure { code; message; _ }) ->
          finish
            (`Error
               (false,
                Printf.sprintf "%s: %s" (Protocol.error_code_to_string code) message))
        | Ok (Protocol.Result { payload; _ }) ->
          (match out with
          | Some file ->
            Out_channel.with_open_text file (fun oc -> output_string oc payload);
            Format.printf "wrote %s (%d bytes)@." file (String.length payload)
          | None -> print_string payload);
          finish (`Ok ()))))

let client_spec_file_arg =
  let doc = "Send the raw contents of $(docv) as the spec instead of a named benchmark." in
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)

let client_cmd =
  let doc =
    "Talk to a running $(b,nocmap serve) daemon: issue one request and print (or $(b,--out)) \
     the payload — byte-identical to the equivalent one-shot command's output — or drive a \
     multi-connection load test with $(b,bench)."
  in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      ret
        (const run_client $ client_action_arg $ socket_arg $ client_bench_arg
       $ use_cases_arg $ seed_arg $ freq_arg $ slots_arg $ nis_arg $ xy_arg $ deep_arg
       $ torus_axis_arg $ client_from_arg $ client_to_arg $ client_out_arg $ connections_arg
       $ repeat_arg $ bench_op_arg $ client_spec_file_arg))

(* --- obs ------------------------------------------------------------------------- *)

module J = Noc_export.Json

let parse_json_file file =
  match (try Ok (In_channel.with_open_bin file In_channel.input_all) with Sys_error msg -> Error msg)
  with
  | Error msg -> Error msg
  | Ok text -> (
    match J.parse text with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: %s" file msg))

(* Rebuild a [Metrics.snapshot] from a metrics JSON file, checking the
   schema as it goes — this is also the metrics half of [obs validate]:
   the three sections must be objects, counters non-negative integers,
   and each histogram's min <= p50 <= p90 <= p99 <= max when non-empty. *)
let snapshot_of_json v =
  let ( let* ) = Result.bind in
  let section name =
    match J.member name v with
    | Some (J.Obj fields) -> Ok fields
    | Some _ -> Error (Printf.sprintf "\"%s\" must be an object" name)
    | None -> Error (Printf.sprintf "missing \"%s\" object" name)
  in
  let* counter_fields = section "counters" in
  let* gauge_fields = section "gauges" in
  let* histogram_fields = section "histograms" in
  let* counters =
    List.fold_left
      (fun acc (n, x) ->
        let* acc = acc in
        match x with
        | J.Int i when i >= 0 -> Ok ((n, i) :: acc)
        | _ -> Error (Printf.sprintf "counter \"%s\" must be a non-negative integer" n))
      (Ok []) counter_fields
  in
  let* gauges =
    List.fold_left
      (fun acc (n, x) ->
        let* acc = acc in
        match J.to_float x with
        | Some f -> Ok ((n, f) :: acc)
        | None -> Error (Printf.sprintf "gauge \"%s\" must be a number" n))
      (Ok []) gauge_fields
  in
  let* histograms =
    List.fold_left
      (fun acc (n, x) ->
        let* acc = acc in
        let field k =
          match Option.bind (J.member k x) J.to_float with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "histogram \"%s\": missing numeric \"%s\"" n k)
        in
        let* count = field "count" in
        let* sum = field "sum" in
        let* mn = field "min" in
        let* mx = field "max" in
        let* p50 = field "p50" in
        let* p90 = field "p90" in
        let* p99 = field "p99" in
        if not (Float.is_integer count && count >= 0.0) then
          Error (Printf.sprintf "histogram \"%s\": \"count\" must be a non-negative integer" n)
        else if count > 0.0 && not (mn <= p50 && p50 <= p90 && p90 <= p99 && p99 <= mx) then
          Error (Printf.sprintf "histogram \"%s\": percentiles out of order" n)
        else
          Ok
            (( n,
               {
                 Metrics.count = int_of_float count;
                 sum;
                 min = mn;
                 max = mx;
                 p50;
                 p90;
                 p99;
               } )
            :: acc))
      (Ok []) histogram_fields
  in
  Ok
    {
      Metrics.counters = List.rev counters;
      gauges = List.rev gauges;
      histograms = List.rev histograms;
    }

(* Chrome trace_event well-formedness: a [traceEvents] list whose span
   events carry name/ph/pid/tid and non-negative microsecond ts/dur,
   listed in non-decreasing [ts] order, and properly nested per thread
   (two spans on one tid are either disjoint or one contains the other).
   Returns the span names seen, for [--expect-span]. *)
let validate_trace v =
  let ( let* ) = Result.bind in
  let* events =
    match J.member "traceEvents" v with
    | Some (J.List l) -> Ok l
    | _ -> Error "missing \"traceEvents\" list"
  in
  let str k e = match J.member k e with Some (J.String s) -> Some s | _ -> None in
  let num k e = Option.bind (J.member k e) J.to_float in
  let eps = 5e-3 (* µs: tolerance for float rounding of ts/dur *) in
  let rec check i last_ts stacks spans names = function
    | [] ->
      if spans = 0 then Error "trace contains no complete (ph=X) span events" else Ok names
    | e :: rest ->
      let where = Printf.sprintf "traceEvents[%d]" i in
      let* name =
        match str "name" e with Some n -> Ok n | None -> Error (where ^ ": missing \"name\"")
      in
      let* ph =
        match str "ph" e with Some p -> Ok p | None -> Error (where ^ ": missing \"ph\"")
      in
      (match ph with
      | "M" -> check (i + 1) last_ts stacks spans names rest
      | "X" ->
        let* ts =
          match num "ts" e with
          | Some t when t >= 0.0 -> Ok t
          | _ -> Error (where ^ ": \"ts\" must be a non-negative number")
        in
        let* dur =
          match num "dur" e with
          | Some d when d >= 0.0 -> Ok d
          | _ -> Error (where ^ ": \"dur\" must be a non-negative number")
        in
        let* tid =
          match J.member "tid" e with
          | Some (J.Int t) -> Ok t
          | _ -> Error (where ^ ": \"tid\" must be an integer")
        in
        let* () =
          if J.member "pid" e = None then Error (where ^ ": missing \"pid\"") else Ok ()
        in
        let* () =
          if ts +. eps < last_ts then
            Error (Printf.sprintf "%s: timestamps not sorted (%g after %g)" where ts last_ts)
          else Ok ()
        in
        let stop = ts +. dur in
        let stack = Option.value (List.assoc_opt tid stacks) ~default:[] in
        let rec pop = function top :: below when top <= ts +. eps -> pop below | s -> s in
        let stack = pop stack in
        let* () =
          match stack with
          | top :: _ when stop > top +. eps ->
            Error
              (Printf.sprintf "%s: span \"%s\" overlaps its enclosing span on tid %d" where
                 name tid)
          | _ -> Ok ()
        in
        let stacks = (tid, stop :: stack) :: List.remove_assoc tid stacks in
        check (i + 1) ts stacks (spans + 1) (name :: names) rest
      | other -> Error (Printf.sprintf "%s: unsupported phase \"%s\"" where other))
  in
  check 0 neg_infinity [] 0 [] events

let obs_trace_arg =
  let doc = "The trace file to read." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let obs_metrics_arg =
  let doc = "The metrics file to read." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let obs_json_arg =
  let doc = "Emit the snapshot as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let expect_span_arg =
  let doc = "Fail validation unless a span named $(docv) appears in the trace (repeatable)." in
  Arg.(value & opt_all string [] & info [ "expect-span" ] ~docv:"NAME" ~doc)

let run_obs_stats metrics_file json =
  let snap =
    match metrics_file with
    | None -> Ok (Metrics.snapshot ())
    | Some file -> (
      match parse_json_file file with
      | Error msg -> Error msg
      | Ok v -> (
        match snapshot_of_json v with
        | Ok s -> Ok s
        | Error msg -> Error (Printf.sprintf "%s: %s" file msg)))
  in
  match snap with
  | Error msg -> `Error (false, msg)
  | Ok snap ->
    print_string (if json then Metrics.render_json snap else Metrics.render_text snap);
    `Ok ()

(* The metrics half of [obs summary]: pool and serve health at a
   glance — worker/utilization/queue gauges first, then every
   histogram with its percentiles. *)
let summarize_metrics file =
  match parse_json_file file with
  | Error msg -> Error msg
  | Ok v -> (
    match snapshot_of_json v with
    | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
    | Ok snap ->
      let gauges = snap.Metrics.gauges in
      if gauges <> [] then begin
        Printf.printf "%-28s %14s\n" "gauge" "value";
        List.iter (fun (n, v) -> Printf.printf "%-28s %14.3f\n" n v) gauges
      end;
      if snap.Metrics.histograms <> [] then begin
        Printf.printf "%-28s %10s %14s %14s %14s\n" "histogram" "count" "p50" "p99" "max";
        List.iter
          (fun (n, h) ->
            Printf.printf "%-28s %10d %14.3f %14.3f %14.3f\n" n h.Metrics.count h.Metrics.p50
              h.Metrics.p99 h.Metrics.max)
          snap.Metrics.histograms
      end;
      Ok ())

let run_obs_summary trace_file metrics_file =
  let metrics_res =
    match metrics_file with
    | None -> `Ok ()
    | Some file -> (
      match summarize_metrics file with Ok () -> `Ok () | Error msg -> `Error (false, msg))
  in
  match (metrics_res, trace_file) with
  | (`Error _ as e), _ -> e
  | `Ok (), None ->
    if metrics_file = None then
      `Error (false, "obs summary requires --trace FILE and/or --metrics FILE")
    else `Ok ()
  | `Ok (), Some file -> (
    match parse_json_file file with
    | Error msg -> `Error (false, msg)
    | Ok v -> (
      match validate_trace v with
      | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
      | Ok _ ->
        let events = match J.member "traceEvents" v with Some (J.List l) -> l | _ -> [] in
        let tbl = Hashtbl.create 32 in
        List.iter
          (fun e ->
            match J.member "ph" e with
            | Some (J.String "X") ->
              let name =
                match J.member "name" e with Some (J.String n) -> n | _ -> "?"
              in
              let dur_ms =
                Option.value (Option.bind (J.member "dur" e) J.to_float) ~default:0.0 /. 1e3
              in
              let cpu_ms =
                Option.value
                  (Option.bind (Option.bind (J.member "args" e) (J.member "cpu_ms")) J.to_float)
                  ~default:0.0
              in
              let c, tot, mx, cpu =
                Option.value (Hashtbl.find_opt tbl name) ~default:(0, 0.0, 0.0, 0.0)
              in
              Hashtbl.replace tbl name
                (c + 1, tot +. dur_ms, Float.max mx dur_ms, cpu +. cpu_ms)
            | _ -> ())
          events;
        let rows = Hashtbl.fold (fun n r acc -> (n, r) :: acc) tbl [] in
        let rows =
          List.sort (fun (_, (_, a, _, _)) (_, (_, b, _, _)) -> compare (b : float) a) rows
        in
        Printf.printf "%-28s %8s %12s %12s %12s %12s\n" "span" "count" "total ms" "mean ms"
          "max ms" "cpu ms";
        List.iter
          (fun (n, (c, tot, mx, cpu)) ->
            Printf.printf "%-28s %8d %12.3f %12.3f %12.3f %12.3f\n" n c tot
              (tot /. float_of_int c) mx cpu)
          rows;
        `Ok ()))

let run_obs_validate trace_file metrics_file expect =
  if trace_file = None && metrics_file = None then
    `Error (false, "obs validate needs --trace and/or --metrics")
  else
    let trace_res =
      match trace_file with
      | None -> Ok ()
      | Some file -> (
        match parse_json_file file with
        | Error msg -> Error msg
        | Ok v -> (
          match validate_trace v with
          | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
          | Ok names ->
            let missing = List.filter (fun n -> not (List.mem n names)) expect in
            if missing <> [] then
              Error
                (Printf.sprintf "%s: expected span(s) not found: %s" file
                   (String.concat ", " missing))
            else begin
              Printf.printf "trace %s: OK (%d spans)\n" file (List.length names);
              Ok ()
            end))
    in
    let metrics_res =
      match metrics_file with
      | None -> Ok ()
      | Some file -> (
        match parse_json_file file with
        | Error msg -> Error msg
        | Ok v -> (
          match snapshot_of_json v with
          | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
          | Ok snap ->
            Printf.printf "metrics %s: OK (%d counters, %d gauges, %d histograms)\n" file
              (List.length snap.Metrics.counters)
              (List.length snap.Metrics.gauges)
              (List.length snap.Metrics.histograms);
            Ok ()))
    in
    match (trace_res, metrics_res) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok (), Ok () -> `Ok ()

let obs_stats_cmd =
  let doc =
    "Print a metrics snapshot: from a $(b,--metrics) file written by a traced run, or the live \
     registry of this process when no file is given."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(ret (const run_obs_stats $ obs_metrics_arg $ obs_json_arg))

let obs_summary_cmd =
  let doc =
    "Aggregate observability artifacts: per-span wall/CPU totals from a $(b,--trace) file, \
     and gauge/histogram health (pool workers, utilization, queue depths, serve latency) from \
     a $(b,--metrics) file."
  in
  Cmd.v
    (Cmd.info "summary" ~doc)
    Term.(ret (const run_obs_summary $ obs_trace_arg $ obs_metrics_arg))

let obs_validate_cmd =
  let doc =
    "Check observability artifacts: the trace must be well-formed Chrome trace_event JSON \
     (sorted timestamps, proper per-thread span nesting) and the metrics file must match the \
     registry schema.  Exits non-zero on any violation."
  in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(ret (const run_obs_validate $ obs_trace_arg $ obs_metrics_arg $ expect_span_arg))

let obs_cmd =
  let doc = "Inspect and validate observability artifacts ($(b,--trace) / $(b,--metrics) files)." in
  Cmd.group (Cmd.info "obs" ~doc) [ obs_stats_cmd; obs_summary_cmd; obs_validate_cmd ]

(* --- main ------------------------------------------------------------------------ *)

let () =
  let doc = "multi-use-case NoC mapping (Murali et al., DATE 2006)" in
  let info = Cmd.info "nocmap" ~version:(Noc_util.Build_info.describe ()) ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            map_cmd;
            experiments_cmd;
            generate_cmd;
            simulate_cmd;
            export_cmd;
            explore_cmd;
            report_cmd;
            lint_cmd;
            certify_cmd;
            remap_cmd;
            cache_cmd;
            serve_cmd;
            client_cmd;
            obs_cmd;
          ]))
