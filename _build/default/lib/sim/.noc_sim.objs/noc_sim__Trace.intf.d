lib/sim/trace.mli: Noc_util
