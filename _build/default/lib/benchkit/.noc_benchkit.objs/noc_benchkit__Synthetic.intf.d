lib/benchkit/synthetic.mli: Noc_traffic Noc_util
