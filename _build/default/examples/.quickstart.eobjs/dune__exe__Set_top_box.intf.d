examples/set_top_box.mli:
