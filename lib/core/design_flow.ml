module Use_case = Noc_traffic.Use_case
module Mesh = Noc_arch.Mesh
module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let m_runs = Metrics.counter "flow.runs"
let m_verify_checks = Metrics.counter "verify.checks"

type spec = {
  name : string;
  use_cases : Use_case.t list;
  parallel : int list list;
  smooth : (int * int) list;
}

type t = {
  spec : spec;
  all_use_cases : Use_case.t list;
  compounds : Compound.t list;
  groups : int list list;
  mapping : Mapping.t;
  report : Verify.report;
  refinement : Refine.outcome option;
}

let spec_of_use_cases ~name use_cases = { name; use_cases; parallel = []; smooth = [] }

(* Phases 1 + 2 (parallel-mode generation, switching-aware grouping),
   exposed so static analysis can certify the exact use-case set and
   groups the mapper will see. *)
let expand spec =
  let all, compounds = Compound.generate spec.use_cases ~parallel:spec.parallel in
  let switching = Switching.create ~use_cases:(List.length all) ~smooth:spec.smooth in
  List.iter (Switching.add_compound switching) compounds;
  (all, compounds, Switching.groups switching)

(* Phase 4 packaging: verify a finished mapping and assemble the
   design record around it.  Exposed so the incremental remapper can
   produce designs whose verification is exactly the one [run] would
   have performed. *)
let package ?refinement ~spec ~all_use_cases ~compounds ~groups ~report mapping =
  { spec; all_use_cases; compounds; groups; mapping; report; refinement }

let assemble ?refinement ~spec ~all_use_cases ~compounds ~groups mapping =
  let report =
    Tracer.with_span ~cat:"flow" "phase:verify" (fun () -> Verify.verify mapping all_use_cases)
  in
  Metrics.incr ~by:report.Verify.checks m_verify_checks;
  package ?refinement ~spec ~all_use_cases ~compounds ~groups ~report mapping

let run ?config ?parallel ?prune ?(refine = false) ?post spec =
  match spec.use_cases with
  | [] -> Error "design flow: no use-cases"
  | _ ->
    Metrics.incr m_runs;
    Tracer.with_span ~cat:"flow"
      ~args:[ ("design", Tracer.Str spec.name) ]
      "design_flow"
      (fun () ->
        let all, compounds, groups =
          Tracer.with_span ~cat:"flow" "phase:expand" (fun () -> expand spec)
        in
        (* Phase 3: unified mapping and configuration. *)
        let cache = Mapping_cache.design_cache ?config ~groups all in
        match
          Tracer.with_span ~cat:"flow" "phase:map" (fun () ->
              Mapping.map_design ?config ?parallel ?prune ?cache ~groups all)
        with
        | Error failure -> Error (Format.asprintf "%s: %a" spec.name Mapping.pp_failure failure)
        | Ok mapping ->
          let refinement =
            if refine then
              Some (Tracer.with_span ~cat:"flow" "phase:refine" (fun () -> Refine.anneal mapping all))
            else None
          in
          let mapping =
            match refinement with Some o -> o.Refine.result | None -> mapping
          in
          let design = assemble ?refinement ~spec ~all_use_cases:all ~compounds ~groups mapping in
          (* Optional post-phase (e.g. independent certification from
             noc_analysis, which this library cannot depend on). *)
          let post_verdict =
            match post with
            | None -> Ok ()
            | Some check ->
              Tracer.with_span ~cat:"flow" "phase:post" (fun () -> check design)
          in
          (match post_verdict with
          | Ok () -> Ok design
          | Error msg -> Error (Printf.sprintf "%s: post-phase: %s" spec.name msg)))

let switch_count t = Mapping.switch_count t.mapping

let verified t = Verify.ok t.report

let reconfiguration t = Reconfig.analyze t.mapping

let pp_summary ppf t =
  let m = t.mapping in
  Format.fprintf ppf
    "@[<v>design %s: %d base + %d compound use-cases, %d groups@ mapped onto %a@ %a@]"
    t.spec.name
    (List.length t.spec.use_cases)
    (List.length t.compounds) (List.length t.groups) Mesh.pp m.Mapping.mesh Verify.pp_report
    t.report
