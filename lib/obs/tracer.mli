(** Span-based tracer with per-domain buffers and Chrome
    [trace_event] export.

    Spans are hierarchical (a per-domain stack tracks the open
    ancestors), carry wall + CPU time and typed attributes, and are
    recorded into a per-domain buffer owned exclusively by the
    recording domain — no lock is taken on the recording path, only
    when a new domain registers its buffer or at export time.

    Tracing is off by default.  When disabled, [with_span] costs one
    atomic load and runs the thunk directly: no allocation, no
    timestamps.  Instrumentation is passive — it never perturbs RNG
    state, iteration order, or scheduling decisions — so a traced run
    produces byte-identical designs and exports to an untraced one
    (pinned by property tests in [test_obs]). *)

type value = Bool of bool | Int of int | Float of float | Str of string

type event = {
  name : string;
  cat : string;
  domain : int;  (** id of the domain that recorded the span *)
  depth : int;  (** number of enclosing spans open on that domain *)
  start_ns : int64;
  dur_ns : int64;
  cpu_s : float;  (** process-CPU seconds elapsed during the span *)
  args : (string * value) list;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_span : ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The span is closed (and recorded)
    even if the thunk raises.  Closing a span also feeds its duration
    into the metrics histogram [span.<name>] (milliseconds), so a
    traced run gets p50/p90/p99 per span name for free.

    Call sites on warm-but-not-hot paths may pass [?args] directly;
    genuinely hot call sites should guard with [enabled] first so the
    attribute list is not allocated when tracing is off. *)

val add_arg : string -> value -> unit
(** Attach an attribute to the innermost open span of the calling
    domain (no-op when tracing is disabled or no span is open). *)

val events : unit -> event list
(** All recorded spans, sorted by (start, domain, depth) — a stable,
    deterministic order for tests and exporters. *)

val reset : unit -> unit
(** Drop all recorded spans (buffers stay registered).  Open spans on
    other domains are left alone; the caller is expected to reset
    between runs, not mid-span. *)

val export_chrome : unit -> string
(** Chrome [trace_event] JSON ("JSON object format"): complete ["X"]
    events with microsecond [ts]/[dur] rebased to the earliest span,
    [pid]/[tid] from the recording domain, attributes under [args],
    plus [thread_name] metadata per domain.  Loadable in Perfetto /
    chrome://tracing. *)

val summary_text : unit -> string
(** Per-span-name aggregation (count, total/mean/max wall ms, CPU ms),
    sorted by total descending. *)

val write_file : string -> string -> unit
(** [write_file path contents]: small helper used by the CLI exporters. *)
