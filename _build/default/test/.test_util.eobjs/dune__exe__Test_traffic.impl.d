test/test_traffic.ml: Alcotest Float List Noc_traffic QCheck QCheck_alcotest Result
