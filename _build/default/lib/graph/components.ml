let dfs_collect g seen start =
  (* Iterative DFS with an explicit stack; marks [seen]. *)
  let acc = ref [] in
  let stack = Stack.create () in
  Stack.push start stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    if not seen.(u) then begin
      seen.(u) <- true;
      acc := u :: !acc;
      Intgraph.iter_succ g u (fun v _ -> if not seen.(v) then Stack.push v stack)
    end
  done;
  List.sort compare !acc

let connected_components g =
  if Intgraph.directed g then
    invalid_arg "Components.connected_components: directed graph";
  let n = Intgraph.node_count g in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then comps := dfs_collect g seen v :: !comps
  done;
  List.rev !comps

let component_ids g =
  let comps = connected_components g in
  let ids = Array.make (Intgraph.node_count g) (-1) in
  List.iteri (fun i comp -> List.iter (fun v -> ids.(v) <- i) comp) comps;
  ids

let reachable g start =
  let seen = Array.make (Intgraph.node_count g) false in
  dfs_collect g seen start

let is_connected g = List.length (connected_components g) <= 1
