module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let m_reused = Metrics.counter "remap.reused"
let m_delta = Metrics.counter "remap.delta"
let m_warm = Metrics.counter "remap.warm_placement"
let m_regrown = Metrics.counter "remap.regrown"
let m_failures = Metrics.counter "remap.failures"
let m_dirty_groups = Metrics.counter "remap.dirty_groups"

type mode = Incremental | Reference

type path = Reused | Delta of int | Warm_placement | Regrown

type delta = {
  clean : (int list * int list) list;
  dirty : int list list;
  removed : int list list;
}

type outcome = {
  design : Design_flow.t;
  delta : delta;
  path : path;
}

(* --- dirty-set computation --------------------------------------------- *)

(* Bit-exact flow comparison, mirroring Mapping_cache.problem_digest:
   two flows are the same mapping input iff every field (bandwidth and
   latency compared as IEEE bit patterns) coincides.  Names are not
   inputs. *)
let flow_equal (a : Flow.t) (b : Flow.t) =
  a.Flow.src = b.Flow.src
  && a.Flow.dst = b.Flow.dst
  && a.Flow.service = b.Flow.service
  && Int64.equal (Int64.bits_of_float a.Flow.bandwidth) (Int64.bits_of_float b.Flow.bandwidth)
  && Int64.equal (Int64.bits_of_float a.Flow.latency_ns) (Int64.bits_of_float b.Flow.latency_ns)

let content_equal (a : Use_case.t) (b : Use_case.t) =
  a.Use_case.cores = b.Use_case.cores
  && List.compare_lengths a.Use_case.flows b.Use_case.flows = 0
  && List.for_all2 flow_equal a.Use_case.flows b.Use_case.flows

let diff ~old ~all_use_cases ~groups =
  let old_arr = Array.of_list old.Design_flow.all_use_cases in
  let new_arr = Array.of_list all_use_cases in
  let old_groups = Array.of_list (List.map (List.sort compare) old.Design_flow.groups) in
  let used = Array.make (Array.length old_groups) false in
  (* First-fit over old groups in order: deterministic, and shared by
     both remap modes (the match itself is part of the semantics). *)
  let match_group g =
    let n = List.length g in
    let rec scan i =
      if i >= Array.length old_groups then None
      else if
        (not used.(i))
        && List.length old_groups.(i) = n
        && List.for_all2 (fun o nw -> content_equal old_arr.(o) new_arr.(nw)) old_groups.(i) g
      then begin
        used.(i) <- true;
        Some old_groups.(i)
      end
      else scan (i + 1)
    in
    scan 0
  in
  let clean, dirty =
    List.fold_left
      (fun (clean, dirty) g ->
        let g = List.sort compare g in
        match match_group g with
        | Some og -> ((og, g) :: clean, dirty)
        | None -> (clean, g :: dirty))
      ([], []) groups
  in
  let removed =
    List.filteri (fun i _ -> not used.(i)) (Array.to_list old_groups)
  in
  { clean = List.rev clean; dirty = List.rev dirty; removed }

(* --- assembly ----------------------------------------------------------- *)

(* Rebuild a resource state under a new use-case id from a reservation
   dump: exactly Resources.restore, the codec's own round-trip door, so
   a retained group's slot tables are byte-identical to the old
   design's. *)
let restate ~config ~mesh ~use_case st =
  Resources.restore ~config ~mesh ~use_case
    ~ni_budget:(Resources.ni_budget_snapshot st)
    ~reservations:(Resources.reservations st)

(* Stitch retained groups and freshly-routed sub-problems into one
   mapping on the old mesh and placement.  [sub_results] pairs each
   dirty group (ascending new ids) with its single-group sub-mapping
   whose use-cases are locally renumbered 0..k-1. *)
let assemble_mapping ~(old_m : Mapping.t) ~n_new ~groups ~clean ~sub_results =
  let config = old_m.Mapping.config and mesh = old_m.Mapping.mesh in
  let states = Array.make n_new None in
  let new_of_old = Hashtbl.create 16 in
  List.iter
    (fun (og, ng) ->
      List.iter2
        (fun o n ->
          Hashtbl.replace new_of_old o n;
          states.(n) <- Some (restate ~config ~mesh ~use_case:n old_m.Mapping.states.(o)))
        og ng)
    clean;
  List.iter
    (fun (g, (sub : Mapping.t)) ->
      List.iteri
        (fun i n -> states.(n) <- Some (restate ~config ~mesh ~use_case:n sub.Mapping.states.(i)))
        g)
    sub_results;
  let states =
    Array.mapi
      (fun i s ->
        match s with Some s -> s | None -> invalid_arg (Printf.sprintf "remap: use-case %d unassembled" i))
      states
  in
  (* Retained routes keep their original relative order (renumbered);
     fresh routes follow in dirty-group order.  Both modes assemble the
     same way, so the order — and the codec bytes — are pinned. *)
  let retained =
    List.filter_map
      (fun r ->
        match Hashtbl.find_opt new_of_old r.Route.use_case with
        | Some n -> Some { r with Route.use_case = n }
        | None -> None)
      old_m.Mapping.routes
  in
  let fresh =
    List.concat_map
      (fun (g, (sub : Mapping.t)) ->
        let garr = Array.of_list g in
        List.map (fun r -> { r with Route.use_case = garr.(r.Route.use_case) }) sub.Mapping.routes)
      sub_results
  in
  {
    Mapping.config;
    mesh;
    placement = Array.copy old_m.Mapping.placement;
    routes = retained @ fresh;
    states;
    groups;
  }

(* --- the remap decision chain ------------------------------------------ *)

let remap_decide ?config ?(mode = Incremental) ?(parallel = true) ?(prune = true) ~old spec =
  match spec.Design_flow.use_cases with
  | [] -> Error "remap: no use-cases"
  | first :: _ -> (
    let old_m = old.Design_flow.mapping in
    let config = Option.value config ~default:old_m.Mapping.config in
    let all_new, compounds, groups_new = Design_flow.expand spec in
    let delta = diff ~old ~all_use_cases:all_new ~groups:groups_new in
    let n_new = List.length all_new in
    let cores = first.Use_case.cores in
    let finish path mapping =
      let design =
        Design_flow.assemble ~spec ~all_use_cases:all_new ~compounds ~groups:groups_new mapping
      in
      { design; delta; path }
    in
    (* Stitched designs get a spliced phase-4 report: fresh checks for
       the freshly-routed dirty components (plus the global invariants),
       the old report's violations — ids renumbered — for retained
       components, whose routes and slot tables are byte-identical to
       the old design's.  Re-running their checks would cost more than
       the routing saved; [checks] counts the checks actually executed. *)
    let finish_spliced path mapping =
      let fresh = Verify.verify ~only:(List.concat delta.dirty) mapping all_new in
      let renum = Hashtbl.create 32 in
      List.iter
        (fun (og, ng) -> List.iter2 (fun o n -> Hashtbl.replace renum o n) og ng)
        delta.clean;
      let inherited =
        List.filter_map
          (fun (v : Verify.violation) ->
            match Hashtbl.find_opt renum v.Verify.use_case with
            | Some n -> Some { v with Verify.use_case = n }
            | None -> None)
          old.Design_flow.report.Verify.violations
      in
      let violations =
        List.stable_sort
          (fun (a : Verify.violation) b -> compare a.Verify.use_case b.Verify.use_case)
          (inherited @ fresh.Verify.violations)
      in
      let report = { Verify.checks = fresh.Verify.checks; violations } in
      let design =
        Design_flow.package ~spec ~all_use_cases:all_new ~compounds ~groups:groups_new
          ~report mapping
      in
      { design; delta; path }
    in
    (* The certificate's bounds are monotone lower bounds any
       successful mapping must satisfy, so when it refutes the retained
       mesh no delta or warm-placement assembly at that size can be
       valid — skipping straight to the growth search preserves the
       result.  Under --no-prune the check is off and the attempts
       themselves decide, exactly like map_design. *)
    let frame_admitted =
      lazy
        ((not prune)
        ||
        let cert = Feasibility.certify ~config ~groups:groups_new all_new in
        Feasibility.admits_mesh cert old_m.Mapping.mesh)
    in
    let solve_fixed ~mesh ~groups ~placement use_cases =
      match mode with
      | Incremental -> Mapping_cache.with_placement ~config ~mesh ~groups ~placement use_cases
      | Reference -> Mapping.map_with_placement ~config ~mesh ~groups ~placement use_cases
    in
    let regrow () =
      let cache =
        match mode with
        | Incremental -> Mapping_cache.design_cache ~config ~groups:groups_new all_new
        | Reference -> None
      in
      match Mapping.map_design ~config ~parallel ~prune ?cache ~groups:groups_new all_new with
      | Ok m -> Ok (finish Regrown m)
      | Error failure ->
        Error (Format.asprintf "%s: %a" spec.Design_flow.name Mapping.pp_failure failure)
    in
    let placement_fits =
      cores = Array.length old_m.Mapping.placement
      && Mesh.kind old_m.Mapping.mesh = config.Config.topology
    in
    let warm () =
      if not (placement_fits && Lazy.force frame_admitted) then regrow ()
      else
        match
          solve_fixed ~mesh:old_m.Mapping.mesh ~groups:groups_new
            ~placement:old_m.Mapping.placement all_new
        with
        | Ok m -> Ok (finish Warm_placement m)
        | Error _ -> regrow ()
    in
    let same_frame = placement_fits && config = old_m.Mapping.config in
    (* Phase-4 gate for the cheap paths: a fully verified old design
       must stay fully verified after assembly.  When the old design
       itself ships with reported violations ([run] stores the report
       but does not gate on it), the retained groups inherit those
       violations verbatim — demanding a clean report would reject
       every reuse for defects the remap did not introduce, so the
       assembly is held to the old design's own standard instead. *)
    let acceptable design = Design_flow.verified design || not (Design_flow.verified old) in
    if not same_frame then warm ()
    else if delta.dirty = [] then begin
      (* Pure removal / renumbering: repackage without routing.  The
         assembled design still goes through phase-4 verification; if
         it is worse than the old design's, degrade to the fallbacks. *)
      let o =
        finish_spliced Reused
          (assemble_mapping ~old_m ~n_new ~groups:groups_new ~clean:delta.clean ~sub_results:[])
      in
      if acceptable o.design then Ok o else warm ()
    end
    else if not (Lazy.force frame_admitted) then warm ()
    else begin
      (* Route each dirty group as an independent single-group problem
         on the retained placement.  Group-local sub-problems are exact
         because routing consults only the group members' own resource
         states; the sub-problem digest is what memoizes components
         across churn steps. *)
      let new_arr = Array.of_list all_new in
      let rec route_dirty acc = function
        | [] -> Some (List.rev acc)
        | g :: rest -> (
          let sub_ucs =
            List.mapi
              (fun i n -> Use_case.rename new_arr.(n) ~id:i ~name:new_arr.(n).Use_case.name)
              g
          in
          let sub_groups = [ List.init (List.length g) Fun.id ] in
          match
            solve_fixed ~mesh:old_m.Mapping.mesh ~groups:sub_groups
              ~placement:old_m.Mapping.placement sub_ucs
          with
          | Ok sub -> route_dirty ((g, sub) :: acc) rest
          | Error _ -> None)
      in
      match route_dirty [] delta.dirty with
      | None -> warm ()
      | Some sub_results ->
        let o =
          finish_spliced
            (Delta (List.length delta.dirty))
            (assemble_mapping ~old_m ~n_new ~groups:groups_new ~clean:delta.clean ~sub_results)
        in
        if acceptable o.design then Ok o else warm ()
    end)

(* Decision-path counters are charged on the final verdict only: the
   chain may build a spliced candidate and then discard it at the
   [acceptable] gate, and a discarded candidate is not an outcome. *)
let remap ?config ?mode ?parallel ?prune ~old spec =
  let decide () = remap_decide ?config ?mode ?parallel ?prune ~old spec in
  let result =
    if Tracer.enabled () then
      Tracer.with_span ~cat:"remap"
        ~args:[ ("to", Tracer.Str spec.Design_flow.name) ]
        "remap" decide
    else decide ()
  in
  (match result with
  | Ok o ->
    Metrics.incr
      (match o.path with
      | Reused -> m_reused
      | Delta _ -> m_delta
      | Warm_placement -> m_warm
      | Regrown -> m_regrown);
    Metrics.incr ~by:(List.length o.delta.dirty) m_dirty_groups
  | Error _ -> Metrics.incr m_failures);
  result

let churn ?config ?mode ?parallel ?prune = function
  | [] -> Error "churn: empty spec sequence"
  | first :: rest -> (
    match Design_flow.run ?config ?parallel ?prune first with
    | Error e -> Error e
    | Ok d0 ->
      let rec go prev acc = function
        | [] -> Ok (d0, List.rev acc)
        | spec :: more -> (
          match remap ?config ?mode ?parallel ?prune ~old:prev spec with
          | Error e -> Error e
          | Ok o -> go o.design (o :: acc) more)
      in
      go d0 [] rest)
