(** Build identity of the running binary.

    The persistent result cache stores mapping solutions on disk; an
    entry written by one build must never be served to another (the
    engine, codec or digest scheme may have changed between them).  The
    store is therefore namespaced by {!fingerprint}, and
    [nocmap --version] prints it so a cache directory can be audited
    against the binary that filled it. *)

val version : string
(** Human-facing semantic version of the tool. *)

val fingerprint : unit -> string
(** Hex digest identifying this exact build, computed lazily from the
    running executable (size plus head/tail samples — cheap enough to
    run on every CLI start, and any relink changes it).  Falls back to
    a constant when the executable cannot be read, so the cache always
    has a namespace. *)

val describe : unit -> string
(** ["<version>+build.<fingerprint>"] — the [--version] string. *)
