(** Dynamic voltage and frequency scaling model (paper §6.4).

    The paper uses a conservative model where the *square of the
    voltage scales linearly with frequency* [24]; dynamic power
    P = C V^2 f therefore scales with f^2.  When a use-case needs only
    a fraction of the design-point frequency, running its epoch at that
    frequency (and the matching voltage) saves the corresponding
    power. *)

val voltage_ratio :
  freq:Noc_util.Units.frequency -> base:Noc_util.Units.frequency -> float
(** V(freq)/V(base) under the conservative model: sqrt(freq/base). *)

val power_ratio :
  freq:Noc_util.Units.frequency -> base:Noc_util.Units.frequency -> float
(** P(freq)/P(base) = (freq/base)^2. *)

val savings :
  f_design:Noc_util.Units.frequency ->
  epochs:(Noc_util.Units.frequency * float) list ->
  float
(** Fractional power saving of DVS/DFS over always running at
    [f_design].  [epochs] lists (frequency, time weight) per use-case
    epoch; weights need not be normalised.  Result in [0, 1).
    @raise Invalid_argument on empty epochs, non-positive weights, or
    a frequency above [f_design]. *)

val savings_percent :
  f_design:Noc_util.Units.frequency ->
  epochs:(Noc_util.Units.frequency * float) list ->
  float
(** [savings] as a percentage, the unit of the paper's Fig 7b. *)
