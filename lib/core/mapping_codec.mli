(** Stable serialisation of {!Mapping.t} — the persistence format of
    the result cache.

    The format is a versioned, line-based text encoding with
    hex-printed floats ([%h]), so a round-trip is exact: decoding an
    encoded mapping rebuilds the configuration, mesh, placement,
    routes {e and the per-use-case resource states} (TDMA slot owners
    and NI budgets) bit for bit.  [encode] is canonical — equal
    mappings encode to equal bytes — which is also what the
    cache-correctness property tests compare.

    [decode] never trusts its input: any truncation, token garbage,
    out-of-range index or count mismatch returns [Error], which the
    cache layer treats as a miss. *)

val format_version : int

val encode : Mapping.t -> string option
(** [None] when the mapping cannot be represented stably — its mesh
    carries express channels beyond the plain grid the format records
    (such mappings are simply not cached). *)

val decode : string -> (Mapping.t, string) result

val digest : Mapping.t -> string option
(** MD5 hex of the canonical bytes, or [None] when [encode] cannot
    represent the mapping.  Two mappings digest equal iff they encode
    equal — the cheap identity check the remap CLI prints and the CI
    correctness job compares. *)
