(* Determinism regression: the indexed/bitset mapping engine (worklist
   heaps, pending index, rotate-and-AND slot intersection) and the
   parallel mesh-size search must produce byte-identical designs to the
   straightforward Reference formulation — the reproduction tables in
   EXPERIMENTS.md depend on it. *)

module Mapping = Noc_core.Mapping
module Route = Noc_arch.Route
module Mesh = Noc_arch.Mesh
module SD = Noc_benchkit.Soc_designs
module Syn = Noc_benchkit.Synthetic

let fingerprint (m : Mapping.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "mesh %dx%d\n" (Mesh.width m.Mapping.mesh) (Mesh.height m.Mapping.mesh));
  Array.iteri (fun core s -> Buffer.add_string b (Printf.sprintf "core %d @ %d\n" core s))
    m.Mapping.placement;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "route %d uc%d %d->%d sw %d->%d %.6f %s links [%s] starts [%s]\n"
           r.Route.flow_id r.Route.use_case r.Route.src_core r.Route.dst_core r.Route.src_switch
           r.Route.dst_switch r.Route.bandwidth
           (match r.Route.service with Route.Gt -> "gt" | Route.Be -> "be")
           (String.concat "," (List.map string_of_int r.Route.links))
           (String.concat "," (List.map string_of_int r.Route.slot_starts))))
    m.Mapping.routes;
  Buffer.contents b

let design ~engine ~parallel ~groups ucs =
  match Mapping.map_design ~engine ~parallel ~groups ucs with
  | Ok m -> fingerprint m
  | Error f -> Format.asprintf "FAILED: %a" Mapping.pp_failure f

let check_workload name ~groups ucs () =
  let reference = design ~engine:Mapping.Reference ~parallel:false ~groups ucs in
  Alcotest.(check string)
    (name ^ ": indexed sequential = reference")
    reference
    (design ~engine:Mapping.Indexed ~parallel:false ~groups ucs);
  Alcotest.(check string)
    (name ^ ": indexed parallel = reference")
    reference
    (design ~engine:Mapping.Indexed ~parallel:true ~groups ucs);
  Alcotest.(check string)
    (name ^ ": reference parallel = reference")
    reference
    (design ~engine:Mapping.Reference ~parallel:true ~groups ucs)

let singleton_groups ucs = List.mapi (fun i _ -> [ i ]) ucs

let d1_case () =
  let ucs = SD.d1 () in
  check_workload "D1" ~groups:(singleton_groups ucs) ucs ()

let synthetic_case ~seed () =
  let ucs = Syn.generate ~seed ~params:Syn.spread_params ~use_cases:5 in
  check_workload (Printf.sprintf "Sp5 seed %d" seed) ~groups:(singleton_groups ucs) ucs ()

(* Shared groups exercise the group-shared reservation (active/passive
   members, mask intersection across several states). *)
let grouped_case () =
  let ucs = Syn.generate ~seed:300 ~params:Syn.bottleneck_params ~use_cases:5 in
  check_workload "Bot5 grouped" ~groups:[ [ 0; 1 ]; [ 2; 3; 4 ] ] ucs ()

(* Sweep engine: the design-space exploration must be byte-identical
   across worker counts (warm seeds come only from earlier frequency
   waves, never from timing), and warm starts must agree with the cold
   full search on feasibility, switch count and mesh at every point —
   the contract behind the --jobs and --cold flags. *)
module DS = Noc_power.Design_space

let point_fingerprint (p : DS.point) =
  Printf.sprintf "%.1fMHz slots=%d %s -> %s [%s]" p.DS.freq_mhz p.DS.slots
    (match p.DS.topology with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus")
    (match p.DS.switches with None -> "infeasible" | Some s -> string_of_int s ^ " switches")
    (match p.DS.start with DS.Warm -> "warm" | DS.Cold -> "cold")

let sweep_fingerprint points = String.concat "\n" (List.map point_fingerprint points)

let explore_workload () =
  let ucs = SD.d1 () in
  let groups = singleton_groups ucs in
  let axes =
    { DS.frequencies = [ 100.0; 250.0; 500.0; 1000.0 ]; slot_counts = [ 16; 32 ];
      topologies = [ Mesh.Mesh ] }
  in
  fun ~jobs ~warm ->
    DS.explore ~axes ~jobs ~warm ~config:Noc_arch.Noc_config.default ~groups ucs

let explore_jobs_independent () =
  let run = explore_workload () in
  let one = run ~jobs:1 ~warm:true in
  let four = run ~jobs:4 ~warm:true in
  Alcotest.(check string)
    "explore: jobs 4 = jobs 1 (byte-identical)" (sweep_fingerprint one) (sweep_fingerprint four)

let explore_warm_vs_cold () =
  let run = explore_workload () in
  let warm = run ~jobs:1 ~warm:true in
  let cold = run ~jobs:1 ~warm:false in
  (* warm and cold disagree only in the [start] tag; feasibility and
     switch counts are identical point for point *)
  let strip (p : DS.point) = { p with DS.start = DS.Cold } in
  Alcotest.(check string)
    "explore: warm = cold modulo start tag"
    (sweep_fingerprint (List.map strip cold))
    (sweep_fingerprint (List.map strip warm));
  (* and that forces front identity *)
  let front ps =
    List.map (fun (p : DS.point) -> (p.DS.freq_mhz, p.DS.slots, p.DS.switches)) (DS.pareto ps)
  in
  Alcotest.(check bool) "explore: warm front = cold front" true (front warm = front cold);
  (* the sweep must actually exercise the warm path somewhere, or the
     test proves nothing *)
  Alcotest.(check bool) "explore: at least one warm-started point" true
    (List.exists (fun (p : DS.point) -> p.DS.start = DS.Warm) warm)

let pareto_sweep_jobs_independent () =
  let ucs = SD.d1 () in
  let groups = singleton_groups ucs in
  let sweep jobs warm =
    Noc_power.Pareto.sweep ~frequencies:[ 100.0; 500.0; 1000.0 ] ~jobs ~warm
      ~config:Noc_arch.Noc_config.default ~groups ucs
  in
  let show ps =
    String.concat ";"
      (List.map
         (fun (p : Noc_power.Pareto.point) ->
           Printf.sprintf "%.0f:%s" p.Noc_power.Pareto.freq_mhz
             (match p.Noc_power.Pareto.switches with None -> "-" | Some s -> string_of_int s))
         ps)
  in
  let reference = show (sweep 1 false) in
  Alcotest.(check string) "pareto sweep: jobs 4 warm = jobs 1 cold" reference (show (sweep 4 true));
  Alcotest.(check string) "pareto sweep: jobs 1 warm = jobs 1 cold" reference (show (sweep 1 true))

let () =
  Alcotest.run "determinism"
    [
      ( "indexed engine vs reference",
        [
          Alcotest.test_case "D1" `Quick d1_case;
          Alcotest.test_case "Sp5 seed 200" `Quick (synthetic_case ~seed:200);
          Alcotest.test_case "Sp5 seed 4242" `Quick (synthetic_case ~seed:4242);
          Alcotest.test_case "Bot5 shared groups" `Quick grouped_case;
        ] );
      ( "sweep engine",
        [
          Alcotest.test_case "explore independent of jobs" `Quick explore_jobs_independent;
          Alcotest.test_case "explore warm = cold" `Quick explore_warm_vs_cold;
          Alcotest.test_case "pareto sweep jobs/warm invariant" `Quick pareto_sweep_jobs_independent;
        ] );
    ]
