lib/graph/components.mli: Intgraph
