(* Tests for Noc_util: PRNG, units, numeric helpers, table rendering. *)

module Rng = Noc_util.Rng
module Units = Noc_util.Units
module Numeric = Noc_util.Numeric
module Table = Noc_util.Ascii_table

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10)
  done

let test_rng_int_in_range () =
  let rng = Rng.create ~seed:8 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (x >= -5 && x <= 5)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_covers_all_values () =
  let rng = Rng.create ~seed:9 in
  let seen = Array.make 6 false in
  for _ = 1 to 600 do
    seen.(Rng.int rng 6) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true s) seen

let test_rng_float_range () =
  let rng = Rng.create ~seed:10 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (x >= 0.0 && x < 3.5)
  done

let test_rng_float_mean () =
  let rng = Rng.create ~seed:11 in
  let xs = List.init 20000 (fun _ -> Rng.float rng 1.0) in
  let m = Numeric.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_chance_extremes () =
  let rng = Rng.create ~seed:12 in
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0);
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0)

let test_rng_gaussian_moments () =
  let rng = Rng.create ~seed:13 in
  let xs = List.init 20000 (fun _ -> Rng.gaussian rng ~mean:5.0 ~stddev:2.0) in
  Alcotest.(check bool) "mean near 5" true (Float.abs (Numeric.mean xs -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (Numeric.stddev xs -. 2.0) < 0.1)

let test_rng_shuffle_is_permutation () =
  let rng = Rng.create ~seed:14 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let parent = Rng.create ~seed:15 in
  let child = Rng.split parent in
  let a = Rng.bits64 child and b = Rng.bits64 parent in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_copy_preserves_state () =
  let a = Rng.create ~seed:16 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copies agree" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_pick_singleton () =
  let rng = Rng.create ~seed:17 in
  Alcotest.(check int) "only element" 99 (Rng.pick rng [| 99 |])

let test_rng_pick_empty_raises () =
  let rng = Rng.create ~seed:17 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_sample_without_replacement () =
  let rng = Rng.create ~seed:18 in
  for _ = 1 to 100 do
    let s = Rng.sample_without_replacement rng 5 20 in
    Alcotest.(check int) "size" 5 (List.length s);
    Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 20)) s;
    Alcotest.(check (list int)) "sorted" (List.sort compare s) s
  done

let test_sample_full () =
  let rng = Rng.create ~seed:19 in
  Alcotest.(check (list int)) "k=n takes all" [ 0; 1; 2 ]
    (Rng.sample_without_replacement rng 3 3)

(* --- Units ----------------------------------------------------------- *)

let test_link_capacity_paper_point () =
  (* The paper's Sec 6.2 operating point: 500 MHz x 32 bit = 2000 MB/s. *)
  check_float "500MHz x 32bit" 2000.0 (Units.link_capacity ~freq_mhz:500.0 ~width_bits:32)

let test_cycle_ns () =
  check_float "500 MHz = 2 ns" 2.0 (Units.cycle_ns 500.0);
  check_float "1 GHz = 1 ns" 1.0 (Units.cycle_ns 1000.0)

let test_mbps_per_slot () =
  check_float "2000/32" 62.5 (Units.mbps_per_slot ~capacity:2000.0 ~slots:32)

let test_slots_needed () =
  Alcotest.(check int) "zero bw" 0 (Units.slots_needed ~bw:0.0 ~capacity:2000.0 ~slots:32);
  Alcotest.(check int) "tiny bw rounds up" 1 (Units.slots_needed ~bw:0.1 ~capacity:2000.0 ~slots:32);
  Alcotest.(check int) "exact slot" 1 (Units.slots_needed ~bw:62.5 ~capacity:2000.0 ~slots:32);
  Alcotest.(check int) "just over" 2 (Units.slots_needed ~bw:62.6 ~capacity:2000.0 ~slots:32);
  Alcotest.(check int) "full link" 32 (Units.slots_needed ~bw:2000.0 ~capacity:2000.0 ~slots:32)

(* --- Numeric --------------------------------------------------------- *)

let test_mean () =
  check_float "mean" 2.0 (Numeric.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty" 0.0 (Numeric.mean [])

let test_geometric_mean () =
  check_float "gm of 1,4" 2.0 (Numeric.geometric_mean [ 1.0; 4.0 ])

let test_stddev () =
  check_float "constant" 0.0 (Numeric.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "2,4,4,4,5,5,7,9" 2.0 (Numeric.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_clamp () =
  check_float "below" 0.0 (Numeric.clamp ~lo:0.0 ~hi:1.0 (-3.0));
  check_float "above" 1.0 (Numeric.clamp ~lo:0.0 ~hi:1.0 7.0);
  check_float "inside" 0.5 (Numeric.clamp ~lo:0.0 ~hi:1.0 0.5);
  Alcotest.(check int) "int clamp" 3 (Numeric.clamp_int ~lo:1 ~hi:3 9)

let test_round_to () =
  check_float "2 digits" 3.14 (Numeric.round_to ~digits:2 3.14159)

let test_percent () =
  check_float "half" 50.0 (Numeric.percent ~part:1.0 ~whole:2.0);
  check_float "zero whole" 0.0 (Numeric.percent ~part:1.0 ~whole:0.0)

let test_linspace () =
  Alcotest.(check (list (float 1e-9))) "0..1 in 3" [ 0.0; 0.5; 1.0 ]
    (Numeric.linspace ~lo:0.0 ~hi:1.0 ~n:3)

(* --- Ascii_table ----------------------------------------------------- *)

let test_table_renders_aligned () =
  let t = Table.create ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "10"; "200" ];
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_pads_short_rows () =
  let t = Table.create ~header:[ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.render t in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_rejects_long_rows () =
  let t = Table.create ~header:[ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Ascii_table.add_row: too many cells") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_left_align () =
  let t = Table.create ~header:[ "aaaa"; "b" ] in
  Table.add_row t [ "x"; "y" ];
  let s = Table.render ~align:Table.Left t in
  (match String.split_on_char '\n' s with
  | _header :: _sep :: row :: _ ->
    Alcotest.(check bool) "left-aligned cell starts at col 0" true (row.[0] = 'x')
  | _ -> Alcotest.fail "row missing");
  let r = Table.render ~align:Table.Right t in
  match String.split_on_char '\n' r with
  | _header :: _sep :: row :: _ ->
    Alcotest.(check bool) "right-aligned cell padded" true (row.[0] = ' ')
  | _ -> Alcotest.fail "row missing"

let test_table_float_row () =
  let t = Table.create ~header:[ "label"; "x" ] in
  Table.add_float_row t "row" [ 1.5 ];
  let s = Table.render t in
  Alcotest.(check bool) "contains formatted float" true
    (String.length s > 0
    &&
    let found = ref false in
    String.iteri (fun i _ -> if i + 5 <= String.length s && String.sub s i 5 = "1.500" then found := true) s;
    !found)

(* --- qcheck properties ----------------------------------------------- *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int_in stays in bounds" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create ~seed in
      let x = Rng.int_in rng lo hi in
      x >= lo && x <= hi)

let prop_sample_sorted_distinct =
  QCheck.Test.make ~name:"sample_without_replacement sorted+distinct" ~count:200
    QCheck.(pair small_int (int_bound 50))
    (fun (seed, n) ->
      let n = max 1 n in
      let rng = Rng.create ~seed in
      let k = 1 + (seed mod n) in
      let s = Rng.sample_without_replacement rng (min k n) n in
      List.sort_uniq compare s = s)

let prop_clamp_idempotent =
  QCheck.Test.make ~name:"clamp is idempotent" ~count:500
    QCheck.(triple (float_bound_exclusive 100.0) (float_bound_exclusive 100.0) float)
    (fun (a, b, x) ->
      let lo = Float.min a b and hi = Float.max a b in
      let once = Numeric.clamp ~lo ~hi x in
      Numeric.clamp ~lo ~hi once = once)

let prop_slots_needed_sufficient =
  QCheck.Test.make ~name:"slots_needed grants at least bw" ~count:500
    QCheck.(pair (float_bound_exclusive 2000.0) (int_range 1 64))
    (fun (bw, slots) ->
      let bw = Float.abs bw in
      let n = Units.slots_needed ~bw ~capacity:2000.0 ~slots in
      float_of_int n *. Units.mbps_per_slot ~capacity:2000.0 ~slots >= bw -. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_int_in_bounds; prop_sample_sorted_distinct; prop_clamp_idempotent; prop_slots_needed_sufficient ]

let () =
  Alcotest.run "noc_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in_range;
          Alcotest.test_case "int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int covers values" `Quick test_rng_int_covers_all_values;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_is_permutation;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "copy preserves state" `Quick test_rng_copy_preserves_state;
          Alcotest.test_case "pick singleton" `Quick test_rng_pick_singleton;
          Alcotest.test_case "pick empty raises" `Quick test_rng_pick_empty_raises;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "sample k=n" `Quick test_sample_full;
        ] );
      ( "units",
        [
          Alcotest.test_case "paper link capacity" `Quick test_link_capacity_paper_point;
          Alcotest.test_case "cycle ns" `Quick test_cycle_ns;
          Alcotest.test_case "per-slot bandwidth" `Quick test_mbps_per_slot;
          Alcotest.test_case "slots needed" `Quick test_slots_needed;
        ] );
      ( "numeric",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "round_to" `Quick test_round_to;
          Alcotest.test_case "percent" `Quick test_percent;
          Alcotest.test_case "linspace" `Quick test_linspace;
        ] );
      ( "ascii_table",
        [
          Alcotest.test_case "aligned render" `Quick test_table_renders_aligned;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "rejects long rows" `Quick test_table_rejects_long_rows;
          Alcotest.test_case "alignment" `Quick test_table_left_align;
          Alcotest.test_case "float row" `Quick test_table_float_row;
        ] );
      ("properties", qcheck_cases);
    ]
