examples/quickstart.ml: Array Format List Noc_arch Noc_core Noc_sim Noc_traffic
