lib/core/spec_parser.ml: Buffer Design_flow Filename Format Hashtbl In_channel List Noc_traffic Option Printf String
