lib/arch/route.ml: Format List Noc_config Noc_util String Tdma
