lib/core/resources.mli: Format Noc_arch Noc_util
