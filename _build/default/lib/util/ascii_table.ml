type align = Left | Right

type t = {
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~header = { header; rows = [] }

let add_row t row =
  let ncols = List.length t.header in
  let n = List.length row in
  if n > ncols then invalid_arg "Ascii_table.add_row: too many cells";
  let padded = row @ List.init (ncols - n) (fun _ -> "") in
  t.rows <- padded :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.3f") xs)

let render ?(align = Right) t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let line row =
    String.concat "  " (List.map2 pad widths row)
  in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line t.header :: sep :: List.map line rows)

let print ?align t =
  print_string (render ?align t);
  print_newline ()
