lib/core/refine.mli: Mapping Noc_traffic
