(* Quickstart: the paper's Example 1 (Figure 5), end to end.

   Two use-cases over four cores are mapped onto the smallest mesh that
   satisfies both, with unified path selection and TDMA slot-table
   reservation; the design is then verified analytically and simulated
   slot by slot.

   Run with: dune exec examples/quickstart.exe *)

module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case
module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module Sim = Noc_sim.Simulator

let () =
  (* 1. Describe the traffic of each use-case (Figure 5a/5b). *)
  let uc1 =
    Use_case.create ~id:0 ~name:"use-case-1" ~cores:4
      [
        Flow.v ~src:2 ~dst:3 100.0;   (* C3 -> C4, the largest flow *)
        Flow.v ~src:0 ~dst:1 10.0;    (* C1 -> C2 *)
        Flow.v ~src:1 ~dst:2 75.0;    (* C2 -> C3 *)
      ]
  in
  let uc2 =
    Use_case.create ~id:1 ~name:"use-case-2" ~cores:4
      [ Flow.v ~src:2 ~dst:3 42.0; Flow.v ~src:0 ~dst:1 11.0; Flow.v ~src:0 ~dst:2 52.0 ]
  in

  (* 2. Run the design flow.  One NI per switch forces the cores onto
     distinct switches, as in the paper's figure. *)
  let config = { Config.default with nis_per_switch = 1 } in
  let spec = DF.spec_of_use_cases ~name:"example1" [ uc1; uc2 ] in
  match DF.run ~config spec with
  | Error msg ->
    prerr_endline ("design failed: " ^ msg);
    exit 1
  | Ok design ->
    Format.printf "%a@.@." DF.pp_summary design;

    (* 3. Inspect the chosen configuration of each use-case: the shared
       core placement, and the per-use-case paths (Figure 5c/5d). *)
    let m = design.DF.mapping in
    Array.iteri
      (fun core switch -> Format.printf "core C%d -> switch %d@." (core + 1) switch)
      m.Mapping.placement;
    Format.printf "@.";
    List.iter (fun r -> Format.printf "%a@." Route.pp r) m.Mapping.routes;

    (* 4. Simulate both configurations slot by slot. *)
    List.iter
      (fun u ->
        let routes = Mapping.routes_of_use_case m u.Use_case.id in
        let res = Sim.simulate ~config ~routes ~duration_slots:3200 in
        Format.printf "@.simulation of %s: %s@." u.Use_case.name
          (if Sim.within_contract res then "all contracts met" else "CONTRACT VIOLATION");
        List.iter
          (fun c ->
            Format.printf
              "  conn %d (%d->%d): offered %.1f, delivered %.1f MB/s, worst latency %.1f ns (bound %.1f)@."
              c.Sim.flow_id c.Sim.src_core c.Sim.dst_core c.Sim.offered_mbps c.Sim.delivered_mbps
              c.Sim.max_latency_ns c.Sim.bound_ns)
          res.Sim.conns)
      design.DF.all_use_cases
