type event = {
  at_ns : float;
  bytes : float;
}

type t = event list

let validate t =
  let rec go last = function
    | [] -> Ok ()
    | e :: rest ->
      if e.at_ns < 0.0 then Error "negative event time"
      else if e.at_ns < last then Error "events out of order"
      else if e.bytes <= 0.0 then Error "non-positive packet size"
      else go e.at_ns rest
  in
  go 0.0 t

let total_bytes t = List.fold_left (fun acc e -> acc +. e.bytes) 0.0 t

let mean_rate_mbps t ~duration_ns =
  if duration_ns <= 0.0 then invalid_arg "Trace.mean_rate_mbps: non-positive duration";
  total_bytes t /. duration_ns *. 1000.0

let cbr ~rate_mbps ~packet_bytes ~duration_ns =
  if rate_mbps <= 0.0 || packet_bytes <= 0.0 || duration_ns <= 0.0 then
    invalid_arg "Trace.cbr: non-positive parameter";
  (* one packet every packet_bytes / rate: rate MB/s = rate/1000 B/ns *)
  let period_ns = packet_bytes /. (rate_mbps /. 1000.0) in
  let n = int_of_float (duration_ns /. period_ns) in
  List.init n (fun i -> { at_ns = float_of_int i *. period_ns; bytes = packet_bytes })

let video_gop ~rng ~mean_mbps ~frame_period_ns ~gop_length ~i_frame_ratio ~duration_ns =
  if mean_mbps <= 0.0 || frame_period_ns <= 0.0 || duration_ns <= 0.0 then
    invalid_arg "Trace.video_gop: non-positive parameter";
  if gop_length < 1 then invalid_arg "Trace.video_gop: GOP needs at least one frame";
  if i_frame_ratio < 1.0 then invalid_arg "Trace.video_gop: I frames cannot be smaller than P";
  (* Solve P so that (ratio + (gop-1)) * P bytes per GOP hits the mean. *)
  let gop_ns = float_of_int gop_length *. frame_period_ns in
  let gop_bytes = mean_mbps /. 1000.0 *. gop_ns in
  let p_bytes = gop_bytes /. (i_frame_ratio +. float_of_int (gop_length - 1)) in
  let frames = int_of_float (duration_ns /. frame_period_ns) in
  List.init frames (fun i ->
      let base = if i mod gop_length = 0 then i_frame_ratio *. p_bytes else p_bytes in
      let jitter = Noc_util.Rng.float_in rng 0.9 1.1 in
      { at_ns = float_of_int i *. frame_period_ns; bytes = base *. jitter })
