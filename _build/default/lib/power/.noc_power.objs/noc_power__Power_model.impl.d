lib/power/power_model.ml: Area_model Dvfs Float Hashtbl List Noc_arch Noc_core Option
