(** The daemon's scheduler core, independent of any socket.

    {!prepare} turns a wire {!Protocol.op} into a validated {e job}
    with a canonical single-flight key; {!plan} coalesces a batch of
    jobs down to its distinct keys; {!execute_batch} runs a planned
    batch on the shared {!Noc_util.Domain_pool}, first merging the
    batch's overlapping explore grids into one deduplicated sweep-point
    set.  The {!Server} select loop is a thin shell around these three
    functions, which keeps the coalescing and batching semantics
    unit-testable without sockets.

    {2 Single-flight coalescing}

    A job's [key] is derived from {!Noc_core.Mapping_cache}'s canonical
    problem digest (config knobs, groups, IEEE-exact flows — names
    excluded) plus the operation and its flags, so two requests whose
    {e problems} are identical coalesce even when their spec texts
    differ cosmetically.  Within a batch, each distinct key computes
    once and the payload fans out to every requester; across batches,
    the shared {!Noc_util.Result_cache} replays the stored attempts, so
    an identical problem still computes at most once per process
    lifetime.  Payloads are deterministic (pinned repo-wide), hence
    fanning out one computation is byte-indistinguishable from running
    every request alone. *)

type job
(** A validated, executable request. *)

val key : job -> string
(** The canonical single-flight key (digest-based, stable across
    processes of the same build). *)

val prepare : Protocol.op -> (job, Protocol.error_code * string) result
(** Parse and validate an executable operation ([Map]/[Explore]/
    [Lint]/[Certify]/[Remap]).  Control operations ([Ping]/[Stats]/
    [Shutdown]) are the server's business and return [Bad_request]
    here. *)

val prepare_cached : Protocol.op -> (job, Protocol.error_code * string) result
(** {!prepare} memoized on a digest of the whole op: under coalescing
    load the same bytes arrive many times, and re-parsing a large spec
    per request dominates the warm path (it scales per {e request}
    where everything downstream scales per {e distinct key}).  The
    server admits through this. *)

type plan = {
  unique : job array;  (** distinct jobs, first-seen order *)
  assign : int array;  (** per input index, the index into [unique] *)
  coalesced : int;  (** inputs beyond the first per key *)
}

val plan : job array -> plan

val merge_explore_points : job array -> int
(** The number of sweep points shared by at least two distinct explore
    jobs of this batch over the same mapping problem — the points the
    batching layer solves exactly once before fan-out (exposed for
    tests and metrics). *)

val execute_batch : ?jobs:int -> job array -> (string, string) result array
(** Execute the distinct jobs of a batch (callers pass [plan.unique]).
    Explore jobs' overlapping grid points are pre-solved once into the
    shared cache ({!merge_explore_points}), then every job runs on the
    {!Noc_util.Domain_pool}.  Each slot is the job's payload bytes, or
    [Error] with a message when the operation itself fails (an
    unmappable spec, say).  Never raises. *)

val execute : job -> (string, string) result
(** Run one job inline (no pool, no merge) — what a batch of size one
    reduces to. *)
