(** Latency-rate service-curve analysis of a TDMA reservation.

    A GT connection behaves as a latency-rate (LR) server: after at
    most [theta] of waiting it serves at least at rate [rho].  Both
    parameters fall out of the slot reservation, giving closed-form
    delay and backlog bounds for burst-constrained inputs (standard
    network calculus) — the analysis a designer runs when the input is
    bursty rather than fluid. *)

type t = {
  rate_mbps : Noc_util.Units.bandwidth;  (** rho: guaranteed long-term rate *)
  latency_ns : Noc_util.Units.latency;   (** theta: worst-case service start + transit *)
}

val of_reservation :
  config:Noc_config.t -> starts:int list -> hops:int -> t
(** LR parameters of a reservation: rho = slots x slot-bandwidth,
    theta = (worst start gap + hops) slot durations.
    @raise Invalid_argument on an empty start list. *)

val of_route : config:Noc_config.t -> Route.t -> t option
(** [None] for best-effort routes (no guarantee exists); same-switch GT
    routes serve every slot. *)

val delay_bound_ns :
  t -> burst_bytes:float -> rate_mbps:Noc_util.Units.bandwidth -> Noc_util.Units.latency
(** Worst-case delay of a (sigma, rho_in) token-bucket-constrained
    input through the LR server: [theta + sigma/rho].
    @raise Invalid_argument when the input rate exceeds the service
    rate (the queue would grow without bound). *)

val backlog_bound_bytes :
  t -> burst_bytes:float -> rate_mbps:Noc_util.Units.bandwidth -> float
(** Worst-case buffer occupancy: [sigma + rho_in x theta]. *)

val on_off_burstiness :
  mean_mbps:Noc_util.Units.bandwidth -> period_ns:float -> duty:float -> float
(** Token-bucket burstiness (sigma, bytes) of an on/off source with the
    given mean rate: the traffic the ON phase sends above the mean,
    [mean x period x (1 - duty)].
    @raise Invalid_argument unless [0 < duty <= 1] and the period is
    positive. *)
