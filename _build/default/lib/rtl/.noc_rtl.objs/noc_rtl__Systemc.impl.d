lib/rtl/systemc.ml: Array Buffer Hashtbl List Noc_arch Noc_core Printf String Vhdl
