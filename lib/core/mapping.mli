(** Unified mapping and NoC configuration — phase 3 of the methodology
    (paper §5, Algorithm 2).

    Cores are mapped onto mesh NoCs of growing size.  Flows are taken
    in non-increasing bandwidth order (preferring flows whose endpoints
    are already mapped); placing a flow immediately selects its path
    and reserves TDMA slots, per use-case, so infeasible placements are
    pruned as early as possible.  All use-cases share one core
    placement; each keeps its own resource state, and use-cases in one
    smooth-switching group share one configuration. *)

type t = {
  config : Noc_arch.Noc_config.t;
  mesh : Noc_arch.Mesh.t;
  placement : int array;  (** core id -> switch id *)
  routes : Noc_arch.Route.t list;
      (** one configured connection per (use-case, flow) *)
  states : Resources.t array;  (** final per-use-case resource state *)
  groups : int list list;      (** smooth-switching groups used *)
}

type failure = {
  attempts : (int * int * string) list;
      (** (mesh width, height, failure reason) per size tried *)
}

val switch_count : t -> int
(** Size of the designed NoC, the paper's §6.2 quality metric. *)

val switches_in_use : t -> int
(** Switches that host an NI or carry at least one route (mostly of
    interest on meshes larger than strictly necessary). *)

val routes_of_use_case : t -> int -> Noc_arch.Route.t list

type engine =
  | Indexed
      (** rank-partitioned worklist heaps, a (src, dst) pending index
          and bitmask slot intersection — the fast default *)
  | Reference
      (** the straightforward scan/filter/list-intersection
          formulation, kept as the oracle for the determinism
          regression tests.  Both engines produce byte-identical
          placements, routes and slot assignments. *)

type attempt_cache = {
  lookup : width:int -> height:int -> (t, string) result option;
  store : width:int -> height:int -> (t, string) result -> unit;
  refuted : width:int -> height:int -> string option;
  record_refuted : width:int -> height:int -> string -> unit;
}
(** Memoization hooks for the growth loop, one mesh size at a time
    (see {!Mapping_cache.design_cache}, which builds them over the
    process-wide store).  The contract that keeps cached and fresh
    runs byte-identical: [lookup] may only return what a prior [store]
    recorded for the exact same problem at that size, and [refuted]
    may only return refutations recorded by a sound feasibility
    certificate for the same problem.  Closures must be safe to call
    from {!Noc_util.Domain_pool} workers — the speculative size search
    consults them concurrently. *)

val map_design :
  ?config:Noc_arch.Noc_config.t ->
  ?engine:engine ->
  ?parallel:bool ->
  ?prune:bool ->
  ?cache:attempt_cache ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  (t, failure) result
(** Run Algorithm 2.  [groups] partitions the use-case ids (get it
    from {!Switching.groups}); use-case ids must equal their list
    position.  Tries mesh sizes from {!Noc_arch.Mesh.growth_sequence}
    until one maps, or returns every size's failure reason.

    [parallel] (default [true]) evaluates a window of mesh sizes
    speculatively on the shared {!Noc_util.Domain_pool} workers and
    keeps the smallest success; the result is identical to the
    sequential search because each size attempt is deterministic and
    independent.  Pass [false] (or run with
    [Noc_util.Domain_pool.set_default_jobs 1]) for a strictly
    sequential search.

    [prune] (default [true]) skips sizes a {!Feasibility} certificate
    proves infeasible; they are recorded in the failure's [attempts]
    as ["statically infeasible: ..."] without running placement or
    routing.  Because the certificate's bounds are sound the result is
    identical either way ([false] is the [--no-prune] escape hatch).

    [cache] memoizes the loop per mesh size: hits replay the recorded
    attempt (success or failure) without running placement or routing,
    misses are stored after computing, and certificate refutations are
    both recorded and replayed — so even a [~prune:false] run skips
    sizes an earlier pruned run proved infeasible.  The designed NoC is
    byte-identical with and without a cache (property-tested in
    [test/test_cache.ml]). *)

type placement_bias =
  | Compact  (** prefer co-locating near the traffic (default) *)
  | Spread   (** prefer emptier switches: relieves congested regions *)

val map_on_mesh :
  ?bias:placement_bias ->
  ?engine:engine ->
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  (t, string) result
(** A single size attempt (the body of the outer loop), exposed for
    tests and for the annealing refinement.  [map_design] tries each
    size with [Compact] first and retries with [Spread] before growing
    the mesh — a cheap whole-attempt backtrack that rescues sizes where
    greedy co-location paints itself into a corner. *)

val map_attempt :
  ?engine:engine ->
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  (t, string) result
(** One mesh-size attempt exactly as the growth loop runs it: greedy
    [Compact] placement first, then the [Spread] backtrack, returning
    the compact attempt's error when both fail.  This is the unit the
    design-space sweep warm-starts: retry a known-good size directly
    before falling back to the full growth search. *)

val map_with_placement :
  ?engine:engine ->
  config:Noc_arch.Noc_config.t ->
  mesh:Noc_arch.Mesh.t ->
  groups:int list list ->
  placement:int array ->
  Noc_traffic.Use_case.t list ->
  (t, string) result
(** Route all flows with a fixed core placement (no placement freedom);
    used by the simulated-annealing refinement to evaluate a candidate
    placement. *)

val total_weighted_hops : t -> float
(** Sum over all routes of bandwidth x hop count — the power-oriented
    cost that placement refinement minimises (shorter paths for bigger
    flows, cf. paper §5's intuition). *)

val pp_failure : Format.formatter -> failure -> unit
