module Sp = Noc_core.Spec_parser
module DF = Noc_core.Design_flow
module Feasibility = Noc_core.Feasibility
module Config = Noc_arch.Noc_config
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case
module D = Diagnostic

type analysis = {
  diagnostics : D.t list;
  spec : DF.spec option;
}

(* Per-use-case accumulator, in declaration order. *)
type uc_acc = {
  u_name : string;
  u_line : int;
  mutable u_flows : Flow.t list;  (* valid flows, reversed *)
  mutable u_pairs : (int * int * Flow.service) list;  (* for duplicate detection *)
}

let check doc =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let addf ?line ~pass sev fmt = Printf.ksprintf (fun m -> add (D.v ?line ~pass sev m)) fmt in
  let name = ref doc.Sp.doc_name in
  let cores = ref None (* (value, line) of the first well-formed 'cores' *) in
  let missing_cores_reported = ref false in
  let ucs : uc_acc list ref = ref [] (* reversed *) in
  let current = ref None in
  let parallel_decls = ref [] (* (line, names), reversed *) in
  let smooth_decls = ref [] (* (line, a, b), reversed *) in
  let find_uc n = List.find_opt (fun u -> u.u_name = n) !ucs in
  List.iter
    (fun (line, ev) ->
      match ev with
      | Sp.Bad message -> add (D.v ~line ~pass:"syntax" Error message)
      | Sp.Name n -> name := n
      | Sp.Cores v ->
        if v < 2 then addf ~line ~pass:"cores" Error "a SoC needs at least two cores, not %d" v
        else if !cores <> None then
          addf ~line ~pass:"cores" Error "duplicate 'cores' directive"
        else cores := Some (v, line)
      | Sp.Use_case_decl n -> (
        match find_uc n with
        | Some u ->
          addf ~line ~pass:"duplicate-use-case" Error
            "duplicate use-case '%s' (first declared on line %d)" n u.u_line;
          current := Some u (* merge flows into the original *)
        | None ->
          let u = { u_name = n; u_line = line; u_flows = []; u_pairs = [] } in
          ucs := u :: !ucs;
          current := Some u)
      | Sp.Flow_decl f -> (
        match !current with
        | None ->
          add (D.v ~line ~pass:"orphan-flow" Error "flow outside any use-case")
        | Some u ->
          let ok = ref true in
          let err pass fmt =
            Printf.ksprintf
              (fun m ->
                ok := false;
                add (D.v ~line ~pass Error m))
              fmt
          in
          if f.Flow.src = f.Flow.dst then
            err "self-flow" "flow %d -> %d connects a core to itself" f.Flow.src f.Flow.dst;
          if f.Flow.bandwidth <= 0.0 then
            err "zero-bandwidth" "flow %d -> %d requests %.1f MB/s — it reserves nothing"
              f.Flow.src f.Flow.dst f.Flow.bandwidth;
          (match !cores with
          | Some (c, _) ->
            if f.Flow.src < 0 || f.Flow.src >= c || f.Flow.dst < 0 || f.Flow.dst >= c then
              err "flow-range" "flow %d -> %d references a core outside 0..%d" f.Flow.src
                f.Flow.dst (c - 1)
          | None ->
            if not !missing_cores_reported then begin
              missing_cores_reported := true;
              addf ~line ~pass:"missing-cores" Error "declare 'cores N' before flows"
            end);
          if f.Flow.latency_ns <= 0.0 then
            err "nonpositive-latency" "flow %d -> %d has a non-positive latency bound"
              f.Flow.src f.Flow.dst;
          if (not (Flow.is_guaranteed f)) && f.Flow.latency_ns <> infinity then
            err "be-latency"
              "flow %d -> %d is best-effort but carries a latency bound (no mechanism \
               honours it)"
              f.Flow.src f.Flow.dst;
          let key = (f.Flow.src, f.Flow.dst, f.Flow.service) in
          if List.mem key u.u_pairs then
            addf ~line ~pass:"duplicate-flow" Warning
              "use-case '%s' already has a %s flow %d -> %d: the parser merges them \
               (bandwidths sum, latencies min)"
              u.u_name
              (if Flow.is_guaranteed f then "guaranteed" else "best-effort")
              f.Flow.src f.Flow.dst;
          u.u_pairs <- key :: u.u_pairs;
          if !ok then u.u_flows <- f :: u.u_flows)
      | Sp.Parallel names -> parallel_decls := (line, names) :: !parallel_decls
      | Sp.Smooth (a, b) -> smooth_decls := (line, a, b) :: !smooth_decls)
    doc.Sp.events;
  let ucs = List.rev !ucs in
  let order = List.map (fun u -> u.u_name) ucs in
  let id_of n =
    let rec go i = function
      | [] -> None
      | u :: _ when u = n -> Some i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 order
  in
  (* Resolve one referenced name; [None] drops it with a diagnostic. *)
  let resolve ~line ~where n =
    match find_uc n with
    | None ->
      add
        (D.vf ~line ~pass:"dangling-ref" Error "unknown use-case '%s' in '%s'" n where);
      None
    | Some u ->
      if u.u_line > line then
        add
          (D.vf ~line ~pass:"forward-ref" Error
             "use-case '%s' is declared on line %d, after this '%s' reference" n u.u_line
             where);
      id_of n
  in
  let parallel =
    List.rev_map
      (fun (line, names) ->
        if List.length names < 2 then begin
          addf ~line ~pass:"parallel-arity" Error "'parallel' needs at least two use-cases";
          (line, [])
        end
        else begin
          let ids = List.filter_map (resolve ~line ~where:"parallel") names in
          let distinct =
            List.fold_left (fun acc i -> if List.mem i acc then acc else i :: acc) [] ids
            |> List.rev
          in
          if List.length distinct < List.length ids then
            addf ~line ~pass:"duplicate-ref" Error
              "a use-case appears twice in one 'parallel' set";
          (line, if List.length distinct >= 2 then distinct else [])
        end)
      !parallel_decls
  in
  let seen_pairs = ref [] in
  let smooth =
    List.rev_map
      (fun (line, a, b) ->
        match (resolve ~line ~where:"smooth" a, resolve ~line ~where:"smooth" b) with
        | Some ia, Some ib when ia = ib ->
          addf ~line ~pass:"self-smooth" Error
            "'smooth %s %s' pairs a use-case with itself" a b;
          (line, None)
        | Some ia, Some ib ->
          let key = (min ia ib, max ia ib) in
          if List.mem key !seen_pairs then begin
            addf ~line ~pass:"duplicate-ref" Warning
              "smooth pair '%s' / '%s' is already required" a b;
            (line, None)
          end
          else begin
            seen_pairs := key :: !seen_pairs;
            (* Inside one compound the pair is smooth by construction
               (paper §4): members of a parallel set are linked to the
               compound use-case automatically. *)
            List.iter
              (fun (pline, ids) ->
                if List.mem ia ids && List.mem ib ids then
                  addf ~line ~pass:"redundant-smooth" Warning
                    "smooth '%s' '%s' is already implied by the 'parallel' set on line %d"
                    a b pline)
              parallel;
            (line, Some (ia, ib))
          end
        | _ -> (line, None))
      !smooth_decls
  in
  List.iter
    (fun u ->
      if u.u_flows = [] then
        addf ~line:u.u_line ~pass:"unreachable-use-case" Warning
          "use-case '%s' declares no (valid) traffic: it constrains nothing" u.u_name)
    ucs;
  let spec =
    match (!cores, ucs) with
    | None, _ ->
      if not !missing_cores_reported then
        add (D.v ~pass:"missing-cores" Error "missing 'cores' directive");
      None
    | _, [] ->
      add (D.v ~pass:"no-use-cases" Error "no use-cases declared");
      None
    | Some (c, _), _ -> (
      try
        let use_cases =
          List.mapi
            (fun id u ->
              Use_case.create ~id ~name:u.u_name ~cores:c
                (List.rev (List.filter (fun f -> Flow.validate ~cores:c f = Ok ()) u.u_flows)))
            ucs
        in
        Some
          {
            DF.name = !name;
            use_cases;
            parallel = List.filter_map (fun (_, ids) -> if ids = [] then None else Some ids) parallel;
            smooth = List.filter_map snd smooth;
          }
      with Invalid_argument msg ->
        add (D.vf ~pass:"spec" Error "cannot assemble the spec: %s" msg);
        None)
  in
  { diagnostics = List.rev !diags; spec }

(* First source line declaring a flow on this ordered pair (compound
   use-cases have no lines of their own; their flows all come from a
   base declaration of the same pair). *)
let flow_line doc ~src ~dst =
  List.fold_left
    (fun acc (line, ev) ->
      match (acc, ev) with
      | None, Sp.Flow_decl f when f.Flow.src = src && f.Flow.dst = dst -> Some line
      | _ -> acc)
    None doc.Sp.events

let feasibility ?(config = Config.default) ~doc spec =
  match Config.validate config with
  | Error m -> ([ D.vf ~pass:"config" Error "invalid configuration: %s" m ], None)
  | Ok () -> (
    match DF.expand spec with
    | exception Invalid_argument msg ->
      ([ D.vf ~pass:"compound" Error "cannot expand parallel modes: %s" msg ], None)
    | all, _compounds, groups ->
      let cert = Feasibility.certify ~config ~groups all in
      let imps =
        List.map
          (fun (i : Feasibility.impossibility) ->
            let line = flow_line doc ~src:i.Feasibility.src ~dst:i.Feasibility.dst in
            D.v ?line ~pass:"infeasible-flow" Error i.Feasibility.reason)
          cert.Feasibility.impossible
      in
      let summary =
        if imps <> [] then []
        else
          match Feasibility.first_admitted cert with
          | None ->
            [
              D.vf ~pass:"infeasible-design" Error
                "no mesh size up to %dx%d satisfies the static lower bounds"
                cert.Feasibility.max_dim cert.Feasibility.max_dim;
            ]
          | Some (1, 1) -> []
          | Some (w, h) ->
            [
              D.vf ~pass:"certified-start" Info
                "certified lower bound: the mesh growth search can start at %dx%d" w h;
            ]
      in
      (imps @ summary, Some cert))
