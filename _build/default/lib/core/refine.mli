(** Placement refinement by simulated annealing (paper §5: "once the
    initial mapping step is performed, the solution space can be
    explored further by considering swapping of vertices using
    simulated annealing or tabu search, as performed in [19]").

    The initial greedy mapping is refined by swapping core placements
    (or moving a core to a free NI) and re-running the unified routing;
    a candidate is kept according to the usual Metropolis rule on the
    bandwidth-weighted hop count, which is the dominant term of NoC
    power (paper §5's intuition: large flows on short paths). *)

type options = {
  iterations : int;     (** proposals to evaluate *)
  initial_temp : float; (** Metropolis temperature, in cost units *)
  cooling : float;      (** geometric cooling factor per iteration *)
  seed : int;           (** PRNG seed (refinement is deterministic) *)
}

val default_options : options
(** 120 iterations, temperature 0.1 x initial cost, cooling 0.97,
    seed 42. *)

type outcome = {
  result : Mapping.t;      (** best feasible design found *)
  initial_cost : float;    (** bandwidth-weighted hops before refinement *)
  final_cost : float;      (** after refinement (<= initial) *)
  accepted : int;          (** accepted proposals *)
  evaluated : int;         (** proposals whose routing was attempted *)
}

val anneal :
  ?options:options -> Mapping.t -> Noc_traffic.Use_case.t list -> outcome
(** Refine a completed mapping.  Never returns a worse design than the
    input: the best feasible placement seen is kept. *)

type tabu_options = {
  tabu_iterations : int;  (** neighbourhood steps *)
  tenure : int;           (** steps a reversed move stays forbidden *)
  candidates : int;       (** neighbours evaluated per step *)
  tabu_seed : int;
}

val default_tabu_options : tabu_options
(** 60 steps, tenure 8, 6 candidates per step, seed 42. *)

val tabu :
  ?options:tabu_options -> Mapping.t -> Noc_traffic.Use_case.t list -> outcome
(** Tabu-search refinement (the paper's §5 names it alongside simulated
    annealing, citing [19]): each step takes the best feasible
    neighbour whose move is not tabu — even if it is uphill — and
    forbids the reverse move for [tenure] steps; aspiration overrides
    the tabu when a move beats the best cost seen.  Never returns a
    worse design than the input. *)
