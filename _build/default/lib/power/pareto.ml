module Config = Noc_arch.Noc_config
module Mapping = Noc_core.Mapping

type point = {
  freq_mhz : Noc_util.Units.frequency;
  switches : int option;
  area_mm2 : Noc_util.Units.area option;
}

let default_frequencies =
  [ 100.0; 125.0; 150.0; 175.0; 200.0; 250.0; 300.0; 350.0; 400.0; 500.0; 650.0; 800.0; 1000.0; 1250.0; 1500.0; 1750.0; 2000.0 ]

let sweep ?(frequencies = default_frequencies) ~config ~groups use_cases =
  let run f =
    let cfg = Config.with_freq config f in
    match Mapping.map_design ~config:cfg ~groups use_cases with
    | Ok m ->
      { freq_mhz = f; switches = Some (Mapping.switch_count m); area_mm2 = Some (Area_model.noc_area m) }
    | Error _ -> { freq_mhz = f; switches = None; area_mm2 = None }
  in
  List.map run (List.sort compare frequencies)

let pareto_front points =
  let feasible =
    List.filter_map
      (fun p -> match p.area_mm2 with Some a -> Some (p, a) | None -> None)
      points
  in
  let dominated (p, a) =
    List.exists
      (fun (q, b) -> q.freq_mhz <= p.freq_mhz && b < a)
      feasible
  in
  List.filter_map (fun (p, a) -> if dominated (p, a) then None else Some p)
    (List.map (fun (p, a) -> (p, a)) feasible)
