(* Set-top box SoC (the paper's D1 class): multiple use-cases with an
   external-memory bottleneck, compound modes, smooth switching, DVS
   analysis, and VHDL generation.

   The scenario: a set-top box that can display HD video (uc 0), record
   a second program (uc 1), browse an EPG/internet portal (uc 2) and
   run a background file transfer (uc 3).  Display and record can run
   in parallel (a compound mode); the EPG is latency-critical and must
   switch smoothly with the display.

   Run with: dune exec examples/set_top_box.exe *)

module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case
module Config = Noc_arch.Noc_config
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module Dvfs = Noc_power.Dvfs
module Min_freq = Noc_power.Min_freq

(* Cores: 0 external memory, 1 cpu, 2 video decoder, 3 video encoder,
   4 audio, 5 display controller, 6 transport stream in, 7 graphics,
   8 network, 9 disk controller. *)
let cores = 10
let mem = 0

let hd_display =
  Use_case.create ~id:0 ~name:"hd-display" ~cores
    [
      Flow.v ~src:6 ~dst:mem 120.0;                    (* stream capture *)
      Flow.v ~src:mem ~dst:2 400.0;                    (* decoder reads *)
      Flow.v ~src:2 ~dst:mem 350.0;                    (* decoded frames *)
      Flow.v ~src:mem ~dst:5 400.0;                    (* display reads *)
      Flow.v ~src:mem ~dst:4 8.0;                      (* audio *)
      Flow.v ~src:1 ~dst:mem ~latency_ns:500.0 2.0;    (* cpu control *)
      Flow.v ~src:7 ~dst:mem 60.0;                     (* OSD graphics *)
    ]

let record =
  Use_case.create ~id:1 ~name:"record" ~cores
    [
      Flow.v ~src:6 ~dst:mem 120.0;
      Flow.v ~src:mem ~dst:3 220.0;
      Flow.v ~src:3 ~dst:mem 180.0;
      Flow.v ~src:mem ~dst:9 160.0;                    (* to disk *)
      Flow.v ~src:1 ~dst:mem ~latency_ns:500.0 2.0;
    ]

let portal =
  Use_case.create ~id:2 ~name:"epg-portal" ~cores
    [
      Flow.v ~src:8 ~dst:mem 25.0;
      Flow.v ~src:mem ~dst:7 90.0;
      Flow.v ~src:7 ~dst:mem 60.0;
      Flow.v ~src:mem ~dst:5 120.0;
      Flow.v ~src:1 ~dst:mem ~latency_ns:400.0 4.0;
    ]

let file_transfer =
  (* The bulk transfer is best-effort: it rides on leftover TDMA slots
     and needs no reservation; only the control stream keeps a GT
     contract. *)
  Use_case.create ~id:3 ~name:"file-transfer" ~cores
    [
      Flow.v ~service:Flow.Best_effort ~src:8 ~dst:mem 40.0;
      Flow.v ~service:Flow.Best_effort ~src:mem ~dst:9 40.0;
      Flow.v ~src:1 ~dst:mem ~latency_ns:900.0 1.0;
    ]

let () =
  let spec =
    {
      DF.name = "set_top_box";
      use_cases = [ hd_display; record; portal; file_transfer ];
      parallel = [ [ 0; 1 ]; [ 1; 3 ] ];  (* display+record, record+transfer *)
      smooth = [ (0, 2) ];  (* EPG must switch smoothly with the display *)
    }
  in
  let config = { Config.default with nis_per_switch = 4 } in
  match DF.run ~config ~refine:true spec with
  | Error msg ->
    prerr_endline ("design failed: " ^ msg);
    exit 1
  | Ok design ->
    Format.printf "%a@.@." DF.pp_summary design;
    List.iter
      (fun c ->
        Format.printf "compound %s covers use-cases {%s}@."
          c.Noc_core.Compound.use_case.Use_case.name
          (String.concat "," (List.map string_of_int c.Noc_core.Compound.members)))
      design.DF.compounds;
    Format.printf "groups sharing one configuration: @[%a@]@.@."
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         (fun ppf g ->
           Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int g))))
      design.DF.groups;

    (* Per-use-case DVS/DFS: what clock does each epoch need? *)
    let m = design.DF.mapping in
    let freqs =
      List.map
        (fun u ->
          let f =
            Option.value
              (Min_freq.for_use_case_on_design ~design:m u)
              ~default:config.Config.freq_mhz
          in
          Format.printf "%-16s needs %4.0f MHz@." u.Use_case.name f;
          f)
        design.DF.all_use_cases
    in
    let f_design = List.fold_left Float.max 0.0 freqs in
    let epochs = List.map (fun f -> (f, 1.0)) freqs in
    Format.printf "@.DVS/DFS saving over running at %.0f MHz: %.1f %%@." f_design
      (Dvfs.savings_percent ~f_design ~epochs);

    (* Emit the VHDL backend output. *)
    let vhdl = Noc_rtl.Netlist.generate ~design_name:"set_top_box" m in
    (match Noc_rtl.Wellformed.check vhdl with
    | Ok () ->
      Format.printf "@.generated VHDL: %d lines, lint clean@."
        (List.length (String.split_on_char '\n' vhdl))
    | Error issues -> Format.printf "@.VHDL lint found %d issues@." (List.length issues))
