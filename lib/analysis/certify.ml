(* The engine-independent certificate checker.

   Everything here is re-derived from the design record itself with
   deliberately naive code: claims are rebuilt from the routes' start
   slots by the TDMA discipline's definition (start t claims slot t+i
   on the i-th link), paths are walked link by link with
   Mesh.link_endpoints, and the worst-case latency bound is found by
   brute force over every arrival offset of the revolution.  Nothing
   is shared with Tdma, Path_select or Verify on purpose: an auditor
   that reuses the auditee's code inherits its bugs. *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Slot_table = Noc_arch.Slot_table
module Mapping = Noc_core.Mapping
module Resources = Noc_core.Resources
module Codec = Noc_core.Mapping_codec
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case
module Json = Noc_export.Json

type flow_bound = {
  use_case : int;
  flow_id : int;
  src_core : int;
  dst_core : int;
  hops : int;
  granted_slots : int;
  bound_ns : float;
  required_ns : float;
  slack_ns : float;
}

type finding = {
  check : string;
  use_case : int;
  link : int;
  detail : string;
}

type t = {
  design : string;
  digest : string option;
  switches : int;
  use_cases : int;
  routes : int;
  checks : int;
  findings : finding list;
  bounds : flow_bound list;
  ni_buffer_words : (int * int) list;
  signature : string;
}

let clean t = t.findings = []

let exit_code t = if clean t then 0 else 2

(* --- static worst-case latency: slot-table phase analysis ------------- *)

(* A payload arriving at the head of slot [t] launches at the next
   reserved starting slot (possibly [t] itself), spends one slot
   crossing the NI/first link and one more per further hop.  The bound
   is the worst such launch-to-delivery distance over every arrival
   offset of the revolution — pure table inspection, no simulation. *)
let static_bound_ns ~config ~slot_starts ~hops =
  let slot_ns = Config.slot_duration_ns config in
  if hops = 0 then slot_ns
  else
    match slot_starts with
    | [] -> infinity
    | starts ->
      let slots = config.Config.slots in
      let reserved = Array.make slots false in
      List.iter (fun s -> reserved.(((s mod slots) + slots) mod slots) <- true) starts;
      let worst = ref 0 in
      for t = 0 to slots - 1 do
        let w = ref 0 in
        while not reserved.((t + !w) mod slots) do
          incr w
        done;
        if !w > !worst then worst := !w
      done;
      float_of_int (!worst + 1 + hops) *. slot_ns

(* Worst service gap in slots (arrival-to-launch plus the launch slot
   itself): the window a source-side NI buffer must absorb. *)
let worst_service_gap ~slots ~slot_starts =
  match slot_starts with
  | [] -> slots
  | starts ->
    let reserved = Array.make slots false in
    List.iter (fun s -> reserved.(((s mod slots) + slots) mod slots) <- true) starts;
    let worst = ref 0 in
    for t = 0 to slots - 1 do
      let w = ref 0 in
      while not reserved.((t + !w) mod slots) do
        incr w
      done;
      if !w > !worst then worst := !w
    done;
    !worst + 1

(* --- the checker ------------------------------------------------------- *)

let certify ?(name = "design") (m : Mapping.t) use_cases =
  let config = m.Mapping.config in
  let mesh = m.Mapping.mesh in
  let slots = config.Config.slots in
  let slot_bw = Config.slot_bandwidth config in
  let slot_ns = Config.slot_duration_ns config in
  let n_switch = Mesh.switch_count mesh in
  let n_links = Mesh.link_count mesh in
  let n_cores = Array.length m.Mapping.placement in
  let checks = ref 0 in
  let findings = ref [] in
  let fail ?(use_case = -1) ?(link = -1) check detail =
    findings := { check; use_case; link; detail } :: !findings
  in
  let run ?use_case ?link id cond detail =
    incr checks;
    if not cond then fail ?use_case ?link id (detail ())
  in
  (* Configuration sanity. *)
  (incr checks;
   match Config.validate config with
   | Ok () -> ()
   | Error msg -> fail "config" msg);
  (* Placement: in-range switches, NI capacity per switch. *)
  Array.iteri
    (fun core sw ->
      run "placement-range"
        (sw >= 0 && sw < n_switch)
        (fun () -> Printf.sprintf "core %d placed on switch %d (mesh has %d)" core sw n_switch))
    m.Mapping.placement;
  (let hosted = Array.make n_switch 0 in
   Array.iter (fun sw -> if sw >= 0 && sw < n_switch then hosted.(sw) <- hosted.(sw) + 1) m.Mapping.placement;
   Array.iteri
     (fun sw n ->
       if n > 0 then
         run "ni-capacity"
           (n <= config.Config.nis_per_switch)
           (fun () ->
             Printf.sprintf "switch %d hosts %d cores but has %d NIs" sw n
               config.Config.nis_per_switch))
     hosted);
  (* Shape: one resource state per use-case, ids by position, groups
     partition the ids. *)
  let n_ucs = List.length use_cases in
  let shape_ok = ref true in
  run "shape"
    (Array.length m.Mapping.states = n_ucs)
    (fun () ->
      shape_ok := false;
      Printf.sprintf "%d resource states for %d use-cases" (Array.length m.Mapping.states) n_ucs);
  List.iteri
    (fun i u ->
      run "shape" (u.Use_case.id = i) (fun () ->
          shape_ok := false;
          Printf.sprintf "use-case at position %d has id %d" i u.Use_case.id))
    use_cases;
  (let seen = Array.make n_ucs false in
   List.iter
     (List.iter (fun uc ->
          incr checks;
          if uc < 0 || uc >= n_ucs then begin
            shape_ok := false;
            fail "shape" (Printf.sprintf "group member %d is not a use-case id" uc)
          end
          else if seen.(uc) then begin
            shape_ok := false;
            fail "shape" (Printf.sprintf "use-case %d appears in two groups" uc)
          end
          else seen.(uc) <- true))
     m.Mapping.groups;
   Array.iteri
     (fun uc present ->
       if not present then begin
         shape_ok := false;
         fail "shape" (Printf.sprintf "use-case %d belongs to no group" uc)
       end)
     seen);
  if not !shape_ok then begin
    (* Per-use-case bookkeeping below indexes states and groups by id;
       with a broken shape those reads are meaningless (or unsafe), so
       the certificate stops at the structural refutation. *)
    let findings = List.rev !findings in
    let payload_signature = Digest.to_hex (Digest.string (name ^ string_of_int !checks)) in
    {
      design = name;
      digest = Codec.digest m;
      switches = n_switch;
      use_cases = n_ucs;
      routes = List.length m.Mapping.routes;
      checks = !checks;
      findings;
      bounds = [];
      ni_buffer_words = [];
      signature = payload_signature;
    }
  end
  else begin
    (* Routes indexed by use-case. *)
    let routes_of = Array.make n_ucs [] in
    List.iter
      (fun r ->
        let uc = r.Route.use_case in
        incr checks;
        if uc < 0 || uc >= n_ucs then
          fail "route-use-case" (Printf.sprintf "route for flow %d names unknown use-case %d" r.Route.flow_id uc)
        else routes_of.(uc) <- r :: routes_of.(uc))
      m.Mapping.routes;
    Array.iteri (fun uc rs -> routes_of.(uc) <- List.rev rs) routes_of;
    (* Per-route structural checks: endpoints, chain, loop-freedom,
       slot ranges, service discipline. *)
    let route_structurally_ok = Hashtbl.create 64 in
    List.iter
      (fun r ->
        let uc = r.Route.use_case in
        if uc >= 0 && uc < n_ucs then begin
          let here ?link id cond detail = run ~use_case:uc ?link id cond detail in
          let ok = ref true in
          let need ?link id cond detail =
            here ?link id cond detail;
            if not cond then ok := false
          in
          need "core-range"
            (r.Route.src_core >= 0 && r.Route.src_core < n_cores && r.Route.dst_core >= 0
           && r.Route.dst_core < n_cores)
            (fun () ->
              Printf.sprintf "flow %d endpoints (%d, %d) outside the %d mapped cores"
                r.Route.flow_id r.Route.src_core r.Route.dst_core n_cores);
          if !ok then
            need "route-endpoints"
              (m.Mapping.placement.(r.Route.src_core) = r.Route.src_switch
              && m.Mapping.placement.(r.Route.dst_core) = r.Route.dst_switch)
              (fun () ->
                Printf.sprintf "flow %d route endpoints (sw %d -> sw %d) disagree with the placement"
                  r.Route.flow_id r.Route.src_switch r.Route.dst_switch);
          (* Walk the chain with nothing but link endpoints. *)
          let links_ok =
            List.for_all (fun l -> l >= 0 && l < n_links) r.Route.links
          in
          here "link-range" links_ok (fun () ->
              Printf.sprintf "flow %d path names a link outside 0..%d" r.Route.flow_id (n_links - 1));
          if links_ok then begin
            let visited = Hashtbl.create 8 in
            Hashtbl.replace visited r.Route.src_switch ();
            let rec walk at = function
              | [] -> if at <> r.Route.dst_switch then Some "path stops short of the destination switch" else None
              | l :: rest ->
                let a, b = Mesh.link_endpoints mesh l in
                if a <> at then Some (Printf.sprintf "link %d departs switch %d, not %d" l a at)
                else if Hashtbl.mem visited b then
                  Some (Printf.sprintf "path revisits switch %d (a routing loop)" b)
                else begin
                  Hashtbl.replace visited b ();
                  walk b rest
                end
            in
            let verdict = walk r.Route.src_switch r.Route.links in
            here "route-path" (verdict = None) (fun () ->
                Printf.sprintf "flow %d: %s" r.Route.flow_id (Option.value verdict ~default:""));
            if verdict <> None then ok := false
          end
          else ok := false;
          need "slot-range"
            (List.for_all (fun s -> s >= 0 && s < slots) r.Route.slot_starts)
            (fun () ->
              Printf.sprintf "flow %d reserves a starting slot outside 0..%d" r.Route.flow_id
                (slots - 1));
          (match r.Route.service with
          | Route.Be ->
            here "be-reservation" (r.Route.slot_starts = []) (fun () ->
                Printf.sprintf "best-effort flow %d holds slot reservations" r.Route.flow_id)
          | Route.Gt ->
            if r.Route.links <> [] then
              here "no-reservation" (r.Route.slot_starts <> []) (fun () ->
                  Printf.sprintf "guaranteed flow %d crosses %d links with no reserved slots"
                    r.Route.flow_id (List.length r.Route.links)));
          Hashtbl.replace route_structurally_ok (uc, r.Route.flow_id) !ok
        end)
      m.Mapping.routes;
    (* Per-flow guarantees against the spec's demand, and the static
       latency bounds. *)
    let bounds = ref [] in
    List.iter
      (fun u ->
        let uc = u.Use_case.id in
        let own = routes_of.(uc) in
        List.iter
          (fun f ->
            let service = if Flow.is_guaranteed f then Route.Gt else Route.Be in
            let matching =
              List.filter
                (fun r ->
                  r.Route.src_core = f.Flow.src && r.Route.dst_core = f.Flow.dst
                  && r.Route.service = service)
                own
            in
            run ~use_case:uc "route-exists"
              (List.length matching = 1)
              (fun () ->
                Printf.sprintf "flow %d -> %d: %d configured connections (want exactly 1)"
                  f.Flow.src f.Flow.dst (List.length matching));
            match matching with
            | [ r ] ->
              run ~use_case:uc "demand-record"
                (r.Route.bandwidth = f.Flow.bandwidth)
                (fun () ->
                  Printf.sprintf
                    "flow %d -> %d: route records %.17g MB/s but the spec demands %.17g MB/s"
                    f.Flow.src f.Flow.dst r.Route.bandwidth f.Flow.bandwidth);
              if service = Route.Gt then begin
                let hops = List.length r.Route.links in
                let granted = List.length r.Route.slot_starts in
                if hops > 0 then
                  run ~use_case:uc "bandwidth"
                    (float_of_int granted *. slot_bw +. 1e-9 >= f.Flow.bandwidth)
                    (fun () ->
                      Printf.sprintf
                        "flow %d -> %d: %d slots grant %.1f MB/s < demanded %.1f MB/s" f.Flow.src
                        f.Flow.dst granted
                        (float_of_int granted *. slot_bw)
                        f.Flow.bandwidth);
                let bound_ns =
                  static_bound_ns ~config ~slot_starts:r.Route.slot_starts ~hops
                in
                run ~use_case:uc "latency"
                  (bound_ns <= f.Flow.latency_ns +. 1e-9)
                  (fun () ->
                    Printf.sprintf "flow %d -> %d: static bound %.1f ns exceeds constraint %.1f ns"
                      f.Flow.src f.Flow.dst bound_ns f.Flow.latency_ns);
                bounds :=
                  {
                    use_case = uc;
                    flow_id = r.Route.flow_id;
                    src_core = f.Flow.src;
                    dst_core = f.Flow.dst;
                    hops;
                    granted_slots = granted;
                    bound_ns;
                    required_ns = f.Flow.latency_ns;
                    slack_ns = f.Flow.latency_ns -. bound_ns;
                  }
                  :: !bounds
              end
            | _ -> ())
          u.Use_case.flows)
      use_cases;
    (* Slot claims: rebuild every (link, slot) each route occupies from
       its starting slots and check exclusivity within the use-case,
       exact ownership in the use-case's own tables, and that no table
       holds reservations its switching group cannot account for. *)
    let group_of = Array.make n_ucs [] in
    List.iter (fun g -> List.iter (fun uc -> group_of.(uc) <- g) g) m.Mapping.groups;
    let claims_of = Array.make n_ucs (Hashtbl.create 0) in
    Array.iteri (fun uc _ -> claims_of.(uc) <- Hashtbl.create 64) claims_of;
    List.iter
      (fun (r : Route.t) ->
        let uc = r.Route.use_case in
        if
          uc >= 0 && uc < n_ucs && r.Route.service = Route.Gt
          && Option.value (Hashtbl.find_opt route_structurally_ok (uc, r.Route.flow_id))
               ~default:false
        then
          let claims = claims_of.(uc) in
          List.iter
            (fun start ->
              List.iteri
                (fun hop link ->
                  let slot = (start + hop) mod slots in
                  incr checks;
                  match Hashtbl.find_opt claims (link, slot) with
                  | Some other when other <> r.Route.flow_id ->
                    fail ~use_case:uc ~link "slot-exclusivity"
                      (Printf.sprintf "link %d slot %d claimed by both flow %d and flow %d" link
                         slot other r.Route.flow_id)
                  | Some _ -> ()
                  | None -> Hashtbl.replace claims (link, slot) r.Route.flow_id)
                r.Route.links)
            r.Route.slot_starts)
      m.Mapping.routes;
    (* Claims versus the recorded slot tables, both directions. *)
    List.iter
      (fun u ->
        let uc = u.Use_case.id in
        let state = m.Mapping.states.(uc) in
        (* Every claim must be owned by exactly the claiming flow. *)
        Hashtbl.iter
          (fun (link, slot) flow_id ->
            incr checks;
            match Slot_table.owner (Resources.table state link) slot with
            | Some o when o = flow_id -> ()
            | Some o ->
              fail ~use_case:uc ~link "slot-owner"
                (Printf.sprintf "link %d slot %d: table owner is %d but flow %d claims it" link
                   slot o flow_id)
            | None ->
              fail ~use_case:uc ~link "slot-owner"
                (Printf.sprintf "link %d slot %d: claimed by flow %d but free in the table" link
                   slot flow_id))
          claims_of.(uc);
        (* Every recorded reservation must be accounted for: claimed by
           this use-case, or mirrored from a switching-group partner
           (shared configuration) under the partner's connection id. *)
        for link = 0 to n_links - 1 do
          let table = Resources.table state link in
          for slot = 0 to slots - 1 do
            match Slot_table.owner table slot with
            | None -> ()
            | Some o ->
              if not (Hashtbl.mem claims_of.(uc) (link, slot)) then begin
                incr checks;
                let accounted =
                  List.exists
                    (fun partner ->
                      partner <> uc
                      &&
                      match Hashtbl.find_opt claims_of.(partner) (link, slot) with
                      | Some pf -> pf = o
                      | None -> false)
                    group_of.(uc)
                in
                if not accounted then
                  fail ~use_case:uc ~link "orphan-slot"
                    (Printf.sprintf
                       "link %d slot %d reserved for connection %d, which no route of the \
                        switching group explains"
                       link slot o)
              end
          done
        done)
      use_cases;
    (* Shared configuration inside each smooth-switching group: the
       occupancy pattern (which slots are taken) must be identical
       across members — rebuilt from the tables, not from Verify. *)
    List.iter
      (fun group ->
        match group with
        | [] | [ _ ] -> ()
        | leader :: rest ->
          let occupied uc link slot =
            Slot_table.owner (Resources.table m.Mapping.states.(uc) link) slot <> None
          in
          List.iter
            (fun member ->
              for link = 0 to n_links - 1 do
                incr checks;
                let agree = ref true in
                for slot = 0 to slots - 1 do
                  if occupied leader link slot <> occupied member link slot then agree := false
                done;
                if not !agree then
                  fail ~use_case:member ~link "group-config"
                    (Printf.sprintf
                       "link %d slot occupancy differs from group leader (use-case %d)" link
                       leader)
              done)
            rest)
      m.Mapping.groups;
    (* NI link budgets: when the architecture constrains them, each
       core's aggregate flow bandwidth (as source plus as destination)
       must fit one NI link, per use-case. *)
    if config.Config.constrain_ni_links then begin
      let capacity = Config.link_capacity config in
      List.iter
        (fun u ->
          let uc = u.Use_case.id in
          let demand = Array.make n_cores 0.0 in
          List.iter
            (fun f ->
              if f.Flow.src >= 0 && f.Flow.src < n_cores then
                demand.(f.Flow.src) <- demand.(f.Flow.src) +. f.Flow.bandwidth;
              if f.Flow.dst >= 0 && f.Flow.dst < n_cores then
                demand.(f.Flow.dst) <- demand.(f.Flow.dst) +. f.Flow.bandwidth)
            u.Use_case.flows;
          Array.iteri
            (fun core d ->
              if d > 0.0 then
                run ~use_case:uc "ni-budget"
                  (d <= capacity +. 1e-9)
                  (fun () ->
                    Printf.sprintf "core %d needs %.1f MB/s of NI bandwidth, link carries %.1f"
                      core d capacity))
            demand)
        use_cases
    end;
    (* NI buffer provisioning implied by the reservations: the source
       buffer absorbs the worst service gap at the contracted rate plus
       one in-flight payload; each incoming connection needs one
       reassembly payload.  A core's NI must cover its worst use-case. *)
    let payload_bytes =
      float_of_int config.Config.slot_cycles *. float_of_int config.Config.link_width_bits /. 8.0
    in
    let word_bytes = float_of_int config.Config.link_width_bits /. 8.0 in
    let buffer_words = Array.make n_cores 0 in
    List.iter
      (fun u ->
        let uc = u.Use_case.id in
        let per_core = Array.make n_cores 0.0 in
        List.iter
          (fun (r : Route.t) ->
            if r.Route.src_core >= 0 && r.Route.src_core < n_cores
               && r.Route.dst_core >= 0 && r.Route.dst_core < n_cores
            then begin
              let source_bytes =
                match (r.Route.service, r.Route.links) with
                | Route.Gt, _ :: _ when r.Route.slot_starts <> [] ->
                  let gap = worst_service_gap ~slots ~slot_starts:r.Route.slot_starts in
                  (r.Route.bandwidth /. 1000.0 *. (float_of_int gap *. slot_ns)) +. payload_bytes
                | _ -> payload_bytes
              in
              per_core.(r.Route.src_core) <- per_core.(r.Route.src_core) +. source_bytes;
              per_core.(r.Route.dst_core) <- per_core.(r.Route.dst_core) +. payload_bytes
            end)
          routes_of.(uc);
        Array.iteri
          (fun core bytes ->
            let words = int_of_float (Float.ceil (bytes /. word_bytes)) in
            if words > buffer_words.(core) then buffer_words.(core) <- words)
          per_core)
      use_cases;
    let ni_buffer_words =
      Array.to_list (Array.mapi (fun core w -> (core, w)) buffer_words)
      |> List.filter (fun (_, w) -> w > 0)
    in
    let bounds =
      List.sort
        (fun (a : flow_bound) (b : flow_bound) ->
          compare (a.use_case, a.flow_id) (b.use_case, b.flow_id))
        !bounds
    in
    let record =
      {
        design = name;
        digest = Codec.digest m;
        switches = n_switch;
        use_cases = n_ucs;
        routes = List.length m.Mapping.routes;
        checks = !checks;
        findings = List.rev !findings;
        bounds;
        ni_buffer_words;
        signature = "";
      }
    in
    record
  end

(* --- rendering and the signature --------------------------------------- *)

let fl x = if Float.is_finite x then Json.Float x else Json.String "inf"

let json_of_finding f =
  Json.Obj
    [
      ("check", Json.String f.check);
      ("use_case", Json.Int f.use_case);
      ("link", Json.Int f.link);
      ("detail", Json.String f.detail);
    ]

let json_of_bound (b : flow_bound) =
  Json.Obj
    [
      ("use_case", Json.Int b.use_case);
      ("flow_id", Json.Int b.flow_id);
      ("src_core", Json.Int b.src_core);
      ("dst_core", Json.Int b.dst_core);
      ("hops", Json.Int b.hops);
      ("granted_slots", Json.Int b.granted_slots);
      ("bound_ns", fl b.bound_ns);
      ("required_ns", fl b.required_ns);
      ("slack_ns", fl b.slack_ns);
    ]

let payload_json t =
  Json.Obj
    [
      ("design", Json.String t.design);
      ("digest", match t.digest with Some d -> Json.String d | None -> Json.Null);
      ("switches", Json.Int t.switches);
      ("use_cases", Json.Int t.use_cases);
      ("routes", Json.Int t.routes);
      ("checks", Json.Int t.checks);
      ("clean", Json.Bool (clean t));
      ("findings", Json.List (List.map json_of_finding t.findings));
      ("bounds", Json.List (List.map json_of_bound t.bounds));
      ( "ni_buffer_words",
        Json.List
          (List.map
             (fun (core, words) ->
               Json.Obj [ ("core", Json.Int core); ("words", Json.Int words) ])
             t.ni_buffer_words) );
    ]

let sign t = Digest.to_hex (Digest.string (Json.to_string (payload_json t)))

let signature_ok t = String.equal t.signature (sign t)

let certify ?name m use_cases =
  let record = certify ?name m use_cases in
  { record with signature = sign record }

let to_json t =
  match payload_json t with
  | Json.Obj fields -> Json.Obj (fields @ [ ("signature", Json.String t.signature) ])
  | other -> other

let to_diagnostics t =
  let summary =
    Diagnostic.vf ~pass:"certify" Diagnostic.Info
      "certificate %s: %d checks over %d routes, %d flow bounds, %s" t.design t.checks t.routes
      (List.length t.bounds)
      (if clean t then "clean" else Printf.sprintf "%d findings" (List.length t.findings))
  in
  summary
  :: List.map
       (fun f ->
         Diagnostic.vf
           ~pass:("certify-" ^ f.check)
           Diagnostic.Error "%s%s"
           (if f.use_case >= 0 then Printf.sprintf "use-case %d: " f.use_case else "")
           f.detail)
       t.findings

let render_text t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "certificate %s: %d switches, %d use-cases, %d routes, %d checks\n" t.design
       t.switches t.use_cases t.routes t.checks);
  (match t.digest with
  | Some d -> Buffer.add_string buf (Printf.sprintf "design digest: %s\n" d)
  | None -> Buffer.add_string buf "design digest: (not encodable)\n");
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "FAIL[%s]%s%s: %s\n" f.check
           (if f.use_case >= 0 then Printf.sprintf " uc %d" f.use_case else "")
           (if f.link >= 0 then Printf.sprintf " link %d" f.link else "")
           f.detail))
    t.findings;
  (match t.bounds with
  | [] -> ()
  | bounds ->
    let bounded = List.filter (fun b -> Float.is_finite b.slack_ns) bounds in
    Buffer.add_string buf
      (Printf.sprintf "flow bounds: %d guaranteed flows (%d with finite latency constraints)\n"
         (List.length bounds) (List.length bounded));
    match bounded with
    | [] -> ()
    | b0 :: _ ->
      let tightest =
        List.fold_left (fun acc b -> if b.slack_ns < acc.slack_ns then b else acc) b0 bounded
      in
      Buffer.add_string buf
        (Printf.sprintf
           "tightest: uc %d flow %d -> %d, bound %.1f ns against %.1f ns (slack %.1f ns)\n"
           tightest.use_case tightest.src_core tightest.dst_core tightest.bound_ns
           tightest.required_ns tightest.slack_ns));
  Buffer.add_string buf
    (Printf.sprintf "verdict: %s\nsignature: %s\n"
       (if clean t then "CLEAN" else Printf.sprintf "REJECTED (%d findings)" (List.length t.findings))
       t.signature);
  Buffer.contents buf
