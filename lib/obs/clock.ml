let wall = Unix.gettimeofday
let cpu = Sys.time

(* A CAS-max over the last timestamp handed out.  Returning the max of
   the OS clock and every previously returned value makes timestamps
   globally non-decreasing across domains, which the Chrome trace
   format (and our well-formedness tests) rely on. *)
let last_ns = Atomic.make 0L

let rec max_into candidate =
  let seen = Atomic.get last_ns in
  if Int64.compare candidate seen <= 0 then seen
  else if Atomic.compare_and_set last_ns seen candidate then candidate
  else max_into candidate

let now_ns () = max_into (Int64.of_float (wall () *. 1e9))

let timed f =
  let w0 = wall () in
  let c0 = cpu () in
  let r = f () in
  (r, wall () -. w0, cpu () -. c0)
