lib/core/worst_case.ml: Float Hashtbl List Mapping Noc_traffic
