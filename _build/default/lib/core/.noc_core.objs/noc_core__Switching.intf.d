lib/core/switching.mli: Compound Format
