(* Tests for Noc_core: the paper's methodology — compound modes,
   switching graph grouping, unified mapping, the WC baseline,
   verification, refinement and the full design flow. *)

module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Slot_table = Noc_arch.Slot_table
module Compound = Noc_core.Compound
module Switching = Noc_core.Switching
module Resources = Noc_core.Resources
module Path_select = Noc_core.Path_select
module Mapping = Noc_core.Mapping
module WC = Noc_core.Worst_case
module Verify = Noc_core.Verify
module Refine = Noc_core.Refine
module DF = Noc_core.Design_flow

let check_float = Alcotest.(check (float 1e-9))

let uc ~id ~cores flows = U.create ~id ~name:(Printf.sprintf "u%d" id) ~cores flows

(* --- compound ------------------------------------------------------------ *)

let test_compound_merge_rule () =
  (* bandwidths sum per pair; latency is the minimum (paper Sec 4) *)
  let u1 = uc ~id:0 ~cores:3 [ Flow.v ~src:0 ~dst:1 ~latency_ns:500.0 10.0 ] in
  let u2 =
    uc ~id:1 ~cores:3 [ Flow.v ~src:0 ~dst:1 ~latency_ns:200.0 30.0; Flow.v ~src:1 ~dst:2 5.0 ]
  in
  let c = Compound.merge ~id:2 ~name:"c" [ u1; u2 ] in
  Alcotest.(check int) "pair count" 2 (U.flow_count c);
  (match U.find_flow c ~src:0 ~dst:1 with
  | Some f ->
    check_float "sum" 40.0 f.Flow.bandwidth;
    check_float "min latency" 200.0 f.Flow.latency_ns
  | None -> Alcotest.fail "merged flow missing");
  match U.find_flow c ~src:1 ~dst:2 with
  | Some f -> check_float "single member kept" 5.0 f.Flow.bandwidth
  | None -> Alcotest.fail "u2-only flow missing"

let test_compound_merge_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Compound.merge: no members") (fun () ->
      ignore (Compound.merge ~id:0 ~name:"c" []))

let test_compound_generate_ids_and_names () =
  let base = [ uc ~id:0 ~cores:2 []; uc ~id:1 ~cores:2 []; uc ~id:2 ~cores:2 [] ] in
  let all, compounds = Compound.generate base ~parallel:[ [ 0; 2 ]; [ 1; 2 ] ] in
  Alcotest.(check int) "five use-cases" 5 (List.length all);
  Alcotest.(check (list int)) "compound ids" [ 3; 4 ]
    (List.map (fun c -> c.Compound.use_case.U.id) compounds);
  Alcotest.(check (list string)) "figure-4 style names" [ "U_02"; "U_12" ]
    (List.map (fun c -> c.Compound.use_case.U.name) compounds);
  Alcotest.(check (list (list int))) "members" [ [ 0; 2 ]; [ 1; 2 ] ]
    (List.map (fun c -> c.Compound.members) compounds)

let test_compound_generate_rejects_singleton () =
  let base = [ uc ~id:0 ~cores:2 [] ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Compound.generate base ~parallel:[ [ 0 ] ]);
       false
     with Invalid_argument _ -> true)

let test_compound_generate_rejects_unknown () =
  let base = [ uc ~id:0 ~cores:2 []; uc ~id:1 ~cores:2 [] ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Compound.generate base ~parallel:[ [ 0; 9 ] ]);
       false
     with Invalid_argument _ -> true)

let test_compound_generate_rejects_duplicates () =
  let base = [ uc ~id:0 ~cores:2 []; uc ~id:1 ~cores:2 [] ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Compound.generate base ~parallel:[ [ 0; 0 ] ]);
       false
     with Invalid_argument _ -> true)

(* --- switching graph / Algorithm 1 ---------------------------------------- *)

(* Figure 4 of the paper: 8 base use-cases U1..U8 (ids 0..7), compounds
   U_123 (id 8) and U_45 (id 9), smooth switching between U6 and U7
   (ids 5, 6).  Expected groups: {0,1,2,8}, {3,4,9}, {5,6}, {7}. *)
let fig4_switching () =
  let base = List.init 8 (fun i -> uc ~id:i ~cores:2 []) in
  let _, compounds = Compound.generate base ~parallel:[ [ 0; 1; 2 ]; [ 3; 4 ] ] in
  let sg = Switching.create ~use_cases:10 ~smooth:[ (5, 6) ] in
  List.iter (Switching.add_compound sg) compounds;
  sg

let test_fig4_grouping () =
  let sg = fig4_switching () in
  Alcotest.(check (list (list int))) "four groups of figure 4"
    [ [ 0; 1; 2; 8 ]; [ 3; 4; 9 ]; [ 5; 6 ]; [ 7 ] ]
    (Switching.groups sg)

let test_fig4_group_of () =
  let sg = fig4_switching () in
  let ids = Switching.group_of sg in
  Alcotest.(check bool) "0 and 8 together" true (ids.(0) = ids.(8));
  Alcotest.(check bool) "7 alone" true (Array.for_all (fun g -> g <> ids.(7)) (Array.sub ids 0 7))

let test_switching_requires_smooth () =
  let sg = Switching.create ~use_cases:3 ~smooth:[ (0, 1) ] in
  Alcotest.(check bool) "direct edge" true (Switching.requires_smooth sg 0 1);
  Alcotest.(check bool) "symmetric" true (Switching.requires_smooth sg 1 0);
  Alcotest.(check bool) "absent" false (Switching.requires_smooth sg 0 2)

let test_switching_rejects_self_edge () =
  Alcotest.check_raises "self"
    (Invalid_argument "Switching: a use-case cannot smooth-switch with itself") (fun () ->
      ignore (Switching.create ~use_cases:2 ~smooth:[ (1, 1) ]))

let test_switching_reconfigurable_count () =
  (* 3 use-cases, 0-1 grouped: reconfigurable pairs are (0,2) and (1,2). *)
  let sg = Switching.create ~use_cases:3 ~smooth:[ (0, 1) ] in
  Alcotest.(check int) "pairs across groups" 2 (Switching.reconfigurable_switchings sg)

let test_switching_transitive_grouping () =
  (* Algorithm 1 groups by reachability, not direct edges. *)
  let sg = Switching.create ~use_cases:4 ~smooth:[ (0, 1); (1, 2) ] in
  Alcotest.(check (list (list int))) "chain collapses" [ [ 0; 1; 2 ]; [ 3 ] ]
    (Switching.groups sg)

(* --- worst case ------------------------------------------------------------ *)

let test_wc_synthetic_max_min () =
  let u1 = uc ~id:0 ~cores:3 [ Flow.v ~src:0 ~dst:1 ~latency_ns:400.0 10.0 ] in
  let u2 =
    uc ~id:1 ~cores:3 [ Flow.v ~src:0 ~dst:1 ~latency_ns:900.0 80.0; Flow.v ~src:2 ~dst:0 7.0 ]
  in
  let wc = WC.synthetic [ u1; u2 ] in
  Alcotest.(check int) "union of pairs" 2 (U.flow_count wc);
  (match U.find_flow wc ~src:0 ~dst:1 with
  | Some f ->
    check_float "max bandwidth" 80.0 f.Flow.bandwidth;
    check_float "min latency" 400.0 f.Flow.latency_ns
  | None -> Alcotest.fail "pair missing");
  Alcotest.(check bool) "u2-only pair present" true (U.find_flow wc ~src:2 ~dst:0 <> None)

let test_wc_overspecification_grows () =
  let mk id seed =
    uc ~id ~cores:6
      [ Flow.v ~src:(seed mod 6) ~dst:((seed + 1) mod 6) 50.0;
        Flow.v ~src:((seed + 2) mod 6) ~dst:((seed + 3) mod 6) 50.0 ]
  in
  let two = WC.overspecification [ mk 0 0; mk 1 2 ] in
  let four = WC.overspecification [ mk 0 0; mk 1 2; mk 2 4; mk 3 1 ] in
  Alcotest.(check bool) "at least 1" true (two >= 1.0);
  Alcotest.(check bool) "more use-cases, more overspec" true (four >= two)

let prop_wc_dominates_members =
  QCheck.Test.make ~name:"WC flow dominates every member flow" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let params = { Noc_benchkit.Synthetic.spread_params with cores = 8; flows_lo = 5; flows_hi = 15 } in
      let ucs = Noc_benchkit.Synthetic.generate ~seed ~params ~use_cases:3 in
      let wc = WC.synthetic ucs in
      List.for_all
        (fun u ->
          List.for_all
            (fun f ->
              match U.find_flow wc ~src:f.Flow.src ~dst:f.Flow.dst with
              | Some g ->
                g.Flow.bandwidth +. 1e-9 >= f.Flow.bandwidth
                && g.Flow.latency_ns <= f.Flow.latency_ns +. 1e-9
              | None -> false)
            u.U.flows)
        ucs)

(* --- resources / path selection -------------------------------------------- *)

let two_switch_state () =
  let mesh = Mesh.create ~width:2 ~height:1 in
  (mesh, Resources.create ~config:Config.default ~mesh ~use_case:0)

let test_resources_fresh_state () =
  let _, st = two_switch_state () in
  check_float "full residual" 2000.0 (Resources.residual_bandwidth st 0);
  Alcotest.(check int) "all slots free" 32 (Resources.free_slots st 0);
  check_float "no utilization" 0.0 (Resources.mean_utilization st)

let test_route_reserves_resources () =
  let _, st = two_switch_state () in
  let req =
    { Path_select.conn_id = 1; flow = Flow.v ~src:0 ~dst:1 200.0; src_switch = 0; dst_switch = 1 }
  in
  match Path_select.route ~state:st req with
  | Error e -> Alcotest.fail e
  | Ok r ->
    (* 200 MB/s at 62.5 MB/s per slot = 4 slots *)
    Alcotest.(check int) "slots reserved" 4 (List.length r.Route.slot_starts);
    Alcotest.(check int) "one hop" 1 (Route.hops r);
    Alcotest.(check int) "table updated" 28 (Resources.free_slots st (List.hd r.Route.links));
    check_float "bandwidth recorded" 200.0 r.Route.bandwidth

let test_route_same_switch_needs_no_links () =
  let _, st = two_switch_state () in
  let req =
    { Path_select.conn_id = 2; flow = Flow.v ~src:0 ~dst:1 500.0; src_switch = 0; dst_switch = 0 }
  in
  match Path_select.route ~state:st req with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check (list int)) "no links" [] r.Route.links;
    Alcotest.(check int) "tables untouched" 32 (Resources.free_slots st 0)

let test_route_tight_latency_takes_more_slots () =
  let _, st = two_switch_state () in
  let loose =
    { Path_select.conn_id = 3; flow = Flow.v ~src:0 ~dst:1 10.0; src_switch = 0; dst_switch = 1 }
  in
  let tight =
    {
      Path_select.conn_id = 4;
      flow = Flow.v ~src:0 ~dst:1 ~latency_ns:80.0 10.0;
      src_switch = 0;
      dst_switch = 1;
    }
  in
  match (Path_select.route ~state:st loose, Path_select.route ~state:st tight) with
  | Ok a, Ok b ->
    Alcotest.(check int) "loose: 1 slot" 1 (List.length a.Route.slot_starts);
    (* 80 ns at 8 ns/slot needs the max gap below 9 slots => >= 4 starts *)
    Alcotest.(check bool) "tight took more slots" true
      (List.length b.Route.slot_starts > 1);
    Alcotest.(check bool) "bound met" true
      (Route.worst_case_latency_ns ~config:Config.default b <= 80.0)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_route_rejects_over_capacity () =
  let _, st = two_switch_state () in
  let req =
    { Path_select.conn_id = 5; flow = Flow.v ~src:0 ~dst:1 2500.0; src_switch = 0; dst_switch = 1 }
  in
  Alcotest.(check bool) "over capacity" true (Result.is_error (Path_select.route ~state:st req))

let test_route_fails_when_saturated () =
  let _, st = two_switch_state () in
  let fill =
    { Path_select.conn_id = 6; flow = Flow.v ~src:0 ~dst:1 2000.0; src_switch = 0; dst_switch = 1 }
  in
  (match Path_select.route ~state:st fill with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("fill should route: " ^ e));
  let extra =
    { Path_select.conn_id = 7; flow = Flow.v ~src:2 ~dst:3 10.0; src_switch = 0; dst_switch = 1 }
  in
  Alcotest.(check bool) "saturated" true (Result.is_error (Path_select.route ~state:st extra))

let test_route_shared_uses_same_slots () =
  let mesh = Mesh.create ~width:2 ~height:1 in
  let st0 = Resources.create ~config:Config.default ~mesh ~use_case:0 in
  let st1 = Resources.create ~config:Config.default ~mesh ~use_case:1 in
  let members =
    [
      ( st0,
        { Path_select.conn_id = 10; flow = Flow.v ~src:0 ~dst:1 100.0; src_switch = 0; dst_switch = 1 } );
      ( st1,
        { Path_select.conn_id = 11; flow = Flow.v ~src:0 ~dst:1 40.0; src_switch = 0; dst_switch = 1 } );
    ]
  in
  match Path_select.route_shared ~members () with
  | Error e -> Alcotest.fail e
  | Ok routes ->
    (match routes with
    | [ a; b ] ->
      Alcotest.(check (list int)) "same path" a.Route.links b.Route.links;
      Alcotest.(check (list int)) "same slots" a.Route.slot_starts b.Route.slot_starts;
      (* slots sized for the group maximum (100 MB/s = 2 slots) *)
      Alcotest.(check int) "group max slots" 2 (List.length a.Route.slot_starts)
    | _ -> Alcotest.fail "two routes expected");
    Alcotest.(check int) "st0 charged" 30 (Resources.free_slots st0 0);
    Alcotest.(check int) "st1 charged" 30 (Resources.free_slots st1 0)

let test_route_shared_passive_mirrors () =
  let mesh = Mesh.create ~width:2 ~height:1 in
  let st0 = Resources.create ~config:Config.default ~mesh ~use_case:0 in
  let passive = Resources.create ~config:Config.default ~mesh ~use_case:1 in
  let members =
    [
      ( st0,
        { Path_select.conn_id = 12; flow = Flow.v ~src:0 ~dst:1 100.0; src_switch = 0; dst_switch = 1 } );
    ]
  in
  match Path_select.route_shared ~passive:[ passive ] ~members () with
  | Error e -> Alcotest.fail e
  | Ok _ ->
    Alcotest.(check int) "passive mirrored the reservation" (Resources.free_slots st0 0)
      (Resources.free_slots passive 0)

let test_ni_constraint_enforced () =
  let mesh = Mesh.create ~width:2 ~height:1 in
  let config = { Config.default with constrain_ni_links = true } in
  let st = Resources.create ~config ~mesh ~use_case:0 in
  Alcotest.(check bool) "within budget" true (Resources.ni_reserve st ~core:0 ~bw:1500.0 = Ok ());
  Alcotest.(check bool) "over budget" true
    (Result.is_error (Resources.ni_reserve st ~core:0 ~bw:1000.0));
  check_float "remaining" 500.0 (Resources.ni_available st ~core:0)

(* --- mapping (Algorithm 2) -------------------------------------------------- *)

let example1 = Noc_benchkit.Soc_designs.example1_use_cases

let test_example1_maps_on_single_switch () =
  (* Paper Example 1: 4 cores, both use-cases; everything fits one switch. *)
  match Mapping.map_design ~groups:[ [ 0 ]; [ 1 ] ] example1 with
  | Error f -> Alcotest.fail (Format.asprintf "%a" Mapping.pp_failure f)
  | Ok m ->
    Alcotest.(check int) "single switch" 1 (Mapping.switch_count m);
    Alcotest.(check int) "all six connections" 6 (List.length m.Mapping.routes);
    Array.iter (fun s -> Alcotest.(check int) "placed on sw0" 0 s) m.Mapping.placement

let test_example1_forced_spread () =
  (* With one NI per switch the cores must spread and the largest flow
     (C3->C4, 100 MB/s) gets an inter-switch path in both use-cases. *)
  let config = { Config.default with nis_per_switch = 1 } in
  match Mapping.map_design ~config ~groups:[ [ 0 ]; [ 1 ] ] example1 with
  | Error f -> Alcotest.fail (Format.asprintf "%a" Mapping.pp_failure f)
  | Ok m ->
    Alcotest.(check bool) "at least 4 switches" true (Mapping.switch_count m >= 4);
    let placed = Array.to_list m.Mapping.placement in
    Alcotest.(check int) "distinct switches" 4 (List.length (List.sort_uniq compare placed));
    List.iter
      (fun r ->
        if r.Route.src_switch <> r.Route.dst_switch then
          Alcotest.(check bool) "has slots" true (r.Route.slot_starts <> []))
      m.Mapping.routes;
    let report = Verify.verify m example1 in
    Alcotest.(check bool) (Format.asprintf "%a" Verify.pp_report report) true (Verify.ok report)

let test_mapping_routes_count_matches_flows () =
  let ucs = example1 in
  match Mapping.map_design ~groups:[ [ 0 ]; [ 1 ] ] ucs with
  | Error _ -> Alcotest.fail "mapping failed"
  | Ok m ->
    List.iter
      (fun u ->
        Alcotest.(check int)
          (Printf.sprintf "uc %d route count" u.U.id)
          (U.flow_count u)
          (List.length (Mapping.routes_of_use_case m u.U.id)))
      ucs

let test_mapping_respects_ni_capacity () =
  let config = { Config.default with nis_per_switch = 2 } in
  let ucs = [ Noc_benchkit.Soc_designs.viper_fragment_1 ] in
  match Mapping.map_design ~config ~groups:[ [ 0 ] ] ucs with
  | Error _ -> Alcotest.fail "mapping failed"
  | Ok m ->
    let counts = Array.make (Mapping.switch_count m) 0 in
    Array.iter (fun s -> counts.(s) <- counts.(s) + 1) m.Mapping.placement;
    Array.iter (fun c -> Alcotest.(check bool) "<= 2 NIs" true (c <= 2)) counts

let test_mapping_positional_id_enforced () =
  let bad = [ uc ~id:1 ~cores:2 [] ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mapping.map_design ~groups:[ [ 0 ] ] bad);
       false
     with Invalid_argument _ -> true)

let test_mapping_group_partition_enforced () =
  let ucs = [ uc ~id:0 ~cores:2 []; uc ~id:1 ~cores:2 [] ] in
  let expect_invalid groups =
    Alcotest.(check bool) "raises" true
      (try
         ignore (Mapping.map_design ~groups ucs);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid [ [ 0 ] ];
  (* 1 missing *)
  expect_invalid [ [ 0; 1 ]; [ 1 ] ]
(* 1 twice *)

let test_mapping_failure_reports_attempts () =
  (* One flow beyond link capacity on distinct switches can never map
     once cores cannot share a switch. *)
  let config = { Config.default with nis_per_switch = 1; max_mesh_dim = 3 } in
  let ucs = [ uc ~id:0 ~cores:2 [ Flow.v ~src:0 ~dst:1 5000.0 ] ] in
  match Mapping.map_design ~config ~groups:[ [ 0 ] ] ucs with
  | Ok _ -> Alcotest.fail "should be infeasible"
  | Error f ->
    Alcotest.(check bool) "attempts recorded" true (List.length f.Mapping.attempts >= 3)

let test_map_with_placement_fixed () =
  let mesh = Mesh.create ~width:2 ~height:1 in
  let ucs = [ uc ~id:0 ~cores:2 [ Flow.v ~src:0 ~dst:1 100.0 ] ] in
  let placement = [| 0; 1 |] in
  match Mapping.map_with_placement ~config:Config.default ~mesh ~groups:[ [ 0 ] ] ~placement ucs with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check (array int)) "placement kept" placement m.Mapping.placement;
    Alcotest.(check int) "one route" 1 (List.length m.Mapping.routes)

let test_map_with_placement_rejects_unplaced () =
  let mesh = Mesh.create ~width:2 ~height:1 in
  let ucs = [ uc ~id:0 ~cores:2 [ Flow.v ~src:0 ~dst:1 100.0 ] ] in
  Alcotest.(check bool) "unplaced core" true
    (Result.is_error
       (Mapping.map_with_placement ~config:Config.default ~mesh ~groups:[ [ 0 ] ]
          ~placement:[| 0; -1 |] ucs))

let test_mapping_flowless_cores_get_nis () =
  let ucs = [ uc ~id:0 ~cores:5 [ Flow.v ~src:0 ~dst:1 10.0 ] ] in
  match Mapping.map_design ~groups:[ [ 0 ] ] ucs with
  | Error _ -> Alcotest.fail "mapping failed"
  | Ok m ->
    Array.iteri
      (fun core s -> Alcotest.(check bool) (Printf.sprintf "core %d placed" core) true (s >= 0))
      m.Mapping.placement

let test_mapping_group_sharing_equalizes_tables () =
  (* Two use-cases in one smooth-switching group must end with identical
     slot occupancy (the shared configuration). *)
  let ucs =
    [
      uc ~id:0 ~cores:4 [ Flow.v ~src:0 ~dst:1 150.0 ];
      uc ~id:1 ~cores:4 [ Flow.v ~src:0 ~dst:1 60.0; Flow.v ~src:2 ~dst:3 40.0 ];
    ]
  in
  let config = { Config.default with nis_per_switch = 1 } in
  match Mapping.map_design ~config ~groups:[ [ 0; 1 ] ] ucs with
  | Error f -> Alcotest.fail (Format.asprintf "%a" Mapping.pp_failure f)
  | Ok m ->
    let report = Verify.verify m ucs in
    Alcotest.(check bool) (Format.asprintf "%a" Verify.pp_report report) true (Verify.ok report);
    let links = Mesh.link_count m.Mapping.mesh in
    for l = 0 to links - 1 do
      Alcotest.(check int)
        (Printf.sprintf "link %d same free count" l)
        (Resources.free_slots m.Mapping.states.(0) l)
        (Resources.free_slots m.Mapping.states.(1) l)
    done

let test_total_weighted_hops () =
  let ucs = [ uc ~id:0 ~cores:2 [ Flow.v ~src:0 ~dst:1 100.0 ] ] in
  let mesh = Mesh.create ~width:2 ~height:1 in
  match
    Mapping.map_with_placement ~config:Config.default ~mesh ~groups:[ [ 0 ] ]
      ~placement:[| 0; 1 |] ucs
  with
  | Error e -> Alcotest.fail e
  | Ok m -> check_float "bw x hops" 100.0 (Mapping.total_weighted_hops m)

(* --- verify: mutation detection -------------------------------------------- *)

let mapped_example1 () =
  match Mapping.map_design ~config:{ Config.default with nis_per_switch = 1 } ~groups:[ [ 0 ]; [ 1 ] ] example1 with
  | Ok m -> m
  | Error _ -> Alcotest.fail "example1 must map"

let test_verify_clean_design () =
  let m = mapped_example1 () in
  let r = Verify.verify m example1 in
  Alcotest.(check bool) "clean" true (Verify.ok r);
  Alcotest.(check bool) "many checks" true (r.Verify.checks > 20)

let test_verify_detects_missing_route () =
  let m = mapped_example1 () in
  let broken = { m with Mapping.routes = List.tl m.Mapping.routes } in
  let r = Verify.verify broken example1 in
  Alcotest.(check bool) "missing route caught" false (Verify.ok r)

let test_verify_detects_truncated_slots () =
  let m = mapped_example1 () in
  let break_route r =
    if r.Route.links <> [] then { r with Route.slot_starts = [] } else r
  in
  let broken = { m with Mapping.routes = List.map break_route m.Mapping.routes } in
  let r = Verify.verify broken example1 in
  Alcotest.(check bool) "bandwidth shortfall caught" false (Verify.ok r)

let test_verify_detects_wrong_placement () =
  let m = mapped_example1 () in
  let placement = Array.copy m.Mapping.placement in
  let tmp = placement.(0) in
  placement.(0) <- placement.(1);
  placement.(1) <- tmp;
  let r = Verify.verify { m with Mapping.placement } example1 in
  Alcotest.(check bool) "placement mismatch caught" false (Verify.ok r)

let test_verify_detects_broken_chain () =
  let m = mapped_example1 () in
  let break_route r =
    if List.length r.Route.links >= 1 then { r with Route.links = List.rev r.Route.links } else r
  in
  let any_multi = List.exists (fun r -> List.length r.Route.links >= 2) m.Mapping.routes in
  if any_multi then begin
    let broken = { m with Mapping.routes = List.map break_route m.Mapping.routes } in
    let r = Verify.verify broken example1 in
    Alcotest.(check bool) "chain break caught" false (Verify.ok r)
  end

let test_verify_detects_ni_overflow () =
  let m = mapped_example1 () in
  (* cram every core onto one switch while the config allows 1 NI *)
  let placement = Array.map (fun _ -> 0) m.Mapping.placement in
  let r = Verify.verify { m with Mapping.placement } example1 in
  Alcotest.(check bool) "NI overflow caught" false (Verify.ok r);
  Alcotest.(check bool) "right violation kind" true
    (List.exists (fun v -> v.Verify.kind = "ni-capacity") r.Verify.violations)

(* --- reconfig ------------------------------------------------------------------ *)

module Reconfig = Noc_core.Reconfig

let test_reconfig_independent_use_cases () =
  let m = mapped_example1 () in
  let c = Reconfig.pair m ~from_uc:0 ~to_uc:1 in
  Alcotest.(check bool) "not smooth" false c.Reconfig.smooth;
  (* both use-cases reserve slots, so the rewrite is non-empty *)
  Alcotest.(check bool) "writes needed" true (c.Reconfig.slot_writes > 0);
  Alcotest.(check bool) "time positive" true (c.Reconfig.reconfiguration_ns > 0.0)

let test_reconfig_smooth_group_is_free () =
  let ucs =
    [
      uc ~id:0 ~cores:4 [ Flow.v ~src:0 ~dst:1 150.0 ];
      uc ~id:1 ~cores:4 [ Flow.v ~src:0 ~dst:1 60.0; Flow.v ~src:2 ~dst:3 40.0 ];
    ]
  in
  let config = { Config.default with nis_per_switch = 1 } in
  match Mapping.map_design ~config ~groups:[ [ 0; 1 ] ] ucs with
  | Error _ -> Alcotest.fail "must map"
  | Ok m ->
    let c = Reconfig.pair m ~from_uc:0 ~to_uc:1 in
    Alcotest.(check bool) "smooth" true c.Reconfig.smooth;
    Alcotest.(check int) "zero writes" 0 c.Reconfig.slot_writes;
    check_float "zero time" 0.0 c.Reconfig.reconfiguration_ns

let test_reconfig_shared_pair_same_path_not_rewritten () =
  (* If both use-cases happen to route a pair identically, those
     entries must not be counted as rewrites. *)
  let ucs =
    [
      uc ~id:0 ~cores:2 [ Flow.v ~src:0 ~dst:1 62.5 ];
      uc ~id:1 ~cores:2 [ Flow.v ~src:0 ~dst:1 62.5 ];
    ]
  in
  let mesh = Noc_arch.Mesh.create ~width:2 ~height:1 in
  match
    Mapping.map_with_placement ~config:Config.default ~mesh ~groups:[ [ 0 ]; [ 1 ] ]
      ~placement:[| 0; 1 |] ucs
  with
  | Error e -> Alcotest.fail e
  | Ok m ->
    let c = Reconfig.pair m ~from_uc:0 ~to_uc:1 in
    (* same empty state, same greedy choice: identical path and slots *)
    Alcotest.(check int) "identical config" 0 c.Reconfig.slot_writes;
    Alcotest.(check int) "one shared path" 1 c.Reconfig.shared_paths

let test_reconfig_analyze_covers_pairs () =
  let m = mapped_example1 () in
  Alcotest.(check int) "one unordered pair" 1 (List.length (Reconfig.analyze m));
  Alcotest.(check bool) "worst exists" true (Reconfig.worst m <> None)

let test_reconfig_rejects_bad_ids () =
  let m = mapped_example1 () in
  Alcotest.(check bool) "same uc" true
    (try ignore (Reconfig.pair m ~from_uc:0 ~to_uc:0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (try ignore (Reconfig.pair m ~from_uc:0 ~to_uc:9); false with Invalid_argument _ -> true)

(* --- refine ------------------------------------------------------------------ *)

let test_refine_never_worse () =
  let m = mapped_example1 () in
  let outcome = Refine.anneal ~options:{ Refine.default_options with iterations = 40 } m example1 in
  Alcotest.(check bool) "cost not increased" true
    (outcome.Refine.final_cost <= outcome.Refine.initial_cost +. 1e-9);
  let r = Verify.verify outcome.Refine.result example1 in
  Alcotest.(check bool) "refined design verifies" true (Verify.ok r)

let test_refine_deterministic () =
  let m = mapped_example1 () in
  let opts = { Refine.default_options with iterations = 25 } in
  let a = Refine.anneal ~options:opts m example1 in
  let b = Refine.anneal ~options:opts m example1 in
  check_float "same final cost" a.Refine.final_cost b.Refine.final_cost

let test_tabu_never_worse () =
  let m = mapped_example1 () in
  let opts = { Refine.default_tabu_options with tabu_iterations = 20 } in
  let o = Refine.tabu ~options:opts m example1 in
  Alcotest.(check bool) "cost not increased" true
    (o.Refine.final_cost <= o.Refine.initial_cost +. 1e-9);
  let r = Verify.verify o.Refine.result example1 in
  Alcotest.(check bool) "tabu result verifies" true (Verify.ok r)

let test_tabu_deterministic () =
  let m = mapped_example1 () in
  let opts = { Refine.default_tabu_options with tabu_iterations = 15 } in
  let a = Refine.tabu ~options:opts m example1 in
  let b = Refine.tabu ~options:opts m example1 in
  check_float "same final cost" a.Refine.final_cost b.Refine.final_cost

let test_tabu_explores () =
  let m = mapped_example1 () in
  let o = Refine.tabu m example1 in
  Alcotest.(check bool) "evaluated moves" true (o.Refine.evaluated > 0)

(* --- design flow --------------------------------------------------------------- *)

let test_design_flow_end_to_end () =
  let spec =
    {
      DF.name = "flow-test";
      use_cases = example1;
      parallel = [ [ 0; 1 ] ];
      smooth = [];
    }
  in
  match DF.run spec with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int) "compound added" 3 (List.length d.DF.all_use_cases);
    Alcotest.(check int) "one compound" 1 (List.length d.DF.compounds);
    (* compound requires smooth switching with members: single group *)
    Alcotest.(check (list (list int))) "grouping" [ [ 0; 1; 2 ] ] d.DF.groups;
    Alcotest.(check bool) "verified" true (DF.verified d)

let test_design_flow_smooth_only () =
  let spec = { DF.name = "s"; use_cases = example1; parallel = []; smooth = [ (0, 1) ] } in
  match DF.run spec with
  | Error e -> Alcotest.fail e
  | Ok d -> Alcotest.(check (list (list int))) "one group" [ [ 0; 1 ] ] d.DF.groups

let test_design_flow_no_constraints_singletons () =
  let spec = DF.spec_of_use_cases ~name:"plain" example1 in
  match DF.run spec with
  | Error e -> Alcotest.fail e
  | Ok d -> Alcotest.(check (list (list int))) "singleton groups" [ [ 0 ]; [ 1 ] ] d.DF.groups

let test_design_flow_rejects_empty () =
  Alcotest.(check bool) "error" true
    (Result.is_error (DF.run (DF.spec_of_use_cases ~name:"none" [])))

let test_design_flow_with_refine () =
  let spec = DF.spec_of_use_cases ~name:"r" example1 in
  match DF.run ~refine:true spec with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check bool) "refinement recorded" true (d.DF.refinement <> None);
    Alcotest.(check bool) "still verified" true (DF.verified d)

(* --- spec parser ----------------------------------------------------------------- *)

module Spec_parser = Noc_core.Spec_parser

let sample_spec_text =
  String.concat "\n"
    [
      "# comment";
      "name demo";
      "cores 4";
      "";
      "use-case video";
      "  flow 0 -> 1 bw 100";
      "  flow 1 -> 2 bw 75 lat 500";
      "";
      "use-case browse";
      "  flow 2 -> 3 bw 40 be";
      "";
      "parallel video browse";
      "smooth video browse";
      "";
    ]

let test_spec_parse_valid () =
  match Spec_parser.parse ~name:"fallback" sample_spec_text with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Spec_parser.pp_error e)
  | Ok spec ->
    Alcotest.(check string) "explicit name wins" "demo" spec.DF.name;
    Alcotest.(check int) "two use-cases" 2 (List.length spec.DF.use_cases);
    Alcotest.(check (list (list int))) "parallel" [ [ 0; 1 ] ] spec.DF.parallel;
    Alcotest.(check (list (pair int int))) "smooth" [ (0, 1) ] spec.DF.smooth;
    (match spec.DF.use_cases with
    | [ video; browse ] ->
      Alcotest.(check int) "video flows" 2 (U.flow_count video);
      Alcotest.(check int) "browse flows" 1 (U.flow_count browse);
      (match U.find_flow video ~src:1 ~dst:2 with
      | Some f -> check_float "latency parsed" 500.0 f.Flow.latency_ns
      | None -> Alcotest.fail "flow missing");
      (match browse.U.flows with
      | [ f ] -> Alcotest.(check bool) "be parsed" false (Flow.is_guaranteed f)
      | _ -> Alcotest.fail "browse should have one flow")
    | _ -> Alcotest.fail "two use-cases expected")

let test_spec_parse_runs_through_flow () =
  match Spec_parser.parse ~name:"x" sample_spec_text with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Spec_parser.pp_error e)
  | Ok spec -> (
    match DF.run spec with
    | Ok d -> Alcotest.(check bool) "verified" true (DF.verified d)
    | Error msg -> Alcotest.fail msg)

let test_spec_parse_errors_carry_lines () =
  let expect_error_on_line text line =
    match Spec_parser.parse ~name:"e" text with
    | Ok _ -> Alcotest.fail "should not parse"
    | Error e -> Alcotest.(check int) "error line" line e.Spec_parser.line
  in
  expect_error_on_line "cores 4\nuse-case a\n  flow 0 -> 9 bw 5\n" 3;
  expect_error_on_line "cores 4\nbogus directive\n" 2;
  expect_error_on_line "cores 4\n  flow 0 -> 1 bw 5\n" 2;
  (* flow before any use-case *)
  expect_error_on_line "cores 4\nuse-case a\nparallel a b\n" 3
(* unknown use-case name *)

let test_spec_parse_missing_cores () =
  match Spec_parser.parse ~name:"e" "use-case a\n  flow 0 -> 1 bw 5\n" with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error e -> Alcotest.(check bool) "mentions cores" true (e.Spec_parser.line >= 0)

let test_spec_roundtrip () =
  match Spec_parser.parse ~name:"fallback" sample_spec_text with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Spec_parser.pp_error e)
  | Ok spec -> (
    let text = Spec_parser.to_text spec in
    match Spec_parser.parse ~name:"fallback" text with
    | Error e -> Alcotest.fail (Format.asprintf "re-parse: %a" Spec_parser.pp_error e)
    | Ok spec' ->
      Alcotest.(check string) "name" spec.DF.name spec'.DF.name;
      Alcotest.(check int) "use-case count" (List.length spec.DF.use_cases)
        (List.length spec'.DF.use_cases);
      Alcotest.(check (list (list int))) "parallel" spec.DF.parallel spec'.DF.parallel;
      Alcotest.(check (list (pair int int))) "smooth" spec.DF.smooth spec'.DF.smooth;
      List.iter2
        (fun a b ->
          Alcotest.(check int) "flows" (U.flow_count a) (U.flow_count b);
          check_float "total bw" (U.total_bandwidth a) (U.total_bandwidth b))
        spec.DF.use_cases spec'.DF.use_cases)

let prop_spec_roundtrip_random =
  QCheck.Test.make ~name:"generated specs survive the text round-trip" ~count:50
    QCheck.(int_bound 1000)
    (fun seed ->
      let params =
        { Noc_benchkit.Synthetic.spread_params with cores = 8; flows_lo = 3; flows_hi = 10 }
      in
      let ucs = Noc_benchkit.Synthetic.generate ~seed ~params ~use_cases:3 in
      let spec =
        { DF.name = "prop"; use_cases = ucs; parallel = [ [ 0; 2 ] ]; smooth = [ (1, 2) ] }
      in
      match Spec_parser.parse ~name:"prop" (Spec_parser.to_text spec) with
      | Error _ -> false
      | Ok spec' ->
        List.for_all2
          (fun a b ->
            U.flow_count a = U.flow_count b
            && Float.abs (U.total_bandwidth a -. U.total_bandwidth b) < 1e-3)
          spec.DF.use_cases spec'.DF.use_cases
        && spec'.DF.parallel = spec.DF.parallel
        && spec'.DF.smooth = spec.DF.smooth)

(* --- property: random designs map and verify ---------------------------------- *)

let prop_random_designs_verify =
  QCheck.Test.make ~name:"random small designs map and verify" ~count:25
    QCheck.(int_bound 1000)
    (fun seed ->
      let params =
        {
          Noc_benchkit.Synthetic.spread_params with
          cores = 10;
          flows_lo = 8;
          flows_hi = 20;
        }
      in
      let ucs = Noc_benchkit.Synthetic.generate ~seed ~params ~use_cases:3 in
      match DF.run (DF.spec_of_use_cases ~name:"prop" ucs) with
      | Error _ -> false
      | Ok d -> DF.verified d)

let prop_grouped_designs_verify =
  QCheck.Test.make ~name:"designs with parallel modes map and verify" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
      let params =
        {
          Noc_benchkit.Synthetic.spread_params with
          cores = 8;
          flows_lo = 5;
          flows_hi = 12;
        }
      in
      let ucs = Noc_benchkit.Synthetic.generate ~seed ~params ~use_cases:3 in
      let spec =
        { DF.name = "prop2"; use_cases = ucs; parallel = [ [ 0; 1 ] ]; smooth = [ (1, 2) ] }
      in
      match DF.run spec with
      | Error _ -> false
      | Ok d -> DF.verified d && List.length d.DF.groups = 1)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_wc_dominates_members;
      prop_random_designs_verify;
      prop_grouped_designs_verify;
      prop_spec_roundtrip_random;
    ]

let () =
  Alcotest.run "noc_core"
    [
      ( "compound",
        [
          Alcotest.test_case "merge rule" `Quick test_compound_merge_rule;
          Alcotest.test_case "merge rejects empty" `Quick test_compound_merge_rejects_empty;
          Alcotest.test_case "generate ids/names" `Quick test_compound_generate_ids_and_names;
          Alcotest.test_case "rejects singleton" `Quick test_compound_generate_rejects_singleton;
          Alcotest.test_case "rejects unknown" `Quick test_compound_generate_rejects_unknown;
          Alcotest.test_case "rejects duplicates" `Quick test_compound_generate_rejects_duplicates;
        ] );
      ( "switching",
        [
          Alcotest.test_case "figure 4 grouping" `Quick test_fig4_grouping;
          Alcotest.test_case "figure 4 group_of" `Quick test_fig4_group_of;
          Alcotest.test_case "requires_smooth" `Quick test_switching_requires_smooth;
          Alcotest.test_case "rejects self edge" `Quick test_switching_rejects_self_edge;
          Alcotest.test_case "reconfigurable count" `Quick test_switching_reconfigurable_count;
          Alcotest.test_case "transitive grouping" `Quick test_switching_transitive_grouping;
        ] );
      ( "worst_case",
        [
          Alcotest.test_case "synthetic max/min" `Quick test_wc_synthetic_max_min;
          Alcotest.test_case "overspecification grows" `Quick test_wc_overspecification_grows;
        ] );
      ( "path_select",
        [
          Alcotest.test_case "fresh state" `Quick test_resources_fresh_state;
          Alcotest.test_case "route reserves" `Quick test_route_reserves_resources;
          Alcotest.test_case "same-switch route" `Quick test_route_same_switch_needs_no_links;
          Alcotest.test_case "tight latency escalates" `Quick test_route_tight_latency_takes_more_slots;
          Alcotest.test_case "over capacity" `Quick test_route_rejects_over_capacity;
          Alcotest.test_case "saturation" `Quick test_route_fails_when_saturated;
          Alcotest.test_case "group sharing" `Quick test_route_shared_uses_same_slots;
          Alcotest.test_case "passive mirror" `Quick test_route_shared_passive_mirrors;
          Alcotest.test_case "NI budget" `Quick test_ni_constraint_enforced;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "example1 single switch" `Quick test_example1_maps_on_single_switch;
          Alcotest.test_case "example1 forced spread" `Quick test_example1_forced_spread;
          Alcotest.test_case "route counts" `Quick test_mapping_routes_count_matches_flows;
          Alcotest.test_case "NI capacity" `Quick test_mapping_respects_ni_capacity;
          Alcotest.test_case "positional ids" `Quick test_mapping_positional_id_enforced;
          Alcotest.test_case "group partition" `Quick test_mapping_group_partition_enforced;
          Alcotest.test_case "failure attempts" `Quick test_mapping_failure_reports_attempts;
          Alcotest.test_case "fixed placement" `Quick test_map_with_placement_fixed;
          Alcotest.test_case "fixed placement rejects unplaced" `Quick test_map_with_placement_rejects_unplaced;
          Alcotest.test_case "flow-less cores placed" `Quick test_mapping_flowless_cores_get_nis;
          Alcotest.test_case "group sharing equalizes tables" `Quick test_mapping_group_sharing_equalizes_tables;
          Alcotest.test_case "weighted hops" `Quick test_total_weighted_hops;
        ] );
      ( "verify",
        [
          Alcotest.test_case "clean design" `Quick test_verify_clean_design;
          Alcotest.test_case "missing route" `Quick test_verify_detects_missing_route;
          Alcotest.test_case "truncated slots" `Quick test_verify_detects_truncated_slots;
          Alcotest.test_case "wrong placement" `Quick test_verify_detects_wrong_placement;
          Alcotest.test_case "broken chain" `Quick test_verify_detects_broken_chain;
          Alcotest.test_case "NI overflow" `Quick test_verify_detects_ni_overflow;
        ] );
      ( "reconfig",
        [
          Alcotest.test_case "independent use-cases" `Quick test_reconfig_independent_use_cases;
          Alcotest.test_case "smooth group free" `Quick test_reconfig_smooth_group_is_free;
          Alcotest.test_case "identical paths not rewritten" `Quick
            test_reconfig_shared_pair_same_path_not_rewritten;
          Alcotest.test_case "analyze covers pairs" `Quick test_reconfig_analyze_covers_pairs;
          Alcotest.test_case "rejects bad ids" `Quick test_reconfig_rejects_bad_ids;
        ] );
      ( "refine",
        [
          Alcotest.test_case "never worse" `Quick test_refine_never_worse;
          Alcotest.test_case "deterministic" `Quick test_refine_deterministic;
          Alcotest.test_case "tabu never worse" `Quick test_tabu_never_worse;
          Alcotest.test_case "tabu deterministic" `Quick test_tabu_deterministic;
          Alcotest.test_case "tabu explores" `Quick test_tabu_explores;
        ] );
      ( "spec_parser",
        [
          Alcotest.test_case "parse valid" `Quick test_spec_parse_valid;
          Alcotest.test_case "runs through the flow" `Quick test_spec_parse_runs_through_flow;
          Alcotest.test_case "errors carry lines" `Quick test_spec_parse_errors_carry_lines;
          Alcotest.test_case "missing cores" `Quick test_spec_parse_missing_cores;
          Alcotest.test_case "round trip" `Quick test_spec_roundtrip;
        ] );
      ( "design_flow",
        [
          Alcotest.test_case "end to end" `Quick test_design_flow_end_to_end;
          Alcotest.test_case "smooth only" `Quick test_design_flow_smooth_only;
          Alcotest.test_case "singleton groups" `Quick test_design_flow_no_constraints_singletons;
          Alcotest.test_case "rejects empty" `Quick test_design_flow_rejects_empty;
          Alcotest.test_case "with refinement" `Quick test_design_flow_with_refine;
        ] );
      ("properties", qcheck_cases);
    ]
