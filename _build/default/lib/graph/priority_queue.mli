(** Mutable binary min-heap keyed by float priorities.

    Used as the frontier of Dijkstra's algorithm.  Decrease-key is
    handled by lazy deletion: push the element again with the smaller
    priority and skip stale pops on the caller's side (Dijkstra does
    this by checking the settled set). *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> priority:float -> 'a -> unit

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
