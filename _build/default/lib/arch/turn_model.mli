(** Deadlock-freedom analysis of a route set.

    Wormhole/virtual-circuit NoCs deadlock when the channel-dependency
    graph (CDG) — links as nodes, an arc when some route enters link B
    directly from link A — contains a cycle.  XY routing never creates
    the two prohibited turns, so its CDG is acyclic by construction;
    min-cost routing must be checked.  The paper inherits deadlock-free
    path selection from [20]; we make the check explicit and run it in
    the verification phase. *)

type turn = {
  from_link : int;
  to_link : int;
}

val dependencies : routes:Route.t list -> turn list
(** Every link-to-link turn taken by some route (deduplicated). *)

val is_deadlock_free : links:int -> routes:Route.t list -> bool
(** True iff the CDG over link ids [0 .. links-1] is acyclic. *)

val find_cycle : links:int -> routes:Route.t list -> int list option
(** A CDG cycle as a list of link ids, if one exists (for diagnostics). *)

val xy_legal : Mesh.t -> Route.t -> bool
(** Does the route only make XY-legal turns (no south/north-to-east/west
    ... i.e. no Y-then-X movement)? *)
