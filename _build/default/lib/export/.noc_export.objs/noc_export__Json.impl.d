lib/export/json.ml: Buffer Char Float List Printf String
