(** Wire protocol of [nocmap serve]: line-delimited JSON over a Unix
    domain socket.

    Every message is one JSON object on one line ([\n]-terminated); no
    message ever contains a raw newline (strings are JSON-escaped).
    A connection opens with a handshake, then carries any number of
    request/response pairs:

    + the server sends a {e greeting}
      [{"proto":1,"server":"nocmap","build":FP}];
    + the client answers with a {e hello} [{"proto":1,"build":FP}].
      The server replies [{"ok":true,"build":FP}] when the protocol
      version and build fingerprint both match its own, or an [error]
      object with code [version-mismatch] (then closes) — a served
      mapping is only byte-reproducible by the exact build that
      produced it, so mismatched clients are rejected outright;
    + each request carries a client-chosen [id], echoed verbatim in
      the response.  Responses may be reordered across requests of one
      connection (the scheduler batches across clients), so the [id]
      is the only correlation.

    Success responses carry the result as an opaque [payload] string:
    the {e exact bytes} the equivalent one-shot CLI command would have
    written ([nocmap map --json], [explore --json], [lint --json],
    [certify --json], [remap --json]) — see {!Payload}.  Failure
    responses carry a machine-readable {!error_code}; the load-shed
    codes ([overloaded], [too-many-inflight]) also carry
    [retry_after_ms], the server's suggested backoff. *)

val proto_version : int
(** Current protocol version (1). *)

type op_config = {
  freq_mhz : float;  (** NoC operating frequency (default 500.0) *)
  slots : int;  (** TDMA slot-table size (default 32) *)
  nis_per_switch : int;  (** max NIs per switch (default 8) *)
  xy : bool;  (** XY routing instead of min-cost (default false) *)
}
(** The config knobs a request may override — exactly the CLI design
    flags, with the CLI defaults. *)

val default_config : op_config

val to_noc_config : op_config -> Noc_arch.Noc_config.t
(** The full {!Noc_arch.Noc_config.t} a request's knobs denote (other
    fields from [Noc_config.default]), matching the CLI's
    [make_config]. *)

type op =
  | Ping  (** liveness check; empty payload *)
  | Map of { name : string; spec : string; config : op_config }
      (** design the spec; payload = [nocmap map --json] bytes.
          [name] is the fallback design name used when the spec text
          has no [name] line (the CLI derives it from the file name) *)
  | Explore of {
      name : string;
      spec : string;
      config : op_config;
      frequencies : float list option;  (** [None] = CLI default axis *)
      slot_counts : int list option;  (** [None] = CLI default axis *)
      torus : bool;  (** also sweep torus grids (CLI [--torus]) *)
    }  (** design-space sweep; payload = [nocmap explore --json] bytes *)
  | Lint of { name : string; spec : string; config : op_config; deep : bool }
      (** static analysis; payload = [nocmap lint --json] bytes *)
  | Certify of { name : string; spec : string; config : op_config }
      (** design + independent certification; payload =
          [nocmap certify --json] bytes *)
  | Remap of { from_name : string; from_spec : string; to_name : string; to_spec : string; config : op_config }
      (** incremental churn; payload = [nocmap remap --json] bytes *)
  | Stats  (** payload = the server's metrics registry as JSON *)
  | Shutdown
      (** begin graceful shutdown: drain admitted work, flush the disk
          cache tier, refuse new work, then exit.  Acknowledged last. *)

type request = { id : int; op : op }

type error_code =
  | Overloaded  (** admission queue full — load shed, retry later *)
  | Too_many_inflight  (** per-client in-flight cap hit — retry later *)
  | Shutting_down  (** server is draining; no new work accepted *)
  | Bad_request  (** unparsable or ill-formed request object *)
  | Spec_error  (** the carried spec text failed to parse/resolve *)
  | Exec_error  (** the operation itself failed (e.g. unmappable) *)
  | Version_mismatch  (** handshake: wrong protocol or build *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

type response =
  | Result of { id : int; payload : string; coalesced : bool }
      (** [coalesced]: this payload was computed once for several
          identical in-flight requests and fanned out *)
  | Failure of {
      id : int;
      code : error_code;
      message : string;
      retry_after_ms : int option;
    }

(* --- encoding ------------------------------------------------------------ *)

val greeting : unit -> string
(** The server's first line (includes this build's fingerprint). *)

val hello : ?build:string -> unit -> string
(** The client's first line; [build] defaults to this process's own
    fingerprint. *)

val hello_ok : unit -> string
val hello_reject : message:string -> string

val check_greeting : string -> (string, string) result
(** Client side: validate a greeting line, return the server build. *)

val check_hello : string -> (unit, string) result
(** Server side: validate a hello line against this build. *)

val hello_verdict : string -> (unit, string) result
(** Client side: parse the server's reply to the hello. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val escape_payload : string -> string
(** JSON string escaping of a payload (quotes not included). *)

val encode_result_preescaped :
  id:int -> coalesced:bool -> escaped_payload:string -> string
(** Byte-identical to [encode_response (Result _)], with the payload
    already escaped — the server escapes a coalesced payload once and
    fans the bytes out to every requester. *)

val response_id : response -> int
