(** Multi-knob design-space exploration.

    Generalises the Fig 7(a) frequency sweep: the designer picks
    candidate frequencies, TDMA slot-table sizes and grid families, and
    gets every feasible design point with its NoC size, switch area and
    power — plus the Pareto-optimal subset over (area, power).  This is
    the "choose the optimum design point based on the objectives of the
    designer" step the paper leaves to the reader (§6.3).

    The sweep runs in frequency waves on the shared
    {!Noc_util.Domain_pool}: every (topology, slots) cell of one
    frequency is solved concurrently, and later waves {e warm-start}
    from the nearest already-solved neighbour (same topology, nearest
    slots, then nearest frequency).  A warm start keeps the cold
    search's minimality — every mesh size below the neighbour's is
    still attempted — but retries the neighbour's size with its
    placement (routing only) before paying for a fresh placement
    search, and degrades to the exact cold behaviour when that retry
    fails.  Warm-start scheduling depends only on earlier waves, never
    on timing, so the sweep result is independent of [jobs]. *)

type axes = {
  frequencies : Noc_util.Units.frequency list;
  slot_counts : int list;
  topologies : Noc_arch.Mesh.kind list;
}

val default_axes : axes
(** Frequencies 250/500/1000 MHz, 16/32/64 slots, mesh only. *)

type start =
  | Cold  (** full growth search (or a warm retry that fell back) *)
  | Warm  (** solved by the neighbour-seeded placement retry *)

type point = {
  freq_mhz : Noc_util.Units.frequency;
  slots : int;
  topology : Noc_arch.Mesh.kind;
  switches : int option;            (** [None] = infeasible *)
  area_mm2 : Noc_util.Units.area option;
  power_mw : float option;          (** design-point power *)
  start : start;                    (** which path produced the result *)
}

type seed
(** A solved point's reusable state (mesh dimensions and placement),
    opaque to callers; an array of them indexed like the point list
    carries warm starts from one sweep into the next. *)

val explore_seeded :
  ?axes:axes ->
  ?jobs:int ->
  ?warm:bool ->
  ?prune:bool ->
  ?inherited:seed option array ->
  config:Noc_arch.Noc_config.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  point list * seed option array
(** Like {!explore}, additionally returning the per-point seeds so a
    sweep over a spec {e family} can churn instead of restarting: pass
    one run's seeds as the next run's [inherited] (same [axes]!) and
    the first wave of the new sweep warm-starts from the previous
    spec's placements instead of running cold.  A seed whose placement
    no longer matches the new spec's core count is ignored, and a
    warm retry that fails degrades to the exact cold search, so the
    feasibility and switch counts of every point are unchanged —
    inheritance only saves work.  The seed array is positional
    ([topology-major, then slots, then frequency]); with different
    axes the warm starts would be taken from the wrong neighbourhood
    (still sound, just useless), so reuse arrays only across sweeps
    with identical axes. *)

val explore :
  ?axes:axes ->
  ?jobs:int ->
  ?warm:bool ->
  ?prune:bool ->
  config:Noc_arch.Noc_config.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  point list
(** Run the design flow at every axis combination (other knobs from
    [config]); points come out in a deterministic axis order
    (topology-major, then slots, then frequency, each ascending).
    [jobs] bounds the pool parallelism (default:
    {!Noc_util.Domain_pool.default_jobs}); [warm] (default [true])
    enables placement-seeded warm starts — [false] is the [--cold]
    escape hatch that forces every point through the full growth
    search.  [prune] (default [true]) issues a per-point
    {!Noc_core.Feasibility} certificate and skips growth sizes it
    rejects; [false] is the [--no-prune] escape hatch.  Warm/cold and
    pruned/unpruned all agree on the resulting points (pinned by the
    determinism tests). *)

val pareto : point list -> point list
(** Feasible points not dominated in (area, power): a point is dropped
    when another has area and power both no worse and one strictly
    better. *)

val pareto_flags : point list -> bool array
(** Front membership by position in the input list — structural, so it
    keeps working when callers rebuild or reorder point values. *)

val print : point list -> unit
(** Render the space (and mark the Pareto members) as a table. *)
