lib/arch/route.mli: Format Noc_config Noc_util
