test/test_rtl.ml: Alcotest Array List Noc_arch Noc_benchkit Noc_core Noc_rtl Noc_traffic Printf QCheck QCheck_alcotest String
