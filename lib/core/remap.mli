(** Incremental remapping under use-case churn.

    Production SoCs gain, lose and retune use-cases across firmware
    revisions; recomputing the whole design for every spec delta pays
    the full {!Mapping.map_design} cost again even though most of the
    switching graph is untouched.  This module re-maps only the
    affected switching-graph components and keeps every unaffected
    group's configuration byte-identical to the previous design.

    {2 Semantics}

    [remap ~old spec] is a {e deterministic function of the old design
    and the new spec} (not of the search path taken to produce [old]).
    It tries, in order:

    + {b Reused} — the new spec's groups all match old groups by
      content: the old mapping is re-packaged (use-case ids renumbered)
      with no routing work at all.
    + {b Delta} — the mesh and core placement are retained; matched
      ("clean") groups keep their routes and slot tables byte-for-byte
      (rebuilt via {!Resources.reservations}/[restore]); each dirty
      group is routed as an independent single-group sub-problem on the
      fixed placement.  Group-local routing is sound because
      {!Mapping.map_with_placement} consults only the group's own
      resource state — use-cases never contend across groups.
    + {b Warm_placement} — some dirty group failed to route, the
      {!Feasibility} certificate refutes the retained mesh, or the
      stitched design's phase-4 report came out worse than the old
      design's (a verified old design must stay verified; an old
      design that already shipped with reported violations keeps its
      best-effort standard — retained groups inherit its report
      verbatim): the whole new problem is routed once on the retained
      mesh and placement.
    + {b Regrown} — the full growth search, exactly
      {!Mapping.map_design} on the new problem.

    The same decision chain runs in both modes below; {!Incremental}
    merely serves each step from the content-addressed cache
    ({!Mapping_cache.with_placement} keys each dirty component's
    sub-problem by its own digest, so repeated churn steps memoize
    per component).  [Incremental] and [Reference] results are
    byte-identical — property-tested over random churn sequences in
    [test/test_remap.ml], cache on or off, pruning on or off.

    The retained mesh is never shrunk: removing a use-case keeps the
    old mesh even when a smaller one would now suffice (configuration
    stability is the point of remapping — a full re-run recovers the
    minimal mesh when wanted). *)

type mode =
  | Incremental  (** serve sub-problems through {!Mapping_cache} *)
  | Reference
      (** the naive oracle: same decision chain, every sub-problem
          computed directly, no cache.  Byte-identical results. *)

type path =
  | Reused          (** pure removal/renumbering; no routing ran *)
  | Delta of int    (** [n] dirty groups re-routed on the old placement *)
  | Warm_placement  (** whole problem re-routed on the old mesh + placement *)
  | Regrown         (** full growth search *)

type delta = {
  clean : (int list * int list) list;
      (** matched groups, [(old ids, new ids)], in new-group order *)
  dirty : int list list;   (** new groups with no content-equal old group *)
  removed : int list list; (** old groups matched by no new group *)
}

type outcome = {
  design : Design_flow.t;
  delta : delta;
  path : path;
}

val diff :
  old:Design_flow.t ->
  all_use_cases:Noc_traffic.Use_case.t list ->
  groups:int list list ->
  delta
(** Content-based dirty set: a new group is {e clean} when some unused
    old group has the same member count and positionally content-equal
    use-cases (same core count; same flow lists, bandwidths and
    latencies compared bit-exactly).  Names and ids are ignored, as in
    {!Mapping_cache.problem_digest}.  Matching is first-fit over old
    groups in order, so it is deterministic. *)

val remap :
  ?config:Noc_arch.Noc_config.t ->
  ?mode:mode ->
  ?parallel:bool ->
  ?prune:bool ->
  old:Design_flow.t ->
  Design_flow.spec ->
  (outcome, string) result
(** Re-map [spec] against the completed design [old].  [config]
    defaults to the old mapping's; passing a different one forces the
    fallback chain (retained slot tables are only valid under the
    config that produced them).  [parallel]/[prune] (defaults [true])
    apply to the growth search of the [Regrown] fallback; [prune] also
    gates the certificate check that protects the retained mesh.
    Errors only when the final [Regrown] fallback fails. *)

val churn :
  ?config:Noc_arch.Noc_config.t ->
  ?mode:mode ->
  ?parallel:bool ->
  ?prune:bool ->
  Design_flow.spec list ->
  (Design_flow.t * outcome list, string) result
(** Fold a spec sequence: the first spec runs the full
    {!Design_flow.run}, each later one remaps against its
    predecessor's design.  Returns the initial design and one outcome
    per subsequent spec. *)
