(** The complete multi-use-case design flow (paper Figure 3).

    Phase 1: compound use-cases are generated for the parallel modes
    (PUC input).  Phase 2: the switching graph is built from the
    smooth-switching pairs (SUC input) plus the automatic
    compound-member edges, and Algorithm 1 groups the use-cases.
    Phase 3: unified mapping and NoC configuration (Algorithm 2), with
    optional annealing refinement.  Phase 4: analytic verification of
    every guaranteed-throughput connection. *)

type spec = {
  name : string;
  use_cases : Noc_traffic.Use_case.t list;
      (** base use-cases; ids must equal list positions *)
  parallel : int list list;
      (** PUC: sets of base use-case ids that can run in parallel *)
  smooth : (int * int) list;
      (** SUC: pairs of use-case ids requiring smooth switching *)
}

type t = {
  spec : spec;
  all_use_cases : Noc_traffic.Use_case.t list;
      (** base use-cases followed by generated compounds *)
  compounds : Compound.t list;
  groups : int list list;     (** Algorithm 1 output *)
  mapping : Mapping.t;
  report : Verify.report;     (** phase-4 analytic verification *)
  refinement : Refine.outcome option;  (** present when refinement ran *)
}

val expand : spec -> Noc_traffic.Use_case.t list * Compound.t list * int list list
(** Phases 1 + 2 only: the full use-case list (base + generated
    compounds), the compounds, and the switching-aware use-case groups
    — exactly what phase 3 maps.  Exposed for the static analyzer,
    which certifies feasibility of the same inputs. *)

val package :
  ?refinement:Refine.outcome ->
  spec:spec ->
  all_use_cases:Noc_traffic.Use_case.t list ->
  compounds:Compound.t list ->
  groups:int list list ->
  report:Verify.report ->
  Mapping.t ->
  t
(** [assemble] with a caller-supplied phase-4 report.  The incremental
    remapper packages stitched designs with a spliced report: fresh
    checks for re-routed components ({!Verify.verify} [~only]), the
    old design's violations inherited (ids renumbered) for retained
    components, whose check inputs are byte-identical. *)

val assemble :
  ?refinement:Refine.outcome ->
  spec:spec ->
  all_use_cases:Noc_traffic.Use_case.t list ->
  compounds:Compound.t list ->
  groups:int list list ->
  Mapping.t ->
  t
(** Package a finished mapping as a design: runs the full phase-4
    analytic verification and records its report.  [run] is [expand] +
    phase 3 + [assemble]; the incremental remapper ({!Remap}) uses the
    same door for its whole-problem fallback paths and [package] with
    a spliced report for stitched designs. *)

val run :
  ?config:Noc_arch.Noc_config.t ->
  ?parallel:bool ->
  ?prune:bool ->
  ?refine:bool ->
  ?post:(t -> (unit, string) result) ->
  spec ->
  (t, string) result
(** Run all phases.  [parallel] (default true) lets the phase-3 mesh
    growth search evaluate sizes speculatively on separate domains (see
    {!Mapping.map_design}; the result is unchanged).  [prune] (default
    true) skips mesh sizes whose {!Feasibility} certificate proves them
    infeasible — same result, fewer attempts.  [refine] (default
    false) additionally runs the simulated-annealing placement
    refinement.  [post] runs on the assembled design as an optional
    final phase (traced as [phase:post]); an [Error] from it fails the
    whole run.  The CLI plugs independent certification
    ([Noc_analysis.Certify], which this library cannot depend on) in
    here.  Fails with a readable message when no mesh up to the growth
    cap maps the design. *)

val switch_count : t -> int
(** Switches in the designed NoC (the §6.2 metric). *)

val verified : t -> bool
(** Did the phase-4 analytic verification pass? *)

val spec_of_use_cases :
  name:string -> Noc_traffic.Use_case.t list -> spec
(** Convenience: a spec with no parallel modes and no smooth-switching
    constraints (every use-case is its own group). *)

val reconfiguration : t -> Reconfig.cost list
(** Switching costs between every unordered use-case pair of the
    design (see {!Reconfig.analyze}). *)

val pp_summary : Format.formatter -> t -> unit
