(** Textual design-spec format.

    Lets a user describe a multi-use-case SoC in a plain file and run
    the whole flow from the command line ([nocmap map --spec FILE]).
    The format, line-oriented, [#] starts a comment:

    {v
    name set-top-box        # optional; defaults to the supplied name
    cores 7

    use-case video
      flow 0 -> 1 bw 100
      flow 1 -> 2 bw 75 lat 500       # latency bound in ns
      flow 2 -> 3 bw 40 be            # best-effort: no reservation

    use-case record
      flow 0 -> 4 bw 120

    parallel video record             # these may run concurrently
    smooth video record               # these need smooth switching
    v}

    Use-case names must be declared before they are referenced by
    [parallel]/[smooth]; ids are assigned in declaration order. *)

type error = {
  line : int;     (** 1-based line of the offending text *)
  message : string;
}

val parse : name:string -> string -> (Design_flow.spec, error) result
(** Parse a complete spec document.  [name] is the fallback design
    name (e.g. the file name). *)

val parse_file : string -> (Design_flow.spec, error) result
(** Read and [parse] a file; I/O failures surface as an [error] on
    line 0. *)

val to_text : Design_flow.spec -> string
(** Render a spec back into the textual format ([parse] of the result
    reproduces the spec — used by tests as a round-trip property). *)

val pp_error : Format.formatter -> error -> unit
