lib/core/compound.ml: Hashtbl List Noc_traffic Printf String
