test/test_export.ml: Alcotest Float List Noc_arch Noc_benchkit Noc_core Noc_export Printf QCheck QCheck_alcotest Result String
