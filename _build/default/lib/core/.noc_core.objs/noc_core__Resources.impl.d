lib/core/resources.ml: Array Float Format List Noc_arch Printf
