(** Synthetic multi-use-case benchmark generation (paper §6.1).

    Two families: *Spread* (Sp) benchmarks, where each core talks to a
    few other cores — the TV-processor style with distributed local
    memories — and *Bottleneck* (Bot) benchmarks, where most traffic
    converges on one or a few shared-memory cores — the set-top-box
    style.  Traffic parameters fall into a small number of clusters
    (HD video, SD video, audio, latency-critical control) with small
    deviations inside each cluster, exactly as the paper describes. *)

type cluster = {
  label : string;
  weight : float;  (** relative probability of drawing this cluster *)
  bw_lo : Noc_util.Units.bandwidth;
  bw_hi : Noc_util.Units.bandwidth;
  latency_lo_ns : Noc_util.Units.latency option;
  latency_hi_ns : Noc_util.Units.latency option;
      (** [None] = no latency constraint for this cluster *)
}

type pattern =
  | Spread
      (** each core communicates with a few partners, load spread evenly *)
  | Bottleneck of {
      hotspots : int;   (** number of shared-memory cores (ids 0..) *)
      fraction : float; (** fraction of flows touching a hotspot *)
    }

type params = {
  cores : int;
  flows_lo : int;  (** fewest communicating pairs per use-case *)
  flows_hi : int;
  clusters : cluster list;
  pattern : pattern;
  activity_lo : float;
  activity_hi : float;
      (** every use-case draws an activity level in this range that
          scales all its bandwidths: SoCs mix heavy use-cases (HD
          record) with light ones (standby), which is what makes
          per-use-case DVS/DFS profitable (paper §6.4) *)
}

val default_clusters : cluster list
(** HD video (150-300 MB/s, 8 %), SD video (30-70 MB/s, 22 %), audio
    (2-8 MB/s, 40 %), control (0.5-2 MB/s, latency 400-900 ns, 30 %). *)

val spread_params : params
(** The paper's Sp point: 20 cores, 60-100 connections per use-case. *)

val bottleneck_params : params
(** The paper's Bot point: 20 cores, 60-100 connections, one
    shared-memory hotspot taking 60 % of the flows. *)

val generate : seed:int -> params:params -> use_cases:int -> Noc_traffic.Use_case.t list
(** Deterministic benchmark: equal seeds give equal use-case lists.
    Each use-case draws its own communication pattern, so patterns
    differ across use-cases (the property that defeats the worst-case
    method). *)

val generate_one :
  rng:Noc_util.Rng.t -> params:params -> id:int -> name:string -> Noc_traffic.Use_case.t
(** One use-case drawn from the given generator state. *)

val generate_family :
  seed:int ->
  params:params ->
  use_cases:int ->
  similarity:float ->
  Noc_traffic.Use_case.t list
(** Like {!generate}, but use-cases are variations of one base pattern:
    each keeps a base flow with probability [similarity] (bandwidth
    jittered +-25 %) and fills the rest of its flow budget with fresh
    pattern draws.  [similarity] close to 1 models SoC families whose
    use-cases share most traffic (the paper's D2/D4 are "scaled
    versions of the designs D1 and D3"); 0 reduces to {!generate}. *)
