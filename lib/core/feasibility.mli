(** Static feasibility certificates for the mesh-growth search.

    [certify] inspects a design's guaranteed traffic — merged per
    use-case group exactly the way the shared-configuration router
    reserves it (per ordered pair: maximum bandwidth, minimum latency)
    — and derives machine-checkable lower bounds that any successful
    mapping must satisfy:

    - {b NI count}: a [w x h] grid with [nis_per_switch] NIs per switch
      must seat every core.
    - {b Per-core cut}: a core can co-locate with at most
      [nis_per_switch - 1] partners; each remaining partner's flows
      reserve their per-link slots on the core's switch egress/ingress
      links, which number at most the grid's maximum degree.
    - {b Aggregate occupancy}: summing those directional demands counts
      every remote reservation at most twice, so half the sum must fit
      in [link_count x slots].
    - {b Impossibilities}: flows no grid of any size can carry (latency
      below one slot duration with no co-location escape, bandwidth
      above the whole table, or contradictory co-location forcing).

    Per-flow slot costs come from {!eff_slots}, which lower-bounds what
    [Path_select] can ever achieve; every bound is monotone along
    {!Noc_arch.Mesh.growth_sequence}, so rejected sizes form a prefix
    of the growth order and pruning them cannot change the first
    success (see the soundness property test in [test_analysis.ml]). *)

type demand = {
  core : int;
  egress : bool;  (** slots leaving ([true]) or entering the core's switch *)
  slots : int;    (** lower bound on reserved slots across those links *)
}

type group_cert = {
  group : int;          (** index into the [groups] argument *)
  cut : demand list;    (** per-core directional bounds (positive only) *)
  aggregate : int;      (** slots any mapping reserves across all links *)
}

type impossibility = {
  group : int;
  src : int;
  dst : int;
  reason : string;
}

type t = {
  topology : Noc_arch.Mesh.kind;
  slots : int;
  cap : int;      (** NIs per switch *)
  cores : int;
  max_dim : int;  (** growth cap the certificate was issued under *)
  impossible : impossibility list;  (** non-empty: no size can map *)
  group_certs : group_cert list;
}

val eff_slots : config:Noc_arch.Noc_config.t -> float -> float -> int option
(** [eff_slots ~config bw lat] — smallest per-link slot count a remote
    reservation of a [bw] MB/s flow with latency bound [lat] ns can
    occupy (bandwidth floor plus best-case TDMA spread at one hop), or
    [None] when no slot count satisfies both. *)

val certify :
  ?config:Noc_arch.Noc_config.t ->
  groups:int list list ->
  Noc_traffic.Use_case.t list ->
  t
(** Build the certificate for a design (default configuration:
    {!Noc_arch.Noc_config.default}).  Pure and allocation-local: safe
    to call concurrently from pool workers.
    @raise Invalid_argument on an empty design or out-of-range group
    member. *)

val admits : t -> width:int -> height:int -> bool
(** Whether the certificate allows a mapping at this grid size.
    [false] is a proof of infeasibility; [true] promises nothing. *)

val admits_mesh : t -> Noc_arch.Mesh.t -> bool
(** {!admits} against an explicit mesh's switch graph — use for meshes
    that are not plain grids (express channels), which get credited
    with their real degrees and link count. *)

val explain : t -> width:int -> height:int -> string option
(** The first violated bound at this size, rendered; [None] iff
    {!admits}. *)

val violation : t -> width:int -> height:int -> string option
(** Alias of {!explain} (the lint passes use both names). *)

val first_admitted : t -> (int * int) option
(** Earliest growth-sequence size the certificate admits — where the
    pruned growth search starts.  [None]: provably infeasible up to the
    growth cap. *)

val pp : Format.formatter -> t -> unit
