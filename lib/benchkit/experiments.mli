(** Regeneration of every figure in the paper's evaluation (§6).

    Each [figN] function recomputes the corresponding figure's data
    series with this repository's implementation; [print_all] renders
    them as tables next to the paper's reported values.  All inputs are
    deterministic (fixed seeds), so the numbers are reproducible. *)

type method_result = {
  switches : int option;    (** NoC size; [None] = no feasible mapping *)
  mesh : (int * int) option;
  seconds : float;          (** wall-clock (monotonic-enough) of the mapping run *)
  cpu_seconds : float;
      (** CPU time of the same run.  Under the domain pool the two
          diverge: [Sys.time] sums across worker domains, wall clock is
          what the user waits for. *)
}

type comparison_row = {
  label : string;
  ours : method_result;     (** the multi-use-case method (this paper) *)
  wc : method_result;       (** the worst-case baseline [25] *)
  ratio : float option;     (** ours/wc switch count, the Fig 6 metric *)
}

val fig6a : unit -> comparison_row list
(** Fig 6(a): normalized switch count on the SoC designs D1-D4.

    This and every other multi-point figure runs its per-point bodies
    on the shared {!Noc_util.Domain_pool} (bounded by the [--jobs]
    default), with compound generation, switching-group computation and
    WC worst-case synthesis hoisted out of the timed mapping runs. *)

val fig6b : ?counts:int list -> unit -> comparison_row list
(** Fig 6(b): Sp benchmarks, default use-case counts 2,5,10,15,20. *)

val fig6c : ?counts:int list -> unit -> comparison_row list
(** Fig 6(c): Bot benchmarks, same counts. *)

val forty_use_cases : unit -> comparison_row list
(** §6.2 text: Sp and Bot at 40 use-cases — our method still maps onto
    a 2x2 mesh while WC must fail even at the 20x20 growth cap. *)

val fig7a : ?frequencies:float list -> unit -> Noc_power.Pareto.point list
(** Fig 7(a): area-frequency trade-off for D1. *)

type fig7b_row = {
  design : string;
  f_design : float;               (** frequency the NoC must sustain *)
  use_case_freqs : float list;    (** per-use-case minimum frequency *)
  savings_pct : float option;     (** DVS/DFS power saving *)
}

val fig7b : unit -> fig7b_row list
(** Fig 7(b): DVS/DFS power savings on D1-D4 (paper average: 54 %).
    The NoC is designed at 500 MHz; the design frequency is then the
    largest per-use-case minimum (the busiest use-case pins it) and
    every other use-case epoch scales down. *)

type fig7c_row = {
  parallel : int;                 (** use-cases running in parallel *)
  freq_mhz : float option;        (** minimum NoC frequency; None = infeasible *)
}

val fig7c : ?max_parallel:int -> unit -> fig7c_row list
(** Fig 7(c): required NoC frequency when 1..4 use-cases of a 20-core,
    10-use-case Sp benchmark run in parallel (compound modes on the
    mesh designed for the sequential case). *)

type stats_row = {
  family : string;          (** "Sp" or "Bot" *)
  seeds : int;
  mean_ratio : float;       (** mean ours/WC switch ratio over the seeds *)
  stddev_ratio : float;
  wc_failures : int;        (** seeds where the WC method found no mapping *)
}

val fig6_statistics :
  ?seeds:int list -> ?use_cases:int -> unit -> stats_row list
(** Robustness of the Fig 6 result across generator seeds (default: 5
    seeds at 10 use-cases): the ratio's mean and spread, and how often
    the WC baseline fails outright.  Not a paper figure — it documents
    that the reproduction does not hinge on one lucky seed. *)

type scalability_row = {
  n_use_cases : int;
  ours_seconds : float;
  ours_switches : int option;
}

val scalability : ?counts:int list -> unit -> scalability_row list
(** Runtime of the multi-use-case method as the use-case count grows
    (default 5/10/20/40/80 on the Sp generator) — the paper's claim
    that "the methodology is efficient and scalable to a large number
    of use-cases", quantified. *)

val print_all : unit -> unit
(** Render every experiment as a table with the paper's expected shape
    noted, in paper order.  This is what [bench/main.exe] and
    [bin/nocmap.exe experiments] call. *)

val print_one : string -> (unit, string) result
(** Render a single experiment by id: "fig6a", "fig6b", "fig6c",
    "s62", "fig7a", "fig7b" or "fig7c". *)
