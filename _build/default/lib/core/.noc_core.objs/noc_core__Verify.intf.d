lib/core/verify.mli: Format Mapping Noc_traffic
