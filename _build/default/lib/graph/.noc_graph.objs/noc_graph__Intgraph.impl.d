lib/graph/intgraph.ml: Array List
