module J = Noc_export.Json
module Config = Noc_arch.Noc_config

let proto_version = 1

type op_config = { freq_mhz : float; slots : int; nis_per_switch : int; xy : bool }

let default_config = { freq_mhz = 500.0; slots = 32; nis_per_switch = 8; xy = false }

let to_noc_config c =
  {
    Config.default with
    freq_mhz = c.freq_mhz;
    slots = c.slots;
    nis_per_switch = c.nis_per_switch;
    routing = (if c.xy then Config.Xy else Config.Min_cost);
  }

type op =
  | Ping
  | Map of { name : string; spec : string; config : op_config }
  | Explore of {
      name : string;
      spec : string;
      config : op_config;
      frequencies : float list option;
      slot_counts : int list option;
      torus : bool;
    }
  | Lint of { name : string; spec : string; config : op_config; deep : bool }
  | Certify of { name : string; spec : string; config : op_config }
  | Remap of {
      from_name : string;
      from_spec : string;
      to_name : string;
      to_spec : string;
      config : op_config;
    }
  | Stats
  | Shutdown

type request = { id : int; op : op }

type error_code =
  | Overloaded
  | Too_many_inflight
  | Shutting_down
  | Bad_request
  | Spec_error
  | Exec_error
  | Version_mismatch

let error_code_to_string = function
  | Overloaded -> "overloaded"
  | Too_many_inflight -> "too-many-inflight"
  | Shutting_down -> "shutting-down"
  | Bad_request -> "bad-request"
  | Spec_error -> "spec-error"
  | Exec_error -> "exec-error"
  | Version_mismatch -> "version-mismatch"

let error_code_of_string = function
  | "overloaded" -> Some Overloaded
  | "too-many-inflight" -> Some Too_many_inflight
  | "shutting-down" -> Some Shutting_down
  | "bad-request" -> Some Bad_request
  | "spec-error" -> Some Spec_error
  | "exec-error" -> Some Exec_error
  | "version-mismatch" -> Some Version_mismatch
  | _ -> None

type response =
  | Result of { id : int; payload : string; coalesced : bool }
  | Failure of { id : int; code : error_code; message : string; retry_after_ms : int option }

(* --- handshake ----------------------------------------------------------- *)

(* One JSON object per line: serialize compact (indent 0 never emits a
   newline) and terminate with exactly one '\n'. *)
let line v = J.to_string v ^ "\n"

let greeting () =
  line
    (J.Obj
       [
         ("proto", J.Int proto_version);
         ("server", J.String "nocmap");
         ("build", J.String (Noc_util.Build_info.fingerprint ()));
       ])

let hello ?build () =
  let build = match build with Some b -> b | None -> Noc_util.Build_info.fingerprint () in
  line (J.Obj [ ("proto", J.Int proto_version); ("build", J.String build) ])

let hello_ok () =
  line
    (J.Obj
       [ ("ok", J.Bool true); ("build", J.String (Noc_util.Build_info.fingerprint ())) ])

let hello_reject ~message =
  line
    (J.Obj
       [
         ("ok", J.Bool false);
         ("error", J.String (error_code_to_string Version_mismatch));
         ("message", J.String message);
       ])

let parse_line text =
  match J.parse (String.trim text) with
  | Ok v -> Ok v
  | Error msg -> Error (Printf.sprintf "malformed JSON line: %s" msg)

let str_member k v = match J.member k v with Some (J.String s) -> Some s | _ -> None
let int_member k v = match J.member k v with Some (J.Int i) -> Some i | _ -> None
let bool_member k v = match J.member k v with Some (J.Bool b) -> Some b | _ -> None

let check_greeting text =
  match parse_line text with
  | Error e -> Error e
  | Ok v -> (
    match (int_member "proto" v, str_member "build" v) with
    | Some p, _ when p <> proto_version ->
      Error (Printf.sprintf "server speaks protocol %d, this client speaks %d" p proto_version)
    | Some _, Some build -> Ok build
    | _ -> Error "greeting missing \"proto\"/\"build\"")

let check_hello text =
  match parse_line text with
  | Error e -> Error e
  | Ok v -> (
    match (int_member "proto" v, str_member "build" v) with
    | Some p, _ when p <> proto_version ->
      Error (Printf.sprintf "client speaks protocol %d, this server speaks %d" p proto_version)
    | Some _, Some build ->
      let own = Noc_util.Build_info.fingerprint () in
      if String.equal build own then Ok ()
      else
        Error
          (Printf.sprintf
             "client build %s does not match server build %s (results would not be \
              byte-reproducible)"
             build own)
    | _ -> Error "hello missing \"proto\"/\"build\"")

let hello_verdict text =
  match parse_line text with
  | Error e -> Error e
  | Ok v -> (
    match bool_member "ok" v with
    | Some true -> Ok ()
    | Some false ->
      Error (Option.value (str_member "message" v) ~default:"handshake rejected")
    | None -> Error "handshake reply missing \"ok\"")

(* --- requests ------------------------------------------------------------ *)

let config_fields c =
  [
    ("freq_mhz", J.Float c.freq_mhz);
    ("slots", J.Int c.slots);
    ("nis_per_switch", J.Int c.nis_per_switch);
    ("xy", J.Bool c.xy);
  ]

let decode_config v =
  match J.member "config" v with
  | None -> Ok default_config
  | Some c -> (
    let num k d = match Option.bind (J.member k c) J.to_float with Some f -> f | None -> d in
    let int k d = match int_member k c with Some i -> i | None -> d in
    let flag k d = match bool_member k c with Some b -> b | None -> d in
    match c with
    | J.Obj _ ->
      Ok
        {
          freq_mhz = num "freq_mhz" default_config.freq_mhz;
          slots = int "slots" default_config.slots;
          nis_per_switch = int "nis_per_switch" default_config.nis_per_switch;
          xy = flag "xy" default_config.xy;
        }
    | _ -> Error "\"config\" must be an object")

let float_list_member k v =
  match J.member k v with
  | None -> Ok None
  | Some (J.List items) ->
    let rec go acc = function
      | [] -> Ok (Some (List.rev acc))
      | x :: rest -> (
        match J.to_float x with
        | Some f -> go (f :: acc) rest
        | None -> Error (Printf.sprintf "\"%s\" must be a list of numbers" k))
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "\"%s\" must be a list of numbers" k)

let int_list_member k v =
  match J.member k v with
  | None -> Ok None
  | Some (J.List items) ->
    let rec go acc = function
      | [] -> Ok (Some (List.rev acc))
      | J.Int i :: rest -> go (i :: acc) rest
      | _ -> Error (Printf.sprintf "\"%s\" must be a list of integers" k)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "\"%s\" must be a list of integers" k)

let encode_op = function
  | Ping -> [ ("op", J.String "ping") ]
  | Map { name; spec; config } ->
    [
      ("op", J.String "map");
      ("name", J.String name);
      ("spec", J.String spec);
      ("config", J.Obj (config_fields config));
    ]
  | Explore { name; spec; config; frequencies; slot_counts; torus } ->
    [ ("op", J.String "explore"); ("name", J.String name); ("spec", J.String spec);
      ("config", J.Obj (config_fields config)) ]
    @ (match frequencies with
      | None -> []
      | Some fs -> [ ("frequencies", J.List (List.map (fun f -> J.Float f) fs)) ])
    @ (match slot_counts with
      | None -> []
      | Some ss -> [ ("slot_counts", J.List (List.map (fun s -> J.Int s) ss)) ])
    @ [ ("torus", J.Bool torus) ]
  | Lint { name; spec; config; deep } ->
    [
      ("op", J.String "lint");
      ("name", J.String name);
      ("spec", J.String spec);
      ("config", J.Obj (config_fields config));
      ("deep", J.Bool deep);
    ]
  | Certify { name; spec; config } ->
    [
      ("op", J.String "certify");
      ("name", J.String name);
      ("spec", J.String spec);
      ("config", J.Obj (config_fields config));
    ]
  | Remap { from_name; from_spec; to_name; to_spec; config } ->
    [
      ("op", J.String "remap");
      ("from_name", J.String from_name);
      ("from", J.String from_spec);
      ("to_name", J.String to_name);
      ("to", J.String to_spec);
      ("config", J.Obj (config_fields config));
    ]
  | Stats -> [ ("op", J.String "stats") ]
  | Shutdown -> [ ("op", J.String "shutdown") ]

let encode_request { id; op } = line (J.Obj (("id", J.Int id) :: encode_op op))

let decode_request text =
  let ( let* ) = Result.bind in
  let* v = parse_line text in
  let* id = match int_member "id" v with Some i -> Ok i | None -> Error "missing integer \"id\"" in
  let* opname =
    match str_member "op" v with Some s -> Ok s | None -> Error "missing string \"op\""
  in
  let need k = match str_member k v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string \"%s\"" k)
  in
  let* op =
    match opname with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | "map" ->
      let* name = need "name" in
      let* spec = need "spec" in
      let* config = decode_config v in
      Ok (Map { name; spec; config })
    | "explore" ->
      let* name = need "name" in
      let* spec = need "spec" in
      let* config = decode_config v in
      let* frequencies = float_list_member "frequencies" v in
      let* slot_counts = int_list_member "slot_counts" v in
      let torus = Option.value (bool_member "torus" v) ~default:false in
      Ok (Explore { name; spec; config; frequencies; slot_counts; torus })
    | "lint" ->
      let* name = need "name" in
      let* spec = need "spec" in
      let* config = decode_config v in
      let deep = Option.value (bool_member "deep" v) ~default:false in
      Ok (Lint { name; spec; config; deep })
    | "certify" ->
      let* name = need "name" in
      let* spec = need "spec" in
      let* config = decode_config v in
      Ok (Certify { name; spec; config })
    | "remap" ->
      let* from_name = need "from_name" in
      let* from_spec = need "from" in
      let* to_name = need "to_name" in
      let* to_spec = need "to" in
      let* config = decode_config v in
      Ok (Remap { from_name; from_spec; to_name; to_spec; config })
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { id; op }

(* --- responses ----------------------------------------------------------- *)

let encode_response = function
  | Result { id; payload; coalesced } ->
    line
      (J.Obj
         [
           ("id", J.Int id);
           ("ok", J.Bool true);
           ("coalesced", J.Bool coalesced);
           ("payload", J.String payload);
         ])
  | Failure { id; code; message; retry_after_ms } ->
    line
      (J.Obj
         ([
            ("id", J.Int id);
            ("ok", J.Bool false);
            ("error", J.String (error_code_to_string code));
            ("message", J.String message);
          ]
         @
         match retry_after_ms with
         | Some ms -> [ ("retry_after_ms", J.Int ms) ]
         | None -> []))

let escape_payload = J.escape

let encode_result_preescaped ~id ~coalesced ~escaped_payload =
  (* Byte-identical to [encode_response (Result ...)] with the payload
     escaping hoisted out, so a coalesced fan-out escapes one large
     payload once instead of once per requester (checked by test). *)
  Printf.sprintf "{\"id\": %d,\"ok\": true,\"coalesced\": %b,\"payload\": \"%s\"}\n" id
    coalesced escaped_payload

let decode_response text =
  let ( let* ) = Result.bind in
  let* v = parse_line text in
  let* id = match int_member "id" v with Some i -> Ok i | None -> Error "missing integer \"id\"" in
  match bool_member "ok" v with
  | Some true -> (
    match str_member "payload" v with
    | Some payload ->
      Ok (Result { id; payload; coalesced = Option.value (bool_member "coalesced" v) ~default:false })
    | None -> Error "ok response missing \"payload\"")
  | Some false -> (
    match Option.bind (str_member "error" v) error_code_of_string with
    | Some code ->
      Ok
        (Failure
           {
             id;
             code;
             message = Option.value (str_member "message" v) ~default:"";
             retry_after_ms = int_member "retry_after_ms" v;
           })
    | None -> Error "error response missing a known \"error\" code")
  | None -> Error "response missing \"ok\""

let response_id = function Result { id; _ } -> id | Failure { id; _ } -> id
