lib/sim/simulator.mli: Format Noc_arch Trace
