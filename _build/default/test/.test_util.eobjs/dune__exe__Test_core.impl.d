test/test_core.ml: Alcotest Array Float Format List Noc_arch Noc_benchkit Noc_core Noc_traffic Printf QCheck QCheck_alcotest Result String
