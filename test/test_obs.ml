(* Observability tests: the metrics registry, the span tracer, the
   Chrome export's well-formedness, and the PR's pinned invariant —
   instrumentation is passive, so a traced run exports byte-identical
   designs to an untraced one. *)

module Metrics = Noc_obs.Metrics
module Tracer = Noc_obs.Tracer
module J = Noc_export.Json
module DF = Noc_core.Design_flow
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs

(* Each test starts from clean instruments; registrations survive. *)
let fresh () =
  Tracer.set_enabled false;
  Tracer.reset ();
  Metrics.reset ()

(* --- metrics ------------------------------------------------------------- *)

let test_counter_basics () =
  fresh ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.counter_value c);
  Alcotest.(check bool) "interned by name" true (c == Metrics.counter "test.counter");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c)

let test_counter_across_domains () =
  fresh ();
  let c = Metrics.counter "test.domains" in
  (* The pool's workers run on distinct domains, so the increments land
     on different stripes; the total must still be exact. *)
  let results =
    Noc_util.Domain_pool.map ~jobs:4
      (fun _ ->
        Metrics.incr c;
        1)
      (List.init 100 Fun.id)
  in
  Alcotest.(check int) "all tasks ran" 100 (List.fold_left ( + ) 0 results);
  Alcotest.(check int) "striped counter is exact" 100 (Metrics.counter_value c)

let test_gauge () =
  fresh ();
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "gauge holds last value" 2.5 (Metrics.gauge_value g)

let test_histogram_percentiles () =
  fresh ();
  let h = Metrics.histogram "test.hist" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let snap = Metrics.snapshot () in
  let stats = List.assoc "test.hist" snap.Metrics.histograms in
  Alcotest.(check int) "count" 100 stats.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 5050.0 stats.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 stats.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 100.0 stats.Metrics.max;
  Alcotest.(check (float 1e-9)) "p50 (nearest rank)" 50.0 stats.Metrics.p50;
  Alcotest.(check (float 1e-9)) "p90" 90.0 stats.Metrics.p90;
  Alcotest.(check (float 1e-9)) "p99" 99.0 stats.Metrics.p99

let test_snapshot_sorted_and_json_valid () =
  fresh ();
  Metrics.incr (Metrics.counter "test.b");
  Metrics.incr (Metrics.counter "test.a");
  Metrics.set (Metrics.gauge "test.g") 1.0;
  Metrics.observe (Metrics.histogram "test.h") 3.0;
  let snap = Metrics.snapshot () in
  let names = List.map fst snap.Metrics.counters in
  Alcotest.(check bool) "counters sorted by name" true (names = List.sort compare names);
  (match J.validate (Metrics.render_json snap) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "render_json is not valid JSON: %s" e);
  (* The CLI reads the file back through the same schema. *)
  match J.parse (Metrics.render_json snap) with
  | Error e -> Alcotest.failf "render_json does not parse: %s" e
  | Ok v -> (
    match J.member "counters" v with
    | Some (J.Obj fields) ->
      Alcotest.(check bool) "test.a survives the round trip" true
        (List.mem_assoc "test.a" fields)
    | _ -> Alcotest.fail "no counters object")

(* --- tracer -------------------------------------------------------------- *)

let test_disabled_records_nothing () =
  fresh ();
  let r = Tracer.with_span "off" (fun () -> 7) in
  Alcotest.(check int) "thunk result passes through" 7 r;
  Alcotest.(check int) "nothing recorded while disabled" 0 (List.length (Tracer.events ()))

let test_nesting_and_args () =
  fresh ();
  Tracer.set_enabled true;
  Tracer.with_span ~args:[ ("k", Tracer.Int 3) ] "outer" (fun () ->
      Tracer.with_span "inner" (fun () -> Tracer.add_arg "late" (Tracer.Bool true)));
  Tracer.set_enabled false;
  match Tracer.events () with
  | [ outer; inner ] ->
    Alcotest.(check string) "outer first (by start)" "outer" outer.Tracer.name;
    Alcotest.(check int) "outer depth" 0 outer.Tracer.depth;
    Alcotest.(check int) "inner depth" 1 inner.Tracer.depth;
    Alcotest.(check bool) "outer keeps its args" true
      (List.mem ("k", Tracer.Int 3) outer.Tracer.args);
    Alcotest.(check bool) "add_arg lands on the open span" true
      (List.mem ("late", Tracer.Bool true) inner.Tracer.args);
    Alcotest.(check bool) "child starts within parent" true
      (Int64.compare inner.Tracer.start_ns outer.Tracer.start_ns >= 0);
    Alcotest.(check bool) "child ends within parent" true
      (Int64.compare
         (Int64.add inner.Tracer.start_ns inner.Tracer.dur_ns)
         (Int64.add outer.Tracer.start_ns outer.Tracer.dur_ns)
      <= 0)
  | evs -> Alcotest.failf "expected 2 spans, got %d" (List.length evs)

let test_exception_closes_span () =
  fresh ();
  Tracer.set_enabled true;
  (try Tracer.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Tracer.set_enabled false;
  match Tracer.events () with
  | [ e ] ->
    Alcotest.(check string) "span closed" "boom" e.Tracer.name;
    Alcotest.(check bool) "raised attribute" true
      (List.mem ("raised", Tracer.Bool true) e.Tracer.args)
  | evs -> Alcotest.failf "expected 1 span, got %d" (List.length evs)

let test_span_feeds_histogram () =
  fresh ();
  Tracer.set_enabled true;
  Tracer.with_span "fed" (fun () -> ());
  Tracer.set_enabled false;
  let snap = Metrics.snapshot () in
  let stats = List.assoc "span.fed" snap.Metrics.histograms in
  Alcotest.(check int) "one sample per closed span" 1 stats.Metrics.count

(* A traced design-flow run across domains: events must come out
   sorted, nested per domain, and the Chrome export must be valid JSON
   with non-negative microsecond timestamps in non-decreasing order. *)
let traced_d1 () =
  fresh ();
  Tracer.set_enabled true;
  (match DF.run (DF.spec_of_use_cases ~name:"obs-d1" (SD.d1 ())) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "D1 failed under tracing: %s" e);
  Tracer.set_enabled false;
  Tracer.events ()

let test_events_well_formed () =
  let events = traced_d1 () in
  Alcotest.(check bool) "design flow produced spans" true (List.length events >= 4);
  List.iter
    (fun (e : Tracer.event) ->
      Alcotest.(check bool) (e.Tracer.name ^ ": non-negative duration") true
        (Int64.compare e.Tracer.dur_ns 0L >= 0))
    events;
  let sorted = ref true in
  ignore
    (List.fold_left
       (fun prev (e : Tracer.event) ->
         if Int64.compare e.Tracer.start_ns prev < 0 then sorted := false;
         e.Tracer.start_ns)
       Int64.min_int events);
  Alcotest.(check bool) "events sorted by start across domains" true !sorted;
  (* Per-domain nesting: walk each domain's spans against a stack of
     enclosing end times. *)
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun (e : Tracer.event) ->
      let stop = Int64.add e.Tracer.start_ns e.Tracer.dur_ns in
      let stack = Option.value (Hashtbl.find_opt stacks e.Tracer.domain) ~default:[] in
      let rec pop = function
        | top :: below when Int64.compare top e.Tracer.start_ns <= 0 -> pop below
        | s -> s
      in
      let stack = pop stack in
      (match stack with
      | top :: _ ->
        Alcotest.(check bool)
          (e.Tracer.name ^ ": contained in its enclosing span")
          true
          (Int64.compare stop top <= 0)
      | [] -> ());
      Hashtbl.replace stacks e.Tracer.domain (stop :: stack))
    events

let test_chrome_export_schema () =
  let _ = traced_d1 () in
  let text = Tracer.export_chrome () in
  (match J.validate text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e);
  match J.parse text with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok v -> (
    match J.member "traceEvents" v with
    | Some (J.List events) ->
      let span_names = ref [] in
      let last_ts = ref neg_infinity in
      List.iter
        (fun e ->
          match J.member "ph" e with
          | Some (J.String "X") ->
            (match J.member "name" e with
            | Some (J.String n) -> span_names := n :: !span_names
            | _ -> Alcotest.fail "X event without a name");
            let num k =
              match Option.bind (J.member k e) J.to_float with
              | Some f -> f
              | None -> Alcotest.failf "X event missing numeric %s" k
            in
            let ts = num "ts" and dur = num "dur" in
            Alcotest.(check bool) "ts >= 0" true (ts >= 0.0);
            Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
            Alcotest.(check bool) "ts non-decreasing" true (ts +. 1e-3 >= !last_ts);
            last_ts := ts;
            (match J.member "pid" e with
            | Some (J.Int _) -> ()
            | _ -> Alcotest.fail "X event missing pid");
            (match J.member "tid" e with
            | Some (J.Int _) -> ()
            | _ -> Alcotest.fail "X event missing tid")
          | Some (J.String "M") -> ()
          | _ -> Alcotest.fail "unexpected event phase")
        events;
      List.iter
        (fun phase ->
          Alcotest.(check bool) (phase ^ " span present") true (List.mem phase !span_names))
        [ "design_flow"; "phase:expand"; "phase:map"; "phase:verify" ]
    | _ -> Alcotest.fail "no traceEvents list")

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_summary_text () =
  let _ = traced_d1 () in
  let text = Tracer.summary_text () in
  Alcotest.(check bool) "summary mentions design_flow" true
    (contains ~needle:"design_flow" text)

(* --- the pinned invariant: tracing is passive ---------------------------- *)

let export_with ~traced ucs =
  fresh ();
  Tracer.set_enabled traced;
  let r =
    match DF.run (DF.spec_of_use_cases ~name:"prop-obs" ucs) with
    | Ok d -> Ok (Noc_export.Design_export.design_to_string d)
    | Error e -> Error e
  in
  Tracer.set_enabled false;
  Tracer.reset ();
  r

let prop_traced_export_byte_identical =
  QCheck.Test.make ~name:"traced and untraced runs export byte-identical designs" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let params = { Syn.spread_params with cores = 8; flows_lo = 4; flows_hi = 10 } in
      let ucs = Syn.generate ~seed ~params ~use_cases:(1 + (seed mod 3)) in
      match (export_with ~traced:false ucs, export_with ~traced:true ucs) with
      | Ok off, Ok on -> String.equal off on
      | Error off, Error on -> String.equal off on
      | _ -> false)

let test_d1_traced_export_identical () =
  let ucs = SD.d1 () in
  match (export_with ~traced:false ucs, export_with ~traced:true ucs) with
  | Ok off, Ok on -> Alcotest.(check string) "D1 export identical under tracing" off on
  | _ -> Alcotest.fail "D1 must map"

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter across domains" `Quick test_counter_across_domains;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "snapshot sorted, JSON valid" `Quick
            test_snapshot_sorted_and_json_valid;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "nesting and args" `Quick test_nesting_and_args;
          Alcotest.test_case "exception closes span" `Quick test_exception_closes_span;
          Alcotest.test_case "span feeds histogram" `Quick test_span_feeds_histogram;
          Alcotest.test_case "events well-formed" `Quick test_events_well_formed;
          Alcotest.test_case "chrome export schema" `Quick test_chrome_export_schema;
          Alcotest.test_case "summary text" `Quick test_summary_text;
        ] );
      ( "passivity",
        Alcotest.test_case "D1 traced export identical" `Quick test_d1_traced_export_identical
        :: List.map QCheck_alcotest.to_alcotest [ prop_traced_export_byte_identical ] );
    ]
