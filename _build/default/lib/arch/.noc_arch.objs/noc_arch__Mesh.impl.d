lib/arch/mesh.ml: Array Format Hashtbl List Noc_graph Option
