(** Network-interface buffer sizing.

    An Æthereal-style NI decouples the core from the TDMA schedule: the
    producer writes at the flow rate while the schedule drains one
    payload at each reserved starting slot.  The buffer must absorb the
    longest service gap, so its size falls directly out of the slot
    reservation — one of the concrete design outputs the configuration
    (paths + slot tables) implies.  Undersized NI buffers would stall
    the core; the sizes computed here are worst-case safe. *)

val required_bytes :
  config:Noc_config.t ->
  starts:int list ->
  bw:Noc_util.Units.bandwidth ->
  float
(** Source-side buffer for a GT connection with the given reserved
    starting slots and contracted bandwidth: the traffic accumulating
    over the worst service gap, plus one payload of slack for the
    in-flight flit.  @raise Invalid_argument on an empty start list or
    non-positive bandwidth. *)

val required_words :
  config:Noc_config.t -> starts:int list -> bw:Noc_util.Units.bandwidth -> int
(** [required_bytes] in link words, rounded up. *)

val for_route : config:Noc_config.t -> Route.t -> int
(** Buffer words for a configured connection.  Same-switch and
    best-effort connections get one payload of buffering (the local
    port forwards every slot / BE is flow-controlled by backpressure,
    so one payload decouples the handshake). *)

val per_core_totals :
  config:Noc_config.t -> cores:int -> Route.t list -> int array
(** Total buffer words each core's NI needs for the given configuration
    (source-side buffers of its outgoing connections plus one payload
    per incoming connection for reassembly). *)
