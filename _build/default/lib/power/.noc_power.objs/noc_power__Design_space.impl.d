lib/power/design_space.ml: Area_model List Noc_arch Noc_core Noc_util Power_model Printf
