(** Structural VHDL generation for a completed design — the
    "SystemC & RTL VHDL NoC" output of phase 4 (paper Figure 3).

    The emitted text contains: behavioural entities for the switch and
    the network interface (parameterised by port count, link width and
    slot count), a package holding every use-case's slot-table
    configuration as constants (this is the state the dynamic
    re-configuration mechanism rewrites at use-case switching time),
    and a structural top level instantiating one switch per mesh node,
    one NI per core, and the link signals between them. *)

val slot_table_package :
  design_name:string -> Noc_core.Mapping.t -> string
(** The per-use-case slot-table constants. *)

val switch_entity : config:Noc_arch.Noc_config.t -> string
(** Parameterised switch entity + behavioural architecture stub. *)

val ni_entity : config:Noc_arch.Noc_config.t -> string

val top_level : design_name:string -> Noc_core.Mapping.t -> string
(** The structural top level. *)

val generate : design_name:string -> Noc_core.Mapping.t -> string
(** Everything concatenated into one compilation unit, in dependency
    order. *)
