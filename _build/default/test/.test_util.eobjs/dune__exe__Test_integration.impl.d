test/test_integration.ml: Alcotest Format List Noc_arch Noc_benchkit Noc_core Noc_power Noc_rtl Noc_sim Noc_traffic Printf
