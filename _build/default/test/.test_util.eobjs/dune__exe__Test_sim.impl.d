test/test_sim.ml: Alcotest Float Format List Noc_arch Noc_benchkit Noc_core Noc_sim Noc_traffic Noc_util Printf QCheck QCheck_alcotest Result
