(** Parallel-mode (compound) use-case generation — phase 1 of the
    methodology (paper §4).

    When use-cases can run in parallel, a new use-case representing the
    compound mode is generated automatically: the bandwidth of a flow
    between two cores is the *sum* of that pair's bandwidths across the
    constituent use-cases, and its latency requirement is the
    *minimum*. *)

type t = {
  use_case : Noc_traffic.Use_case.t;  (** the generated compound use-case *)
  members : int list;                 (** ids of the constituent use-cases *)
}

val merge :
  id:int -> name:string -> Noc_traffic.Use_case.t list -> Noc_traffic.Use_case.t
(** Compound of the given use-cases (sum-bandwidth / min-latency per
    ordered core pair).  @raise Invalid_argument on an empty list or
    mismatched core counts. *)

val generate :
  Noc_traffic.Use_case.t list ->
  parallel:int list list ->
  Noc_traffic.Use_case.t list * t list
(** [generate base ~parallel] builds one compound per parallel set
    (each set lists ids of base use-cases; sets of fewer than two
    members are rejected) and returns [base @ compounds] — compound ids
    continue after the base ids — together with the compound records.
    @raise Invalid_argument on unknown ids or duplicate members. *)

val default_name : Noc_traffic.Use_case.t list -> string
(** "U_123"-style name built from member ids, as in the paper's
    Figure 4. *)
