type routing = Min_cost | Xy

type t = {
  freq_mhz : Noc_util.Units.frequency;
  link_width_bits : int;
  slots : int;
  slot_cycles : int;
  nis_per_switch : int;
  constrain_ni_links : bool;
  max_mesh_dim : int;
  routing : routing;
  topology : Mesh.kind;
  placement_hw_factor : float;
  placement_spread_factor : float;
}

let default =
  {
    freq_mhz = 500.0;
    link_width_bits = 32;
    slots = 32;
    slot_cycles = 4;
    nis_per_switch = 8;
    constrain_ni_links = false;
    max_mesh_dim = 20;
    routing = Min_cost;
    topology = Mesh.Mesh;
    placement_hw_factor = 0.8;
    placement_spread_factor = 2.0;
  }

let with_freq t freq_mhz = { t with freq_mhz }

let link_capacity t =
  Noc_util.Units.link_capacity ~freq_mhz:t.freq_mhz ~width_bits:t.link_width_bits

let slot_bandwidth t =
  Noc_util.Units.mbps_per_slot ~capacity:(link_capacity t) ~slots:t.slots

let slot_duration_ns t =
  float_of_int t.slot_cycles *. Noc_util.Units.cycle_ns t.freq_mhz

let slots_for_bandwidth t bw =
  Noc_util.Units.slots_needed ~bw ~capacity:(link_capacity t) ~slots:t.slots

let validate t =
  if t.freq_mhz <= 0.0 then Error "frequency must be positive"
  else if t.link_width_bits <= 0 then Error "link width must be positive"
  else if t.slots <= 0 then Error "slot count must be positive"
  else if t.slot_cycles <= 0 then Error "slot cycles must be positive"
  else if t.nis_per_switch <= 0 then Error "NIs per switch must be positive"
  else if t.max_mesh_dim <= 0 then Error "mesh growth cap must be positive"
  else if t.placement_hw_factor <= 0.0 then Error "placement hw factor must be positive"
  else if t.placement_spread_factor <= 0.0 then Error "placement spread factor must be positive"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf
    "@[<h>NoC config: %a, %d-bit links, %d slots x %d cycles, %d NIs/switch, %s routing@]"
    Noc_util.Units.pp_frequency t.freq_mhz t.link_width_bits t.slots t.slot_cycles
    t.nis_per_switch
    (match t.routing with Min_cost -> "min-cost" | Xy -> "XY")
