(** Unified path selection and TDMA slot reservation (paper §5,
    following the single-use-case approach of [20]).

    A flow is routed on the least-cost path whose links can still carry
    it; the cost of a link combines hop delay and residual
    bandwidth/slot pressure, so heavily loaded regions are avoided.
    Reservation is done immediately — path selection and resource
    reservation are *unified* with mapping, which prunes infeasible
    placements early. *)

type request = {
  conn_id : int;             (** unique connection id (slot-table owner) *)
  flow : Noc_traffic.Flow.t;
  src_switch : int;
  dst_switch : int;
}

val needed_slots : Resources.t -> Noc_util.Units.bandwidth -> int
(** Slots a bandwidth requires under the state's configuration. *)

val route : state:Resources.t -> request -> (Noc_arch.Route.t, string) result
(** Route and reserve one flow in one use-case.  On success the state
    is updated (slots reserved, NI budget charged); on failure the
    state is untouched. *)

val route_shared :
  ?passive:Resources.t list ->
  ?use_masks:bool ->
  members:(Resources.t * request) list ->
  unit ->
  (Noc_arch.Route.t list, string) result
(** Group-shared routing (paper §5, step 6): use-cases in one
    smooth-switching group must use the same path and slot-table
    reservation.  The path is selected for the member with the maximum
    bandwidth; starting slots must be free in *every* member's tables;
    reservation is performed in each member at that maximum bandwidth.
    All requests must connect the same switch pair.

    [passive] lists the states of group members that do not carry this
    flow themselves but share the group's single configuration: the
    same slots are reserved there too (owned by the first member's
    connection id), keeping every member's slot tables identical.

    [use_masks] (default [true]) selects the rotate-and-AND bitmask
    computation of the feasible shared starting slots; [false] falls
    back to the straightforward list-intersection reference used by the
    determinism regression tests.  Both compute the same set.

    On failure no state is modified. *)

val route_be : state:Resources.t -> request -> (Noc_arch.Route.t, string) result
(** Route one best-effort flow: a least-cost path is chosen (avoiding
    links already hot with guaranteed traffic), but no slots are
    reserved and no resource is charged — BE traffic rides on leftover
    slots at run time and has no contract.
    @raise Invalid_argument if the request's flow is guaranteed. *)

val distance_map :
  state:Resources.t -> needed_slots:int -> source:int -> float array
(** Least path cost from [source] to every switch, for the placement
    scan of the mapping loop ([infinity] = unreachable with the needed
    slots). *)

val hop_weight : float
(** Cost of traversing one link (the fixed component). *)

val util_weight : float
(** Scale of the congestion component: a fully utilised link costs
    [hop_weight + util_weight] per hop. *)
