(** The worst-case (WC) baseline method of [25] (Murali et al.,
    ASP-DAC 2006), which this paper compares against.

    One synthetic use-case is built that subsumes the constraints of
    all use-cases — per ordered core pair, the *maximum* bandwidth and
    *minimum* latency found in any use-case — and the NoC is designed
    for that single use-case with a single shared resource state.  The
    over-specification grows with the number and diversity of
    use-cases, which is exactly what Figure 6 quantifies. *)

val synthetic : Noc_traffic.Use_case.t list -> Noc_traffic.Use_case.t
(** The worst-case use-case (id 0, name ["worst-case"]).
    @raise Invalid_argument on an empty list or mismatched cores. *)

val map_design :
  ?config:Noc_arch.Noc_config.t ->
  ?parallel:bool ->
  Noc_traffic.Use_case.t list ->
  (Mapping.t, Mapping.failure) result
(** Design the NoC with the WC method: build {!synthetic}, then run
    the same growth/mapping engine on it alone.  [parallel] as in
    {!Mapping.map_design}. *)

val overspecification : Noc_traffic.Use_case.t list -> float
(** Ratio of the synthetic use-case's total bandwidth to the largest
    real per-use-case total — a quick measure of how over-specified
    the WC design point is (1.0 = no overhead). *)
