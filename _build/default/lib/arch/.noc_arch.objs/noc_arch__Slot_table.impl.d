lib/arch/slot_table.ml: Array Format
