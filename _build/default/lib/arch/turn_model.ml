type turn = { from_link : int; to_link : int }

let dependencies ~routes =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec walk = function
    | a :: (b :: _ as rest) ->
      if not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.add seen (a, b) ();
        acc := { from_link = a; to_link = b } :: !acc
      end;
      walk rest
    | [ _ ] | [] -> ()
  in
  List.iter (fun r -> walk r.Route.links) routes;
  List.rev !acc

(* Cycle detection on the CDG by colouring (white/grey/black) DFS. *)
let cdg_cycle ~links ~routes =
  let adj = Array.make links [] in
  List.iter (fun { from_link; to_link } -> adj.(from_link) <- to_link :: adj.(from_link))
    (dependencies ~routes);
  let colour = Array.make links 0 in
  (* 0 white, 1 grey, 2 black *)
  let exception Found of int list in
  let rec dfs path u =
    colour.(u) <- 1;
    List.iter
      (fun v ->
        if colour.(v) = 1 then begin
          (* cycle: the reverse path from u back to (and including) v *)
          let rec take = function
            | [] -> [ v ]
            | x :: _ when x = v -> [ v ]
            | x :: rest -> x :: take rest
          in
          raise (Found (List.rev (take (u :: path))))
        end
        else if colour.(v) = 0 then dfs (u :: path) v)
      adj.(u);
    colour.(u) <- 2
  in
  try
    for u = 0 to links - 1 do
      if colour.(u) = 0 then dfs [] u
    done;
    None
  with Found cycle -> Some cycle

let find_cycle ~links ~routes = cdg_cycle ~links ~routes

let is_deadlock_free ~links ~routes = Option.is_none (cdg_cycle ~links ~routes)

let xy_legal mesh route =
  (* A route is XY-legal when it never moves in Y and then in X. *)
  let direction l =
    let src, dst = Mesh.link_endpoints mesh l in
    let xs, ys = Mesh.coord mesh src and xd, yd = Mesh.coord mesh dst in
    if ys = yd && xs <> xd then `X
    else if xs = xd && ys <> yd then `Y
    else `Express (* diagonal express channels are never XY-legal *)
  in
  let rec ok seen_y = function
    | [] -> true
    | l :: rest -> (
      match direction l with
      | `Express -> false
      | `Y -> ok true rest
      | `X -> if seen_y then false else ok false rest)
  in
  ok false route.Route.links
