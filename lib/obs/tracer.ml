type value = Bool of bool | Int of int | Float of float | Str of string

type event = {
  name : string;
  cat : string;
  domain : int;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  cpu_s : float;
  args : (string * value) list;
}

type frame = {
  f_name : string;
  f_cat : string;
  f_depth : int;
  f_start : int64;
  f_cpu0 : float;
  f_args : (string * value) list;
  mutable f_extra : (string * value) list;  (* add_arg, reverse order *)
}

(* One buffer per domain, owned exclusively by that domain: the
   recording path pushes/pops frames and conses events without any
   lock.  The global registry (mutex-protected) only sees the buffer
   when the domain first records, and again at export/reset time. *)
type buffer = {
  b_domain : int;
  mutable b_events : event list;  (* reverse chronological *)
  mutable b_stack : frame list;
}

let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b

let registry_lock = Mutex.create ()
let registry : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b = { b_domain = (Domain.self () :> int); b_events = []; b_stack = [] } in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let my_buffer () = Domain.DLS.get key

let close_span buf frame =
  let dur = Int64.sub (Clock.now_ns ()) frame.f_start in
  let dur = if Int64.compare dur 0L < 0 then 0L else dur in
  let cpu = Clock.cpu () -. frame.f_cpu0 in
  (match buf.b_stack with
  | top :: rest when top == frame -> buf.b_stack <- rest
  | _ :: rest -> buf.b_stack <- rest  (* defensive: unbalanced close *)
  | [] -> ());
  buf.b_events <-
    {
      name = frame.f_name;
      cat = frame.f_cat;
      domain = buf.b_domain;
      depth = frame.f_depth;
      start_ns = frame.f_start;
      dur_ns = dur;
      cpu_s = cpu;
      args = frame.f_args @ List.rev frame.f_extra;
    }
    :: buf.b_events;
  Metrics.observe
    (Metrics.histogram ("span." ^ frame.f_name))
    (Int64.to_float dur /. 1e6)

let with_span ?(cat = "nocmap") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let buf = my_buffer () in
    let frame =
      {
        f_name = name;
        f_cat = cat;
        f_depth = List.length buf.b_stack;
        f_start = Clock.now_ns ();
        f_cpu0 = Clock.cpu ();
        f_args = args;
        f_extra = [];
      }
    in
    buf.b_stack <- frame :: buf.b_stack;
    match f () with
    | v ->
      close_span buf frame;
      v
    | exception e ->
      frame.f_extra <- ("raised", Bool true) :: frame.f_extra;
      close_span buf frame;
      raise e
  end

let add_arg name v =
  if enabled () then begin
    let buf = my_buffer () in
    match buf.b_stack with
    | frame :: _ -> frame.f_extra <- (name, v) :: frame.f_extra
    | [] -> ()
  end

let buffers () =
  Mutex.lock registry_lock;
  let bs = !registry in
  Mutex.unlock registry_lock;
  bs

let events () =
  let all = List.concat_map (fun b -> b.b_events) (buffers ()) in
  List.sort
    (fun a b ->
      match Int64.compare a.start_ns b.start_ns with
      | 0 -> (
        match compare a.domain b.domain with 0 -> compare a.depth b.depth | c -> c)
      | c -> c)
    all

let reset () =
  List.iter (fun b -> b.b_events <- []) (buffers ())

(* --- exporters ---------------------------------------------------------- *)

let value_json = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Obs_json.float_repr f
  | Str s -> Obs_json.quote s

let us_of_ns ns = Int64.to_float ns /. 1e3

let export_chrome () =
  let evs = events () in
  let base = match evs with [] -> 0L | e :: _ -> e.start_ns in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  let first = ref true in
  let emit line =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n  ";
    Buffer.add_string buf line
  in
  let domains =
    List.sort_uniq compare (List.map (fun (e : event) -> e.domain) evs)
  in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \"thread_name\", \"args\": {\"name\": \"domain-%d\"}}"
           d d))
    domains;
  List.iter
    (fun (e : event) ->
      let args =
        (("cpu_ms", Float (e.cpu_s *. 1e3)) :: e.args)
        |> List.map (fun (k, v) -> Obs_json.quote k ^ ": " ^ value_json v)
        |> String.concat ", "
      in
      emit
        (Printf.sprintf
           "{\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %s, \"dur\": %s, \"args\": {%s}}"
           (Obs_json.quote e.name) (Obs_json.quote e.cat) e.domain
           (Obs_json.float_repr (us_of_ns (Int64.sub e.start_ns base)))
           (Obs_json.float_repr (us_of_ns e.dur_ns))
           args))
    evs;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let summary_text () =
  let evs = events () in
  if evs = [] then "no spans recorded\n"
  else begin
    let tbl : (string, int ref * float ref * float ref * float ref) Hashtbl.t =
      Hashtbl.create 32
    in
    List.iter
      (fun (e : event) ->
        let count, wall, wmax, cpu =
          match Hashtbl.find_opt tbl e.name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0.0, ref 0.0, ref 0.0) in
            Hashtbl.replace tbl e.name cell;
            cell
        in
        let ms = Int64.to_float e.dur_ns /. 1e6 in
        incr count;
        wall := !wall +. ms;
        if ms > !wmax then wmax := ms;
        cpu := !cpu +. (e.cpu_s *. 1e3))
      evs;
    let rows =
      Hashtbl.fold (fun name (c, w, m, u) acc -> (name, !c, !w, !m, !u) :: acc) tbl []
      |> List.sort (fun (an, _, aw, _, _) (bn, _, bw, _, _) ->
             match compare bw aw with 0 -> compare an bn | c -> c)
    in
    let name_w =
      List.fold_left (fun w (n, _, _, _, _) -> max w (String.length n)) 4 rows
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "%-*s %8s %12s %12s %12s %12s\n" name_w "span" "count" "total-ms"
         "mean-ms" "max-ms" "cpu-ms");
    List.iter
      (fun (n, c, w, m, u) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s %8d %12.3f %12.3f %12.3f %12.3f\n" name_w n c w
             (w /. float_of_int c) m u))
      rows;
    Buffer.contents buf
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
