lib/traffic/traffic_stats.mli: Format Noc_util Use_case
