(** Structured findings of the static analyzer.

    Every pass reports through this one type so text and JSON renderers
    — and the [nocmap lint] exit code — treat spec well-formedness,
    feasibility certificates and post-mapping design checks uniformly. *)

type severity =
  | Info     (** a fact worth surfacing (certified bounds, summaries) *)
  | Warning  (** suspicious but mappable (redundant or dead input) *)
  | Error    (** the design cannot be built as written *)

type t = {
  pass : string;          (** stable kebab-case pass id, e.g. ["dangling-ref"] *)
  severity : severity;
  line : int option;      (** 1-based spec source line, when known *)
  message : string;
}

val v : ?line:int -> pass:string -> severity -> string -> t

val vf :
  ?line:int -> pass:string -> severity -> ('a, unit, string, t) format4 -> 'a
(** [v] with a format string. *)

val rank : severity -> int
(** [Info] 0, [Warning] 1, [Error] 2. *)

val severity_name : severity -> string

val max_severity : t list -> severity option

val exit_code : t list -> int
(** Process exit code of a lint run: 2 on any error, 1 on warnings
    only, 0 otherwise. *)

val compare : t -> t -> int
(** Source order (unlocated last), then most severe first. *)

val pp : Format.formatter -> t -> unit
(** ["error[self-flow] line 4: ..."]. *)

val to_json : t -> Noc_export.Json.t
