test/test_power.ml: Alcotest Array Float List Noc_arch Noc_core Noc_graph Noc_power Noc_traffic Printf QCheck QCheck_alcotest
