(** Client side of the serve protocol: handshake, synchronous
    requests, and a multi-connection load driver (the [nocmap client]
    subcommand and the serve bench rows are built on this).

    {!connect} performs the full handshake — read the server greeting,
    verify the protocol version, present this build's fingerprint, and
    fail with the server's message when the builds differ (a
    mismatched pair would not be byte-reproducible; see
    {!Protocol.check_hello}). *)

type t

val connect : ?build:string -> socket:string -> unit -> (t, string) result
(** Connect and handshake.  [build] overrides the fingerprint
    presented to the server (tests use it to exercise the
    version-mismatch rejection). *)

val send : t -> Protocol.op -> int
(** Fire one request (ids are assigned sequentially per connection)
    and return its id without waiting. *)

val recv : t -> (Protocol.response, string) result
(** Read the next response line (blocking). *)

val request : t -> Protocol.op -> (Protocol.response, string) result
(** [send] then read until this request's response arrives (responses
    to earlier pipelined ids are discarded). *)

val close : t -> unit

(** {2 Load driver} *)

type load_stats = {
  requests : int;        (** responses received (excluding shed retries) *)
  ok : int;
  coalesced : int;       (** ok responses flagged as coalesced *)
  shed_retries : int;    (** load-shed failures that were retried *)
  failures : int;        (** non-retryable failures *)
  payload_bytes : int;   (** total payload bytes received *)
  elapsed_s : float;
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
}

val drive :
  ?build:string ->
  socket:string ->
  connections:int ->
  repeat:int ->
  Protocol.op list ->
  (load_stats, string) result
(** Open [connections] concurrent connections (one domain each); every
    connection sends the op list [repeat] times, synchronously,
    retrying an op after [retry_after_ms] when the server sheds it
    ([Overloaded]/[Too_many_inflight]).  Latency percentiles are over
    every completed request across all connections. *)

val stats_to_json : load_stats -> string
(** One-line JSON rendering (what [nocmap client bench] prints and
    [bench/main.ml] parses). *)
