lib/report/design_report.mli: Noc_arch Noc_core
