examples/spec_and_report.ml: Format Noc_core Noc_report String
