type t = {
  use_cases : int;
  cores : int;
  min_flows : int;
  max_flows : int;
  mean_flows : float;
  total_bandwidth : Noc_util.Units.bandwidth;
  peak_use_case_bandwidth : Noc_util.Units.bandwidth;
  max_flow_bandwidth : Noc_util.Units.bandwidth;
  latency_constrained_flows : int;
}

let compute use_cases =
  match use_cases with
  | [] -> invalid_arg "Traffic_stats.compute: no use-cases"
  | first :: _ ->
    let cores = first.Use_case.cores in
    List.iter
      (fun u ->
        if u.Use_case.cores <> cores then
          invalid_arg "Traffic_stats.compute: use-cases disagree on core count")
      use_cases;
    let counts = List.map Use_case.flow_count use_cases in
    let totals = List.map Use_case.total_bandwidth use_cases in
    let constrained =
      List.fold_left
        (fun acc u ->
          acc
          + List.length (List.filter (fun f -> f.Flow.latency_ns <> infinity) u.Use_case.flows))
        0 use_cases
    in
    {
      use_cases = List.length use_cases;
      cores;
      min_flows = List.fold_left min max_int counts;
      max_flows = List.fold_left max 0 counts;
      mean_flows = Noc_util.Numeric.mean (List.map float_of_int counts);
      total_bandwidth = List.fold_left ( +. ) 0.0 totals;
      peak_use_case_bandwidth = List.fold_left Float.max 0.0 totals;
      max_flow_bandwidth = List.fold_left (fun acc u -> Float.max acc (Use_case.max_bandwidth u)) 0.0 use_cases;
      latency_constrained_flows = constrained;
    }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d use-cases over %d cores; flows/use-case %d..%d (mean %.1f);@ peak use-case %a; largest flow %a; %d latency-constrained flows@]"
    t.use_cases t.cores t.min_flows t.max_flows t.mean_flows Noc_util.Units.pp_bandwidth
    t.peak_use_case_bandwidth Noc_util.Units.pp_bandwidth t.max_flow_bandwidth
    t.latency_constrained_flows
