let check_tables tables =
  let n = Array.length tables in
  if n = 0 then invalid_arg "Tdma: empty path";
  let s = Slot_table.slots tables.(0) in
  Array.iter
    (fun t -> if Slot_table.slots t <> s then invalid_arg "Tdma: slot-table size mismatch")
    tables;
  s

let start_is_free ~tables ~start =
  let _ = check_tables tables in
  let ok = ref true in
  Array.iteri (fun hop table -> if not (Slot_table.is_free table (start + hop)) then ok := false) tables;
  !ok

(* A start [t] claims slot [t + hop] on the [hop]-th link, so the set
   of feasible starts is the intersection of every hop's free mask
   rotated by its hop number — one rotate-and-AND per hop instead of a
   slots x hops probe loop. *)
let free_start_mask ~tables =
  let s = check_tables tables in
  let acc = Bitmask.create ~slots:s ~full:true in
  Array.iteri
    (fun hop table -> Bitmask.inter_rotated ~into:acc (Slot_table.free_mask table) ~shift:hop)
    tables;
  acc

let free_starts ~tables = Bitmask.to_list (free_start_mask ~tables)

(* Pick [count] starts out of the candidates, spreading them around
   the revolution to minimise the worst waiting gap: repeatedly take
   the candidate closest to the ideal evenly-spaced position. *)
let choose_spread ~slots ~candidates ~count =
  if count <= 0 then Some []
  else begin
    let candidates = Array.of_list (List.sort_uniq compare candidates) in
    let n = Array.length candidates in
    if n < count then None
    else begin
      let taken = Array.make n false in
      let chosen = ref [] in
      let cyclic_dist a b =
        let d = abs (a - b) in
        min d (slots - d)
      in
      for k = 0 to count - 1 do
        let ideal =
          if !chosen = [] then candidates.(0)
          else (candidates.(0) + (k * slots / count)) mod slots
        in
        let best = ref (-1) in
        let best_d = ref max_int in
        for i = 0 to n - 1 do
          if not taken.(i) then begin
            let d = cyclic_dist candidates.(i) ideal in
            if d < !best_d then begin
              best_d := d;
              best := i
            end
          end
        done;
        taken.(!best) <- true;
        chosen := candidates.(!best) :: !chosen
      done;
      Some (List.sort compare !chosen)
    end
  end

let find_aligned ~tables ~count =
  let s = check_tables tables in
  choose_spread ~slots:s ~candidates:(free_starts ~tables) ~count

let reserve ~tables ~owner ~starts =
  let _ = check_tables tables in
  List.iter
    (fun start ->
      Array.iteri (fun hop table -> Slot_table.reserve table ~slot:(start + hop) ~owner) tables)
    starts

let release ~tables ~owner =
  Array.iter (fun table -> ignore (Slot_table.release_owner table ~owner)) tables

let max_start_gap ~slots ~starts =
  match List.sort compare starts with
  | [] -> invalid_arg "Tdma.max_start_gap: no starts"
  | first :: _ as sorted ->
    (* Gap between consecutive reserved starts, cyclically: a packet
       arriving just after start s_i waits until s_{i+1}. *)
    let rec gaps acc = function
      | [ last ] -> (first + slots - last) :: acc
      | a :: (b :: _ as rest) -> gaps ((b - a) :: acc) rest
      | [] -> acc
    in
    List.fold_left max 0 (gaps [] sorted)

let worst_case_latency_ns ~config ~starts ~hops =
  let gap = max_start_gap ~slots:config.Noc_config.slots ~starts in
  float_of_int (gap + hops) *. Noc_config.slot_duration_ns config
