lib/core/design_flow.mli: Compound Format Mapping Noc_arch Noc_traffic Reconfig Refine Verify
