(** Process-wide metrics registry: named counters, gauges, and
    histograms, shared by every layer of the pipeline.

    Instruments are interned by name at module-initialisation time and
    updated from hot paths, so the update operations are built to be
    cheap and domain-safe: counters are striped across a small array of
    atomics (indexed by domain id) so parallel workers do not contend
    on one cache line, gauges are a single atomic cell, and histograms
    take a mutex (they are only fed from span-granularity events).

    Metrics are always on — unlike tracing there is no enable flag —
    because a handful of striped atomic adds per design is measurement
    noise, and it means [nocmap obs stats] and the [Design_report]
    snapshot work without any flag plumbing. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Intern (find or create) the counter with this name. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample.  At most [65536] samples are retained for the
    percentile estimate; later samples still update count/sum/min/max. *)

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_stats) list;
}
(** All three sections are sorted by name, so two snapshots of the
    same state render identically. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered instrument (registrations survive). *)

val render_text : snapshot -> string
(** Human-readable dump: one aligned line per instrument. *)

val render_json : snapshot -> string
(** Deterministic JSON object with ["counters"], ["gauges"] and
    ["histograms"] members (the schema [nocmap obs validate] checks). *)
