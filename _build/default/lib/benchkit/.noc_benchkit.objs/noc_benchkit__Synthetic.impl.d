lib/benchkit/synthetic.ml: Hashtbl List Noc_traffic Noc_util Printf
