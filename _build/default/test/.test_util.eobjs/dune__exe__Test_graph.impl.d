test/test_graph.ml: Alcotest Array List Noc_graph Noc_util QCheck QCheck_alcotest Queue
