lib/core/worst_case.mli: Mapping Noc_arch Noc_traffic
