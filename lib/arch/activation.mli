(** Per-slot activation index over one configuration's routes.

    Precomputes, once, the two questions a slot-accurate simulator
    otherwise re-answers every slot: which guaranteed-throughput
    routes may launch in a given slot-table slot, and which links the
    GT schedule leaves free for best-effort traffic there.  Also
    rebuilds the (link, slot) ownership map independently of the
    mapper and counts collisions — the contention-free TDMA discipline
    makes any double claim a mapper bug. *)

type t

val build : slots:int -> Route.t list -> t
(** Index the routes of one use-case configuration against a
    [slots]-entry slot table.  Route positions in the returned index
    refer to positions in this list.
    @raise Invalid_argument unless [slots > 0]. *)

val slots : t -> int

val collisions : t -> int
(** (link, slot) pairs claimed by more than one GT flow. *)

val gt_owned : t -> link:int -> slot:int -> bool
(** Does some GT route own this (link, slot)? *)

val gt_starts_at : t -> slot:int -> int array
(** Positions (into the build list) of GT routes with a reserved start
    in [slot], in route order.  GT routes with an empty link list
    (same-switch) launch every slot and appear in every entry. *)

val be_links : t -> int array
(** Distinct links traversed by BE routes, in first-traversal order
    (route order, then hop order) — the deterministic arbitration
    order for per-slot link service. *)

val be_free_at : t -> slot:int -> int array
(** Positions into {!be_links} of the links not GT-owned in [slot]. *)

val gt_start_mask : t -> pos:int -> int list
(** The slots in which route position [pos] appears in
    {!gt_starts_at}, increasing — the arming mask for an event wheel. *)

val link_free_mask : t -> link:int -> int list
(** The slots in which [link] is not GT-owned, increasing. *)
