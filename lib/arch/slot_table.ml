(* The owner array is the source of truth for attribution (who holds a
   slot); the free mask and used counter are maintained incrementally
   alongside it so the hot queries — utilization inside the path-cost
   function, aligned-start intersection inside reservation — are O(1)
   instead of folds over the table. *)
type t = {
  table : int array; (* -1 = free, otherwise owner id *)
  free : Bitmask.t;  (* bit set <=> table slot = -1 *)
  mutable used : int;
}

let create ~slots =
  if slots <= 0 then invalid_arg "Slot_table.create: need positive slot count";
  { table = Array.make slots (-1); free = Bitmask.create ~slots ~full:true; used = 0 }

let slots t = Array.length t.table

let copy t = { table = Array.copy t.table; free = Bitmask.copy t.free; used = t.used }

let norm t i =
  let s = slots t in
  ((i mod s) + s) mod s

let is_free t i = t.table.(norm t i) = -1

let owner t i =
  let v = t.table.(norm t i) in
  if v = -1 then None else Some v

let reserve t ~slot ~owner =
  let i = norm t slot in
  if t.table.(i) <> -1 then invalid_arg "Slot_table.reserve: slot already owned";
  t.table.(i) <- owner;
  Bitmask.clear t.free i;
  t.used <- t.used + 1

let release t ~slot =
  let i = norm t slot in
  if t.table.(i) <> -1 then begin
    t.table.(i) <- -1;
    Bitmask.set t.free i;
    t.used <- t.used - 1
  end

let release_owner t ~owner =
  let freed = ref 0 in
  Array.iteri
    (fun i v ->
      if v = owner then begin
        t.table.(i) <- -1;
        Bitmask.set t.free i;
        incr freed
      end)
    t.table;
  t.used <- t.used - !freed;
  !freed

let used_count t = t.used
let free_count t = slots t - t.used

let free_mask t = t.free

let free_slots t = Bitmask.to_list t.free

let utilization t = float_of_int t.used /. float_of_int (slots t)

let pp ppf t =
  Array.iter
    (fun v -> if v = -1 then Format.pp_print_char ppf '.' else Format.fprintf ppf "%d" (v mod 10))
    t.table
