lib/export/json.mli:
