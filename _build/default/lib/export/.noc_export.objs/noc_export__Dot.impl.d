lib/export/dot.ml: Array Buffer Format List Noc_arch Noc_core Printf String
