(** Process-wide clocks for observability.

    All timing in the repo funnels through this module so wall/CPU
    attribution is measured the same way everywhere (experiments,
    bench harness, tracer spans). *)

val wall : unit -> float
(** Wall-clock seconds since the epoch ([Unix.gettimeofday]). *)

val cpu : unit -> float
(** Processor seconds consumed by the whole process ([Sys.time]).
    Under multiple domains this is process CPU, not per-domain. *)

val now_ns : unit -> int64
(** Wall time in integer nanoseconds, made globally non-decreasing:
    every call returns a value [>=] any value previously returned by
    any domain.  This is the tracer's timestamp source, so exported
    trace events are monotonic across domains even if the underlying
    OS clock steps backwards. *)

val timed : (unit -> 'a) -> 'a * float * float
(** [timed f] runs [f] and returns [(result, wall_seconds, cpu_seconds)]. *)
