let version = "1.1.0"

(* Size + 64 KiB head/tail samples instead of hashing the whole binary:
   relinking perturbs layout and embedded metadata throughout the file,
   so any rebuild changes the digest, while startup cost stays sub-ms
   even for large executables. *)
let sample_bytes = 65536

let compute () =
  try
    let path = Sys.executable_name in
    In_channel.with_open_bin path (fun ic ->
        let len = In_channel.length ic in
        let read_at pos n =
          In_channel.seek ic pos;
          match In_channel.really_input_string ic n with
          | Some s -> s
          | None -> ""
        in
        let head = read_at 0L (min sample_bytes (Int64.to_int len)) in
        let tail_len = min sample_bytes (Int64.to_int len) in
        let tail = read_at (Int64.sub len (Int64.of_int tail_len)) tail_len in
        Digest.to_hex (Digest.string (Printf.sprintf "%Ld\n%s\n%s" len head tail)))
  with _ -> "unreadable-executable"

(* Not a [lazy]: the first call can come from several pool worker
   domains at once (a parallel sweep's first cache lookups), and
   concurrently forcing one lazy raises [CamlinternalLazy.Undefined].
   Double-checked locking computes the digest exactly once instead. *)
let computed = Atomic.make None
let computed_lock = Mutex.create ()

let fingerprint () =
  match Atomic.get computed with
  | Some v -> v
  | None ->
    Mutex.lock computed_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock computed_lock)
      (fun () ->
        match Atomic.get computed with
        | Some v -> v
        | None ->
          let v = compute () in
          Atomic.set computed (Some v);
          v)

let describe () = version ^ "+build." ^ fingerprint ()
