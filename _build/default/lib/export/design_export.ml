module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Mapping = Noc_core.Mapping
module DF = Noc_core.Design_flow
module Verify = Noc_core.Verify
module Use_case = Noc_traffic.Use_case

let config_json (c : Config.t) =
  Json.Obj
    [
      ("freq_mhz", Json.Float c.Config.freq_mhz);
      ("link_width_bits", Json.Int c.Config.link_width_bits);
      ("slots", Json.Int c.Config.slots);
      ("slot_cycles", Json.Int c.Config.slot_cycles);
      ("nis_per_switch", Json.Int c.Config.nis_per_switch);
      ( "routing",
        Json.String (match c.Config.routing with Config.Min_cost -> "min-cost" | Config.Xy -> "xy") );
      ( "topology",
        Json.String (match c.Config.topology with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus") );
    ]

let route_json (r : Route.t) =
  Json.Obj
    [
      ("flow_id", Json.Int r.Route.flow_id);
      ("use_case", Json.Int r.Route.use_case);
      ("src_core", Json.Int r.Route.src_core);
      ("dst_core", Json.Int r.Route.dst_core);
      ("src_switch", Json.Int r.Route.src_switch);
      ("dst_switch", Json.Int r.Route.dst_switch);
      ("bandwidth_mbps", Json.Float r.Route.bandwidth);
      ("service", Json.String (match r.Route.service with Route.Gt -> "gt" | Route.Be -> "be"));
      ("links", Json.List (List.map (fun l -> Json.Int l) r.Route.links));
      ("slot_starts", Json.List (List.map (fun s -> Json.Int s) r.Route.slot_starts));
    ]

let mapping (m : Mapping.t) =
  let mesh = m.Mapping.mesh in
  Json.Obj
    [
      ("config", config_json m.Mapping.config);
      ( "mesh",
        Json.Obj
          [
            ("width", Json.Int (Mesh.width mesh));
            ("height", Json.Int (Mesh.height mesh));
            ("switches", Json.Int (Mesh.switch_count mesh));
            ("links", Json.Int (Mesh.link_count mesh));
            ( "kind",
              Json.String (match Mesh.kind mesh with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus")
            );
          ] );
      ( "placement",
        Json.List (Array.to_list (Array.map (fun s -> Json.Int s) m.Mapping.placement)) );
      ("routes", Json.List (List.map route_json m.Mapping.routes));
      ( "groups",
        Json.List
          (List.map (fun g -> Json.List (List.map (fun u -> Json.Int u) g)) m.Mapping.groups) );
    ]

let design (d : DF.t) =
  let report = d.DF.report in
  Json.Obj
    [
      ("name", Json.String d.DF.spec.DF.name);
      ("base_use_cases", Json.Int (List.length d.DF.spec.DF.use_cases));
      ( "use_cases",
        Json.List
          (List.map
             (fun u ->
               Json.Obj
                 [
                   ("id", Json.Int u.Use_case.id);
                   ("name", Json.String u.Use_case.name);
                   ("flows", Json.Int (Use_case.flow_count u));
                   ("total_bandwidth_mbps", Json.Float (Use_case.total_bandwidth u));
                 ])
             d.DF.all_use_cases) );
      ( "compounds",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("use_case", Json.Int c.Noc_core.Compound.use_case.Use_case.id);
                   ( "members",
                     Json.List (List.map (fun u -> Json.Int u) c.Noc_core.Compound.members) );
                 ])
             d.DF.compounds) );
      ("mapping", mapping d.DF.mapping);
      ( "verification",
        Json.Obj
          [
            ("ok", Json.Bool (Verify.ok report));
            ("checks", Json.Int report.Verify.checks);
            ("violations", Json.Int (List.length report.Verify.violations));
          ] );
    ]

let design_to_string ?(indent = 2) d = Json.to_string ~indent (design d)
