(* Tests for Noc_rtl: VHDL emission and the well-formedness lint. *)

module Config = Noc_arch.Noc_config
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Vhdl = Noc_rtl.Vhdl
module Netlist = Noc_rtl.Netlist
module Wf = Noc_rtl.Wellformed

let uc ~id ~cores flows = U.create ~id ~name:(Printf.sprintf "u%d" id) ~cores flows

let mapped ?(config = { Config.default with nis_per_switch = 2 }) ucs groups =
  match Mapping.map_design ~config ~groups ucs with
  | Ok m -> m
  | Error _ -> Alcotest.fail "design must map"

let sample_design () =
  mapped
    [
      uc ~id:0 ~cores:5 [ Flow.v ~src:0 ~dst:1 300.0; Flow.v ~src:2 ~dst:3 150.0; Flow.v ~src:3 ~dst:4 80.0 ];
      uc ~id:1 ~cores:5 [ Flow.v ~src:4 ~dst:0 200.0 ];
    ]
    [ [ 0 ]; [ 1 ] ]

(* --- vhdl helpers --------------------------------------------------------- *)

let test_ident_sanitisation () =
  Alcotest.(check string) "spaces to underscore" "set_top_box" (Vhdl.ident "set top box");
  Alcotest.(check string) "leading digit" "u_3design" (Vhdl.ident "3design");
  Alcotest.(check string) "empty" "u" (Vhdl.ident "");
  Alcotest.(check string) "no duplicate underscores" "a_b" (Vhdl.ident "a--__b");
  Alcotest.(check string) "no trailing underscore" "ab" (Vhdl.ident "ab-")

let test_std_logic_vector () =
  Alcotest.(check string) "32 bits" "std_logic_vector(31 downto 0)" (Vhdl.std_logic_vector 32)

let test_entity_rendering () =
  let text =
    Vhdl.entity ~name:"thing"
      ~generics:[ ("WIDTH", "natural", "32") ]
      ~ports:[ { Vhdl.name = "clk"; dir = `In; ty = "std_logic" } ]
  in
  Alcotest.(check bool) "has entity header" true
    (String.length text > 0
    && String.sub text 0 (String.length "entity thing is") = "entity thing is")

let test_instance_rendering () =
  let text =
    Vhdl.instance ~label:"sw_0" ~component:"noc_switch"
      ~generic_map:[ ("WIDTH", "32") ]
      ~port_map:[ ("clk", "clk") ]
  in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "label" true (contains "sw_0 : noc_switch");
  Alcotest.(check bool) "generic map" true (contains "generic map");
  Alcotest.(check bool) "port map" true (contains "port map")

(* --- netlist -------------------------------------------------------------- *)

let test_generated_vhdl_is_well_formed () =
  let m = sample_design () in
  let text = Netlist.generate ~design_name:"sample" m in
  match Wf.check text with
  | Ok () -> ()
  | Error issues ->
    let msgs =
      String.concat "; "
        (List.map (fun i -> Printf.sprintf "line %d: %s" i.Wf.line i.Wf.message) issues)
    in
    Alcotest.fail msgs

let test_generated_stats_match_design () =
  let m = sample_design () in
  let text = Netlist.generate ~design_name:"sample" m in
  let stats = Wf.stats text in
  let get k = List.assoc k stats in
  (* instances: one switch per mesh node + one NI per core *)
  Alcotest.(check int) "instances"
    (Mapping.switch_count m + Array.length m.Mapping.placement)
    (get "instances");
  Alcotest.(check int) "three entities (switch, ni, top)" 3 (get "entities");
  Alcotest.(check int) "one package" 1 (get "packages");
  Alcotest.(check bool) "signals present" true (get "signals" > 0)

let test_slot_table_package_lists_every_use_case () =
  let m = sample_design () in
  let text = Netlist.slot_table_package ~design_name:"sample" m in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "uc0 table" true (contains "UC0_SLOT_TABLE");
  Alcotest.(check bool) "uc1 table" true (contains "UC1_SLOT_TABLE");
  Alcotest.(check bool) "slot count constant" true (contains "N_SLOTS : natural := 32")

let test_generate_on_single_switch_design () =
  let m = mapped ~config:Config.default [ uc ~id:0 ~cores:3 [ Flow.v ~src:0 ~dst:1 10.0 ] ] [ [ 0 ] ] in
  Alcotest.(check int) "single switch" 1 (Mapping.switch_count m);
  let text = Netlist.generate ~design_name:"tiny" m in
  Alcotest.(check bool) "well formed" true (Wf.check text = Ok ())

(* The paper's four SoC designs, end to end through the generator. *)
let test_soc_design_netlists_are_well_formed () =
  let module SD = Noc_benchkit.Soc_designs in
  List.iter
    (fun (name, ucs) ->
      let groups = List.mapi (fun i _ -> [ i ]) ucs in
      let m = mapped ~config:Config.default ucs groups in
      let text = Netlist.generate ~design_name:name m in
      match Wf.check text with
      | Ok () -> ()
      | Error issues ->
        let msgs =
          String.concat "; "
            (List.map (fun i -> Printf.sprintf "line %d: %s" i.Wf.line i.Wf.message) issues)
        in
        Alcotest.fail (name ^ ": " ^ msgs))
    [ ("d1", SD.d1 ()); ("d2", SD.d2 ()); ("d3", SD.d3 ()); ("d4", SD.d4 ()) ]

(* --- systemc ------------------------------------------------------------------ *)

module Sc = Noc_rtl.Systemc

let test_systemc_generates_and_lints () =
  let m = sample_design () in
  let text = Sc.generate ~design_name:"sample" m in
  match Sc.check text with
  | Ok () -> ()
  | Error issues ->
    let msgs =
      String.concat "; "
        (List.map (fun i -> Printf.sprintf "line %d: %s" i.Sc.line i.Sc.message) issues)
    in
    Alcotest.fail msgs

let test_systemc_stats () =
  let m = sample_design () in
  let text = Sc.generate ~design_name:"sample" m in
  let stats = Sc.stats text in
  let get k = List.assoc k stats in
  Alcotest.(check int) "three modules" 3 (get "modules");
  Alcotest.(check int) "instances = switches + cores"
    (Mapping.switch_count m + Array.length m.Mapping.placement)
    (get "instances");
  Alcotest.(check bool) "bindings present" true (get "bindings" > 0)

let test_systemc_slot_tables_cover_use_cases () =
  let m = sample_design () in
  let text = Sc.slot_tables ~design_name:"sample" m in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "uc0 table" true (contains "UC0_SLOT_TABLE");
  Alcotest.(check bool) "uc1 table" true (contains "UC1_SLOT_TABLE")

let test_systemc_lint_catches_faults () =
  let fixture = String.concat "\n" [
    "SC_MODULE(a_top) {";
    "  sc_signal<sc_uint<32> > s_one;";
    "  mystery_module u_0;";
    "  noc_ni u_0;";
    "  SC_CTOR(a_top) : u_0(\"u_0\") {";
    "    u_0.clk(missing);";
    "  }";
    "};";
  ] in
  match Sc.check fixture with
  | Ok () -> Alcotest.fail "fixture should not lint clean"
  | Error issues ->
    let has needle =
      List.exists
        (fun i ->
          let msg = i.Sc.message in
          let n = String.length needle and h = String.length msg in
          let rec go j = j + n <= h && (String.sub msg j n = needle || go (j + 1)) in
          go 0)
        issues
    in
    Alcotest.(check bool) "undeclared module" true (has "undeclared module type");
    Alcotest.(check bool) "duplicate member" true (has "duplicate member");
    Alcotest.(check bool) "unknown binding" true (has "not a declared signal")

let test_systemc_lint_unbalanced () =
  match Sc.check "SC_MODULE(x) { sc_in<bool> clk;" with
  | Ok () -> Alcotest.fail "unbalanced should fail"
  | Error issues ->
    Alcotest.(check bool) "brace issue" true
      (List.exists (fun i -> i.Sc.line = 0) issues)

(* --- lint negatives --------------------------------------------------------- *)

let broken_fixture = {|
entity a_top is
  port (
    clk : in std_logic
  );
end a_top;
architecture structural of a_top is
  component noc_ni
  port (
    clk : in std_logic
  );
  end component;
  signal s_one : std_logic;
  signal s_one : std_logic;
begin
  ni_0 : noc_ni
    port map (
      clk => missing_signal
    )
  ;
  ni_0 : noc_mystery
    port map (
      clk => s_one
    )
  ;
end structural;
|}

let find_issue issues needle =
  List.exists
    (fun i ->
      let n = String.length needle and h = String.length i.Wf.message in
      let rec go j = j + n <= h && (String.sub i.Wf.message j n = needle || go (j + 1)) in
      go 0)
    issues

let test_lint_detects_injected_faults () =
  match Wf.check broken_fixture with
  | Ok () -> Alcotest.fail "fixture should not lint clean"
  | Error issues ->
    Alcotest.(check bool) "duplicate signal" true (find_issue issues "duplicate signal");
    Alcotest.(check bool) "duplicate label" true (find_issue issues "duplicate instance label");
    Alcotest.(check bool) "undeclared component" true (find_issue issues "undeclared component");
    Alcotest.(check bool) "unknown signal" true (find_issue issues "not a declared signal")

let test_lint_detects_missing_architecture () =
  let fixture = "entity lonely is\nend lonely;\n" in
  match Wf.check fixture with
  | Ok () -> Alcotest.fail "missing architecture"
  | Error issues -> Alcotest.(check bool) "reported" true (find_issue issues "no architecture")

let test_lint_rejects_empty_text () =
  match Wf.check "" with
  | Ok () -> Alcotest.fail "empty text is not a design"
  | Error issues -> Alcotest.(check bool) "no units" true (find_issue issues "no design units")

let test_lint_accepts_comments_and_tie_offs () =
  let fixture =
    String.concat "\n"
      [
        "-- a comment with entity words inside";
        "entity t_top is";
        "end t_top;";
        "architecture rtl of t_top is";
        "  signal s : std_logic;";
        "begin";
        "  s <= '0';";
        "end rtl;";
        "";
      ]
  in
  Alcotest.(check bool) "clean" true (Wf.check fixture = Ok ())

(* Generated VHDL for random mapped designs is always well-formed. *)
let prop_generated_always_well_formed =
  QCheck.Test.make ~name:"generator output lints clean" ~count:15
    QCheck.(int_bound 1000)
    (fun seed ->
      let params =
        { Noc_benchkit.Synthetic.spread_params with cores = 8; flows_lo = 5; flows_hi = 12 }
      in
      let ucs = Noc_benchkit.Synthetic.generate ~seed ~params ~use_cases:2 in
      match Mapping.map_design ~groups:[ [ 0 ]; [ 1 ] ] ucs with
      | Error _ -> false
      | Ok m -> Wf.check (Netlist.generate ~design_name:"prop" m) = Ok ())

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_generated_always_well_formed ]

let () =
  Alcotest.run "noc_rtl"
    [
      ( "vhdl",
        [
          Alcotest.test_case "ident sanitisation" `Quick test_ident_sanitisation;
          Alcotest.test_case "std_logic_vector" `Quick test_std_logic_vector;
          Alcotest.test_case "entity rendering" `Quick test_entity_rendering;
          Alcotest.test_case "instance rendering" `Quick test_instance_rendering;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "well-formed output" `Quick test_generated_vhdl_is_well_formed;
          Alcotest.test_case "stats match design" `Quick test_generated_stats_match_design;
          Alcotest.test_case "slot-table package" `Quick test_slot_table_package_lists_every_use_case;
          Alcotest.test_case "single-switch design" `Quick test_generate_on_single_switch_design;
          Alcotest.test_case "d1-d4 netlists" `Quick test_soc_design_netlists_are_well_formed;
        ] );
      ( "systemc",
        [
          Alcotest.test_case "generates and lints" `Quick test_systemc_generates_and_lints;
          Alcotest.test_case "stats" `Quick test_systemc_stats;
          Alcotest.test_case "slot tables" `Quick test_systemc_slot_tables_cover_use_cases;
          Alcotest.test_case "lint catches faults" `Quick test_systemc_lint_catches_faults;
          Alcotest.test_case "lint unbalanced" `Quick test_systemc_lint_unbalanced;
        ] );
      ( "lint",
        [
          Alcotest.test_case "injected faults" `Quick test_lint_detects_injected_faults;
          Alcotest.test_case "missing architecture" `Quick test_lint_detects_missing_architecture;
          Alcotest.test_case "empty text" `Quick test_lint_rejects_empty_text;
          Alcotest.test_case "comments and tie-offs" `Quick test_lint_accepts_comments_and_tie_offs;
        ] );
      ("properties", qcheck_cases);
    ]
