module Mesh = Noc_arch.Mesh
module Mapping = Noc_core.Mapping
module Resources = Noc_core.Resources

let switch_label (m : Mapping.t) s =
  let cores =
    Array.to_list m.Mapping.placement
    |> List.mapi (fun core sw -> (core, sw))
    |> List.filter_map (fun (core, sw) -> if sw = s then Some (string_of_int core) else None)
  in
  let x, y = Mesh.coord m.Mapping.mesh s in
  if cores = [] then Printf.sprintf "sw%d (%d,%d)" s x y
  else Printf.sprintf "sw%d (%d,%d)\\ncores: %s" s x y (String.concat "," cores)

let node_positions (m : Mapping.t) buf =
  let mesh = m.Mapping.mesh in
  for s = 0 to Mesh.switch_count mesh - 1 do
    let x, y = Mesh.coord mesh s in
    Buffer.add_string buf
      (Printf.sprintf "  s%d [label=\"%s\", shape=box, pos=\"%d,%d!\"];\n" s
         (switch_label m s) (2 * x) (-2 * y))
  done

let topology (m : Mapping.t) =
  let mesh = m.Mapping.mesh in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph noc {\n";
  Buffer.add_string buf
    (Printf.sprintf "  label=\"%s\";\n"
       (Format.asprintf "%a" Mesh.pp mesh));
  node_positions m buf;
  for l = 0 to Mesh.link_count mesh - 1 do
    let a, b = Mesh.link_endpoints mesh l in
    (* draw each bidirectional pair once, as a double-headed edge *)
    if a < b then
      Buffer.add_string buf (Printf.sprintf "  s%d -> s%d [dir=both];\n" a b)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let heat_colour u =
  (* green -> orange -> red as utilization grows *)
  if u <= 0.0 then "gray80"
  else if u < 0.3 then "forestgreen"
  else if u < 0.6 then "orange"
  else "red"

let use_case (m : Mapping.t) ~use_case =
  if use_case < 0 || use_case >= Array.length m.Mapping.states then
    invalid_arg "Dot.use_case: use-case id out of range";
  let mesh = m.Mapping.mesh in
  let state = m.Mapping.states.(use_case) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph noc_use_case {\n";
  Buffer.add_string buf
    (Printf.sprintf "  label=\"use-case %d: %d connections\";\n" use_case
       (List.length (Mapping.routes_of_use_case m use_case)));
  node_positions m buf;
  for l = 0 to Mesh.link_count mesh - 1 do
    let a, b = Mesh.link_endpoints mesh l in
    let u = Resources.utilization state l in
    Buffer.add_string buf
      (Printf.sprintf "  s%d -> s%d [color=%s, penwidth=%.1f, label=\"%.0f%%\"];\n" a b
         (heat_colour u)
         (1.0 +. (4.0 *. u))
         (100.0 *. u))
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
