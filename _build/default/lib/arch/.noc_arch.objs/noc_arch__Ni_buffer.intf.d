lib/arch/ni_buffer.mli: Noc_config Noc_util Route
