lib/arch/service_curve.ml: List Noc_config Noc_util Route Tdma
