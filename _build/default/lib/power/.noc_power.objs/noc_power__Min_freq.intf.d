lib/power/min_freq.mli: Noc_arch Noc_core Noc_traffic Noc_util
