(** Aggregate statistics over a set of use-cases, used by the
    experiment harness to characterise benchmarks (paper §6.1 describes
    benchmarks by connection counts and bandwidth clusters). *)

type t = {
  use_cases : int;
  cores : int;
  min_flows : int;         (** fewest flows in any use-case *)
  max_flows : int;
  mean_flows : float;
  total_bandwidth : Noc_util.Units.bandwidth;  (** summed over all use-cases *)
  peak_use_case_bandwidth : Noc_util.Units.bandwidth;
      (** largest per-use-case total *)
  max_flow_bandwidth : Noc_util.Units.bandwidth;
  latency_constrained_flows : int;  (** flows with a finite latency bound *)
}

val compute : Use_case.t list -> t
(** @raise Invalid_argument on an empty list or mismatched core counts. *)

val pp : Format.formatter -> t -> unit
