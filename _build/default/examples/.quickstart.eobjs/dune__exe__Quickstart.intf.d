examples/quickstart.mli:
