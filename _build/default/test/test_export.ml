(* Tests for Noc_export: JSON builder/validator and the DOT/JSON
   design exports. *)

module Json = Noc_export.Json
module Dot = Noc_export.Dot
module Export = Noc_export.Design_export
module Config = Noc_arch.Noc_config
module DF = Noc_core.Design_flow
module SD = Noc_benchkit.Soc_designs

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* --- json builder ------------------------------------------------------- *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.Int 42));
  Alcotest.(check string) "float" "1.5" (Json.to_string (Json.Float 1.5));
  Alcotest.(check string) "integral float" "2.0" (Json.to_string (Json.Float 2.0));
  Alcotest.(check string) "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_json_escaping () =
  Alcotest.(check string) "quotes and backslash" "\"a\\\"b\\\\c\""
    (Json.to_string (Json.String "a\"b\\c"));
  Alcotest.(check string) "newline" "\"a\\nb\"" (Json.to_string (Json.String "a\nb"));
  Alcotest.(check string) "control char" "\"\\u0001\""
    (Json.to_string (Json.String "\001"))

let test_json_nan_becomes_null () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.Float infinity))

let test_json_compound () =
  let v = Json.Obj [ ("xs", Json.List [ Json.Int 1; Json.Int 2 ]); ("b", Json.Bool false) ] in
  Alcotest.(check string) "compact" "{\"xs\": [1,2],\"b\": false}"
    (Json.to_string v |> String.map (fun c -> c))
    |> ignore;
  (* don't over-specify separators; just require validity and keys *)
  let s = Json.to_string v in
  Alcotest.(check bool) "valid" true (Json.validate s = Ok ());
  Alcotest.(check bool) "has xs" true (contains s "\"xs\"")

let test_json_roundtrip_validity () =
  let v =
    Json.Obj
      [
        ("name", Json.String "design \"x\"\n");
        ("values", Json.List [ Json.Float 0.125; Json.Int (-3); Json.Null ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "compact valid" true (Json.validate (Json.to_string v) = Ok ());
  Alcotest.(check bool) "pretty valid" true
    (Json.validate (Json.to_string ~indent:2 v) = Ok ())

(* --- json validator negatives -------------------------------------------- *)

let test_json_validator_rejects () =
  let bad s = Alcotest.(check bool) s true (Result.is_error (Json.validate s)) in
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad "01a";
  bad "{\"a\":1} trailing";
  bad "{'single':1}";
  bad "[1 2]"

let test_json_validator_accepts () =
  let good s = Alcotest.(check bool) s true (Json.validate s = Ok ()) in
  good "null";
  good "-12.5e-3";
  good "[]";
  good "{}";
  good "  [ 1 , 2.5 , \"x\\u00e9\" , { \"k\" : [ true , false , null ] } ]  "

let prop_generated_json_always_valid =
  QCheck.Test.make ~name:"builder output always validates" ~count:200
    QCheck.(
      pair (small_list (pair small_string small_int)) (small_list (option (pair bool small_string))))
    (fun (fields, items) ->
      let v =
        Json.Obj
          (List.map (fun (k, i) -> (k, Json.Int i)) fields
          @ [
              ( "items",
                Json.List
                  (List.map
                     (function
                       | None -> Json.Null
                       | Some (b, s) -> Json.Obj [ ("b", Json.Bool b); ("s", Json.String s) ])
                     items) );
            ])
      in
      Json.validate (Json.to_string v) = Ok ()
      && Json.validate (Json.to_string ~indent:3 v) = Ok ())

(* --- design exports -------------------------------------------------------- *)

let sample_design () =
  let config = { Config.default with nis_per_switch = 1 } in
  match DF.run ~config (DF.spec_of_use_cases ~name:"export-sample" SD.example1_use_cases) with
  | Ok d -> d
  | Error e -> Alcotest.fail e

let test_design_json_valid_and_complete () =
  let d = sample_design () in
  let s = Export.design_to_string d in
  (match Json.validate s with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun key -> Alcotest.(check bool) ("has " ^ key) true (contains s ("\"" ^ key ^ "\"")))
    [ "name"; "config"; "mesh"; "placement"; "routes"; "groups"; "verification"; "slot_starts" ]

let test_mapping_json_counts () =
  let d = sample_design () in
  let m = d.DF.mapping in
  match Export.mapping m with
  | Json.Obj fields ->
    (match List.assoc "routes" fields with
    | Json.List routes ->
      Alcotest.(check int) "all routes exported" (List.length m.Noc_core.Mapping.routes)
        (List.length routes)
    | _ -> Alcotest.fail "routes not a list");
    (match List.assoc "placement" fields with
    | Json.List cells ->
      Alcotest.(check int) "placement length" 4 (List.length cells)
    | _ -> Alcotest.fail "placement not a list")
  | _ -> Alcotest.fail "mapping not an object"

let test_dot_topology_well_formed () =
  let d = sample_design () in
  let s = Dot.topology d.DF.mapping in
  Alcotest.(check bool) "digraph" true (contains s "digraph");
  Alcotest.(check bool) "closes" true (String.length s > 0 && contains s "}");
  (* one node line per switch *)
  for sw = 0 to Noc_core.Mapping.switch_count d.DF.mapping - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "switch %d present" sw)
      true
      (contains s (Printf.sprintf "s%d [label=" sw))
  done

let test_dot_use_case_heat () =
  let d = sample_design () in
  let s = Dot.use_case d.DF.mapping ~use_case:0 in
  Alcotest.(check bool) "labelled" true (contains s "use-case 0");
  Alcotest.(check bool) "utilization labels" true (contains s "%\"");
  Alcotest.(check bool) "rejects bad id" true
    (try
       ignore (Dot.use_case d.DF.mapping ~use_case:99);
       false
     with Invalid_argument _ -> true)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_generated_json_always_valid ]

let () =
  Alcotest.run "noc_export"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "nan/inf" `Quick test_json_nan_becomes_null;
          Alcotest.test_case "compound" `Quick test_json_compound;
          Alcotest.test_case "roundtrip validity" `Quick test_json_roundtrip_validity;
          Alcotest.test_case "validator rejects" `Quick test_json_validator_rejects;
          Alcotest.test_case "validator accepts" `Quick test_json_validator_accepts;
        ] );
      ( "design",
        [
          Alcotest.test_case "json valid and complete" `Quick test_design_json_valid_and_complete;
          Alcotest.test_case "mapping counts" `Quick test_mapping_json_counts;
          Alcotest.test_case "dot topology" `Quick test_dot_topology_well_formed;
          Alcotest.test_case "dot use-case heat" `Quick test_dot_use_case_heat;
        ] );
      ("properties", qcheck_cases);
    ]
