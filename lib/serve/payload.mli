(** Canonical result payloads.

    One function per operation, producing the {e exact bytes} that both
    the one-shot CLI writes ([nocmap map --json FILE],
    [explore --json FILE], [lint --json], [certify --json],
    [remap --json FILE]) and the daemon returns in its [payload] field.
    [bin/nocmap.ml] and {!Service} both call these, so
    "served response == one-shot CLI output" holds by construction and
    is additionally pinned by the serve tests and the CI
    [serve-correctness] job. *)

val design : Noc_core.Design_flow.t -> string
(** A completed design as pretty-printed JSON
    ({!Noc_export.Design_export.design_to_string}). *)

val points : Noc_power.Design_space.point list -> string
(** A design-space sweep's points as pretty-printed JSON (what
    [nocmap explore --json] writes). *)

val lint : Noc_analysis.Analyzer.report -> string
(** A lint report as JSON, newline-terminated like the CLI's
    [print_endline]. *)

val certificate : Noc_analysis.Certify.t -> string
(** A signed certificate as JSON, newline-terminated like the CLI's
    [print_endline]. *)
