test/test_properties.ml: Alcotest Array List Noc_arch Noc_benchkit Noc_core Noc_export Noc_traffic QCheck QCheck_alcotest
