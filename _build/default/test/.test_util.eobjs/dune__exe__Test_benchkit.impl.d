test/test_benchkit.ml: Alcotest Float List Noc_benchkit Noc_core Noc_traffic Printf
