(* Trace-driven simulation: design a NoC for a video pipeline, then
   replay an MPEG-style group-of-pictures trace through the designed
   TDMA schedule and compare the measurement with the analytic
   latency-rate bounds.

   Run with: dune exec examples/trace_replay.exe *)

module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case
module Config = Noc_arch.Noc_config
module Route = Noc_arch.Route
module DF = Noc_core.Design_flow
module Mapping = Noc_core.Mapping
module Sim = Noc_sim.Simulator
module Trace = Noc_sim.Trace
module Sc = Noc_arch.Service_curve

let () =
  (* A decoder reading from memory at 150 MB/s mean, bursty by GOP. *)
  let uc =
    Use_case.create ~id:0 ~name:"video" ~cores:4
      [
        Flow.v ~src:0 ~dst:1 150.0;  (* memory -> decoder, the traced flow *)
        Flow.v ~src:1 ~dst:2 120.0;  (* decoder -> display *)
        Flow.v ~src:3 ~dst:0 60.0;   (* capture -> memory *)
      ]
  in
  let config = { Config.default with nis_per_switch = 1 } in
  match DF.run ~config (DF.spec_of_use_cases ~name:"trace-replay" [ uc ]) with
  | Error msg ->
    prerr_endline ("design failed: " ^ msg);
    exit 1
  | Ok design ->
    Format.printf "%a@.@." DF.pp_summary design;
    let m = design.DF.mapping in
    let routes = Mapping.routes_of_use_case m 0 in
    let traced =
      List.find (fun r -> r.Route.src_core = 0 && r.Route.dst_core = 1) routes
    in
    (* 40 us of 25 fps-scaled GOP traffic (frame period shrunk to keep
       the simulation short; rates are what matter) *)
    let duration_slots = 12800 in
    let horizon_ns = float_of_int duration_slots *. Config.slot_duration_ns config in
    let rng = Noc_util.Rng.create ~seed:2026 in
    let trace =
      Trace.video_gop ~rng ~mean_mbps:150.0 ~frame_period_ns:2000.0 ~gop_length:12
        ~i_frame_ratio:6.0 ~duration_ns:(horizon_ns *. 0.9)
    in
    Format.printf "trace: %d frames, %.1f MB/s mean@." (List.length trace)
      (Trace.mean_rate_mbps trace ~duration_ns:horizon_ns);
    let res =
      Sim.simulate_sources
        ~sources:[ (traced.Route.flow_id, Sim.Replay trace) ]
        ~config ~routes ~duration_slots
    in
    List.iter
      (fun c ->
        Format.printf
          "conn %d (%d->%d): offered %.1f, delivered %.1f MB/s, worst latency %.0f ns@."
          c.Sim.flow_id c.Sim.src_core c.Sim.dst_core c.Sim.offered_mbps c.Sim.delivered_mbps
          c.Sim.max_latency_ns)
      res.Sim.conns;
    (* compare against the latency-rate bound for this burstiness *)
    (match Sc.of_route ~config traced with
    | Some sc ->
      let sigma =
        Sc.on_off_burstiness ~mean_mbps:150.0 ~period_ns:(12.0 *. 2000.0) ~duty:(1.0 /. 12.0)
      in
      let bound = Sc.delay_bound_ns sc ~burst_bytes:sigma ~rate_mbps:150.0 in
      let measured =
        (List.find (fun c -> c.Sim.flow_id = traced.Route.flow_id) res.Sim.conns)
          .Sim.max_latency_ns
      in
      Format.printf "@.LR delay bound for a whole-GOP burst: %.0f ns (measured %.0f ns) -> %s@."
        bound measured
        (if measured <= bound then "bound holds" else "BOUND VIOLATED")
    | None -> ())
