module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Route = Noc_arch.Route
module Flow = Noc_traffic.Flow
module Use_case = Noc_traffic.Use_case

type t = {
  config : Config.t;
  mesh : Mesh.t;
  placement : int array;
  routes : Route.t list;
  states : Resources.t array;
  groups : int list list;
}

type failure = { attempts : (int * int * string) list }

exception Fail of string

type item = {
  uc : int;
  flow : Flow.t;
  mutable routed : bool;
}

type engine = Indexed | Reference

(* Pending items of one (src, dst) pair in one group, split by service
   class; filled once by the indexed engine and emptied by the first
   route_pair on the pair. *)
type bucket = { mutable gt : item list; mutable be : item list }

(* Binary min-heap of item indices (min index on top), backing the
   rank-partitioned worklist: the sorted-array index doubles as the
   priority, so popping yields the highest-bandwidth pending item. *)
module Int_heap = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push h x =
    if h.n = Array.length h.a then begin
      let bigger = Array.make (2 * h.n) 0 in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- x;
    while !i > 0 && h.a.((!i - 1) / 2) > h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && h.a.(l) < h.a.(!smallest) then smallest := l;
        if r < h.n && h.a.(r) < h.a.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

let switch_count t = Mesh.switch_count t.mesh

let switches_in_use t =
  let used = Array.make (Mesh.switch_count t.mesh) false in
  Array.iter (fun s -> if s >= 0 then used.(s) <- true) t.placement;
  List.iter
    (fun r ->
      used.(r.Route.src_switch) <- true;
      used.(r.Route.dst_switch) <- true;
      List.iter
        (fun l ->
          let a, b = Mesh.link_endpoints t.mesh l in
          used.(a) <- true;
          used.(b) <- true)
        r.Route.links)
    t.routes;
  Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 used

let routes_of_use_case t uc = List.filter (fun r -> r.Route.use_case = uc) t.routes

let total_weighted_hops t =
  List.fold_left
    (fun acc r -> acc +. (r.Route.bandwidth *. float_of_int (Route.hops r)))
    0.0 t.routes

let validate_inputs ~groups use_cases =
  (match use_cases with
  | [] -> invalid_arg "Mapping: no use-cases"
  | first :: rest ->
    let cores = first.Use_case.cores in
    List.iter
      (fun u ->
        if u.Use_case.cores <> cores then invalid_arg "Mapping: use-cases disagree on core count")
      rest);
  List.iteri
    (fun i u ->
      if u.Use_case.id <> i then
        invalid_arg
          (Printf.sprintf "Mapping: use-case ids must be positional (found id %d at position %d)"
             u.Use_case.id i))
    use_cases;
  let n = List.length use_cases in
  let seen = Array.make n false in
  List.iter
    (List.iter (fun u ->
         if u < 0 || u >= n then invalid_arg "Mapping: group member out of range";
         if seen.(u) then invalid_arg "Mapping: use-case in two groups";
         seen.(u) <- true))
    groups;
  Array.iteri (fun u s -> if not s then invalid_arg (Printf.sprintf "Mapping: use-case %d in no group" u)) seen

(* Sorted worklist of every (use-case, flow): Algorithm 2 step 2. *)
let build_items use_cases =
  let items =
    List.concat_map
      (fun u -> List.map (fun f -> { uc = u.Use_case.id; flow = f; routed = false }) u.Use_case.flows)
      use_cases
  in
  let cmp a b =
    match Flow.compare_bandwidth_desc a.flow b.flow with
    | 0 -> compare a.uc b.uc
    | c -> c
  in
  Array.of_list (List.sort cmp items)

(* Algorithm 2 step 3: highest-bandwidth unrouted flow, preferring
   flows whose endpoints are already mapped (both > one > none). *)
let pick_item items placement =
  let best = ref None in
  let best_rank = ref (-1) in
  let n = Array.length items in
  let i = ref 0 in
  while !best_rank < 2 && !i < n do
    let it = items.(!i) in
    if not it.routed then begin
      let mapped c = placement.(c) >= 0 in
      let rank =
        (if mapped it.flow.Flow.src then 1 else 0) + if mapped it.flow.Flow.dst then 1 else 0
      in
      if rank > !best_rank then begin
        best_rank := rank;
        best := Some it
      end
    end;
    incr i
  done;
  !best

type placement_mode = Free | Fixed

type placement_bias = Compact | Spread

let run ~config ~mesh ~groups ~mode ~bias ~engine ~initial_placement use_cases =
  validate_inputs ~groups use_cases;
  (match Config.validate config with Ok () -> () | Error m -> invalid_arg m);
  let cores = (List.hd use_cases).Use_case.cores in
  let n_uc = List.length use_cases in
  let n_switch = Mesh.switch_count mesh in
  let cap = config.Config.nis_per_switch in
  if cores > n_switch * cap then
    Error
      (Printf.sprintf "mesh offers %d NIs but the SoC has %d cores" (n_switch * cap) cores)
  else begin
    let states = Array.init n_uc (fun u -> Resources.create ~config ~mesh ~use_case:u) in
    let placement = Array.copy initial_placement in
    let ni_used = Array.make n_switch 0 in
    Array.iter
      (fun s -> if s >= 0 then ni_used.(s) <- ni_used.(s) + 1)
      placement;
    let group_list = Array.of_list (List.map (fun g -> g) groups) in
    let n_groups = Array.length group_list in
    let group_of = Array.make n_uc (-1) in
    Array.iteri (fun gi g -> List.iter (fun u -> group_of.(u) <- gi) g) group_list;
    let items = build_items use_cases in
    let n_items = Array.length items in
    let rank it =
      (if placement.(it.flow.Flow.src) >= 0 then 1 else 0)
      + if placement.(it.flow.Flow.dst) >= 0 then 1 else 0
    in
    (* Indexed engine: worklist heaps partitioned by endpoint-mapped
       rank, plus a (src, dst) -> per-group pending index consumed
       destructively by route_pair.  Ranks only grow (cores are never
       unplaced within an attempt), so an item is pushed at most once
       per rank and stale entries are skipped lazily on pop. *)
    let heaps = Array.init 3 (fun _ -> Int_heap.create ()) in
    let core_items = Array.make cores [] in
    let pending_index : (int, bucket array) Hashtbl.t = Hashtbl.create (max 16 n_items) in
    if engine = Indexed then begin
      for i = n_items - 1 downto 0 do
        let it = items.(i) in
        Int_heap.push heaps.(rank it) i;
        let src = it.flow.Flow.src and dst = it.flow.Flow.dst in
        core_items.(src) <- i :: core_items.(src);
        if dst <> src then core_items.(dst) <- i :: core_items.(dst);
        let key = (src * cores) + dst in
        let buckets =
          match Hashtbl.find_opt pending_index key with
          | Some b -> b
          | None ->
            let b = Array.init n_groups (fun _ -> { gt = []; be = [] }) in
            Hashtbl.add pending_index key b;
            b
        in
        let bucket = buckets.(group_of.(it.uc)) in
        if Flow.is_guaranteed it.flow then bucket.gt <- it :: bucket.gt
        else bucket.be <- it :: bucket.be
      done
    end;
    (* Rank of items touching [core] just grew: re-file them. *)
    let on_place core =
      if engine = Indexed then
        List.iter
          (fun i ->
            let it = items.(i) in
            if not it.routed then Int_heap.push heaps.(rank it) i)
          core_items.(core)
    in
    let rec pop_rank r =
      match Int_heap.pop heaps.(r) with
      | None -> None
      | Some i ->
        let it = items.(i) in
        if it.routed || rank it <> r then pop_rank r else Some it
    in
    let pick () =
      match engine with
      | Reference -> pick_item items placement
      | Indexed -> (
        match pop_rank 2 with
        | Some _ as s -> s
        | None -> ( match pop_rank 1 with Some _ as s -> s | None -> pop_rank 0))
    in
    (* Placement admission budgets: a switch may host cores whose
       traffic (per use-case) stays within (a) a fraction of its
       aggregate link bandwidth and (b) a multiple of the mesh-wide
       average load.  (b) is what makes growing the mesh genuinely
       relax contention: on larger meshes cores are forced apart. *)
    let core_load =
      Array.map
        (fun u ->
          let load = Array.make cores 0.0 in
          List.iter
            (fun f ->
              load.(f.Flow.src) <- load.(f.Flow.src) +. f.Flow.bandwidth;
              load.(f.Flow.dst) <- load.(f.Flow.dst) +. f.Flow.bandwidth)
            u.Use_case.flows;
          load)
        (Array.of_list use_cases)
    in
    let switch_load = Array.make_matrix n_uc n_switch 0.0 in
    let budget =
      let capacity = Config.link_capacity config in
      Array.init n_uc (fun u ->
          let total = 2.0 *. Use_case.total_bandwidth (List.nth use_cases u) in
          let spread = config.Config.placement_spread_factor *. total /. float_of_int n_switch in
          fun s ->
            let degree = float_of_int (Noc_graph.Intgraph.degree (Mesh.graph mesh) s) in
            let hw = config.Config.placement_hw_factor *. 2.0 *. degree *. capacity in
            Float.min hw spread)
    in
    Array.iteri
      (fun core s ->
        if s >= 0 then
          for u = 0 to n_uc - 1 do
            switch_load.(u).(s) <- switch_load.(u).(s) +. core_load.(u).(core)
          done)
      placement;
    let admissible core s =
      n_switch = 1
      || ni_used.(s) = 0 (* a core may always sit alone on an empty switch *)
      ||
      let ok = ref true in
      for u = 0 to n_uc - 1 do
        if switch_load.(u).(s) +. core_load.(u).(core) > budget.(u) s then ok := false
      done;
      !ok
    in
    let commit_load core s =
      for u = 0 to n_uc - 1 do
        switch_load.(u).(s) <- switch_load.(u).(s) +. core_load.(u).(core)
      done
    in
    let routes = ref [] in
    let next_conn = ref 0 in
    let fresh_conn () =
      let c = !next_conn in
      incr next_conn;
      c
    in
    (* Place one core near its peer (or near the centre when it is the
       very first).  The distance map approximates the path cost in the
       use-case driving the decision; the mesh is direction-symmetric,
       so using the peer as Dijkstra source is a sound heuristic for
       both flow directions. *)
    let place_core ~state ~bw ~peer core =
      let needed = max 1 (Path_select.needed_slots state bw) in
      let score =
        match peer with
        | Some p ->
          let dist = Path_select.distance_map ~state ~needed_slots:needed ~source:p in
          fun c -> dist.(c)
        | None ->
          let centre = Mesh.center mesh in
          fun c -> float_of_int (Mesh.manhattan mesh centre c)
      in
      let bias_weight = match bias with Compact -> 0.001 | Spread -> 1.0 in
      let best = ref (-1) in
      let best_score = ref infinity in
      for c = 0 to n_switch - 1 do
        if ni_used.(c) < cap && admissible core c then begin
          let s = score c +. (bias_weight *. float_of_int ni_used.(c)) in
          if s < !best_score then begin
            best_score := s;
            best := c
          end
        end
      done;
      if !best < 0 || !best_score = infinity then
        raise
          (Fail
             (Printf.sprintf "no feasible switch for core %d (NIs full or network saturated)" core));
      placement.(core) <- !best;
      ni_used.(!best) <- ni_used.(!best) + 1;
      commit_load core !best;
      on_place core
    in
    (* Route the pair (src,dst) in every group that still has unrouted
       flows on that pair: one shared configuration per group (steps
       4-6 of Algorithm 2). *)
    let use_masks = engine = Indexed in
    let route_group ~src_core ~dst_core ~group ~active ~best_effort =
      let src_switch = placement.(src_core) and dst_switch = placement.(dst_core) in
      let fail_with active msg =
        raise
          (Fail
             (Printf.sprintf "flow %d->%d (%.1f MB/s, uc %d): %s" src_core dst_core
                (List.fold_left (fun a it -> Float.max a it.flow.Flow.bandwidth) 0.0 active)
                (match active with it :: _ -> it.uc | [] -> -1)
                msg))
      in
      (* Guaranteed flows share one configuration per group. *)
      if active <> [] then begin
        let active_ucs = List.map (fun it -> it.uc) active in
        let passive =
          List.filter_map
            (fun u -> if List.mem u active_ucs then None else Some states.(u))
            group
        in
        let members =
          List.map
            (fun it ->
              ( states.(it.uc),
                {
                  Path_select.conn_id = fresh_conn ();
                  flow = it.flow;
                  src_switch;
                  dst_switch;
                } ))
            active
        in
        match Path_select.route_shared ~passive ~use_masks ~members () with
        | Ok rs ->
          routes := List.rev_append rs !routes;
          List.iter (fun it -> it.routed <- true) active
        | Error msg -> fail_with active msg
      end;
      (* Best-effort flows are routed per use-case, with no
         reservation: they take leftover slots at run time. *)
      List.iter
        (fun it ->
          let req =
            {
              Path_select.conn_id = fresh_conn ();
              flow = it.flow;
              src_switch;
              dst_switch;
            }
          in
          match Path_select.route_be ~state:states.(it.uc) req with
          | Ok r ->
            routes := r :: !routes;
            it.routed <- true
          | Error msg -> fail_with [ it ] msg)
        best_effort
    in
    let route_pair_reference ~src_core ~dst_core =
      Array.iter
        (fun g ->
          let pending service =
            Array.to_list items
            |> List.filter (fun it ->
                   (not it.routed)
                   && List.mem it.uc g
                   && it.flow.Flow.src = src_core
                   && it.flow.Flow.dst = dst_core
                   && it.flow.Flow.service = service)
          in
          route_group ~src_core ~dst_core ~group:g ~active:(pending Flow.Guaranteed)
            ~best_effort:(pending Flow.Best_effort))
        group_list
    in
    let route_pair_indexed ~src_core ~dst_core =
      match Hashtbl.find_opt pending_index ((src_core * cores) + dst_core) with
      | None -> ()
      | Some buckets ->
        Array.iteri
          (fun gi bucket ->
            let active = bucket.gt and best_effort = bucket.be in
            bucket.gt <- [];
            bucket.be <- [];
            route_group ~src_core ~dst_core ~group:group_list.(gi) ~active ~best_effort)
          buckets
    in
    let route_pair =
      match engine with
      | Indexed -> route_pair_indexed
      | Reference -> route_pair_reference
    in
    try
      let continue = ref true in
      while !continue do
        match pick () with
        | None -> continue := false
        | Some it ->
          let src = it.flow.Flow.src and dst = it.flow.Flow.dst in
          let state = states.(it.uc) in
          let bw = it.flow.Flow.bandwidth in
          (match mode with
          | Fixed ->
            if placement.(src) < 0 || placement.(dst) < 0 then
              raise (Fail "fixed placement leaves a communicating core unplaced")
          | Free ->
            if placement.(src) < 0 && placement.(dst) < 0 then begin
              place_core ~state ~bw ~peer:None src;
              place_core ~state ~bw ~peer:(Some placement.(src)) dst
            end
            else if placement.(src) < 0 then
              place_core ~state ~bw ~peer:(Some placement.(dst)) src
            else if placement.(dst) < 0 then
              place_core ~state ~bw ~peer:(Some placement.(src)) dst);
          route_pair ~src_core:src ~dst_core:dst
      done;
      (* Cores untouched by any flow still need an NI each. *)
      Array.iteri
        (fun core s ->
          if s < 0 then begin
            let free = ref (-1) in
            for c = n_switch - 1 downto 0 do
              if ni_used.(c) < cap then free := c
            done;
            if !free < 0 then raise (Fail "not enough NIs for flow-less cores");
            placement.(core) <- !free;
            ni_used.(!free) <- ni_used.(!free) + 1
          end)
        placement;
      Ok { config; mesh; placement; routes = List.rev !routes; states; groups }
    with Fail msg -> Error msg
  end

let map_on_mesh ?(bias = Compact) ?(engine = Indexed) ~config ~mesh ~groups use_cases =
  let cores = (List.hd use_cases).Use_case.cores in
  run ~config ~mesh ~groups ~mode:Free ~bias ~engine
    ~initial_placement:(Array.make cores (-1)) use_cases

let map_with_placement ?(engine = Indexed) ~config ~mesh ~groups ~placement use_cases =
  run ~config ~mesh ~groups ~mode:Fixed ~bias:Compact ~engine ~initial_placement:placement
    use_cases

(* One mesh-size attempt of the growth loop: greedy Compact placement,
   then the cheap whole-attempt backtrack to Spread (co-location
   sometimes saturates one region that an emptier spread survives).
   Exposed so the design-space sweep can warm-start a point by retrying
   a known-good size directly. *)
let map_attempt ?(engine = Indexed) ~config ~mesh ~groups use_cases =
  match map_on_mesh ~bias:Compact ~engine ~config ~mesh ~groups use_cases with
  | Ok t -> Ok t
  | Error compact_msg -> (
    match map_on_mesh ~bias:Spread ~engine ~config ~mesh ~groups use_cases with
    | Ok t -> Ok t
    | Error _ -> Error compact_msg)

(* Attempts at different mesh sizes are fully independent — each builds
   its own mesh and fresh per-use-case resource states — so the growth
   loop can speculatively evaluate a window of sizes on the shared
   domain pool and keep the smallest success, reproducing the
   sequential result (including the Compact-then-Spread retry at each
   size) exactly. *)
let speculation_window = 4

type attempt_cache = {
  lookup : width:int -> height:int -> (t, string) result option;
  store : width:int -> height:int -> (t, string) result -> unit;
  refuted : width:int -> height:int -> string option;
  record_refuted : width:int -> height:int -> string -> unit;
}

module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let m_designs = Metrics.counter "map.designs"
let m_attempts = Metrics.counter "map.attempts"
let m_attempt_failures = Metrics.counter "map.attempt_failures"
let m_attempt_cache_hits = Metrics.counter "map.attempt_cache_hits"
let m_pruned = Metrics.counter "map.pruned"
let m_pruned_cached = Metrics.counter "map.pruned_cached"

let map_design ?(config = Config.default) ?(engine = Indexed) ?(parallel = true)
    ?(prune = true) ?cache ~groups use_cases =
  Metrics.incr m_designs;
  validate_inputs ~groups use_cases;
  (match Config.validate config with Ok () -> () | Error m -> invalid_arg m);
  let sizes = Mesh.growth_sequence ~max_dim:config.Config.max_mesh_dim in
  (* Certificate pruning: sizes a static bound proves infeasible are
     recorded as failed attempts without running placement or routing.
     Every pruned size would have failed (Feasibility's bounds are
     sound), so the first success — and hence the result — is exactly
     the unpruned one.  Refutations are also replayed from (and
     recorded into) the result cache when one is attached: since only
     sound certificates ever record them, skipping a cached-refuted
     size is equally result-preserving, even under [~prune:false]. *)
  let cached_refutation (w, h) =
    match cache with Some c -> c.refuted ~width:w ~height:h | None -> None
  in
  let record_refutation (w, h) why =
    match cache with Some c -> c.record_refuted ~width:w ~height:h why | None -> ()
  in
  let pruned_rev, sizes =
    if (not prune) && cache = None then ([], sizes)
    else begin
      let cert = lazy (Feasibility.certify ~config ~groups use_cases) in
      List.fold_left
        (fun (pruned, kept) (w, h) ->
          match cached_refutation (w, h) with
          | Some why ->
            Metrics.incr m_pruned_cached;
            ((w, h, why) :: pruned, kept)
          | None ->
            if not prune then (pruned, (w, h) :: kept)
            else (
              match Feasibility.explain (Lazy.force cert) ~width:w ~height:h with
              | Some why ->
                let why = "statically infeasible: " ^ why in
                record_refutation (w, h) why;
                Metrics.incr m_pruned;
                ((w, h, why) :: pruned, kept)
              | None -> (pruned, (w, h) :: kept)))
        ([], []) sizes
      |> fun (pruned, kept) -> (pruned, List.rev kept)
    end
  in
  let attempt (w, h) =
    match (match cache with Some c -> c.lookup ~width:w ~height:h | None -> None) with
    | Some (Ok t) ->
      Metrics.incr m_attempt_cache_hits;
      Ok t
    | Some (Error msg) ->
      Metrics.incr m_attempt_cache_hits;
      Error (w, h, msg)
    | None -> (
      Metrics.incr m_attempts;
      let mesh = Mesh.create_kind ~kind:config.Config.topology ~width:w ~height:h in
      let solve () = map_attempt ~engine ~config ~mesh ~groups use_cases in
      let result =
        if Tracer.enabled () then
          Tracer.with_span ~cat:"map"
            ~args:[ ("width", Tracer.Int w); ("height", Tracer.Int h) ]
            "map:attempt" solve
        else solve ()
      in
      (match cache with Some c -> c.store ~width:w ~height:h result | None -> ());
      match result with
      | Ok t -> Ok t
      | Error compact_msg ->
        Metrics.incr m_attempt_failures;
        Error (w, h, compact_msg))
  in
  let rec sequential attempts = function
    | [] -> Error { attempts = List.rev attempts }
    | size :: rest -> (
      match attempt size with Ok t -> Ok t | Error a -> sequential (a :: attempts) rest)
  in
  let rec take n = function
    | x :: rest when n > 0 ->
      let wave, beyond = take (n - 1) rest in
      (x :: wave, beyond)
    | l -> ([], l)
  in
  let rec waves window attempts = function
    | [] -> Error { attempts = List.rev attempts }
    | remaining ->
      let wave, beyond = take window remaining in
      let results = Noc_util.Domain_pool.run (List.map (fun size () -> attempt size) wave) in
      let rec scan attempts = function
        | [] -> waves window attempts beyond
        | Ok t :: _ -> Ok t (* smallest size first: later wave slots are speculative *)
        | Error a :: more -> scan (a :: attempts) more
      in
      scan attempts results
  in
  let window = min (Noc_util.Domain_pool.effective_jobs ()) speculation_window in
  let solve () =
    if (not parallel) || window <= 1 then sequential pruned_rev sizes
    else waves window pruned_rev sizes
  in
  if Tracer.enabled () then
    Tracer.with_span ~cat:"map"
      ~args:
        [
          ("use_cases", Tracer.Int (List.length use_cases));
          ("groups", Tracer.Int (List.length groups));
          ("pruned", Tracer.Int (List.length pruned_rev));
        ]
      "map_design" solve
  else solve ()

let pp_failure ppf { attempts } =
  Format.fprintf ppf "@[<v>mapping failed at every size:@ ";
  List.iter (fun (w, h, msg) -> Format.fprintf ppf "%dx%d: %s@ " w h msg) attempts;
  Format.fprintf ppf "@]"
