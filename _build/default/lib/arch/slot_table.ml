type t = { table : int array } (* -1 = free, otherwise owner id *)

let create ~slots =
  if slots <= 0 then invalid_arg "Slot_table.create: need positive slot count";
  { table = Array.make slots (-1) }

let slots t = Array.length t.table

let copy t = { table = Array.copy t.table }

let norm t i =
  let s = slots t in
  ((i mod s) + s) mod s

let is_free t i = t.table.(norm t i) = -1

let owner t i =
  let v = t.table.(norm t i) in
  if v = -1 then None else Some v

let reserve t ~slot ~owner =
  let i = norm t slot in
  if t.table.(i) <> -1 then invalid_arg "Slot_table.reserve: slot already owned";
  t.table.(i) <- owner

let release t ~slot = t.table.(norm t slot) <- -1

let release_owner t ~owner =
  let freed = ref 0 in
  Array.iteri
    (fun i v ->
      if v = owner then begin
        t.table.(i) <- -1;
        incr freed
      end)
    t.table;
  !freed

let used_count t = Array.fold_left (fun acc v -> if v = -1 then acc else acc + 1) 0 t.table
let free_count t = slots t - used_count t

let free_slots t =
  let acc = ref [] in
  for i = slots t - 1 downto 0 do
    if t.table.(i) = -1 then acc := i :: !acc
  done;
  !acc

let utilization t = float_of_int (used_count t) /. float_of_int (slots t)

let pp ppf t =
  Array.iter
    (fun v -> if v = -1 then Format.pp_print_char ppf '.' else Format.fprintf ppf "%d" (v mod 10))
    t.table
