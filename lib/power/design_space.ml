module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Mapping = Noc_core.Mapping
module Domain_pool = Noc_util.Domain_pool
module Tracer = Noc_obs.Tracer
module Metrics = Noc_obs.Metrics

let m_points = Metrics.counter "explore.points"
let m_warm_hits = Metrics.counter "explore.warm_hits"
let m_infeasible = Metrics.counter "explore.infeasible"

type axes = {
  frequencies : Noc_util.Units.frequency list;
  slot_counts : int list;
  topologies : Mesh.kind list;
}

let default_axes =
  { frequencies = [ 250.0; 500.0; 1000.0 ]; slot_counts = [ 16; 32; 64 ]; topologies = [ Mesh.Mesh ] }

type start = Cold | Warm

type point = {
  freq_mhz : Noc_util.Units.frequency;
  slots : int;
  topology : Mesh.kind;
  switches : int option;
  area_mm2 : Noc_util.Units.area option;
  power_mw : float option;
  start : start;
}

(* A solved point's reusable state: its mesh dimensions and core
   placement.  The placement array is shared read-only across waves
   ([Mapping.run] copies its initial placement). *)
type seed = { w : int; h : int; placement : int array }

let point_of_mapping ~freq ~slots ~topology ~start (m : Mapping.t) =
  let p =
    {
      freq_mhz = freq;
      slots;
      topology;
      switches = Some (Mapping.switch_count m);
      area_mm2 = Some (Area_model.noc_area m);
      power_mw = Some (Power_model.noc_power m).Power_model.total_mw;
      start;
    }
  in
  let mesh = m.Mapping.mesh in
  (p, Some { w = Mesh.width mesh; h = Mesh.height mesh; placement = m.Mapping.placement })

let infeasible ~freq ~slots ~topology =
  ( { freq_mhz = freq; slots; topology; switches = None; area_mm2 = None; power_mw = None; start = Cold },
    None )

(* Warm start: the growth search still walks every size below the
   seed's (so the result stays the smallest feasible size the cold
   search would find), but the seed size itself is retried with the
   neighbour's placement — routing only, no placement search — before
   the normal Compact/Spread attempt.  Flat regions of the sweep, where
   neighbouring points land on the same mesh, skip the whole placement
   search; when the seeded retry fails the point degrades to the exact
   cold behaviour from that size onward. *)
let solve_point ~config ~groups ~use_cases ~prune ~freq ~slots ~topology seed_opt =
  let cfg = { config with Config.freq_mhz = freq; slots; topology } in
  (* Seeds inherited from a sweep over a different spec are only valid
     when the core count still matches; a stale one is dropped, which
     degrades the point to the exact cold behaviour. *)
  let seed_opt =
    match seed_opt with
    | Some s
      when Array.length s.placement <> (List.hd use_cases).Noc_traffic.Use_case.cores ->
      None
    | s -> s
  in
  (* One cache handle per point: the problem digest is computed once
     and shared by every size attempt below. *)
  let cache = Noc_core.Mapping_cache.design_cache ~config:cfg ~groups use_cases in
  let cold () =
    match Mapping.map_design ~config:cfg ~prune ?cache ~groups use_cases with
    | Ok m -> point_of_mapping ~freq ~slots ~topology ~start:Cold m
    | Error _ -> infeasible ~freq ~slots ~topology
  in
  match seed_opt with
  | None -> cold ()
  | Some seed -> (
    (* The certificate depends on this point's frequency/slot knobs, so
       it is issued per point; sizes it rejects would fail their
       attempt, so skipping them preserves the cold search's result. *)
    let admits =
      if not prune then fun _ -> true
      else begin
        let cert = Noc_core.Feasibility.certify ~config:cfg ~groups use_cases in
        fun (w, h) -> Noc_core.Feasibility.admits cert ~width:w ~height:h
      end
    in
    let sizes = Mesh.growth_sequence ~max_dim:cfg.Config.max_mesh_dim in
    let smaller = List.filter (fun (w, h) -> w * h < seed.w * seed.h) sizes in
    let fresh_attempt (w, h) =
      let mesh = Mesh.create_kind ~kind:topology ~width:w ~height:h in
      Mapping.map_attempt ~config:cfg ~mesh ~groups use_cases
    in
    let attempt (w, h) =
      match cache with
      | None -> fresh_attempt (w, h)
      | Some c -> (
        match c.Mapping.lookup ~width:w ~height:h with
        | Some result -> result
        | None ->
          let result = fresh_attempt (w, h) in
          c.Mapping.store ~width:w ~height:h result;
          result)
    in
    let rec below = function
      | [] ->
        (* every smaller size failed: retry the seed's size with the
           neighbour's placement, then cold from the seed size up *)
        let seeded () =
          if not (admits (seed.w, seed.h)) then Error ()
          else
            let mesh = Mesh.create_kind ~kind:topology ~width:seed.w ~height:seed.h in
            match
              Noc_core.Mapping_cache.with_placement ~config:cfg ~mesh ~groups
                ~placement:seed.placement use_cases
            with
            | Ok m -> Ok m
            | Error _ -> Error ()
        in
        (match seeded () with
        | Ok m -> point_of_mapping ~freq ~slots ~topology ~start:Warm m
        | Error () ->
          let rest = List.filter (fun (w, h) -> w * h >= seed.w * seed.h) sizes in
          let rec upward = function
            | [] -> infeasible ~freq ~slots ~topology
            | size :: more when not (admits size) -> upward more
            | size :: more -> (
              match attempt size with
              | Ok m -> point_of_mapping ~freq ~slots ~topology ~start:Cold m
              | Error _ -> upward more)
          in
          upward rest)
      | size :: more when not (admits size) -> below more
      | size :: more -> (
        match attempt size with
        | Ok m -> point_of_mapping ~freq ~slots ~topology ~start:Cold m
        | Error _ -> below more)
    in
    below smaller)

(* One span per sweep point: on a pooled sweep each point runs on
   whichever domain claimed it, so the trace shows the wave structure
   directly (one row per worker, one box per point). *)
let solve ~config ~groups ~use_cases ~prune ~freq ~slots ~topology seed_opt =
  Metrics.incr m_points;
  let run () = solve_point ~config ~groups ~use_cases ~prune ~freq ~slots ~topology seed_opt in
  let ((p, _) as result) =
    if Tracer.enabled () then
      Tracer.with_span ~cat:"explore"
        ~args:
          [
            ("freq_mhz", Tracer.Float freq);
            ("slots", Tracer.Int slots);
            ("topology", Tracer.Str (match topology with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus"));
            ("seeded", Tracer.Bool (seed_opt <> None));
          ]
        "explore:point" run
    else run ()
  in
  (match p.switches with None -> Metrics.incr m_infeasible | Some _ -> ());
  (match p.start with Warm -> Metrics.incr m_warm_hits | Cold -> ());
  result

let explore_seeded ?(axes = default_axes) ?jobs ?(warm = true) ?(prune = true) ?inherited
    ~config ~groups use_cases =
  let topos = Array.of_list axes.topologies in
  let slot_axis = Array.of_list (List.sort compare axes.slot_counts) in
  let freq_axis = Array.of_list (List.sort compare axes.frequencies) in
  let nt = Array.length topos and ns = Array.length slot_axis and nf = Array.length freq_axis in
  let idx ti si fi = ((ti * ns) + si) * nf + fi in
  let results = Array.make (nt * ns * nf) None in
  let seeds : seed option array = Array.make (nt * ns * nf) None in
  (* Seeds carried over from a previous sweep of the same axes (a
     churned spec of the same SoC): consulted only when this sweep has
     no solved neighbour yet, i.e. the first wave. *)
  let inherited_for cell =
    match inherited with
    | Some arr when cell < Array.length arr -> arr.(cell)
    | _ -> None
  in
  (* Nearest already-solved neighbour of (ti, si, fi): same topology,
     smallest slot distance, then smallest frequency distance.  Only
     earlier waves are consulted, so the choice — and with it the whole
     sweep — is independent of [jobs]. *)
  let seed_for ti si fi =
    let best = ref None in
    for sj = 0 to ns - 1 do
      for fj = 0 to nf - 1 do
        match seeds.(idx ti sj fj) with
        | Some seed -> (
          let d = (abs (si - sj), abs (fi - fj), sj, fj) in
          match !best with
          | Some (d', _) when compare d' d <= 0 -> ()
          | _ -> best := Some (d, seed))
        | None -> ()
      done
    done;
    match !best with Some (_, seed) -> Some seed | None -> inherited_for (idx ti si fi)
  in
  (* Waves along the frequency axis: every (topology, slots) pair of
     one frequency runs concurrently; later waves warm-start from the
     results of earlier ones. *)
  for fi = 0 to nf - 1 do
    let cells = List.concat_map (fun ti -> List.init ns (fun si -> (ti, si))) (List.init nt Fun.id) in
    let tasks =
      List.map
        (fun (ti, si) ->
          let seed = if warm then seed_for ti si fi else None in
          ((ti, si), seed))
        cells
    in
    let solved =
      Domain_pool.map ?jobs
        (fun ((ti, si), seed) ->
          solve ~config ~groups ~use_cases ~prune ~freq:freq_axis.(fi)
            ~slots:slot_axis.(si) ~topology:topos.(ti) seed)
        tasks
    in
    List.iter2
      (fun ((ti, si), _) (p, seed) ->
        results.(idx ti si fi) <- Some p;
        seeds.(idx ti si fi) <- seed)
      tasks solved
  done;
  let points =
    List.concat_map
      (fun ti ->
        List.concat_map
          (fun si ->
            List.map (fun fi -> Option.get results.(idx ti si fi)) (List.init nf Fun.id))
          (List.init ns Fun.id))
      (List.init nt Fun.id)
  in
  (points, seeds)

let explore ?axes ?jobs ?warm ?prune ~config ~groups use_cases =
  fst (explore_seeded ?axes ?jobs ?warm ?prune ~config ~groups use_cases)

let dominates a b =
  (* a dominates b in (area, power) *)
  match (a.area_mm2, a.power_mw, b.area_mm2, b.power_mw) with
  | Some aa, Some ap, Some ba, Some bp -> aa <= ba && ap <= bp && (aa < ba || ap < bp)
  | _ -> false

(* Front membership by position, not physical identity: [List.memq]
   would silently unmark every member if points were ever rebuilt
   (copied, serialized, mapped) between [pareto] and the caller. *)
let pareto_flags points =
  let arr = Array.of_list points in
  Array.map
    (fun p ->
      p.switches <> None && not (Array.exists (fun q -> q.switches <> None && dominates q p) arr))
    arr

let pareto points =
  let flags = pareto_flags points in
  List.filteri (fun i _ -> flags.(i)) points

let print points =
  let flags = pareto_flags points in
  let t =
    Noc_util.Ascii_table.create
      ~header:
        [ "topology"; "slots"; "freq (MHz)"; "switches"; "area (mm2)"; "power (mW)"; "start"; "pareto" ]
  in
  List.iteri
    (fun i p ->
      Noc_util.Ascii_table.add_row t
        [
          (match p.topology with Mesh.Mesh -> "mesh" | Mesh.Torus -> "torus");
          string_of_int p.slots;
          Printf.sprintf "%.0f" p.freq_mhz;
          (match p.switches with Some s -> string_of_int s | None -> "infeasible");
          (match p.area_mm2 with Some a -> Printf.sprintf "%.3f" a | None -> "-");
          (match p.power_mw with Some w -> Printf.sprintf "%.1f" w | None -> "-");
          (match p.start with Warm -> "warm" | Cold -> "cold");
          (if flags.(i) then "*" else "");
        ])
    points;
  Noc_util.Ascii_table.print t
