lib/util/rng.mli:
