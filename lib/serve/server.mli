(** The [nocmap serve] daemon: a single-threaded select loop over a
    Unix-domain socket, scheduling batches onto the shared
    {!Noc_util.Domain_pool}.

    {2 Concurrency model}

    No thread library: the loop multiplexes non-blocking client
    sockets with [Unix.select], and executes each drained batch of
    requests {e synchronously} through {!Service.execute_batch}.
    While a batch runs, new connections backlog in the listen queue
    and new request lines accumulate in kernel socket buffers — the
    next loop iteration drains them all at once, so load arriving
    during a computation forms the next batch naturally (and the
    wider the batch, the more single-flight coalescing and explore
    grid merging pay off).  [linger_ms] widens batches further by
    holding a non-empty queue open for that long before executing.

    {2 Admission control}

    Three layers, each answered with a structured {!Protocol.Failure}
    rather than a stalled socket:
    - a client that exceeds [max_inflight] queued requests gets
      [Too_many_inflight] (with [retry_after_ms]);
    - when the pending queue holds [max_queue] requests the server is
      saturated and sheds with [Overloaded] (with [retry_after_ms]);
    - once draining begins, executable requests get [Shutting_down].

    {2 Shutdown}

    [shutdown] requests, {!stop}, and (when [install_signals])
    SIGTERM/SIGINT all trigger the same drain: the listen socket
    closes (new connections are refused by the OS), queued work
    executes, every response flushes, the mapping cache's persistent
    tier is flushed ({!Noc_core.Mapping_cache.flush}), and the socket
    path is unlinked before {!run} returns.

    {2 Metrics}

    The loop feeds the process-wide {!Noc_obs.Metrics} registry:
    [serve.requests], [serve.responses], [serve.coalesced],
    [serve.shed], [serve.batches], [serve.clients] and
    [serve.queue_depth] gauges, and [serve.batch_size] /
    [serve.latency_ns] histograms (admission-to-response wall time).
    A [stats] request returns the registry's JSON snapshot. *)

type config = {
  socket_path : string;
  max_queue : int;        (** pending-request cap across all clients *)
  max_inflight : int;     (** per-client queued-request cap *)
  linger_ms : float;      (** batching window once the queue is non-empty *)
  retry_after_ms : int;   (** backoff hint attached to load-shed failures *)
  jobs : int option;      (** pool parallelism per batch (default: pool default) *)
  install_signals : bool; (** drain on SIGTERM/SIGINT (the CLI sets this;
                              tests use {!stop} instead) *)
}

val default_config : socket_path:string -> config
(** [max_queue 64], [max_inflight 8], no linger, [retry_after_ms 50],
    pool-default jobs, no signal handlers. *)

val stop : unit -> unit
(** Ask the running server to drain and return — the same path a
    SIGTERM takes.  Callable from any domain or from a signal
    handler; idempotent; a no-op when no server is running. *)

val run : config -> (unit, string) result
(** Bind the socket and serve until a shutdown request, {!stop}, or a
    handled signal.  Blocks the calling domain.  Errors when the
    socket cannot be bound (e.g. the path is taken by a live server).
    A stale socket file whose server is gone is replaced.  At most
    one server may run per process at a time. *)
