(* Tests for Noc_analysis and Noc_core.Feasibility: diagnostic
   plumbing, the lint passes, and — most importantly — the soundness of
   certificate-based pruning: a size the certificate rejects must never
   map, and pruning must never change a design-flow answer. *)

module Config = Noc_arch.Noc_config
module Mesh = Noc_arch.Mesh
module Flow = Noc_traffic.Flow
module U = Noc_traffic.Use_case
module Mapping = Noc_core.Mapping
module Feasibility = Noc_core.Feasibility
module DF = Noc_core.Design_flow
module Sp = Noc_core.Spec_parser
module Syn = Noc_benchkit.Synthetic
module SD = Noc_benchkit.Soc_designs
module D = Noc_analysis.Diagnostic
module Analyzer = Noc_analysis.Analyzer

let singleton_groups ucs = List.mapi (fun i _ -> [ i ]) ucs

let has_error report ~pass ~line =
  List.exists
    (fun d -> d.D.pass = pass && d.D.line = Some line && d.D.severity = D.Error)
    report.Analyzer.diagnostics

(* --- the acceptance fixture: dangling smooth + latency floor ------------- *)

let infeasible_text =
  String.concat "\n"
    [
      "name demo";                  (* 1 *)
      "cores 4";                    (* 2 *)
      "";                           (* 3 *)
      "use-case playback";          (* 4 *)
      "  flow 0 -> 1 bw 100";       (* 5 *)
      "  flow 1 -> 2 bw 80 lat 5";  (* 6: under the 8 ns slot duration *)
      "";                           (* 7 *)
      "use-case standby";           (* 8 *)
      "  flow 3 -> 0 bw 10";        (* 9 *)
      "";                           (* 10 *)
      "smooth playback download";   (* 11: 'download' never declared *)
    ]

let test_lint_names_both_defect_lines () =
  let report = Analyzer.analyze_doc (Sp.parse_doc ~name:"demo" infeasible_text) in
  Alcotest.(check bool) "latency floor on line 6" true
    (has_error report ~pass:"infeasible-flow" ~line:6);
  Alcotest.(check bool) "dangling smooth on line 11" true
    (has_error report ~pass:"dangling-ref" ~line:11);
  Alcotest.(check int) "exit code" 2 (Analyzer.exit_code report)

let test_clean_spec_has_no_diagnostics () =
  let text =
    String.concat "\n"
      [
        "cores 4";
        "use-case a";
        "  flow 0 -> 1 bw 50";
        "  flow 2 -> 3 bw 20 be";
        "use-case b";
        "  flow 3 -> 0 bw 30 lat 900";
        "parallel a b";
      ]
  in
  let report = Analyzer.analyze_doc (Sp.parse_doc ~name:"clean" text) in
  Alcotest.(check int) "exit code" 0 (Analyzer.exit_code report);
  Alcotest.(check bool) "certificate issued" true (report.Analyzer.certificate <> None)

let test_spec_lint_pass_catalogue () =
  let text =
    String.concat "\n"
      [
        "cores 3";                (* 1 *)
        "use-case a";             (* 2 *)
        "  flow 0 -> 0 bw 10";    (* 3: self flow *)
        "  flow 0 -> 1 bw 0";     (* 4: zero bandwidth *)
        "  flow 0 -> 2 bw 5 lat -1";  (* 5: non-positive latency *)
        "use-case a";             (* 6: duplicate id *)
        "  flow 9 -> 1 bw 10";    (* 7: out of core range *)
        "smooth a a";             (* 8: self smooth *)
        "parallel a";             (* 9: arity *)
      ]
  in
  let report = Analyzer.analyze_doc (Sp.parse_doc ~name:"bad" text) in
  let flagged pass line = has_error report ~pass ~line in
  Alcotest.(check bool) "self-flow" true (flagged "self-flow" 3);
  Alcotest.(check bool) "zero-bandwidth" true (flagged "zero-bandwidth" 4);
  Alcotest.(check bool) "nonpositive-latency" true (flagged "nonpositive-latency" 5);
  Alcotest.(check bool) "duplicate-use-case" true (flagged "duplicate-use-case" 6);
  Alcotest.(check bool) "flow-range" true (flagged "flow-range" 7);
  Alcotest.(check bool) "self-smooth" true (flagged "self-smooth" 8);
  Alcotest.(check bool) "parallel-arity" true (flagged "parallel-arity" 9)

let test_render_json_is_valid_json () =
  let report = Analyzer.analyze_doc (Sp.parse_doc ~name:"demo" infeasible_text) in
  (match Noc_export.Json.validate (Analyzer.render_json report) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("render_json not valid JSON: " ^ msg));
  let text = Analyzer.render_text report in
  Alcotest.(check bool) "text mentions the pass" true
    (let needle = "error[infeasible-flow]" in
     let n = String.length needle and h = String.length text in
     let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
     go 0)

let test_deep_lint_on_benchmark_is_clean () =
  let ucs = SD.d1 () in
  let spec = DF.spec_of_use_cases ~name:"d1" ucs in
  let report = Analyzer.analyze_spec ~deep:true spec in
  Alcotest.(check bool) "no errors, no warnings" true
    (List.for_all (fun d -> d.D.severity = D.Info) report.Analyzer.diagnostics)

(* --- certificates ---------------------------------------------------------- *)

let test_eff_slots_monotone_floor () =
  let config = Config.default in
  (* unconstrained latency: exactly the bandwidth floor *)
  Alcotest.(check (option int)) "bw floor" (Some (Config.slots_for_bandwidth config 300.0))
    (Feasibility.eff_slots ~config 300.0 infinity);
  (* a latency bound can only raise the requirement *)
  (match
     ( Feasibility.eff_slots ~config 300.0 infinity,
       Feasibility.eff_slots ~config 300.0 40.0 )
   with
  | Some free, Some tight -> Alcotest.(check bool) "tighter" true (tight >= free)
  | _ -> Alcotest.fail "both must be satisfiable");
  (* under one slot duration: impossible at any slot count *)
  Alcotest.(check (option int)) "latency floor" None (Feasibility.eff_slots ~config 10.0 5.0)

let test_certificate_rejects_undersized_grids () =
  (* 9 cores at 2 NIs/switch: a grid under 5 switches can never seat them *)
  let ucs = [ U.create ~id:0 ~name:"u0" ~cores:9 [ Flow.v ~src:0 ~dst:8 10.0 ] ] in
  let config = { Config.default with nis_per_switch = 2 } in
  let cert = Feasibility.certify ~config ~groups:[ [ 0 ] ] ucs in
  Alcotest.(check bool) "1x1 rejected" false (Feasibility.admits cert ~width:1 ~height:1);
  Alcotest.(check bool) "2x2 rejected" false (Feasibility.admits cert ~width:2 ~height:2);
  Alcotest.(check bool) "3x2 admitted" true (Feasibility.admits cert ~width:3 ~height:2);
  Alcotest.(check (option (pair int int))) "first admitted" (Some (3, 2))
    (Feasibility.first_admitted cert)

let test_impossible_design_prunes_every_size () =
  let ucs =
    [ U.create ~id:0 ~name:"u0" ~cores:3 [ Flow.v ~src:0 ~dst:1 ~latency_ns:5.0 80.0 ] ]
  in
  match Mapping.map_design ~groups:[ [ 0 ] ] ucs with
  | Ok _ -> Alcotest.fail "a 5 ns bound cannot map at 500 MHz"
  | Error f ->
    let sizes = Mesh.growth_sequence ~max_dim:Config.default.Config.max_mesh_dim in
    Alcotest.(check int) "every size reported" (List.length sizes)
      (List.length f.Mapping.attempts);
    Alcotest.(check bool) "all statically pruned" true
      (List.for_all
         (fun (_, _, reason) ->
           String.length reason >= 21 && String.sub reason 0 21 = "statically infeasible")
         f.Mapping.attempts)

(* --- pruning is invisible to the flow -------------------------------------- *)

let same_design (a : Mapping.t) (b : Mapping.t) =
  a.Mapping.placement = b.Mapping.placement
  && a.Mapping.mesh = b.Mapping.mesh
  && List.length a.Mapping.routes = List.length b.Mapping.routes
  && Mapping.total_weighted_hops a = Mapping.total_weighted_hops b

let test_map_design_prune_identical () =
  let ucs = SD.d1 () in
  let groups = singleton_groups ucs in
  let config = { Config.default with nis_per_switch = 2 } in
  match
    ( Mapping.map_design ~config ~prune:true ~groups ucs,
      Mapping.map_design ~config ~prune:false ~groups ucs )
  with
  | Ok a, Ok b -> Alcotest.(check bool) "identical design" true (same_design a b)
  | _ -> Alcotest.fail "d1 must map at 2 NIs/switch"

let test_explore_prune_identical () =
  let ucs = SD.d1 () in
  let groups = singleton_groups ucs in
  let axes =
    {
      Noc_power.Design_space.frequencies = [ 250.0; 500.0 ];
      slot_counts = [ 16; 32 ];
      topologies = [ Mesh.Mesh ];
    }
  in
  let run prune =
    Noc_power.Design_space.explore ~axes ~prune ~config:Config.default ~groups ucs
  in
  Alcotest.(check bool) "same sweep points" true (run true = run false)

let test_min_freq_prune_identical () =
  let ucs = SD.d1 () in
  let groups = singleton_groups ucs in
  let mesh = Mesh.create_kind ~kind:Mesh.Mesh ~width:2 ~height:2 in
  let run prune =
    Noc_power.Min_freq.for_use_cases_on_mesh ~prune ~config:Config.default ~mesh ~groups ucs
  in
  Alcotest.(check (option (float 1e-9))) "same minimum frequency" (run false) (run true)

(* --- properties ------------------------------------------------------------ *)

(* Certificate soundness: no size the certificate rejects ever maps
   with the reference engine.  Small NI capacities and slot tables make
   the bounds bite; the capacity cycles with the seed so forced
   co-location, cut and aggregate violations all occur. *)
let prop_certificate_soundness =
  QCheck.Test.make ~name:"rejected sizes never map (reference engine)" ~count:1000
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params = { Syn.bottleneck_params with cores = 8; flows_lo = 6; flows_hi = 12 } in
      let ucs = Syn.generate ~seed ~params ~use_cases:2 in
      (* slow links and short slot tables so the cut, aggregate and
         latency bounds all bite, not just the NI count (at 50 MHz and
         4 slots an HD flow alone can exceed a whole link) *)
      let config =
        {
          Config.default with
          freq_mhz = [| 50.0; 100.0; 200.0 |].(seed mod 3);
          nis_per_switch = 1 + (seed mod 3);
          slots = (if seed mod 2 = 0 then 4 else 8);
          max_mesh_dim = 4;
        }
      in
      let groups = singleton_groups ucs in
      let cert = Feasibility.certify ~config ~groups ucs in
      List.for_all
        (fun (w, h) ->
          Feasibility.admits cert ~width:w ~height:h
          ||
          let mesh = Mesh.create_kind ~kind:Mesh.Mesh ~width:w ~height:h in
          match Mapping.map_attempt ~engine:Mapping.Reference ~config ~mesh ~groups ucs with
          | Error _ -> true
          | Ok _ -> false)
        (Mesh.growth_sequence ~max_dim:config.Config.max_mesh_dim))

(* Lint cleanliness: a spec the flow maps and verifies never carries an
   error-severity diagnostic. *)
let prop_mappable_specs_lint_clean =
  QCheck.Test.make ~name:"mappable + verified specs lint clean" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let params = { Syn.spread_params with cores = 8; flows_lo = 4; flows_hi = 10 } in
      let ucs = Syn.generate ~seed ~params ~use_cases:2 in
      let spec = DF.spec_of_use_cases ~name:"prop" ucs in
      match DF.run spec with
      | Error _ -> true (* vacuous: only mappable specs are claimed clean *)
      | Ok d ->
        (not (DF.verified d))
        || List.for_all
             (fun d -> d.D.severity <> D.Error)
             (Analyzer.analyze_spec spec).Analyzer.diagnostics)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_certificate_soundness; prop_mappable_specs_lint_clean ]

let () =
  Alcotest.run "noc_analysis"
    [
      ( "lint",
        [
          Alcotest.test_case "names both defect lines" `Quick test_lint_names_both_defect_lines;
          Alcotest.test_case "clean spec" `Quick test_clean_spec_has_no_diagnostics;
          Alcotest.test_case "pass catalogue" `Quick test_spec_lint_pass_catalogue;
          Alcotest.test_case "JSON renderer" `Quick test_render_json_is_valid_json;
          Alcotest.test_case "deep lint on d1" `Quick test_deep_lint_on_benchmark_is_clean;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "eff_slots" `Quick test_eff_slots_monotone_floor;
          Alcotest.test_case "NI bound" `Quick test_certificate_rejects_undersized_grids;
          Alcotest.test_case "impossible design" `Quick test_impossible_design_prunes_every_size;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "map_design identical" `Quick test_map_design_prune_identical;
          Alcotest.test_case "explore identical" `Quick test_explore_prune_identical;
          Alcotest.test_case "min_freq identical" `Quick test_min_freq_prune_identical;
        ] );
      ("properties", qcheck_cases);
    ]
