test/test_arch.ml: Alcotest Array List Noc_arch Noc_graph Option QCheck QCheck_alcotest Result
